// Package experiments regenerates every table and figure of the paper's
// evaluation section (Tables I-V, Figures 1 and 4-7) on the simulated
// substrate, printing results in the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a collection of series over a shared x axis.
type Figure struct {
	Title, XLabel, YLabel string
	Series                []Series
	Notes                 []string
}

// String renders the figure as a data table (one row per x value) — the
// form the paper's figures can be re-plotted from.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %14s", s.Name)
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			fmt.Fprintf(&b, "%-12.4g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, "  %14.4g", s.Y[i])
				} else {
					fmt.Fprintf(&b, "  %14s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Heatmap is a 2-D score grid (Figure 1).
type Heatmap struct {
	Title    string
	RowLabel string
	ColLabel string
	Data     [][]float64 // rows × cols
	RowNames []string
}

// String renders the heatmap with ASCII shades, darkest = highest.
func (h *Heatmap) String() string {
	const shades = " .:-=+*#%@"
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", h.Title)
	lo, hi := h.Data[0][0], h.Data[0][0]
	for _, row := range h.Data {
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	for i, row := range h.Data {
		name := ""
		if i < len(h.RowNames) {
			name = h.RowNames[i]
		}
		fmt.Fprintf(&b, "%-10s |", name)
		for _, v := range row {
			idx := int((v - lo) / span * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "rows: %s, cols: %s, range [%.3f, %.3f]\n", h.RowLabel, h.ColLabel, lo, hi)
	return b.String()
}

// pct formats v*100 with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f", 100*v) }

// gb formats bytes as GB with two decimals.
func gb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<30)) }

// us formats seconds as integer microseconds.
func us(sec float64) string { return fmt.Sprintf("%.0f", sec*1e6) }
