package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
	"repro/internal/rngx"
	"repro/internal/search"
)

// Fig1 reproduces Figure 1: the similarity heatmap between a long passage
// (89 chunks) and 10 different queries. Each query is relevant to one or
// two planted chunks; most of the passage is irrelevant.
func Fig1(e *Env) *Heatmap {
	const nChunks = 89
	const nQueries = 10
	const chunkSize = 32
	lex := e.Lex
	r := rngx.New(e.cfg.Seed).Split(0xf1)
	chunks, _ := lex.PassageChunks(r, nChunks, chunkSize, nil)

	enc := encoder.NewContriever(lex)
	data := make([][]float64, nQueries)
	names := make([]string, nQueries)
	for q := 0; q < nQueries; q++ {
		// Plant 4 anchor concepts (twice each) into 1-2 chunks and build a
		// paraphrased query over them.
		prose := lex.ProseTopics()
		tp := prose[r.Intn(len(prose))]
		used := map[int]bool{}
		var query []int
		targets := []int{r.Intn(nChunks)}
		if q%2 == 1 {
			targets = append(targets, r.Intn(nChunks))
		}
		planted := 0
		for _, c := range lex.TopicConcepts(tp) {
			if len(lex.FormsOf(c)) < 2 || used[c] {
				continue
			}
			used[c] = true
			form := lex.FormsOf(c)[0]
			for _, tgt := range targets {
				chunks[tgt][(planted*2)%chunkSize] = form
				chunks[tgt][(planted*2+1)%chunkSize] = form
			}
			query = append(query, lex.AlternateForm(r, c, form))
			planted++
			if planted == 4 {
				break
			}
		}
		scores := enc.Similarities(query, chunks)
		data[q] = scores
		names[q] = fmt.Sprintf("query %d", q+1)
	}
	return &Heatmap{
		Title:    "Figure 1: similarity heatmap, 89-chunk passage x 10 queries (Contriever-sim)",
		RowLabel: "queries",
		ColLabel: "passage chunks",
		Data:     data,
		RowNames: names,
	}
}

// methodProfiles resolves per-method cost profiles, substituting the
// measured Cocktail precision mix when available.
func methodProfiles(e *Env) ([]hwmodel.Profile, error) {
	mix, err := e.MeasureCocktailMix()
	if err != nil {
		return nil, err
	}
	profiles := []hwmodel.Profile{
		hwmodel.ProfileFP16(),
		hwmodel.ProfileAtom(),
		hwmodel.ProfileKIVI(),
		hwmodel.ProfileKVQuant(0.01),
		hwmodel.ProfileCocktail(core.ChunkSize, mix),
	}
	return profiles, nil
}

// Fig4 reproduces Figure 4: GPU memory per model per method on the QMSum
// workload.
func Fig4(e *Env) (*Table, error) {
	profiles, err := methodProfiles(e)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 4: GPU memory (GB) by model and method (QMSum workload)",
		Header: []string{"Model"},
	}
	for _, p := range profiles {
		t.Header = append(t.Header, p.Name)
	}
	for _, dims := range hwmodel.AllModels() {
		wl := hwmodel.QMSumWorkload(dims)
		row := []string{dims.Name}
		for _, p := range profiles {
			row = append(row, gb(hwmodel.Memory(dims, wl, p)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "expected shape: Cocktail lowest; 12-42% below FP16")
	return t, nil
}

// Fig5 reproduces Figure 5: time per output token (TPOT) per model per
// method on the QMSum workload.
func Fig5(e *Env) (*Table, error) {
	profiles, err := methodProfiles(e)
	if err != nil {
		return nil, err
	}
	g := hwmodel.A800()
	t := &Table{
		Title:  "Figure 5: TPOT (us) by model and method (QMSum workload)",
		Header: []string{"Model"},
	}
	for _, p := range profiles {
		t.Header = append(t.Header, p.Name)
	}
	for _, dims := range hwmodel.AllModels() {
		wl := hwmodel.QMSumWorkload(dims)
		row := []string{dims.Name}
		for _, p := range profiles {
			row = append(row, us(hwmodel.TPOT(g, dims, wl, p)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "expected shape: Cocktail lowest (32-52% below FP16), KVQuant above the uniform methods")
	return t, nil
}

// Fig6 reproduces Figure 6: throughput vs batch size on Llama2-7B with
// the QMSum-length workload; zero marks the OOM line break.
func Fig6(e *Env) (*Figure, error) {
	profiles, err := methodProfiles(e)
	if err != nil {
		return nil, err
	}
	g := hwmodel.A800()
	dims := hwmodel.Llama2_7B()
	batches := []int{1, 10, 25, 50, 75, 100, 150, 200, 250, 300, 350, 400}
	fig := &Figure{
		Title:  "Figure 6: throughput vs batch size (Llama2-7B, ctx 2000, 128 output tokens)",
		XLabel: "batch",
		YLabel: "throughput (tokens/s); 0 = OOM",
	}
	for _, p := range profiles {
		s := Series{Name: p.Name}
		for _, b := range batches {
			wl := hwmodel.Workload{ContextTokens: 2000, OutputTokens: 128, Batch: b}
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, hwmodel.Throughput(g, dims, wl, p))
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"expected shape: FP16 OOMs first; Cocktail below uniform INT4 at small batch,",
		"overtaking at large batch; Cocktail always above KVQuant")
	return fig, nil
}

// Fig7 reproduces Figure 7: QMSum accuracy on Llama2-7B-sim as α and β
// vary (each sweep holds the other hyperparameter at the paper's
// default). It returns the α sweep and the β sweep as separate figures.
func Fig7(e *Env) (*Figure, *Figure, error) {
	ds, err := datasets.ByName("QMSum")
	if err != nil {
		return nil, nil, err
	}
	m := e.Models[0]
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.8, 0.9}
	betas := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.5}

	build := func(alpha, beta float64) func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error) {
		ct := core.NewCocktail(e.Lex)
		cfg := search.Default()
		cfg.Alpha, cfg.Beta = alpha, beta
		ct.Search = cfg
		return func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error) {
			c, _, err := core.Prepare(ct, b, ctx, query)
			return c, err
		}
	}

	var preps []func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error)
	for _, a := range alphas {
		preps = append(preps, build(a, 0.1))
	}
	for _, b := range betas {
		preps = append(preps, build(0.6, b))
	}
	scores, err := e.EvalPlans(m, ds, preps, 0, 0xf7)
	if err != nil {
		return nil, nil, err
	}

	sa := Series{Name: "ROUGE x100"}
	for i, a := range alphas {
		sa.X = append(sa.X, a)
		sa.Y = append(sa.Y, 100*scores[i])
	}
	figA := &Figure{
		Title:  "Figure 7a: impact of alpha on QMSum (Llama2-7B-sim, beta=0.1)",
		XLabel: "alpha",
		YLabel: "ROUGE x100",
		Series: []Series{sa},
		Notes:  []string{"expected shape: accuracy falls as alpha rises (more INT2)"},
	}
	sb := Series{Name: "ROUGE x100"}
	for i, b := range betas {
		sb.X = append(sb.X, b)
		sb.Y = append(sb.Y, 100*scores[len(alphas)+i])
	}
	figB := &Figure{
		Title:  "Figure 7b: impact of beta on QMSum (Llama2-7B-sim, alpha=0.6)",
		XLabel: "beta",
		YLabel: "ROUGE x100",
		Series: []Series{sb},
		Notes:  []string{"expected shape: accuracy improves then saturates as beta rises (more FP16)"},
	}
	return figA, figB, nil
}
