package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/kvcache"
)

// smallEnv keeps test runtime low: fewer samples, shorter contexts.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(Config{Samples: 10, ContextTokens: 512, MaxSeq: 2048, MaxNew: 24, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table I has %d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "Qasper" || tab.Rows[7][2] != "EditSim" {
		t.Fatalf("Table I content wrong: %+v", tab.Rows)
	}
	if !strings.Contains(tab.String(), "Qasper") {
		t.Fatal("rendering broken")
	}
}

// TestTable2SmallShape: on a reduced run, the per-model averages must
// reproduce the paper's ordering: FP16 >= Cocktail and Cocktail above the
// uniform INT4 baselines' minimum.
func TestTable2SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full accuracy grid in -short mode")
	}
	e := smallEnv(t)
	tab, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4*5 {
		t.Fatalf("Table II has %d rows, want 20", len(tab.Rows))
	}
	avgCol := len(tab.Header) - 1
	for mi := 0; mi < 4; mi++ {
		base := mi * 5
		fp := cell(t, tab, base+0, avgCol)
		atom := cell(t, tab, base+1, avgCol)
		ct := cell(t, tab, base+4, avgCol)
		if ct < fp-6 {
			t.Errorf("model %d: Cocktail avg %.1f too far below FP16 %.1f", mi, ct, fp)
		}
		if ct < atom-2 {
			t.Errorf("model %d: Cocktail avg %.1f clearly below Atom %.1f", mi, ct, atom)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	e := smallEnv(t)
	tab, err := Table3(e)
	if err != nil {
		t.Fatal(err)
	}
	tiny := cell(t, tab, 0, 1)  // chunk 8
	small := cell(t, tab, 0, 3) // chunk 32
	large := cell(t, tab, 0, 6) // chunk 256
	// Robust shape on this substrate: 32 is the safe operating point.
	// Below it, the planted needle span fragments across chunks and loses
	// relevance coverage; above it the score never improves.
	if tiny >= small {
		t.Errorf("chunk-8 score %.1f not below chunk-32 score %.1f", tiny, small)
	}
	if large > small+1 {
		t.Errorf("chunk-256 score %.1f above chunk-32 score %.1f", large, small)
	}
}

func TestTable4Shape(t *testing.T) {
	e := smallEnv(t)
	tab, err := Table4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table IV has %d rows", len(tab.Rows))
	}
	// Average across the four datasets: Contriever (last row) must beat
	// BM25 (row 2).
	avg := func(row int) float64 {
		var s float64
		for c := 1; c <= 4; c++ {
			s += cell(t, tab, row, c)
		}
		return s / 4
	}
	if avg(4) <= avg(2) {
		t.Errorf("Contriever avg %.1f not above BM25 avg %.1f", avg(4), avg(2))
	}
}

func TestTable5Shape(t *testing.T) {
	e := smallEnv(t)
	tab, err := Table5(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table V has %d rows", len(tab.Rows))
	}
	baseScore := cell(t, tab, 0, 1)
	noI := cell(t, tab, 1, 1)
	cocktail := cell(t, tab, 3, 1)
	if noI >= cocktail {
		t.Errorf("w/o Module I score %.1f should be below Cocktail %.1f", noI, cocktail)
	}
	if cocktail < baseScore-12 {
		t.Errorf("Cocktail %.1f too far below baseline %.1f", cocktail, baseScore)
	}
	memBase := cell(t, tab, 0, 2)
	memNoII := cell(t, tab, 2, 2)
	memCT := cell(t, tab, 3, 2)
	if !(memCT < memBase && memBase < memNoII) {
		t.Errorf("memory columns wrong: base=%v noII=%v ct=%v", memBase, memNoII, memCT)
	}
	tpotBase := cell(t, tab, 0, 3)
	tpotNoII := cell(t, tab, 2, 3)
	tpotCT := cell(t, tab, 3, 3)
	if !(tpotCT < tpotBase && tpotBase < tpotNoII) {
		t.Errorf("TPOT columns wrong: base=%v noII=%v ct=%v", tpotBase, tpotNoII, tpotCT)
	}
}

func TestFig1Shape(t *testing.T) {
	e := smallEnv(t)
	h := Fig1(e)
	if len(h.Data) != 10 || len(h.Data[0]) != 89 {
		t.Fatalf("heatmap is %dx%d", len(h.Data), len(h.Data[0]))
	}
	// Most chunks must be far below each query's peak (Figure 1's point).
	for q, row := range h.Data {
		peak, lowCount := row[0], 0
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
		for _, v := range row {
			if v < peak*0.5 {
				lowCount++
			}
		}
		if lowCount < 60 {
			t.Errorf("query %d: only %d/89 chunks are clearly irrelevant", q, lowCount)
		}
	}
	if !strings.Contains(h.String(), "Figure 1") {
		t.Fatal("rendering broken")
	}
}

func TestFig4And5Shapes(t *testing.T) {
	e := smallEnv(t)
	t4, err := Fig4(e)
	if err != nil {
		t.Fatal(err)
	}
	t5, err := Fig5(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{t4, t5} {
		if len(tab.Rows) != 4 {
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
		for r := range tab.Rows {
			fp := cell(t, tab, r, 1)
			ct := cell(t, tab, r, 5)
			if ct >= fp {
				t.Errorf("%s row %d: Cocktail %.1f not below FP16 %.1f", tab.Title, r, ct, fp)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	e := smallEnv(t)
	fig, err := Fig6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("Fig6 has %d series", len(fig.Series))
	}
	// FP16 must OOM (hit zero) before Cocktail does.
	firstZero := func(s Series) int {
		for i, v := range s.Y {
			if v == 0 {
				return i
			}
		}
		return len(s.Y)
	}
	var fp16, cocktail Series
	for _, s := range fig.Series {
		switch s.Name {
		case "FP16":
			fp16 = s
		case "Cocktail":
			cocktail = s
		}
	}
	if firstZero(fp16) >= firstZero(cocktail) {
		t.Errorf("FP16 OOM index %d not before Cocktail %d", firstZero(fp16), firstZero(cocktail))
	}
}

func TestFig7Shape(t *testing.T) {
	e := smallEnv(t)
	figA, figB, err := Fig7(e)
	if err != nil {
		t.Fatal(err)
	}
	ya := figA.Series[0].Y
	if ya[0] < ya[len(ya)-1] {
		t.Errorf("alpha sweep should not improve with alpha: %v", ya)
	}
	yb := figB.Series[0].Y
	if yb[len(yb)-1] < yb[0]-2 {
		t.Errorf("beta sweep should not degrade with beta: %v", yb)
	}
}

func TestMeasureCocktailMix(t *testing.T) {
	e := smallEnv(t)
	mix, err := e.MeasureCocktailMix()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range mix {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("mix fractions sum to %v: %v", sum, mix)
	}
	if mix[kvcache.INT2] < 0.3 {
		t.Fatalf("expected INT2-dominated mix, got %v", mix)
	}
}

// TestParallelEvalMatchesSerial: evaluation fans out across workers, but
// samples come from the serial seed stream and scores reduce in sample
// order, so rendered output must be byte-identical at any worker count.
func TestParallelEvalMatchesSerial(t *testing.T) {
	cfg := Config{Samples: 4, ContextTokens: 384, MaxSeq: 2048, MaxNew: 16, Seed: 31}
	serialCfg, parallelCfg := cfg, cfg
	serialCfg.Workers = 1
	parallelCfg.Workers = 8
	se, err := NewEnv(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewEnv(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Table5(se)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Table5(pe)
	if err != nil {
		t.Fatal(err)
	}
	if st.String() != pt.String() {
		t.Errorf("Table V differs by worker count:\nserial:\n%s\nparallel:\n%s", st, pt)
	}
	sa, sb, err := Fig7(se)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb, err := Fig7(pe)
	if err != nil {
		t.Fatal(err)
	}
	if sa.String() != pa.String() || sb.String() != pb.String() {
		t.Error("Figure 7 differs by worker count")
	}
}

func TestRenderers(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "22"}}, Notes: []string{"n"}}
	out := tab.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "note: n") {
		t.Fatalf("table render: %q", out)
	}
	fig := &Figure{Title: "f", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}}}
	if !strings.Contains(fig.String(), "== f ==") {
		t.Fatal("figure render broken")
	}
	h := &Heatmap{Title: "h", Data: [][]float64{{0, 1}}, RowNames: []string{"r"}}
	if !strings.Contains(h.String(), "== h ==") {
		t.Fatal("heatmap render broken")
	}
}
