package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datasets"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rngx"
	"repro/internal/search"
)

// Config sizes the experiment runs. Zero values take defaults.
type Config struct {
	// Samples per (model, dataset, sweep-point) cell.
	Samples int
	// ContextTokens is the simulated context length.
	ContextTokens int
	// MaxSeq bounds the model position table.
	MaxSeq int
	// MaxNew bounds generation length per sample.
	MaxNew int
	// Seed derives all sample streams.
	Seed uint64
}

// Default returns the configuration used by cocktail-bench.
func Default() Config {
	return Config{Samples: 25, ContextTokens: 768, MaxSeq: 2048, MaxNew: 24, Seed: 2025}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Samples == 0 {
		c.Samples = d.Samples
	}
	if c.ContextTokens == 0 {
		c.ContextTokens = d.ContextTokens
	}
	if c.MaxSeq == 0 {
		c.MaxSeq = d.MaxSeq
	}
	if c.MaxNew == 0 {
		c.MaxNew = d.MaxNew
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Env bundles the shared lexicon and simulated models.
type Env struct {
	Lex    *corpus.Lexicon
	Models []*model.Model
	cfg    Config
}

// NewEnv builds the evaluation environment deterministically.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	lex := corpus.NewLexicon(corpus.Defaults(1))
	var models []*model.Model
	for _, mc := range model.Registry(cfg.MaxSeq) {
		m, err := model.New(mc, lex)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", mc.Name, err)
		}
		models = append(models, m)
	}
	return &Env{Lex: lex, Models: models, cfg: cfg}, nil
}

// Config returns the environment's effective configuration.
func (e *Env) Config() Config { return e.cfg }

// EvalRow scores every method on one (model, dataset) cell, reusing each
// sample's prefill across methods (as the real system would: prefill is
// method-independent).
func (e *Env) EvalRow(m *model.Model, ds datasets.Dataset, methods []core.Method, seedOffset uint64) ([]float64, error) {
	cfg := e.cfg
	scores := make([]float64, len(methods))
	r := rngx.New(cfg.Seed).Split(seedOffset)
	for s := 0; s < cfg.Samples; s++ {
		sample := ds.Gen(r, e.Lex, datasets.GenConfig{ContextTokens: cfg.ContextTokens})
		b, err := m.Prefill(sample.Context)
		if err != nil {
			return nil, err
		}
		for mi, meth := range methods {
			cache, _, err := meth.Prepare(b, sample.Context, sample.Query)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", meth.Name(), ds.Name, err)
			}
			pred := m.Generate(cache, sample.Query, cfg.MaxNew)
			scores[mi] += metrics.Score(ds.Metric,
				datasets.Surfaces(e.Lex, pred), datasets.Surfaces(e.Lex, sample.Answer))
		}
	}
	for i := range scores {
		scores[i] /= float64(cfg.Samples)
	}
	return scores, nil
}

// EvalPlans scores one method variant per plan-producing closure on a
// single model/dataset, reusing prefills (used by the α/β and chunk-size
// sweeps, where only the plan changes). ctxTokens overrides the configured
// context length when positive (the chunk-size sweep needs enough context
// for at least four 256-token chunks).
func (e *Env) EvalPlans(m *model.Model, ds datasets.Dataset,
	prepare []func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error),
	ctxTokens int, seedOffset uint64) ([]float64, error) {
	cfg := e.cfg
	if ctxTokens <= 0 {
		ctxTokens = cfg.ContextTokens
	}
	scores := make([]float64, len(prepare))
	r := rngx.New(cfg.Seed).Split(seedOffset)
	for s := 0; s < cfg.Samples; s++ {
		sample := ds.Gen(r, e.Lex, datasets.GenConfig{ContextTokens: ctxTokens})
		b, err := m.Prefill(sample.Context)
		if err != nil {
			return nil, err
		}
		for pi, prep := range prepare {
			cache, err := prep(b, sample.Context, sample.Query)
			if err != nil {
				return nil, err
			}
			pred := m.Generate(cache, sample.Query, cfg.MaxNew)
			scores[pi] += metrics.Score(ds.Metric,
				datasets.Surfaces(e.Lex, pred), datasets.Surfaces(e.Lex, sample.Answer))
		}
	}
	for i := range scores {
		scores[i] /= float64(cfg.Samples)
	}
	return scores, nil
}

// MeasureCocktailMix runs Module I over QMSum-analog samples and returns
// the average fraction of context tokens at each precision plus the mean
// segment-run count — the measured inputs for the Figure 4/5 cost model.
func (e *Env) MeasureCocktailMix() (map[kvcache.Precision]float64, error) {
	ds, err := datasets.ByName("QMSum")
	if err != nil {
		return nil, err
	}
	ct := core.NewCocktail(e.Lex)
	cfg := e.cfg
	r := rngx.New(cfg.Seed).Split(0xf1ac)
	totals := map[kvcache.Precision]float64{}
	n := cfg.Samples
	if n > 16 {
		n = 16
	}
	for s := 0; s < n; s++ {
		sample := ds.Gen(r, e.Lex, datasets.GenConfig{ContextTokens: cfg.ContextTokens})
		// Only the plan is needed, so run Module I directly (no prefill).
		res, err := search.Run(ct.Encoder, sample.Context, sample.Query, ct.Search)
		if err != nil {
			return nil, err
		}
		for p, c := range res.Plan.Counts() {
			totals[p] += float64(c) / float64(len(sample.Context))
		}
	}
	for p := range totals {
		totals[p] /= float64(n)
	}
	return totals, nil
}
