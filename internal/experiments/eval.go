package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/datasets"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/rngx"
	"repro/internal/search"
)

// Config sizes the experiment runs. Zero values take defaults.
type Config struct {
	// Samples per (model, dataset, sweep-point) cell.
	Samples int
	// ContextTokens is the simulated context length.
	ContextTokens int
	// MaxSeq bounds the model position table.
	MaxSeq int
	// MaxNew bounds generation length per sample.
	MaxNew int
	// Seed derives all sample streams.
	Seed uint64
	// Workers bounds parallel sample evaluation (0 = runtime.NumCPU(),
	// 1 = serial). Results are identical at any setting: samples are
	// generated serially from the seed stream and scores are reduced in
	// sample order.
	Workers int
}

// Default returns the configuration used by cocktail-bench.
func Default() Config {
	return Config{Samples: 25, ContextTokens: 768, MaxSeq: 2048, MaxNew: 24, Seed: 2025}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Samples == 0 {
		c.Samples = d.Samples
	}
	if c.ContextTokens == 0 {
		c.ContextTokens = d.ContextTokens
	}
	if c.MaxSeq == 0 {
		c.MaxSeq = d.MaxSeq
	}
	if c.MaxNew == 0 {
		c.MaxNew = d.MaxNew
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Env bundles the shared lexicon and simulated models.
type Env struct {
	Lex    *corpus.Lexicon
	Models []*model.Model
	cfg    Config
}

// NewEnv builds the evaluation environment deterministically.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	lex := corpus.NewLexicon(corpus.Defaults(1))
	var models []*model.Model
	for _, mc := range model.Registry(cfg.MaxSeq) {
		m, err := model.New(mc, lex)
		if err != nil {
			return nil, fmt.Errorf("experiments: building %s: %w", mc.Name, err)
		}
		models = append(models, m)
	}
	return &Env{Lex: lex, Models: models, cfg: cfg}, nil
}

// Config returns the environment's effective configuration.
func (e *Env) Config() Config { return e.cfg }

// runSamples evaluates fn(i) for every i in [0, n) across the
// environment's worker count. Callers store per-index results and reduce
// them in index order, so the outcome is independent of scheduling.
func (e *Env) runSamples(n int, fn func(i int) error) error {
	return parallel.ForEach(e.cfg.Workers, n, fn)
}

// genSamples draws n samples from the sequential seed stream. Generation
// stays serial (the stream is stateful) and is cheap next to prefill and
// decoding; the heavy per-sample work is what runSamples parallelizes.
func (e *Env) genSamples(ds datasets.Dataset, n, ctxTokens int, seedOffset uint64) []datasets.Sample {
	r := rngx.New(e.cfg.Seed).Split(seedOffset)
	samples := make([]datasets.Sample, n)
	for i := range samples {
		samples[i] = ds.Gen(r, e.Lex, datasets.GenConfig{ContextTokens: ctxTokens})
	}
	return samples
}

// EvalRow scores every method on one (model, dataset) cell, reusing each
// sample's prefill across methods (as the real system would: prefill is
// method-independent). Samples are evaluated in parallel; the reduction
// runs in sample order, so scores are bit-identical to a serial run.
func (e *Env) EvalRow(m *model.Model, ds datasets.Dataset, methods []core.Method, seedOffset uint64) ([]float64, error) {
	cfg := e.cfg
	samples := e.genSamples(ds, cfg.Samples, cfg.ContextTokens, seedOffset)
	perSample := make([][]float64, cfg.Samples)
	err := e.runSamples(cfg.Samples, func(s int) error {
		sample := samples[s]
		b, err := m.Prefill(sample.Context)
		if err != nil {
			return err
		}
		row := make([]float64, len(methods))
		for mi, meth := range methods {
			cache, _, err := core.Prepare(meth, b, sample.Context, sample.Query)
			if err != nil {
				return fmt.Errorf("experiments: %s on %s: %w", meth.Name(), ds.Name, err)
			}
			pred := m.Generate(cache, sample.Query, cfg.MaxNew)
			row[mi] = metrics.Score(ds.Metric,
				datasets.Surfaces(e.Lex, pred), datasets.Surfaces(e.Lex, sample.Answer))
		}
		perSample[s] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(methods))
	for s := range perSample {
		for mi := range scores {
			scores[mi] += perSample[s][mi]
		}
	}
	for i := range scores {
		scores[i] /= float64(cfg.Samples)
	}
	return scores, nil
}

// EvalPlans scores one method variant per plan-producing closure on a
// single model/dataset, reusing prefills (used by the α/β and chunk-size
// sweeps, where only the plan changes). ctxTokens overrides the configured
// context length when positive (the chunk-size sweep needs enough context
// for at least four 256-token chunks).
func (e *Env) EvalPlans(m *model.Model, ds datasets.Dataset,
	prepare []func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error),
	ctxTokens int, seedOffset uint64) ([]float64, error) {
	cfg := e.cfg
	if ctxTokens <= 0 {
		ctxTokens = cfg.ContextTokens
	}
	samples := e.genSamples(ds, cfg.Samples, ctxTokens, seedOffset)
	perSample := make([][]float64, cfg.Samples)
	err := e.runSamples(cfg.Samples, func(s int) error {
		sample := samples[s]
		b, err := m.Prefill(sample.Context)
		if err != nil {
			return err
		}
		row := make([]float64, len(prepare))
		for pi, prep := range prepare {
			cache, err := prep(b, sample.Context, sample.Query)
			if err != nil {
				return err
			}
			pred := m.Generate(cache, sample.Query, cfg.MaxNew)
			row[pi] = metrics.Score(ds.Metric,
				datasets.Surfaces(e.Lex, pred), datasets.Surfaces(e.Lex, sample.Answer))
		}
		perSample[s] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	scores := make([]float64, len(prepare))
	for s := range perSample {
		for pi := range scores {
			scores[pi] += perSample[s][pi]
		}
	}
	for i := range scores {
		scores[i] /= float64(cfg.Samples)
	}
	return scores, nil
}

// MeasureCocktailMix runs Module I over QMSum-analog samples and returns
// the average fraction of context tokens at each precision plus the mean
// segment-run count — the measured inputs for the Figure 4/5 cost model.
func (e *Env) MeasureCocktailMix() (map[kvcache.Precision]float64, error) {
	ds, err := datasets.ByName("QMSum")
	if err != nil {
		return nil, err
	}
	ct := core.NewCocktail(e.Lex)
	cfg := e.cfg
	n := cfg.Samples
	if n > 16 {
		n = 16
	}
	samples := e.genSamples(ds, n, cfg.ContextTokens, 0xf1ac)
	perSample := make([]map[kvcache.Precision]int, n)
	err = e.runSamples(n, func(s int) error {
		// Only the plan is needed, so run Module I directly (no prefill).
		res, err := search.Run(ct.Encoder, samples[s].Context, samples[s].Query, ct.Search)
		if err != nil {
			return err
		}
		perSample[s] = res.Plan.Counts()
		return nil
	})
	if err != nil {
		return nil, err
	}
	totals := map[kvcache.Precision]float64{}
	for s, counts := range perSample {
		for p, c := range counts {
			totals[p] += float64(c) / float64(len(samples[s].Context))
		}
	}
	for p := range totals {
		totals[p] /= float64(n)
	}
	return totals, nil
}
