package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
	"repro/internal/search"
)

// Table1 reproduces Table I: the dataset/task/metric inventory.
func Table1() *Table {
	t := &Table{
		Title:  "Table I: evaluation datasets and metrics (LongBench analogs)",
		Header: []string{"Dataset", "Task", "Evaluation Metric"},
	}
	for _, d := range datasets.All() {
		t.Rows = append(t.Rows, []string{d.Name, d.Task, d.Metric.String()})
	}
	return t
}

// Table2 reproduces Table II: accuracy of FP16, Atom, KIVI, KVQuant and
// Cocktail on four models over the eight datasets (α=0.6, β=0.1, chunk
// size 32). Scores are metric values scaled to 0-100.
func Table2(e *Env) (*Table, error) {
	methods := core.Methods(e.Lex)
	t := &Table{
		Title:  "Table II: accuracy comparison (scores x100; simulated models/datasets)",
		Header: []string{"Model", "Method"},
	}
	for _, d := range datasets.All() {
		t.Header = append(t.Header, d.Name)
	}
	t.Header = append(t.Header, "Average")

	for mi, m := range e.Models {
		cells := make([][]float64, len(methods)) // [method][dataset]
		for i := range cells {
			cells[i] = make([]float64, 0, len(datasets.All()))
		}
		for di, ds := range datasets.All() {
			row, err := e.EvalRow(m, ds, methods, uint64(mi*100+di))
			if err != nil {
				return nil, err
			}
			for i, v := range row {
				cells[i] = append(cells[i], v)
			}
		}
		for i, meth := range methods {
			row := []string{m.Config().Name, meth.Name()}
			var sum float64
			for _, v := range cells[i] {
				row = append(row, pct(v))
				sum += v
			}
			row = append(row, pct(sum/float64(len(cells[i]))))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: FP16 >= Cocktail > KVQuant > KIVI ~ Atom on the per-model average")
	return t, nil
}

// Table3 reproduces Table III: QMSum accuracy vs chunk size on the
// Llama2-7B analog — steady up to 32, degrading beyond.
func Table3(e *Env) (*Table, error) {
	ds, err := datasets.ByName("QMSum")
	if err != nil {
		return nil, err
	}
	m := e.Models[0]
	sizes := []int{8, 16, 32, 64, 128, 256}
	preps := make([]func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error), len(sizes))
	for i, cs := range sizes {
		scfg := search.Default()
		scfg.ChunkSize = cs
		ct := core.NewCocktail(e.Lex)
		ct.Search = scfg
		preps[i] = func(b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, error) {
			c, _, err := core.Prepare(ct, b, ctx, query)
			return c, err
		}
	}
	// The sweep needs enough chunks at the largest size for the min/max
	// thresholds to discriminate; force a long context (bounded by MaxSeq
	// minus room for query and decode).
	ctxTokens := 7 * sizes[len(sizes)-1]
	if ctxTokens > e.cfg.MaxSeq-160 {
		ctxTokens = e.cfg.MaxSeq - 160
	}
	if ctxTokens < e.cfg.ContextTokens {
		ctxTokens = e.cfg.ContextTokens
	}
	scores, err := e.EvalPlans(m, ds, preps, ctxTokens, 0x7ab3)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table III: impact of chunk size on QMSum (Llama2-7B-sim, ROUGE x100)",
		Header: []string{"Chunk Size"},
	}
	row := []string{"Rouge Score"}
	for i, cs := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%d", cs))
		row = append(row, pct(scores[i]))
	}
	t.Rows = append(t.Rows, row)
	t.Notes = append(t.Notes,
		"paper shape: flat <= 32, dropping beyond (needle dilution).",
		"substrate shape: 32 optimal; below 32 the planted span fragments across chunks",
		"(see EXPERIMENTS.md for the deviation discussion)")
	return t, nil
}

// Table4 reproduces Table IV: Cocktail accuracy under the four context/
// query encoders on four datasets (Llama2-7B analog), plus the FP16
// baseline row.
func Table4(e *Env) (*Table, error) {
	names := []string{"Qasper", "SAMSum", "TriviaQA", "RepoBench-P"}
	m := e.Models[0]
	t := &Table{
		Title:  "Table IV: encoder comparison on Llama2-7B-sim (scores x100)",
		Header: append([]string{"Method"}, names...),
	}

	baseline, err := core.MethodByName(e.Lex, "FP16")
	if err != nil {
		return nil, err
	}
	var methods []core.Method
	methods = append(methods, baseline)
	for _, enc := range core.Encoders(e.Lex) {
		ct := core.NewCocktail(e.Lex)
		ct.Encoder = enc
		methods = append(methods, ct)
	}

	rows := make([][]string, len(methods))
	labels := []string{"Baseline (FP16)"}
	for _, enc := range core.Encoders(e.Lex) {
		labels = append(labels, enc.Name())
	}
	for i := range rows {
		rows[i] = []string{labels[i]}
	}
	for di, name := range names {
		ds, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		scores, err := e.EvalRow(m, ds, methods, uint64(0x40+di))
		if err != nil {
			return nil, err
		}
		for i, v := range scores {
			rows[i] = append(rows[i], pct(v))
		}
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "expected shape: Facebook-Contriever best, BM25 worst (paraphrased queries)")
	return t, nil
}

// Table5 reproduces Table V: the two-module ablation on QMSum
// (Llama2-7B): accuracy from the functional simulation, GPU memory and
// TPOT from the cost model with each variant's profile.
func Table5(e *Env) (*Table, error) {
	ds, err := datasets.ByName("QMSum")
	if err != nil {
		return nil, err
	}
	m := e.Models[0]
	methods := core.AblationMethods(e.Lex)
	scores, err := e.EvalRow(m, ds, methods, 0x5ab1)
	if err != nil {
		return nil, err
	}

	g := hwmodel.A800()
	dims := hwmodel.Llama2_7B()
	wl := hwmodel.QMSumWorkload(dims)
	t := &Table{
		Title:  "Table V: module ablation on QMSum, Llama2-7B (accuracy x100; cost model)",
		Header: []string{"Method", "Score", "GPU Memory (GB)", "TPOT (us)"},
	}
	labels := []string{"Baseline (FP16)", "w/o Module I", "w/o Module II", "Cocktail"}
	for i, meth := range methods {
		prof := meth.CostProfile()
		t.Rows = append(t.Rows, []string{
			labels[i],
			pct(scores[i]),
			gb(hwmodel.Memory(dims, wl, prof)),
			us(hwmodel.TPOT(g, dims, wl, prof)),
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: w/o Module I loses accuracy at Cocktail-level cost;",
		"w/o Module II keeps accuracy but exceeds even FP16 memory (dequant workspace) at FP16-level TPOT")
	return t, nil
}
