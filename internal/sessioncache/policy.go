package sessioncache

import (
	"container/list"
	"time"

	"repro/internal/metrics"
)

// Segment identifies the residency class of an admitted entry. The store
// keeps one LRU list per segment (per shard): SegmentProtected is the
// main cache (shard budget minus the probation cap), SegmentProbation is
// the small A1in trial segment a full-2Q policy admits first sightings
// into. Policies with no probation segment place everything in
// SegmentProtected.
type Segment int

const (
	// SegmentProtected is the main cache segment.
	SegmentProtected Segment = iota
	// SegmentProbation is the byte-budgeted A1in trial segment.
	SegmentProbation
)

// String returns the segment label used in stats ("protected",
// "probation").
func (s Segment) String() string {
	if s == SegmentProbation {
		return "probation"
	}
	return "protected"
}

// Policy is the admission side of the cache: it decides which keys may
// occupy byte-accounted residency and in which segment. Eviction order
// stays strict LRU within each segment over that segment's byte budget
// (that part is the Store's job); the policy only answers "does this key
// deserve residency yet, and in which segment?" — which is what makes
// the store scan-resistant or not. Every callback receives the full Key,
// so a policy may route on Key.Kind (see PolicyPerKind) and keep
// separate admission state per artifact kind.
//
// The Store calls every method with its own mutex held, so
// implementations need no internal locking — but a Policy used standalone
// (tests, other stores) is NOT safe for concurrent use and must be
// externally serialized. A Policy instance must not be shared between two
// Stores.
type Policy interface {
	// Name returns the policy label surfaced in stats ("lru", "2q",
	// "a1", "adaptive").
	Name() string
	// Admit is consulted on Put of a key not currently resident in
	// either segment. bytes is the value's footprint (an A1 policy uses
	// it to refuse probation residency to values that could never fit
	// the probation cap). Returning ok=false drops the value (the
	// caller's Put reports false); the policy may remember the sighting
	// so a repeat Put is admitted. now is the store's clock reading.
	// The store only calls Admit for values that fit the protected
	// budget of the key's shard, and a policy must not route a value to
	// the probation segment unless it fits that shard's probation cap —
	// so an admitted value always fits its segment.
	Admit(k Key, bytes int64, now time.Time) (seg Segment, ok bool)
	// OnHit observes a Get hit (or a Put replacing a resident key) on a
	// key resident in seg, and returns the segment the entry should now
	// live in — returning SegmentProtected for a probation resident is
	// how an A1 policy promotes on re-reference. Returning seg unchanged
	// is always valid.
	OnHit(k Key, seg Segment, now time.Time) Segment
	// OnMiss observes a full Get miss on k (including TTL-expiry
	// misses). Policies use it for observability only — it must not
	// count as a sighting, or a single request's Get-miss + Put pair
	// would defeat two-sighting admission.
	OnMiss(k Key, now time.Time)
	// OnEvict observes k leaving seg under byte pressure (not TTL
	// expiry, not manual Delete). hit reports whether the entry was ever
	// re-referenced while resident — an eviction with hit=false is the
	// signature of one-shot scan traffic. A 2Q-style policy re-ghosts
	// the victim so a still-warm key that lost an eviction race is
	// readmitted on its next sighting instead of starting over.
	OnEvict(k Key, seg Segment, hit bool, now time.Time)
	// OnExpire observes k leaving seg by TTL expiry (the lazy expiry in
	// Get, or Sweep) — the idle analogue of OnEvict with the same
	// arguments. A 2Q-style policy treats it exactly like an eviction:
	// a probation entry that expires without re-reference is a washout
	// (counted as a scan rejection and ghosted) just as if byte
	// pressure had evicted it, so TTL-heavy traffic cannot hide
	// admission pain from an adaptive controller.
	//
	// Manual Store.Delete is deliberately NOT reported through this (or
	// any) callback: the caller invalidated the value, so the key earns
	// neither a ghost re-sighting nor a washout count.
	OnExpire(k Key, seg Segment, hit bool, now time.Time)
	// ProbationCap is called once per shard by the store at New, with
	// the shard's kind ("" for the shared shard), its byte budget, and
	// the store's configured carve-out for it in bytes (want <= 0 when
	// Options.Kinds specifies none — the policy then sizes the cap
	// itself). It returns the probation carve-out the store reserves; 0
	// means no probation segment for that shard. The cap must not
	// exceed maxBytes/2 (clamp and remember the clamped value per kind —
	// the returned cap is the one Admit must enforce for that kind's
	// keys), so the store and the policy can never disagree on what
	// fits probation, and anything that fits probation always fits the
	// protected segment too. A policy with no probation machinery
	// (lru, ghost-only 2q, adaptive) returns 0 regardless of want.
	ProbationCap(kind Kind, maxBytes, want int64) int64
	// Stats snapshots the policy's admission counters. The store overlays
	// the segment-occupancy fields (and the promotion counter), which
	// only it can know, and redistributes the per-kind breakdown (Kinds)
	// into its own per-kind stats blocks.
	Stats() AdmissionStats
}

// AdmissionStats is a point-in-time snapshot of a policy's admission
// counters plus the store's segment occupancy. Counter fields are
// monotonic totals; the entry/byte fields describe current state (always
// zero for PolicyLRU apart from the protected occupancy).
type AdmissionStats struct {
	// Policy is the policy label ("lru", "2q", "a1" or "adaptive").
	Policy string `json:"policy"`
	// Mode is the adaptive controller's current mode ("permissive" or
	// "conservative"); empty for the static policies. Under a per-kind
	// router whose kinds disagree it reads "mixed" — the per-kind
	// blocks carry the individual modes.
	Mode string `json:"mode,omitempty"`
	// ProbationHits counts re-references that found the key on
	// probation: for ghost-only 2Q, Get misses on ghosted keys (requests
	// that would have been hits had the key been admitted); for A1, Get
	// hits served from the probation byte segment. A lazy-expiry Get
	// counts too (the expiry re-ghosts the key, and the same Get then
	// misses on that ghost) — deliberately, mirroring the evict-then-
	// miss sequence it compresses into one call; only the reject-origin
	// slice feeds adaptive decisions, so this never reads as admission
	// pain.
	ProbationHits int64 `json:"probation_hits"`
	// GhostPromotions counts admissions earned by a remembered sighting
	// (the key was on the ghost list and went straight to the protected
	// segment).
	GhostPromotions int64 `json:"ghost_promotions"`
	// SegmentPromotions counts probation residents promoted to the
	// protected segment on re-reference (A1 only; counted by the store,
	// which performs the move).
	SegmentPromotions int64 `json:"segment_promotions"`
	// ScanRejections counts sightings judged scan-like: Puts declined
	// with only the key remembered (ghost-only 2Q, or an A1 value too
	// big for the probation cap), plus probation entries evicted — or
	// TTL-expired — without ever being re-referenced (A1 washouts).
	ScanRejections int64 `json:"scan_rejections"`
	// PolicyFlips counts adaptive mode changes (always 0 for the static
	// policies).
	PolicyFlips int64 `json:"policy_flips"`
	// GhostEntries is the current ghost-list population; GhostLimit its
	// capacity.
	GhostEntries int `json:"ghost_entries"`
	GhostLimit   int `json:"ghost_limit"`
	// Segment occupancy (filled by the store): current entry counts and
	// byte totals per segment, plus the probation byte cap (summed over
	// shards).
	ProbationEntries  int   `json:"probation_entries"`
	ProbationBytes    int64 `json:"probation_bytes"`
	ProbationCapBytes int64 `json:"probation_cap_bytes"`
	ProtectedEntries  int   `json:"protected_entries"`
	ProtectedBytes    int64 `json:"protected_bytes"`
	// Kinds is the per-kind admission breakdown a routing policy
	// (PolicyPerKind) reports; nil for kind-blind policies. The store's
	// Stats moves these blocks into its own per-kind stats, so the
	// field is populated only on a Policy.Stats read, never through
	// Store.Stats.
	Kinds map[string]AdmissionStats `json:"kinds,omitempty"`
}

// PolicyLRU is the PR-2 behavior: every Put is admitted straight to the
// protected segment, recency alone decides who survives. It keeps no
// state.
type PolicyLRU struct{}

// NewPolicyLRU returns the admit-everything policy.
func NewPolicyLRU() *PolicyLRU { return &PolicyLRU{} }

// Name returns "lru".
func (*PolicyLRU) Name() string { return "lru" }

// Admit always reports (SegmentProtected, true).
func (*PolicyLRU) Admit(Key, int64, time.Time) (Segment, bool) { return SegmentProtected, true }

// OnHit keeps the entry where it is.
func (*PolicyLRU) OnHit(_ Key, seg Segment, _ time.Time) Segment { return seg }

// OnMiss is a no-op.
func (*PolicyLRU) OnMiss(Key, time.Time) {}

// OnEvict is a no-op.
func (*PolicyLRU) OnEvict(Key, Segment, bool, time.Time) {}

// OnExpire is a no-op.
func (*PolicyLRU) OnExpire(Key, Segment, bool, time.Time) {}

// ProbationCap reports 0 for every shard: LRU has no probation segment.
func (*PolicyLRU) ProbationCap(Kind, int64, int64) int64 { return 0 }

// Stats reports zero counters under the "lru" label.
func (*PolicyLRU) Stats() AdmissionStats { return AdmissionStats{Policy: "lru"} }

// DefaultGhostEntries is Policy2Q's ghost-list capacity when the
// configured limit is <= 0.
const DefaultGhostEntries = 1024

// Policy2Q is scan-resistant 2Q admission. It runs in one of two modes,
// selected at construction:
//
// Ghost-only (NewPolicy2Q, name "2q"): the probation half of the classic
// 2Q design with no probation bytes. A key's first Put is declined: the
// value is dropped and only the key lands on a bounded ghost list (keys
// and timestamps, no bytes — the A1out queue). A second Put within the
// sighting window promotes the key into the protected segment. One-shot
// scan traffic therefore never displaces admitted entries — each scan key
// dies on the ghost list — while anything seen twice (a reused session
// context) is cached exactly as under PolicyLRU, one extra cold run
// later.
//
// Full A1in/A1out (NewPolicyA1, name "a1"): first sightings are admitted
// after all, but only into a small byte-budgeted probation segment (the
// A1in queue), so even a one-shot key can hit within a burst. A
// re-reference while on probation promotes the entry to the protected
// segment (the store performs the move); a probation entry evicted — or
// TTL-expired — without re-reference was a scan and its key falls
// through to the ghost list, from where a later sighting readmits
// straight to protected. A value too large for the probation cap cannot
// be trialled byte-wise and falls back to ghost-only admission. The
// probation cap is negotiated per shard kind through ProbationCap, so a
// store with per-kind budgets trials each kind against its own cap.
//
// In both modes, keys evicted from the protected segment under byte
// pressure (or expired idle) are re-ghosted, so a warm key squeezed out
// by other warm traffic is readmitted on its next single sighting. The
// ghost list proactively drops sightings older than the window: a scan
// flood's dead ghosts cannot linger at the bound's expense once they can
// no longer earn an admission.
type Policy2Q struct {
	name    string
	limit   int
	window  time.Duration  // max gap between sightings; <= 0 means unbounded
	probCap int64          // configured probation byte budget; 0 = ghost-only
	caps    map[Kind]int64 // per-shard clamped caps negotiated at store New

	ll     *list.List // front = most recent sighting; values are *ghost
	ghosts map[Key]*list.Element

	probationHits metrics.Counter
	promotions    metrics.Counter
	rejections    metrics.Counter

	// Reject-origin slices of the two counters above: only sightings of
	// ghosts created by a *declined Put* (not by eviction re-ghosting).
	// They measure the second-sighting tax actually paid by reused keys,
	// which is the adaptive controller's flip-back evidence — an evicted
	// warm key readmits on one sighting and pays no tax, so counting it
	// would make byte pressure masquerade as admission pain.
	rejPromotions metrics.Counter
	rejProbHits   metrics.Counter
}

type ghost struct {
	key  Key
	seen time.Time
	// rejected records the ghost's origin: true for a declined Put,
	// false for an eviction/expiry re-ghost.
	rejected bool
}

// NewPolicy2Q builds a ghost-only 2Q admission policy holding up to
// ghostEntries probation keys (<= 0 selects DefaultGhostEntries). window
// bounds the gap between the two sightings: a ghost older than the window
// does not count as a first sighting anymore (<= 0 disables the bound).
// Stores pass their TTL here so admission and retention share one
// idleness horizon.
func NewPolicy2Q(ghostEntries int, window time.Duration) *Policy2Q {
	return newPolicy2Q("2q", ghostEntries, window, 0)
}

// NewPolicyA1 builds the full A1in/A1out policy: like NewPolicy2Q, plus
// first sightings are admitted into a probation segment of up to
// probationBytes (must be > 0 and less than the owning store's budget;
// the store carves it out per shard, and a per-kind KindBudget's
// ProbationPct overrides this figure for that kind's shard).
func NewPolicyA1(ghostEntries int, window time.Duration, probationBytes int64) *Policy2Q {
	if probationBytes < 0 {
		probationBytes = 0
	}
	return newPolicy2Q("a1", ghostEntries, window, probationBytes)
}

func newPolicy2Q(name string, ghostEntries int, window time.Duration, probCap int64) *Policy2Q {
	if ghostEntries <= 0 {
		ghostEntries = DefaultGhostEntries
	}
	return &Policy2Q{
		name:    name,
		limit:   ghostEntries,
		window:  window,
		probCap: probCap,
		caps:    make(map[Kind]int64),
		ll:      list.New(),
		ghosts:  make(map[Key]*list.Element),
	}
}

// Name returns "2q" (ghost-only) or "a1" (full A1in/A1out).
func (p *Policy2Q) Name() string { return p.name }

// capFor returns the probation cap governing a kind's keys: the cap
// negotiated for its dedicated shard, else the shared shard's, else the
// constructor figure (a policy driven without a store attach).
func (p *Policy2Q) capFor(kind Kind) int64 {
	if c, ok := p.caps[kind]; ok {
		return c
	}
	if c, ok := p.caps[""]; ok {
		return c
	}
	return p.probCap
}

// Admit promotes a key sighted within the window straight to the
// protected segment; a first sighting is admitted to probation when the
// value can fit its shard's probation cap, and ghosted otherwise. See
// the type comment for the full protocol.
func (p *Policy2Q) Admit(k Key, bytes int64, now time.Time) (Segment, bool) {
	p.reapStale(now)
	if el, ok := p.ghosts[k]; ok {
		// reapStale just dropped every out-of-window sighting, so a
		// surviving ghost is in-window by construction: promote.
		g := el.Value.(*ghost)
		p.ll.Remove(el)
		delete(p.ghosts, k)
		p.promotions.Inc()
		if g.rejected {
			p.rejPromotions.Inc()
		}
		return SegmentProtected, true
	}
	if cap := p.capFor(k.Kind); cap > 0 && bytes <= cap {
		// First sighting, A1 mode: trial residency in the probation
		// segment instead of a bytes-free ghost. The resident entry
		// itself is the sighting record, so no ghost is added.
		return SegmentProbation, true
	}
	p.addGhost(k, now, true)
	p.rejections.Inc()
	return SegmentProtected, false
}

// addGhost records a sighting for a key with no ghost entry, trimming
// the list to its bound (oldest sightings forgotten first). Stale
// sightings are reaped before the bound applies, so the limit bounds
// live sightings — ones that could still earn an admission — rather
// than a scan flood's dead residue.
func (p *Policy2Q) addGhost(k Key, now time.Time, rejected bool) {
	p.reapStale(now)
	p.ghosts[k] = p.ll.PushFront(&ghost{key: k, seen: now, rejected: rejected})
	for p.ll.Len() > p.limit {
		lru := p.ll.Back()
		delete(p.ghosts, lru.Value.(*ghost).key)
		p.ll.Remove(lru)
	}
}

// reapStale drops ghosts whose sighting fell out of the window. The list
// is ordered by sighting time (the store's clock is monotonic across
// calls), so only dead tail entries plus one live sentinel are touched —
// O(dropped), not O(list).
func (p *Policy2Q) reapStale(now time.Time) {
	if p.window <= 0 {
		return
	}
	for el := p.ll.Back(); el != nil; el = p.ll.Back() {
		g := el.Value.(*ghost)
		if now.Sub(g.seen) <= p.window {
			break
		}
		delete(p.ghosts, g.key)
		p.ll.Remove(el)
	}
}

// OnHit promotes probation residents to the protected segment on
// re-reference (the A1in -> Am transition) and counts the hit.
func (p *Policy2Q) OnHit(_ Key, seg Segment, _ time.Time) Segment {
	if seg == SegmentProbation {
		p.probationHits.Inc()
		return SegmentProtected
	}
	return seg
}

// OnMiss counts misses on ghosted keys (observability only; it never
// creates or refreshes a ghost — see the Policy contract).
func (p *Policy2Q) OnMiss(k Key, now time.Time) {
	if el, ok := p.ghosts[k]; ok {
		if g := el.Value.(*ghost); p.window <= 0 || now.Sub(g.seen) <= p.window {
			p.probationHits.Inc()
			if g.rejected {
				p.rejProbHits.Inc()
			}
		}
	}
}

// OnEvict re-ghosts a byte-pressure victim so its next sighting readmits
// straight to protected. A probation victim that was never re-referenced
// is counted as a scan rejection — it is the A1 analogue of a declined
// Put: the key was trialled and the traffic never came back.
func (p *Policy2Q) OnEvict(k Key, seg Segment, hit bool, now time.Time) {
	if el, ok := p.ghosts[k]; ok { // shouldn't happen (resident ⇒ not ghosted)
		p.ll.Remove(el)
		delete(p.ghosts, k)
	}
	if seg == SegmentProbation && !hit {
		p.rejections.Inc()
	}
	p.addGhost(k, now, false)
}

// OnExpire treats TTL expiry exactly like a byte-pressure eviction: a
// never-re-referenced probation entry that merely expired is still a
// washout (counted as a scan rejection), and the key is re-ghosted so
// traffic returning right after the idle horizon readmits on one
// sighting. Without this, TTL-heavy streams would wash trials out
// invisibly and under-report admission pain.
func (p *Policy2Q) OnExpire(k Key, seg Segment, hit bool, now time.Time) {
	p.OnEvict(k, seg, hit, now)
}

// ProbationCap negotiates one shard's probation carve-out (see the
// Policy contract): ghost-only mode always reports 0; A1 mode takes the
// store's configured carve-out when given (want > 0) and its own
// constructor figure otherwise, clamps to half the shard budget so the
// protected segment always dominates and anything fitting probation also
// fits protected, and remembers the clamped value per kind — Admit then
// enforces exactly the cap the store carves out for that kind's shard.
func (p *Policy2Q) ProbationCap(kind Kind, maxBytes, want int64) int64 {
	if p.probCap <= 0 {
		return 0
	}
	c := p.probCap
	if want > 0 {
		c = want
	}
	if c > maxBytes/2 {
		c = maxBytes / 2
	}
	p.caps[kind] = c
	return c
}

// Stats snapshots the admission counters and ghost occupancy.
func (p *Policy2Q) Stats() AdmissionStats {
	return AdmissionStats{
		Policy:          p.name,
		ProbationHits:   p.probationHits.Load(),
		GhostPromotions: p.promotions.Load(),
		ScanRejections:  p.rejections.Load(),
		GhostEntries:    p.ll.Len(),
		GhostLimit:      p.limit,
	}
}
