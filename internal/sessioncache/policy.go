package sessioncache

import (
	"container/list"
	"time"

	"repro/internal/metrics"
)

// Policy is the admission side of the cache: it decides which keys may
// occupy the byte-accounted main store. Eviction order stays strict LRU
// over the byte budget (that part is the Store's job); the policy only
// answers "does this key deserve main-cache residency yet?" — which is
// what makes the store scan-resistant or not.
//
// The Store calls every method with its own mutex held, so
// implementations need no internal locking — but a Policy used standalone
// (tests, other stores) is NOT safe for concurrent use and must be
// externally serialized. A Policy instance must not be shared between two
// Stores.
type Policy interface {
	// Name returns the policy label surfaced in stats ("lru", "2q").
	Name() string
	// Admit is consulted on Put of a key not currently resident in the
	// main cache. Returning false drops the value (the caller's Put
	// reports false); the policy may remember the sighting so a repeat
	// Put is admitted. now is the store's clock reading for this call.
	Admit(k Key, now time.Time) bool
	// OnMiss observes a main-cache Get miss on k (including TTL-expiry
	// misses). Policies use it for observability only — it must not
	// count as a sighting, or a single request's Get-miss + Put pair
	// would defeat two-sighting admission.
	OnMiss(k Key, now time.Time)
	// OnEvict observes k leaving the main cache under byte pressure
	// (not TTL expiry, not manual Delete). A 2Q-style policy re-ghosts
	// the victim so a still-warm key that lost an eviction race is
	// readmitted on its next sighting instead of starting over.
	OnEvict(k Key, now time.Time)
	// Stats snapshots the policy's admission counters.
	Stats() AdmissionStats
}

// AdmissionStats is a point-in-time snapshot of a policy's admission
// counters. Counter fields are monotonic totals; GhostEntries/GhostLimit
// describe the current probation state (always zero for PolicyLRU).
type AdmissionStats struct {
	// Policy is the policy label ("lru" or "2q").
	Policy string `json:"policy"`
	// ProbationHits counts Get misses on keys that were on probation —
	// requests that would have been hits had the key been admitted.
	ProbationHits int64 `json:"probation_hits"`
	// GhostPromotions counts admissions earned by a second sighting
	// (the key was on the ghost list and got promoted into the store).
	GhostPromotions int64 `json:"ghost_promotions"`
	// ScanRejections counts Puts declined on first sighting (the value
	// was dropped and only the key was remembered).
	ScanRejections int64 `json:"scan_rejections"`
	// GhostEntries is the current ghost-list population; GhostLimit its
	// capacity.
	GhostEntries int `json:"ghost_entries"`
	GhostLimit   int `json:"ghost_limit"`
}

// PolicyLRU is the PR-2 behavior: every Put is admitted, recency alone
// decides who survives. It keeps no state.
type PolicyLRU struct{}

// NewPolicyLRU returns the admit-everything policy.
func NewPolicyLRU() *PolicyLRU { return &PolicyLRU{} }

// Name returns "lru".
func (*PolicyLRU) Name() string { return "lru" }

// Admit always reports true.
func (*PolicyLRU) Admit(Key, time.Time) bool { return true }

// OnMiss is a no-op.
func (*PolicyLRU) OnMiss(Key, time.Time) {}

// OnEvict is a no-op.
func (*PolicyLRU) OnEvict(Key, time.Time) {}

// Stats reports zero counters under the "lru" label.
func (*PolicyLRU) Stats() AdmissionStats { return AdmissionStats{Policy: "lru"} }

// DefaultGhostEntries is Policy2Q's ghost-list capacity when the
// configured limit is <= 0.
const DefaultGhostEntries = 1024

// Policy2Q is scan-resistant two-sighting admission (the probation half
// of the classic 2Q design). A key's first Put is declined: the value is
// dropped and only the key lands on a bounded ghost list (keys and
// timestamps, no bytes). A second Put within the sighting window promotes
// the key into the main store. One-shot scan traffic therefore never
// displaces admitted entries — each scan key dies on the ghost list —
// while anything seen twice (a reused session context) is cached exactly
// as under PolicyLRU, one extra cold run later.
//
// Keys evicted from the main store under byte pressure are re-ghosted,
// so a warm key squeezed out by other warm traffic is readmitted on its
// next single sighting.
type Policy2Q struct {
	limit  int
	window time.Duration // max gap between sightings; <= 0 means unbounded

	ll     *list.List // front = most recent sighting; values are *ghost
	ghosts map[Key]*list.Element

	probationHits metrics.Counter
	promotions    metrics.Counter
	rejections    metrics.Counter
}

type ghost struct {
	key  Key
	seen time.Time
}

// NewPolicy2Q builds a 2Q admission policy holding up to ghostEntries
// probation keys (<= 0 selects DefaultGhostEntries). window bounds the
// gap between the two sightings: a ghost older than the window does not
// count as a first sighting anymore (<= 0 disables the bound). Stores
// pass their TTL here so admission and retention share one idleness
// horizon.
func NewPolicy2Q(ghostEntries int, window time.Duration) *Policy2Q {
	if ghostEntries <= 0 {
		ghostEntries = DefaultGhostEntries
	}
	return &Policy2Q{
		limit:  ghostEntries,
		window: window,
		ll:     list.New(),
		ghosts: make(map[Key]*list.Element),
	}
}

// Name returns "2q".
func (p *Policy2Q) Name() string { return "2q" }

// Admit promotes a key sighted within the window and ghosts everything
// else. See the type comment for the full protocol.
func (p *Policy2Q) Admit(k Key, now time.Time) bool {
	if el, ok := p.ghosts[k]; ok {
		g := el.Value.(*ghost)
		p.ll.Remove(el)
		delete(p.ghosts, k)
		if p.window <= 0 || now.Sub(g.seen) <= p.window {
			p.promotions.Inc()
			return true
		}
		// The earlier sighting is stale; treat this one as the first.
	}
	p.addGhost(k, now)
	p.rejections.Inc()
	return false
}

// addGhost records a sighting for a key with no ghost entry, trimming
// the list to its bound (oldest sightings forgotten first).
func (p *Policy2Q) addGhost(k Key, now time.Time) {
	p.ghosts[k] = p.ll.PushFront(&ghost{key: k, seen: now})
	for p.ll.Len() > p.limit {
		lru := p.ll.Back()
		delete(p.ghosts, lru.Value.(*ghost).key)
		p.ll.Remove(lru)
	}
}

// OnMiss counts misses on ghosted keys (observability only; it never
// creates or refreshes a ghost — see the Policy contract).
func (p *Policy2Q) OnMiss(k Key, now time.Time) {
	if el, ok := p.ghosts[k]; ok {
		if g := el.Value.(*ghost); p.window <= 0 || now.Sub(g.seen) <= p.window {
			p.probationHits.Inc()
		}
	}
}

// OnEvict re-ghosts a byte-pressure victim so its next sighting readmits.
func (p *Policy2Q) OnEvict(k Key, now time.Time) {
	if el, ok := p.ghosts[k]; ok { // shouldn't happen (resident ⇒ not ghosted)
		p.ll.Remove(el)
	}
	p.addGhost(k, now)
}

// Stats snapshots the admission counters and ghost occupancy.
func (p *Policy2Q) Stats() AdmissionStats {
	return AdmissionStats{
		Policy:          "2q",
		ProbationHits:   p.probationHits.Load(),
		GhostPromotions: p.promotions.Load(),
		ScanRejections:  p.rejections.Load(),
		GhostEntries:    p.ll.Len(),
		GhostLimit:      p.limit,
	}
}
