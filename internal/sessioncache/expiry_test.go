package sessioncache

import (
	"sync"
	"testing"
	"time"
)

// TestExpiryWashoutCountsAndReghosts is the TTL-bypass bugfix proof: an
// A1 probation entry that *expires* without re-reference must be treated
// exactly like a byte-pressure washout — counted as a scan rejection and
// re-ghosted — instead of vanishing invisibly past the policy. (On the
// pre-fix store, Sweep removed the entry without notifying the policy:
// no rejection, no ghost, and the later Put restarted probation.)
func TestExpiryWashoutCountsAndReghosts(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 100, TTL: time.Minute,
		Policy: NewPolicyA1(16, time.Minute, 20),
		Now:    func() time.Time { return now },
	})
	s.Put(key(0), fakeValue{bytes: 10}) // probation trial
	now = now.Add(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep expired %d entries, want 1", n)
	}
	st := s.Stats()
	if st.Expirations != 1 || st.Admission.ScanRejections != 1 || st.Admission.GhostEntries != 1 {
		t.Fatalf("expiry washout bookkeeping: %+v", st)
	}
	// The re-ghost is live (seen at expiry time): traffic returning
	// right after the idle horizon readmits on a single sighting,
	// exactly as it would after an eviction.
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("expired washout must readmit on one sighting")
	}
	if st := s.Stats(); st.Admission.GhostPromotions != 1 {
		t.Fatalf("readmission must come from the ghost list: %+v", st.Admission)
	}
}

// TestLazyExpiryNotifiesPolicy: the lazy expiry inside Get must follow
// the same OnExpire path as Sweep — washout counted, key re-ghosted —
// and the same Get's miss then observes the fresh ghost (a probation
// hit: a request a longer-TTL cache would have served).
func TestLazyExpiryNotifiesPolicy(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 100, TTL: time.Minute,
		Policy: NewPolicyA1(16, time.Minute, 20),
		Now:    func() time.Time { return now },
	})
	s.Put(key(0), fakeValue{bytes: 10}) // probation trial
	now = now.Add(2 * time.Minute)
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("idle entry must expire")
	}
	st := s.Stats()
	if st.Expirations != 1 || st.Misses != 1 ||
		st.Admission.ScanRejections != 1 || st.Admission.GhostEntries != 1 {
		t.Fatalf("lazy expiry bookkeeping: %+v", st)
	}
	if st.Admission.ProbationHits != 1 {
		t.Fatalf("the expiring Get must count as a probation hit: %+v", st.Admission)
	}
}

// TestPutExpiresStaleResident: a Put landing on a TTL-stale resident
// must behave exactly like Get-then-Put — the stale entry is expired
// through the policy (washout + re-ghost) and the new value faces
// Admit — not be waved through as a live re-reference. Here the expiry
// re-ghost makes the Put a ghost promotion; the stale key never skips
// admission.
func TestPutExpiresStaleResident(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 100, TTL: time.Minute,
		Policy: NewPolicyA1(16, time.Minute, 20),
		Now:    func() time.Time { return now },
	})
	s.Put(key(0), fakeValue{bytes: 10}) // probation trial, never re-referenced
	now = now.Add(2 * time.Minute)
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("the expiry re-ghost must readmit the key on this sighting")
	}
	st := s.Stats()
	if st.Expirations != 1 || st.Admission.ScanRejections != 1 {
		t.Fatalf("stale resident must be expired as a washout first: %+v", st)
	}
	if st.Admission.GhostPromotions != 1 || st.Admission.ProtectedEntries != 1 ||
		st.Admission.ProbationEntries != 0 {
		t.Fatalf("replacement must re-earn residency through Admit: %+v", st.Admission)
	}
	// Counter-case: within the TTL the same Put is a plain replacement
	// (re-reference), with no expiry and no admission consultation.
	now = now.Add(30 * time.Second)
	if !s.Put(key(0), fakeValue{bytes: 12}) {
		t.Fatal("live replacement must be admitted")
	}
	if st := s.Stats(); st.Expirations != 1 || st.Admission.GhostPromotions != 1 {
		t.Fatalf("live replacement must not touch expiry/admission state: %+v", st)
	}
}

// TestDeleteStaysSilentTowardPolicy pins the contract's third removal
// path: a manual Delete notifies nobody — no ghost, no washout count —
// so the key's next Put is a plain first sighting.
func TestDeleteStaysSilentTowardPolicy(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	s.Put(key(0), fakeValue{bytes: 10}) // probation trial
	if !s.Delete(key(0)) {
		t.Fatal("delete of resident entry must report true")
	}
	st := s.Stats()
	if st.Admission.ScanRejections != 0 || st.Admission.GhostEntries != 0 ||
		st.Admission.GhostPromotions != 0 {
		t.Fatalf("manual delete moved admission state: %+v", st.Admission)
	}
	// Re-Put restarts as a first sighting (probation), not a ghost
	// promotion.
	s.Put(key(0), fakeValue{bytes: 10})
	if st := s.Stats(); st.Admission.GhostPromotions != 0 || st.Admission.ProbationEntries != 1 {
		t.Fatalf("post-delete re-insert must restart probation: %+v", st.Admission)
	}
}

// TestAdaptiveFlipAgnosticToChurnOrigin: the adaptive controller must
// make the identical flip decision whether one-shot churn reaches it as
// byte-pressure evictions or as TTL expirations — the two stores below
// see the same admission decisions, differing only in how the admitted
// entries die.
func TestAdaptiveFlipAgnosticToChurnOrigin(t *testing.T) {
	// Eviction-churn store: tiny budget, no TTL.
	evict := New(Options{MaxBytes: 100, Policy: NewPolicyAdaptive(64, 0, 8)})
	// Expiry-churn store: roomy budget, entries die of idleness between
	// decisions instead.
	now := time.Unix(1000, 0)
	expire := New(Options{
		MaxBytes: 1 << 20, TTL: time.Minute,
		Policy: NewPolicyAdaptive(64, time.Minute, 8),
		Now:    func() time.Time { return now },
	})
	for i := 0; i < 16; i++ {
		evict.Put(key(i), fakeValue{bytes: 40}) // 2 fit: steady eviction churn
		expire.Put(key(i), fakeValue{bytes: 40})
		now = now.Add(2 * time.Minute) // the entry idles out before the next decision
		expire.Sweep()
	}
	es, xs := evict.Stats().Admission, expire.Stats().Admission
	if es.Mode != ModeConservative || es.PolicyFlips != 1 {
		t.Fatalf("eviction churn must flip to conservative: %+v", es)
	}
	if xs.Mode != es.Mode || xs.PolicyFlips != es.PolicyFlips {
		t.Fatalf("expiry churn decided differently: eviction=%+v expiry=%+v", es, xs)
	}
}

// TestPolicy2QGhostStaleReap: ghosts whose sighting fell out of the
// window are dropped proactively on the next admission-path access, so
// the bounded list holds live sightings — not a scan flood's residue —
// and its occupancy metric reflects keys that can still earn admission.
func TestPolicy2QGhostStaleReap(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 1000, TTL: time.Minute,
		Policy: NewPolicy2Q(8, time.Minute),
		Now:    func() time.Time { return now },
	})
	for i := 0; i < 8; i++ { // fill the ghost list
		s.Put(key(i), fakeValue{bytes: 1})
	}
	if st := s.Stats(); st.Admission.GhostEntries != 8 {
		t.Fatalf("precondition: %+v", st.Admission)
	}
	now = now.Add(2 * time.Minute) // every sighting is now out of window
	s.Put(key(100), fakeValue{bytes: 1})
	if st := s.Stats(); st.Admission.GhostEntries != 1 {
		t.Fatalf("stale ghosts must be reaped on access, have %d live, want 1", st.Admission.GhostEntries)
	}
	// The reaped sightings are really gone (first-sighting semantics
	// again), while the fresh one admits.
	if s.Put(key(0), fakeValue{bytes: 1}) {
		t.Fatal("reaped sighting must not admit")
	}
	if !s.Put(key(100), fakeValue{bytes: 1}) {
		t.Fatal("live sighting must admit")
	}
}

// TestSweepBatchesLargeExpiry: a sweep far larger than one batch must
// still expire everything exactly once and drain the accounting.
func TestSweepBatchesLargeExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 1 << 20, TTL: time.Minute,
		Policy: NewPolicyA1(2048, time.Minute, 1<<18),
		Now:    func() time.Time { return now },
	})
	const n = 3*sweepBatchSize + 17
	for i := 0; i < n; i++ {
		if !s.Put(key(i), fakeValue{bytes: 8}) {
			t.Fatalf("put %d rejected", i)
		}
	}
	now = now.Add(2 * time.Minute)
	if got := s.Sweep(); got != n {
		t.Fatalf("Sweep expired %d entries, want %d", got, n)
	}
	st := s.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Expirations != n {
		t.Fatalf("store not drained: %+v", st)
	}
	if st.Kinds["prefill"].Entries != 0 || st.Kinds["prefill"].Bytes != 0 {
		t.Fatalf("per-kind accounting not drained: %+v", st.Kinds)
	}
}

// slowExpirePolicy delays every OnExpire, inflating each sweep batch's
// lock hold so the latency test below can tell "lock released between
// batches" from "lock held for the whole sweep".
type slowExpirePolicy struct {
	Policy
	delay time.Duration
}

func (p slowExpirePolicy) OnExpire(k Key, seg Segment, hit bool, now time.Time) {
	time.Sleep(p.delay)
	p.Policy.OnExpire(k, seg, hit, now)
}

// TestSweepLatencyBound: while a janitor sweeps a large fully-expired
// cache, concurrent Gets must only ever wait out one bounded batch, not
// the whole sweep — the regression this guards is Sweep holding the
// store mutex across its entire scan.
func TestSweepLatencyBound(t *testing.T) {
	const perEntry = 200 * time.Microsecond
	s := New(Options{
		MaxBytes: 1 << 20,
		TTL:      time.Nanosecond, // everything expires immediately
		Policy:   slowExpirePolicy{Policy: NewPolicyLRU(), delay: perEntry},
	})
	const n = 6 * sweepBatchSize
	for i := 0; i < n; i++ {
		s.Put(key(i), fakeValue{bytes: 8})
	}
	time.Sleep(time.Millisecond)

	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		s.Sweep()
		done <- time.Since(start)
	}()
	var maxGet time.Duration
	for {
		select {
		case sweepTook := <-done:
			// The sweep must have been slow enough for the bound to mean
			// anything (6 batches × 128 entries × 200µs ≈ 150ms), and no
			// Get may have waited anywhere near the whole sweep. The
			// generous fraction absorbs scheduler noise on slow CI.
			if sweepTook < 100*time.Millisecond {
				t.Skipf("sweep too fast (%v) for a meaningful latency bound", sweepTook)
			}
			if maxGet > sweepTook/2 {
				t.Fatalf("a Get stalled %v behind a %v sweep — batches are not releasing the lock",
					maxGet, sweepTook)
			}
			t.Logf("sweep %v, max concurrent Get %v", sweepTook, maxGet)
			return
		default:
			start := time.Now()
			s.Get(key(1_000_000)) // plain miss; still takes the store mutex
			if d := time.Since(start); d > maxGet {
				maxGet = d
			}
		}
	}
}

// TestExpiryAdmissionRace races TTL expiry (lazy and swept) against the
// full per-kind A1 admission machinery; run under -race this proves the
// OnExpire path and the per-kind accounting hold up on the serving hot
// path.
func TestExpiryAdmissionRace(t *testing.T) {
	pol := NewPolicyPerKind([]Kind{KindPrefill, KindSealed},
		func(Kind) Policy { return NewPolicyA1(128, 50*time.Microsecond, 256) })
	s := New(Options{
		MaxBytes: 1 << 20,
		TTL:      50 * time.Microsecond,
		Policy:   pol,
		Kinds:    map[Kind]KindBudget{KindSealed: {MaxBytes: 1 << 19, ProbationPct: 25}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kind := KindPrefill
			if g%2 == 0 {
				kind = KindSealed
			}
			for i := 0; i < 400; i++ {
				k := kindKey(kind, i%16)
				switch g % 3 {
				case 0:
					s.Put(k, fakeValue{bytes: 32})
				case 1:
					if _, ok := s.Get(k); !ok {
						s.Put(k, fakeValue{bytes: 32})
					}
				default:
					if i%32 == 0 {
						s.Sweep()
						s.Stats()
					} else {
						s.Get(k)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(time.Millisecond)
	s.Sweep()
	st := s.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("accounting did not drain after final sweep: %+v", st)
	}
	for kind, ks := range st.Kinds {
		if ks.Entries != 0 || ks.Bytes != 0 || ks.ProbationEntries != 0 || ks.ProbationBytes != 0 {
			t.Fatalf("kind %s accounting did not drain: %+v", kind, ks)
		}
	}
}
