// Package sessioncache is a concurrency-safe, byte-accounted LRU store
// for cross-request KV-cache reuse. It holds the two artifacts the
// serving layer wants to keep between requests:
//
//   - prefilled kvcache.Builders (raw FP32 context KV, so any future
//     query can be re-planned and re-sealed byte-identically), and
//   - pristine sealed kvcache.Caches (quantized context KV for one plan,
//     decoded on via Cache.Fork so the stored copy is never mutated).
//
// The store itself is value-agnostic: anything implementing Sized can be
// cached, keyed by (pipeline config fingerprint, kind, content hash).
// Eviction is strict LRU over a byte budget — entry sizes come from the
// same honest byte accounting the hardware model uses (packed quantized
// codes + FP16 scale/zero metadata, 2 bytes per FP16 value, 4 bytes per
// FP32 value) — with an optional idle TTL. Hit/miss/eviction/expiration
// counters are metrics.Counter values (lock-free atomics) surfaced to the
// serving metrics endpoint.
//
// Admission is pluggable (Options.Policy) and segment-aware: PolicyLRU
// admits every Put (the historical behavior and the default), Policy2Q
// requires a second sighting within the TTL window before a key may
// occupy main-cache bytes, the full A1in/A1out variant (NewPolicyA1)
// instead trials first sightings in a small probation byte segment and
// promotes them on re-reference, and PolicyAdaptive flips between
// admit-everything and second-sighting admission by watching the
// workload. The store keeps one LRU list per segment; the probation
// segment's byte cap is carved out of the budget, so the total budget is
// never exceeded.
//
// The budget can be split per artifact Kind (Options.Kinds): a kind with
// a KindBudget gets a dedicated shard — its own byte sub-budget, its own
// probation carve-out and its own LRU lists, carved out of MaxBytes —
// while kinds without one share the remainder shard. Sealed caches are
// typically several times smaller than prefill builders; a dedicated
// sealed shard stops a handful of builders from monopolizing the budget
// (and the probation trial space) that dozens of cheap seal trials could
// use. The store additionally keeps per-kind occupancy accounting
// (entries/bytes per kind, resident and on probation) whether or not the
// budget is split, surfaced in Stats.Kinds. With a PolicyPerKind router
// the admission state (ghost lists, adaptive windows) is per-kind too.
//
// Ownership: a Store is shared state, safe for concurrent use from any
// number of goroutines; all methods lock internally. Values handed out by
// Get are shared too — callers must only read them (for caches: fork
// before decoding). Eviction only drops the store's reference; callers
// holding a value keep it alive, so evicting under a live session is
// always safe.
package sessioncache

import (
	"container/list"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Sized is a cacheable value that knows its resident footprint in bytes.
type Sized interface {
	SizeBytes() int64
}

// Kind distinguishes the artifact classes sharing one byte budget.
type Kind string

// The two artifact kinds of the serving layer.
const (
	// KindPrefill entries hold prefilled FP32 builders (context hash key).
	KindPrefill Kind = "prefill"
	// KindSealed entries hold pristine sealed caches (context hash + plan
	// fingerprint key).
	KindSealed Kind = "sealed"
)

// Key identifies one cached artifact. All fields participate in equality;
// Fingerprint isolates pipelines with different configs (model, method,
// hyperparameters) from each other so a hit can never cross configs.
type Key struct {
	// Fingerprint is the pipeline configuration fingerprint.
	Fingerprint string
	// Kind is the artifact class (prefill or sealed).
	Kind Kind
	// Hash identifies the content: the context-token hash, plus the plan
	// fingerprint for sealed entries.
	Hash string
}

// KindBudget dedicates a byte sub-budget to one artifact kind. Dedicated
// kinds get their own shard: their own LRU lists, byte cap and probation
// carve-out, so another kind's traffic can never evict them.
type KindBudget struct {
	// MaxBytes is the kind's sub-budget in bytes, carved out of
	// Options.MaxBytes (the remainder is the shared shard for kinds
	// without a budget). Entries with MaxBytes <= 0 are ignored; if the
	// budgets sum past MaxBytes the excess is clamped off in kind-name
	// order so the carve-outs never exceed the total.
	MaxBytes int64
	// ProbationPct is the kind's probation carve-out in percent of its
	// MaxBytes, overriding the policy's own sizing for this shard. It
	// only takes effect under a probation-capable policy (NewPolicyA1) —
	// a ghost-only or LRU policy has no probation segment to size — and
	// is clamped to at most half the sub-budget. <= 0 defers to the
	// policy.
	ProbationPct float64
}

// Options configures a Store. The zero value is usable: 256 MiB budget,
// no TTL.
type Options struct {
	// MaxBytes is the eviction budget in bytes summed over all entries of
	// all shards and segments (<= 0 selects 256 MiB). A single value
	// larger than its target segment's budget is not admitted at all.
	MaxBytes int64
	// TTL is the idle lifetime of an entry; an entry untouched (no Get or
	// Put) for longer is expired on the next access. Zero disables
	// expiry.
	TTL time.Duration
	// Policy is the admission policy; nil selects PolicyLRU (admit
	// everything). The store takes ownership: the policy must not be
	// shared with another store or called directly afterwards. A policy
	// with a probation segment has its per-shard cap negotiated through
	// Policy.ProbationCap at New; a cap at or beyond a shard's budget is
	// clamped to half so the protected segment always exists.
	Policy Policy
	// Kinds optionally splits MaxBytes into per-kind sub-budgets; nil or
	// empty keeps the single shared budget (the historical behavior).
	Kinds map[Kind]KindBudget

	// Now overrides the clock for every TTL/expiry decision; nil means
	// time.Now. Serving layers thread one injected clock through here
	// and their own registries so all expiry state agrees on "now" and
	// tests drive it without real sleeps.
	Now func() time.Time
}

// DefaultMaxBytes is the byte budget used when Options.MaxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// Stats is a point-in-time snapshot of the store's counters and
// occupancy. Counter fields are monotonic event totals since creation;
// Entries/Bytes/MaxBytes describe current state (Bytes and MaxBytes in
// bytes, summed over all shards).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Admission is the admission policy's counter block plus the store's
	// segment occupancy summed over all shards (all zeros under
	// PolicyLRU apart from the label and the protected occupancy). Its
	// per-kind breakdown, if the policy keeps one, is redistributed into
	// Kinds.
	Admission AdmissionStats `json:"admission"`
	// Kinds is the per-kind occupancy (and, for dedicated kinds, budget)
	// breakdown. The serving kinds (prefill, sealed) are always present;
	// other kinds appear once they hold entries or have a dedicated
	// sub-budget.
	Kinds map[string]KindStats `json:"kinds"`
}

// KindStats describes one artifact kind's occupancy, budget and — when
// the policy keeps per-kind admission state — admission counters.
type KindStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the byte cap governing this kind: its dedicated
	// sub-budget, or the shared shard's budget when it has none.
	MaxBytes int64 `json:"max_bytes"`
	// Dedicated reports whether the kind has its own sub-budget (and so
	// its own LRU and probation carve-out).
	Dedicated bool `json:"dedicated"`
	// Probation occupancy of this kind's entries and the probation cap
	// of the shard the kind lives in.
	ProbationEntries  int   `json:"probation_entries"`
	ProbationBytes    int64 `json:"probation_bytes"`
	ProbationCapBytes int64 `json:"probation_cap_bytes"`
	// Admission is the kind's own admission counter block when the
	// policy routes per kind (PolicyPerKind); nil otherwise.
	Admission *AdmissionStats `json:"admission,omitempty"`
}

type entry struct {
	key      Key
	value    Sized
	bytes    int64
	lastUsed time.Time
	sh       *shard
	seg      Segment
	hit      bool // re-referenced (Get or replacing Put) while resident
}

// shard is one byte-budgeted slice of the store: the shared remainder
// ("" kind) or a kind's dedicated sub-budget. Each shard has its own
// protected and probation LRU lists; both are ordered by last use (front
// = most recently used), which Sweep relies on to stop at the first
// unexpired entry.
type shard struct {
	kind    Kind  // "" for the shared shard
	max     int64 // the shard's byte budget
	probCap int64 // probation carve-out, out of max
	ll      *list.List
	prob    *list.List
	bytes   int64 // both segments
	prBytes int64 // probation segment only
}

func newShard(kind Kind, max, probCap int64) *shard {
	return &shard{kind: kind, max: max, probCap: probCap, ll: list.New(), prob: list.New()}
}

// listOf returns the LRU list backing a segment.
func (sh *shard) listOf(seg Segment) *list.List {
	if seg == SegmentProbation {
		return sh.prob
	}
	return sh.ll
}

// capOf returns a segment's byte budget. The caps are disjoint: the
// probation cap is carved out of the shard budget, so their sum is the
// shard's total and the store can never exceed it.
func (sh *shard) capOf(seg Segment) int64 {
	if seg == SegmentProbation {
		return sh.probCap
	}
	return sh.max - sh.probCap
}

// segBytes returns a segment's current resident byte total.
func (sh *shard) segBytes(seg Segment) int64 {
	if seg == SegmentProbation {
		return sh.prBytes
	}
	return sh.bytes - sh.prBytes
}

// kindAcct is the store's per-kind occupancy accounting, kept whether or
// not the kind has a dedicated shard.
type kindAcct struct {
	entries     int
	bytes       int64
	probEntries int
	probBytes   int64
}

// Store is the byte-accounted, shard- and segment-aware LRU. See the
// package comment for the ownership rules.
type Store struct {
	mu        sync.Mutex
	opts      Options
	policy    Policy
	shared    *shard
	dedicated map[Kind]*shard
	ordered   []*shard // dedicated shards in kind order, then shared
	items     map[Key]*list.Element
	bytes     int64 // all shards
	acct      map[Kind]*kindAcct

	hits        metrics.Counter
	misses      metrics.Counter
	evictions   metrics.Counter
	expirations metrics.Counter
	insertions  metrics.Counter
	promotions  metrics.Counter // probation -> protected segment moves
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Policy == nil {
		opts.Policy = NewPolicyLRU()
	}
	s := &Store{
		opts:      opts,
		policy:    opts.Policy,
		dedicated: make(map[Kind]*shard),
		items:     make(map[Key]*list.Element),
		acct:      map[Kind]*kindAcct{KindPrefill: {}, KindSealed: {}},
	}
	// Dedicated shards first (sorted by kind so clamping an over-budget
	// configuration is deterministic), the remainder is the shared shard.
	kinds := make([]Kind, 0, len(opts.Kinds))
	for k, b := range opts.Kinds {
		if b.MaxBytes > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	remaining := opts.MaxBytes
	for _, k := range kinds {
		b := opts.Kinds[k]
		max := b.MaxBytes
		if max > remaining {
			max = remaining
		}
		remaining -= max
		sh := newShard(k, max, s.negotiateProbCap(k, max, b.ProbationPct))
		s.dedicated[k] = sh
		s.ordered = append(s.ordered, sh)
		s.acctOf(k) // dedicated kinds report in Stats.Kinds from day one
	}
	s.shared = newShard("", remaining, s.negotiateProbCap("", remaining, 0))
	s.ordered = append(s.ordered, s.shared)
	return s
}

// negotiateProbCap asks the policy for a shard's probation carve-out.
// The policy clamps the cap against the shard budget and remembers the
// result, so store and policy always agree on what fits probation.
func (s *Store) negotiateProbCap(kind Kind, max int64, pct float64) int64 {
	want := int64(0)
	if pct > 0 {
		want = int64(float64(max) * pct / 100)
	}
	cap := s.policy.ProbationCap(kind, max, want)
	if cap < 0 {
		cap = 0
	}
	return cap
}

// MaxBytes returns the configured byte budget (all shards).
func (s *Store) MaxBytes() int64 { return s.opts.MaxBytes }

// shardOf returns the shard holding entries of a kind: its dedicated
// shard if it has one, the shared shard otherwise.
func (s *Store) shardOf(kind Kind) *shard {
	if sh, ok := s.dedicated[kind]; ok {
		return sh
	}
	return s.shared
}

// shards returns every shard, dedicated ones first in kind order — the
// deterministic iteration Sweep and Stats use. The set is fixed at New.
func (s *Store) shards() []*shard { return s.ordered }

// acctOf returns (creating if needed) a kind's occupancy account.
func (s *Store) acctOf(kind Kind) *kindAcct {
	a, ok := s.acct[kind]
	if !ok {
		a = &kindAcct{}
		s.acct[kind] = a
	}
	return a
}

// Get returns the value under k, bumping its recency and refreshing its
// TTL. The second result is false on miss (including a TTL expiry, which
// counts as both an expiration and a miss; the policy is notified via
// OnExpire, then OnMiss). A hit on a probation entry may promote it to
// the protected segment (the policy's call), which can evict protected
// LRU entries to make room.
// Contains reports whether k is resident and unexpired, as a pure peek:
// unlike Get it bumps no recency, refreshes no TTL, fires no policy
// callback and moves no counters — and it does not even collect an
// expired entry it finds (the next Get/Put/Sweep will). Schedulers use it
// to classify work as warm/cold without the probe itself perturbing the
// admission state it is asking about.
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	return ok && !s.expired(el.Value.(*entry), s.opts.Now())
}

func (s *Store) Get(k Key) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Now()
	el, ok := s.items[k]
	if ok && s.expired(el.Value.(*entry), now) {
		s.expireLocked(el, now)
		ok = false
	}
	if !ok {
		s.misses.Inc()
		//cocktail:allow lockdiscipline Policy contract: callbacks run under mu (policies keep no locks of their own); OnMiss is O(1) counter work
		s.policy.OnMiss(k, now)
		return nil, false
	}
	e := el.Value.(*entry)
	e.lastUsed = now
	e.hit = true
	e.sh.listOf(e.seg).MoveToFront(el)
	//cocktail:allow lockdiscipline promotion decision must be atomic with the recency bump it justifies; OnHit is O(1)
	if seg := s.policy.OnHit(k, e.seg, now); seg != e.seg {
		el = s.moveSegment(el, seg)
		s.evictOverLocked(e.sh, seg, el, now)
	}
	s.hits.Inc()
	return e.value, true
}

// moveSegment transfers an entry between its shard's segment lists (as
// the MRU of its new segment) and fixes the byte accounting, counting a
// promotion when the move is probation -> protected.
func (s *Store) moveSegment(el *list.Element, seg Segment) *list.Element {
	e := el.Value.(*entry)
	a := s.acctOf(e.key.Kind)
	e.sh.listOf(e.seg).Remove(el)
	if e.seg == SegmentProbation {
		e.sh.prBytes -= e.bytes
		a.probEntries--
		a.probBytes -= e.bytes
		if seg == SegmentProtected {
			s.promotions.Inc()
		}
	} else {
		e.sh.prBytes += e.bytes
		a.probEntries++
		a.probBytes += e.bytes
	}
	e.seg = seg
	el = e.sh.listOf(seg).PushFront(e)
	s.items[e.key] = el
	return el
}

// evictOverLocked evicts LRU entries of a shard's segment until its byte
// budget holds, never evicting keep (the entry whose insertion or
// promotion caused the pressure). Callers hold s.mu.
func (s *Store) evictOverLocked(sh *shard, seg Segment, keep *list.Element, now time.Time) {
	ll, budget := sh.listOf(seg), sh.capOf(seg)
	for sh.segBytes(seg) > budget {
		lru := ll.Back()
		if lru == nil || lru == keep {
			break
		}
		e := lru.Value.(*entry)
		//cocktail:allow lockdiscipline the victim must be ghosted before another Put can race its key; the per-Put eviction count is bounded by the incoming entry's size
		s.policy.OnEvict(e.key, e.seg, e.hit, now)
		s.removeLocked(lru)
		s.evictions.Inc()
	}
}

// Put inserts (or replaces) the value under k and evicts least-recently
// used entries of the target segment until its byte budget holds. A
// value alone exceeding its target segment's budget is not stored, and a
// non-resident key the admission policy declines is dropped (only its
// sighting is remembered); Put reports false in both cases. Replacing an
// existing key is always admitted (the key earned residency already)
// and counts as a re-reference for segment placement — unless the new
// value no longer fits its target segment, in which case Put reports
// false and the resident entry is kept. Replacement does not count as
// an eviction. A resident entry already past its TTL is expired first
// (through the policy, like Get and Sweep would) and the value then
// faces Admit as a non-resident, so admission cannot depend on whether
// a Get or a Put reaches a stale entry first.
func (s *Store) Put(k Key, v Sized) bool {
	bytes := v.SizeBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shardOf(k.Kind)
	now := s.opts.Now()
	el, resident := s.items[k]
	if resident && s.expired(el.Value.(*entry), now) {
		// A TTL-stale resident is not a live re-reference: expire it
		// through the policy (washout counting, re-ghosting) exactly as
		// Get or Sweep would have, then make the value re-earn
		// residency through Admit — so admission cannot depend on
		// whether a Get or a Put reaches the stale entry first. This
		// runs before the size pre-check below: the stale entry's fate
		// must not depend on the replacement value's size either.
		s.expireLocked(el, now)
		resident = false
	}
	if bytes > sh.capOf(SegmentProtected) {
		// Fits no segment of its shard (the probation cap never exceeds
		// the protected one — ProbationCap clamps at half the shard
		// budget): reject before the policy sees anything, so no
		// sighting is ghosted, no ghost promotion is consumed, and no
		// re-reference counter moves for a value that can never be
		// stored.
		return false
	}
	seg, hit := SegmentProtected, false
	if resident {
		// Replacement is a re-reference: the policy gets the same
		// promotion say it has on Get hits. The pre-check above
		// guarantees the value fits the promotion target, so the
		// resident entry is only removed once storage is assured.
		e := el.Value.(*entry)
		//cocktail:allow lockdiscipline replacement placement must be atomic with the remove+reinsert below; OnHit is O(1)
		seg = s.policy.OnHit(k, e.seg, now)
		if bytes > sh.capOf(seg) {
			// Defensive: only reachable if a policy keeps an oversize
			// replacement in probation; keep the resident entry.
			return false
		}
		if e.seg == SegmentProbation && seg == SegmentProtected {
			s.promotions.Inc()
		}
		s.removeLocked(el)
		hit = true
	} else {
		var ok bool
		//cocktail:allow lockdiscipline admission must be atomic with residency (a racing Put on the same key would double-count sightings); Admit is O(1) plus amortized ghost reaping
		if seg, ok = s.policy.Admit(k, bytes, now); !ok {
			return false
		}
		if bytes > sh.capOf(seg) {
			// Defensive against a policy routing a value to a segment
			// it cannot fit (a Policy contract violation); refuse
			// rather than evict everything for an entry that still
			// would not fit.
			return false
		}
	}
	e := &entry{key: k, value: v, bytes: bytes, lastUsed: now, sh: sh, seg: seg, hit: hit}
	el = sh.listOf(seg).PushFront(e)
	s.items[k] = el
	s.bytes += bytes
	sh.bytes += bytes
	a := s.acctOf(k.Kind)
	a.entries++
	a.bytes += bytes
	if seg == SegmentProbation {
		sh.prBytes += bytes
		a.probEntries++
		a.probBytes += bytes
	}
	s.insertions.Inc()
	s.evictOverLocked(sh, seg, el, now)
	return true
}

// Delete removes the entry under k, reporting whether it existed. Manual
// deletion counts as neither eviction nor expiration and is deliberately
// silent toward the admission policy (see the Policy contract): the
// caller invalidated the value, so its key must not be re-ghosted for
// one-sighting readmission nor counted as admission pain.
func (s *Store) Delete(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if ok {
		s.removeLocked(el)
	}
	return ok
}

// sweepBatchSize bounds how many expired entries one Sweep lock hold may
// remove, so a sweep over a large fully-expired cache cannot stall
// concurrent serve-path Gets for the whole scan.
const sweepBatchSize = 128

// Sweep drops every TTL-expired entry now (Get/Put expire lazily; a
// periodic Sweep bounds how long idle entries linger), notifying the
// policy of each via OnExpire. It returns how many entries were expired.
//
// The store mutex is released and re-acquired between bounded batches of
// removals, so concurrent Gets interleave with a large sweep instead of
// stalling behind it; entries touched between batches are simply seen
// with their refreshed recency.
func (s *Store) Sweep() int {
	n := 0
	for {
		removed, more := s.sweepBatch()
		n += removed
		if !more {
			return n
		}
	}
}

// sweepBatch removes up to sweepBatchSize expired entries under one lock
// hold, reporting whether another batch is (or may be) needed. Each LRU
// list is ordered by last use, so scanning from the back touches only
// expired entries plus one unexpired sentinel per list.
func (s *Store) sweepBatch() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Now()
	n := 0
	for _, sh := range s.shards() {
		for _, ll := range []*list.List{sh.ll, sh.prob} {
			for el := ll.Back(); el != nil; el = ll.Back() {
				if !s.expired(el.Value.(*entry), now) {
					break
				}
				if n >= sweepBatchSize {
					return n, true
				}
				s.expireLocked(el, now)
				n++
			}
		}
	}
	return n, false
}

// Len returns the current number of entries (all shards).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Bytes returns the current resident total in bytes (all shards).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	//cocktail:allow lockdiscipline snapshot consistency: counters and occupancy must be read under one lock hold; Stats is read-only O(kinds)
	adm := s.policy.Stats()
	adm.SegmentPromotions = s.promotions.Load()
	for _, sh := range s.shards() {
		adm.ProbationEntries += sh.prob.Len()
		adm.ProbationBytes += sh.prBytes
		adm.ProbationCapBytes += sh.probCap
		adm.ProtectedEntries += sh.ll.Len()
		adm.ProtectedBytes += sh.bytes - sh.prBytes
	}
	// Per-kind blocks: occupancy from the store's accounting, budget
	// from the kind's shard, admission counters redistributed from the
	// policy's per-kind breakdown (PolicyPerKind) when it keeps one.
	perKindAdm := adm.Kinds
	adm.Kinds = nil
	kinds := make(map[string]KindStats, len(s.acct))
	for kind, a := range s.acct {
		sh := s.shardOf(kind)
		ks := KindStats{
			Entries:           a.entries,
			Bytes:             a.bytes,
			MaxBytes:          sh.max,
			Dedicated:         sh != s.shared,
			ProbationEntries:  a.probEntries,
			ProbationBytes:    a.probBytes,
			ProbationCapBytes: sh.probCap,
		}
		if ka, ok := perKindAdm[string(kind)]; ok {
			ka := ka
			ks.Admission = &ka
		}
		kinds[string(kind)] = ks
	}
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Expirations: s.expirations.Load(),
		Insertions:  s.insertions.Load(),
		Entries:     len(s.items),
		Bytes:       s.bytes,
		MaxBytes:    s.opts.MaxBytes,
		Admission:   adm,
		Kinds:       kinds,
	}
}

func (s *Store) expired(e *entry, now time.Time) bool {
	return s.opts.TTL > 0 && now.Sub(e.lastUsed) > s.opts.TTL
}

// expireLocked drops one TTL-expired entry, notifying the policy first
// (OnExpire with the entry's segment and re-reference bit, exactly like
// an eviction) so expiry-driven churn is as visible to admission as
// byte-pressure churn. Callers hold s.mu.
func (s *Store) expireLocked(el *list.Element, now time.Time) {
	e := el.Value.(*entry)
	//cocktail:allow lockdiscipline the Sweep contract's bounded hold: sweepBatch releases mu every sweepBatchSize removals, so a slow OnExpire stalls Gets for at most one batch (TestSweepLatencyBound)
	s.policy.OnExpire(e.key, e.seg, e.hit, now)
	s.removeLocked(el)
	s.expirations.Inc()
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	e.sh.listOf(e.seg).Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.bytes
	e.sh.bytes -= e.bytes
	a := s.acctOf(e.key.Kind)
	a.entries--
	a.bytes -= e.bytes
	if e.seg == SegmentProbation {
		e.sh.prBytes -= e.bytes
		a.probEntries--
		a.probBytes -= e.bytes
	}
}
