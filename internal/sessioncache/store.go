// Package sessioncache is a concurrency-safe, byte-accounted LRU store
// for cross-request KV-cache reuse. It holds the two artifacts the
// serving layer wants to keep between requests:
//
//   - prefilled kvcache.Builders (raw FP32 context KV, so any future
//     query can be re-planned and re-sealed byte-identically), and
//   - pristine sealed kvcache.Caches (quantized context KV for one plan,
//     decoded on via Cache.Fork so the stored copy is never mutated).
//
// The store itself is value-agnostic: anything implementing Sized can be
// cached, keyed by (pipeline config fingerprint, kind, content hash).
// Eviction is strict LRU over a byte budget — entry sizes come from the
// same honest byte accounting the hardware model uses (packed quantized
// codes + FP16 scale/zero metadata, 2 bytes per FP16 value, 4 bytes per
// FP32 value) — with an optional idle TTL. Hit/miss/eviction/expiration
// counters are metrics.Counter values (lock-free atomics) surfaced to the
// serving metrics endpoint.
//
// Admission is pluggable (Options.Policy / Options.NewPolicy) and
// segment-aware: PolicyLRU admits every Put (the historical behavior and
// the default), Policy2Q requires a second sighting within the TTL window
// before a key may occupy main-cache bytes, the full A1in/A1out variant
// (NewPolicyA1) instead trials first sightings in a small probation byte
// segment and promotes them on re-reference, and PolicyAdaptive flips
// between admit-everything and second-sighting admission by watching the
// workload. The store keeps one LRU list per segment; the probation
// segment's byte cap is carved out of the budget, so the total budget is
// never exceeded.
//
// Lock sharding: the store is split into Options.Shards lock-shards by
// key hash (FNV-1a over the full key, masked to a power of two). Each
// lock-shard owns its own mutex, items map, per-kind LRU/probation lists,
// byte accounting and admission-policy instance, so Get/Put/Contains on
// keys of different lock-shards never contend. The byte budget (and each
// per-kind sub-budget) is split deterministically across lock-shards —
// MaxBytes/N each, the integer remainder to lock-shard 0 — and Sweep and
// Stats visit the lock-shards one at a time, aggregating without any
// global lock. One lock-shard (the default) reproduces the historical
// single-mutex store exactly, counters included.
//
// The budget can be split per artifact Kind (Options.Kinds): a kind with
// a KindBudget gets a dedicated kind-shard within every lock-shard — its
// own byte sub-budget, its own probation carve-out and its own LRU lists,
// carved out of MaxBytes — while kinds without one share the remainder.
// Sealed caches are typically several times smaller than prefill
// builders; a dedicated sealed sub-budget stops a handful of builders
// from monopolizing the budget (and the probation trial space) that
// dozens of cheap seal trials could use. The store additionally keeps
// per-kind occupancy accounting (entries/bytes per kind, resident and on
// probation) whether or not the budget is split, surfaced in Stats.Kinds.
// With a PolicyPerKind router the admission state (ghost lists, adaptive
// windows) is per-kind too.
//
// Persistence (Options.Persist): kinds with a registered Codec spill
// their admitted entries to a versioned on-disk artifact directory —
// written on Put, reloaded on startup for warm restarts, and consulted on
// Get misses as a capacity tier beyond RAM. A truncated, corrupt or
// wrong-version artifact is never an error: it is deleted, counted, and
// the Get proceeds as a miss. See spill.go for the artifact format.
//
// Ownership: a Store is shared state, safe for concurrent use from any
// number of goroutines; all methods lock internally (per lock-shard).
// Values handed out by Get are shared too — callers must only read them
// (for caches: fork before decoding). Eviction only drops the store's
// reference; callers holding a value keep it alive, so evicting under a
// live session is always safe.
package sessioncache

import (
	"container/list"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Sized is a cacheable value that knows its resident footprint in bytes.
type Sized interface {
	SizeBytes() int64
}

// Kind distinguishes the artifact classes sharing one byte budget.
type Kind string

// The two artifact kinds of the serving layer.
const (
	// KindPrefill entries hold prefilled FP32 builders (context hash key).
	KindPrefill Kind = "prefill"
	// KindSealed entries hold pristine sealed caches (context hash + plan
	// fingerprint key).
	KindSealed Kind = "sealed"
)

// Key identifies one cached artifact. All fields participate in equality;
// Fingerprint isolates pipelines with different configs (model, method,
// hyperparameters) from each other so a hit can never cross configs.
type Key struct {
	// Fingerprint is the pipeline configuration fingerprint.
	Fingerprint string
	// Kind is the artifact class (prefill or sealed).
	Kind Kind
	// Hash identifies the content: the context-token hash, plus the plan
	// fingerprint for sealed entries.
	Hash string
}

// KindBudget dedicates a byte sub-budget to one artifact kind. Dedicated
// kinds get their own kind-shard: their own LRU lists, byte cap and
// probation carve-out, so another kind's traffic can never evict them.
type KindBudget struct {
	// MaxBytes is the kind's sub-budget in bytes, carved out of
	// Options.MaxBytes (the remainder is the shared kind-shard for kinds
	// without a budget). Entries with MaxBytes <= 0 are ignored; if the
	// budgets sum past MaxBytes the excess is clamped off in kind-name
	// order so the carve-outs never exceed the total. With lock sharding
	// the sub-budget is split across lock-shards exactly like MaxBytes
	// (per-lock-shard slice, remainder to lock-shard 0, clamped against
	// that lock-shard's slice of the total).
	MaxBytes int64
	// ProbationPct is the kind's probation carve-out in percent of its
	// MaxBytes, overriding the policy's own sizing for this shard. It
	// only takes effect under a probation-capable policy (NewPolicyA1) —
	// a ghost-only or LRU policy has no probation segment to size — and
	// is clamped to at most half the sub-budget. <= 0 defers to the
	// policy.
	ProbationPct float64
}

// Options configures a Store. The zero value is usable: 256 MiB budget,
// one lock-shard, no TTL, no persistence.
type Options struct {
	// MaxBytes is the eviction budget in bytes summed over all entries of
	// all shards and segments (<= 0 selects 256 MiB). A single value
	// larger than its target segment's budget is not admitted at all.
	MaxBytes int64
	// TTL is the idle lifetime of an entry; an entry untouched (no Get or
	// Put) for longer is expired on the next access. Zero disables
	// expiry.
	TTL time.Duration
	// Policy is the admission policy; nil selects PolicyLRU (admit
	// everything). The store takes ownership: the policy must not be
	// shared with another store or called directly afterwards. A policy
	// with a probation segment has its per-shard cap negotiated through
	// Policy.ProbationCap at New; a cap at or beyond a shard's budget is
	// clamped to half so the protected segment always exists.
	//
	// A single Policy instance serializes behind one mutex and therefore
	// cannot back more than one lock-shard: with Shards > 1 set
	// NewPolicy instead (New panics on a Policy + Shards > 1 combination
	// rather than silently sharing the instance).
	Policy Policy
	// NewPolicy, when non-nil, is invoked once per lock-shard to build
	// that shard's own admission-policy instance (own ghost list, own
	// adaptive window), and takes precedence over Policy. A nil return
	// selects PolicyLRU for that shard.
	NewPolicy func() Policy
	// Kinds optionally splits MaxBytes into per-kind sub-budgets; nil or
	// empty keeps the single shared budget (the historical behavior).
	Kinds map[Kind]KindBudget
	// Shards is the lock-shard count; it is rounded up to a power of two
	// and <= 0 selects 1 (the historical single-mutex store). Serving
	// layers default to DefaultShards.
	Shards int
	// Persist enables the on-disk spill tier for kinds with a registered
	// Codec; nil disables persistence (the historical behavior). See the
	// package comment and spill.go.
	Persist *PersistOptions
	// Tune enables the self-tuning layer: at tumbling-window boundaries
	// (windows counted in store operations) the store nudges its
	// effective TTL, sealed/prefill sub-budget split and probation
	// carve-outs by measured hit-rate-per-byte, with two-window
	// hysteresis and hard clamps around the configured values (see
	// tuner.go). Nil disables tuning: every knob keeps its configured
	// value exactly — the historical behavior.
	Tune *TuneOptions

	// Now overrides the clock for every TTL/expiry decision; nil means
	// time.Now. Serving layers thread one injected clock through here
	// and their own registries so all expiry state agrees on "now" and
	// tests drive it without real sleeps.
	Now func() time.Time
}

// DefaultMaxBytes is the byte budget used when Options.MaxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// DefaultShards returns the lock-shard count serving layers default to:
// runtime.NumCPU() rounded up to a power of two. More lock-shards than
// CPUs buys nothing (at most NumCPU goroutines contend at once), and a
// power of two keeps shard selection a mask instead of a modulo.
func DefaultShards() int { return ceilPow2(runtime.NumCPU()) }

// ceilPow2 rounds n up to the nearest power of two, minimum 1.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Stats is a point-in-time snapshot of the store's counters and
// occupancy. Counter fields are monotonic event totals since creation;
// Entries/Bytes/MaxBytes describe current state (Bytes and MaxBytes in
// bytes, summed over all shards).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Admission is the admission policy's counter block plus the store's
	// segment occupancy summed over all shards (all zeros under
	// PolicyLRU apart from the label and the protected occupancy). Its
	// per-kind breakdown, if the policy keeps one, is redistributed into
	// Kinds. With lock sharding the block sums the per-lock-shard policy
	// instances; Mode reads "mixed" when adaptive instances disagree.
	Admission AdmissionStats `json:"admission"`
	// Kinds is the per-kind occupancy (and, for dedicated kinds, budget)
	// breakdown, summed over lock-shards. The serving kinds (prefill,
	// sealed) are always present; other kinds appear once they hold
	// entries or have a dedicated sub-budget.
	Kinds map[string]KindStats `json:"kinds"`
	// Shards is the per-lock-shard occupancy/counter breakdown, indexed
	// by lock-shard (always at least one entry).
	Shards []ShardStats `json:"shards"`
	// Persist is the spill tier's counter block; nil when persistence is
	// disabled.
	Persist *PersistStats `json:"persist,omitempty"`
	// Tune is the self-tuner's block (current effective knob values and
	// nudge counters); nil when tuning is off.
	Tune *TuneStats `json:"tune,omitempty"`
}

// ShardStats is one lock-shard's occupancy and counter block — the
// per-shard slice of the aggregate Stats, surfaced so dashboards can see
// hash skew and contention hot spots.
type ShardStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
}

// KindStats describes one artifact kind's occupancy, budget and — when
// the policy keeps per-kind admission state — admission counters.
type KindStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the byte cap governing this kind: its dedicated
	// sub-budget, or the shared shard's budget when it has none (summed
	// over lock-shards).
	MaxBytes int64 `json:"max_bytes"`
	// Dedicated reports whether the kind has its own sub-budget (and so
	// its own LRU and probation carve-out).
	Dedicated bool `json:"dedicated"`
	// Probation occupancy of this kind's entries and the probation cap
	// of the shard the kind lives in.
	ProbationEntries  int   `json:"probation_entries"`
	ProbationBytes    int64 `json:"probation_bytes"`
	ProbationCapBytes int64 `json:"probation_cap_bytes"`
	// Admission is the kind's own admission counter block when the
	// policy routes per kind (PolicyPerKind); nil otherwise.
	Admission *AdmissionStats `json:"admission,omitempty"`
}

type entry struct {
	key      Key
	value    Sized
	bytes    int64
	lastUsed time.Time
	sh       *shard
	seg      Segment
	hit      bool // re-referenced (Get or replacing Put) while resident
}

// shard is one byte-budgeted kind slice of a lock-shard: the shared
// remainder ("" kind) or a kind's dedicated sub-budget. Each shard has
// its own protected and probation LRU lists; both are ordered by last use
// (front = most recently used), which Sweep relies on to stop at the
// first unexpired entry.
type shard struct {
	kind    Kind  // "" for the shared shard
	max     int64 // the shard's byte budget
	probCap int64 // probation carve-out, out of max
	ll      *list.List
	prob    *list.List
	bytes   int64 // both segments
	prBytes int64 // probation segment only
}

func newShard(kind Kind, max, probCap int64) *shard {
	return &shard{kind: kind, max: max, probCap: probCap, ll: list.New(), prob: list.New()}
}

// listOf returns the LRU list backing a segment.
func (sh *shard) listOf(seg Segment) *list.List {
	if seg == SegmentProbation {
		return sh.prob
	}
	return sh.ll
}

// capOf returns a segment's byte budget. The caps are disjoint: the
// probation cap is carved out of the shard budget, so their sum is the
// shard's total and the store can never exceed it.
func (sh *shard) capOf(seg Segment) int64 {
	if seg == SegmentProbation {
		return sh.probCap
	}
	return sh.max - sh.probCap
}

// segBytes returns a segment's current resident byte total.
func (sh *shard) segBytes(seg Segment) int64 {
	if seg == SegmentProbation {
		return sh.prBytes
	}
	return sh.bytes - sh.prBytes
}

// kindAcct is the store's per-kind occupancy accounting, kept whether or
// not the kind has a dedicated shard.
type kindAcct struct {
	entries     int
	bytes       int64
	probEntries int
	probBytes   int64
}

// lockShard is one hash slice of the store: its own mutex, items map,
// per-kind kind-shards, byte accounting, counters and admission-policy
// instance. A lock-shard is exactly the historical single-mutex store
// over a deterministic slice of the byte budget; keys of different
// lock-shards never contend.
type lockShard struct {
	mu        sync.Mutex
	opts      *Options // shared, read-only after New
	policy    Policy
	shared    *shard
	dedicated map[Kind]*shard
	ordered   []*shard // dedicated shards in kind order, then shared
	items     map[Key]*list.Element
	max       int64 // this lock-shard's slice of Options.MaxBytes
	bytes     int64 // all kind-shards
	acct      map[Kind]*kindAcct

	hits        metrics.Counter
	misses      metrics.Counter
	evictions   metrics.Counter
	expirations metrics.Counter
	insertions  metrics.Counter
	promotions  metrics.Counter // probation -> protected segment moves

	// ttl points at the store's effective-TTL atomic; every expiry
	// decision reads it (identical to Options.TTL unless the tuner is
	// on).
	ttl *atomic.Int64
}

// Store is the byte-accounted, sharded, segment-aware LRU. See the
// package comment for the ownership rules.
type Store struct {
	opts    Options
	shards  []*lockShard
	mask    uint64
	persist *persister // nil when persistence is disabled
	// effTTL is the effective idle TTL in nanoseconds, read by every
	// expiry decision. It equals Options.TTL forever unless the tuner
	// (Options.Tune) nudges it within its clamps.
	effTTL atomic.Int64
	tuner  *tuner // nil when tuning is off
}

// New builds an empty store. With Options.Persist set, artifacts found in
// the persist directory are reloaded before New returns (warm restart);
// corrupt or stale artifacts are deleted, never fatal.
func New(opts Options) *Store {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	n := 1
	if opts.Shards > 1 {
		n = ceilPow2(opts.Shards)
	}
	if n > 1 && opts.NewPolicy == nil && opts.Policy != nil {
		panic("sessioncache: Options.Policy cannot back more than one lock-shard; set Options.NewPolicy")
	}
	s := &Store{opts: opts, mask: uint64(n - 1)}
	s.effTTL.Store(int64(opts.TTL))
	for i := 0; i < n; i++ {
		var pol Policy
		if opts.NewPolicy != nil {
			pol = opts.NewPolicy()
		} else if i == 0 {
			pol = opts.Policy
		}
		if pol == nil {
			pol = NewPolicyLRU()
		}
		ls := newLockShard(&s.opts, pol, n, i)
		ls.ttl = &s.effTTL
		s.shards = append(s.shards, ls)
	}
	if opts.Persist != nil && opts.Persist.Dir != "" && len(opts.Persist.Codecs) > 0 {
		s.persist = newPersister(*opts.Persist)
		s.preload()
	}
	if opts.Tune != nil {
		s.tuner = newTuner(s, *opts.Tune)
	}
	return s
}

// shardSlice returns lock-shard i's deterministic slice of a byte
// budget: total/n each, with the integer remainder assigned to shard 0.
func shardSlice(total int64, n, i int) int64 {
	per := total / int64(n)
	if i == 0 {
		per += total - per*int64(n)
	}
	return per
}

// newLockShard builds lock-shard i of n, carving its slice of the total
// (and of every per-kind sub-budget) and negotiating probation caps with
// its own policy instance.
func newLockShard(opts *Options, pol Policy, n, i int) *lockShard {
	ls := &lockShard{
		opts:      opts,
		policy:    pol,
		dedicated: make(map[Kind]*shard),
		items:     make(map[Key]*list.Element),
		max:       shardSlice(opts.MaxBytes, n, i),
		acct:      map[Kind]*kindAcct{KindPrefill: {}, KindSealed: {}},
	}
	// Dedicated kind-shards first (sorted by kind so clamping an
	// over-budget configuration is deterministic), the remainder is the
	// shared kind-shard.
	kinds := make([]Kind, 0, len(opts.Kinds))
	for k, b := range opts.Kinds {
		if b.MaxBytes > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(a, b int) bool { return kinds[a] < kinds[b] })
	remaining := ls.max
	for _, k := range kinds {
		b := opts.Kinds[k]
		max := shardSlice(b.MaxBytes, n, i)
		if max > remaining {
			max = remaining
		}
		remaining -= max
		sh := newShard(k, max, ls.negotiateProbCap(k, max, b.ProbationPct))
		ls.dedicated[k] = sh
		ls.ordered = append(ls.ordered, sh)
		ls.acctOf(k) // dedicated kinds report in Stats.Kinds from day one
	}
	ls.shared = newShard("", remaining, ls.negotiateProbCap("", remaining, 0))
	ls.ordered = append(ls.ordered, ls.shared)
	return ls
}

// negotiateProbCap asks the policy for a kind-shard's probation
// carve-out. The policy clamps the cap against the shard budget and
// remembers the result, so store and policy always agree on what fits
// probation.
func (ls *lockShard) negotiateProbCap(kind Kind, max int64, pct float64) int64 {
	want := int64(0)
	if pct > 0 {
		want = int64(float64(max) * pct / 100)
	}
	cap := ls.policy.ProbationCap(kind, max, want)
	if cap < 0 {
		cap = 0
	}
	return cap
}

// MaxBytes returns the configured byte budget (all shards).
func (s *Store) MaxBytes() int64 { return s.opts.MaxBytes }

// Shards returns the lock-shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardFor returns the lock-shard owning k, by FNV-1a hash of the full
// key masked to the shard count.
func (s *Store) shardFor(k Key) *lockShard {
	if s.mask == 0 {
		return s.shards[0]
	}
	return s.shards[hashKey(k)&s.mask]
}

// hashKey is FNV-1a over the key's fields with 0xff separators (none of
// the fields contain 0xff — they are hex strings plus a kind label — so
// field boundaries cannot alias).
func hashKey(k Key) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	step := func(ss string) {
		for i := 0; i < len(ss); i++ {
			h ^= uint64(ss[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	step(k.Fingerprint)
	step(string(k.Kind))
	step(k.Hash)
	return h
}

// shardOf returns the kind-shard holding entries of a kind within one
// lock-shard: its dedicated shard if it has one, the shared shard
// otherwise.
func (ls *lockShard) shardOf(kind Kind) *shard {
	if sh, ok := ls.dedicated[kind]; ok {
		return sh
	}
	return ls.shared
}

// shards returns every kind-shard, dedicated ones first in kind order —
// the deterministic iteration Sweep and Stats use. The set is fixed at
// New.
func (ls *lockShard) shards() []*shard { return ls.ordered }

// acctOf returns (creating if needed) a kind's occupancy account.
func (ls *lockShard) acctOf(kind Kind) *kindAcct {
	a, ok := ls.acct[kind]
	if !ok {
		a = &kindAcct{}
		ls.acct[kind] = a
	}
	return a
}

// Contains reports whether k is resident and unexpired, as a pure peek:
// unlike Get it bumps no recency, refreshes no TTL, fires no policy
// callback and moves no counters — and it does not even collect an
// expired entry it finds (the next Get/Put/Sweep will). Schedulers use it
// to classify work as warm/cold without the probe itself perturbing the
// admission state it is asking about. The spill tier is not consulted:
// Contains answers "is this resident in RAM".
func (s *Store) Contains(k Key) bool {
	ls := s.shardFor(k)
	ls.mu.Lock()
	defer ls.mu.Unlock()
	el, ok := ls.items[k]
	return ok && !ls.expired(el.Value.(*entry), s.opts.Now())
}

// Get returns the value under k, bumping its recency and refreshing its
// TTL. The second result is false on miss (including a TTL expiry, which
// counts as both an expiration and a miss; the policy is notified via
// OnExpire, then OnMiss). A hit on a probation entry may promote it to
// the protected segment (the policy's call), which can evict protected
// LRU entries to make room.
//
// With persistence enabled, a RAM miss on a persistable kind consults the
// spill directory before giving up: a valid artifact is decoded,
// re-inserted (bypassing admission — the key earned residency in a
// previous life) and returned as a hit; a missing, corrupt or stale
// artifact falls through to an ordinary miss.
func (s *Store) Get(k Key) (Sized, bool) {
	v, ok := s.lookup(k)
	if s.tuner != nil {
		s.tuner.onGet(k.Kind, ok)
		s.tuner.tick()
	}
	return v, ok
}

// lookup is Get without the tuner hooks (which must see the final
// outcome, spill tier included).
func (s *Store) lookup(k Key) (Sized, bool) {
	ls := s.shardFor(k)
	spillable := s.persist != nil && s.persist.persists(k.Kind)
	if v, ok := ls.get(k, !spillable); ok {
		return v, true
	}
	if !spillable {
		return nil, false
	}
	// The disk probe runs outside every lock: concurrent Gets on other
	// keys proceed, and a racing Put on this key simply wins (adopt
	// returns the resident value).
	v, ok := s.persist.load(k, s.opts.Now(), time.Duration(s.effTTL.Load()))
	if !ok {
		ls.missLocked2(k)
		return nil, false
	}
	return ls.adopt(k, v, true), true
}

// get is the RAM-only Get. countMiss false defers miss accounting to the
// caller (the spill-tier path, which may still turn the miss into a hit).
func (ls *lockShard) get(k Key, countMiss bool) (Sized, bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	now := ls.opts.Now()
	el, ok := ls.items[k]
	if ok && ls.expired(el.Value.(*entry), now) {
		ls.expireLocked(el, now)
		ok = false
	}
	if !ok {
		if countMiss {
			ls.misses.Inc()
			//cocktail:allow lockdiscipline Policy contract: callbacks run under mu (policies keep no locks of their own); OnMiss is O(1) counter work
			ls.policy.OnMiss(k, now)
		}
		return nil, false
	}
	e := el.Value.(*entry)
	e.lastUsed = now
	e.hit = true
	e.sh.listOf(e.seg).MoveToFront(el)
	//cocktail:allow lockdiscipline promotion decision must be atomic with the recency bump it justifies; OnHit is O(1)
	if seg := ls.policy.OnHit(k, e.seg, now); seg != e.seg {
		el = ls.moveSegment(el, seg)
		ls.evictOverLocked(e.sh, seg, el, now)
	}
	ls.hits.Inc()
	return e.value, true
}

// missLocked2 records the miss a deferred-count get left uncounted (the
// spill probe also came up empty).
func (ls *lockShard) missLocked2(k Key) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	ls.misses.Inc()
	//cocktail:allow lockdiscipline Policy contract: callbacks run under mu; OnMiss is O(1) counter work
	ls.policy.OnMiss(k, ls.opts.Now())
}

// adopt re-inserts a value restored from the spill tier (or preloaded at
// startup), bypassing admission: the key earned residency in a previous
// life, so it lands in the protected segment as its shard's MRU, evicting
// LRU entries over budget. If a racing Put made the key resident in the
// meantime the resident value wins. A value too large for the protected
// cap is returned without being re-inserted (still a valid hit — the
// caller gets the bytes; RAM just will not retain them). countHit counts
// the adoption as a hit (the on-miss restore path); preload passes false.
func (ls *lockShard) adopt(k Key, v Sized, countHit bool) Sized {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	now := ls.opts.Now()
	if el, ok := ls.items[k]; ok && !ls.expired(el.Value.(*entry), now) {
		e := el.Value.(*entry)
		e.lastUsed = now
		e.hit = true
		e.sh.listOf(e.seg).MoveToFront(el)
		if countHit {
			ls.hits.Inc()
		}
		return e.value
	}
	if countHit {
		ls.hits.Inc()
	}
	bytes := v.SizeBytes()
	sh := ls.shardOf(k.Kind)
	if bytes > sh.capOf(SegmentProtected) {
		return v
	}
	if el, ok := ls.items[k]; ok {
		// Resident but TTL-stale: expire it through the policy first,
		// exactly as Get would have.
		ls.expireLocked(el, now)
	}
	e := &entry{key: k, value: v, bytes: bytes, lastUsed: now, sh: sh, seg: SegmentProtected}
	el := sh.listOf(SegmentProtected).PushFront(e)
	ls.items[k] = el
	ls.bytes += bytes
	sh.bytes += bytes
	a := ls.acctOf(k.Kind)
	a.entries++
	a.bytes += bytes
	ls.insertions.Inc()
	ls.evictOverLocked(sh, SegmentProtected, el, now)
	return v
}

// moveSegment transfers an entry between its shard's segment lists (as
// the MRU of its new segment) and fixes the byte accounting, counting a
// promotion when the move is probation -> protected.
func (ls *lockShard) moveSegment(el *list.Element, seg Segment) *list.Element {
	e := el.Value.(*entry)
	a := ls.acctOf(e.key.Kind)
	e.sh.listOf(e.seg).Remove(el)
	if e.seg == SegmentProbation {
		e.sh.prBytes -= e.bytes
		a.probEntries--
		a.probBytes -= e.bytes
		if seg == SegmentProtected {
			ls.promotions.Inc()
		}
	} else {
		e.sh.prBytes += e.bytes
		a.probEntries++
		a.probBytes += e.bytes
	}
	e.seg = seg
	el = e.sh.listOf(seg).PushFront(e)
	ls.items[e.key] = el
	return el
}

// evictOverLocked evicts LRU entries of a shard's segment until its byte
// budget holds, never evicting keep (the entry whose insertion or
// promotion caused the pressure). Callers hold ls.mu.
func (ls *lockShard) evictOverLocked(sh *shard, seg Segment, keep *list.Element, now time.Time) {
	ll, budget := sh.listOf(seg), sh.capOf(seg)
	for sh.segBytes(seg) > budget {
		lru := ll.Back()
		if lru == nil || lru == keep {
			break
		}
		e := lru.Value.(*entry)
		//cocktail:allow lockdiscipline the victim must be ghosted before another Put can race its key; the per-Put eviction count is bounded by the incoming entry's size
		ls.policy.OnEvict(e.key, e.seg, e.hit, now)
		ls.removeLocked(lru)
		ls.evictions.Inc()
	}
}

// Put inserts (or replaces) the value under k and evicts least-recently
// used entries of the target segment until its byte budget holds. A
// value alone exceeding its target segment's budget is not stored, and a
// non-resident key the admission policy declines is dropped (only its
// sighting is remembered); Put reports false in both cases. Replacing an
// existing key is always admitted (the key earned residency already)
// and counts as a re-reference for segment placement — unless the new
// value no longer fits its target segment, in which case Put reports
// false and the resident entry is kept. Replacement does not count as
// an eviction. A resident entry already past its TTL is expired first
// (through the policy, like Get and Sweep would) and the value then
// faces Admit as a non-resident, so admission cannot depend on whether
// a Get or a Put reaches a stale entry first.
//
// With persistence enabled, an admitted Put of a persistable kind also
// writes the value's spill artifact (outside the lock-shard mutex), so a
// later eviction leaves the bytes recoverable on disk.
func (s *Store) Put(k Key, v Sized) bool {
	ok := s.shardFor(k).put(k, v)
	if ok && s.persist != nil && s.persist.persists(k.Kind) {
		s.persist.save(k, v, s.opts.Now())
	}
	if s.tuner != nil {
		s.tuner.tick()
	}
	return ok
}

func (ls *lockShard) put(k Key, v Sized) bool {
	bytes := v.SizeBytes()
	ls.mu.Lock()
	defer ls.mu.Unlock()
	sh := ls.shardOf(k.Kind)
	now := ls.opts.Now()
	el, resident := ls.items[k]
	if resident && ls.expired(el.Value.(*entry), now) {
		// A TTL-stale resident is not a live re-reference: expire it
		// through the policy (washout counting, re-ghosting) exactly as
		// Get or Sweep would have, then make the value re-earn
		// residency through Admit — so admission cannot depend on
		// whether a Get or a Put reaches the stale entry first. This
		// runs before the size pre-check below: the stale entry's fate
		// must not depend on the replacement value's size either.
		ls.expireLocked(el, now)
		resident = false
	}
	if bytes > sh.capOf(SegmentProtected) {
		// Fits no segment of its shard (the probation cap never exceeds
		// the protected one — ProbationCap clamps at half the shard
		// budget): reject before the policy sees anything, so no
		// sighting is ghosted, no ghost promotion is consumed, and no
		// re-reference counter moves for a value that can never be
		// stored.
		return false
	}
	seg, hit := SegmentProtected, false
	if resident {
		// Replacement is a re-reference: the policy gets the same
		// promotion say it has on Get hits. The pre-check above
		// guarantees the value fits the promotion target, so the
		// resident entry is only removed once storage is assured.
		e := el.Value.(*entry)
		//cocktail:allow lockdiscipline replacement placement must be atomic with the remove+reinsert below; OnHit is O(1)
		seg = ls.policy.OnHit(k, e.seg, now)
		if bytes > sh.capOf(seg) {
			// Defensive: only reachable if a policy keeps an oversize
			// replacement in probation; keep the resident entry.
			return false
		}
		if e.seg == SegmentProbation && seg == SegmentProtected {
			ls.promotions.Inc()
		}
		ls.removeLocked(el)
		hit = true
	} else {
		var ok bool
		//cocktail:allow lockdiscipline admission must be atomic with residency (a racing Put on the same key would double-count sightings); Admit is O(1) plus amortized ghost reaping
		if seg, ok = ls.policy.Admit(k, bytes, now); !ok {
			return false
		}
		if bytes > sh.capOf(seg) {
			// Defensive against a policy routing a value to a segment
			// it cannot fit (a Policy contract violation); refuse
			// rather than evict everything for an entry that still
			// would not fit.
			return false
		}
	}
	e := &entry{key: k, value: v, bytes: bytes, lastUsed: now, sh: sh, seg: seg, hit: hit}
	el = sh.listOf(seg).PushFront(e)
	ls.items[k] = el
	ls.bytes += bytes
	sh.bytes += bytes
	a := ls.acctOf(k.Kind)
	a.entries++
	a.bytes += bytes
	if seg == SegmentProbation {
		sh.prBytes += bytes
		a.probEntries++
		a.probBytes += bytes
	}
	ls.insertions.Inc()
	ls.evictOverLocked(sh, seg, el, now)
	return true
}

// Delete removes the entry under k, reporting whether it was resident in
// RAM. Manual deletion counts as neither eviction nor expiration and is
// deliberately silent toward the admission policy (see the Policy
// contract): the caller invalidated the value, so its key must not be
// re-ghosted for one-sighting readmission nor counted as admission pain.
// The key's spill artifact, if any, is removed too — an invalidated value
// must not resurrect from disk.
func (s *Store) Delete(k Key) bool {
	ls := s.shardFor(k)
	ls.mu.Lock()
	el, ok := ls.items[k]
	if ok {
		ls.removeLocked(el)
	}
	ls.mu.Unlock()
	if s.persist != nil && s.persist.persists(k.Kind) {
		s.persist.remove(k)
	}
	return ok
}

// sweepBatchSize bounds how many expired entries one Sweep lock hold may
// remove, so a sweep over a large fully-expired cache cannot stall
// concurrent serve-path Gets for the whole scan.
const sweepBatchSize = 128

// Sweep drops every TTL-expired entry now (Get/Put expire lazily; a
// periodic Sweep bounds how long idle entries linger), notifying the
// policy of each via OnExpire. It returns how many entries were expired.
// Lock-shards are swept one at a time — there is never a moment when two
// lock-shard mutexes are held — and spill artifacts are untouched (a
// stale artifact is deleted when a load finds it expired).
//
// Each lock-shard's mutex is released and re-acquired between bounded
// batches of removals, so concurrent Gets interleave with a large sweep
// instead of stalling behind it; entries touched between batches are
// simply seen with their refreshed recency.
func (s *Store) Sweep() int {
	n := 0
	for _, ls := range s.shards {
		for {
			removed, more := ls.sweepBatch()
			n += removed
			if !more {
				break
			}
		}
	}
	return n
}

// sweepBatch removes up to sweepBatchSize expired entries under one lock
// hold, reporting whether another batch is (or may be) needed. Each LRU
// list is ordered by last use, so scanning from the back touches only
// expired entries plus one unexpired sentinel per list.
func (ls *lockShard) sweepBatch() (int, bool) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	now := ls.opts.Now()
	n := 0
	for _, sh := range ls.shards() {
		for _, ll := range []*list.List{sh.ll, sh.prob} {
			for el := ll.Back(); el != nil; el = ll.Back() {
				if !ls.expired(el.Value.(*entry), now) {
					break
				}
				if n >= sweepBatchSize {
					return n, true
				}
				ls.expireLocked(el, now)
				n++
			}
		}
	}
	return n, false
}

// Len returns the current number of entries (all shards).
func (s *Store) Len() int {
	n := 0
	for _, ls := range s.shards {
		ls.mu.Lock()
		n += len(ls.items)
		ls.mu.Unlock()
	}
	return n
}

// Bytes returns the current resident total in bytes (all shards).
func (s *Store) Bytes() int64 {
	var b int64
	for _, ls := range s.shards {
		ls.mu.Lock()
		b += ls.bytes
		ls.mu.Unlock()
	}
	return b
}

// Stats snapshots the counters and occupancy, aggregated over the
// lock-shards (visited one at a time — no global lock; a snapshot is
// consistent per lock-shard, advisory across them, like any sharded
// metrics read).
func (s *Store) Stats() Stats {
	agg := Stats{
		MaxBytes: s.opts.MaxBytes,
		Kinds:    make(map[string]KindStats),
		Shards:   make([]ShardStats, 0, len(s.shards)),
	}
	for i, ls := range s.shards {
		st := ls.snapshot()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Expirations += st.Expirations
		agg.Insertions += st.Insertions
		agg.Entries += st.Entries
		agg.Bytes += st.Bytes
		agg.Shards = append(agg.Shards, ShardStats{
			Entries:     st.Entries,
			Bytes:       st.Bytes,
			MaxBytes:    st.MaxBytes,
			Hits:        st.Hits,
			Misses:      st.Misses,
			Evictions:   st.Evictions,
			Expirations: st.Expirations,
			Insertions:  st.Insertions,
		})
		if i == 0 {
			agg.Admission = st.Admission
		} else {
			mergeAdmission(&agg.Admission, st.Admission)
		}
		for kind, ks := range st.Kinds {
			if have, ok := agg.Kinds[kind]; ok {
				mergeKindStats(&have, ks)
				agg.Kinds[kind] = have
			} else {
				agg.Kinds[kind] = ks
			}
		}
	}
	if s.persist != nil {
		ps := s.persist.stats()
		agg.Persist = &ps
	}
	if s.tuner != nil {
		agg.Tune = s.tuner.stats()
	}
	return agg
}

// snapshot is one lock-shard's Stats block (MaxBytes is the shard's own
// budget slice; the aggregate overwrites it with the configured total).
func (ls *lockShard) snapshot() Stats {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	//cocktail:allow lockdiscipline snapshot consistency: counters and occupancy must be read under one lock hold; Stats is read-only O(kinds)
	adm := ls.policy.Stats()
	adm.SegmentPromotions = ls.promotions.Load()
	for _, sh := range ls.shards() {
		adm.ProbationEntries += sh.prob.Len()
		adm.ProbationBytes += sh.prBytes
		adm.ProbationCapBytes += sh.probCap
		adm.ProtectedEntries += sh.ll.Len()
		adm.ProtectedBytes += sh.bytes - sh.prBytes
	}
	// Per-kind blocks: occupancy from the store's accounting, budget
	// from the kind's shard, admission counters redistributed from the
	// policy's per-kind breakdown (PolicyPerKind) when it keeps one.
	perKindAdm := adm.Kinds
	adm.Kinds = nil
	kinds := make(map[string]KindStats, len(ls.acct))
	for kind, a := range ls.acct {
		sh := ls.shardOf(kind)
		ks := KindStats{
			Entries:           a.entries,
			Bytes:             a.bytes,
			MaxBytes:          sh.max,
			Dedicated:         sh != ls.shared,
			ProbationEntries:  a.probEntries,
			ProbationBytes:    a.probBytes,
			ProbationCapBytes: sh.probCap,
		}
		if ka, ok := perKindAdm[string(kind)]; ok {
			ka := ka
			ks.Admission = &ka
		}
		kinds[string(kind)] = ks
	}
	return Stats{
		Hits:        ls.hits.Load(),
		Misses:      ls.misses.Load(),
		Evictions:   ls.evictions.Load(),
		Expirations: ls.expirations.Load(),
		Insertions:  ls.insertions.Load(),
		Entries:     len(ls.items),
		Bytes:       ls.bytes,
		MaxBytes:    ls.max,
		Admission:   adm,
		Kinds:       kinds,
	}
}

// mergeAdmission folds one more lock-shard's admission block into the
// aggregate: counters and occupancy sum, the label stays (every shard's
// policy comes from one factory), and Mode follows the PolicyPerKind
// rule — agreeing non-empty modes read as that mode, disagreeing ones as
// "mixed".
func mergeAdmission(dst *AdmissionStats, src AdmissionStats) {
	dst.ProbationHits += src.ProbationHits
	dst.GhostPromotions += src.GhostPromotions
	dst.SegmentPromotions += src.SegmentPromotions
	dst.ScanRejections += src.ScanRejections
	dst.PolicyFlips += src.PolicyFlips
	dst.GhostEntries += src.GhostEntries
	dst.GhostLimit += src.GhostLimit
	dst.ProbationEntries += src.ProbationEntries
	dst.ProbationBytes += src.ProbationBytes
	dst.ProbationCapBytes += src.ProbationCapBytes
	dst.ProtectedEntries += src.ProtectedEntries
	dst.ProtectedBytes += src.ProtectedBytes
	if src.Mode != dst.Mode {
		if dst.Mode == "" {
			dst.Mode = src.Mode
		} else if src.Mode != "" {
			dst.Mode = "mixed"
		}
	}
}

// mergeKindStats folds one more lock-shard's per-kind block into the
// aggregate (budgets and occupancy sum; the admission sub-block merges
// like the top-level one).
func mergeKindStats(dst *KindStats, src KindStats) {
	dst.Entries += src.Entries
	dst.Bytes += src.Bytes
	dst.MaxBytes += src.MaxBytes
	dst.Dedicated = dst.Dedicated || src.Dedicated
	dst.ProbationEntries += src.ProbationEntries
	dst.ProbationBytes += src.ProbationBytes
	dst.ProbationCapBytes += src.ProbationCapBytes
	switch {
	case dst.Admission == nil:
		dst.Admission = src.Admission
	case src.Admission != nil:
		merged := *dst.Admission
		mergeAdmission(&merged, *src.Admission)
		dst.Admission = &merged
	}
}

func (ls *lockShard) expired(e *entry, now time.Time) bool {
	ttl := time.Duration(ls.ttl.Load())
	return ttl > 0 && now.Sub(e.lastUsed) > ttl
}

// expireLocked drops one TTL-expired entry, notifying the policy first
// (OnExpire with the entry's segment and re-reference bit, exactly like
// an eviction) so expiry-driven churn is as visible to admission as
// byte-pressure churn. Callers hold ls.mu.
func (ls *lockShard) expireLocked(el *list.Element, now time.Time) {
	e := el.Value.(*entry)
	//cocktail:allow lockdiscipline the Sweep contract's bounded hold: sweepBatch releases mu every sweepBatchSize removals, so a slow OnExpire stalls Gets for at most one batch (TestSweepLatencyBound)
	ls.policy.OnExpire(e.key, e.seg, e.hit, now)
	ls.removeLocked(el)
	ls.expirations.Inc()
}

func (ls *lockShard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	e.sh.listOf(e.seg).Remove(el)
	delete(ls.items, e.key)
	ls.bytes -= e.bytes
	e.sh.bytes -= e.bytes
	a := ls.acctOf(e.key.Kind)
	a.entries--
	a.bytes -= e.bytes
	if e.seg == SegmentProbation {
		e.sh.prBytes -= e.bytes
		a.probEntries--
		a.probBytes -= e.bytes
	}
}
