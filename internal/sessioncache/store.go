// Package sessioncache is a concurrency-safe, byte-accounted LRU store
// for cross-request KV-cache reuse. It holds the two artifacts the
// serving layer wants to keep between requests:
//
//   - prefilled kvcache.Builders (raw FP32 context KV, so any future
//     query can be re-planned and re-sealed byte-identically), and
//   - pristine sealed kvcache.Caches (quantized context KV for one plan,
//     decoded on via Cache.Fork so the stored copy is never mutated).
//
// The store itself is value-agnostic: anything implementing Sized can be
// cached, keyed by (pipeline config fingerprint, kind, content hash).
// Eviction is strict LRU over a byte budget — entry sizes come from the
// same honest byte accounting the hardware model uses (packed quantized
// codes + FP16 scale/zero metadata, 2 bytes per FP16 value, 4 bytes per
// FP32 value) — with an optional idle TTL. Hit/miss/eviction/expiration
// counters are metrics.Counter values (lock-free atomics) surfaced to the
// serving metrics endpoint.
//
// Admission is pluggable (Options.Policy): PolicyLRU admits every Put
// (the historical behavior and the default), Policy2Q requires a second
// sighting within the TTL window before a key may occupy main-cache
// bytes, which keeps one-shot scan traffic from flushing reused entries.
//
// Ownership: a Store is shared state, safe for concurrent use from any
// number of goroutines; all methods lock internally. Values handed out by
// Get are shared too — callers must only read them (for caches: fork
// before decoding). Eviction only drops the store's reference; callers
// holding a value keep it alive, so evicting under a live session is
// always safe.
package sessioncache

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Sized is a cacheable value that knows its resident footprint in bytes.
type Sized interface {
	SizeBytes() int64
}

// Kind distinguishes the artifact classes sharing one byte budget.
type Kind string

// The two artifact kinds of the serving layer.
const (
	// KindPrefill entries hold prefilled FP32 builders (context hash key).
	KindPrefill Kind = "prefill"
	// KindSealed entries hold pristine sealed caches (context hash + plan
	// fingerprint key).
	KindSealed Kind = "sealed"
)

// Key identifies one cached artifact. All fields participate in equality;
// Fingerprint isolates pipelines with different configs (model, method,
// hyperparameters) from each other so a hit can never cross configs.
type Key struct {
	// Fingerprint is the pipeline configuration fingerprint.
	Fingerprint string
	// Kind is the artifact class (prefill or sealed).
	Kind Kind
	// Hash identifies the content: the context-token hash, plus the plan
	// fingerprint for sealed entries.
	Hash string
}

// Options configures a Store. The zero value is usable: 256 MiB budget,
// no TTL.
type Options struct {
	// MaxBytes is the eviction budget in bytes summed over all entries
	// (<= 0 selects 256 MiB). A single value larger than the whole budget
	// is not admitted at all.
	MaxBytes int64
	// TTL is the idle lifetime of an entry; an entry untouched (no Get or
	// Put) for longer is expired on the next access. Zero disables
	// expiry.
	TTL time.Duration
	// Policy is the admission policy; nil selects PolicyLRU (admit
	// everything). The store takes ownership: the policy must not be
	// shared with another store or called directly afterwards.
	Policy Policy

	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
}

// DefaultMaxBytes is the byte budget used when Options.MaxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// Stats is a point-in-time snapshot of the store's counters and
// occupancy. Counter fields are monotonic event totals since creation;
// Entries/Bytes/MaxBytes describe current state (Bytes and MaxBytes in
// bytes).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Admission is the admission policy's counter block (all zeros
	// under PolicyLRU apart from the label).
	Admission AdmissionStats `json:"admission"`
}

type entry struct {
	key      Key
	value    Sized
	bytes    int64
	lastUsed time.Time
}

// Store is the byte-accounted LRU. See the package comment for the
// ownership rules.
type Store struct {
	mu     sync.Mutex
	opts   Options
	policy Policy
	ll     *list.List // front = most recently used; values are *entry
	items  map[Key]*list.Element
	bytes  int64

	hits        metrics.Counter
	misses      metrics.Counter
	evictions   metrics.Counter
	expirations metrics.Counter
	insertions  metrics.Counter
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if opts.Policy == nil {
		opts.Policy = NewPolicyLRU()
	}
	return &Store{
		opts:   opts,
		policy: opts.Policy,
		ll:     list.New(),
		items:  make(map[Key]*list.Element),
	}
}

// MaxBytes returns the configured byte budget.
func (s *Store) MaxBytes() int64 { return s.opts.MaxBytes }

// Get returns the value under k, bumping its recency and refreshing its
// TTL. The second result is false on miss (including a TTL expiry, which
// counts as both an expiration and a miss).
func (s *Store) Get(k Key) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.now()
	el, ok := s.items[k]
	if ok && s.expired(el.Value.(*entry), now) {
		s.removeLocked(el)
		s.expirations.Inc()
		ok = false
	}
	if !ok {
		s.misses.Inc()
		s.policy.OnMiss(k, now)
		return nil, false
	}
	e := el.Value.(*entry)
	e.lastUsed = now
	s.ll.MoveToFront(el)
	s.hits.Inc()
	return e.value, true
}

// Put inserts (or replaces) the value under k and evicts least-recently
// used entries until the byte budget holds. A value alone exceeding the
// whole budget is not stored, and a non-resident key the admission
// policy declines is dropped (only its sighting is remembered); Put
// reports false in both cases. Replacing an existing key is always
// admitted (the key earned residency already) and does not count as an
// eviction.
func (s *Store) Put(k Key, v Sized) bool {
	bytes := v.SizeBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes > s.opts.MaxBytes {
		return false
	}
	now := s.opts.now()
	if el, ok := s.items[k]; ok {
		s.removeLocked(el)
	} else if !s.policy.Admit(k, now) {
		return false
	}
	el := s.ll.PushFront(&entry{key: k, value: v, bytes: bytes, lastUsed: now})
	s.items[k] = el
	s.bytes += bytes
	s.insertions.Inc()
	for s.bytes > s.opts.MaxBytes {
		lru := s.ll.Back()
		if lru == nil || lru == el {
			break
		}
		s.policy.OnEvict(lru.Value.(*entry).key, now)
		s.removeLocked(lru)
		s.evictions.Inc()
	}
	return true
}

// Delete removes the entry under k, reporting whether it existed. Manual
// deletion counts as neither eviction nor expiration.
func (s *Store) Delete(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if ok {
		s.removeLocked(el)
	}
	return ok
}

// Sweep drops every TTL-expired entry now (Get/Put expire lazily; a
// periodic Sweep bounds how long idle entries linger). It returns how
// many entries were expired.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.now()
	n := 0
	for el := s.ll.Back(); el != nil; {
		prev := el.Prev()
		if s.expired(el.Value.(*entry), now) {
			s.removeLocked(el)
			s.expirations.Inc()
			n++
		}
		el = prev
	}
	return n
}

// Len returns the current number of entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Bytes returns the current resident total in bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Expirations: s.expirations.Load(),
		Insertions:  s.insertions.Load(),
		Entries:     len(s.items),
		Bytes:       s.bytes,
		MaxBytes:    s.opts.MaxBytes,
		Admission:   s.policy.Stats(),
	}
}

func (s *Store) expired(e *entry, now time.Time) bool {
	return s.opts.TTL > 0 && now.Sub(e.lastUsed) > s.opts.TTL
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.bytes
}
