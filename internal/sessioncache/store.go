// Package sessioncache is a concurrency-safe, byte-accounted LRU store
// for cross-request KV-cache reuse. It holds the two artifacts the
// serving layer wants to keep between requests:
//
//   - prefilled kvcache.Builders (raw FP32 context KV, so any future
//     query can be re-planned and re-sealed byte-identically), and
//   - pristine sealed kvcache.Caches (quantized context KV for one plan,
//     decoded on via Cache.Fork so the stored copy is never mutated).
//
// The store itself is value-agnostic: anything implementing Sized can be
// cached, keyed by (pipeline config fingerprint, kind, content hash).
// Eviction is strict LRU over a byte budget — entry sizes come from the
// same honest byte accounting the hardware model uses (packed quantized
// codes + FP16 scale/zero metadata, 2 bytes per FP16 value, 4 bytes per
// FP32 value) — with an optional idle TTL. Hit/miss/eviction/expiration
// counters are metrics.Counter values (lock-free atomics) surfaced to the
// serving metrics endpoint.
//
// Admission is pluggable (Options.Policy) and segment-aware: PolicyLRU
// admits every Put (the historical behavior and the default), Policy2Q
// requires a second sighting within the TTL window before a key may
// occupy main-cache bytes, the full A1in/A1out variant (NewPolicyA1)
// instead trials first sightings in a small probation byte segment and
// promotes them on re-reference, and PolicyAdaptive flips between
// admit-everything and second-sighting admission by watching the
// workload. The store keeps one LRU list per segment; the probation
// segment's byte cap is carved out of MaxBytes, so the total budget is
// never exceeded.
//
// Ownership: a Store is shared state, safe for concurrent use from any
// number of goroutines; all methods lock internally. Values handed out by
// Get are shared too — callers must only read them (for caches: fork
// before decoding). Eviction only drops the store's reference; callers
// holding a value keep it alive, so evicting under a live session is
// always safe.
package sessioncache

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Sized is a cacheable value that knows its resident footprint in bytes.
type Sized interface {
	SizeBytes() int64
}

// Kind distinguishes the artifact classes sharing one byte budget.
type Kind string

// The two artifact kinds of the serving layer.
const (
	// KindPrefill entries hold prefilled FP32 builders (context hash key).
	KindPrefill Kind = "prefill"
	// KindSealed entries hold pristine sealed caches (context hash + plan
	// fingerprint key).
	KindSealed Kind = "sealed"
)

// Key identifies one cached artifact. All fields participate in equality;
// Fingerprint isolates pipelines with different configs (model, method,
// hyperparameters) from each other so a hit can never cross configs.
type Key struct {
	// Fingerprint is the pipeline configuration fingerprint.
	Fingerprint string
	// Kind is the artifact class (prefill or sealed).
	Kind Kind
	// Hash identifies the content: the context-token hash, plus the plan
	// fingerprint for sealed entries.
	Hash string
}

// Options configures a Store. The zero value is usable: 256 MiB budget,
// no TTL.
type Options struct {
	// MaxBytes is the eviction budget in bytes summed over all entries of
	// both segments (<= 0 selects 256 MiB). A single value larger than
	// its target segment's budget is not admitted at all.
	MaxBytes int64
	// TTL is the idle lifetime of an entry; an entry untouched (no Get or
	// Put) for longer is expired on the next access. Zero disables
	// expiry.
	TTL time.Duration
	// Policy is the admission policy; nil selects PolicyLRU (admit
	// everything). The store takes ownership: the policy must not be
	// shared with another store or called directly afterwards. A policy
	// with a probation segment (Policy.ProbationCap > 0) has that cap
	// carved out of MaxBytes; a cap at or beyond MaxBytes is clamped to
	// half the budget so the protected segment always exists.
	Policy Policy

	// now overrides the clock in tests; nil means time.Now.
	now func() time.Time
}

// DefaultMaxBytes is the byte budget used when Options.MaxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// Stats is a point-in-time snapshot of the store's counters and
// occupancy. Counter fields are monotonic event totals since creation;
// Entries/Bytes/MaxBytes describe current state (Bytes and MaxBytes in
// bytes, summed over both segments).
type Stats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	Insertions  int64 `json:"insertions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	// Admission is the admission policy's counter block plus the store's
	// segment occupancy (all zeros under PolicyLRU apart from the label
	// and the protected occupancy).
	Admission AdmissionStats `json:"admission"`
}

type entry struct {
	key      Key
	value    Sized
	bytes    int64
	lastUsed time.Time
	seg      Segment
	hit      bool // re-referenced (Get or replacing Put) while resident
}

// Store is the byte-accounted, segment-aware LRU. See the package
// comment for the ownership rules.
type Store struct {
	mu      sync.Mutex
	opts    Options
	policy  Policy
	probCap int64      // probation budget, carved out of MaxBytes
	ll      *list.List // protected segment; front = most recently used
	prob    *list.List // probation segment; front = most recently used
	items   map[Key]*list.Element
	bytes   int64 // both segments
	prBytes int64 // probation segment only

	hits        metrics.Counter
	misses      metrics.Counter
	evictions   metrics.Counter
	expirations metrics.Counter
	insertions  metrics.Counter
	promotions  metrics.Counter // probation -> protected segment moves
}

// New builds an empty store.
func New(opts Options) *Store {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if opts.Policy == nil {
		opts.Policy = NewPolicyLRU()
	}
	// The policy clamps its own cap against the budget and remembers
	// the result, so store and policy always agree on what fits the
	// probation segment.
	probCap := opts.Policy.ProbationCap(opts.MaxBytes)
	if probCap < 0 {
		probCap = 0
	}
	return &Store{
		opts:    opts,
		policy:  opts.Policy,
		probCap: probCap,
		ll:      list.New(),
		prob:    list.New(),
		items:   make(map[Key]*list.Element),
	}
}

// MaxBytes returns the configured byte budget.
func (s *Store) MaxBytes() int64 { return s.opts.MaxBytes }

// listOf returns the LRU list backing a segment.
func (s *Store) listOf(seg Segment) *list.List {
	if seg == SegmentProbation {
		return s.prob
	}
	return s.ll
}

// capOf returns a segment's byte budget. The caps are disjoint: the
// probation cap is carved out of MaxBytes, so their sum is the total
// budget and the store can never exceed it.
func (s *Store) capOf(seg Segment) int64 {
	if seg == SegmentProbation {
		return s.probCap
	}
	return s.opts.MaxBytes - s.probCap
}

// Get returns the value under k, bumping its recency and refreshing its
// TTL. The second result is false on miss (including a TTL expiry, which
// counts as both an expiration and a miss). A hit on a probation entry
// may promote it to the protected segment (the policy's call), which can
// evict protected LRU entries to make room.
func (s *Store) Get(k Key) (Sized, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.now()
	el, ok := s.items[k]
	if ok && s.expired(el.Value.(*entry), now) {
		s.removeLocked(el)
		s.expirations.Inc()
		ok = false
	}
	if !ok {
		s.misses.Inc()
		s.policy.OnMiss(k, now)
		return nil, false
	}
	e := el.Value.(*entry)
	e.lastUsed = now
	e.hit = true
	s.listOf(e.seg).MoveToFront(el)
	if seg := s.policy.OnHit(k, e.seg, now); seg != e.seg {
		el = s.moveSegment(el, seg)
		s.evictOver(seg, el, now)
	}
	s.hits.Inc()
	return e.value, true
}

// moveSegment transfers an entry between segment lists (as the MRU of
// its new segment) and fixes the byte accounting, counting a promotion
// when the move is probation -> protected.
func (s *Store) moveSegment(el *list.Element, seg Segment) *list.Element {
	e := el.Value.(*entry)
	s.listOf(e.seg).Remove(el)
	if e.seg == SegmentProbation {
		s.prBytes -= e.bytes
		if seg == SegmentProtected {
			s.promotions.Inc()
		}
	} else {
		s.prBytes += e.bytes
	}
	e.seg = seg
	el = s.listOf(seg).PushFront(e)
	s.items[e.key] = el
	return el
}

// evictOver evicts LRU entries of seg until its byte budget holds,
// never evicting keep (the entry whose insertion or promotion caused the
// pressure).
func (s *Store) evictOver(seg Segment, keep *list.Element, now time.Time) {
	ll, budget := s.listOf(seg), s.capOf(seg)
	for s.segBytes(seg) > budget {
		lru := ll.Back()
		if lru == nil || lru == keep {
			break
		}
		e := lru.Value.(*entry)
		s.policy.OnEvict(e.key, e.seg, e.hit, now)
		s.removeLocked(lru)
		s.evictions.Inc()
	}
}

// segBytes returns a segment's current resident byte total.
func (s *Store) segBytes(seg Segment) int64 {
	if seg == SegmentProbation {
		return s.prBytes
	}
	return s.bytes - s.prBytes
}

// Put inserts (or replaces) the value under k and evicts least-recently
// used entries of the target segment until its byte budget holds. A
// value alone exceeding its target segment's budget is not stored, and a
// non-resident key the admission policy declines is dropped (only its
// sighting is remembered); Put reports false in both cases. Replacing an
// existing key is always admitted (the key earned residency already)
// and counts as a re-reference for segment placement — unless the new
// value no longer fits its target segment, in which case Put reports
// false and the resident entry is kept. Replacement does not count as
// an eviction.
func (s *Store) Put(k Key, v Sized) bool {
	bytes := v.SizeBytes()
	s.mu.Lock()
	defer s.mu.Unlock()
	if bytes > s.capOf(SegmentProtected) {
		// Fits no segment (the probation cap never exceeds the
		// protected one — ProbationCap clamps at half the budget):
		// reject before the policy sees anything, so no sighting is
		// ghosted, no ghost promotion is consumed, and no re-reference
		// counter moves for a value that can never be stored.
		return false
	}
	now := s.opts.now()
	seg, hit := SegmentProtected, false
	if el, ok := s.items[k]; ok {
		// Replacement is a re-reference: the policy gets the same
		// promotion say it has on Get hits. The pre-check above
		// guarantees the value fits the promotion target, so the
		// resident entry is only removed once storage is assured.
		e := el.Value.(*entry)
		seg = s.policy.OnHit(k, e.seg, now)
		if bytes > s.capOf(seg) {
			// Defensive: only reachable if a policy keeps an oversize
			// replacement in probation; keep the resident entry.
			return false
		}
		if e.seg == SegmentProbation && seg == SegmentProtected {
			s.promotions.Inc()
		}
		s.removeLocked(el)
		hit = true
	} else if seg, ok = s.policy.Admit(k, bytes, now); !ok {
		return false
	} else if bytes > s.capOf(seg) {
		// Defensive against a policy routing a value to a segment it
		// cannot fit (a Policy contract violation); refuse rather than
		// evict everything for an entry that still would not fit.
		return false
	}
	e := &entry{key: k, value: v, bytes: bytes, lastUsed: now, seg: seg, hit: hit}
	el := s.listOf(seg).PushFront(e)
	s.items[k] = el
	s.bytes += bytes
	if seg == SegmentProbation {
		s.prBytes += bytes
	}
	s.insertions.Inc()
	s.evictOver(seg, el, now)
	return true
}

// Delete removes the entry under k, reporting whether it existed. Manual
// deletion counts as neither eviction nor expiration.
func (s *Store) Delete(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if ok {
		s.removeLocked(el)
	}
	return ok
}

// Sweep drops every TTL-expired entry now (Get/Put expire lazily; a
// periodic Sweep bounds how long idle entries linger). It returns how
// many entries were expired.
func (s *Store) Sweep() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.now()
	n := 0
	for _, ll := range []*list.List{s.ll, s.prob} {
		for el := ll.Back(); el != nil; {
			prev := el.Prev()
			if s.expired(el.Value.(*entry), now) {
				s.removeLocked(el)
				s.expirations.Inc()
				n++
			}
			el = prev
		}
	}
	return n
}

// Len returns the current number of entries (both segments).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// Bytes returns the current resident total in bytes (both segments).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Stats snapshots the counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	adm := s.policy.Stats()
	adm.SegmentPromotions = s.promotions.Load()
	adm.ProbationEntries = s.prob.Len()
	adm.ProbationBytes = s.prBytes
	adm.ProbationCapBytes = s.probCap
	adm.ProtectedEntries = s.ll.Len()
	adm.ProtectedBytes = s.bytes - s.prBytes
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Expirations: s.expirations.Load(),
		Insertions:  s.insertions.Load(),
		Entries:     len(s.items),
		Bytes:       s.bytes,
		MaxBytes:    s.opts.MaxBytes,
		Admission:   adm,
	}
}

func (s *Store) expired(e *entry, now time.Time) bool {
	return s.opts.TTL > 0 && now.Sub(e.lastUsed) > s.opts.TTL
}

func (s *Store) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.listOf(e.seg).Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.bytes
	if e.seg == SegmentProbation {
		s.prBytes -= e.bytes
	}
}
