package sessioncache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeValue is a Sized stub with a fixed footprint.
type fakeValue struct {
	id    int
	bytes int64
}

func (f fakeValue) SizeBytes() int64 { return f.bytes }

func key(i int) Key {
	return Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprintf("ctx-%d", i)}
}

func TestLRUEvictionByBytes(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	for i := 0; i < 3; i++ { // 3 × 40 bytes: third insert evicts the first
		s.Put(key(i), fakeValue{id: i, bytes: 40})
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for i := 1; i < 3; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("entry %d should survive", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	// Touching key(1) makes key(2) the LRU victim of the next insert.
	s.Get(key(1))
	s.Put(key(3), fakeValue{id: 3, bytes: 40})
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("key 2 was LRU and should have been evicted")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("recently used key 1 should survive")
	}
}

func TestOversizedValueRejected(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 60})
	if s.Put(key(1), fakeValue{bytes: 150}) {
		t.Fatal("value larger than the whole budget must be rejected")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("rejected insert must not evict residents")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestReplaceDoesNotLeakBytes(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 60})
	s.Put(key(0), fakeValue{bytes: 30})
	if got := s.Bytes(); got != 30 {
		t.Fatalf("bytes after replace = %d, want 30", got)
	}
	if st := s.Stats(); st.Evictions != 0 || st.Insertions != 2 {
		t.Fatalf("replace counted as eviction: %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{MaxBytes: 100, TTL: time.Minute, Now: func() time.Time { return now }})
	s.Put(key(0), fakeValue{bytes: 10})
	s.Put(key(1), fakeValue{bytes: 10})

	now = now.Add(30 * time.Second)
	if _, ok := s.Get(key(0)); !ok { // refreshes key 0's TTL
		t.Fatal("entry must survive within TTL")
	}

	now = now.Add(45 * time.Second) // key 1 idle 75s > TTL, key 0 idle 45s
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("idle entry must expire")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("refreshed entry must survive")
	}
	st := s.Stats()
	if st.Expirations != 1 || st.Misses != 1 {
		t.Fatalf("expiry bookkeeping: %+v", st)
	}

	now = now.Add(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep expired %d entries, want 1", n)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("store not empty after sweep: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestDelete(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 10})
	if !s.Delete(key(0)) {
		t.Fatal("delete of resident entry must report true")
	}
	if s.Delete(key(0)) {
		t.Fatal("second delete must report false")
	}
	if st := s.Stats(); st.Evictions != 0 || st.Expirations != 0 || st.Bytes != 0 {
		t.Fatalf("delete bookkeeping: %+v", st)
	}
}

func TestHitMissCounters(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Get(key(0))
	s.Put(key(0), fakeValue{bytes: 10})
	s.Get(key(0))
	s.Get(key(0))
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestZeroByteEntries: zero-byte values are legal residents — they must
// count as entries without consuming budget or ever triggering eviction.
func TestZeroByteEntries(t *testing.T) {
	s := New(Options{MaxBytes: 10})
	for i := 0; i < 100; i++ {
		if !s.Put(key(i), fakeValue{id: i, bytes: 0}) {
			t.Fatalf("zero-byte put %d rejected", i)
		}
	}
	if s.Len() != 100 || s.Bytes() != 0 {
		t.Fatalf("len=%d bytes=%d, want 100/0", s.Len(), s.Bytes())
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("zero-byte entries must not evict: %+v", st)
	}
	for i := 0; i < 100; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("zero-byte entry %d lost", i)
		}
	}
	// A sized value still evicts zero-byte LRU victims when over budget.
	if !s.Put(key(100), fakeValue{bytes: 10}) {
		t.Fatal("sized put rejected")
	}
	if s.Bytes() != 10 {
		t.Fatalf("bytes=%d, want 10", s.Bytes())
	}
}

// TestBudgetSmallerThanAnyEntry: a cap below every entry size must
// reject each Put outright — never admit-then-thrash, never evict a
// resident for a value that cannot fit anyway.
func TestBudgetSmallerThanAnyEntry(t *testing.T) {
	s := New(Options{MaxBytes: 8})
	for i := 0; i < 10; i++ {
		if s.Put(key(i), fakeValue{id: i, bytes: 9}) {
			t.Fatalf("put %d admitted over a smaller cap", i)
		}
	}
	st := s.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Evictions != 0 || st.Insertions != 0 {
		t.Fatalf("store must stay empty and quiet: %+v", st)
	}
}

// TestTTLExpiryRacesGet races concurrent Gets against TTL expiry (real
// clock, microsecond TTL) and concurrent Sweeps; run under -race this
// proves lazy expiry and access never corrupt the byte accounting.
func TestTTLExpiryRacesGet(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 20, TTL: 50 * time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(i % 8)
				switch g % 3 {
				case 0:
					s.Put(k, fakeValue{id: i, bytes: 32})
				case 1:
					if v, ok := s.Get(k); ok {
						_ = v.SizeBytes()
					}
				default:
					if i%16 == 0 {
						s.Sweep()
					} else if _, ok := s.Get(k); !ok {
						s.Put(k, fakeValue{id: i, bytes: 32})
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Let everything age out, then verify the accounting drains to zero.
	time.Sleep(time.Millisecond)
	s.Sweep()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("after final sweep: len=%d bytes=%d, want 0/0", s.Len(), s.Bytes())
	}
	st := s.Stats()
	if st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats disagree with store: %+v", st)
	}
}

// TestConcurrentAccess hammers the store from many goroutines; run under
// -race this is the store's thread-safety proof.
func TestConcurrentAccess(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 10, TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 16)
				if v, ok := s.Get(k); ok {
					_ = v.SizeBytes()
				} else {
					s.Put(k, fakeValue{id: i, bytes: 64})
				}
				if i%50 == 0 {
					s.Stats()
					s.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Bytes() > 1<<10 {
		t.Fatalf("budget exceeded: %d", s.Bytes())
	}
}
