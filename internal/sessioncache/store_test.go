package sessioncache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeValue is a Sized stub with a fixed footprint.
type fakeValue struct {
	id    int
	bytes int64
}

func (f fakeValue) SizeBytes() int64 { return f.bytes }

func key(i int) Key {
	return Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprintf("ctx-%d", i)}
}

func TestLRUEvictionByBytes(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	for i := 0; i < 3; i++ { // 3 × 40 bytes: third insert evicts the first
		s.Put(key(i), fakeValue{id: i, bytes: 40})
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for i := 1; i < 3; i++ {
		if _, ok := s.Get(key(i)); !ok {
			t.Fatalf("entry %d should survive", i)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}

	// Touching key(1) makes key(2) the LRU victim of the next insert.
	s.Get(key(1))
	s.Put(key(3), fakeValue{id: 3, bytes: 40})
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("key 2 was LRU and should have been evicted")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("recently used key 1 should survive")
	}
}

func TestOversizedValueRejected(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 60})
	if s.Put(key(1), fakeValue{bytes: 150}) {
		t.Fatal("value larger than the whole budget must be rejected")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("rejected insert must not evict residents")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestReplaceDoesNotLeakBytes(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 60})
	s.Put(key(0), fakeValue{bytes: 30})
	if got := s.Bytes(); got != 30 {
		t.Fatalf("bytes after replace = %d, want 30", got)
	}
	if st := s.Stats(); st.Evictions != 0 || st.Insertions != 2 {
		t.Fatalf("replace counted as eviction: %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{MaxBytes: 100, TTL: time.Minute, now: func() time.Time { return now }})
	s.Put(key(0), fakeValue{bytes: 10})
	s.Put(key(1), fakeValue{bytes: 10})

	now = now.Add(30 * time.Second)
	if _, ok := s.Get(key(0)); !ok { // refreshes key 0's TTL
		t.Fatal("entry must survive within TTL")
	}

	now = now.Add(45 * time.Second) // key 1 idle 75s > TTL, key 0 idle 45s
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("idle entry must expire")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("refreshed entry must survive")
	}
	st := s.Stats()
	if st.Expirations != 1 || st.Misses != 1 {
		t.Fatalf("expiry bookkeeping: %+v", st)
	}

	now = now.Add(2 * time.Minute)
	if n := s.Sweep(); n != 1 {
		t.Fatalf("Sweep expired %d entries, want 1", n)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("store not empty after sweep: len=%d bytes=%d", s.Len(), s.Bytes())
	}
}

func TestDelete(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(key(0), fakeValue{bytes: 10})
	if !s.Delete(key(0)) {
		t.Fatal("delete of resident entry must report true")
	}
	if s.Delete(key(0)) {
		t.Fatal("second delete must report false")
	}
	if st := s.Stats(); st.Evictions != 0 || st.Expirations != 0 || st.Bytes != 0 {
		t.Fatalf("delete bookkeeping: %+v", st)
	}
}

func TestHitMissCounters(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Get(key(0))
	s.Put(key(0), fakeValue{bytes: 10})
	s.Get(key(0))
	s.Get(key(0))
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestConcurrentAccess hammers the store from many goroutines; run under
// -race this is the store's thread-safety proof.
func TestConcurrentAccess(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 10, TTL: time.Minute})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 16)
				if v, ok := s.Get(k); ok {
					_ = v.SizeBytes()
				} else {
					s.Put(k, fakeValue{id: i, bytes: 64})
				}
				if i%50 == 0 {
					s.Stats()
					s.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Bytes() > 1<<10 {
		t.Fatalf("budget exceeded: %d", s.Bytes())
	}
}
