package sessioncache

// spill.go is the store's on-disk persistence tier. Kinds with a
// registered Codec spill their admitted entries to an artifact directory:
// every admitted Put writes (or rewrites) the key's artifact, a Get miss
// consults the directory before giving up, and New preloads every valid
// artifact for a warm restart. Artifacts are a capacity tier, not a
// source of truth — loss of the directory loses nothing but warmth.
//
// # Artifact format (version 1)
//
// One artifact per key, little-endian throughout:
//
//	offset  size  field
//	0       4     magic "CKSP"
//	4       2     format version (1)
//	6       8     savedAt, unix nanoseconds (int64) — the store clock at
//	              the Put; artifacts older than the store TTL are stale
//	14      4+n   key.Fingerprint (u32 length prefix + bytes)
//	...     4+n   key.Kind        (u32 length prefix + bytes)
//	...     4+n   key.Hash        (u32 length prefix + bytes)
//	...     4+n   payload         (u32 length prefix + Codec bytes)
//	...     4     CRC-32 (IEEE) of everything above
//
// The filename is a hex-truncated SHA-256 of the key triple (the key's
// Hash may contain '/' — sealed keys embed a plan fingerprint — so raw
// hashes cannot name files), with the full key embedded in the header and
// verified on load so a renamed or colliding file can never serve the
// wrong bytes.
//
// # Corruption contract
//
// A truncated, bit-flipped, wrong-magic, wrong-version, key-mismatched or
// undecodable artifact is never an error, let alone a startup failure: it
// is deleted, counted in PersistStats.Corrupt, and the access proceeds as
// an ordinary miss. A stale artifact (older than TTL) is deleted and
// counted in Expired. Write failures (disk full, permissions) only count
// in Errors — the in-RAM store is authoritative and unaffected.
//
// All I/O runs outside every lock-shard mutex. Writes are atomic
// (unique temp file in the same directory, then rename), so a crash
// mid-write leaves at worst a stale *.tmp* file and never a torn
// artifact; leftover temp files are swept at preload.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Codec serializes one kind's values for the spill tier. Implementations
// must be safe for concurrent use (the store encodes outside its locks)
// and round-trip exactly: Decode(Encode(v)) must reproduce v's bytes,
// SizeBytes included.
type Codec interface {
	// Encode serializes v. The store only passes values that were stored
	// under the codec's kind.
	Encode(v Sized) ([]byte, error)
	// Decode reconstructs a value from Encode's output. Any error makes
	// the caller treat the artifact as corrupt (delete + count + miss).
	Decode(data []byte) (Sized, error)
}

// PersistOptions configures the spill tier (Options.Persist).
type PersistOptions struct {
	// Dir is the artifact directory; it is created if missing. Empty
	// disables persistence.
	Dir string
	// Codecs maps each persistable kind to its serializer; kinds absent
	// here stay RAM-only. Empty disables persistence.
	Codecs map[Kind]Codec
}

// PersistStats is the spill tier's counter block (all counters monotonic
// since store creation).
type PersistStats struct {
	// Dir is the configured artifact directory.
	Dir string `json:"dir"`
	// Writes counts artifacts written (admitted Puts of persistable
	// kinds, including rewrites of an existing key).
	Writes int64 `json:"writes"`
	// Restores counts Get misses answered from disk.
	Restores int64 `json:"restores"`
	// Preloaded counts artifacts re-adopted at startup.
	Preloaded int64 `json:"preloaded"`
	// Corrupt counts artifacts deleted as unreadable: truncated,
	// bit-flipped, wrong magic/version, key mismatch or codec failure.
	Corrupt int64 `json:"corrupt"`
	// Expired counts artifacts deleted as older than the store TTL.
	Expired int64 `json:"expired"`
	// Errors counts I/O failures (encode/write/read errors other than
	// "not found") — never fatal, the RAM store is authoritative.
	Errors int64 `json:"errors"`
}

const (
	spillMagic   = "CKSP"
	spillVersion = 1
	spillSuffix  = ".ckspill"
	// spillMaxField bounds each length-prefixed field when parsing, so a
	// corrupt length cannot drive a giant allocation. Payloads are
	// sealed KV caches — far under this — and key fields are hex
	// strings.
	spillMaxField = 1 << 31
)

// persister owns the artifact directory and the spill counters. It holds
// no locks: every operation is a self-contained file transaction, and
// racing writers of one key converge via atomic rename (last writer
// wins, both artifacts were valid).
type persister struct {
	dir    string
	codecs map[Kind]Codec

	writes    metrics.Counter
	restores  metrics.Counter
	preloaded metrics.Counter
	corrupt   metrics.Counter
	expired   metrics.Counter
	errs      metrics.Counter
}

func newPersister(opts PersistOptions) *persister {
	codecs := make(map[Kind]Codec, len(opts.Codecs))
	for k, c := range opts.Codecs {
		if c != nil {
			codecs[k] = c
		}
	}
	return &persister{dir: opts.Dir, codecs: codecs}
}

// persists reports whether a kind has a registered codec.
func (p *persister) persists(kind Kind) bool {
	_, ok := p.codecs[kind]
	return ok
}

// path returns k's artifact path: a hex-truncated SHA-256 of the key
// triple (0xff separators, which no field contains) under the directory.
func (p *persister) path(k Key) string {
	h := sha256.New()
	h.Write([]byte(k.Fingerprint))
	h.Write([]byte{0xff})
	h.Write([]byte(k.Kind))
	h.Write([]byte{0xff})
	h.Write([]byte(k.Hash))
	sum := h.Sum(nil)
	return filepath.Join(p.dir, hex.EncodeToString(sum[:16])+spillSuffix)
}

// appendField appends one u32-length-prefixed field.
func appendField(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// encodeArtifact assembles the version-1 artifact bytes for (k, payload).
func encodeArtifact(k Key, payload []byte, savedAt time.Time) []byte {
	buf := make([]byte, 0, 14+12+len(k.Fingerprint)+len(k.Kind)+len(k.Hash)+4+len(payload)+4)
	buf = append(buf, spillMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, spillVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(savedAt.UnixNano()))
	buf = appendField(buf, k.Fingerprint)
	buf = appendField(buf, string(k.Kind))
	buf = appendField(buf, k.Hash)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// errCorruptArtifact is the internal "delete it and move on" sentinel
// for every unreadable-artifact shape (see the corruption contract).
var errCorruptArtifact = errors.New("sessioncache: corrupt spill artifact")

// decodeArtifact parses and verifies artifact bytes, returning the
// embedded key, payload and save time. Every malformation returns
// errCorruptArtifact.
func decodeArtifact(data []byte) (Key, []byte, time.Time, error) {
	var zero Key
	// Trailer first: a bit flip anywhere (header, key, payload) fails
	// the checksum before any field is believed.
	if len(data) < 18 || string(data[:4]) != spillMagic {
		return zero, nil, time.Time{}, errCorruptArtifact
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return zero, nil, time.Time{}, errCorruptArtifact
	}
	if binary.LittleEndian.Uint16(body[4:6]) != spillVersion {
		return zero, nil, time.Time{}, errCorruptArtifact
	}
	savedAt := time.Unix(0, int64(binary.LittleEndian.Uint64(body[6:14])))
	rest := body[14:]
	field := func() (string, bool) {
		if len(rest) < 4 {
			return "", false
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) || n >= spillMaxField {
			return "", false
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, true
	}
	fp, ok1 := field()
	kind, ok2 := field()
	hash, ok3 := field()
	payload, ok4 := field()
	if !ok1 || !ok2 || !ok3 || !ok4 || len(rest) != 0 {
		return zero, nil, time.Time{}, errCorruptArtifact
	}
	k := Key{Fingerprint: fp, Kind: Kind(kind), Hash: hash}
	return k, []byte(payload), savedAt, nil
}

// save writes k's artifact (atomic temp+rename). Failures are counted,
// never surfaced — the RAM store already holds the value.
func (p *persister) save(k Key, v Sized, now time.Time) {
	codec := p.codecs[k.Kind]
	payload, err := codec.Encode(v)
	if err != nil {
		p.errs.Inc()
		return
	}
	data := encodeArtifact(k, payload, now)
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		p.errs.Inc()
		return
	}
	dst := p.path(k)
	tmp, err := os.CreateTemp(p.dir, filepath.Base(dst)+".tmp*")
	if err != nil {
		p.errs.Inc()
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		p.errs.Inc()
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		p.errs.Inc()
		return
	}
	p.writes.Inc()
}

// load answers a Get miss from disk: parse, verify, TTL-check and decode
// k's artifact. Absent artifacts are plain misses; corrupt or stale ones
// are deleted and counted (see the corruption contract). now/ttl come
// from the owning store's injected clock and configuration.
func (p *persister) load(k Key, now time.Time, ttl time.Duration) (Sized, bool) {
	path := p.path(k)
	v, ok := p.readArtifact(path, k, now, ttl, true)
	if ok {
		p.restores.Inc()
	}
	return v, ok
}

// readArtifact is the shared load/preload read path. wantKey true
// requires the embedded key to equal want (the load-by-key path); false
// accepts any key (preload discovers keys from the artifacts themselves).
func (p *persister) readArtifact(path string, want Key, now time.Time, ttl time.Duration, wantKey bool) (Sized, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			p.errs.Inc()
		}
		return nil, false
	}
	k, payload, savedAt, err := decodeArtifact(data)
	if err != nil || (wantKey && k != want) {
		p.discard(path, &p.corrupt)
		return nil, false
	}
	if ttl > 0 && now.Sub(savedAt) > ttl {
		p.discard(path, &p.expired)
		return nil, false
	}
	codec, ok := p.codecs[k.Kind]
	if !ok {
		// Preload found a kind this configuration cannot decode; leave
		// the artifact for a configuration that can.
		return nil, false
	}
	v, err := codec.Decode(payload)
	if err != nil || v == nil {
		p.discard(path, &p.corrupt)
		return nil, false
	}
	return v, true
}

// discard deletes an unusable artifact and bumps its counter.
func (p *persister) discard(path string, c *metrics.Counter) {
	os.Remove(path)
	c.Inc()
}

// remove deletes k's artifact (Store.Delete: an invalidated value must
// not resurrect from disk).
func (p *persister) remove(k Key) { os.Remove(p.path(k)) }

// stats snapshots the spill counters.
func (p *persister) stats() PersistStats {
	return PersistStats{
		Dir:       p.dir,
		Writes:    p.writes.Load(),
		Restores:  p.restores.Load(),
		Preloaded: p.preloaded.Load(),
		Corrupt:   p.corrupt.Load(),
		Expired:   p.expired.Load(),
		Errors:    p.errs.Load(),
	}
}

// preload re-adopts every valid artifact in the directory at New, in
// sorted filename order (deterministic adoption order ⇒ deterministic
// LRU order after a warm restart), sweeping crash-leftover temp files.
// Corrupt and stale artifacts are deleted and counted; nothing here can
// fail construction.
func (s *Store) preload() {
	ents, err := os.ReadDir(s.persist.dir)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.persist.errs.Inc()
		}
		return
	}
	names := make([]string, 0, len(ents))
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		if strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(s.persist.dir, name))
			continue
		}
		if strings.HasSuffix(name, spillSuffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	now := s.opts.Now()
	for _, name := range names {
		path := filepath.Join(s.persist.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			s.persist.errs.Inc()
			continue
		}
		k, _, _, derr := decodeArtifact(data)
		if derr != nil {
			s.persist.discard(path, &s.persist.corrupt)
			continue
		}
		v, ok := s.persist.readArtifact(path, k, now, s.opts.TTL, true)
		if !ok {
			continue
		}
		s.shardFor(k).adopt(k, v, false)
		s.persist.preloaded.Inc()
	}
}
