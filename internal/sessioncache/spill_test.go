package sessioncache

// spill_test.go covers the persistence tier end to end: round trips
// through the artifact format, warm restarts, restore-on-miss, and —
// the heart of the corruption contract — every flavor of damaged
// artifact (zero-length, truncated, bit-flipped, wrong version, renamed
// onto the wrong key) degrading to a counted miss, never an error.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeCodec serializes fakeValue as (id, bytes) — enough to prove the
// store round-trips payload bytes verbatim.
type fakeCodec struct{}

func (fakeCodec) Encode(v Sized) ([]byte, error) {
	f, ok := v.(fakeValue)
	if !ok {
		return nil, errors.New("fakeCodec: not a fakeValue")
	}
	buf := binary.LittleEndian.AppendUint64(nil, uint64(f.id))
	return binary.LittleEndian.AppendUint64(buf, uint64(f.bytes)), nil
}

func (fakeCodec) Decode(data []byte) (Sized, error) {
	if len(data) != 16 {
		return nil, errors.New("fakeCodec: bad length")
	}
	return fakeValue{
		id:    int(binary.LittleEndian.Uint64(data)),
		bytes: int64(binary.LittleEndian.Uint64(data[8:])),
	}, nil
}

// failCodec refuses to encode, for the write-error counter path.
type failCodec struct{ fakeCodec }

func (failCodec) Encode(Sized) ([]byte, error) { return nil, errors.New("failCodec") }

func spillOpts(dir string) *PersistOptions {
	return &PersistOptions{Dir: dir, Codecs: map[Kind]Codec{KindSealed: fakeCodec{}}}
}

func sealedKey(i int) Key {
	// Sealed hashes embed a plan fingerprint after a '/' in production;
	// keep the separator here so filename hashing stays honest.
	return Key{Fingerprint: "fp", Kind: KindSealed, Hash: fmt.Sprintf("ctx-%d/plan", i)}
}

func artifacts(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestSpillWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	for i := 0; i < 5; i++ {
		if !s.Put(sealedKey(i), fakeValue{id: i, bytes: 100}) {
			t.Fatalf("put %d declined", i)
		}
	}
	// Prefill has no codec: no artifact, RAM-only.
	s.Put(key(0), fakeValue{id: 99, bytes: 100})
	if got := len(artifacts(t, dir)); got != 5 {
		t.Fatalf("%d artifacts on disk, want 5 (prefill must not spill)", got)
	}
	if ps := s.Stats().Persist; ps == nil || ps.Writes != 5 || ps.Dir != dir {
		t.Fatalf("persist stats after writes: %+v", ps)
	}

	// A fresh store over the same directory starts warm: every sealed
	// entry is resident before any Put, byte-identical.
	s2 := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	if ps := s2.Stats().Persist; ps.Preloaded != 5 || ps.Corrupt != 0 {
		t.Fatalf("preload stats: %+v", ps)
	}
	for i := 0; i < 5; i++ {
		v, ok := s2.Get(sealedKey(i))
		if !ok {
			t.Fatalf("warm restart lost sealed entry %d", i)
		}
		if f := v.(fakeValue); f.id != i || f.bytes != 100 {
			t.Fatalf("entry %d round-tripped as %+v", i, f)
		}
	}
	if st := s2.Stats(); st.Entries != 5 || st.Bytes != 500 {
		t.Fatalf("warm occupancy: %+v", st)
	}
}

func TestSpillRestoreOnMiss(t *testing.T) {
	// Budget for one entry: the second Put evicts the first from RAM,
	// but its artifact answers the next Get — a restore, not a miss.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 150, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	s.Put(sealedKey(1), fakeValue{id: 1, bytes: 100})
	if s.Len() != 1 {
		t.Fatalf("budget holds one entry, have %d", s.Len())
	}
	evicted := sealedKey(0)
	if _, ok := s.Get(sealedKey(1)); ok {
		evicted = sealedKey(0)
	} else {
		evicted = sealedKey(1)
	}
	v, ok := s.Get(evicted)
	if !ok {
		t.Fatal("evicted sealed entry must restore from its artifact")
	}
	if v.(fakeValue).bytes != 100 {
		t.Fatalf("restored value %+v", v)
	}
	st := s.Stats()
	if st.Persist.Restores != 1 {
		t.Fatalf("restore counter: %+v", st.Persist)
	}
	// The restore counts as a hit and re-inserts without admission.
	if st.Hits < 1 || !s.Contains(evicted) {
		t.Fatalf("restored entry must be resident and counted as a hit: %+v", st)
	}
	// A key with no artifact is still a plain miss.
	before := s.Stats().Misses
	if _, ok := s.Get(sealedKey(77)); ok {
		t.Fatal("absent key hit")
	}
	if got := s.Stats().Misses; got != before+1 {
		t.Fatalf("plain miss not counted: %d -> %d", before, got)
	}
}

func TestSpillCorruptArtifactsDegradeToMisses(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"zero-length", func(p string) error { return os.WriteFile(p, nil, 0o644) }},
		{"truncated", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"bit-flipped", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}},
		{"wrong-version", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			// Patch the version field and re-sign, so only the version
			// check can reject it.
			binary.LittleEndian.PutUint16(data[4:6], spillVersion+1)
			body := data[:len(data)-4]
			binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(body))
			return os.WriteFile(p, data, 0o644)
		}},
		{"garbage", func(p string) error {
			return os.WriteFile(p, []byte("not an artifact at all, but long enough to parse"), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/load", func(t *testing.T) {
			// Damage the artifact of an evicted entry: the Get that
			// would have restored it degrades to a miss, deletes the
			// file, and counts Corrupt.
			dir := t.TempDir()
			s := New(Options{MaxBytes: 150, Persist: spillOpts(dir)})
			s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
			names := artifacts(t, dir)
			if len(names) != 1 {
				t.Fatalf("artifacts: %v", names)
			}
			path := filepath.Join(dir, names[0])
			s.Put(sealedKey(1), fakeValue{id: 1, bytes: 100}) // evict 0 (or 1)
			// Make sure key 0 is the non-resident one for a clean probe.
			if s.Contains(sealedKey(0)) {
				s.Delete(sealedKey(1))
				s.Put(sealedKey(1), fakeValue{id: 1, bytes: 100})
			}
			if s.Contains(sealedKey(0)) {
				t.Skip("eviction landed the other way; covered by the preload variant")
			}
			if err := tc.corrupt(path); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(sealedKey(0)); ok {
				t.Fatal("corrupt artifact served a value")
			}
			st := s.Stats()
			if st.Persist.Corrupt != 1 {
				t.Fatalf("corrupt counter: %+v", st.Persist)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt artifact must be deleted, stat err = %v", err)
			}
			// Not fatal either: the store keeps serving.
			if !s.Contains(sealedKey(1)) && !s.Contains(sealedKey(0)) {
				t.Fatal("store unusable after corrupt artifact")
			}
		})
		t.Run(tc.name+"/preload", func(t *testing.T) {
			// Same damage discovered at startup: construction succeeds,
			// the artifact is deleted and counted, the rest preloads.
			dir := t.TempDir()
			s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
			s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
			s.Put(sealedKey(1), fakeValue{id: 1, bytes: 100})
			names := artifacts(t, dir)
			if len(names) != 2 {
				t.Fatalf("artifacts: %v", names)
			}
			if err := tc.corrupt(filepath.Join(dir, names[0])); err != nil {
				t.Fatal(err)
			}
			s2 := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
			ps := s2.Stats().Persist
			if ps.Preloaded != 1 || ps.Corrupt != 1 {
				t.Fatalf("preload over damaged directory: %+v", ps)
			}
			if got := len(artifacts(t, dir)); got != 1 {
				t.Fatalf("%d artifacts left, want 1 (damaged one deleted)", got)
			}
		})
	}
}

func TestSpillKeyMismatchIsCorrupt(t *testing.T) {
	// Copy one key's artifact onto another key's filename: the embedded
	// key no longer matches, so the load must reject it rather than
	// serve the wrong bytes.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	names := artifacts(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Write it under sealedKey(9)'s filename.
	p := s.persist.path(sealedKey(9))
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(sealedKey(9)); ok {
		t.Fatal("renamed artifact served under the wrong key")
	}
	if ps := s.Stats().Persist; ps.Corrupt != 1 {
		t.Fatalf("key mismatch must count as corrupt: %+v", ps)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("mismatched artifact must be deleted")
	}
}

func TestSpillStaleArtifactExpires(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	opts := Options{
		MaxBytes: 1 << 20, TTL: time.Minute,
		Persist: spillOpts(dir),
		Now:     func() time.Time { return now },
	}
	s := New(opts)
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	now = now.Add(2 * time.Minute)

	// Restart past the TTL: the artifact is stale — deleted, counted as
	// Expired, and the store starts cold.
	s2 := New(opts)
	ps := s2.Stats().Persist
	if ps.Preloaded != 0 || ps.Expired != 1 || ps.Corrupt != 0 {
		t.Fatalf("stale preload stats: %+v", ps)
	}
	if len(artifacts(t, dir)) != 0 {
		t.Fatal("stale artifact must be deleted")
	}
	if _, ok := s2.Get(sealedKey(0)); ok {
		t.Fatal("stale artifact served a value")
	}

	// The miss-path probe expires stale artifacts the same way.
	now = time.Unix(1000, 0)
	s3 := New(opts)
	s3.Put(sealedKey(1), fakeValue{id: 1, bytes: 100})
	s3.Delete(sealedKey(1)) // removes RAM copy and artifact
	s3.Put(sealedKey(2), fakeValue{id: 2, bytes: 100})
	now = now.Add(2 * time.Minute)
	if _, ok := s3.Get(sealedKey(2)); ok {
		t.Fatal("stale entry served")
	}
	if ps := s3.Stats().Persist; ps.Expired != 1 {
		t.Fatalf("miss-path expiry stats: %+v", ps)
	}
}

func TestSpillDeleteRemovesArtifact(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	if len(artifacts(t, dir)) != 1 {
		t.Fatal("artifact missing after put")
	}
	s.Delete(sealedKey(0))
	if len(artifacts(t, dir)) != 0 {
		t.Fatal("Delete must remove the artifact — an invalidated value cannot resurrect")
	}
	if _, ok := s.Get(sealedKey(0)); ok {
		t.Fatal("deleted entry resurrected")
	}
}

func TestSpillTempFileSweep(t *testing.T) {
	// Crash-leftover temp files and foreign files: preload removes the
	// former, ignores the latter, and adopts the real artifacts.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	tmp := filepath.Join(dir, "deadbeef"+spillSuffix+".tmp12345")
	if err := os.WriteFile(tmp, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	if ps := s2.Stats().Persist; ps.Preloaded != 1 || ps.Corrupt != 0 {
		t.Fatalf("preload with leftovers: %+v", ps)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("leftover temp file must be swept")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file must be left alone: %v", err)
	}
}

func TestSpillUnknownKindLeftInPlace(t *testing.T) {
	// An artifact of a kind this configuration cannot decode is left on
	// disk (not corrupt — a future configuration may read it) and simply
	// not preloaded.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	s2 := New(Options{MaxBytes: 1 << 20, Persist: &PersistOptions{
		Dir: dir, Codecs: map[Kind]Codec{KindPrefill: fakeCodec{}},
	}})
	ps := s2.Stats().Persist
	if ps.Preloaded != 0 || ps.Corrupt != 0 {
		t.Fatalf("unknown-kind preload: %+v", ps)
	}
	if len(artifacts(t, dir)) != 1 {
		t.Fatal("unknown-kind artifact must be left in place")
	}
}

func TestSpillWriteFailuresCounted(t *testing.T) {
	// Encode failure: counted in Errors, Put still succeeds in RAM.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: &PersistOptions{
		Dir: dir, Codecs: map[Kind]Codec{KindSealed: failCodec{}},
	}})
	if !s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100}) {
		t.Fatal("RAM put must survive an encode failure")
	}
	if ps := s.Stats().Persist; ps.Errors != 1 || ps.Writes != 0 {
		t.Fatalf("encode-failure stats: %+v", ps)
	}
	if _, ok := s.Get(sealedKey(0)); !ok {
		t.Fatal("RAM store must be authoritative")
	}

	// Unwritable directory (a regular file where the dir should be):
	// MkdirAll fails, counted, never surfaced.
	base := t.TempDir()
	blocked := filepath.Join(base, "occupied")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{MaxBytes: 1 << 20, Persist: &PersistOptions{
		Dir: filepath.Join(blocked, "sub"), Codecs: map[Kind]Codec{KindSealed: fakeCodec{}},
	}})
	if !s2.Put(sealedKey(0), fakeValue{id: 0, bytes: 100}) {
		t.Fatal("RAM put must survive an unwritable directory")
	}
	if ps := s2.Stats().Persist; ps.Errors < 1 {
		t.Fatalf("unwritable-dir stats: %+v", ps)
	}
}

func TestSpillShardedWarmRestart(t *testing.T) {
	// Persistence composes with lock sharding: artifacts written by a
	// sharded store preload into a store with a different shard count
	// (the artifact embeds the key, not the shard).
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Shards: 4, Persist: spillOpts(dir)})
	for i := 0; i < 16; i++ {
		s.Put(sealedKey(i), fakeValue{id: i, bytes: 100})
	}
	s2 := New(Options{MaxBytes: 1 << 20, Shards: 2, Persist: spillOpts(dir)})
	if ps := s2.Stats().Persist; ps.Preloaded != 16 {
		t.Fatalf("cross-shard-count preload: %+v", ps)
	}
	for i := 0; i < 16; i++ {
		if v, ok := s2.Get(sealedKey(i)); !ok || v.(fakeValue).id != i {
			t.Fatalf("entry %d lost across shard-count change", i)
		}
	}
}

func TestSpillArtifactFilenames(t *testing.T) {
	// Sealed hashes contain '/'; filenames must stay flat hex + suffix.
	dir := t.TempDir()
	s := New(Options{MaxBytes: 1 << 20, Persist: spillOpts(dir)})
	s.Put(sealedKey(0), fakeValue{id: 0, bytes: 100})
	for _, name := range artifacts(t, dir) {
		if strings.ContainsAny(name, "/\\") || !strings.HasSuffix(name, spillSuffix) {
			t.Fatalf("artifact name %q leaks key structure", name)
		}
		if len(name) != 32+len(spillSuffix) {
			t.Fatalf("artifact name %q is not 16 hex bytes + suffix", name)
		}
	}
}
