package sessioncache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func kindKey(kind Kind, i int) Key {
	return Key{Fingerprint: "fp", Kind: kind, Hash: fmt.Sprintf("%s-%d", kind, i)}
}

// TestKindBudgetsIsolateEviction: a kind with a dedicated sub-budget
// evicts only against itself — pressure on the sealed shard can never
// displace prefill entries, and a sealed value is capped by the sealed
// sub-budget, not the total.
func TestKindBudgetsIsolateEviction(t *testing.T) {
	s := New(Options{MaxBytes: 100, Kinds: map[Kind]KindBudget{
		KindSealed: {MaxBytes: 40},
	}})
	if !s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 50}) {
		t.Fatal("prefill value must fit the 60-byte remainder shard")
	}
	s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 30})
	if !s.Put(kindKey(KindSealed, 1), fakeValue{bytes: 30}) {
		t.Fatal("second sealed value must be admitted (evicting the first)")
	}
	if _, ok := s.Get(kindKey(KindSealed, 0)); ok {
		t.Fatal("sealed shard pressure must evict the sealed LRU")
	}
	if _, ok := s.Get(kindKey(KindPrefill, 0)); !ok {
		t.Fatal("sealed pressure must never evict a prefill entry")
	}
	// A sealed value over the 40-byte sub-budget is refused even though
	// the total budget would hold it.
	if s.Put(kindKey(KindSealed, 2), fakeValue{bytes: 50}) {
		t.Fatal("sealed value exceeding the sealed sub-budget must be refused")
	}
	st := s.Stats()
	sealed, prefill := st.Kinds["sealed"], st.Kinds["prefill"]
	if !sealed.Dedicated || sealed.MaxBytes != 40 || sealed.Entries != 1 || sealed.Bytes != 30 {
		t.Fatalf("sealed kind stats: %+v", sealed)
	}
	if prefill.Dedicated || prefill.MaxBytes != 60 || prefill.Entries != 1 || prefill.Bytes != 50 {
		t.Fatalf("prefill kind stats: %+v", prefill)
	}
	if st.Bytes != 80 || st.MaxBytes != 100 {
		t.Fatalf("totals: %+v", st)
	}
}

// TestKindBudgetsClampDeterministic: sub-budgets summing past MaxBytes
// are clamped in kind-name order, so a misconfiguration degrades
// deterministically instead of by map iteration order.
func TestKindBudgetsClampDeterministic(t *testing.T) {
	s := New(Options{MaxBytes: 100, Kinds: map[Kind]KindBudget{
		KindPrefill: {MaxBytes: 80},
		KindSealed:  {MaxBytes: 80},
	}})
	st := s.Stats()
	// "prefill" < "sealed": prefill keeps its 80, sealed is clamped to
	// the 20 remaining, the shared shard gets 0.
	if st.Kinds["prefill"].MaxBytes != 80 || st.Kinds["sealed"].MaxBytes != 20 {
		t.Fatalf("clamped budgets: %+v", st.Kinds)
	}
	// A dedicated kind outside the serving pair reports its sub-budget
	// from New on — an operator can confirm a split took effect before
	// any entry of that kind arrives.
	other := New(Options{MaxBytes: 100, Kinds: map[Kind]KindBudget{"other": {MaxBytes: 30}}})
	ks, ok := other.Stats().Kinds["other"]
	if !ok || !ks.Dedicated || ks.MaxBytes != 30 || ks.Entries != 0 {
		t.Fatalf("empty dedicated kind must still report its budget: %+v (present=%v)", ks, ok)
	}
	// A kind with no sub-budget lands on the now-empty shared shard and
	// cannot cache anything.
	if s.Put(Key{Fingerprint: "fp", Kind: "other", Hash: "x"}, fakeValue{bytes: 1}) {
		t.Fatal("shared shard with zero budget must refuse sized values")
	}
}

// TestKindAccountingWithoutSplit: per-kind occupancy is tracked (and
// surfaced in Stats.Kinds) even when both kinds share one budget.
func TestKindAccountingWithoutSplit(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 30})
	s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 10})
	s.Put(kindKey(KindSealed, 1), fakeValue{bytes: 10})
	st := s.Stats()
	prefill, sealed := st.Kinds["prefill"], st.Kinds["sealed"]
	if prefill.Entries != 1 || prefill.Bytes != 30 || prefill.Dedicated {
		t.Fatalf("prefill accounting: %+v", prefill)
	}
	if sealed.Entries != 2 || sealed.Bytes != 20 || sealed.Dedicated {
		t.Fatalf("sealed accounting: %+v", sealed)
	}
	// Both kinds report the shared budget as their cap.
	if prefill.MaxBytes != 100 || sealed.MaxBytes != 100 {
		t.Fatalf("shared caps: %+v", st.Kinds)
	}
	if sealed.Admission != nil {
		t.Fatalf("kind-blind policy must not report per-kind admission: %+v", sealed)
	}
	// Accounting follows removals too.
	s.Delete(kindKey(KindSealed, 0))
	if st := s.Stats(); st.Kinds["sealed"].Entries != 1 || st.Kinds["sealed"].Bytes != 10 {
		t.Fatalf("sealed accounting after delete: %+v", st.Kinds["sealed"])
	}
}

// TestPerKindGhostIsolation: with a PolicyPerKind router each kind owns
// a ghost list, so a sealed scan flood cannot push a prefill sighting
// off the bound — under a shared list the same flood would purge it and
// the prefill key would have to start over.
func TestPerKindGhostIsolation(t *testing.T) {
	pol := NewPolicyPerKind([]Kind{KindPrefill, KindSealed},
		func(Kind) Policy { return NewPolicy2Q(4, 0) })
	s := New(Options{MaxBytes: 1000, Policy: pol})
	s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 10}) // prefill sighting
	for i := 0; i < 50; i++ {                            // 50 sealed rejections: would purge a shared 4-entry list
		s.Put(kindKey(KindSealed, i), fakeValue{bytes: 10})
	}
	if !s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 10}) {
		t.Fatal("prefill sighting must survive the sealed flood and admit")
	}
	st := s.Stats()
	pa, sa := st.Kinds["prefill"].Admission, st.Kinds["sealed"].Admission
	if pa == nil || sa == nil {
		t.Fatalf("per-kind admission blocks missing: %+v", st.Kinds)
	}
	if pa.GhostPromotions != 1 || pa.ScanRejections != 1 || pa.GhostEntries != 0 {
		t.Fatalf("prefill admission: %+v", pa)
	}
	if sa.ScanRejections != 50 || sa.GhostEntries != 4 || sa.GhostLimit != 4 {
		t.Fatalf("sealed admission: %+v", sa)
	}
	// The aggregate block sums the kinds (plus the idle fallback).
	if st.Admission.ScanRejections != 51 || st.Admission.GhostEntries != 4 {
		t.Fatalf("aggregate admission: %+v", st.Admission)
	}
}

// TestPerKindAdaptiveWindows: per-kind adaptive controllers keep
// separate decision windows and modes — sealed one-shot churn flips the
// sealed mode only, so builders keep admit-everything semantics.
func TestPerKindAdaptiveWindows(t *testing.T) {
	pol := NewPolicyPerKind([]Kind{KindPrefill, KindSealed},
		func(Kind) Policy { return NewPolicyAdaptive(64, 0, 8) })
	s := New(Options{
		MaxBytes: 200,
		Policy:   pol,
		Kinds:    map[Kind]KindBudget{KindSealed: {MaxBytes: 100}},
	})
	for i := 0; i < 16; i++ { // sealed one-shot churn: 40-byte entries, 2 fit
		s.Put(kindKey(KindSealed, i), fakeValue{bytes: 40})
	}
	st := s.Stats()
	sa, pa := st.Kinds["sealed"].Admission, st.Kinds["prefill"].Admission
	if sa.Mode != ModeConservative || sa.PolicyFlips != 1 {
		t.Fatalf("sealed churn must flip the sealed controller: %+v", sa)
	}
	if pa.Mode != ModePermissive || pa.PolicyFlips != 0 {
		t.Fatalf("seal churn must not flip the prefill mode: %+v", pa)
	}
	if st.Admission.Mode != "mixed" || st.Admission.PolicyFlips != 1 {
		t.Fatalf("aggregate mode: %+v", st.Admission)
	}
	// The builders really do keep permissive semantics: a first-sighting
	// prefill Put is admitted while sealed ones are rejected.
	if !s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 40}) {
		t.Fatal("prefill first sighting must still be admitted")
	}
	if s.Put(kindKey(KindSealed, 99), fakeValue{bytes: 40}) {
		t.Fatal("sealed first sighting must be rejected after the flip")
	}
	// Once prefill churns too and both controllers agree, the aggregate
	// mode must read the shared label — the idle fallback inner (which
	// serves no kind here and can never flip) must not drag agreeing
	// controllers to "mixed".
	for i := 100; i < 120; i++ {
		s.Put(kindKey(KindPrefill, i), fakeValue{bytes: 40})
	}
	st = s.Stats()
	if st.Kinds["prefill"].Admission.Mode != ModeConservative {
		t.Fatalf("prefill churn must flip the prefill controller: %+v", st.Kinds["prefill"].Admission)
	}
	if st.Admission.Mode != ModeConservative {
		t.Fatalf("agreeing controllers must surface their shared mode, not %q", st.Admission.Mode)
	}
}

// TestPerKindProbationPools: under per-kind A1 every kind trials first
// sightings against its own probation carve-out — sealed washouts churn
// the sealed pool without touching prefill trials, and each shard's cap
// comes from its KindBudget.ProbationPct.
func TestPerKindProbationPools(t *testing.T) {
	pol := NewPolicyPerKind([]Kind{KindPrefill, KindSealed},
		func(Kind) Policy { return NewPolicyA1(16, 0, 10) })
	s := New(Options{
		MaxBytes: 200,
		Policy:   pol,
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 100, ProbationPct: 20}, // 20-byte trial pool
			KindPrefill: {MaxBytes: 100, ProbationPct: 40}, // 40-byte trial pool
		},
	})
	st := s.Stats()
	if st.Kinds["sealed"].ProbationCapBytes != 20 || st.Kinds["prefill"].ProbationCapBytes != 40 {
		t.Fatalf("per-kind probation caps: %+v", st.Kinds)
	}
	if !s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 30}) {
		t.Fatal("30-byte prefill trial must fit the 40-byte prefill pool")
	}
	if s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 30}) {
		t.Fatal("30-byte sealed value must be ghost-only against the 20-byte sealed pool")
	}
	s.Put(kindKey(KindSealed, 1), fakeValue{bytes: 15})
	s.Put(kindKey(KindSealed, 2), fakeValue{bytes: 15}) // washes sealed-1 out of the sealed pool
	st = s.Stats()
	if st.Kinds["prefill"].ProbationEntries != 1 || st.Kinds["prefill"].ProbationBytes != 30 {
		t.Fatalf("sealed churn touched the prefill trial pool: %+v", st.Kinds["prefill"])
	}
	if st.Kinds["sealed"].ProbationEntries != 1 ||
		st.Kinds["sealed"].Admission.ScanRejections != 2 { // oversize ghost + washout
		t.Fatalf("sealed trial pool bookkeeping: %+v", st.Kinds["sealed"])
	}
	if _, ok := s.Get(kindKey(KindPrefill, 0)); !ok {
		t.Fatal("prefill trial entry lost")
	}
	if st := s.Stats(); st.Kinds["prefill"].Admission.SegmentPromotions != 0 {
		// SegmentPromotions is store-counted and not per-kind; the
		// per-kind block carries the policy counters only.
		t.Fatalf("per-kind segment promotions should stay zero: %+v", st.Kinds["prefill"].Admission)
	}
}

// TestPerKindConcurrent hammers a per-kind store (split budgets, routed
// a1 policies, TTL) from many goroutines; run under -race this is the
// kind-aware store's thread-safety proof.
func TestPerKindConcurrent(t *testing.T) {
	pol := NewPolicyPerKind([]Kind{KindPrefill, KindSealed},
		func(Kind) Policy { return NewPolicyA1(64, time.Minute, 64) })
	s := New(Options{
		MaxBytes: 2 << 10,
		TTL:      time.Minute,
		Policy:   pol,
		Kinds:    map[Kind]KindBudget{KindSealed: {MaxBytes: 1 << 10, ProbationPct: 25}},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kind := KindPrefill
			if g%2 == 0 {
				kind = KindSealed
			}
			for i := 0; i < 300; i++ {
				k := kindKey(kind, (g+i)%24)
				if _, ok := s.Get(k); !ok {
					s.Put(k, fakeValue{bytes: 64})
				}
				if i%100 == 0 {
					s.Stats()
					s.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Bytes > 2<<10 {
		t.Fatalf("budget exceeded: %d", st.Bytes)
	}
	if st.Kinds["sealed"].Bytes > 1<<10 || st.Kinds["prefill"].Bytes > 1<<10 {
		t.Fatalf("a sub-budget was exceeded: %+v", st.Kinds)
	}
}
