package sessioncache

import (
	"time"

	"repro/internal/metrics"
)

// DefaultAdaptWindow is PolicyAdaptive's evaluation window (in admission
// decisions) when the configured window is <= 0.
const DefaultAdaptWindow = 64

// Adaptive mode labels surfaced in AdmissionStats.Mode.
const (
	// ModePermissive is admit-everything (PolicyLRU semantics).
	ModePermissive = "permissive"
	// ModeConservative is ghost-only second-sighting admission
	// (Policy2Q semantics).
	ModeConservative = "conservative"
)

// PolicyAdaptive is a runtime controller over admission: it flips between
// admit-everything (PolicyLRU semantics, optimal when everything inserted
// gets reused) and ghost-only second-sighting admission (Policy2Q
// semantics, optimal under one-shot scan floods) by watching the
// workload itself, so the operator never has to guess a static policy.
//
// Mechanism: every Put of a non-resident key is one admission decision.
// Decisions are counted into tumbling windows of `window` decisions; at
// each window boundary the controller evaluates the window's evidence
// and flips at most once:
//
//   - In permissive mode the tell for scan pressure is churn of
//     never-re-referenced entries: when at least half of the window's
//     decisions were matched by one-shot removals (entries evicted — or
//     TTL-expired — with hit=false), admit-everything is demonstrably
//     spending admissions on keys that never come back, and the
//     controller flips to conservative. While the budget has slack and
//     entries outlive the TTL (no evictions, no expiries), admit-all is
//     harmless and no flip happens. Expiry churn counts on purpose:
//     a one-shot key that idles out pays the same wasted admission as
//     one that was evicted, and a key that truly never returns never
//     pays the conservative mode's second-sighting tax either.
//   - In conservative mode the tell for reuse-dominated traffic is the
//     rejected keys coming back: when the window's ghost promotions plus
//     probation hits (misses that a warmer policy would have served)
//     exceed its scan rejections, second-sighting admission is mostly
//     taxing keys that deserve residency, and the controller flips to
//     permissive.
//
// Hysteresis comes from three properties: a flip requires a full window
// of decisions (steady all-hit traffic produces no decisions and never
// flips), the two directions trigger on different signals with
// strictly-crossing thresholds, and counters reset at every boundary so
// one burst cannot echo across windows.
//
// The ghost list is shared across modes and persists through flips:
// permissive-mode eviction victims are ghosted too, so right after a
// flip to conservative the recently flushed warm keys readmit on a
// single sighting instead of starting probation from scratch.
//
// Like every Policy, an adaptive policy is driven under the store's
// mutex and must not be shared between stores.
type PolicyAdaptive struct {
	inner  *Policy2Q // conservative machinery; ghost list persists across flips
	window int

	permissive bool
	flips      metrics.Counter

	// Tumbling-window state, reset at each boundary. The winRej* fields
	// snapshot the inner policy's reject-origin counters at the window
	// start, so each evaluation sees only its own window's tax.
	decisions        int
	oneShotEvicts    int
	winRejections    int64
	winRejPromotions int64
	winRejProbHits   int64
}

// NewPolicyAdaptive builds the adaptive controller. ghostEntries and
// window parameterize the conservative mode's ghost list exactly as in
// NewPolicy2Q; adaptWindow is the evaluation window in admission
// decisions (<= 0 selects DefaultAdaptWindow). The controller starts
// permissive — the historical default behavior — and earns its way to
// conservative on evidence of scan pressure.
func NewPolicyAdaptive(ghostEntries int, window time.Duration, adaptWindow int) *PolicyAdaptive {
	if adaptWindow <= 0 {
		adaptWindow = DefaultAdaptWindow
	}
	return &PolicyAdaptive{
		inner:      NewPolicy2Q(ghostEntries, window),
		window:     adaptWindow,
		permissive: true,
	}
}

// Name returns "adaptive".
func (p *PolicyAdaptive) Name() string { return "adaptive" }

// Mode returns the current mode label (ModePermissive or
// ModeConservative).
func (p *PolicyAdaptive) Mode() string {
	if p.permissive {
		return ModePermissive
	}
	return ModeConservative
}

// Admit counts one decision and answers per the current mode: permissive
// admits outright, conservative delegates to the 2Q machinery. Window
// boundaries are evaluated here, after the decision.
func (p *PolicyAdaptive) Admit(k Key, bytes int64, now time.Time) (Segment, bool) {
	seg, ok := SegmentProtected, true
	if !p.permissive {
		seg, ok = p.inner.Admit(k, bytes, now)
	}
	p.decisions++
	if p.decisions >= p.window {
		p.evaluate()
	}
	return seg, ok
}

// evaluate closes the current window, flipping the mode if the window's
// evidence crossed the threshold for the current direction.
func (p *PolicyAdaptive) evaluate() {
	if p.permissive {
		// Scan pressure: at least half the window's admissions were paid
		// for by evicting entries that were never re-referenced.
		if 2*p.oneShotEvicts >= p.window {
			p.permissive = false
			p.flips.Inc()
		}
	} else {
		promotions := p.inner.rejPromotions.Load() - p.winRejPromotions
		probHits := p.inner.rejProbHits.Load() - p.winRejProbHits
		rejections := p.inner.rejections.Load() - p.winRejections
		// Reuse-dominated: the keys we reject mostly come back — only
		// reject-origin promotions and probation hits count, so byte
		// pressure recycling warm keys through the ghost list cannot
		// masquerade as admission pain. This direction needs a 1.5x
		// margin (pure reuse onboarding scores 2:1, scans 0:1), because
		// the cost asymmetry favors staying conservative: the 2Q tax is
		// one extra cold run per reused key, while admit-everything
		// under a scan flood loses the whole warm set — so mixed
		// traffic must not ping-pong the mode.
		if 2*(promotions+probHits) > 3*rejections {
			p.permissive = true
			p.flips.Inc()
		}
	}
	p.decisions = 0
	p.oneShotEvicts = 0
	p.winRejections = p.inner.rejections.Load()
	p.winRejPromotions = p.inner.rejPromotions.Load()
	p.winRejProbHits = p.inner.rejProbHits.Load()
}

// OnHit keeps the entry where it is (adaptive never uses the probation
// segment, so there is nothing to promote).
func (p *PolicyAdaptive) OnHit(k Key, seg Segment, now time.Time) Segment {
	return p.inner.OnHit(k, seg, now)
}

// OnMiss feeds the 2Q machinery in both modes, so probation hits (misses
// on ghosted keys) keep accruing as a signal even while permissive.
func (p *PolicyAdaptive) OnMiss(k Key, now time.Time) { p.inner.OnMiss(k, now) }

// OnEvict records the one-shot signal and re-ghosts the victim in both
// modes, so a flip to conservative readmits just-flushed warm keys on a
// single sighting.
func (p *PolicyAdaptive) OnEvict(k Key, seg Segment, hit bool, now time.Time) {
	if !hit {
		p.oneShotEvicts++
	}
	p.inner.OnEvict(k, seg, hit, now)
}

// OnExpire treats TTL expiry exactly like an eviction: an admitted
// entry that idles out without ever being re-referenced is the same
// evidence of a wasted admission as a one-shot eviction, so the flip
// decision is identical whether churn arrives via byte pressure or via
// the TTL (TTL-heavy traffic cannot hide scan pain from the window).
func (p *PolicyAdaptive) OnExpire(k Key, seg Segment, hit bool, now time.Time) {
	if !hit {
		p.oneShotEvicts++
	}
	p.inner.OnExpire(k, seg, hit, now)
}

// ProbationCap reports 0 for every shard: the adaptive policy's
// conservative mode is ghost-only.
func (p *PolicyAdaptive) ProbationCap(Kind, int64, int64) int64 { return 0 }

// Stats snapshots the shared 2Q counters under the "adaptive" label,
// plus the current mode and the flip counter.
func (p *PolicyAdaptive) Stats() AdmissionStats {
	st := p.inner.Stats()
	st.Policy = "adaptive"
	st.Mode = p.Mode()
	st.PolicyFlips = p.flips.Load()
	return st
}
