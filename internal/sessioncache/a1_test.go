package sessioncache

import (
	"testing"
	"time"
)

// TestPolicyA1ProbationAdmission: unlike ghost-only 2Q, a first sighting
// is resident immediately (in the probation segment) and a re-reference
// promotes it to the protected segment.
func TestPolicyA1ProbationAdmission(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("a1 must admit a first sighting into probation")
	}
	st := s.Stats()
	if st.Admission.Policy != "a1" || st.Admission.ProbationEntries != 1 ||
		st.Admission.ProbationBytes != 10 || st.Admission.ProbationCapBytes != 20 ||
		st.Admission.ProtectedEntries != 0 || st.Admission.ScanRejections != 0 {
		t.Fatalf("post-insert admission stats: %+v", st.Admission)
	}
	if _, ok := s.Get(key(0)); !ok { // burst hit from probation + promotion
		t.Fatal("probation resident must be hittable")
	}
	st = s.Stats()
	if st.Admission.ProbationEntries != 0 || st.Admission.ProtectedEntries != 1 ||
		st.Admission.ProtectedBytes != 10 || st.Admission.SegmentPromotions != 1 ||
		st.Admission.ProbationHits != 1 {
		t.Fatalf("post-promotion admission stats: %+v", st.Admission)
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("promoted entry must stay resident")
	}
	if st := s.Stats(); st.Admission.SegmentPromotions != 1 {
		t.Fatalf("a protected hit must not re-promote: %+v", st.Admission)
	}
}

// TestPolicyA1WashoutFeedsGhost: probation evictions of never-hit
// entries count as scan rejections and land on the ghost list, from
// where one sighting readmits straight to protected.
func TestPolicyA1WashoutFeedsGhost(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	s.Put(key(0), fakeValue{bytes: 15})
	s.Put(key(1), fakeValue{bytes: 15}) // probation cap 20: washes key 0 out
	st := s.Stats()
	if st.Admission.ProbationEntries != 1 || st.Admission.ScanRejections != 1 ||
		st.Admission.GhostEntries != 1 {
		t.Fatalf("washout bookkeeping: %+v", st.Admission)
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("washed-out entry must be gone")
	}
	if !s.Put(key(0), fakeValue{bytes: 15}) {
		t.Fatal("ghosted washout must readmit on one sighting")
	}
	st = s.Stats()
	if st.Admission.GhostPromotions != 1 || st.Admission.ProtectedEntries != 1 {
		t.Fatalf("ghost promotion must go straight to protected: %+v", st.Admission)
	}
}

// TestPolicyA1OversizeForProbation: a value too big for the probation
// cap cannot be trialled byte-wise, so it falls back to ghost-only
// second-sighting admission.
func TestPolicyA1OversizeForProbation(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	if s.Put(key(0), fakeValue{bytes: 50}) {
		t.Fatal("oversize-for-probation first sighting must be declined")
	}
	if st := s.Stats(); st.Admission.ScanRejections != 1 || st.Admission.GhostEntries != 1 {
		t.Fatalf("oversize sighting must be ghosted: %+v", st.Admission)
	}
	if !s.Put(key(0), fakeValue{bytes: 50}) {
		t.Fatal("second sighting must admit to protected")
	}
	if st := s.Stats(); st.Admission.ProtectedEntries != 1 || st.Admission.ProbationEntries != 0 {
		t.Fatalf("oversize value must land in protected: %+v", st.Admission)
	}
}

// TestPolicyA1ScanResistance: a one-shot flood churns only the probation
// segment; promoted warm entries are untouchable, exactly as under
// ghost-only 2Q — but unlike 2Q, any scan key repeated within a burst
// hits (from probation).
func TestPolicyA1ScanResistance(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(64, 0, 20)})
	s.Put(key(0), fakeValue{bytes: 15})
	if _, ok := s.Get(key(0)); !ok { // promote the warm key
		t.Fatal("warm key must be resident")
	}
	for i := 1; i <= 100; i++ {
		if !s.Put(key(i), fakeValue{bytes: 10}) {
			t.Fatalf("scan key %d must be trialled in probation", i)
		}
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("scan flood must not displace the protected entry")
	}
	st := s.Stats()
	if st.Admission.ProbationBytes > 20 || st.Bytes > 100 {
		t.Fatalf("probation overflowed its cap: %+v", st)
	}
	// A scan key re-seen while still on probation hits without any
	// promotion dance having been prepaid.
	if _, ok := s.Get(key(100)); !ok {
		t.Fatal("recent scan key must hit from probation")
	}
}

// TestPolicyA1ProtectedCarveOut: the probation cap is carved out of
// MaxBytes, so protected residency is bounded by MaxBytes - probation
// cap and a value exceeding that is not stored even on its second
// sighting.
func TestPolicyA1ProtectedCarveOut(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	// 90 bytes fits no segment (protected budget is 80): rejected before
	// the policy ever records a sighting, so no ghost, no counters, and
	// no ghost promotion is ever consumed for an unstorable value.
	for i := 0; i < 2; i++ {
		if s.Put(key(0), fakeValue{bytes: 90}) {
			t.Fatal("value exceeding the protected budget (80) must be refused")
		}
	}
	if s.Len() != 0 {
		t.Fatalf("refused value must not be resident: %d entries", s.Len())
	}
	if st := s.Stats(); st.Admission.GhostEntries != 0 || st.Admission.ScanRejections != 0 ||
		st.Admission.GhostPromotions != 0 {
		t.Fatalf("unstorable value moved admission state: %+v", st.Admission)
	}
	// Protected evictions at the carved-out budget, not at MaxBytes: two
	// second-sighting 40-byte entries fit (80), a third evicts the LRU
	// one. (40 > the 20-byte probation cap, so admission is ghost-only.)
	for i := 1; i <= 3; i++ {
		s.Put(key(i), fakeValue{bytes: 40})
		s.Put(key(i), fakeValue{bytes: 40})
	}
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("protected LRU must have been evicted at the 80-byte carve-out")
	}
	st := s.Stats()
	if st.Admission.ProtectedBytes != 80 || st.Evictions == 0 {
		t.Fatalf("carve-out accounting: %+v", st)
	}
}

// TestPolicyA1SightingWindow: the ghost window applies in A1 mode too —
// a stale ghost restarts probation instead of promoting.
func TestPolicyA1SightingWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 100, TTL: time.Minute,
		Policy: NewPolicyA1(16, time.Minute, 20),
		Now:    func() time.Time { return now },
	})
	s.Put(key(0), fakeValue{bytes: 50}) // oversize for probation: ghosted
	now = now.Add(2 * time.Minute)
	if s.Put(key(0), fakeValue{bytes: 50}) {
		t.Fatal("stale sighting must not admit")
	}
	now = now.Add(30 * time.Second)
	if !s.Put(key(0), fakeValue{bytes: 50}) {
		t.Fatal("fresh second sighting must admit")
	}
}

// TestProbationCapClamped: a probation cap above half the budget is
// clamped to exactly half, so the protected segment always dominates
// and anything that fits probation also fits protected (the store's
// reject-before-Admit check relies on that invariant).
func TestProbationCapClamped(t *testing.T) {
	for _, configured := range []int64{60, 500} {
		s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, configured)})
		if st := s.Stats(); st.Admission.ProbationCapBytes != 50 {
			t.Fatalf("cap %d: probation cap must clamp to MaxBytes/2: %+v",
				configured, st.Admission)
		}
		// A value that fits the clamped cap really is trialled.
		if !s.Put(key(0), fakeValue{bytes: 45}) {
			t.Fatalf("cap %d: value fitting the clamped cap must be trialled", configured)
		}
		if st := s.Stats(); st.Admission.ProbationEntries != 1 {
			t.Fatalf("cap %d: trial entry missing: %+v", configured, st.Admission)
		}
	}
}

// TestReplaceOversizeLeavesPolicyUntouched: a replacement rejected for
// size must not move any policy counter — OnHit runs only once storage
// is assured.
func TestReplaceOversizeLeavesPolicyUntouched(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	s.Put(key(0), fakeValue{id: 1, bytes: 10}) // probation
	if s.Put(key(0), fakeValue{id: 2, bytes: 90}) {
		t.Fatal("oversize replacement must be refused")
	}
	st := s.Stats()
	if st.Admission.ProbationHits != 0 || st.Admission.SegmentPromotions != 0 ||
		st.Admission.ProbationEntries != 1 {
		t.Fatalf("refused replacement moved policy state: %+v", st.Admission)
	}
	if v, ok := s.Get(key(0)); !ok || v.(fakeValue).id != 1 {
		t.Fatalf("probation resident lost: %v %v", v, ok)
	}
}

// TestPolicyA1ReplacePromotes: re-Putting a probation resident (the
// benign last-Put-wins race) is a re-reference — the replacement lands
// in the protected segment and the promotion is counted.
func TestPolicyA1ReplacePromotes(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	s.Put(key(0), fakeValue{id: 1, bytes: 10}) // probation
	if !s.Put(key(0), fakeValue{id: 2, bytes: 12}) {
		t.Fatal("replacing a probation resident must be admitted")
	}
	st := s.Stats()
	if st.Admission.SegmentPromotions != 1 || st.Admission.ProtectedEntries != 1 ||
		st.Admission.ProbationEntries != 0 || st.Admission.ProtectedBytes != 12 {
		t.Fatalf("replace-promotion bookkeeping: %+v", st.Admission)
	}
	if v, ok := s.Get(key(0)); !ok || v.(fakeValue).id != 2 {
		t.Fatalf("replacement value lost: %v %v", v, ok)
	}
}

// TestReplaceOversizeKeepsResident: a replacement that no longer fits
// its target segment is refused and the resident entry survives — Put
// must never destroy state it cannot replace.
func TestReplaceOversizeKeepsResident(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicyA1(16, 0, 20)})
	s.Put(key(0), fakeValue{id: 1, bytes: 40}) // ghost-only path (40 > probation cap)
	s.Put(key(0), fakeValue{id: 1, bytes: 40}) // second sighting: protected
	if s.Put(key(0), fakeValue{id: 2, bytes: 90}) {
		t.Fatal("oversize replacement must be refused")
	}
	v, ok := s.Get(key(0))
	if !ok || v.(fakeValue).id != 1 || v.(fakeValue).bytes != 40 {
		t.Fatalf("resident entry destroyed by refused replacement: %v %v", v, ok)
	}
	if st := s.Stats(); st.Bytes != 40 || st.Entries != 1 {
		t.Fatalf("accounting after refused replacement: %+v", st)
	}
}
