package sessioncache

import (
	"fmt"
	"testing"
	"time"
)

// adaptiveStore is the shared fixture: a small budget so evictions start
// quickly, and a short window so flips are observable in a few Puts.
func adaptiveStore(window int) *Store {
	return New(Options{MaxBytes: 100, Policy: NewPolicyAdaptive(64, 0, window)})
}

// scanFlood Puts n distinct one-shot keys (40 bytes each — 2 fit the
// budget, so steady eviction churn) starting at id.
func scanFlood(s *Store, id, n int) {
	for i := 0; i < n; i++ {
		s.Put(key(id+i), fakeValue{bytes: 40})
	}
}

// TestAdaptiveStartsPermissive: the controller begins with the
// historical admit-everything semantics and says so in its stats.
func TestAdaptiveStartsPermissive(t *testing.T) {
	s := adaptiveStore(8)
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("permissive mode must admit a first sighting")
	}
	st := s.Stats()
	if st.Admission.Policy != "adaptive" || st.Admission.Mode != ModePermissive ||
		st.Admission.PolicyFlips != 0 {
		t.Fatalf("initial admission stats: %+v", st.Admission)
	}
}

// TestAdaptiveFlipsToConservativeUnderScan: one-shot eviction churn over
// a full window flips the controller, after which first sightings are
// rejected to the ghost list.
func TestAdaptiveFlipsToConservativeUnderScan(t *testing.T) {
	s := adaptiveStore(8)
	scanFlood(s, 0, 16) // 16 decisions, ~14 one-shot evictions
	st := s.Stats()
	if st.Admission.Mode != ModeConservative || st.Admission.PolicyFlips != 1 {
		t.Fatalf("scan flood must flip to conservative: %+v", st.Admission)
	}
	if s.Put(key(1000), fakeValue{bytes: 40}) {
		t.Fatal("conservative mode must reject a first sighting")
	}
	if st := s.Stats(); st.Admission.ScanRejections == 0 {
		t.Fatalf("conservative rejections must be counted: %+v", st.Admission)
	}
}

// TestAdaptiveFlipsBackOnReuse: once the rejected keys start coming back
// (miss, re-Put — the serving layer's natural Get-then-Put pattern), the
// promotions-plus-probation-hits signal outweighs the rejections and the
// controller returns to admit-everything.
func TestAdaptiveFlipsBackOnReuse(t *testing.T) {
	s := adaptiveStore(8)
	scanFlood(s, 0, 16)
	if st := s.Stats(); st.Admission.Mode != ModeConservative {
		t.Fatalf("precondition: %+v", st.Admission)
	}
	// Reuse-dominated epoch: distinct small keys, each seen twice with a
	// Get miss in between. Per key: 1 rejection, 1 probation hit, 1 ghost
	// promotion -> promotions+hits strictly beat rejections each window.
	for i := 0; i < 8; i++ {
		k := key(2000 + i)
		s.Put(k, fakeValue{bytes: 4})
		s.Get(k) // miss on the ghosted key: a probation hit
		s.Put(k, fakeValue{bytes: 4})
	}
	st := s.Stats()
	if st.Admission.Mode != ModePermissive || st.Admission.PolicyFlips != 2 {
		t.Fatalf("reuse traffic must flip back to permissive: %+v", st.Admission)
	}
	if !s.Put(key(3000), fakeValue{bytes: 4}) {
		t.Fatal("permissive mode must admit a first sighting again")
	}
}

// TestAdaptiveGhostPersistsAcrossFlip: keys flushed while permissive are
// ghosted on eviction, so right after the flip to conservative they
// readmit on a single sighting instead of paying probation again.
func TestAdaptiveGhostPersistsAcrossFlip(t *testing.T) {
	s := adaptiveStore(8)
	s.Put(key(9000), fakeValue{bytes: 40}) // warm key, admitted permissively
	scanFlood(s, 0, 16)                    // evicts it (ghosting it) and flips the mode
	if st := s.Stats(); st.Admission.Mode != ModeConservative {
		t.Fatalf("precondition: %+v", st.Admission)
	}
	if !s.Put(key(9000), fakeValue{bytes: 40}) {
		t.Fatal("a permissively-evicted key must readmit on one sighting")
	}
	if st := s.Stats(); st.Admission.GhostPromotions == 0 {
		t.Fatalf("readmission must come from the ghost list: %+v", st.Admission)
	}
}

// TestAdaptiveHysteresis: evidence short of a full window never flips —
// neither a sub-window scan burst nor (with no admissions at all) any
// amount of hit traffic.
func TestAdaptiveHysteresis(t *testing.T) {
	s := adaptiveStore(64)
	scanFlood(s, 0, 63) // one decision short of the window
	if st := s.Stats(); st.Admission.Mode != ModePermissive || st.Admission.PolicyFlips != 0 {
		t.Fatalf("sub-window burst must not flip: %+v", st.Admission)
	}
	// Steady all-hit traffic produces no admission decisions: the 64th
	// decision is what closes the window, not time or hit volume.
	for i := 0; i < 1000; i++ {
		s.Get(key(62)) // resident: the most recent scan key
	}
	if st := s.Stats(); st.Admission.PolicyFlips != 0 {
		t.Fatalf("hit traffic must not advance the window: %+v", st.Admission)
	}
	s.Put(key(5000), fakeValue{bytes: 40}) // 64th decision: now it flips
	if st := s.Stats(); st.Admission.Mode != ModeConservative || st.Admission.PolicyFlips != 1 {
		t.Fatalf("full window must flip: %+v", st.Admission)
	}
}

// TestAdaptiveConcurrent hammers an adaptive store from many goroutines;
// run under -race this proves the controller inherits the store's
// locking on the serving hot path.
func TestAdaptiveConcurrent(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 10, TTL: time.Minute, Policy: NewPolicyAdaptive(64, time.Minute, 16)})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 300; i++ {
				k := Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprintf("c-%d", (g+i)%24)}
				if _, ok := s.Get(k); !ok {
					s.Put(k, fakeValue{bytes: 64})
				}
				if i%100 == 0 {
					s.Stats()
					s.Sweep()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Bytes() > 1<<10 {
		t.Fatalf("budget exceeded: %d", s.Bytes())
	}
}
