package sessioncache

// shard_test.go covers the lock-sharded store: shard-count rounding,
// deterministic budget splitting, per-shard policy instances, aggregate
// vs per-shard stats consistency, cross-shard byte-accounting
// invariants, and a -race hammer mixing every public method across
// shards.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-4, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		s := New(Options{MaxBytes: 1 << 20, Shards: tc.in})
		if got := s.Shards(); got != tc.want {
			t.Errorf("Shards:%d -> %d lock-shards, want %d", tc.in, got, tc.want)
		}
	}
	if d := DefaultShards(); d < 1 || d&(d-1) != 0 {
		t.Fatalf("DefaultShards() = %d, want a power of two >= 1", d)
	}
}

func TestShardSliceDeterministic(t *testing.T) {
	// The remainder goes to shard 0, the rest split evenly, and the
	// slices always sum back to the total.
	for _, total := range []int64{0, 1, 7, 100, 1000003} {
		for _, n := range []int{1, 2, 4, 8} {
			var sum int64
			for i := 0; i < n; i++ {
				sum += shardSlice(total, n, i)
			}
			if sum != total {
				t.Fatalf("shardSlice(%d, %d, ·) sums to %d", total, n, sum)
			}
			if n > 1 && shardSlice(total, n, 1) != total/int64(n) {
				t.Fatalf("shardSlice(%d, %d, 1) = %d, want %d", total, n, shardSlice(total, n, 1), total/int64(n))
			}
		}
	}
	// The per-shard MaxBytes surfaced in Stats must be exactly those
	// slices — 1003 over 4 shards: 251, 250, 250, 250.
	s := New(Options{MaxBytes: 1003, Shards: 4})
	st := s.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("want 4 shard blocks, have %d", len(st.Shards))
	}
	var sum int64
	for i, sh := range st.Shards {
		want := int64(250)
		if i == 0 {
			want = 253
		}
		if sh.MaxBytes != want {
			t.Errorf("shard %d MaxBytes = %d, want %d", i, sh.MaxBytes, want)
		}
		sum += sh.MaxBytes
	}
	if sum != st.MaxBytes || st.MaxBytes != 1003 {
		t.Fatalf("shard budgets sum to %d, aggregate MaxBytes %d, want 1003", sum, st.MaxBytes)
	}
}

func TestSharedPolicyPanicsOverShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on Options.Policy with Shards > 1 (a policy instance cannot back two lock-shards)")
		}
	}()
	New(Options{MaxBytes: 1 << 20, Shards: 2, Policy: NewPolicy2Q(16, time.Minute)})
}

func TestNewPolicyPerShard(t *testing.T) {
	// The factory runs once per lock-shard, so every shard has its own
	// admission state.
	var made int32
	s := New(Options{MaxBytes: 1 << 20, Shards: 4, NewPolicy: func() Policy {
		atomic.AddInt32(&made, 1)
		return NewPolicy2Q(16, 0)
	}})
	if made != 4 {
		t.Fatalf("NewPolicy ran %d times, want once per lock-shard (4)", made)
	}
	// 2Q declines first sightings on every shard.
	for i := 0; i < 32; i++ {
		if s.Put(key(i), fakeValue{bytes: 8}) {
			t.Fatalf("2Q admitted first sighting of key %d", i)
		}
	}
	for i := 0; i < 32; i++ {
		if !s.Put(key(i), fakeValue{bytes: 8}) {
			t.Fatalf("2Q declined second sighting of key %d", i)
		}
	}
	// A nil factory return selects LRU for that shard.
	s = New(Options{MaxBytes: 1 << 20, Shards: 2, NewPolicy: func() Policy { return nil }})
	if !s.Put(key(0), fakeValue{bytes: 8}) {
		t.Fatal("nil NewPolicy return must mean PolicyLRU (admit everything)")
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 20, Shards: 4})
	const n = 64
	for i := 0; i < n; i++ {
		s.Put(key(i), fakeValue{id: i, bytes: 100})
	}
	for i := 0; i < n; i++ {
		s.Get(key(i))
	}
	s.Get(Key{Fingerprint: "fp", Kind: KindPrefill, Hash: "absent"})
	st := s.Stats()
	if st.Insertions != n || st.Hits != n || st.Misses != 1 || st.Entries != n || st.Bytes != n*100 {
		t.Fatalf("aggregate counters: %+v", st)
	}
	// The per-shard blocks must decompose the aggregate exactly, and the
	// FNV hash must actually spread 64 keys past a single shard.
	var agg ShardStats
	occupied := 0
	for _, sh := range st.Shards {
		agg.Entries += sh.Entries
		agg.Bytes += sh.Bytes
		agg.Hits += sh.Hits
		agg.Misses += sh.Misses
		agg.Evictions += sh.Evictions
		agg.Expirations += sh.Expirations
		agg.Insertions += sh.Insertions
		if sh.Entries > 0 {
			occupied++
		}
	}
	if agg.Entries != st.Entries || agg.Bytes != st.Bytes || agg.Hits != st.Hits ||
		agg.Misses != st.Misses || agg.Insertions != st.Insertions {
		t.Fatalf("per-shard blocks do not sum to the aggregate: %+v vs %+v", agg, st)
	}
	if occupied < 2 {
		t.Fatalf("64 keys landed on %d of 4 shards — hash is not spreading", occupied)
	}
	// Per-kind occupancy aggregates across shards too.
	if ks := st.Kinds[string(KindPrefill)]; ks.Entries != n || ks.Bytes != n*100 {
		t.Fatalf("prefill kind block: %+v", ks)
	}
}

func TestShardedAdmissionModeMerge(t *testing.T) {
	// Same-mode shards keep the mode; the label survives aggregation.
	s := New(Options{MaxBytes: 1 << 20, Shards: 2, NewPolicy: func() Policy {
		return NewPolicyAdaptive(16, time.Minute, 8)
	}})
	st := s.Stats()
	if st.Admission.Policy != "adaptive" || st.Admission.Mode != "permissive" {
		t.Fatalf("merged admission block: %+v", st.Admission)
	}
}

func TestShardedKindBudgetSplit(t *testing.T) {
	// A dedicated sealed sub-budget splits across lock-shards like the
	// total, and eviction pressure respects each shard's slice.
	s := New(Options{
		MaxBytes: 4000, Shards: 4,
		Kinds: map[Kind]KindBudget{KindSealed: {MaxBytes: 1000}},
	})
	st := s.Stats()
	if ks := st.Kinds[string(KindSealed)]; !ks.Dedicated || ks.MaxBytes != 1000 {
		t.Fatalf("sealed sub-budget must sum back to 1000 over shards: %+v", ks)
	}
	// Overfill sealed: every shard's sealed slice is 250, so pressure
	// evicts within sealed and never touches prefill entries.
	for i := 0; i < 8; i++ {
		s.Put(Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprint(i)}, fakeValue{bytes: 200})
	}
	prefill := s.Stats().Kinds[string(KindPrefill)]
	for i := 0; i < 64; i++ {
		s.Put(Key{Fingerprint: "fp", Kind: KindSealed, Hash: fmt.Sprint(i)}, fakeValue{bytes: 100})
	}
	st = s.Stats()
	if got := st.Kinds[string(KindPrefill)]; got.Entries != prefill.Entries || got.Bytes != prefill.Bytes {
		t.Fatalf("sealed pressure evicted prefill entries: %+v -> %+v", prefill, got)
	}
	for i, sh := range st.Shards {
		if sh.Bytes > sh.MaxBytes {
			t.Fatalf("shard %d over its budget slice: %d > %d", i, sh.Bytes, sh.MaxBytes)
		}
	}
	if ks := st.Kinds[string(KindSealed)]; ks.Bytes > ks.MaxBytes {
		t.Fatalf("sealed occupancy exceeds its sub-budget: %+v", ks)
	}
}

// TestShardHammer mixes every public method concurrently across shards;
// run under -race this is the lock-discipline proof for the sharded
// store, and the invariant checks at the end are the cross-shard byte
// accounting proof.
func TestShardHammer(t *testing.T) {
	var clock atomic.Int64 // nanos; injected so TTL expiry joins the mix
	clock.Store(time.Unix(1000, 0).UnixNano())
	s := New(Options{
		MaxBytes: 1 << 16, Shards: 8, TTL: time.Minute,
		Kinds:     map[Kind]KindBudget{KindSealed: {MaxBytes: 1 << 14}},
		NewPolicy: func() Policy { return NewPolicyA1(64, time.Minute, 20) },
		Now:       func() time.Time { return time.Unix(0, clock.Load()) },
	})
	kinds := []Kind{KindPrefill, KindSealed}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := Key{Fingerprint: "fp", Kind: kinds[i%2], Hash: fmt.Sprint(i % 97)}
				switch i % 7 {
				case 0, 1:
					s.Put(k, fakeValue{id: i, bytes: int64(64 + i%256)})
				case 2, 3:
					s.Get(k)
				case 4:
					s.Contains(k)
				case 5:
					s.Delete(k)
				default:
					if g == 0 {
						s.Sweep()
						s.Stats()
					} else {
						s.Get(k)
					}
				}
				if i%50 == 0 {
					clock.Add(int64(10 * time.Second))
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiescent cross-shard invariants: the aggregate decomposes into
	// the shard blocks, the kind accounting decomposes the same bytes,
	// and no shard (or dedicated kind) exceeds its budget slice.
	st := s.Stats()
	var bytes int64
	var entries int
	for i, sh := range st.Shards {
		bytes += sh.Bytes
		entries += sh.Entries
		if sh.Bytes > sh.MaxBytes {
			t.Fatalf("shard %d over budget: %d > %d", i, sh.Bytes, sh.MaxBytes)
		}
		if sh.Bytes < 0 || sh.Entries < 0 {
			t.Fatalf("shard %d negative accounting: %+v", i, sh)
		}
	}
	if bytes != st.Bytes || entries != st.Entries {
		t.Fatalf("shard blocks sum to (%d bytes, %d entries), aggregate says (%d, %d)",
			bytes, entries, st.Bytes, st.Entries)
	}
	if st.Bytes != s.Bytes() || st.Entries != s.Len() {
		t.Fatalf("Stats disagrees with Bytes()/Len(): %+v vs (%d, %d)", st, s.Bytes(), s.Len())
	}
	var kindBytes int64
	var kindEntries int
	for _, ks := range st.Kinds {
		kindBytes += ks.Bytes
		kindEntries += ks.Entries
	}
	if kindBytes != st.Bytes || kindEntries != st.Entries {
		t.Fatalf("kind accounting (%d bytes, %d entries) disagrees with aggregate (%d, %d)",
			kindBytes, kindEntries, st.Bytes, st.Entries)
	}
	if ks := st.Kinds[string(KindSealed)]; ks.Bytes > ks.MaxBytes {
		t.Fatalf("sealed kind over its sub-budget: %+v", ks)
	}
}

// TestShardedMatchesSingleMutex is the in-package differential check: a
// seeded deterministic workload driven through an 8-shard store and the
// historical 1-shard store must agree on every lookup result and, with a
// budget ample enough that neither configuration evicts, on the final
// occupancy and hit/miss/insertion counters. (Under byte pressure the
// stores legitimately diverge — LRU order is global in one and
// per-shard in the other — which is why the equivalence claim is scoped
// to the no-eviction regime; the serving-layer soak asserts answer-byte
// identity under pressure separately.)
func TestShardedMatchesSingleMutex(t *testing.T) {
	run := func(shards int) (*Store, []bool) {
		s := New(Options{MaxBytes: 1 << 20, Shards: shards})
		rng := uint64(42)
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % n
		}
		var outcomes []bool
		for i := 0; i < 2000; i++ {
			k := Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprint(next(200))}
			switch next(3) {
			case 0:
				outcomes = append(outcomes, s.Put(k, fakeValue{bytes: int64(100 + next(100))}))
			case 1:
				_, ok := s.Get(k)
				outcomes = append(outcomes, ok)
			default:
				outcomes = append(outcomes, s.Contains(k))
			}
		}
		return s, outcomes
	}
	s1, o1 := run(1)
	s8, o8 := run(8)
	for i := range o1 {
		if o1[i] != o8[i] {
			t.Fatalf("operation %d diverged: 1-shard %v, 8-shard %v", i, o1[i], o8[i])
		}
	}
	st1, st8 := s1.Stats(), s8.Stats()
	if st1.Evictions != 0 || st8.Evictions != 0 {
		t.Fatalf("budget was supposed to be ample: evictions %d vs %d", st1.Evictions, st8.Evictions)
	}
	if st1.Hits != st8.Hits || st1.Misses != st8.Misses || st1.Insertions != st8.Insertions ||
		st1.Entries != st8.Entries || st1.Bytes != st8.Bytes {
		t.Fatalf("counter divergence without evictions:\n1-shard %+v\n8-shard %+v", st1, st8)
	}
}

// BenchmarkStoreContention measures Get/Put throughput under parallel
// load on the single-mutex store vs a NumCPU-sharded one — the headline
// number for the lock-sharding change (scripts/bench.sh publishes it).
// On a multi-core box the sharded store should scale near-linearly while
// the single mutex serializes; at GOMAXPROCS=1 the two are within noise
// of each other (sharding costs one hash + mask).
func BenchmarkStoreContention(b *testing.B) {
	sharded := DefaultShards()
	if sharded < 8 {
		sharded = 8 // keep the two arms distinct on small hosts
	}
	for _, shards := range []int{1, sharded} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(Options{MaxBytes: 1 << 24, Shards: shards})
			for i := 0; i < 512; i++ {
				s.Put(key(i), fakeValue{id: i, bytes: 1024})
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := key(i % 512)
					if i%8 == 0 {
						s.Put(k, fakeValue{id: i, bytes: 1024})
					} else {
						s.Get(k)
					}
					i++
				}
			})
		})
	}
}
