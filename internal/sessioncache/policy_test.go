package sessioncache

import (
	"fmt"
	"testing"
	"time"
)

// TestPolicy2QTwoSightingAdmission: first Put is ghosted, second admits,
// third (now resident) replaces without consulting admission.
func TestPolicy2QTwoSightingAdmission(t *testing.T) {
	s := New(Options{MaxBytes: 1000, Policy: NewPolicy2Q(16, 0)})
	if s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("first sighting must be rejected")
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("rejected value must not be resident")
	}
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("second sighting must be admitted")
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("admitted value must be resident")
	}
	if !s.Put(key(0), fakeValue{bytes: 20}) {
		t.Fatal("replacing a resident key must not need a new sighting")
	}
	st := s.Stats()
	if st.Admission.Policy != "2q" || st.Admission.ScanRejections != 1 ||
		st.Admission.GhostPromotions != 1 || st.Admission.GhostEntries != 0 {
		t.Fatalf("admission stats: %+v", st.Admission)
	}
	// Get(key(0)) before admission missed while the key was ghosted.
	if st.Admission.ProbationHits != 1 {
		t.Fatalf("probation hits: %+v", st.Admission)
	}
}

// TestPolicy2QScanResistance: a stream of one-shot keys must never
// displace an admitted entry, no matter how long the scan runs.
func TestPolicy2QScanResistance(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicy2Q(8, 0)})
	s.Put(key(0), fakeValue{bytes: 40})
	s.Put(key(0), fakeValue{bytes: 40}) // admitted
	for i := 1; i <= 200; i++ {
		if s.Put(key(i), fakeValue{bytes: 40}) {
			t.Fatalf("scan key %d admitted on first sighting", i)
		}
	}
	if _, ok := s.Get(key(0)); !ok {
		t.Fatal("scan traffic flushed the admitted entry")
	}
	st := s.Stats()
	// 201: the warm key's own first sighting plus the 200 scan keys.
	if st.Evictions != 0 || st.Admission.ScanRejections != 201 {
		t.Fatalf("scan bookkeeping: %+v", st)
	}
	if st.Admission.GhostEntries != 8 || st.Admission.GhostLimit != 8 {
		t.Fatalf("ghost list must stay bounded: %+v", st.Admission)
	}
}

// TestPolicy2QGhostCapacity: with a full ghost list the oldest sighting
// is forgotten first, so its second Put counts as a first sighting again.
func TestPolicy2QGhostCapacity(t *testing.T) {
	s := New(Options{MaxBytes: 1000, Policy: NewPolicy2Q(2, 0)})
	s.Put(key(0), fakeValue{bytes: 1}) // ghost: [0]
	s.Put(key(1), fakeValue{bytes: 1}) // ghost: [1 0]
	s.Put(key(2), fakeValue{bytes: 1}) // ghost: [2 1]; 0 forgotten
	if !s.Put(key(1), fakeValue{bytes: 1}) {
		t.Fatal("remembered sighting must admit")
	}
	if s.Put(key(0), fakeValue{bytes: 1}) {
		t.Fatal("forgotten sighting must not admit")
	}
}

// TestPolicy2QSightingWindow: a ghost older than the window is stale —
// the next Put restarts probation instead of promoting.
func TestPolicy2QSightingWindow(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Options{
		MaxBytes: 1000, TTL: time.Minute,
		Policy: NewPolicy2Q(16, time.Minute),
		Now:    func() time.Time { return now },
	})
	s.Put(key(0), fakeValue{bytes: 1})
	now = now.Add(2 * time.Minute)
	if s.Put(key(0), fakeValue{bytes: 1}) {
		t.Fatal("stale sighting must not admit")
	}
	now = now.Add(30 * time.Second)
	if !s.Put(key(0), fakeValue{bytes: 1}) {
		t.Fatal("fresh second sighting must admit")
	}
}

// TestPolicy2QEvictionReghosts: a byte-pressure victim goes back on the
// ghost list, so one sighting (not two) readmits it.
func TestPolicy2QEvictionReghosts(t *testing.T) {
	s := New(Options{MaxBytes: 100, Policy: NewPolicy2Q(16, 0)})
	for i := 0; i < 3; i++ { // admit three 40-byte entries: third evicts first
		s.Put(key(i), fakeValue{bytes: 40})
		s.Put(key(i), fakeValue{bytes: 40})
	}
	if _, ok := s.Get(key(0)); ok {
		t.Fatal("key 0 should have been evicted")
	}
	if !s.Put(key(0), fakeValue{bytes: 40}) {
		t.Fatal("eviction victim must readmit on a single sighting")
	}
}

// TestPolicyLRUAdmitsEverything pins the default policy's stats label
// and pass-through admission.
func TestPolicyLRUAdmitsEverything(t *testing.T) {
	s := New(Options{MaxBytes: 100})
	if !s.Put(key(0), fakeValue{bytes: 10}) {
		t.Fatal("LRU must admit on first sighting")
	}
	st := s.Stats()
	if st.Admission.Policy != "lru" || st.Admission.ScanRejections != 0 ||
		st.Admission.GhostEntries != 0 {
		t.Fatalf("lru admission stats: %+v", st.Admission)
	}
}

// TestPolicy2QConcurrent hammers a 2Q store from many goroutines; run
// under -race this proves the policy inherits the store's locking.
func TestPolicy2QConcurrent(t *testing.T) {
	s := New(Options{MaxBytes: 1 << 10, TTL: time.Minute, Policy: NewPolicy2Q(64, time.Minute)})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 300; i++ {
				k := Key{Fingerprint: "fp", Kind: KindPrefill, Hash: fmt.Sprintf("c-%d", (g+i)%24)}
				if _, ok := s.Get(k); !ok {
					s.Put(k, fakeValue{bytes: 64})
				}
				if i%100 == 0 {
					s.Stats()
					s.Sweep()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Bytes() > 1<<10 {
		t.Fatalf("budget exceeded: %d", s.Bytes())
	}
}
