package sessioncache

import (
	"sort"
	"time"
)

// PolicyPerKind routes every admission decision to a per-kind inner
// policy, so artifact kinds cannot pollute each other's admission
// state: each kind gets its own ghost list (a sealed-cache scan flood
// cannot push prefill sightings off the bound), its own probation cap
// negotiation, and — with adaptive inners — its own decision window and
// mode, so seal churn can never flip the builder mode or vice versa.
//
// The router is the admission-side complement of the store's per-kind
// byte shards (Options.Kinds): configure both with the same kind set.
// Keys of a kind the router was not configured with fall through to a
// shared fallback inner policy, mirroring the store's shared shard.
//
// Like every Policy, a router (and its inners) is driven under one
// store's mutex and must not be shared between stores.
type PolicyPerKind struct {
	inner    map[Kind]Policy
	fallback Policy
}

// NewPolicyPerKind builds a router with one dedicated inner policy per
// listed kind plus a fallback for every other kind. make is invoked once
// per kind (and once with "" for the fallback) and must return a fresh
// policy each call — inners are never shared.
func NewPolicyPerKind(kinds []Kind, make func(Kind) Policy) *PolicyPerKind {
	p := &PolicyPerKind{inner: map[Kind]Policy{}, fallback: make("")}
	for _, k := range kinds {
		p.inner[k] = make(k)
	}
	return p
}

// policyFor returns the inner policy owning a kind's admission state.
func (p *PolicyPerKind) policyFor(kind Kind) Policy {
	if in, ok := p.inner[kind]; ok {
		return in
	}
	return p.fallback
}

// Name returns the fallback inner's label — the router is transparent in
// the policy name (the per-kind split shows up in Stats().Kinds).
func (p *PolicyPerKind) Name() string { return p.fallback.Name() }

// Admit routes to the key's kind policy.
func (p *PolicyPerKind) Admit(k Key, bytes int64, now time.Time) (Segment, bool) {
	return p.policyFor(k.Kind).Admit(k, bytes, now)
}

// OnHit routes to the key's kind policy.
func (p *PolicyPerKind) OnHit(k Key, seg Segment, now time.Time) Segment {
	return p.policyFor(k.Kind).OnHit(k, seg, now)
}

// OnMiss routes to the key's kind policy.
func (p *PolicyPerKind) OnMiss(k Key, now time.Time) {
	p.policyFor(k.Kind).OnMiss(k, now)
}

// OnEvict routes to the key's kind policy.
func (p *PolicyPerKind) OnEvict(k Key, seg Segment, hit bool, now time.Time) {
	p.policyFor(k.Kind).OnEvict(k, seg, hit, now)
}

// OnExpire routes to the key's kind policy.
func (p *PolicyPerKind) OnExpire(k Key, seg Segment, hit bool, now time.Time) {
	p.policyFor(k.Kind).OnExpire(k, seg, hit, now)
}

// ProbationCap routes the shard negotiation to the kind's inner policy,
// so each kind's shard cap is clamped and remembered by exactly the
// policy that will enforce it in Admit.
func (p *PolicyPerKind) ProbationCap(kind Kind, maxBytes, want int64) int64 {
	return p.policyFor(kind).ProbationCap(kind, maxBytes, want)
}

// Stats aggregates the inner policies' counters (sums) under the
// fallback's label and reports each dedicated kind's own block in
// Kinds. Mode is the dedicated inners' shared mode label when they
// agree and "mixed" when adaptive inners have diverged — the per-kind
// blocks carry the individual modes. The fallback's mode only speaks
// when there is no dedicated adaptive inner: it serves kinds outside
// the configured set, so with a matching store shard config it is idle
// and its never-flipping mode must not drag agreeing controllers to
// "mixed".
func (p *PolicyPerKind) Stats() AdmissionStats {
	fb := p.fallback.Stats()
	agg := fb
	agg.Mode = ""
	kinds := make([]Kind, 0, len(p.inner))
	for k := range p.inner {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	agg.Kinds = make(map[string]AdmissionStats, len(kinds))
	for _, k := range kinds {
		st := p.inner[k].Stats()
		agg.Kinds[string(k)] = st
		agg.ProbationHits += st.ProbationHits
		agg.GhostPromotions += st.GhostPromotions
		agg.ScanRejections += st.ScanRejections
		agg.PolicyFlips += st.PolicyFlips
		agg.GhostEntries += st.GhostEntries
		agg.GhostLimit += st.GhostLimit
		if st.Mode != "" && st.Mode != agg.Mode {
			if agg.Mode == "" {
				agg.Mode = st.Mode
			} else {
				agg.Mode = "mixed"
			}
		}
	}
	if agg.Mode == "" {
		agg.Mode = fb.Mode
	}
	return agg
}
