package sessioncache

// Self-tuning cache budgets (Options.Tune): a tumbling-window controller
// — the same mechanism PolicyAdaptive uses for admission — pointed at the
// store's three hand-set knobs instead of the admission mode:
//
//   - TTL: the effective idle lifetime, nudged ±25% per step within
//     [base/4, 4*base]. Expiry churn alongside a miss-heavy window means
//     the TTL is cutting off reuse (raise); eviction pressure with zero
//     expiries means idle entries are hogging bytes the LRU has to fight
//     for (lower). Only the store's expiry check moves — the admission
//     policies' ghost windows keep the configured TTL, so tuning can
//     never change what Admit decides.
//   - Sealed/prefill split: the per-kind sub-budgets (Options.Kinds),
//     shifted 5% of the combined budget per step toward the kind with
//     the higher measured hit-rate-per-byte (window hits divided by
//     resident bytes — the marginal value of giving that kind one more
//     byte), within [base/2, base*3/2] for either kind. Requires both
//     kinds dedicated (the serving layer's SealedPct split).
//   - Probation pct: each dedicated kind-shard's probation carve-out,
//     ±2 percentage points per step within [base/2, min(2*base, 50)],
//     re-negotiated through the policy's ProbationCap so store and
//     policy always agree. Probation promotions outpacing scan
//     rejections means the trial segment is earning its bytes (grow);
//     the reverse means it is churn space (shrink). Only meaningful
//     under a probation-capable policy — ghost-only policies negotiate
//     every cap to 0 and the knob stays parked.
//
// Windows are counted in store operations (Get + Put), never wall time —
// the tuner is clock-free, like costsched. Every rule needs the same
// direction in two consecutive windows before it moves (hysteresis), the
// clamps above are hard, and with Options.Tune nil no tuner exists: no
// counter is touched and every knob keeps its configured value exactly —
// the historical behavior.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// DefaultTuneWindow is the tuning window (in store operations) when
// TuneOptions.Window <= 0.
const DefaultTuneWindow = 512

// TuneOptions configures the self-tuning layer; see the file comment.
type TuneOptions struct {
	// Window is the tumbling-window length in store operations (Get +
	// Put); <= 0 selects DefaultTuneWindow.
	Window int
}

// TuneStats is the tuner's block of Stats; nil when tuning is off, so an
// untuned store's stats are byte-for-byte the historical payload.
type TuneStats struct {
	// Window is the configured window length in store operations.
	Window int `json:"window"`
	// TTLMs is the current effective TTL in milliseconds (equal to the
	// configured TTL until the first nudge; 0 = no expiry configured).
	TTLMs float64 `json:"ttl_ms"`
	// SealedMaxBytes / PrefillMaxBytes are the current per-kind
	// sub-budgets; zero when the budget is not split per kind.
	SealedMaxBytes  int64 `json:"sealed_max_bytes"`
	PrefillMaxBytes int64 `json:"prefill_max_bytes"`
	// ProbationPct is the current probation share per dedicated kind;
	// empty when no kind has an explicit carve-out to tune.
	ProbationPct map[string]float64 `json:"probation_pct,omitempty"`
	// TTLNudges / SplitNudges / ProbationNudges count applied moves per
	// knob (a clamped-to-no-op evaluation does not count).
	TTLNudges       int64 `json:"ttl_nudges"`
	SplitNudges     int64 `json:"split_nudges"`
	ProbationNudges int64 `json:"probation_nudges"`
}

// tuneKinds are the artifact kinds the tuner tracks hit densities for,
// in counter-index order.
var tuneKinds = [2]Kind{KindPrefill, KindSealed}

// tunerDelta is one window's worth of store-level evidence: the counter
// movement between two Stats snapshots.
type tunerDelta struct {
	hits, misses, evictions, expirations int64
	segPromotions, scanRejections        int64
}

// tuner is the self-tuning controller. Event recording (onGet/tick) is
// atomic and runs on the serve path; tune() runs at window boundaries on
// whichever goroutine crosses the boundary, guarded by busy so a slow
// evaluation is skipped rather than stacked.
type tuner struct {
	s      *Store
	window int64
	ops    atomic.Int64
	busy   atomic.Bool

	hits   [2]atomic.Int64 // indexed like tuneKinds
	misses [2]atomic.Int64

	mu   sync.Mutex // guards everything below
	prev Stats

	baseTTL, curTTL time.Duration

	splitOn               bool // both serving kinds dedicated
	baseSealed, curSealed int64
	basePrefill           int64

	probBase map[Kind]float64 // configured explicit carve-outs only
	probCur  map[Kind]float64

	ttlPend, splitPend, probPend int

	ttlNudges, splitNudges, probNudges metrics.Counter
}

func newTuner(s *Store, opts TuneOptions) *tuner {
	w := opts.Window
	if w <= 0 {
		w = DefaultTuneWindow
	}
	t := &tuner{
		s:        s,
		window:   int64(w),
		baseTTL:  s.opts.TTL,
		curTTL:   s.opts.TTL,
		probBase: make(map[Kind]float64),
		probCur:  make(map[Kind]float64),
	}
	// Base sub-budgets from the configured split: both serving kinds
	// must be dedicated for budget-shifting to be meaningful.
	sealed, okS := s.opts.Kinds[KindSealed]
	prefill, okP := s.opts.Kinds[KindPrefill]
	if okS && okP && sealed.MaxBytes > 0 && prefill.MaxBytes > 0 {
		t.splitOn = true
		t.baseSealed, t.curSealed = sealed.MaxBytes, sealed.MaxBytes
		t.basePrefill = prefill.MaxBytes
	}
	// Probation tuning needs an explicit configured percentage to anchor
	// its clamps (a policy-default carve-out is byte-denominated and
	// kind-opaque); ghost-only policies will negotiate every retune to 0
	// anyway, making the knob a no-op there.
	for k, b := range s.opts.Kinds {
		if b.MaxBytes > 0 && b.ProbationPct > 0 {
			t.probBase[k] = b.ProbationPct
			t.probCur[k] = b.ProbationPct
		}
	}
	t.prev = s.Stats()
	return t
}

// onGet records one Get outcome for the kind's hit-density window.
func (t *tuner) onGet(kind Kind, hit bool) {
	for i, k := range tuneKinds {
		if k == kind {
			if hit {
				t.hits[i].Add(1)
			} else {
				t.misses[i].Add(1)
			}
			return
		}
	}
}

// tick counts one store operation and runs the window evaluation on the
// boundary. The busy guard means a boundary hit while a previous
// evaluation still runs is dropped, never queued — the next window picks
// the evidence up via the snapshot diff.
func (t *tuner) tick() {
	if t.ops.Add(1)%t.window != 0 {
		return
	}
	if !t.busy.CompareAndSwap(false, true) {
		return
	}
	defer t.busy.Store(false)
	t.tune()
}

// tune closes one window: snapshot, diff, and at most one nudge per knob
// (each gated by two consecutive same-direction windows).
func (t *tuner) tune() {
	cur := t.s.Stats()
	t.mu.Lock()
	defer t.mu.Unlock()
	d := tunerDelta{
		hits:          cur.Hits - t.prev.Hits,
		misses:        cur.Misses - t.prev.Misses,
		evictions:     cur.Evictions - t.prev.Evictions,
		expirations:   cur.Expirations - t.prev.Expirations,
		segPromotions: cur.Admission.SegmentPromotions - t.prev.Admission.SegmentPromotions,
		scanRejections: cur.Admission.ScanRejections -
			t.prev.Admission.ScanRejections,
	}
	t.prev = cur
	hp, hs := t.hits[0].Swap(0), t.hits[1].Swap(0)
	mp, ms := t.misses[0].Swap(0), t.misses[1].Swap(0)

	t.tuneTTL(d)
	t.tuneSplit(cur, hp, mp, hs, ms)
	t.tuneProbation(d)
}

// step applies the two-window hysteresis: a nudge fires only when the
// same non-zero direction shows up in two consecutive windows, and the
// pending direction is consumed by firing (or replaced by disagreement).
func step(pend *int, dir int) bool {
	fire := dir != 0 && dir == *pend
	if fire {
		*pend = 0
	} else {
		*pend = dir
	}
	return fire
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// tuneTTL nudges the effective TTL ±25% within [base/4, 4*base].
func (t *tuner) tuneTTL(d tunerDelta) {
	if t.baseTTL <= 0 {
		return
	}
	dir := 0
	switch {
	case d.expirations > 0 && d.misses > d.hits:
		dir = +1 // expiry is cutting off reuse: entries die idle, then miss
	case d.expirations == 0 && d.evictions > 0:
		dir = -1 // pure byte pressure: idle entries never age out on their own
	}
	if !step(&t.ttlPend, dir) {
		return
	}
	next := clampDur(t.curTTL+time.Duration(dir)*t.curTTL/4, t.baseTTL/4, 4*t.baseTTL)
	if next == t.curTTL {
		return
	}
	t.curTTL = next
	t.s.effTTL.Store(int64(next))
	t.ttlNudges.Inc()
}

// tuneSplit shifts 5% of the combined per-kind budget toward the kind
// with at least double the hit-rate-per-byte, within [base/2, base*3/2]
// per kind. Both kinds must have seen real window traffic — a quiet kind
// must not lose bytes to noise.
func (t *tuner) tuneSplit(cur Stats, hp, mp, hs, ms int64) {
	if !t.splitOn {
		return
	}
	dir := 0
	minOps := t.window / 16
	if hp+mp >= minOps && hs+ms >= minOps {
		bp, bs := int64(1), int64(1)
		if ks, ok := cur.Kinds[string(KindPrefill)]; ok && ks.Bytes > 0 {
			bp = ks.Bytes
		}
		if ks, ok := cur.Kinds[string(KindSealed)]; ok && ks.Bytes > 0 {
			bs = ks.Bytes
		}
		densP, densS := float64(hp)/float64(bp), float64(hs)/float64(bs)
		switch {
		case densS > 2*densP:
			dir = +1 // toward sealed
		case densP > 2*densS:
			dir = -1 // toward prefill
		}
	}
	if !step(&t.splitPend, dir) {
		return
	}
	total := t.baseSealed + t.basePrefill
	next := clamp64(t.curSealed+int64(dir)*total/20, t.baseSealed/2, t.baseSealed*3/2)
	// The prefill side has its own floor: sealed may not grow past what
	// leaves prefill half its base.
	next = clamp64(next, t.baseSealed/2, total-t.basePrefill/2)
	if next == t.curSealed {
		return
	}
	t.curSealed = next
	t.s.retuneKinds(next, t.probCur)
	t.splitNudges.Inc()
}

// tuneProbation moves every tuned kind's probation share ±2 points
// within [base/2, min(2*base, 50)].
func (t *tuner) tuneProbation(d tunerDelta) {
	if len(t.probBase) == 0 {
		return
	}
	dir := 0
	switch {
	case d.segPromotions > d.scanRejections && d.segPromotions > 0:
		dir = +1 // probation residents are earning promotion: grow the trial space
	case d.scanRejections > 2*d.segPromotions && d.scanRejections > 0:
		dir = -1 // probation is churn space for scans: shrink it
	}
	if !step(&t.probPend, dir) {
		return
	}
	moved := false
	for k, base := range t.probBase {
		hi := 2 * base
		if hi > 50 {
			hi = 50
		}
		next := t.probCur[k] + float64(dir)*2
		if next < base/2 {
			next = base / 2
		}
		if next > hi {
			next = hi
		}
		if next != t.probCur[k] {
			t.probCur[k] = next
			moved = true
		}
	}
	if !moved {
		return
	}
	t.s.retuneKinds(t.curSealed, t.probCur)
	t.probNudges.Inc()
}

// stats snapshots the tuner's block.
func (t *tuner) stats() *TuneStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := &TuneStats{
		Window:          int(t.window),
		TTLMs:           float64(t.curTTL) / float64(time.Millisecond),
		TTLNudges:       t.ttlNudges.Load(),
		SplitNudges:     t.splitNudges.Load(),
		ProbationNudges: t.probNudges.Load(),
	}
	if t.splitOn {
		st.SealedMaxBytes = t.curSealed
		st.PrefillMaxBytes = t.baseSealed + t.basePrefill - t.curSealed
	}
	if len(t.probCur) > 0 {
		st.ProbationPct = make(map[string]float64, len(t.probCur))
		for k, v := range t.probCur {
			st.ProbationPct[string(k)] = v
		}
	}
	return st
}

// retuneKinds applies a new sealed sub-budget total and the current
// probation percentages to every lock-shard, one mutex at a time. Each
// lock-shard's combined (sealed + prefill) slice is invariant — only the
// boundary between the two kind-shards moves — and probation caps are
// re-negotiated through the policy so store and policy stay agreed.
// Shrunk segments evict LRU-first immediately, exactly as a Put past the
// budget would.
func (s *Store) retuneKinds(sealedTotal int64, probPct map[Kind]float64) {
	n := len(s.shards)
	for i, ls := range s.shards {
		ls.mu.Lock()
		sealed, okS := ls.dedicated[KindSealed]
		prefill, okP := ls.dedicated[KindPrefill]
		if okS && okP {
			pair := sealed.max + prefill.max
			sMax := clamp64(shardSlice(sealedTotal, n, i), 0, pair)
			sealed.max, prefill.max = sMax, pair-sMax
		}
		now := ls.opts.Now()
		for _, sh := range ls.shards() {
			if sh.kind == "" {
				continue
			}
			if pct, ok := probPct[sh.kind]; ok {
				sh.probCap = ls.negotiateProbCap(sh.kind, sh.max, pct)
			} else if sh.probCap > sh.max/2 {
				// A shrunk shard keeps its probation cap inside the
				// invariant the policies rely on (cap <= half the budget).
				sh.probCap = ls.negotiateProbCap(sh.kind, sh.max, 0)
			}
			ls.evictOverLocked(sh, SegmentProbation, nil, now)
			ls.evictOverLocked(sh, SegmentProtected, nil, now)
		}
		ls.mu.Unlock()
	}
}

// sortedTuneKinds returns the tuned kinds in deterministic order (test
// helper surface).
func sortedTuneKinds(m map[Kind]float64) []Kind {
	out := make([]Kind, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
