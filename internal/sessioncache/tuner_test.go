package sessioncache

// Self-tuner tests: each knob's nudge rule, the two-window hysteresis,
// the hard clamps, and — most important — the off-switch contract: a
// store without Options.Tune must behave decision-for-decision exactly
// like the historical store.

import (
	"reflect"
	"testing"
	"time"
)

// tunedClock is a manual clock whose Now is safe to thread as
// Options.Now in single-goroutine tuner tests.
type tunedClock struct{ t time.Time }

func newTunedClock() *tunedClock { return &tunedClock{t: time.Unix(1700000000, 0)} }

func (c *tunedClock) Now() time.Time          { return c.t }
func (c *tunedClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// TestTuneOffIsExactHistoricalBehavior drives an identical mixed
// workload through a tuned-off store and a pre-tuner-equivalent store
// (both Tune nil) and demands DeepEqual stats — plus pins that the
// effective TTL never moves and Stats carries no tune block.
func TestTuneOffIsExactHistoricalBehavior(t *testing.T) {
	clock := newTunedClock()
	mk := func() *Store {
		return New(Options{MaxBytes: 1000, TTL: time.Minute, Now: clock.Now})
	}
	a, b := mk(), mk()
	// Interleave so both stores see identical clock readings per op.
	for i := 0; i < 100; i++ {
		for _, s := range []*Store{a, b} {
			s.Put(key(i%7), fakeValue{id: i, bytes: 100})
			s.Get(key(i % 13))
		}
		if i%10 == 9 {
			clock.Advance(20 * time.Second)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("untuned stores diverged:\n a: %+v\n b: %+v", sa, sb)
	}
	if sa.Tune != nil {
		t.Fatal("tune block must be absent when tuning is off")
	}
	if got := time.Duration(a.effTTL.Load()); got != time.Minute {
		t.Fatalf("effective TTL moved without a tuner: %v", got)
	}
}

// TestTuneTTLRaisesOnExpiryChurn: two consecutive windows of
// expiry-driven misses raise the effective TTL 25%; a single window
// (hysteresis) does not.
func TestTuneTTLRaisesOnExpiryChurn(t *testing.T) {
	clock := newTunedClock()
	base := time.Minute
	s := New(Options{MaxBytes: 1 << 20, TTL: base, Now: clock.Now,
		Tune: &TuneOptions{Window: 8}})

	// Each window: insert, idle past the TTL, then miss on Get — every
	// window shows expirations > 0 and misses > hits.
	window := func() {
		for i := 0; i < 4; i++ {
			s.Put(key(i), fakeValue{id: i, bytes: 100})
		}
		clock.Advance(2 * time.Duration(s.effTTL.Load()))
		for i := 0; i < 4; i++ {
			s.Get(key(i)) // expired -> miss
		}
	}
	window()
	if got := time.Duration(s.effTTL.Load()); got != base {
		t.Fatalf("TTL moved after one window (no hysteresis): %v", got)
	}
	window()
	want := base + base/4
	if got := time.Duration(s.effTTL.Load()); got != want {
		t.Fatalf("TTL after two expiry-churn windows = %v, want %v", got, want)
	}
	st := s.Stats()
	if st.Tune == nil || st.Tune.TTLNudges != 1 {
		t.Fatalf("tune stats = %+v, want 1 TTL nudge", st.Tune)
	}

	// Clamp: however many windows fire, TTL never exceeds 4x base.
	for i := 0; i < 40; i++ {
		window()
	}
	if got, max := time.Duration(s.effTTL.Load()), 4*base; got > max {
		t.Fatalf("TTL %v exceeded the 4x clamp %v", got, max)
	}
}

// TestTuneTTLLowersUnderPureBytePressure: windows full of evictions and
// zero expiries lower the TTL toward (but never past) base/4.
func TestTuneTTLLowersUnderPureBytePressure(t *testing.T) {
	clock := newTunedClock()
	base := time.Minute
	s := New(Options{MaxBytes: 500, TTL: base, Now: clock.Now,
		Tune: &TuneOptions{Window: 8}})

	// Rolling inserts over a tiny budget: every window evicts, nothing
	// ever idles long enough to expire.
	for i := 0; i < 400; i++ {
		s.Put(key(i), fakeValue{id: i, bytes: 100})
	}
	got := time.Duration(s.effTTL.Load())
	if got >= base {
		t.Fatalf("TTL did not drop under byte pressure: %v", got)
	}
	if min := base / 4; got < min {
		t.Fatalf("TTL %v fell under the base/4 clamp %v", got, min)
	}
}

// TestTuneSplitShiftsTowardHitDensity: with the budget split per kind,
// sealed traffic that hits far more per byte than prefill pulls budget
// toward sealed — within the 1.5x clamp — and the shrunk prefill side
// evicts down to its new budget immediately.
func TestTuneSplitShiftsTowardHitDensity(t *testing.T) {
	clock := newTunedClock()
	s := New(Options{
		MaxBytes: 2000, Now: clock.Now,
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 1000},
			KindPrefill: {MaxBytes: 1000},
		},
		Tune: &TuneOptions{Window: 16},
	})
	s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 10})
	s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 900})

	// Every window: 8 sealed hits on 10 bytes vs 7 prefill hits on 900
	// bytes — sealed's hit density is ~100x prefill's.
	for w := 0; w < 8; w++ {
		for i := 0; i < 8; i++ {
			s.Get(kindKey(KindSealed, 0))
		}
		for i := 0; i < 7; i++ {
			s.Get(kindKey(KindPrefill, 0))
		}
		s.Put(kindKey(KindPrefill, 0), fakeValue{bytes: 900}) // 16th op
	}
	st := s.Stats()
	if st.Tune == nil || st.Tune.SplitNudges == 0 {
		t.Fatalf("no split nudge: %+v", st.Tune)
	}
	if st.Tune.SealedMaxBytes <= 1000 {
		t.Fatalf("sealed budget did not grow: %+v", st.Tune)
	}
	if st.Tune.SealedMaxBytes > 1500 {
		t.Fatalf("sealed budget %d exceeded its 1.5x clamp", st.Tune.SealedMaxBytes)
	}
	if st.Tune.SealedMaxBytes+st.Tune.PrefillMaxBytes != 2000 {
		t.Fatalf("split no longer sums to the budget: %+v", st.Tune)
	}
	// The store's real shard budgets moved with the tuner's view.
	if got := st.Kinds[string(KindSealed)].MaxBytes; got != st.Tune.SealedMaxBytes {
		t.Fatalf("sealed shard budget %d != tuned budget %d", got, st.Tune.SealedMaxBytes)
	}
	if s.Bytes() > 2000 {
		t.Fatalf("resident bytes %d exceed the total budget after retune", s.Bytes())
	}
}

// TestTuneSplitIgnoresQuietKind: a kind with no window traffic never
// loses budget, however dense the other kind's hits are.
func TestTuneSplitIgnoresQuietKind(t *testing.T) {
	clock := newTunedClock()
	s := New(Options{
		MaxBytes: 2000, Now: clock.Now,
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 1000},
			KindPrefill: {MaxBytes: 1000},
		},
		Tune: &TuneOptions{Window: 16},
	})
	s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 10})
	for w := 0; w < 6; w++ {
		for i := 0; i < 15; i++ {
			s.Get(kindKey(KindSealed, 0)) // all traffic sealed; prefill silent
		}
		s.Put(kindKey(KindSealed, 0), fakeValue{bytes: 10})
	}
	if st := s.Stats(); st.Tune.SplitNudges != 0 {
		t.Fatalf("split moved on one-sided traffic: %+v", st.Tune)
	}
}

// TestTuneProbationGrowsOnPromotions: under the A1 policy, windows where
// probation residents keep earning promotion grow the probation share —
// clamped at 2x the configured percentage — and the caps stay negotiated
// with the policy (never beyond half a shard budget).
func TestTuneProbationGrowsOnPromotions(t *testing.T) {
	clock := newTunedClock()
	s := New(Options{
		MaxBytes: 4000, Now: clock.Now,
		NewPolicy: func() Policy { return NewPolicyA1(64, 0, 100) },
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 2000, ProbationPct: 10},
			KindPrefill: {MaxBytes: 2000, ProbationPct: 10},
		},
		Tune: &TuneOptions{Window: 8},
	})
	// Each window: four first sightings (land in probation) and four
	// re-references (promote). Promotions > rejections every window.
	n := 0
	for w := 0; w < 12; w++ {
		for i := 0; i < 4; i++ {
			s.Put(kindKey(KindSealed, n+i), fakeValue{bytes: 40})
		}
		for i := 0; i < 4; i++ {
			s.Get(kindKey(KindSealed, n+i))
		}
		n += 4
	}
	st := s.Stats()
	if st.Tune == nil || st.Tune.ProbationNudges == 0 {
		t.Fatalf("no probation nudge: %+v", st.Tune)
	}
	pct := st.Tune.ProbationPct[string(KindSealed)]
	if pct <= 10 || pct > 20 {
		t.Fatalf("sealed probation pct = %v, want in (10, 20]", pct)
	}
	// The store-side caps moved and respect the policy's half-budget
	// invariant on every kind shard.
	for _, ls := range s.shards {
		for _, sh := range ls.shards() {
			if sh.kind == "" {
				continue
			}
			if sh.probCap > sh.max/2 {
				t.Fatalf("kind %q probation cap %d exceeds half its budget %d",
					sh.kind, sh.probCap, sh.max)
			}
		}
	}
}

// TestTuneProbationShrinksOnScans: scan-only traffic (sightings that
// never return) shrinks the probation share, clamped at half the
// configured percentage.
func TestTuneProbationShrinksOnScans(t *testing.T) {
	clock := newTunedClock()
	s := New(Options{
		MaxBytes: 4000, Now: clock.Now,
		NewPolicy: func() Policy { return NewPolicyA1(64, 0, 100) },
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 2000, ProbationPct: 20},
			KindPrefill: {MaxBytes: 2000, ProbationPct: 20},
		},
		Tune: &TuneOptions{Window: 8},
	})
	for i := 0; i < 400; i++ { // one-shot flood: probation churns, nothing promotes
		s.Put(kindKey(KindSealed, i), fakeValue{bytes: 60})
	}
	st := s.Stats()
	pct := st.Tune.ProbationPct[string(KindSealed)]
	if pct >= 20 {
		t.Fatalf("probation pct did not shrink under scan flood: %v", pct)
	}
	if pct < 10 {
		t.Fatalf("probation pct %v fell under the base/2 clamp", pct)
	}
}

// TestTuneStatsBlock pins the tune block's shape for the metrics
// surface: present when on, with the configured window and the current
// knob values.
func TestTuneStatsBlock(t *testing.T) {
	s := New(Options{MaxBytes: 1000, TTL: time.Minute,
		Tune: &TuneOptions{}})
	st := s.Stats()
	if st.Tune == nil {
		t.Fatal("tune block missing")
	}
	if st.Tune.Window != DefaultTuneWindow {
		t.Fatalf("window = %d, want default %d", st.Tune.Window, DefaultTuneWindow)
	}
	if st.Tune.TTLMs != 60_000 {
		t.Fatalf("ttl_ms = %v, want 60000", st.Tune.TTLMs)
	}
	if st.Tune.SealedMaxBytes != 0 || st.Tune.PrefillMaxBytes != 0 {
		t.Fatalf("unsplit store reported kind budgets: %+v", st.Tune)
	}
}

// TestTuneConcurrent hammers a tuned store from many goroutines under
// -race: tuning decisions interleaving with serve traffic must stay
// data-race-free and keep the byte accounting within budget.
func TestTuneConcurrent(t *testing.T) {
	s := New(Options{
		MaxBytes: 10_000, TTL: time.Minute, Shards: 4,
		NewPolicy: func() Policy { return NewPolicyA1(64, 0, 100) },
		Kinds: map[Kind]KindBudget{
			KindSealed:  {MaxBytes: 5000, ProbationPct: 10},
			KindPrefill: {MaxBytes: 5000, ProbationPct: 10},
		},
		Tune: &TuneOptions{Window: 32},
	})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			kind := KindSealed
			if g%2 == 0 {
				kind = KindPrefill
			}
			for i := 0; i < 500; i++ {
				s.Put(kindKey(kind, i%50), fakeValue{bytes: 64})
				s.Get(kindKey(kind, (i+g)%60))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if s.Bytes() > 10_000 {
		t.Fatalf("resident bytes %d exceed budget", s.Bytes())
	}
	if st := s.Stats(); st.Tune == nil {
		t.Fatal("tune block missing")
	}
}
