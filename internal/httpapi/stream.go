package httpapi

// Token streaming for the answer endpoints (SSE).
//
// A client opts in with `?stream=1` or `Accept: text/event-stream` on
// POST /v1/answer or POST /v1/session/{id}/answer and receives the decode
// as Server-Sent Events instead of one buffered JSON body:
//
//	event: token    data: {"tokens":["w1","w2"]}   (repeated)
//	event: result   data: {<the usual Result JSON>}
//	event: error    data: {"error":"..."}          (terminal, see below)
//
// The contract (tested by the streaming differential suite):
//
//   - Step-boundary flush: tokens are emitted exactly at decode-step
//     boundaries (Turn.Emitted after each Turn.Step), for batched and
//     unbatched execution alike. The concatenation of every token event
//     equals the buffered Answer's result.Answer byte for byte.
//   - Decoupled delivery: the decode (batch worker or pool worker) pushes
//     tokens into a tokenSink; the handler goroutine drains the sink and
//     writes SSE frames. A slow client therefore never stalls the decode
//     or its batchmates — frames coalesce in the sink instead.
//   - Errors after acceptance are explicit: once the request is admitted
//     (queue not full) the SSE headers are written, so any later failure
//     — pipeline error, unknown vocabulary, mid-decode fault — is
//     delivered as a terminal `error` event, never a silently truncated
//     200 body. Queue saturation still gets the plain JSON 503 (headers
//     not yet sent).
//   - Disconnects cancel at step boundaries: when the client goes away
//     the batcher drops the turn at the next step boundary (unbatched
//     streams check the context each step); batchmates are unaffected.
//     The handler stops writing but still waits for the decode to
//     acknowledge, preserving submitWait semantics on the session path.
//
// TTFT (time to first token event) is recorded per stream and surfaced
// in /v1/metrics under the streaming block, alongside the endpoints'
// total-latency figures.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cocktail "repro"
)

// tokenSink is the hand-off buffer between a decoding worker and the
// streaming handler. push and drain are safe for concurrent use; notify
// carries at most one pending signal, so push never blocks on a slow
// reader (tokens coalesce in toks instead).
type tokenSink struct {
	mu     sync.Mutex
	toks   []string
	notify chan struct{}
}

func newTokenSink() *tokenSink { return &tokenSink{notify: make(chan struct{}, 1)} }

// push appends newly emitted tokens and signals the reader. A nil/empty
// batch is a no-op, so callers can push Turn.Emitted unconditionally.
func (k *tokenSink) push(words []string) {
	if len(words) == 0 {
		return
	}
	k.mu.Lock()
	k.toks = append(k.toks, words...)
	k.mu.Unlock()
	select {
	case k.notify <- struct{}{}:
	default:
	}
}

// drain removes and returns everything pushed since the last drain.
func (k *tokenSink) drain() []string {
	k.mu.Lock()
	t := k.toks
	k.toks = nil
	k.mu.Unlock()
	return t
}

// streamStats aggregates the server's streaming counters; all fields are
// atomic so the hot path never takes a lock.
type streamStats struct {
	streams     atomic.Int64
	tokens      atomic.Int64
	ttftCount   atomic.Int64
	ttftTotal   atomic.Int64 // nanoseconds
	ttftMax     atomic.Int64 // nanoseconds
	midErrors   atomic.Int64
	disconnects atomic.Int64
}

func (st *streamStats) observeTTFT(d time.Duration) {
	st.ttftCount.Add(1)
	st.ttftTotal.Add(int64(d))
	for {
		max := st.ttftMax.Load()
		if int64(d) <= max || st.ttftMax.CompareAndSwap(max, int64(d)) {
			break
		}
	}
}

// StreamingMetrics is the token-streaming block of the /v1/metrics
// payload. It is present in every configuration — all zeros when no
// stream has run — so dashboards never need mode-aware parsing. TTFT is
// measured from SSE acceptance to the first token event per stream;
// streams that produce no tokens record no TTFT sample.
type StreamingMetrics struct {
	Streams int64 `json:"streams"`
	Tokens  int64 `json:"tokens"`
	// MeanTTFTMS / MaxTTFTMS summarize time-to-first-token over streams
	// that emitted at least one token.
	MeanTTFTMS float64 `json:"mean_ttft_ms"`
	MaxTTFTMS  float64 `json:"max_ttft_ms"`
	// MidStreamErrors counts streams terminated by an explicit error
	// event after the SSE headers were sent.
	MidStreamErrors int64 `json:"mid_stream_errors"`
	// Disconnects counts streams whose client went away mid-decode (the
	// turn is canceled at the next step boundary).
	Disconnects int64 `json:"disconnects"`
}

// wantsStream reports whether the request opted into SSE delivery.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// writeEvent writes one SSE frame and flushes it (a frame held in a
// buffer is a frame the client cannot see — flush is what makes the step
// boundary the delivery boundary).
func writeEvent(w http.ResponseWriter, f http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"httpapi: event marshal failure"}`)
		event = "error"
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	if f != nil {
		f.Flush()
	}
}

// streamTurn drives one turn serially on a pool worker, pushing emitted
// tokens at every step boundary — the unbatched counterpart of the batch
// worker's per-step sink push. The context is checked at each boundary so
// an abandoned stream stops decoding promptly.
func streamTurn(ctx context.Context, start func() (*cocktail.Turn, error), sink *tokenSink) (*cocktail.Result, error) {
	t, err := start()
	if err != nil {
		return nil, err
	}
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		ok := t.Step()
		sink.push(t.Emitted())
		if !ok {
			return t.Result(), nil
		}
	}
}

// pumpSSE is the handler half of a stream: it writes the SSE preamble,
// relays sink batches as token events, and terminates the stream with a
// result or error event once the decode (done) finishes. It always waits
// for done before returning — even after a client disconnect — so callers
// holding the session mutex keep submitWait semantics: the decoding
// worker can never touch the single-owner Session after pumpSSE returns.
func (s *Server) pumpSSE(w http.ResponseWriter, r *http.Request, sink *tokenSink, done <-chan struct{}, result func() (*cocktail.Result, error)) {
	f, _ := w.(http.Flusher)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	if f != nil {
		f.Flush()
	}

	st := &s.streaming
	st.streams.Add(1)
	//cocktail:allow clockinject latency metric, not expiry state: TTFT must reflect real elapsed time even under a fake test clock
	start := time.Now()
	first := true
	emit := func(words []string) {
		if len(words) == 0 {
			return
		}
		if first {
			first = false
			//cocktail:allow clockinject latency metric, not expiry state: pairs with the time.Now above
			st.observeTTFT(time.Since(start))
		}
		st.tokens.Add(int64(len(words)))
		writeEvent(w, f, "token", map[string][]string{"tokens": words})
	}

	clientGone := false
	for {
		if clientGone {
			<-done
		} else {
			select {
			case <-sink.notify:
				emit(sink.drain())
				continue
			case <-r.Context().Done():
				clientGone = true
				st.disconnects.Add(1)
				continue
			case <-done:
			}
		}
		res, err := result()
		// A context error surfaced by the decode means the client went
		// away (the batcher dropped the turn at a step boundary, or the
		// queued job was skipped): nothing left to deliver.
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			if !clientGone {
				st.disconnects.Add(1)
			}
			return
		}
		if clientGone {
			return
		}
		emit(sink.drain())
		if err != nil {
			// The explicit terminal error event: the headers are long
			// gone, so this — not a truncated 200 — is how post-acceptance
			// failures reach the client.
			st.midErrors.Add(1)
			writeEvent(w, f, "error", map[string]string{"error": err.Error()})
			return
		}
		if res == nil {
			return
		}
		writeEvent(w, f, "result", res)
		return
	}
}

// answerStream is the SSE path of POST /v1/answer. Dispatch mirrors the
// buffered handler exactly — batcher when enabled, pool otherwise, same
// warm classification — the only difference is the sink and the SSE pump.
func (s *Server) answerStream(w http.ResponseWriter, r *http.Request, req answerRequest) {
	sink := newTokenSink()
	var (
		item *batchItem
		res  *cocktail.Result
		err  error
		done <-chan struct{}
	)
	// Streams pass the same admission gate as buffered answers (shed
	// before the SSE headers go out, so refusals are plain JSON 503s);
	// they just skip calibration, whose samples come from buffered paths.
	warm := s.sc != nil && s.sc.Cached(req.Context)
	cost := s.sched.estimateAnswer(len(req.Context), warm)
	release, aerr := s.sched.admit(cost)
	if aerr != nil {
		s.poolErr(w, aerr)
		return
	}
	if s.batch != nil {
		item = &batchItem{
			ctx:          r.Context(),
			contextWords: req.Context,
			query:        req.Query,
			warm:         warm,
			sink:         sink,
			tenant:       s.sched.tenant(r),
			costMs:       cost,
			release:      release,
		}
		if perr := s.batch.push(item); perr != nil {
			release()
			s.poolErr(w, perr)
			return
		}
		done = item.done
	} else {
		d, perr := s.enqueue(r.Context(), func() {
			res, err = streamTurn(r.Context(), func() (*cocktail.Turn, error) {
				if s.sc != nil {
					sess, serr := s.sc.Prefill(req.Context)
					if serr != nil {
						return nil, serr
					}
					return sess.StartAnswer(req.Query)
				}
				return s.p.StartAnswer(req.Context, req.Query)
			}, sink)
		})
		if perr != nil {
			release()
			s.poolErr(w, perr)
			return
		}
		// pumpSSE waits for done, so the handler's return marks the
		// decode definitively finished — release then.
		defer release()
		done = d
	}
	s.pumpSSE(w, r, sink, done, func() (*cocktail.Result, error) {
		if item != nil {
			return item.res, item.err
		}
		return res, err
	})
}

// sessionAnswerStream is the SSE path of POST /v1/session/{id}/answer.
// Like the buffered session path, it serializes on the session mutex
// before taking a queue slot and does not release it until the decode has
// definitively finished with the Session (pumpSSE waits for done even
// after a disconnect) — submitWait semantics for the single-owner
// Session.
func (s *Server) sessionAnswerStream(w http.ResponseWriter, r *http.Request, ls *liveSession, query []string) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	sink := newTokenSink()
	var (
		item *batchItem
		res  *cocktail.Result
		err  error
		done <-chan struct{}
	)
	// Same admission gate as the buffered session path: warm by
	// construction, priced decode-only, shed before the SSE preamble.
	cost := s.sched.estimateAnswer(ls.sess.ContextTokens(), true)
	release, aerr := s.sched.admit(cost)
	if aerr != nil {
		s.poolErr(w, aerr)
		return
	}
	if s.batch != nil {
		item = &batchItem{ctx: r.Context(), sess: ls.sess, query: query, warm: true, sink: sink,
			tenant: s.sched.tenant(r), costMs: cost, release: release}
		if perr := s.batch.push(item); perr != nil {
			release()
			s.poolErr(w, perr)
			return
		}
		done = item.done
	} else {
		d, perr := s.enqueue(r.Context(), func() {
			res, err = streamTurn(r.Context(), func() (*cocktail.Turn, error) {
				return ls.sess.StartAnswer(query)
			}, sink)
		})
		if perr != nil {
			release()
			s.poolErr(w, perr)
			return
		}
		// pumpSSE waits for done even after a disconnect, so release at
		// handler return is after the decode finished with the Session.
		defer release()
		done = d
	}
	s.pumpSSE(w, r, sink, done, func() (*cocktail.Result, error) {
		if item != nil {
			return item.res, item.err
		}
		return res, err
	})
}
