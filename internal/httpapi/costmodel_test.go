package httpapi

// Tests for cost-model scheduling: the admission gate's 503s (with a
// predicted-drain Retry-After), the track-only default, the scheduling
// metrics block, per-tenant accounting through the batcher lanes, and
// the byte-identity guarantee — turning the scheduling knobs on must
// never change what a request answers, only whether/when it runs.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	cocktail "repro"
)

// sampleBody fetches a dataset sample via the API and returns an answer
// request body for it plus the decoded sample.
func sampleBody(t *testing.T, url string, seed int) ([]byte, struct{ Context, Query []string }) {
	t.Helper()
	var sample struct{ Context, Query []string }
	if code := getJSON(t, url+"/v1/sample?dataset=Qasper&seed="+strconv.Itoa(seed), &sample); code != 200 {
		t.Fatalf("sample status %d", code)
	}
	body, err := json.Marshal(map[string]any{"context": sample.Context, "query": sample.Query})
	if err != nil {
		t.Fatal(err)
	}
	return body, sample
}

// TestCostAdmissionShedsWithDrainRetryAfter: with the budget armed and
// the gate nearly full, a cold answer whose predicted cost blows the
// drain deadline is shed with 503 and a Retry-After computed from the
// predicted drain (not a constant); after release it is admitted.
func TestCostAdmissionShedsWithDrainRetryAfter(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 8, CostBudgetMs: 50_000})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	body, _ := sampleBody(t, srv.URL, 11)

	// Occupy the gate with 49.9s of predicted work: any cold request
	// (hundreds of predicted ms) now blows the 50s drain deadline.
	release, err := s.sched.admit(49_900)
	if err != nil {
		t.Fatalf("occupying admit: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/answer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// Predicted drain is 49_900ms / 1 worker → ceil to 50s.
	if ra := resp.Header.Get("Retry-After"); ra != "50" {
		t.Fatalf("Retry-After = %q, want \"50\" (predicted drain)", ra)
	}
	release()

	var res struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/answer", json.RawMessage(body), &res); code != 200 {
		t.Fatalf("post-release status %d, want 200", code)
	}
	if len(res.Answer) == 0 {
		t.Fatal("empty answer after release")
	}
	st := s.sched.admission.Stats()
	if st.Shed != 1 || st.Admitted < 2 || st.Inflight != 0 {
		t.Fatalf("admission stats = %+v, want 1 shed, >=2 admitted, drained", st)
	}
}

// TestCostAdmissionDisabledTracksOnly: the default configuration (budget
// 0) admits everything, but still tracks predicted cost — that pricing
// is what Retry-After on depth-full 503s and the metrics block feed on —
// and buffered answers feed the calibration loop.
func TestCostAdmissionDisabledTracksOnly(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 2, QueueDepth: 8})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	body, _ := sampleBody(t, srv.URL, 12)

	var res struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/answer", json.RawMessage(body), &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	sch := m.Scheduling
	if sch.CostAdmission {
		t.Fatal("cost_admission must be off by default")
	}
	if sch.GPU != "NVIDIA A800 80GB" || sch.Model != "Llama2-7B" || sch.Method != "Cocktail" {
		t.Fatalf("cost model identity = %s/%s/%s", sch.GPU, sch.Model, sch.Method)
	}
	if sch.Admission.Admitted < 1 || sch.Admission.Shed != 0 {
		t.Fatalf("track-only admission stats = %+v", sch.Admission)
	}
	if sch.CalibrationPredictedMs <= 0 || sch.CalibrationMeasuredMs <= 0 || sch.CalibrationScale <= 0 {
		t.Fatalf("calibration not fed by the buffered answer: %+v", sch)
	}
}

// TestDepthFull503CarriesDrainRetryAfter: classic queue saturation (no
// cost budget) now advertises a computed Retry-After too — at least the
// 1s clamp floor, an integer either way.
func TestDepthFull503CarriesDrainRetryAfter(t *testing.T) {
	// BatchMax 1 disables the batcher so /v1/answer dispatches through
	// the saturated worker pool.
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 1, BatchMax: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	body, _ := sampleBody(t, srv.URL, 13)

	release := make(chan struct{})
	released := false
	releaseWorker := func() {
		if !released {
			released = true
			close(release)
		}
	}
	t.Cleanup(releaseWorker)
	running := make(chan struct{})
	go s.submit(context.Background(), func() {
		close(running)
		<-release
	})
	<-running
	queued := make(chan error, 1)
	go func() {
		queued <- s.submit(context.Background(), func() {})
	}()
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/v1/answer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || sec < 1 || sec > 600 {
		t.Fatalf("Retry-After = %q, want an integer in [1,600]",
			resp.Header.Get("Retry-After"))
	}
	releaseWorker()
	if err := <-queued; err != nil {
		t.Fatalf("queued submit failed: %v", err)
	}
}

// TestTenantAccountingThroughBatcher: with a tenant header configured
// and batching on, per-tenant served cost shows up in the scheduling
// metrics block, keyed by the header value (missing header = implicit
// "" tenant).
func TestTenantAccountingThroughBatcher(t *testing.T) {
	s := NewServer(testPipeline(t), Options{
		Workers: 1, QueueDepth: 16, BatchMax: 4, BatchWindow: time.Millisecond,
		TenantHeader: "X-Tenant"})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	body, _ := sampleBody(t, srv.URL, 14)

	post := func(tenant string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/answer", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("tenant %q: status %d", tenant, resp.StatusCode)
		}
	}
	post("acme")
	post("globex")
	post("") // implicit tenant

	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.Scheduling.TenantHeader != "X-Tenant" {
		t.Fatalf("tenant_header = %q", m.Scheduling.TenantHeader)
	}
	served := map[string]int64{}
	for _, ts := range m.Scheduling.Tenants {
		served[ts.Tenant] = ts.Served
		if ts.Served > 0 && ts.ServedMs <= 0 {
			t.Fatalf("tenant %q served %d requests at zero predicted cost", ts.Tenant, ts.Served)
		}
	}
	for _, want := range []string{"acme", "globex", ""} {
		if served[want] != 1 {
			t.Fatalf("tenant %q served = %d, want 1 (%+v)", want, served[want], m.Scheduling.Tenants)
		}
	}
}

// TestSchedulingKnobsPreserveAnswers: the same request answered with
// every scheduling knob on (tenancy, a generous cost budget, batching)
// is byte-identical to the default server's answer — scheduling decides
// whether/when work runs, never what it computes.
func TestSchedulingKnobsPreserveAnswers(t *testing.T) {
	p := testPipeline(t)
	plain := NewServer(p, Options{Workers: 1, QueueDepth: 8})
	t.Cleanup(plain.Close)
	tuned := NewServer(p, Options{
		Workers: 2, QueueDepth: 8, BatchMax: 4, BatchWindow: time.Millisecond,
		TenantHeader: "X-Tenant", CostBudgetMs: 600_000})
	t.Cleanup(tuned.Close)
	srvPlain, srvTuned := httptest.NewServer(plain), httptest.NewServer(tuned)
	t.Cleanup(srvPlain.Close)
	t.Cleanup(srvTuned.Close)

	body, _ := sampleBody(t, srvPlain.URL, 15)
	var want, got cocktail.Result
	if code := postJSON(t, srvPlain.URL+"/v1/answer", json.RawMessage(body), &want); code != 200 {
		t.Fatalf("plain status %d", code)
	}
	req, err := http.NewRequest(http.MethodPost, srvTuned.URL+"/v1/answer", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("tuned status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scheduling knobs changed the answer\n got: %+v\nwant: %+v", got, want)
	}
}

// TestSessionPathsPriceDecodeOnly: session answers are warm by
// construction; their predicted cost must be well under a cold answer's
// (no prefill term), which is the property that makes shedding prefer
// cheap-to-keep work.
func TestSessionPathsPriceDecodeOnly(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 8})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	_, sample := sampleBody(t, srv.URL, 16)

	cold := s.sched.estimateAnswer(len(sample.Context), false)
	warm := s.sched.estimateAnswer(len(sample.Context), true)
	if !(warm > 0 && cold > warm) {
		t.Fatalf("cold=%v warm=%v: warm must be positive and strictly cheaper", cold, warm)
	}
	if pre := s.sched.estimatePrefill(len(sample.Context), true); pre != 0 {
		t.Fatalf("cached session create priced %v, want 0", pre)
	}
	if pre := s.sched.estimatePrefill(len(sample.Context), false); pre <= 0 {
		t.Fatalf("cold session create priced %v, want > 0", pre)
	}

	// End to end: create a session and answer through it; the admission
	// tracker must drain back to zero (release exactly once per path).
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatalf("create status %d", code)
	}
	var res struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
		map[string]any{"query": sample.Query}, &res); code != 200 {
		t.Fatalf("session answer status %d", code)
	}
	if st := s.sched.admission.Stats(); st.Inflight != 0 || st.InflightMs != 0 {
		t.Fatalf("admission not drained after session flow: %+v", st)
	}
}

// TestStreamShedsBeforeHeaders: a stream refused by the cost gate gets
// the plain JSON 503 (with Retry-After), never SSE headers.
func TestStreamShedsBeforeHeaders(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 8, CostBudgetMs: 10_000})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	body, _ := sampleBody(t, srv.URL, 17)

	release, err := s.sched.admit(9_990)
	if err != nil {
		t.Fatalf("occupying admit: %v", err)
	}
	defer release()
	resp, err := http.Post(srv.URL+"/v1/answer?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want JSON (not SSE)", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "10" {
		t.Fatalf("Retry-After = %q, want \"10\"", ra)
	}
}
