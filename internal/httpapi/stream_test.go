package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	cocktail "repro"
)

// streamResult is one consumed SSE stream: every token event's payload
// in order, the terminal result (nil if none) and the terminal error
// message (empty if none).
type streamResult struct {
	tokens []string
	result *cocktail.Result
	errMsg string
}

// consumeSSE reads an already-opened SSE response to the end, enforcing
// the framing contract (event/data lines, blank-line terminated; only
// token, result and error events).
func consumeSSE(t *testing.T, resp *http.Response) streamResult {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	var (
		out   streamResult
		event string
		data  []byte
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "token":
				var tok struct {
					Tokens []string `json:"tokens"`
				}
				if err := json.Unmarshal(data, &tok); err != nil {
					t.Fatalf("token event payload: %v", err)
				}
				out.tokens = append(out.tokens, tok.Tokens...)
			case "result":
				out.result = new(cocktail.Result)
				if err := json.Unmarshal(data, out.result); err != nil {
					t.Fatalf("result event payload: %v", err)
				}
			case "error":
				var msg struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(data, &msg); err != nil {
					t.Fatalf("error event payload: %v", err)
				}
				out.errMsg = msg.Error
			case "":
			default:
				t.Fatalf("unknown SSE event %q", event)
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// postStream opens a streaming answer call and consumes it fully.
func postStream(t *testing.T, url string, payload any) streamResult {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	return consumeSSE(t, resp)
}

// TestStreamMatchesBuffered: the SSE path must be byte-identical to the
// buffered path — token concatenation equals the buffered Answer, and
// the terminal result event carries the full Result — in both execution
// modes (continuous batcher and plain pool).
func TestStreamMatchesBuffered(t *testing.T) {
	p := testPipeline(t)
	sample, err := p.NewSample("Qasper", 11)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(sample.Context, sample.Query)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{}},
		{"unbatched", Options{BatchMax: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := NewServer(p, mode.opts)
			t.Cleanup(s.Close)
			srv := httptest.NewServer(s)
			t.Cleanup(srv.Close)
			payload := map[string]any{"context": sample.Context, "query": sample.Query}

			var buffered cocktail.Result
			if code := postJSON(t, srv.URL+"/v1/answer", payload, &buffered); code != 200 {
				t.Fatalf("buffered status %d", code)
			}
			got := postStream(t, srv.URL+"/v1/answer", payload)
			if got.errMsg != "" {
				t.Fatalf("stream error: %s", got.errMsg)
			}
			if !reflect.DeepEqual(got.tokens, buffered.Answer) {
				t.Fatalf("streamed tokens diverged from buffered answer\nstream: %v\nbuffer: %v",
					got.tokens, buffered.Answer)
			}
			if got.result == nil || !reflect.DeepEqual(got.result, &buffered) {
				t.Fatalf("result event diverged from buffered result: %+v", got.result)
			}
			if !reflect.DeepEqual(got.tokens, cold.Answer) {
				t.Fatal("streamed tokens diverged from the serial cold answer")
			}

			// Accept: text/event-stream is the header spelling of the same
			// opt-in.
			body, _ := json.Marshal(payload)
			req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/answer", bytes.NewReader(body))
			req.Header.Set("Accept", "text/event-stream")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			viaHeader := consumeSSE(t, resp)
			if !reflect.DeepEqual(viaHeader.tokens, cold.Answer) {
				t.Fatal("Accept-header stream diverged")
			}

			var m Metrics
			getJSON(t, srv.URL+"/v1/metrics", &m)
			st := m.Streaming
			if st.Streams != 2 || st.Tokens != int64(2*len(cold.Answer)) {
				t.Fatalf("streaming metrics: %+v", st)
			}
			if len(cold.Answer) > 0 && (st.MeanTTFTMS <= 0 || st.MaxTTFTMS < st.MeanTTFTMS) {
				t.Fatalf("TTFT metrics implausible: %+v", st)
			}
			if st.MidStreamErrors != 0 || st.Disconnects != 0 {
				t.Fatalf("unexpected stream failures: %+v", st)
			}
		})
	}
}

// TestSessionStreamMatchesBuffered: the session answer endpoint streams
// too, warm path included, byte-identical to its buffered counterpart.
func TestSessionStreamMatchesBuffered(t *testing.T) {
	p := testPipeline(t)
	srv := testServer(t)
	sample, err := p.NewSample("QMSum", 13)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(sample.Context, sample.Query)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create session failed")
	}
	url := srv.URL + "/v1/session/" + info.SessionID + "/answer"
	payload := map[string]any{"query": sample.Query}
	// First call seals fresh, second hits the seal memo — both must
	// stream the cold answer.
	for call := 0; call < 2; call++ {
		got := postStream(t, url, payload)
		if got.errMsg != "" {
			t.Fatalf("call %d: stream error: %s", call, got.errMsg)
		}
		if !reflect.DeepEqual(got.tokens, cold.Answer) {
			t.Fatalf("call %d: session stream diverged from cold", call)
		}
	}
	var buffered cocktail.Result
	if code := postJSON(t, url, payload, &buffered); code != 200 {
		t.Fatal("buffered session answer failed")
	}
	if !reflect.DeepEqual(buffered.Answer, cold.Answer) {
		t.Fatal("buffered session answer diverged after streams")
	}
}

// TestDisableStreaming: with Options.DisableStreaming the opt-in is
// ignored and ?stream=1 gets the ordinary buffered JSON body.
func TestDisableStreaming(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{DisableStreaming: true})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	sample, err := p.NewSample("TREC", 17)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"context": sample.Context, "query": sample.Query})
	resp, err := http.Post(srv.URL+"/v1/answer?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("disabled streaming still produced %q", ct)
	}
	var res cocktail.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	cold, err := p.Answer(sample.Context, sample.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Answer, cold.Answer) {
		t.Fatal("buffered fallback diverged")
	}
}

// TestStreamErrorEventAfterHeaders is the mid-stream failure regression:
// once a stream is accepted the SSE headers are already written, so a
// post-acceptance failure (here: out-of-vocabulary words, which fail in
// the worker, not at decode time of the handler) must surface as a
// terminal error event on a 200 stream — never a silently truncated
// body — and must be counted in the streaming metrics. Both execution
// modes.
func TestStreamErrorEventAfterHeaders(t *testing.T) {
	p := testPipeline(t)
	sample, err := p.NewSample("Qasper", 19)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{}},
		{"unbatched", Options{BatchMax: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s := NewServer(p, mode.opts)
			t.Cleanup(s.Close)
			srv := httptest.NewServer(s)
			t.Cleanup(srv.Close)
			got := postStream(t, srv.URL+"/v1/answer", map[string]any{
				"context": sample.Context, "query": []string{"zzz-not-in-vocabulary"}})
			if got.errMsg == "" {
				t.Fatalf("want terminal error event, got tokens=%v result=%+v", got.tokens, got.result)
			}
			if !strings.Contains(got.errMsg, "vocabulary") {
				t.Fatalf("error event diagnostic: %q", got.errMsg)
			}
			if got.result != nil {
				t.Fatal("error stream must not also carry a result event")
			}
			var m Metrics
			getJSON(t, srv.URL+"/v1/metrics", &m)
			if m.Streaming.MidStreamErrors != 1 {
				t.Fatalf("mid_stream_errors = %d, want 1", m.Streaming.MidStreamErrors)
			}
		})
	}
}

// TestStreamQueueFullStaysJSON: load shedding happens before acceptance,
// so a saturated queue must still answer a streaming request with the
// plain JSON 503 — headers not yet sent, no half-open SSE stream. The
// pool is saturated deterministically (a blocked worker plus a full
// queue), mirroring TestQueueSaturation.
func TestStreamQueueFullStaysJSON(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 1, QueueDepth: 1, BatchMax: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	sample, err := p.NewSample("Qasper", 23)
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	released := false
	releaseWorker := func() {
		if !released {
			released = true
			close(release)
		}
	}
	// The drain below must run before s.Close: the queued filler's
	// enqueue send has no other happens-before edge to Close's
	// close(s.jobs), and Close may not fire while a submit is in flight.
	queued := make(chan error, 1)
	t.Cleanup(func() { releaseWorker(); <-queued })
	running := make(chan struct{})
	go s.submit(context.Background(), func() {
		close(running)
		<-release
	})
	<-running // worker occupied
	go func() { queued <- s.submit(context.Background(), func() {}) }()
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond) // queue slot occupied
	}

	body, _ := json.Marshal(map[string]any{"context": sample.Context, "query": sample.Query})
	resp, err := http.Post(srv.URL+"/v1/answer?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed stream status %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("shed response content-type %q, want JSON", ct)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil || msg.Error == "" {
		t.Fatalf("shed response not the JSON error body: %v %q", err, msg.Error)
	}
}

// TestStreamDisconnectCancelsWithoutPerturbingBatchmates hammers the
// cancellation path under -race: streams whose clients vanish mid-decode
// must be dropped at a step boundary while concurrently batched requests
// keep producing byte-identical results. Whether a given cancel lands
// mid-decode or after the (fast) decode already finished is a real race
// — both outcomes must be harmless; the disconnect counter itself is
// pinned deterministically by TestStreamDisconnectCounted.
func TestStreamDisconnectCancelsWithoutPerturbingBatchmates(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 4, QueueDepth: 64, BatchMax: 8})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	victim, err := p.NewSample("Qasper", 29)
	if err != nil {
		t.Fatal(err)
	}
	mate, err := p.NewSample("QMSum", 30)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Answer(mate.Context, mate.Query)
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	for i := 0; i < rounds; i++ {
		// The victim stream: read until the first token event, then hang
		// up mid-decode.
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			body, _ := json.Marshal(map[string]any{"context": victim.Context, "query": victim.Query})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				srv.URL+"/v1/answer?stream=1", bytes.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "event: token") {
					cancel() // first token seen: vanish mid-stream
					return
				}
			}
		}()
		// The batchmate: a buffered answer sharing the batch; must be
		// byte-identical to serial truth no matter what the victim does.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res cocktail.Result
			code := postJSON(t, srv.URL+"/v1/answer",
				map[string]any{"context": mate.Context, "query": mate.Query}, &res)
			if code != 200 {
				errs <- fmt.Errorf("batchmate %d: status %d", i, code)
				return
			}
			if !reflect.DeepEqual(res.Answer, want.Answer) {
				errs <- fmt.Errorf("batchmate %d diverged after a neighbor disconnect", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Whatever the cancels did, no stream may have been misclassified as
	// a server-side failure.
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.Streaming.MidStreamErrors != 0 {
		t.Errorf("disconnect hammer produced error events: %+v", m.Streaming)
	}
}

// TestStreamDisconnectCounted pins the disconnect counter without racing
// the decode: the single worker is occupied, so an accepted stream is
// parked in the queue with its SSE headers already written. Cancelling
// that client MUST be observed as a disconnect (pumpSSE's context arm is
// the only way forward), and once the worker frees up the abandoned
// decode is skipped — one disconnect, no error event, a healthy server.
func TestStreamDisconnectCounted(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 1, QueueDepth: 4, BatchMax: 1, SessionCacheMB: -1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	sample, err := p.NewSample("Qasper", 35)
	if err != nil {
		t.Fatal(err)
	}

	running := make(chan struct{})
	release := make(chan struct{})
	var releaseOnce sync.Once
	free := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(free)
	go s.submit(context.Background(), func() {
		close(running)
		<-release
	})
	<-running // worker occupied: the stream below cannot start decoding

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body, _ := json.Marshal(map[string]any{"context": sample.Context, "query": sample.Query})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/answer?stream=1", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("queued stream not accepted as SSE: %d %q",
			resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	cancel() // vanish while queued, headers long written

	// The server notices the dead connection asynchronously; poll rather
	// than sleeping blind. Reaching the counter is guaranteed — the decode
	// cannot have finished first, its worker is still blocked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var m Metrics
		getJSON(t, srv.URL+"/v1/metrics", &m)
		if m.Streaming.Disconnects == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect never recorded: %+v", m.Streaming)
		}
		time.Sleep(5 * time.Millisecond)
	}

	free() // the abandoned decode is skipped; the worker recovers
	var res cocktail.Result
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res); code != 200 {
		t.Fatalf("server unhealthy after disconnect: status %d", code)
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.Streaming.Disconnects != 1 || m.Streaming.MidStreamErrors != 0 {
		t.Fatalf("final streaming counters: %+v", m.Streaming)
	}
}

// TestSessionAppendEndpoint: POST /v1/session/{id}/append grows the
// context, reports the grown token count, and subsequent answers are
// byte-identical to a cold Answer over the concatenation.
func TestSessionAppendEndpoint(t *testing.T) {
	p := testPipeline(t)
	srv := testServer(t)
	sample, err := p.NewSample("Qasper", 33)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := p.NewSample("Qasper", 34)
	if err != nil {
		t.Fatal(err)
	}
	chunk := extra.Context[:24]
	concat := append(append([]string{}, sample.Context...), chunk...)
	want, err := p.Answer(concat, sample.Query)
	if err != nil {
		t.Fatal(err)
	}

	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create session failed")
	}
	var grown SessionInfo
	code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/append",
		map[string]any{"context": chunk}, &grown)
	if code != 200 {
		t.Fatalf("append status %d", code)
	}
	if grown.SessionID != info.SessionID || grown.ContextTokens <= info.ContextTokens {
		t.Fatalf("append info: %+v (was %+v)", grown, info)
	}
	var res cocktail.Result
	if code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
		map[string]any{"query": sample.Query}, &res); code != 200 {
		t.Fatal("post-append answer failed")
	}
	if !reflect.DeepEqual(res.Answer, want.Answer) {
		t.Fatal("post-append answer diverged from cold concat")
	}
	// The streamed spelling agrees too.
	got := postStream(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
		map[string]any{"query": sample.Query})
	if got.errMsg != "" || !reflect.DeepEqual(got.tokens, want.Answer) {
		t.Fatalf("post-append stream diverged: err=%q tokens=%v", got.errMsg, got.tokens)
	}
}

// TestSessionAppendErrorTable sweeps the append endpoint's error
// surface: the documented status per failure, and — for the 4xx rows on
// a live session — proof the session survives unperturbed.
func TestSessionAppendErrorTable(t *testing.T) {
	p, err := cocktail.New(cocktail.Config{MaxSeq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	s := NewServer(p, Options{SessionTTL: time.Minute, Now: clk.Now})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	sample, err := p.NewSample("Qasper", 35)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Answer(sample.Context, sample.Query)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create session failed")
	}
	appendURL := srv.URL + "/v1/session/" + info.SessionID + "/append"

	// An overflow chunk: context (~512) + 600 + decode budget > 1024.
	overflow := make([]string, 0, 600)
	for len(overflow) < 600 {
		overflow = append(overflow, sample.Context...)
	}
	overflow = overflow[:600]

	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"unknown-session", srv.URL + "/v1/session/nope/append", map[string]any{"context": []string{"a"}}, 404},
		{"malformed-body", appendURL, "not json", 400},
		{"unknown-word", appendURL, map[string]any{"context": []string{"zzz-not-in-vocabulary"}}, 422},
		{"maxseq-overflow", appendURL, map[string]any{"context": overflow}, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body []byte
			if s, ok := tc.body.(string); ok {
				body = []byte(s)
			} else {
				body, _ = json.Marshal(tc.body)
			}
			resp, err := http.Post(tc.url, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			// The live session is untouched: same token count, same answer.
			var res cocktail.Result
			if code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
				map[string]any{"query": sample.Query}, &res); code != 200 {
				t.Fatalf("session unusable after failed append: status %d", code)
			}
			if !reflect.DeepEqual(res.Answer, want.Answer) {
				t.Fatal("session answer perturbed by failed append")
			}
		})
	}

	// TTL-expired session: append must 404 like every other access.
	clk.Advance(2 * time.Minute)
	body, _ := json.Marshal(map[string]any{"context": []string{"a"}})
	resp, err := http.Post(appendURL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired append status %d, want 404", resp.StatusCode)
	}
}

// TestSessionAppendUpdatesByteAccounting: the registry's byte accounting
// must track the grown prefill footprint, not the open-time size, and a
// session grown past the byte budget must evict the LRU neighbors —
// never itself.
func TestSessionAppendUpdatesByteAccounting(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{SessionCacheMB: 1}) // 1 MiB registry budget
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	sample, err := p.NewSample("Qasper", 39)
	if err != nil {
		t.Fatal(err)
	}

	registryBytes := func() int64 {
		s.sessions.mu.Lock()
		defer s.sessions.mu.Unlock()
		return s.sessions.bytes
	}

	// Two small sessions fit the budget comfortably.
	open := func(n int) SessionInfo {
		var info SessionInfo
		if code := postJSON(t, srv.URL+"/v1/session",
			map[string]any{"context": sample.Context[:n]}, &info); code != 200 {
			t.Fatalf("create session failed: %d", code)
		}
		return info
	}
	victim := open(256)
	grower := open(256)
	before := registryBytes()

	// Grow the second session far past the 1 MiB budget: its resize must
	// raise the accounted bytes and evict the idle victim, not itself.
	chunk := make([]string, 0, 1400)
	for len(chunk) < 1400 {
		chunk = append(chunk, sample.Context...)
	}
	var grown SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session/"+grower.SessionID+"/append",
		map[string]any{"context": chunk[:1400]}, &grown); code != 200 {
		t.Fatalf("append failed: %d", code)
	}
	if grown.ContextTokens != 256+1400 {
		t.Fatalf("grown token count %d", grown.ContextTokens)
	}
	if after := registryBytes(); after <= before {
		t.Fatalf("registry bytes did not grow: %d -> %d", before, after)
	}
	var res cocktail.Result
	if code := postJSON(t, srv.URL+"/v1/session/"+grower.SessionID+"/answer",
		map[string]any{"query": sample.Query}, &res); code != 200 {
		t.Fatalf("grown session must survive its own resize: %d", code)
	}
	body, _ := json.Marshal(map[string]any{"query": sample.Query})
	resp, err := http.Post(srv.URL+"/v1/session/"+victim.SessionID+"/answer",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("LRU victim status %d, want 404 after byte-budget eviction", resp.StatusCode)
	}
}
