package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/costsched"

	cocktail "repro"
)

// batchPipeline is a small-sequence pipeline (256-token contexts) so the
// batching tests hammer scheduling, not prefill arithmetic.
func batchPipeline(t *testing.T) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{MaxSeq: 512})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func batchSample(t *testing.T, p *cocktail.Pipeline, seed uint64) *cocktail.Sample {
	t.Helper()
	s, err := p.NewSample("Qasper", seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBatcherCoalesceSharesPrefill drives the scheduler directly: eight
// items pushed while one worker holds its collect window must form a
// single batch, pay each distinct context's prefill once, interleave
// session turns next to cold turns — and every output must be
// byte-identical to the serial Answer path.
func TestBatcherCoalesceSharesPrefill(t *testing.T) {
	p := batchPipeline(t)
	s1, s2, s3 := batchSample(t, p, 1), batchSample(t, p, 2), batchSample(t, p, 3)
	s := NewServer(p, Options{
		Workers: 1, QueueDepth: 16, BatchMax: 8, BatchWindow: 300 * time.Millisecond})
	defer s.Close()

	sess, err := p.Prefill(s3.Context)
	if err != nil {
		t.Fatal(err)
	}
	type job struct {
		item *batchItem
		want *cocktail.Result
	}
	var jobs []job
	addAnswer := func(sm *cocktail.Sample) {
		want, err := p.Answer(sm.Context, sm.Query)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{
			item: &batchItem{ctx: context.Background(), contextWords: sm.Context, query: sm.Query},
			want: want,
		})
	}
	// Six cold answers over two distinct contexts plus two session turns
	// over a third: 8 turns, 3 unique prefills.
	for i := 0; i < 3; i++ {
		addAnswer(s1)
		addAnswer(s2)
	}
	for i := 0; i < 2; i++ {
		want, err := p.Answer(s3.Context, s3.Query)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{
			item: &batchItem{ctx: context.Background(), sess: sess, query: s3.Query, warm: true},
			want: want,
		})
	}
	for _, j := range jobs {
		if err := s.batch.push(j.item); err != nil {
			t.Fatal(err)
		}
	}
	for i, j := range jobs {
		<-j.item.done
		if j.item.err != nil {
			t.Fatalf("item %d: %v", i, j.item.err)
		}
		if !reflect.DeepEqual(j.item.res, j.want) {
			t.Fatalf("item %d diverged from serial Answer\n got: %+v\nwant: %+v", i, j.item.res, j.want)
		}
	}

	m := s.Snapshot().Batching
	if !m.Enabled || m.BatchMax != 8 {
		t.Fatalf("batching block misconfigured: %+v", m)
	}
	if m.Batches != 1 || m.BatchedRequests != 8 || m.MeanBatch != 8 || m.MaxBatch != 8 {
		t.Fatalf("expected one batch of 8, got %+v", m)
	}
	// 6 answers over 2 contexts share 4 prefills; the session items bring
	// their own pinned prefill and share nothing through the batch map.
	if m.SharedPrefills != 4 {
		t.Fatalf("shared_prefills = %d, want 4: %+v", m.SharedPrefills, m)
	}
	if m.QueueLen != 0 {
		t.Fatalf("queue not drained: %+v", m)
	}
}

// TestBatcherCancellationDoesNotPoisonBatchmates: two of four batchmates
// are canceled while the batch is still collecting/decoding (the 300ms
// window makes "still running at 5ms" certain); the survivors' outputs
// must stay byte-identical and the canceled items must surface their
// context error.
func TestBatcherCancellationDoesNotPoisonBatchmates(t *testing.T) {
	p := batchPipeline(t)
	s1, s2 := batchSample(t, p, 4), batchSample(t, p, 5)
	want1, err := p.Answer(s1.Context, s1.Query)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(p, Options{
		Workers: 1, QueueDepth: 16, BatchMax: 4, BatchWindow: 300 * time.Millisecond})
	defer s.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	items := []*batchItem{
		{ctx: context.Background(), contextWords: s1.Context, query: s1.Query},
		{ctx: ctx1, contextWords: s2.Context, query: s2.Query},
		{ctx: ctx2, contextWords: s2.Context, query: s2.Query},
		{ctx: context.Background(), contextWords: s1.Context, query: s1.Query},
	}
	for _, it := range items {
		if err := s.batch.push(it); err != nil {
			t.Fatal(err)
		}
	}
	// No turn can finish before the collect window closes, so these land
	// mid-batch by construction.
	time.Sleep(5 * time.Millisecond)
	cancel1()
	cancel2()
	for _, it := range items {
		<-it.done
	}
	for _, i := range []int{0, 3} {
		if items[i].err != nil {
			t.Fatalf("survivor %d: %v", i, items[i].err)
		}
		if !reflect.DeepEqual(items[i].res, want1) {
			t.Fatalf("survivor %d diverged after batchmate cancellation\n got: %+v\nwant: %+v",
				i, items[i].res, want1)
		}
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(items[i].err, context.Canceled) {
			t.Fatalf("canceled item %d: err = %v, want context.Canceled", i, items[i].err)
		}
	}
	if m := s.Snapshot().Batching; m.Canceled != 2 {
		t.Fatalf("canceled = %d, want 2: %+v", m.Canceled, m)
	}
	// The batch survives cancellation for future work too.
	it := &batchItem{ctx: context.Background(), contextWords: s1.Context, query: s1.Query}
	if err := s.batch.push(it); err != nil {
		t.Fatal(err)
	}
	<-it.done
	if it.err != nil || !reflect.DeepEqual(it.res, want1) {
		t.Fatalf("post-cancel request diverged: res=%+v err=%v", it.res, it.err)
	}
}

// TestBatcherLanesAndSaturation unit-tests the two-lane queue: capacity
// rejection, warm-first dispatch, cold refusal outside the deadline
// budget (marked deferred exactly once, token restored), and the
// age-based anti-starvation that lets an old cold request outrank warm
// arrivals at seed time.
func TestBatcherLanesAndSaturation(t *testing.T) {
	clock := newFakeClock()
	s := &Server{opts: Options{Workers: 1, QueueDepth: 3, Now: clock.Now}.withDefaults(),
		stop: make(chan struct{})}
	defer close(s.stop)
	// Hand-built so no workers race the pops.
	b := &batcher{s: s, max: 8, window: 2 * time.Millisecond,
		budget: 16 * time.Millisecond, limit: 3, ready: make(chan struct{}, 3),
		warmQ: costsched.NewQueue[*batchItem](costsched.DefaultQuantumMs),
		coldQ: costsched.NewQueue[*batchItem](costsched.DefaultQuantumMs)}

	mk := func(warm bool) *batchItem {
		return &batchItem{ctx: context.Background(), warm: warm}
	}
	c1, w1, c2 := mk(false), mk(true), mk(false)
	for _, it := range []*batchItem{c1, w1, c2} {
		if err := b.push(it); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.push(mk(false)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push at capacity: err = %v, want ErrQueueFull", err)
	}
	if n := b.queueLen(); n != 3 {
		t.Fatalf("queueLen = %d, want 3", n)
	}

	if it := b.tryPop(true); it != w1 {
		t.Fatalf("warm item should dispatch first, got %+v", it)
	}
	// Cold-only queue, cold not admissible: refuse, defer once, restore
	// the token so the item stays poppable.
	if it := b.tryPop(false); it != nil {
		t.Fatalf("cold item dispatched past the deadline budget: %+v", it)
	}
	if !c1.deferred || b.coldDeferrals.Load() != 1 {
		t.Fatalf("cold head not deferred exactly once: deferred=%v count=%d",
			c1.deferred, b.coldDeferrals.Load())
	}
	if it := b.tryPop(false); it != nil || b.coldDeferrals.Load() != 1 {
		t.Fatalf("second refusal must not re-count: item=%v count=%d", it, b.coldDeferrals.Load())
	}
	if it := b.tryPop(true); it != c1 {
		t.Fatalf("deferred cold item lost, got %+v", it)
	}

	// Anti-starvation: once c2 has waited past the budget, it outranks a
	// fresh warm arrival even though the warm lane normally wins.
	clock.Advance(17 * time.Millisecond)
	w2 := mk(true)
	if err := b.push(w2); err != nil {
		t.Fatal(err)
	}
	if it := b.tryPop(true); it != c2 {
		t.Fatalf("aged cold item should outrank warm, got %+v", it)
	}
	if it := b.tryPop(true); it != w2 {
		t.Fatalf("expected the warm item last, got %+v", it)
	}
	if it := b.tryPop(true); it != nil {
		t.Fatalf("queue should be empty, got %+v", it)
	}
}

// TestBatchingDisabledLegacyPath: BatchMax 1 restores direct pool
// dispatch — no batcher is built, answers still serve correctly, and the
// metrics block reports batching disabled with zeroed counters.
func TestBatchingDisabledLegacyPath(t *testing.T) {
	p := batchPipeline(t)
	sm := batchSample(t, p, 6)
	want, err := p.Answer(sm.Context, sm.Query)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(p, Options{BatchMax: -1})
	defer s.Close()
	if s.batch != nil {
		t.Fatal("batcher built despite BatchMax disabling it")
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	var res cocktail.Result
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sm.Context, "query": sm.Query}, &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if strings.Join(res.Answer, " ") != strings.Join(want.Answer, " ") {
		t.Fatalf("legacy path diverged: %q != %q", res.Answer, want.Answer)
	}
	m := s.Snapshot().Batching
	if m.Enabled || m.Batches != 0 || m.BatchedRequests != 0 {
		t.Fatalf("disabled batching block should be zeroed: %+v", m)
	}
}

// TestBatchedMixedHammer fires concurrent answer + session-answer +
// DELETE traffic with mid-flight client cancellations through the real
// HTTP surface; run under -race this is the serve-path half of the
// cancellation satellite. Every 200 must carry byte-identical output no
// matter which batch it rode in or which batchmates died beside it.
func TestBatchedMixedHammer(t *testing.T) {
	p := batchPipeline(t)
	samples := []*cocktail.Sample{
		batchSample(t, p, 10), batchSample(t, p, 11), batchSample(t, p, 12)}
	want := make(map[string]string, len(samples))
	for _, sm := range samples {
		res, err := p.Answer(sm.Context, sm.Query)
		if err != nil {
			t.Fatal(err)
		}
		want[strings.Join(sm.Context, " ")] = strings.Join(res.Answer, " ")
	}
	s := NewServer(p, Options{
		Workers: 2, QueueDepth: 32, BatchMax: 4, BatchWindow: 10 * time.Millisecond})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	// One long-lived session per sample for the session-answer mix.
	sids := make([]string, len(samples))
	for i, sm := range samples {
		var info SessionInfo
		if code := postJSON(t, srv.URL+"/v1/session",
			map[string]any{"context": sm.Context}, &info); code != 200 {
			t.Fatalf("session create status %d", code)
		}
		sids[i] = info.SessionID
	}

	client := srv.Client()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	post := func(ctx context.Context, url string, body map[string]any, wantAnswer string) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			// Client-side cancellation is an expected outcome here.
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		defer resp.Body.Close()
		var res cocktail.Result
		if resp.StatusCode != http.StatusOK {
			if ctx.Err() != nil || resp.StatusCode == http.StatusRequestTimeout {
				return nil
			}
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if got := strings.Join(res.Answer, " "); got != wantAnswer {
			return fmt.Errorf("%s: output diverged under the hammer: %q != %q", url, got, wantAnswer)
		}
		return nil
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			sm := samples[i%len(samples)]
			wg.Add(1)
			go func(i int, sm *cocktail.Sample) {
				defer wg.Done()
				ctx := context.Background()
				if i%3 == 0 {
					// A third of the answers die mid-batch.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(3+i)*time.Millisecond)
					defer cancel()
				}
				errc <- post(ctx, srv.URL+"/v1/answer",
					map[string]any{"context": sm.Context, "query": sm.Query},
					want[strings.Join(sm.Context, " ")])
			}(i, sm)
		}
		for i := 0; i < 2; i++ {
			idx := (round + i) % len(samples)
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				errc <- post(context.Background(),
					srv.URL+"/v1/session/"+sids[idx]+"/answer",
					map[string]any{"query": samples[idx].Query},
					want[strings.Join(samples[idx].Context, " ")])
			}(idx)
		}
		// Churn an unrelated session with create+DELETE in the same mix.
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			var info SessionInfo
			sm := samples[round%len(samples)]
			if code := postJSON(t, srv.URL+"/v1/session",
				map[string]any{"context": sm.Context}, &info); code != 200 {
				errc <- fmt.Errorf("churn session create status %d", code)
				return
			}
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/session/"+info.SessionID, nil)
			resp, err := client.Do(req)
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNoContent {
				errc <- fmt.Errorf("churn DELETE status %d", resp.StatusCode)
				return
			}
			errc <- nil
		}(round)
		wg.Wait()
	}
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The server stays fully serviceable after the hammer.
	for _, sm := range samples {
		var res cocktail.Result
		if code := postJSON(t, srv.URL+"/v1/answer",
			map[string]any{"context": sm.Context, "query": sm.Query}, &res); code != 200 {
			t.Fatalf("post-hammer status %d", code)
		}
		if got := strings.Join(res.Answer, " "); got != want[strings.Join(sm.Context, " ")] {
			t.Fatalf("post-hammer output diverged: %q", got)
		}
	}
}

// TestBatchedExpiryAdmissionRace extends the sessioncache expiry/
// admission race to the batched serve path: concurrent batched answers
// and session churn race TTL expiry driven by a fake clock, under the
// per-kind A1 admission machinery — and after a final sweep the byte
// accounting must drain to zero, exactly like the store-level test.
func TestBatchedExpiryAdmissionRace(t *testing.T) {
	p := batchPipeline(t)
	samples := make([]*cocktail.Sample, 4)
	want := make([]string, len(samples))
	for i := range samples {
		samples[i] = batchSample(t, p, uint64(20+i))
		res, err := p.Answer(samples[i].Context, samples[i].Query)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = strings.Join(res.Answer, " ")
	}
	clock := newFakeClock()
	s := NewServer(p, Options{
		Workers: 2, QueueDepth: 32, BatchMax: 4, BatchWindow: -1, // no hold: hammer at full speed
		SessionCacheMB: 8, SessionTTL: 100 * time.Microsecond,
		CachePolicy: cocktail.CachePolicyA1, ProbationPct: 25,
		SealedCachePct: 40, GhostEntries: 128,
		Now: clock.Now,
	})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				idx := (g + i) % len(samples)
				switch {
				case g == 3 && i%2 == 1:
					// TTL expiry races the in-flight admissions.
					clock.Advance(150 * time.Microsecond)
					s.sc.Sweep()
				case g == 2 && i%3 == 2:
					var info SessionInfo
					if code := postJSON(t, srv.URL+"/v1/session",
						map[string]any{"context": samples[idx].Context}, &info); code != 200 {
						errc <- fmt.Errorf("session create status %d", code)
						return
					}
				default:
					var res cocktail.Result
					code := postJSON(t, srv.URL+"/v1/answer",
						map[string]any{"context": samples[idx].Context, "query": samples[idx].Query}, &res)
					if code != 200 {
						errc <- fmt.Errorf("answer status %d", code)
						return
					}
					if got := strings.Join(res.Answer, " "); got != want[idx] {
						errc <- fmt.Errorf("output diverged under expiry race: %q != %q", got, want[idx])
						return
					}
				}
			}
			errc <- nil
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	clock.Advance(time.Second)
	s.sc.Sweep()
	st := s.sc.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache accounting did not drain after final sweep: %+v", st)
	}
	for kind, ks := range st.Kinds {
		if ks.Entries != 0 || ks.Bytes != 0 || ks.ProbationEntries != 0 || ks.ProbationBytes != 0 {
			t.Fatalf("kind %s accounting did not drain: %+v", kind, ks)
		}
	}
	if n := s.sessions.len(); n != 0 {
		t.Fatalf("%d sessions survived the final expiry", n)
	}
}
