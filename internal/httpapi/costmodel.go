package httpapi

// Cost-model-driven scheduling: every answer-path request is priced by
// internal/hwmodel's analytic estimate before it runs, and the predicted
// milliseconds drive three decisions (see DESIGN.md "Cost-model
// scheduling & auto-tuning"):
//
//   - Admission: the server tracks the predicted ms of admitted work in
//     flight; when Options.CostBudgetMs > 0 and the predicted drain time
//     (inflight ms / workers) would exceed it, the request is shed with
//     503. Warm requests (prefill resident in the session/prefix cache)
//     are priced decode-only, so under pressure the gate sheds expensive
//     cold prefills first — shedding prefers cheap-to-keep work.
//   - Retry-After: every load-shedding 503 (depth-full or over-budget)
//     advertises the predicted drain time, clamped to >= 1s, instead of
//     a constant.
//   - Per-tenant fairness: when Options.TenantHeader is set, the batcher
//     lanes become deficit-round-robin queues keyed by that header's
//     value, bounding any tenant's share of dispatched predicted cost
//     (see internal/costsched).
//
// Calibration: measured buffered-answer latencies are folded back into
// the pricer (ratio of sums, hard-clamped), so the analytic model
// supplies the relative ordering and measurement fixes the absolute
// level. The scale is surfaced in /v1/metrics scheduling block.

import (
	"errors"
	"net/http"
	"strconv"

	cocktail "repro"
	"repro/internal/costsched"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
)

// ErrOverBudget is returned on the answer paths when admitting the
// request would push the predicted drain time past Options.CostBudgetMs.
var ErrOverBudget = errors.New("httpapi: predicted drain time over the cost budget")

// scheduler bundles the cost-model scheduling state: the pricer (with
// its calibration loop), the predicted-cost admission tracker, and the
// tenant-keying configuration.
type scheduler struct {
	pricer    *hwmodel.Pricer
	admission *costsched.Admission
	method    string
	gpu       string
	model     string
	header    string // tenant header name; "" = single implicit tenant
}

// newScheduler derives the cost model from the pipeline's configuration:
// the simulated model name maps onto its real hardware geometry, unknown
// names fall back to the paper's primary 7B shape (the estimate's
// *ordering* is what admission needs; calibration fixes the level).
func newScheduler(p *cocktail.Pipeline, opts Options) *scheduler {
	cfg := p.Config()
	dims, ok := hwmodel.DimsByModel(cfg.Model)
	if !ok {
		dims = hwmodel.Llama2_7B()
	}
	g := hwmodel.A800()
	budget := float64(opts.CostBudgetMs)
	return &scheduler{
		pricer:    hwmodel.NewPricer(g, dims),
		admission: costsched.NewAdmission(budget, opts.Workers),
		method:    cfg.Method,
		gpu:       g.Name,
		model:     dims.Name,
		header:    opts.TenantHeader,
	}
}

// tenant extracts the request's tenant key; the empty string (header
// unset, or tenancy disabled) is the single implicit tenant, under which
// the DRR queues degenerate to exact FIFO.
func (c *scheduler) tenant(r *http.Request) string {
	if c.header == "" {
		return ""
	}
	return r.Header.Get(c.header)
}

// estimateAnswer prices one answer request in predicted milliseconds. A
// warm request's prefill is already resident (session or prefix cache),
// so it is priced decode-only — which is exactly why the admission gate
// sheds cold work first under pressure. An unpriceable method (not in
// the hwmodel roster) is treated as free: depth shedding still applies.
func (c *scheduler) estimateAnswer(contextTokens int, warm bool) float64 {
	est, err := c.pricer.Estimate(contextTokens, c.method, kvcache.INT4)
	if err != nil {
		return 0
	}
	if warm {
		return est.PerTokenMs * hwmodel.DefaultDecodeBudget
	}
	return est.TotalMs(hwmodel.DefaultDecodeBudget)
}

// estimatePrefill prices a session-create request: prefill only, free
// when the context is already cached.
func (c *scheduler) estimatePrefill(contextTokens int, warm bool) float64 {
	if warm {
		return 0
	}
	est, err := c.pricer.Estimate(contextTokens, c.method, kvcache.INT4)
	if err != nil {
		return 0
	}
	return est.PrefillMs
}

// admit runs the cost gate for one request. On success it returns a
// release closure that must be called exactly once when the request's
// work leaves the system (completion, cancellation, or a failed
// enqueue). On refusal it returns ErrOverBudget for poolErr to map to a
// drain-priced 503.
func (c *scheduler) admit(costMs float64) (release func(), err error) {
	ok, _ := c.admission.Admit(costMs)
	if !ok {
		return nil, ErrOverBudget
	}
	return func() { c.admission.Done(costMs) }, nil
}

// shedErr writes a load-shedding 503 whose Retry-After is the predicted
// drain time of the work in flight, clamped to [1s, 600s] — a loaded
// server tells clients how long the backlog actually is instead of a
// constant.
func (s *Server) shedErr(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(costsched.RetryAfterSeconds(s.sched.admission.DrainMs())))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
}

// SchedulingMetrics is the scheduling block of the /v1/metrics payload:
// the cost model in force, its calibration state, the predicted-cost
// admission gate, and per-tenant fairness accounting. Present in every
// configuration — zeros/empty when cost admission and tenancy are off —
// so dashboards never need mode-aware parsing.
type SchedulingMetrics struct {
	// CostAdmission reports whether predicted-drain shedding is armed
	// (Options.CostBudgetMs > 0). The admission block's tracking fields
	// are live either way — they price Retry-After on depth-full 503s.
	CostAdmission bool `json:"cost_admission"`
	// GPU/Model/Method identify the analytic cost model in force.
	GPU    string `json:"gpu"`
	Model  string `json:"model"`
	Method string `json:"method"`
	// CalibrationScale multiplies the analytic latency estimates
	// (1 until the first measured sample); the sums behind it follow.
	CalibrationScale       float64 `json:"calibration_scale"`
	CalibrationPredictedMs float64 `json:"calibration_predicted_ms"`
	CalibrationMeasuredMs  float64 `json:"calibration_measured_ms"`
	// Admission is the predicted-cost gate: budget, in-flight predicted
	// ms, drain time, admitted/shed totals.
	Admission costsched.AdmissionStats `json:"admission"`
	// TenantHeader echoes the fairness keying ("" = disabled); Tenants
	// carries per-tenant queued/served predicted-cost accounting from
	// the batcher's DRR lanes (empty when batching is off).
	TenantHeader string                  `json:"tenant_header"`
	Tenants      []costsched.TenantStats `json:"tenants"`
}

// schedulingSnapshot assembles the metrics block.
func (s *Server) schedulingSnapshot() SchedulingMetrics {
	pred, meas := s.sched.pricer.Observations()
	m := SchedulingMetrics{
		CostAdmission:          s.sched.admission.BudgetMs() > 0,
		GPU:                    s.sched.gpu,
		Model:                  s.sched.model,
		Method:                 s.sched.method,
		CalibrationScale:       s.sched.pricer.Scale(),
		CalibrationPredictedMs: pred,
		CalibrationMeasuredMs:  meas,
		Admission:              s.sched.admission.Stats(),
		TenantHeader:           s.sched.header,
	}
	if s.batch != nil {
		m.Tenants = s.batch.tenantStats()
	}
	return m
}
