package httpapi

// Continuous batching for the answer endpoints.
//
// The legacy dispatch runs one request per pool worker start-to-finish.
// The batcher replaces that for /v1/answer and /v1/session/{id}/answer:
// each batch worker owns a set of in-flight cocktail.Turns and advances
// them one decode step at a time, round-robin. Because a Turn shares
// nothing mutable with its siblings (see turn.go in the root package),
// interleaving is free of locks on the hot path — and because Answer is
// literally StartAnswer + drain, the batched output is byte-identical to
// the serial path by construction.
//
// Where the throughput comes from: requests in one batch that share a
// context share one Session, so the batch pays prefill (and, for a
// repeated plan, quantization) once per *unique* context instead of once
// per request — the same work elimination a GPU server gets from batching
// prefill GEMMs, translated to this CPU substrate. Decode-step
// interleaving is what creates those sharing opportunities: new arrivals
// join a running batch at step boundaries instead of waiting behind it.
//
// Scheduling contract (documented in DESIGN.md, asserted by the tests):
//
//   - Admission-aware priority: two FIFO lanes. The warm lane holds
//     session answers (prefill pinned by the session) and /v1/answer
//     requests whose context is resident in the prefix cache
//     (SessionCache.Cached — a pure peek); the cold lane holds requests
//     that must pay a fresh prefill. Warm work is dispatched first: it
//     finishes quickly and never stalls a running batch.
//   - Collect window: a worker seeding a new batch holds its first
//     request up to BatchWindow, coalescing queued arrivals, then runs.
//   - Step-boundary joins: while a batch decodes, queued requests join at
//     step boundaries up to BatchMax. Warm requests join any time; a cold
//     request joins only while the batch is younger than the deadline
//     budget (batchDeadlineMult × BatchWindow), because its prefill would
//     stall every running batchmate's decode by a whole prefill latency.
//   - Solo fallback: a cold request refused by a deadline-expired batch
//     is deferred, not dropped — the next free worker seeds a fresh batch
//     with it (counted as solo_fallbacks), so coalescing can never blow a
//     cold request's time-to-first-token beyond one batch drain. A cold
//     request that has waited past the deadline budget outranks warm
//     arrivals at seed time, so the warm lane cannot starve it.
//   - Cancellation: a request whose context dies is dropped at the next
//     step boundary (or at pickup); its batchmates keep decoding
//     unaffected. Session items follow submitWait semantics — the handler
//     holds the session lock until the batcher has definitively stopped
//     touching the Session.
//
// Clocking: waiting (collect window) uses real timers — that is
// scheduling, like the janitor's tick. Deadline/age *state* (batch age,
// queue wait) is measured with the injected Options.Now so tests drive it
// deterministically.

import (
	"context"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cocktail "repro"
	"repro/internal/costsched"
)

// batchDeadlineMult sizes the per-batch deadline budget as a multiple of
// BatchWindow: a batch older than this stops admitting cold joiners (and
// a cold request queued longer than this outranks warm arrivals).
const batchDeadlineMult = 8

// batchItem is one answer request in flight through the batcher. Exactly
// one of sess (session path; the HTTP handler holds the session mutex
// for the item's whole lifetime) or contextWords (/v1/answer path) is
// set. res/err are written by the batch worker before done is closed and
// read by the handler only after done is closed.
type batchItem struct {
	ctx          context.Context
	sess         *cocktail.Session
	contextWords []string
	query        []string
	warm         bool
	// tenant keys the DRR lanes (empty = the single implicit tenant) and
	// costMs is the request's predicted serving cost — both fixed by the
	// handler before push. release, when set, returns the cost to the
	// admission tracker; finish calls it exactly once.
	tenant   string
	costMs   float64
	release  func()
	enqueued time.Time // injected clock; queue-age state
	deferred bool      // guarded by batcher.mu once queued
	// sink, when set, receives the turn's emitted tokens at every decode
	// step boundary (SSE streaming; see stream.go). The batch worker
	// pushes, the streaming handler drains — a slow client never stalls
	// the batch.
	sink *tokenSink

	res  *cocktail.Result
	err  error
	done chan struct{}
}

func (it *batchItem) finish(res *cocktail.Result, err error) {
	it.res, it.err = res, err
	if it.release != nil {
		it.release()
	}
	close(it.done)
}

// batcher is the continuous-batching scheduler: a bounded two-lane queue
// plus Workers batch-worker goroutines. Each lane is a per-tenant
// deficit-round-robin queue over predicted cost (internal/costsched);
// with a single tenant — tenancy disabled, or every request unkeyed —
// both lanes are exact FIFOs, the historical semantics.
type batcher struct {
	s      *Server
	max    int           // BatchMax
	window time.Duration // BatchWindow (collect hold; <= 0 means no hold)
	budget time.Duration // deadline budget for cold joins / queue age

	mu    sync.Mutex
	warmQ *costsched.Queue[*batchItem]
	coldQ *costsched.Queue[*batchItem]
	limit int           // queue capacity (both lanes)
	ready chan struct{} // one token per queued item; capacity limit

	batches       atomic.Int64
	batchedReqs   atomic.Int64
	maxBatch      atomic.Int64
	stepJoins     atomic.Int64
	sharedPrefill atomic.Int64
	coldDeferrals atomic.Int64
	soloFallbacks atomic.Int64
	canceled      atomic.Int64
}

// newBatcher builds the scheduler and starts its workers on s.wg; they
// exit — after draining the queue — when s.stop closes.
func newBatcher(s *Server) *batcher {
	b := &batcher{
		s:      s,
		max:    s.opts.BatchMax,
		window: s.opts.BatchWindow,
		limit:  s.opts.QueueDepth,
		ready:  make(chan struct{}, s.opts.QueueDepth),
		warmQ:  costsched.NewQueue[*batchItem](costsched.DefaultQuantumMs),
		coldQ:  costsched.NewQueue[*batchItem](costsched.DefaultQuantumMs),
	}
	if b.window > 0 {
		b.budget = batchDeadlineMult * b.window
	}
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				seed, ok := b.popWait()
				if !ok {
					return
				}
				b.runBatch(seed)
			}
		}()
	}
	return b
}

// push queues an item, warm lane or cold, or reports ErrQueueFull at
// capacity. One ready token is sent per queued item, so tokens can never
// exceed the channel's capacity.
func (b *batcher) push(it *batchItem) error {
	it.done = make(chan struct{})
	it.enqueued = b.s.opts.Now()
	b.mu.Lock()
	if b.warmQ.Len()+b.coldQ.Len() >= b.limit {
		b.mu.Unlock()
		return ErrQueueFull
	}
	if it.warm {
		b.warmQ.Push(it.tenant, it.costMs, it)
	} else {
		b.coldQ.Push(it.tenant, it.costMs, it)
	}
	b.mu.Unlock()
	b.ready <- struct{}{}
	return nil
}

// queueLen reports the queued (not yet picked up) item count.
func (b *batcher) queueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.warmQ.Len() + b.coldQ.Len()
}

// tenantStats merges the two lanes' per-tenant accounting for the
// metrics scheduling block.
func (b *batcher) tenantStats() []costsched.TenantStats {
	b.mu.Lock()
	warm, cold := b.warmQ.Stats(), b.coldQ.Stats()
	b.mu.Unlock()
	merged := make(map[string]costsched.TenantStats, len(warm)+len(cold))
	for _, st := range append(warm, cold...) {
		m := merged[st.Tenant]
		m.Tenant = st.Tenant
		m.Queued += st.Queued
		m.QueuedMs += st.QueuedMs
		m.Served += st.Served
		m.ServedMs += st.ServedMs
		merged[st.Tenant] = m
	}
	out := make([]costsched.TenantStats, 0, len(merged))
	for _, st := range merged {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// take removes and returns the next item; it is called exactly once per
// consumed ready token, so an item is always available. Warm lane first —
// unless the cold lane's DRR head has waited past the deadline budget
// (anti-starvation) — then cold, but only when coldOK. Within each lane
// the DRR queue picks the tenant; Head/Pop pairs under the one mutex, so
// the peeked item is exactly the popped one. A refused cold head is
// marked deferred, its token is restored, and take returns nil: the
// caller's join loop stops for this step boundary and a free worker
// picks the item up as its own seed.
func (b *batcher) take(coldOK bool) *batchItem {
	b.mu.Lock()
	var it *batchItem
	coldHead, _, hasCold := b.coldQ.Head()
	switch {
	case coldOK && hasCold &&
		(b.warmQ.Len() == 0 || b.s.opts.Now().Sub(coldHead.enqueued) > b.budget):
		it, _ = b.coldQ.Pop()
	case b.warmQ.Len() > 0:
		it, _ = b.warmQ.Pop()
	default:
		// Only cold items remain and coldOK is false.
		if !coldHead.deferred {
			coldHead.deferred = true
			b.coldDeferrals.Add(1)
		}
	}
	b.mu.Unlock()
	if it == nil {
		b.ready <- struct{}{} // restore the consumed token
	}
	return it
}

// popWait blocks for the next seed item. It returns false once the
// server is closing and the queue has drained.
func (b *batcher) popWait() (*batchItem, bool) {
	for {
		select {
		case <-b.ready:
			return b.take(true), true // coldOK seed pop never refuses
		case <-b.s.stop:
			select {
			case <-b.ready:
				return b.take(true), true
			default:
				return nil, false
			}
		}
	}
}

// popCollect takes a queued item during the collect phase, giving up when
// the window timer fires; it does not wait once the server is closing.
func (b *batcher) popCollect(timeout <-chan time.Time) (*batchItem, bool) {
	select {
	case <-b.ready:
		return b.take(true), true
	case <-timeout:
		return nil, false
	case <-b.s.stop:
		select {
		case <-b.ready:
			return b.take(true), true
		default:
			return nil, false
		}
	}
}

// tryPop takes a queued item at a step boundary without waiting. A nil
// item means stop joining for this boundary (queue empty, or its head is
// a cold item this batch may no longer admit).
func (b *batcher) tryPop(coldOK bool) *batchItem {
	select {
	case <-b.ready:
		return b.take(coldOK)
	default:
		return nil
	}
}

// turnState is one admitted item's in-flight decode.
type turnState struct {
	item *batchItem
	turn *cocktail.Turn
}

// contextKey identifies a /v1/answer context for within-batch sharing.
func contextKey(words []string) string { return strings.Join(words, "\x00") }

// admit starts an item's turn, sharing one Session per unique context
// across the batch: the batch pays each distinct prefill once. Items
// whose context died, or whose pipeline stages fail, are finished here
// and not added. isSeed marks the solo-fallback accounting for items a
// deadline-expired batch previously refused.
func (b *batcher) admit(it *batchItem, shared map[string]*cocktail.Session, active []*turnState, isSeed bool) []*turnState {
	if it.ctx.Err() != nil {
		b.canceled.Add(1)
		it.finish(nil, it.ctx.Err())
		return active
	}
	if isSeed && it.deferred {
		b.soloFallbacks.Add(1)
	}
	sess := it.sess
	if sess == nil {
		key := contextKey(it.contextWords)
		if cached, ok := shared[key]; ok {
			b.sharedPrefill.Add(1)
			sess = cached
		} else {
			var err error
			if b.s.sc != nil {
				sess, err = b.s.sc.Prefill(it.contextWords)
			} else {
				sess, err = b.s.p.Prefill(it.contextWords)
			}
			if err != nil {
				it.finish(nil, err)
				return active
			}
			shared[key] = sess
		}
	}
	turn, err := sess.StartAnswer(it.query)
	if err != nil {
		it.finish(nil, err)
		return active
	}
	b.batchedReqs.Add(1)
	return append(active, &turnState{item: it, turn: turn})
}

// runBatch drives one batch to completion: collect up to the window,
// then interleave single-token decode steps across all active turns,
// admitting step-boundary joiners, until every turn has finished.
func (b *batcher) runBatch(seed *batchItem) {
	started := b.s.opts.Now()
	shared := make(map[string]*cocktail.Session)
	active := b.admit(seed, shared, nil, true)
	peak := len(active)

	if b.window > 0 && len(active) > 0 && len(active) < b.max {
		timer := time.NewTimer(b.window)
		for len(active) < b.max {
			it, ok := b.popCollect(timer.C)
			if !ok {
				break
			}
			if it != nil {
				active = b.admit(it, shared, active, false)
			}
		}
		timer.Stop()
	}
	if len(active) > peak {
		peak = len(active)
	}

	for len(active) > 0 {
		// Step-boundary joins: warm freely, cold only inside the budget.
		coldOK := b.s.opts.Now().Sub(started) <= b.budget
		for len(active) < b.max {
			it := b.tryPop(coldOK)
			if it == nil {
				break
			}
			n := len(active)
			active = b.admit(it, shared, active, false)
			if len(active) > n {
				b.stepJoins.Add(1)
			}
		}
		if len(active) > peak {
			peak = len(active)
		}
		// One decode step per turn; finished and canceled items drop out,
		// the rest keep their relative order.
		keep := active[:0]
		for _, st := range active {
			if st.item.ctx.Err() != nil {
				b.canceled.Add(1)
				st.item.finish(nil, st.item.ctx.Err())
				continue
			}
			running := st.turn.Step()
			// Step-boundary flush: streamed turns hand their new tokens
			// to the handler here, so SSE delivery granularity is exactly
			// the batch's decode-step granularity.
			if st.item.sink != nil {
				st.item.sink.push(st.turn.Emitted())
			}
			if running {
				keep = append(keep, st)
			} else {
				st.item.finish(st.turn.Result(), nil)
			}
		}
		active = keep
	}

	// A seed that failed admission (cancel or pipeline error) never became
	// a batch; don't let it skew the mean-batch figure.
	if peak == 0 {
		return
	}
	b.batches.Add(1)
	for {
		cur := b.maxBatch.Load()
		if int64(peak) <= cur || b.maxBatch.CompareAndSwap(cur, int64(peak)) {
			break
		}
	}
}
