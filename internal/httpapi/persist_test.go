package httpapi

// persist_test.go covers the serving-layer face of PR 8: kill-and-restart
// warm starts through -cache-persist-dir, corrupt-artifact degradation,
// the deterministic session-eviction tie-break, and the sessionRegistry
// churn benchmark (the O(n)-scan hot-path fix).

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	cocktail "repro"
)

// persistServer builds a server whose sealed caches spill to dir. The
// shard count is pinned to 1 so the metrics assertions below are
// independent of the host's CPU count.
func persistServer(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	s := NewServer(testPipeline(t), Options{CachePersistDir: dir, CacheShards: -1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

// TestWarmRestartRecoversSealedHits is the kill-and-restart acceptance
// test: a server restarted over its persist directory answers its first
// repeated request from the preloaded sealed cache (first-epoch hits
// strictly above a cold restart, answers byte-identical), while a cold
// restart pays the full miss.
func TestWarmRestartRecoversSealedHits(t *testing.T) {
	dir := t.TempDir()
	var sample struct{ Context, Query []string }
	req := func(srv *httptest.Server) (struct{ Answer []string }, Metrics) {
		var res struct{ Answer []string }
		if code := postJSON(t, srv.URL+"/v1/answer",
			map[string]any{"context": sample.Context, "query": sample.Query}, &res); code != 200 {
			t.Fatalf("answer failed with %d", code)
		}
		var m Metrics
		getJSON(t, srv.URL+"/v1/metrics", &m)
		return res, m
	}

	// First life: one answer populates RAM and writes the sealed
	// artifact.
	srvA := persistServer(t, dir)
	getJSON(t, srvA.URL+"/v1/sample?dataset=Qasper&seed=41", &sample)
	resA, mA := req(srvA)
	if mA.SessionCache.Persist == nil || mA.SessionCache.Persist.Writes < 1 {
		t.Fatalf("no sealed artifact written: %+v", mA.SessionCache.Persist)
	}
	srvA.Close()

	// Second life over the same directory: the sealed cache preloads, so
	// the very first request hits it (the prefill builder is never
	// persisted — its miss is the expected one).
	srvB := persistServer(t, dir)
	var m0 Metrics
	getJSON(t, srvB.URL+"/v1/metrics", &m0)
	if m0.SessionCache.Persist.Preloaded < 1 {
		t.Fatalf("warm restart preloaded nothing: %+v", m0.SessionCache.Persist)
	}
	if ks := m0.SessionCache.Kinds["sealed"]; ks.Entries < 1 {
		t.Fatalf("sealed entries absent after preload: %+v", m0.SessionCache.Kinds)
	}
	resB, mB := req(srvB)
	warmHits := mB.SessionCache.Hits
	if warmHits < 1 {
		t.Fatalf("warm restart's first request must hit the preloaded sealed cache: %+v", mB.SessionCache.CacheStats)
	}
	if !reflect.DeepEqual(resA.Answer, resB.Answer) {
		t.Fatalf("warm-restart answer diverged:\n%v\n%v", resA.Answer, resB.Answer)
	}

	// Cold control: a fresh directory serves the same first request with
	// zero hits — the warm first epoch is strictly better.
	srvC := persistServer(t, t.TempDir())
	resC, mC := req(srvC)
	if coldHits := mC.SessionCache.Hits; coldHits >= warmHits {
		t.Fatalf("first-epoch hits: warm %d must be strictly above cold %d", warmHits, coldHits)
	}
	if !reflect.DeepEqual(resA.Answer, resC.Answer) {
		t.Fatalf("cold answer diverged from the original")
	}
}

// TestCorruptPersistDirServesCold: bit-flipped artifacts must not break
// startup or answering — the server comes up, counts the corrupt
// artifact, and serves the request cold with identical bytes.
func TestCorruptPersistDirServesCold(t *testing.T) {
	dir := t.TempDir()
	var sample struct{ Context, Query []string }
	srvA := persistServer(t, dir)
	getJSON(t, srvA.URL+"/v1/sample?dataset=Qasper&seed=43", &sample)
	var resA struct{ Answer []string }
	postJSON(t, srvA.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &resA)
	srvA.Close()

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no artifacts to corrupt: %v", err)
	}
	for _, ent := range ents {
		path := filepath.Join(dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0x80
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srvB := persistServer(t, dir)
	var m Metrics
	getJSON(t, srvB.URL+"/v1/metrics", &m)
	if m.SessionCache.Persist.Corrupt < 1 || m.SessionCache.Persist.Preloaded != 0 {
		t.Fatalf("corrupt artifacts not degraded: %+v", m.SessionCache.Persist)
	}
	var resB struct{ Answer []string }
	if code := postJSON(t, srvB.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &resB); code != 200 {
		t.Fatalf("cold answer after corruption failed: %d", code)
	}
	if !reflect.DeepEqual(resA.Answer, resB.Answer) {
		t.Fatal("answer after corrupt-artifact cold start diverged")
	}
}

// TestSessionEvictionTieBreakDeterministic pins the LRU-victim tie-break
// under an injected clock: three sessions opened at the same instant
// with a cap of two must always evict the first-opened one (the recency
// list's tail), where the old map scan broke the tie by random map
// iteration order.
func TestSessionEvictionTieBreakDeterministic(t *testing.T) {
	var sample struct{ Context, Query []string }
	for round := 0; round < 5; round++ {
		clock := newFakeClock()
		s := NewServer(testPipeline(t), Options{MaxSessions: 2, Now: clock.Now})
		srv := httptest.NewServer(s)
		if sample.Context == nil {
			getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=47", &sample)
		}
		ids := make([]string, 3)
		for i := range ids {
			var info SessionInfo
			if code := postJSON(t, srv.URL+"/v1/session",
				map[string]any{"context": sample.Context}, &info); code != 200 {
				t.Fatalf("create %d failed", i)
			}
			ids[i] = info.SessionID // all three carry the same lastUsed stamp
		}
		var e map[string]string
		if code := postJSON(t, srv.URL+"/v1/session/"+ids[0]+"/answer",
			map[string]any{"query": sample.Query}, &e); code != 404 {
			t.Fatalf("round %d: first-opened session must be the tie-break victim, got %d", round, code)
		}
		for _, id := range ids[1:] {
			var res struct{ Answer []string }
			if code := postJSON(t, srv.URL+"/v1/session/"+id+"/answer",
				map[string]any{"query": sample.Query}, &res); code != 200 {
				t.Fatalf("round %d: survivor %s answered %d", round, id, code)
			}
		}
		srv.Close()
		s.Close()
	}
}

// BenchmarkSessionRegistryChurn measures the registry's get/add hot path
// at a realistic open-session count. Before PR 8 every get and add
// walked the whole session map under the lock to expire idle sessions
// (and eviction re-scanned it per victim, O(n²) at the cap); the recency
// list makes both O(1) amortized. Run with -benchtime and compare
// ns/op across the two revisions.
func BenchmarkSessionRegistryChurn(b *testing.B) {
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sample, err := p.NewSample("Qasper", 51)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := p.Prefill(sample.Context)
	if err != nil {
		b.Fatal(err)
	}
	const open = 1024
	now := time.Unix(1700000000, 0)
	r := newSessionRegistry(15*time.Minute, open, 1<<40, func() time.Time { return now })
	ids := make([]string, open)
	for i := range ids {
		ls, err := r.add(sess)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = ls.id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			// Churn: an add at the cap evicts the LRU tail.
			if _, err := r.add(sess); err != nil {
				b.Fatal(err)
			}
		} else {
			r.get(ids[i%open])
		}
	}
}
