package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cocktail "repro"
)

func testPipeline(t *testing.T) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := NewServer(testPipeline(t), Options{})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestInfo(t *testing.T) {
	srv := testServer(t)
	var info map[string]any
	if code := getJSON(t, srv.URL+"/v1/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(info["methods"].([]any)) != 5 {
		t.Fatalf("info methods wrong: %v", info["methods"])
	}
}

func TestSampleAndAnswerRoundTrip(t *testing.T) {
	srv := testServer(t)
	var sample struct {
		Context, Query, Answer []string
	}
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=7", &sample); code != 200 {
		t.Fatalf("sample status %d", code)
	}
	if len(sample.Context) == 0 || len(sample.Query) == 0 {
		t.Fatal("empty sample")
	}
	var res struct {
		Answer []string
		Plan   struct {
			Segments int
		}
	}
	code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("answer status %d", code)
	}
	if len(res.Answer) == 0 || res.Plan.Segments == 0 {
		t.Fatalf("bad answer payload: %+v", res)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=QMSum&seed=3", &sample)
	var res struct {
		Scores     []float64 `json:"scores"`
		TLow       float64   `json:"t_low"`
		THigh      float64   `json:"t_high"`
		Precisions []string  `json:"precisions"`
	}
	code := postJSON(t, srv.URL+"/v1/search",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(res.Scores) != len(res.Precisions) || len(res.Scores) == 0 {
		t.Fatalf("bad search payload: %+v", res)
	}
}

// TestConcurrentAnswersMatchSerial fires 16 concurrent /v1/answer and 8
// concurrent /v1/search requests over distinct samples through the worker
// pool and checks every response equals the one the pipeline produces
// serially. Run under -race this is the serving path's thread-safety
// proof.
func TestConcurrentAnswersMatchSerial(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 4, QueueDepth: 64})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	const nAnswer, nSearch = 16, 8
	type expect struct {
		sample *cocktail.Sample
		answer []string
	}
	answers := make([]expect, nAnswer)
	for i := range answers {
		sample, err := p.NewSample("Qasper", uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(sample.Context, sample.Query)
		if err != nil {
			t.Fatal(err)
		}
		answers[i] = expect{sample: sample, answer: res.Answer}
	}
	searches := make([]*cocktail.Sample, nSearch)
	wantScores := make([][]float64, nSearch)
	for i := range searches {
		sample, err := p.NewSample("QMSum", uint64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		scores, _, _, _, err := p.SearchOnly(sample.Context, sample.Query)
		if err != nil {
			t.Fatal(err)
		}
		searches[i] = sample
		wantScores[i] = scores
	}

	var wg sync.WaitGroup
	errs := make(chan error, nAnswer+nSearch)
	for i := 0; i < nAnswer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct{ Answer []string }
			code := postJSON(t, srv.URL+"/v1/answer", map[string]any{
				"context": answers[i].sample.Context,
				"query":   answers[i].sample.Query,
			}, &res)
			if code != 200 {
				errs <- fmt.Errorf("answer %d: status %d", i, code)
				return
			}
			if strings.Join(res.Answer, " ") != strings.Join(answers[i].answer, " ") {
				errs <- fmt.Errorf("answer %d: concurrent %v != serial %v", i, res.Answer, answers[i].answer)
			}
		}(i)
	}
	for i := 0; i < nSearch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct {
				Scores []float64 `json:"scores"`
			}
			code := postJSON(t, srv.URL+"/v1/search", map[string]any{
				"context": searches[i].Context,
				"query":   searches[i].Query,
			}, &res)
			if code != 200 {
				errs <- fmt.Errorf("search %d: status %d", i, code)
				return
			}
			if len(res.Scores) != len(wantScores[i]) {
				errs <- fmt.Errorf("search %d: %d scores, want %d", i, len(res.Scores), len(wantScores[i]))
				return
			}
			for c := range res.Scores {
				if res.Scores[c] != wantScores[i][c] {
					errs <- fmt.Errorf("search %d chunk %d: %v != %v", i, c, res.Scores[c], wantScores[i][c])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueueSaturation drives the pool bookkeeping directly: with one
// worker and a one-slot queue, a running job plus a queued job must make
// the third submission fail fast with ErrQueueFull.
func TestQueueSaturation(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 1})
	t.Cleanup(s.Close)

	release := make(chan struct{})
	released := false
	releaseWorker := func() {
		if !released {
			released = true
			close(release)
		}
	}
	// Registered after NewServer so it runs before s.Close on failure —
	// otherwise a tripped assertion would leave the worker blocked and
	// Close's wg.Wait hanging.
	t.Cleanup(releaseWorker)
	running := make(chan struct{})
	go s.submit(context.Background(), func() {
		close(running)
		<-release
	})
	<-running // worker occupied
	queued := make(chan error, 1)
	go func() {
		queued <- s.submit(context.Background(), func() {})
	}()
	// Wait until the queued job occupies the single queue slot.
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.submit(context.Background(), func() {}); err != ErrQueueFull {
		t.Fatalf("third submit: err %v, want ErrQueueFull", err)
	}
	releaseWorker()
	if err := <-queued; err != nil {
		t.Fatalf("queued submit failed: %v", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=7", &sample)
	var res struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	var e map[string]string
	getJSON(t, srv.URL+"/v1/sample?dataset=nope", &e)

	var m Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pool.Workers < 1 || m.Pool.QueueDepth < m.Pool.Workers {
		t.Fatalf("bad pool metrics: %+v", m.Pool)
	}
	ans := m.Endpoints["/v1/answer"]
	if ans.Requests != 1 || ans.Errors != 0 || ans.MeanLatencyMS <= 0 || ans.MaxLatencyMS < ans.MeanLatencyMS {
		t.Fatalf("bad answer metrics: %+v", ans)
	}
	smp := m.Endpoints["/v1/sample"]
	if smp.Requests != 2 || smp.Errors != 1 {
		t.Fatalf("bad sample metrics: %+v", smp)
	}
}

func TestErrors(t *testing.T) {
	srv := testServer(t)
	var e map[string]string
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=nope", &e); code != 404 {
		t.Fatalf("unknown dataset status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": []string{"not-a-word"}, "query": []string{"x"}}, &e); code != 422 {
		t.Fatalf("OOV status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/answer", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
}
