package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	cocktail "repro"
)

func testPipeline(t *testing.T) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fakeClock is a mutex-guarded manual clock for Options.Now: TTL tests
// advance it explicitly instead of sleeping, so expiry coverage costs
// no wall time and cannot flake on a slow runner. The guard matters —
// the janitor goroutine reads the clock concurrently under -race.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := NewServer(testPipeline(t), Options{})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestInfo(t *testing.T) {
	srv := testServer(t)
	var info map[string]any
	if code := getJSON(t, srv.URL+"/v1/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(info["methods"].([]any)) != 5 {
		t.Fatalf("info methods wrong: %v", info["methods"])
	}
}

func TestSampleAndAnswerRoundTrip(t *testing.T) {
	srv := testServer(t)
	var sample struct {
		Context, Query, Answer []string
	}
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=7", &sample); code != 200 {
		t.Fatalf("sample status %d", code)
	}
	if len(sample.Context) == 0 || len(sample.Query) == 0 {
		t.Fatal("empty sample")
	}
	var res struct {
		Answer []string
		Plan   struct {
			Segments int
		}
	}
	code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("answer status %d", code)
	}
	if len(res.Answer) == 0 || res.Plan.Segments == 0 {
		t.Fatalf("bad answer payload: %+v", res)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=QMSum&seed=3", &sample)
	var res struct {
		Scores     []float64 `json:"scores"`
		TLow       float64   `json:"t_low"`
		THigh      float64   `json:"t_high"`
		Precisions []string  `json:"precisions"`
	}
	code := postJSON(t, srv.URL+"/v1/search",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(res.Scores) != len(res.Precisions) || len(res.Scores) == 0 {
		t.Fatalf("bad search payload: %+v", res)
	}
}

// TestConcurrentAnswersMatchSerial fires 16 concurrent /v1/answer and 8
// concurrent /v1/search requests over distinct samples through the worker
// pool and checks every response equals the one the pipeline produces
// serially. Run under -race this is the serving path's thread-safety
// proof.
func TestConcurrentAnswersMatchSerial(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 4, QueueDepth: 64})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	const nAnswer, nSearch = 16, 8
	type expect struct {
		sample *cocktail.Sample
		answer []string
	}
	answers := make([]expect, nAnswer)
	for i := range answers {
		sample, err := p.NewSample("Qasper", uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Answer(sample.Context, sample.Query)
		if err != nil {
			t.Fatal(err)
		}
		answers[i] = expect{sample: sample, answer: res.Answer}
	}
	searches := make([]*cocktail.Sample, nSearch)
	wantScores := make([][]float64, nSearch)
	for i := range searches {
		sample, err := p.NewSample("QMSum", uint64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		scores, _, _, _, err := p.SearchOnly(sample.Context, sample.Query)
		if err != nil {
			t.Fatal(err)
		}
		searches[i] = sample
		wantScores[i] = scores
	}

	var wg sync.WaitGroup
	errs := make(chan error, nAnswer+nSearch)
	for i := 0; i < nAnswer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct{ Answer []string }
			code := postJSON(t, srv.URL+"/v1/answer", map[string]any{
				"context": answers[i].sample.Context,
				"query":   answers[i].sample.Query,
			}, &res)
			if code != 200 {
				errs <- fmt.Errorf("answer %d: status %d", i, code)
				return
			}
			if strings.Join(res.Answer, " ") != strings.Join(answers[i].answer, " ") {
				errs <- fmt.Errorf("answer %d: concurrent %v != serial %v", i, res.Answer, answers[i].answer)
			}
		}(i)
	}
	for i := 0; i < nSearch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct {
				Scores []float64 `json:"scores"`
			}
			code := postJSON(t, srv.URL+"/v1/search", map[string]any{
				"context": searches[i].Context,
				"query":   searches[i].Query,
			}, &res)
			if code != 200 {
				errs <- fmt.Errorf("search %d: status %d", i, code)
				return
			}
			if len(res.Scores) != len(wantScores[i]) {
				errs <- fmt.Errorf("search %d: %d scores, want %d", i, len(res.Scores), len(wantScores[i]))
				return
			}
			for c := range res.Scores {
				if res.Scores[c] != wantScores[i][c] {
					errs <- fmt.Errorf("search %d chunk %d: %v != %v", i, c, res.Scores[c], wantScores[i][c])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueueSaturation drives the pool bookkeeping directly: with one
// worker and a one-slot queue, a running job plus a queued job must make
// the third submission fail fast with ErrQueueFull.
func TestQueueSaturation(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 1})
	t.Cleanup(s.Close)

	release := make(chan struct{})
	released := false
	releaseWorker := func() {
		if !released {
			released = true
			close(release)
		}
	}
	// Registered after NewServer so it runs before s.Close on failure —
	// otherwise a tripped assertion would leave the worker blocked and
	// Close's wg.Wait hanging.
	t.Cleanup(releaseWorker)
	running := make(chan struct{})
	go s.submit(context.Background(), func() {
		close(running)
		<-release
	})
	<-running // worker occupied
	queued := make(chan error, 1)
	go func() {
		queued <- s.submit(context.Background(), func() {})
	}()
	// Wait until the queued job occupies the single queue slot.
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := s.submit(context.Background(), func() {}); err != ErrQueueFull {
		t.Fatalf("third submit: err %v, want ErrQueueFull", err)
	}
	releaseWorker()
	if err := <-queued; err != nil {
		t.Fatalf("queued submit failed: %v", err)
	}
}

// TestSubmitWaitHoldsThroughCancel: submitWait must not return while its
// job is still executing, even after the caller's context is canceled —
// the session path relies on this to keep the per-session lock held for
// the whole Answer.
func TestSubmitWaitHoldsThroughCancel(t *testing.T) {
	s := NewServer(testPipeline(t), Options{Workers: 1, QueueDepth: 4})
	t.Cleanup(s.Close)

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	released := false
	releaseJob := func() {
		if !released {
			released = true
			close(release)
		}
	}
	t.Cleanup(releaseJob)
	running := make(chan struct{})
	returned := make(chan error, 1)
	go func() {
		returned <- s.submitWait(ctx, func() {
			close(running)
			<-release
		})
	}()
	<-running // job is executing
	cancel()  // client goes away mid-execution
	select {
	case err := <-returned:
		t.Fatalf("submitWait returned %v while the job was still running", err)
	case <-time.After(50 * time.Millisecond):
	}
	releaseJob()
	if err := <-returned; err != context.Canceled {
		t.Fatalf("submitWait error = %v, want context.Canceled", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=7", &sample)
	var res struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	var e map[string]string
	getJSON(t, srv.URL+"/v1/sample?dataset=nope", &e)

	var m Metrics
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	if m.Pool.Workers < 1 || m.Pool.QueueDepth < m.Pool.Workers {
		t.Fatalf("bad pool metrics: %+v", m.Pool)
	}
	ans := m.Endpoints["/v1/answer"]
	if ans.Requests != 1 || ans.Errors != 0 || ans.MeanLatencyMS <= 0 || ans.MaxLatencyMS < ans.MeanLatencyMS {
		t.Fatalf("bad answer metrics: %+v", ans)
	}
	smp := m.Endpoints["/v1/sample"]
	if smp.Requests != 2 || smp.Errors != 1 {
		t.Fatalf("bad sample metrics: %+v", smp)
	}
}

// TestSessionLifecycle walks the session surface end to end: open a
// session, answer through it (byte-identical to /v1/answer), observe the
// prefix-cache hit on a second session over the same context, and close.
func TestSessionLifecycle(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=11", &sample)

	var cold struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &cold); code != 200 {
		t.Fatalf("cold answer failed")
	}

	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatalf("create session status != 200")
	}
	if info.SessionID == "" || info.ContextTokens != len(sample.Context) {
		t.Fatalf("bad session info: %+v", info)
	}
	// The /v1/answer call above already prefilled this context into the
	// shared store, so the session opens on a cache hit.
	if !info.CachedPrefill {
		t.Fatalf("expected cached prefill: %+v", info)
	}

	for i := 0; i < 2; i++ {
		var warm struct{ Answer []string }
		code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
			map[string]any{"query": sample.Query}, &warm)
		if code != 200 {
			t.Fatalf("session answer %d status %d", i, code)
		}
		if strings.Join(warm.Answer, " ") != strings.Join(cold.Answer, " ") {
			t.Fatalf("session answer %d diverged: %v != %v", i, warm.Answer, cold.Answer)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/session/"+info.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
		map[string]any{"query": sample.Query}, &e); code != 404 {
		t.Fatalf("answer after delete status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/session/nope/answer",
		map[string]any{"query": sample.Query}, &e); code != 404 {
		t.Fatalf("unknown session status %d", code)
	}
}

// TestAnswerPrefixCacheHit: repeating a context through plain /v1/answer
// must hit the prefix cache and surface it in /v1/metrics.
func TestAnswerPrefixCacheHit(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=TREC&seed=5", &sample)

	var first, second struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &first)
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &second)
	if strings.Join(first.Answer, " ") != strings.Join(second.Answer, " ") {
		t.Fatalf("prefix-cached answer diverged")
	}

	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if !m.SessionCache.Enabled {
		t.Fatalf("session cache should be enabled by default: %+v", m.SessionCache)
	}
	// Second request hits both the prefill and the sealed entry.
	if m.SessionCache.Hits < 2 || m.SessionCache.Entries == 0 || m.SessionCache.Bytes <= 0 {
		t.Fatalf("prefix cache metrics: %+v", m.SessionCache)
	}
}

// TestCachePolicy2QMetrics: with -cache-policy 2q semantics, the first
// sighting of a context is rejected (scan protection), the second admits
// it, the third hits — all byte-identical — and the admission counters
// surface in the /v1/metrics session_cache block.
func TestCachePolicy2QMetrics(t *testing.T) {
	s := NewServer(testPipeline(t), Options{CachePolicy: cocktail.CachePolicy2Q, GhostEntries: 64})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=TREC&seed=9", &sample)

	answers := make([]string, 3)
	for i := range answers {
		var res struct{ Answer []string }
		if code := postJSON(t, srv.URL+"/v1/answer",
			map[string]any{"context": sample.Context, "query": sample.Query}, &res); code != 200 {
			t.Fatalf("answer %d status %d", i, code)
		}
		answers[i] = strings.Join(res.Answer, " ")
	}
	if answers[0] != answers[1] || answers[1] != answers[2] {
		t.Fatalf("probation/admitted/hit answers diverged: %q %q %q", answers[0], answers[1], answers[2])
	}

	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	adm := m.SessionCache.Admission
	if adm.Policy != "2q" || adm.GhostLimit != 64 {
		t.Fatalf("admission config not surfaced: %+v", adm)
	}
	// Request 1 ghosts prefill+sealed (2 rejections); request 2 promotes
	// both and its earlier misses count as probation hits; request 3 hits
	// the main store.
	if adm.ScanRejections < 2 || adm.GhostPromotions < 2 || adm.ProbationHits < 1 {
		t.Fatalf("admission counters: %+v", adm)
	}
	if m.SessionCache.Hits < 2 {
		t.Fatalf("third request should hit the admitted entries: %+v", m.SessionCache)
	}
}

// TestSessionCacheDisabled: a negative budget turns off cross-request
// reuse but sessions must still work (store-less, per-session state).
func TestSessionCacheDisabled(t *testing.T) {
	s := NewServer(testPipeline(t), Options{SessionCacheMB: -1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=3", &sample)
	var cold struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &cold)

	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatalf("create session status != 200")
	}
	if info.CachedPrefill {
		t.Fatalf("store-less session reported a cache hit")
	}
	var warm struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
		map[string]any{"query": sample.Query}, &warm)
	if strings.Join(warm.Answer, " ") != strings.Join(cold.Answer, " ") {
		t.Fatalf("store-less session diverged from cold")
	}

	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.SessionCache.Enabled || m.SessionCache.ActiveSessions != 1 {
		t.Fatalf("disabled-cache metrics: %+v", m.SessionCache)
	}
}

// TestMaxSessionsEvictsLRU: the session cap must hold and evict the
// least-recently-used session, never the most recent one.
func TestMaxSessionsEvictsLRU(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{MaxSessions: 2})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=21", &sample)

	ids := make([]string, 3)
	for i := range ids {
		var info SessionInfo
		if code := postJSON(t, srv.URL+"/v1/session",
			map[string]any{"context": sample.Context}, &info); code != 200 {
			t.Fatalf("create %d failed", i)
		}
		ids[i] = info.SessionID
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.SessionCache.ActiveSessions != 2 {
		t.Fatalf("cap not enforced: %d active", m.SessionCache.ActiveSessions)
	}
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/session/"+ids[0]+"/answer",
		map[string]any{"query": sample.Query}, &e); code != 404 {
		t.Fatalf("oldest session should be evicted, got %d", code)
	}
	var res struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/session/"+ids[2]+"/answer",
		map[string]any{"query": sample.Query}, &res); code != 200 {
		t.Fatalf("newest session must survive, got %d", code)
	}
}

// TestSessionByteCapEvictsLRU: open sessions are byte-capped by the
// cache budget, not only count-capped — a 1 MiB budget holds one
// ~0.6 MiB prefilled context, so a second session evicts the first.
func TestSessionByteCapEvictsLRU(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{SessionCacheMB: 1})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=23", &sample)

	ids := make([]string, 2)
	for i := range ids {
		var info SessionInfo
		if code := postJSON(t, srv.URL+"/v1/session",
			map[string]any{"context": sample.Context}, &info); code != 200 {
			t.Fatalf("create %d failed", i)
		}
		ids[i] = info.SessionID
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.SessionCache.ActiveSessions != 1 {
		t.Fatalf("byte cap not enforced: %d active sessions", m.SessionCache.ActiveSessions)
	}
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/session/"+ids[0]+"/answer",
		map[string]any{"query": sample.Query}, &e); code != 404 {
		t.Fatalf("byte-evicted session should 404, got %d", code)
	}
	var res struct{ Answer []string }
	if code := postJSON(t, srv.URL+"/v1/session/"+ids[1]+"/answer",
		map[string]any{"query": sample.Query}, &res); code != 200 {
		t.Fatalf("resident session must answer, got %d", code)
	}
}

// TestOversizedSessionRejected: a context whose prefill KV alone exceeds
// the session byte budget must be refused with 422 — not admitted over
// budget after evicting every other session.
func TestOversizedSessionRejected(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{SessionCacheMB: 1}) // 1 MiB budget
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=29", &sample)
	// Inflate the context to ~1500 tokens (all vocabulary words), whose
	// FP32 prefill KV (~1.1 MiB at the default geometry) tops 1 MiB.
	big := sample.Context
	for len(big) < 1500 {
		big = append(big, sample.Context...)
	}
	big = big[:1500]

	// A small session must still be admitted before and after.
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatalf("small session status %d", code)
	}
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": big}, &e); code != 422 {
		t.Fatalf("oversized session status %d, want 422", code)
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.SessionCache.ActiveSessions != 1 {
		t.Fatalf("oversized reject must not evict residents: %+v", m.SessionCache)
	}
}

// TestDeleteExpiredSessionIs404: DELETE on a TTL-stale id must report 404
// like every other access to it, not 204.
func TestDeleteExpiredSessionIs404(t *testing.T) {
	p := testPipeline(t)
	clk := newFakeClock()
	s := NewServer(p, Options{SessionTTL: 50 * time.Millisecond, Now: clk.Now})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=37", &sample)
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create failed")
	}
	clk.Advance(51 * time.Millisecond) // past TTL with no sleep: expiry is the lazy on-access path
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/session/"+info.SessionID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete of expired session status %d, want 404", resp.StatusCode)
	}
}

// TestJanitorSweepFakeClock drives the janitor's proactive expiry path
// (sweep, not lazy on-access) purely by advancing the injected clock:
// the registry drops the aged session and the metrics reflect it,
// without a single sleep.
func TestJanitorSweepFakeClock(t *testing.T) {
	p := testPipeline(t)
	clk := newFakeClock()
	s := NewServer(p, Options{SessionTTL: 50 * time.Millisecond, Now: clk.Now})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=43", &sample)
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create failed")
	}
	if n := s.sessions.len(); n != 1 {
		t.Fatalf("registry has %d sessions, want 1", n)
	}
	clk.Advance(51 * time.Millisecond)
	s.sessions.sweep() // what the 1s janitor tick runs, minus the wait
	if n := s.sessions.len(); n != 0 {
		t.Fatalf("registry has %d sessions after sweep, want 0", n)
	}
	var m Metrics
	getJSON(t, srv.URL+"/v1/metrics", &m)
	if m.SessionCache.ActiveSessions != 0 {
		t.Fatalf("metrics still report %d active sessions", m.SessionCache.ActiveSessions)
	}
}

// TestConcurrentSessionAnswers hammers one session id from many
// goroutines; the per-session mutex must serialize the single-owner
// Session underneath (run under -race).
func TestConcurrentSessionAnswers(t *testing.T) {
	p := testPipeline(t)
	s := NewServer(p, Options{Workers: 4, QueueDepth: 64})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	sample, err := p.NewSample("Qasper", 31)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Answer(sample.Context, sample.Query)
	if err != nil {
		t.Fatal(err)
	}
	var info SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &info); code != 200 {
		t.Fatal("create session failed")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res struct{ Answer []string }
			code := postJSON(t, srv.URL+"/v1/session/"+info.SessionID+"/answer",
				map[string]any{"query": sample.Query}, &res)
			if code != 200 {
				errs <- fmt.Errorf("request %d: status %d", i, code)
				return
			}
			if strings.Join(res.Answer, " ") != strings.Join(want.Answer, " ") {
				errs <- fmt.Errorf("request %d diverged", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestErrorPathsTable sweeps the error surface row by row: malformed
// JSON bodies, unknown and TTL-expired session ids, oversized contexts
// and out-of-vocabulary words, asserting the documented status code and
// that every error response carries a JSON {"error": ...} body.
func TestErrorPathsTable(t *testing.T) {
	p := testPipeline(t)
	// Default-TTL server for every row whose fixtures must stay alive;
	// a separate short-TTL server only for the expired-session rows, so
	// no live fixture can age out under a slow CI runner.
	s := NewServer(p, Options{})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	shortClk := newFakeClock()
	sShort := NewServer(p, Options{SessionTTL: 80 * time.Millisecond, Now: shortClk.Now})
	t.Cleanup(sShort.Close)
	srvShort := httptest.NewServer(sShort)
	t.Cleanup(srvShort.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=41", &sample)

	// A context beyond MaxSeq (2048 here, minus query and decode budget).
	big := sample.Context
	for len(big) < 2100 {
		big = append(big, sample.Context...)
	}
	big = big[:2100]
	bigBody, err := json.Marshal(map[string]any{"context": big, "query": sample.Query})
	if err != nil {
		t.Fatal(err)
	}

	// A session aged past the short server's TTL by advancing its fake
	// clock (expiry is the lazy on-access path; nothing sleeps), and a
	// live one on the default real-clock server for body-decode rows.
	var expired SessionInfo
	if code := postJSON(t, srvShort.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &expired); code != 200 {
		t.Fatal("create expired-session fixture failed")
	}
	shortClk.Advance(81 * time.Millisecond)
	var live SessionInfo
	if code := postJSON(t, srv.URL+"/v1/session",
		map[string]any{"context": sample.Context}, &live); code != 200 {
		t.Fatal("create live-session fixture failed")
	}

	cases := []struct {
		name, method, base, path, body string
		want                           int
	}{
		{"answer malformed json", "POST", srv.URL, "/v1/answer", `{"context": [}`, 400},
		{"answer truncated json", "POST", srv.URL, "/v1/answer", `{"context": ["a"`, 400},
		{"search malformed json", "POST", srv.URL, "/v1/search", `[not json`, 400},
		{"session malformed json", "POST", srv.URL, "/v1/session", `{"context": }`, 400},
		{"session answer malformed json", "POST", srv.URL, "/v1/session/" + live.SessionID + "/answer", `{`, 400},
		{"answer unknown session", "POST", srv.URL, "/v1/session/nope/answer", `{"query": ["x"]}`, 404},
		{"delete unknown session", "DELETE", srv.URL, "/v1/session/nope", "", 404},
		{"answer expired session", "POST", srvShort.URL, "/v1/session/" + expired.SessionID + "/answer", `{"query": ["x"]}`, 404},
		{"delete expired session", "DELETE", srvShort.URL, "/v1/session/" + expired.SessionID, "", 404},
		{"answer oversized context", "POST", srv.URL, "/v1/answer", string(bigBody), 422},
		{"session oversized context", "POST", srv.URL, "/v1/session", string(bigBody), 422},
		{"answer OOV word", "POST", srv.URL, "/v1/answer", `{"context": ["not-a-word"], "query": ["x"]}`, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, tc.base+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
				t.Fatalf("error body missing or undecodable: %v %v", e, err)
			}
		})
	}
}

func TestErrors(t *testing.T) {
	srv := testServer(t)
	var e map[string]string
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=nope", &e); code != 404 {
		t.Fatalf("unknown dataset status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": []string{"not-a-word"}, "query": []string{"x"}}, &e); code != 422 {
		t.Fatalf("OOV status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/answer", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
}

// TestMetricsAdmissionBlockAllPolicies: the session_cache.admission
// block must be present and fully keyed in every configuration — zeros
// under the policy label for LRU and even with the cache disabled — so
// dashboards can parse /v1/metrics without knowing the policy.
func TestMetricsAdmissionBlockAllPolicies(t *testing.T) {
	p := testPipeline(t)
	cases := []struct {
		name   string
		opts   Options
		policy string
		mode   string // adaptive only; "" means the key must be absent
	}{
		{"lru-default", Options{}, "lru", ""},
		{"2q", Options{CachePolicy: cocktail.CachePolicy2Q, GhostEntries: 32}, "2q", ""},
		{"a1", Options{CachePolicy: cocktail.CachePolicyA1, ProbationPct: 25}, "a1", ""},
		{"adaptive", Options{CachePolicy: cocktail.CachePolicyAdaptive, AdaptWindow: 8}, "adaptive", "permissive"},
		{"disabled", Options{SessionCacheMB: -1, CachePolicy: cocktail.CachePolicy2Q}, "2q", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewServer(p, tc.opts)
			t.Cleanup(s.Close)
			srv := httptest.NewServer(s)
			t.Cleanup(srv.Close)

			// Decode generically: the assertion is about the payload's
			// shape, which typed decoding would mask.
			var m map[string]any
			if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
				t.Fatalf("metrics status %d", code)
			}
			sc, ok := m["session_cache"].(map[string]any)
			if !ok {
				t.Fatalf("session_cache block missing: %v", m)
			}
			adm, ok := sc["admission"].(map[string]any)
			if !ok {
				t.Fatalf("admission block missing under %s: %v", tc.name, sc)
			}
			if got := adm["policy"]; got != tc.policy {
				t.Fatalf("admission.policy = %v, want %q", got, tc.policy)
			}
			for _, key := range []string{
				"probation_hits", "ghost_promotions", "segment_promotions",
				"scan_rejections", "policy_flips", "ghost_entries", "ghost_limit",
				"probation_entries", "probation_bytes", "probation_cap_bytes",
				"protected_entries", "protected_bytes",
			} {
				if _, ok := adm[key]; !ok {
					t.Errorf("admission.%s missing under %s", key, tc.name)
				}
			}
			if mode, ok := adm["mode"]; (tc.mode != "") != ok || (ok && mode != tc.mode) {
				t.Errorf("admission.mode = %v (present=%v), want %q", mode, ok, tc.mode)
			}
			// The a1 probation cap must reflect the configured percentage
			// of the budget (25% of the 64 MiB default).
			if tc.name == "a1" {
				if got := adm["probation_cap_bytes"].(float64); got != float64(64<<20)*0.25 {
					t.Errorf("probation_cap_bytes = %v, want %v", got, float64(64<<20)*0.25)
				}
			}
		})
	}
}

// TestPerKindCacheMetrics: with -sealed-cache-pct semantics the
// session_cache.kinds block must expose each kind's sub-budget,
// occupancy and its own admission counters, and real traffic must land
// in both kinds' shards.
func TestPerKindCacheMetrics(t *testing.T) {
	s := NewServer(testPipeline(t), Options{
		CachePolicy:        cocktail.CachePolicyA1,
		SealedCachePct:     40,
		SealedProbationPct: 30,
		ProbationPct:       20,
	})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=TREC&seed=13", &sample)
	answers := make([]string, 2)
	for i := range answers {
		var res struct{ Answer []string }
		if code := postJSON(t, srv.URL+"/v1/answer",
			map[string]any{"context": sample.Context, "query": sample.Query}, &res); code != 200 {
			t.Fatalf("answer %d status %d", i, code)
		}
		answers[i] = strings.Join(res.Answer, " ")
	}
	if answers[0] != answers[1] {
		t.Fatalf("per-kind cached answer diverged: %q %q", answers[0], answers[1])
	}

	var m map[string]any
	if code := getJSON(t, srv.URL+"/v1/metrics", &m); code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	sc := m["session_cache"].(map[string]any)
	kinds, ok := sc["kinds"].(map[string]any)
	if !ok {
		t.Fatalf("kinds block missing: %v", sc)
	}
	// Mirror the store's integer carve-out math: truncate at each step.
	budget := int64(64 << 20) // default -session-cache-mb
	sealedMax := int64(float64(budget) * 0.40)
	prefillMax := budget - sealedMax
	wantMax := map[string]float64{"sealed": float64(sealedMax), "prefill": float64(prefillMax)}
	wantProbCap := map[string]float64{
		"sealed":  float64(int64(float64(sealedMax) * 0.30)),
		"prefill": float64(int64(float64(prefillMax) * 0.20)),
	}
	for _, kind := range []string{"prefill", "sealed"} {
		kb, ok := kinds[kind].(map[string]any)
		if !ok {
			t.Fatalf("kind %s block missing: %v", kind, kinds)
		}
		if kb["dedicated"] != true || kb["max_bytes"].(float64) != wantMax[kind] {
			t.Errorf("kind %s budget: %v", kind, kb)
		}
		if got := kb["probation_cap_bytes"].(float64); got != wantProbCap[kind] {
			t.Errorf("kind %s probation cap = %v, want %v", kind, got, wantProbCap[kind])
		}
		if kb["entries"].(float64) == 0 || kb["bytes"].(float64) <= 0 {
			t.Errorf("kind %s never populated: %v", kind, kb)
		}
		adm, ok := kb["admission"].(map[string]any)
		if !ok {
			t.Fatalf("kind %s admission block missing: %v", kind, kb)
		}
		if adm["policy"] != "a1" {
			t.Errorf("kind %s admission.policy = %v, want a1", kind, adm["policy"])
		}
	}
	// The aggregate admission block keeps its shape (and label) with the
	// per-kind router in place.
	if adm := sc["admission"].(map[string]any); adm["policy"] != "a1" {
		t.Errorf("aggregate admission.policy = %v, want a1", adm["policy"])
	}
}

// TestKindsBlockWithoutSplit: per-kind occupancy is reported even under
// the default shared budget — dedicated=false, shared caps, no per-kind
// admission blocks — so dashboards get one stable shape.
func TestKindsBlockWithoutSplit(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=TREC&seed=15", &sample)
	var res struct{ Answer []string }
	postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)

	var m map[string]any
	getJSON(t, srv.URL+"/v1/metrics", &m)
	kinds, ok := m["session_cache"].(map[string]any)["kinds"].(map[string]any)
	if !ok {
		t.Fatalf("kinds block missing under the shared budget")
	}
	for _, kind := range []string{"prefill", "sealed"} {
		kb, ok := kinds[kind].(map[string]any)
		if !ok {
			t.Fatalf("kind %s block missing: %v", kind, kinds)
		}
		if kb["dedicated"] != false || kb["max_bytes"].(float64) != float64(64<<20) {
			t.Errorf("kind %s must share the full budget: %v", kind, kb)
		}
		if _, hasAdm := kb["admission"]; hasAdm {
			t.Errorf("kind-blind policy must not report per-kind admission: %v", kb)
		}
	}
}
