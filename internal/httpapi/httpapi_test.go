package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	cocktail "repro"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(p))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestInfo(t *testing.T) {
	srv := testServer(t)
	var info map[string]any
	if code := getJSON(t, srv.URL+"/v1/info", &info); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(info["methods"].([]any)) != 5 {
		t.Fatalf("info methods wrong: %v", info["methods"])
	}
}

func TestSampleAndAnswerRoundTrip(t *testing.T) {
	srv := testServer(t)
	var sample struct {
		Context, Query, Answer []string
	}
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=Qasper&seed=7", &sample); code != 200 {
		t.Fatalf("sample status %d", code)
	}
	if len(sample.Context) == 0 || len(sample.Query) == 0 {
		t.Fatal("empty sample")
	}
	var res struct {
		Answer []string
		Plan   struct {
			Segments int
		}
	}
	code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("answer status %d", code)
	}
	if len(res.Answer) == 0 || res.Plan.Segments == 0 {
		t.Fatalf("bad answer payload: %+v", res)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := testServer(t)
	var sample struct{ Context, Query []string }
	getJSON(t, srv.URL+"/v1/sample?dataset=QMSum&seed=3", &sample)
	var res struct {
		Scores     []float64 `json:"scores"`
		TLow       float64   `json:"t_low"`
		THigh      float64   `json:"t_high"`
		Precisions []string  `json:"precisions"`
	}
	code := postJSON(t, srv.URL+"/v1/search",
		map[string]any{"context": sample.Context, "query": sample.Query}, &res)
	if code != 200 {
		t.Fatalf("search status %d", code)
	}
	if len(res.Scores) != len(res.Precisions) || len(res.Scores) == 0 {
		t.Fatalf("bad search payload: %+v", res)
	}
}

func TestErrors(t *testing.T) {
	srv := testServer(t)
	var e map[string]string
	if code := getJSON(t, srv.URL+"/v1/sample?dataset=nope", &e); code != 404 {
		t.Fatalf("unknown dataset status %d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/answer",
		map[string]any{"context": []string{"not-a-word"}, "query": []string{"x"}}, &e); code != 422 {
		t.Fatalf("OOV status %d", code)
	}
	resp, err := http.Post(srv.URL+"/v1/answer", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON status %d", resp.StatusCode)
	}
}
