// Package httpapi serves the public cocktail pipeline over HTTP with a
// small JSON API (used by cmd/cocktail-serve).
//
// The pipeline itself is safe for concurrent use (all shared state —
// lexicon, model weights, encoder tables — is read-only; every request
// allocates its own KV builder, plan, cache and decoder), so requests are
// not serialized. Instead, inference work runs on a bounded worker pool
// with a bounded wait queue: the pool caps concurrent pipeline executions
// at Options.Workers, up to Options.QueueDepth further requests wait in
// the queue, and beyond that the server sheds load with 503 rather than
// letting latency grow without bound.
//
// Endpoints:
//
//	GET  /v1/info     pipeline configuration and rosters
//	POST /v1/answer   full inference (pooled)
//	POST /v1/search   Module I only (pooled)
//	GET  /v1/sample   benchmark sample generation (inline, cheap)
//	GET  /v1/metrics  per-endpoint counters and pool state
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	cocktail "repro"
)

// Options sizes the serving pool. Zero values take defaults.
type Options struct {
	// Workers is the number of concurrent pipeline executions
	// (default runtime.NumCPU()).
	Workers int
	// QueueDepth is how many requests may wait for a worker beyond the
	// ones executing; requests arriving past that are rejected with 503
	// (default 4×Workers).
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	return o
}

// ErrQueueFull is returned by the pool when the wait queue is at capacity.
var ErrQueueFull = errors.New("httpapi: request queue full")

// Server is the HTTP API over one pipeline. It implements http.Handler.
type Server struct {
	p    *cocktail.Pipeline
	mux  *http.ServeMux
	opts Options

	jobs    chan func()
	wg      sync.WaitGroup
	closing sync.Once

	stats map[string]*endpointStats
}

// New returns the HTTP handler tree for a pipeline with default pool
// sizing. The pool's worker goroutines live for the rest of the process;
// callers that need to tear the pool down use NewServer and Close.
func New(p *cocktail.Pipeline) http.Handler { return NewServer(p, Options{}) }

// NewServer builds the API server and starts its worker pool. Call Close
// to stop the workers when the server is no longer needed.
func NewServer(p *cocktail.Pipeline, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		p:    p,
		opts: opts,
		jobs: make(chan func(), opts.QueueDepth),
		stats: map[string]*endpointStats{
			"/v1/info":    {},
			"/v1/answer":  {},
			"/v1/search":  {},
			"/v1/sample":  {},
			"/v1/metrics": {},
		},
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.track("/v1/info", s.info))
	mux.HandleFunc("POST /v1/answer", s.track("/v1/answer", s.answer))
	mux.HandleFunc("POST /v1/search", s.track("/v1/search", s.search))
	mux.HandleFunc("GET /v1/sample", s.track("/v1/sample", s.sample))
	mux.HandleFunc("GET /v1/metrics", s.track("/v1/metrics", s.metrics))
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool after draining queued jobs. The server must
// not receive further requests once Close is called.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.jobs)
		s.wg.Wait()
	})
}

// submit runs fn on the worker pool and waits for it to finish. It
// returns ErrQueueFull without running fn when the queue is saturated,
// and the context error if the caller gives up while fn is still queued
// or running (fn's writes must then be discarded). A job whose context
// died while it sat in the queue is dropped when a worker picks it up,
// so abandoned requests cannot monopolize the pool.
func (s *Server) submit(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		if ctx.Err() == nil {
			fn()
		}
	}
	select {
	case s.jobs <- job:
	default:
		return ErrQueueFull
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// endpointStats aggregates one endpoint's counters; all fields are
// updated atomically so the hot path never takes a lock.
type endpointStats struct {
	requests   atomic.Int64
	completed  atomic.Int64 // requests whose latency is in totalNanos
	errors     atomic.Int64 // responses with status >= 400
	rejected   atomic.Int64 // 503s from a saturated queue
	inFlight   atomic.Int64
	totalNanos atomic.Int64
	maxNanos   atomic.Int64
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.completed.Add(1)
	e.totalNanos.Add(int64(d))
	for {
		max := e.maxNanos.Load()
		if int64(d) <= max || e.maxNanos.CompareAndSwap(max, int64(d)) {
			break
		}
	}
	if status >= 400 {
		e.errors.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		e.rejected.Add(1)
	}
}

// EndpointMetrics is the per-endpoint block of the /v1/metrics payload.
type EndpointMetrics struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	InFlight      int64   `json:"in_flight"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
}

// PoolMetrics describes the worker pool's configuration and queue state.
type PoolMetrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueLen   int `json:"queue_len"`
}

// Metrics is the full /v1/metrics payload.
type Metrics struct {
	Pool      PoolMetrics                `json:"pool"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot returns the server's current metrics.
func (s *Server) Snapshot() Metrics {
	m := Metrics{
		Pool: PoolMetrics{
			Workers:    s.opts.Workers,
			QueueDepth: s.opts.QueueDepth,
			QueueLen:   len(s.jobs),
		},
		Endpoints: make(map[string]EndpointMetrics, len(s.stats)),
	}
	for path, e := range s.stats {
		em := EndpointMetrics{
			Requests: e.requests.Load(),
			Errors:   e.errors.Load(),
			Rejected: e.rejected.Load(),
			InFlight: e.inFlight.Load(),
		}
		// Mean over completed requests only: in-flight ones have no
		// latency recorded yet and would deflate the mean under load.
		if done := e.completed.Load(); done > 0 {
			em.MeanLatencyMS = float64(e.totalNanos.Load()) / float64(done) / 1e6
		}
		em.MaxLatencyMS = float64(e.maxNanos.Load()) / 1e6
		m.Endpoints[path] = em
	}
	return m
}

// statusRecorder captures the response status for the metrics layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// track wraps a handler with the endpoint's latency/throughput counters.
func (s *Server) track(path string, h http.HandlerFunc) http.HandlerFunc {
	st := s.stats[path]
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		st.inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		st.inFlight.Add(-1)
		st.observe(time.Since(start), rec.status)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) info(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"config":   s.p.Config(),
		"models":   cocktail.Models(),
		"methods":  cocktail.Methods(),
		"encoders": cocktail.Encoders(),
		"datasets": cocktail.Datasets(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

type answerRequest struct {
	Context []string `json:"context"`
	Query   []string `json:"query"`
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		res *cocktail.Result
		err error
	)
	perr := s.submit(r.Context(), func() {
		res, err = s.p.Answer(req.Context, req.Query)
	})
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) search(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		scores      []float64
		tlow, thigh float64
		precs       []string
		err         error
	)
	perr := s.submit(r.Context(), func() {
		scores, tlow, thigh, precs, err = s.p.SearchOnly(req.Context, req.Query)
	})
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scores":     scores,
		"t_low":      tlow,
		"t_high":     thigh,
		"precisions": precs,
	})
}

// poolErr maps submit failures: queue saturation is load shedding (503),
// anything else means the client went away mid-flight (499-style; the
// response is moot but a status keeps logs honest).
func (s *Server) poolErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeErr(w, http.StatusRequestTimeout, err)
}

func (s *Server) sample(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		dataset = "Qasper"
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		seed = 1
	}
	// Sample generation is cheap and the pipeline is concurrency-safe, so
	// this endpoint bypasses the inference pool.
	sample, serr := s.p.NewSample(dataset, seed)
	if serr != nil {
		writeErr(w, http.StatusNotFound, serr)
		return
	}
	writeJSON(w, http.StatusOK, sample)
}
