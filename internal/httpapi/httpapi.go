// Package httpapi serves the public cocktail pipeline over HTTP with a
// small JSON API (used by cmd/cocktail-serve). One pipeline instance is
// shared across requests behind a mutex: the underlying KV cache machinery
// is per-request but the model/lexicon are shared read-only, and the
// simulated substrate is fast enough that serialization is not a
// bottleneck for a demo server.
package httpapi

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	cocktail "repro"
)

// New returns the HTTP handler tree for a pipeline.
func New(p *cocktail.Pipeline) http.Handler {
	s := &server{p: p}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.info)
	mux.HandleFunc("POST /v1/answer", s.answer)
	mux.HandleFunc("POST /v1/search", s.search)
	mux.HandleFunc("GET /v1/sample", s.sample)
	return mux
}

type server struct {
	mu sync.Mutex
	p  *cocktail.Pipeline
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) info(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"config":   s.p.Config(),
		"models":   cocktail.Models(),
		"methods":  cocktail.Methods(),
		"encoders": cocktail.Encoders(),
		"datasets": cocktail.Datasets(),
	})
}

type answerRequest struct {
	Context []string `json:"context"`
	Query   []string `json:"query"`
}

func (s *server) answer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	res, err := s.p.Answer(req.Context, req.Query)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	scores, tlow, thigh, precs, err := s.p.SearchOnly(req.Context, req.Query)
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scores":     scores,
		"t_low":      tlow,
		"t_high":     thigh,
		"precisions": precs,
	})
}

func (s *server) sample(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		dataset = "Qasper"
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		seed = 1
	}
	s.mu.Lock()
	sample, serr := s.p.NewSample(dataset, seed)
	s.mu.Unlock()
	if serr != nil {
		writeErr(w, http.StatusNotFound, serr)
		return
	}
	writeJSON(w, http.StatusOK, sample)
}
