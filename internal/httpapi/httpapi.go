// Package httpapi serves the public cocktail pipeline over HTTP with a
// small JSON API (used by cmd/cocktail-serve).
//
// The pipeline itself is safe for concurrent use (all shared state —
// lexicon, model weights, encoder tables — is read-only; every request
// allocates its own KV builder, plan, cache and decoder), so requests are
// not serialized. Inference work runs on two bounded lanes, each sized by
// Options.Workers with an Options.QueueDepth wait queue and 503 load
// shedding beyond it:
//
//   - The answer endpoints go through a continuous-batching scheduler
//     (batcher.go): concurrent /v1/answer and /v1/session/{id}/answer
//     requests are coalesced into batches whose decode steps interleave,
//     new arrivals join running batches at step boundaries, and requests
//     sharing a context share one prefill. Outputs are byte-identical to
//     serial execution (see the batching contract in DESIGN.md). BatchMax
//     1 disables this and restores direct pool dispatch.
//   - /v1/search and /v1/session prefill run one-request-per-worker on
//     the direct pool (their work has no decode phase to interleave).
//
// Cross-request KV reuse: the server keeps a byte-accounted session/prefix
// cache (cocktail.SessionCache) so a repeated context skips prefill — both
// transparently on /v1/answer and explicitly through the session endpoints,
// which prefill once and then answer any number of queries against the
// retained context KV. Results are byte-identical to the cold path.
//
// Token streaming: both answer endpoints also serve SSE (`?stream=1` or
// `Accept: text/event-stream`) — per-token events flushed at decode-step
// boundaries, terminated by a result or explicit error event, with TTFT
// recorded in /v1/metrics (see stream.go for the full contract).
//
// Endpoints:
//
//	GET    /v1/info                 pipeline configuration and rosters
//	POST   /v1/answer               full inference (pooled, prefix-cached, streamable)
//	POST   /v1/search               Module I only (pooled)
//	GET    /v1/sample               benchmark sample generation (inline, cheap)
//	POST   /v1/session              prefill a context, open a session (pooled)
//	POST   /v1/session/{id}/answer  answer a query in a session (pooled, streamable)
//	POST   /v1/session/{id}/append  grow a session's context (delta prefill)
//	DELETE /v1/session/{id}         close a session
//	GET    /v1/metrics              per-endpoint counters, pool, cache and streaming state
package httpapi

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	cocktail "repro"
)

// Options sizes the serving pool and the session/prefix cache. Zero
// values take defaults.
type Options struct {
	// Workers is the number of concurrent pipeline executions
	// (default runtime.NumCPU()).
	Workers int
	// QueueDepth is how many requests may wait for a worker beyond the
	// ones executing; requests arriving past that are rejected with 503
	// (default 4×Workers).
	QueueDepth int
	// SessionCacheMB is the session/prefix cache byte budget in MiB
	// (0 = default 64). Negative disables cross-request reuse entirely:
	// /v1/answer always runs cold and sessions share nothing (each still
	// retains its own prefill state for its own lifetime).
	SessionCacheMB int
	// SessionTTL bounds both cache-entry idleness and session idleness:
	// entries and sessions untouched for longer are dropped
	// (0 = default 15 minutes). A background janitor sweeps expired
	// sessions and cache entries even when the server is idle.
	SessionTTL time.Duration
	// MaxSessions caps the number of open sessions; opening one past the
	// cap evicts the least-recently-used session (0 = default 1024).
	// Open sessions are additionally byte-capped: the registry evicts
	// LRU sessions whenever their retained prefill KV would exceed the
	// SessionCacheMB budget (its default applies even when the shared
	// cache itself is disabled), so session registrations cannot pin an
	// unbounded multiple of the configured memory.
	MaxSessions int
	// CachePolicy is the prefix-cache admission policy (zero value =
	// CachePolicyLRU, the historical semantics). CachePolicy2Q admits a
	// context only on its second sighting within the TTL window, which
	// protects reused sessions from one-shot scan traffic;
	// CachePolicyA1 additionally trials first sightings in a probation
	// byte segment (ProbationPct); CachePolicyAdaptive flips between
	// admit-everything and second-sighting admission by watching the
	// workload (AdaptWindow).
	CachePolicy cocktail.CachePolicy
	// GhostEntries bounds the 2Q-family ghost list (0 = default 1024);
	// ignored under the LRU policy.
	GhostEntries int
	// ProbationPct is CachePolicyA1's probation share of the cache
	// budget in percent, carved out of SessionCacheMB; must lie in
	// (0, 100), values outside select the 10% default. Ignored by the
	// other policies.
	ProbationPct float64
	// AdaptWindow is CachePolicyAdaptive's evaluation window in
	// admission decisions (0 = default 64). Ignored by the static
	// policies.
	AdaptWindow int
	// SealedCachePct dedicates this percent of the cache budget to
	// sealed-cache entries (prefill builders get the remainder), giving
	// each artifact kind its own byte sub-budget, probation carve-out
	// and admission state — so cheap seal trials and ~3× bigger prefill
	// builders stop competing for one pool. Must lie in (0, 100); 0
	// keeps the shared budget (the historical behavior).
	SealedCachePct float64
	// SealedProbationPct sizes the sealed sub-budget's probation
	// carve-out in percent under CachePolicyA1; 0 inherits
	// ProbationPct. Ignored unless SealedCachePct is set.
	SealedProbationPct float64
	// CacheShards is the session/prefix cache's lock-shard count: the
	// store is split N ways by key hash (rounded up to a power of two),
	// each lock-shard with its own mutex, LRU lists and admission-policy
	// instance, so concurrent requests on different contexts never
	// contend on one lock. 0 selects cocktail.DefaultCacheShards()
	// (NumCPU rounded up to a power of two); negative values pin the
	// historical single-mutex store. Byte budgets split evenly across
	// lock-shards (remainder on shard 0), so very small caches with many
	// shards trade capacity granularity for concurrency.
	CacheShards int
	// CachePersistDir enables the sealed-cache spill tier: admitted
	// sealed caches are also written to this directory as versioned,
	// checksummed artifacts, reloaded on startup (warm restart — a
	// restarted server's first-epoch sealed hit-rate recovers instead of
	// starting cold) and consulted on cache misses as a capacity tier
	// beyond RAM. Corrupt or stale artifacts are deleted and served as
	// misses, never errors. Empty disables persistence.
	CachePersistDir string
	// BatchMax caps how many in-flight answer turns one batch worker
	// interleaves (continuous batching; see batcher.go). 0 selects the
	// default 8; 1 (or any negative value) disables batching entirely —
	// the answer endpoints then dispatch directly to the worker pool, the
	// historical semantics.
	BatchMax int
	// BatchWindow is how long a batch worker holds its first request
	// while coalescing queued arrivals into the batch. 0 selects the
	// default 2ms; negative means no hold (arrivals still join running
	// batches at decode-step boundaries). The window also sizes the
	// per-batch deadline budget (batchDeadlineMult × window) beyond which
	// a running batch stops admitting cold prefills.
	BatchWindow time.Duration
	// CostBudgetMs arms cost-based admission on the answer and
	// session-create paths: the server tracks the predicted milliseconds
	// of admitted work in flight (priced by internal/hwmodel's analytic
	// estimate, calibrated against measured latencies) and sheds with 503
	// any request whose admission would push the predicted drain time —
	// in-flight predicted ms divided by Workers — past this budget. Warm
	// requests are priced decode-only, so shedding prefers work whose
	// prefill is already paid. 0 (and any negative value) disables the
	// cost gate: only depth shedding applies, the historical semantics.
	// Either way the tracker prices the Retry-After header on every
	// load-shedding 503 (predicted drain, clamped to >= 1s).
	CostBudgetMs int
	// TenantHeader names the HTTP request header whose value identifies
	// the tenant for fair scheduling. When set, the batcher's warm/cold
	// lanes become per-tenant deficit-round-robin queues over predicted
	// cost: no backlogged tenant's dispatched share can exceed another's
	// by more than one quantum plus one request (see internal/costsched).
	// Empty (the default) disables tenancy — every request shares one
	// implicit tenant and the lanes are exact FIFOs, the historical
	// semantics. Requests missing the header land in the implicit tenant.
	TenantHeader string
	// AutoTune enables the session cache's budget auto-tuner: at
	// decision-window boundaries the cache nudges its TTL, sealed/prefill
	// byte split and probation percentage by measured hit-rate-per-byte,
	// within hard clamps (see cocktail.SessionCacheOptions.AutoTune).
	// Off by default — the hand-set knobs then behave exactly as before.
	AutoTune bool
	// DisableStreaming turns off SSE token streaming: requests opting in
	// (`?stream=1` or `Accept: text/event-stream`) are served the plain
	// buffered JSON response instead. Streaming is on by default — it
	// changes delivery, never content (the streamed token concatenation
	// is byte-identical to the buffered body by construction).
	DisableStreaming bool
	// Now overrides the wall clock for every TTL/expiry decision — the
	// session registry's idle checks and the session/prefix cache's
	// entry expiry (nil = time.Now) — and the batcher's deadline-budget
	// state. Tests inject a fake clock here to drive expiry without real
	// sleeps. The janitor's tick cadence and the batcher's collect-window
	// hold stay on the real clock: that is scheduling, not expiry state.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.SessionCacheMB == 0 {
		o.SessionCacheMB = 64
	}
	// <= 0, not == 0: the registry's idle check and the store's expiry
	// treat negative TTLs differently, so normalize both to the default.
	if o.SessionTTL <= 0 {
		o.SessionTTL = 15 * time.Minute
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.CacheShards == 0 {
		o.CacheShards = cocktail.DefaultCacheShards()
	}
	if o.CacheShards < 1 {
		o.CacheShards = 1 // any negative spelling pins the single-mutex store
	}
	if o.BatchMax == 0 {
		o.BatchMax = 8
	}
	if o.BatchMax < 1 {
		o.BatchMax = 1 // any disabling spelling normalizes to 1
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// ErrQueueFull is returned by the pool when the wait queue is at capacity.
var ErrQueueFull = errors.New("httpapi: request queue full")

// Server is the HTTP API over one pipeline. It implements http.Handler.
type Server struct {
	p    *cocktail.Pipeline
	mux  *http.ServeMux
	opts Options

	jobs    chan func()
	wg      sync.WaitGroup
	closing sync.Once
	stop    chan struct{} // closed by Close; ends the janitor

	// sc is the cross-request session/prefix cache; nil when disabled.
	sc       *cocktail.SessionCache
	sessions *sessionRegistry

	// batch is the continuous-batching scheduler for the answer
	// endpoints; nil when BatchMax is 1 (batching disabled), in which
	// case those endpoints dispatch directly to the worker pool.
	batch *batcher

	// sched is the cost-model scheduling state (pricer + calibration,
	// predicted-cost admission, tenant keying); always non-nil.
	sched *scheduler

	// streaming aggregates the SSE counters (streams, tokens, TTFT).
	streaming streamStats

	stats map[string]*endpointStats
}

// New returns the HTTP handler tree for a pipeline with default pool
// sizing. The pool's worker goroutines live for the rest of the process;
// callers that need to tear the pool down use NewServer and Close.
func New(p *cocktail.Pipeline) http.Handler { return NewServer(p, Options{}) }

// NewServer builds the API server and starts its worker pool. Call Close
// to stop the workers when the server is no longer needed.
func NewServer(p *cocktail.Pipeline, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		p:        p,
		opts:     opts,
		jobs:     make(chan func(), opts.QueueDepth),
		stop:     make(chan struct{}),
		sessions: newSessionRegistry(opts.SessionTTL, opts.MaxSessions, sessionByteBudget(opts), opts.Now),
		stats: map[string]*endpointStats{
			"/v1/info":           {},
			"/v1/answer":         {},
			"/v1/search":         {},
			"/v1/sample":         {},
			"/v1/metrics":        {},
			"/v1/session":        {},
			"/v1/session/answer": {},
			"/v1/session/append": {},
			"/v1/session/delete": {},
		},
	}
	s.sched = newScheduler(p, opts)
	if opts.SessionCacheMB > 0 {
		s.sc = cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
			MaxBytes:           int64(opts.SessionCacheMB) << 20,
			TTL:                opts.SessionTTL,
			Policy:             opts.CachePolicy,
			GhostEntries:       opts.GhostEntries,
			ProbationPct:       opts.ProbationPct,
			AdaptWindow:        opts.AdaptWindow,
			SealedPct:          opts.SealedCachePct,
			SealedProbationPct: opts.SealedProbationPct,
			Shards:             opts.CacheShards,
			PersistDir:         opts.CachePersistDir,
			Now:                opts.Now,
			AutoTune:           opts.AutoTune,
		})
	}
	if opts.BatchMax > 1 {
		s.batch = newBatcher(s)
	}
	// Janitor: Get/Put expire lazily, but an idle server would otherwise
	// hold expired sessions and cache entries until the next request.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := opts.SessionTTL / 4
		if tick > time.Minute {
			tick = time.Minute
		}
		if tick < time.Second {
			tick = time.Second
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sessions.sweep()
				if s.sc != nil {
					s.sc.Sweep()
				}
			}
		}
	}()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.jobs {
				job()
			}
		}()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/info", s.track("/v1/info", s.info))
	mux.HandleFunc("POST /v1/answer", s.track("/v1/answer", s.answer))
	mux.HandleFunc("POST /v1/search", s.track("/v1/search", s.search))
	mux.HandleFunc("GET /v1/sample", s.track("/v1/sample", s.sample))
	mux.HandleFunc("GET /v1/metrics", s.track("/v1/metrics", s.metrics))
	mux.HandleFunc("POST /v1/session", s.track("/v1/session", s.createSession))
	mux.HandleFunc("POST /v1/session/{id}/answer", s.track("/v1/session/answer", s.sessionAnswer))
	mux.HandleFunc("POST /v1/session/{id}/append", s.track("/v1/session/append", s.sessionAppend))
	mux.HandleFunc("DELETE /v1/session/{id}", s.track("/v1/session/delete", s.deleteSession))
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool (after draining queued jobs) and the
// TTL janitor. The server must not receive further requests once Close
// is called.
func (s *Server) Close() {
	s.closing.Do(func() {
		close(s.jobs)
		close(s.stop)
		s.wg.Wait()
	})
}

// enqueue wraps fn in a context-guarded job and places it on the worker
// queue, returning the job's completion channel. It returns ErrQueueFull
// without enqueueing when the queue is saturated. A job whose context
// died while it sat in the queue is dropped when a worker picks it up,
// so abandoned requests cannot monopolize the pool.
func (s *Server) enqueue(ctx context.Context, fn func()) (<-chan struct{}, error) {
	done := make(chan struct{})
	job := func() {
		defer close(done)
		if ctx.Err() == nil {
			fn()
		}
	}
	select {
	case s.jobs <- job:
		return done, nil
	default:
		return nil, ErrQueueFull
	}
}

// submit runs fn on the worker pool and waits for it to finish. It
// returns ErrQueueFull without running fn when the queue is saturated,
// and the context error if the caller gives up while fn is still queued
// or running (fn's writes must then be discarded).
func (s *Server) submit(ctx context.Context, fn func()) error {
	done, err := s.enqueue(ctx, fn)
	if err != nil {
		return err
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// submitWait runs fn on the worker pool like submit, but never abandons
// it: once enqueued, submitWait blocks until the job has actually
// finished (or was skipped because the context died while it was still
// queued), even if the caller's context is canceled mid-execution. The
// session path needs this: its caller holds the per-session mutex that
// fn's execution depends on, so returning before fn completes would let
// a second Answer run concurrently on the single-owner Session.
func (s *Server) submitWait(ctx context.Context, fn func()) error {
	done, err := s.enqueue(ctx, fn)
	if err != nil {
		return err
	}
	<-done
	return ctx.Err()
}

// endpointStats aggregates one endpoint's counters; all fields are
// updated atomically so the hot path never takes a lock.
type endpointStats struct {
	requests   atomic.Int64
	completed  atomic.Int64 // requests whose latency is in totalNanos
	errors     atomic.Int64 // responses with status >= 400
	rejected   atomic.Int64 // 503s from a saturated queue
	inFlight   atomic.Int64
	totalNanos atomic.Int64
	maxNanos   atomic.Int64
}

func (e *endpointStats) observe(d time.Duration, status int) {
	e.completed.Add(1)
	e.totalNanos.Add(int64(d))
	for {
		max := e.maxNanos.Load()
		if int64(d) <= max || e.maxNanos.CompareAndSwap(max, int64(d)) {
			break
		}
	}
	if status >= 400 {
		e.errors.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		e.rejected.Add(1)
	}
}

// EndpointMetrics is the per-endpoint block of the /v1/metrics payload.
type EndpointMetrics struct {
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Rejected      int64   `json:"rejected"`
	InFlight      int64   `json:"in_flight"`
	MeanLatencyMS float64 `json:"mean_latency_ms"`
	MaxLatencyMS  float64 `json:"max_latency_ms"`
}

// PoolMetrics describes the worker pool's configuration and queue state.
type PoolMetrics struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	QueueLen   int `json:"queue_len"`
}

// SessionCacheMetrics is the session/prefix cache block of the
// /v1/metrics payload: the store's hit/miss/eviction/expiration counters,
// byte occupancy and admission-policy counters (probation hits, ghost
// promotions, scan rejections, segment occupancy, adaptive policy
// flips), plus the number of open sessions. The admission block is
// present in every configuration — zeros under the policy label when the
// policy keeps no such state, so dashboards never need policy-aware
// parsing. With the cache enabled, the kinds block breaks
// entries/bytes/cap (and, under -sealed-cache-pct, per-kind admission)
// down by artifact kind ("prefill", "sealed").
type SessionCacheMetrics struct {
	Enabled bool `json:"enabled"`
	cocktail.CacheStats
	ActiveSessions int `json:"active_sessions"`
}

// BatchingMetrics is the continuous-batching block of the /v1/metrics
// payload. It is present in every configuration — all zeros with Enabled
// false when batching is off — so dashboards never need mode-aware
// parsing. Counter fields are monotonic totals.
type BatchingMetrics struct {
	Enabled bool `json:"enabled"`
	// BatchMax / BatchWindowMS echo the effective configuration.
	BatchMax      int     `json:"batch_max"`
	BatchWindowMS float64 `json:"batch_window_ms"`
	// QueueLen is the current number of queued (not yet picked up)
	// answer requests, both lanes.
	QueueLen int `json:"queue_len"`
	// Batches counts completed batches; BatchedRequests counts the
	// answer turns they ran (collect-phase members and step joiners
	// alike), so MeanBatch = BatchedRequests / Batches.
	Batches         int64   `json:"batches"`
	BatchedRequests int64   `json:"batched_requests"`
	MeanBatch       float64 `json:"mean_batch"`
	// MaxBatch is the largest number of turns any batch interleaved at
	// one step boundary.
	MaxBatch int64 `json:"max_batch"`
	// StepJoins counts requests that joined a batch mid-decode rather
	// than during its collect window.
	StepJoins int64 `json:"step_joins"`
	// SharedPrefills counts requests that reused a batchmate's Session
	// (their context's prefill was paid once for the whole batch).
	SharedPrefills int64 `json:"shared_prefills"`
	// ColdDeferrals counts cold requests a deadline-expired batch
	// declined to absorb; SoloFallbacks counts those that subsequently
	// seeded their own fresh batch (the TTFT fallback path).
	ColdDeferrals int64 `json:"cold_deferrals"`
	SoloFallbacks int64 `json:"solo_fallbacks"`
	// Canceled counts requests dropped at a step boundary (or at pickup)
	// because their client went away; their batchmates keep running.
	Canceled int64 `json:"canceled"`
}

// Metrics is the full /v1/metrics payload.
type Metrics struct {
	Pool         PoolMetrics                `json:"pool"`
	Batching     BatchingMetrics            `json:"batching"`
	Streaming    StreamingMetrics           `json:"streaming"`
	Scheduling   SchedulingMetrics          `json:"scheduling"`
	SessionCache SessionCacheMetrics        `json:"session_cache"`
	Endpoints    map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot returns the server's current metrics.
func (s *Server) Snapshot() Metrics {
	m := Metrics{
		Pool: PoolMetrics{
			Workers:    s.opts.Workers,
			QueueDepth: s.opts.QueueDepth,
			QueueLen:   len(s.jobs),
		},
		SessionCache: SessionCacheMetrics{
			ActiveSessions: s.sessions.len(),
		},
		Endpoints: make(map[string]EndpointMetrics, len(s.stats)),
	}
	if s.batch != nil {
		b := s.batch
		m.Batching = BatchingMetrics{
			Enabled:         true,
			BatchMax:        b.max,
			BatchWindowMS:   float64(b.window) / float64(time.Millisecond),
			QueueLen:        b.queueLen(),
			Batches:         b.batches.Load(),
			BatchedRequests: b.batchedReqs.Load(),
			MaxBatch:        b.maxBatch.Load(),
			StepJoins:       b.stepJoins.Load(),
			SharedPrefills:  b.sharedPrefill.Load(),
			ColdDeferrals:   b.coldDeferrals.Load(),
			SoloFallbacks:   b.soloFallbacks.Load(),
			Canceled:        b.canceled.Load(),
		}
		if m.Batching.Batches > 0 {
			m.Batching.MeanBatch = float64(m.Batching.BatchedRequests) / float64(m.Batching.Batches)
		}
	}
	m.Scheduling = s.schedulingSnapshot()
	m.Streaming = StreamingMetrics{
		Streams:         s.streaming.streams.Load(),
		Tokens:          s.streaming.tokens.Load(),
		MaxTTFTMS:       float64(s.streaming.ttftMax.Load()) / 1e6,
		MidStreamErrors: s.streaming.midErrors.Load(),
		Disconnects:     s.streaming.disconnects.Load(),
	}
	if n := s.streaming.ttftCount.Load(); n > 0 {
		m.Streaming.MeanTTFTMS = float64(s.streaming.ttftTotal.Load()) / float64(n) / 1e6
	}
	if s.sc != nil {
		m.SessionCache.Enabled = true
		m.SessionCache.CacheStats = s.sc.Stats()
	} else {
		// The admission block is emitted in every configuration — all
		// zeros under the configured policy label when the cache is
		// disabled — so dashboards never need policy-aware parsing.
		m.SessionCache.Admission.Policy = s.opts.CachePolicy.String()
	}
	for path, e := range s.stats {
		em := EndpointMetrics{
			Requests: e.requests.Load(),
			Errors:   e.errors.Load(),
			Rejected: e.rejected.Load(),
			InFlight: e.inFlight.Load(),
		}
		// Mean over completed requests only: in-flight ones have no
		// latency recorded yet and would deflate the mean under load.
		if done := e.completed.Load(); done > 0 {
			em.MeanLatencyMS = float64(e.totalNanos.Load()) / float64(done) / 1e6
		}
		em.MaxLatencyMS = float64(e.maxNanos.Load()) / 1e6
		m.Endpoints[path] = em
	}
	return m
}

// statusRecorder captures the response status for the metrics layer.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the wrapped writer so SSE streaming works through the
// metrics wrapper (net/http's ResponseWriter flushes per-frame only when
// the whole middleware chain exposes Flusher).
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// track wraps a handler with the endpoint's latency/throughput counters.
func (s *Server) track(path string, h http.HandlerFunc) http.HandlerFunc {
	st := s.stats[path]
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		st.inFlight.Add(1)
		//cocktail:allow clockinject latency metric, not expiry state: endpoint timings must reflect real elapsed time even under a fake test clock
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		st.inFlight.Add(-1)
		//cocktail:allow clockinject latency metric, not expiry state: pairs with the time.Now above
		st.observe(time.Since(start), rec.status)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) info(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"config":   s.p.Config(),
		"models":   cocktail.Models(),
		"methods":  cocktail.Methods(),
		"encoders": cocktail.Encoders(),
		"datasets": cocktail.Datasets(),
	})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

type answerRequest struct {
	Context []string `json:"context"`
	Query   []string `json:"query"`
}

func (s *Server) answer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !s.opts.DisableStreaming && wantsStream(r) {
		s.answerStream(w, r, req)
		return
	}
	var (
		res *cocktail.Result
		err error
	)
	// Price the request before any work: warm (prefill cache-resident)
	// requests cost decode only, so the admission gate sheds expensive
	// cold prefills first under pressure.
	warm := s.sc != nil && s.sc.Cached(req.Context)
	cost := s.sched.estimateAnswer(len(req.Context), warm)
	//cocktail:allow clockinject latency measurement feeding the cost-model calibration, not expiry state
	start := time.Now()
	perr := func() error {
		release, aerr := s.sched.admit(cost)
		if aerr != nil {
			return aerr
		}
		if s.batch != nil {
			// Batched dispatch: warm-lane classification is a pure cache
			// peek, then the batcher owns execution. Like submit, the
			// handler abandons the wait when the client goes away — the
			// batcher drops the item at pickup or a step boundary. The
			// admission release rides the item: finish() calls it exactly
			// once whether the turn completes, cancels, or is dropped.
			it := &batchItem{
				ctx:          r.Context(),
				contextWords: req.Context,
				query:        req.Query,
				warm:         warm,
				tenant:       s.sched.tenant(r),
				costMs:       cost,
				release:      release,
			}
			if err := s.batch.push(it); err != nil {
				release()
				return err
			}
			select {
			case <-it.done:
				// A context error surfaced by the batcher means the
				// client went away mid-batch: report it like an
				// abandoned pool wait, not a pipeline failure.
				if errors.Is(it.err, context.Canceled) || errors.Is(it.err, context.DeadlineExceeded) {
					return it.err
				}
				res, err = it.res, it.err
				return nil
			case <-r.Context().Done():
				return r.Context().Err()
			}
		}
		defer release()
		return s.submit(r.Context(), func() {
			// With the prefix cache enabled a repeated context skips
			// prefill transparently; the output is byte-identical to the
			// cold path.
			if s.sc != nil {
				res, err = s.sc.Answer(req.Context, req.Query)
			} else {
				res, err = s.p.Answer(req.Context, req.Query)
			}
		})
	}()
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Fold the measured latency back into the pricer (successful,
	// cold-priced requests only — Observe drops zero-cost samples).
	//cocktail:allow clockinject latency measurement feeding the cost-model calibration, pairs with the time.Now above
	s.sched.pricer.Observe(cost, float64(time.Since(start))/float64(time.Millisecond))
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) search(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		scores      []float64
		tlow, thigh float64
		precs       []string
		err         error
	)
	perr := s.submit(r.Context(), func() {
		scores, tlow, thigh, precs, err = s.p.SearchOnly(req.Context, req.Query)
	})
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"scores":     scores,
		"t_low":      tlow,
		"t_high":     thigh,
		"precisions": precs,
	})
}

// poolErr maps submit failures: queue saturation and a blown cost budget
// are both load shedding (503 with a predicted-drain Retry-After);
// anything else means the client went away mid-flight (499-style; the
// response is moot but a status keeps logs honest).
func (s *Server) poolErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverBudget) {
		s.shedErr(w, err)
		return
	}
	writeErr(w, http.StatusRequestTimeout, err)
}

// liveSession is one open session. The wrapped cocktail.Session is
// single-owner; mu serializes Answer calls so concurrent HTTP requests
// against the same session id are safe (they queue, in arbitrary order).
type liveSession struct {
	id   string
	mu   sync.Mutex
	sess *cocktail.Session
	// bytes is the session's retained prefill KV footprint (fixed at
	// creation); lastUsed is guarded by the registry mutex.
	bytes    int64
	lastUsed time.Time
}

// sessionRegistry maps session ids to open sessions. Sessions idle
// beyond the TTL are expired lazily on every access and by the server's
// janitor; the session count is capped (LRU session evicted at the cap),
// which bounds the prefill state session registrations can pin — the
// registry holds the only server-side reference to a session's prefill
// state, so expiry, eviction or DELETE is what releases session memory
// not shared through the byte-budgeted store. Safe for concurrent use.
//
// Alongside the id map the registry keeps one recency list (front = most
// recently used, like the store's LRU lists), so the per-access expiry
// check touches only the stale tail — O(expired), not O(sessions) — and
// cap eviction pops the list tail instead of re-scanning the map per
// victim. The list also makes eviction deterministic under equal
// lastUsed stamps (common with an injected test clock): victims leave in
// least-recently-touched order, where a map scan broke ties by random
// iteration order.
type sessionRegistry struct {
	mu       sync.Mutex
	ttl      time.Duration
	max      int
	maxBytes int64 // cap on the sessions' summed retained prefill KV
	now      func() time.Time
	m        map[string]*list.Element // values are *liveSession
	ll       *list.List               // recency order, front = MRU
	bytes    int64                    // current sum of liveSession.bytes
}

// sessionByteBudget derives the registry's byte cap from the cache
// budget; a disabled cache (negative MB) still gets the default budget
// so store-less sessions stay bounded.
func sessionByteBudget(opts Options) int64 {
	if opts.SessionCacheMB <= 0 {
		return 64 << 20
	}
	return int64(opts.SessionCacheMB) << 20
}

func newSessionRegistry(ttl time.Duration, max int, maxBytes int64, now func() time.Time) *sessionRegistry {
	if now == nil {
		now = time.Now
	}
	return &sessionRegistry{
		ttl: ttl, max: max, maxBytes: maxBytes, now: now,
		m: make(map[string]*list.Element), ll: list.New()}
}

// removeLocked drops one session and its byte accounting. Callers hold r.mu.
func (r *sessionRegistry) removeLocked(id string) {
	if el, ok := r.m[id]; ok {
		r.bytes -= el.Value.(*liveSession).bytes
		r.ll.Remove(el)
		delete(r.m, id)
	}
}

// expireLocked drops sessions idle beyond the TTL. The recency list is
// ordered by lastUsed (every touch moves the session to the front), so
// walking from the back touches only expired sessions plus one unexpired
// sentinel — the whole-map scan this replaces made every get/add O(n).
// Callers hold r.mu.
func (r *sessionRegistry) expireLocked(now time.Time) {
	for el := r.ll.Back(); el != nil; el = r.ll.Back() {
		ls := el.Value.(*liveSession)
		if now.Sub(ls.lastUsed) <= r.ttl {
			break
		}
		r.removeLocked(ls.id)
	}
}

// sweep drops expired sessions now (the janitor's entry point).
func (r *sessionRegistry) sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(r.now())
}

func (r *sessionRegistry) add(sess *cocktail.Session) (*liveSession, error) {
	var buf [12]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	ls := &liveSession{id: hex.EncodeToString(buf[:]), sess: sess, bytes: sess.SizeBytes()}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Like the store, refuse a session that alone exceeds the whole byte
	// budget — admitting it would both blow the cap and evict every
	// other session for nothing.
	if ls.bytes > r.maxBytes {
		return nil, fmt.Errorf("httpapi: context prefill KV (%d bytes) exceeds the session byte budget (%d bytes)",
			ls.bytes, r.maxBytes)
	}
	now := r.now()
	r.expireLocked(now)
	// At either cap — session count or summed prefill KV bytes — evict
	// the least-recently-used session: the recency list's tail (clients
	// see a 404 on its next use and reopen — session-as-cache
	// semantics). Tail order also pins the tie-break: sessions touched
	// at the same instant (an injected clock makes that common) evict in
	// least-recently-touched order, not map-iteration order.
	for r.ll.Len() > 0 && (r.ll.Len() >= r.max || r.bytes+ls.bytes > r.maxBytes) {
		r.removeLocked(r.ll.Back().Value.(*liveSession).id)
	}
	ls.lastUsed = now
	r.m[ls.id] = r.ll.PushFront(ls)
	r.bytes += ls.bytes
	return ls, nil
}

func (r *sessionRegistry) get(id string) (*liveSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.expireLocked(now)
	el, ok := r.m[id]
	if !ok {
		return nil, false
	}
	ls := el.Value.(*liveSession)
	ls.lastUsed = now
	r.ll.MoveToFront(el)
	return ls, true
}

// resize re-reads a session's retained prefill footprint after an append
// grew it, updates the byte accounting, and evicts LRU *other* sessions
// while the budget is exceeded — never the resized session itself, which
// the append just made most-recently-used (evicting it would invalidate
// the session id the client is actively growing). A grown session larger
// than the whole budget therefore stays resident alone; it becomes the
// eviction victim of the next add. Callers hold the session's own mutex
// so the footprint read is stable.
func (r *sessionRegistry) resize(ls *liveSession) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.m[ls.id]
	if !ok {
		return // expired or evicted since the handler fetched it
	}
	nb := ls.sess.SizeBytes()
	r.bytes += nb - ls.bytes
	ls.bytes = nb
	ls.lastUsed = r.now()
	r.ll.MoveToFront(el)
	for r.bytes > r.maxBytes && r.ll.Len() > 1 {
		r.removeLocked(r.ll.Back().Value.(*liveSession).id)
	}
}

func (r *sessionRegistry) delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Expire first so deleting a TTL-stale id reports 404 exactly like
	// any other access to it would.
	r.expireLocked(r.now())
	_, ok := r.m[id]
	r.removeLocked(id)
	return ok
}

func (r *sessionRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(r.now())
	return len(r.m)
}

type sessionRequest struct {
	Context []string `json:"context"`
}

// SessionInfo is the POST /v1/session response payload.
type SessionInfo struct {
	SessionID     string `json:"session_id"`
	ContextTokens int    `json:"context_tokens"`
	// CachedPrefill reports whether the context KV came from the shared
	// prefix cache rather than a fresh prefill run.
	CachedPrefill bool `json:"cached_prefill"`
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		sess *cocktail.Session
		err  error
	)
	// A session create is pure prefill; when the context is already
	// prefix-cached the work is a copy, priced free (cheap to keep).
	cost := s.sched.estimatePrefill(len(req.Context), s.sc != nil && s.sc.Cached(req.Context))
	release, aerr := s.sched.admit(cost)
	if aerr != nil {
		s.poolErr(w, aerr)
		return
	}
	//cocktail:allow clockinject latency measurement feeding the cost-model calibration, not expiry state
	start := time.Now()
	perr := s.submit(r.Context(), func() {
		if s.sc != nil {
			sess, err = s.sc.Prefill(req.Context)
		} else {
			sess, err = s.p.Prefill(req.Context)
		}
	})
	release()
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err == nil {
		//cocktail:allow clockinject latency measurement feeding the cost-model calibration, pairs with the time.Now above
		s.sched.pricer.Observe(cost, float64(time.Since(start))/float64(time.Millisecond))
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	ls, err := s.sessions.add(sess)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionInfo{
		SessionID:     ls.id,
		ContextTokens: sess.ContextTokens(),
		CachedPrefill: sess.CachedPrefill(),
	})
}

type sessionAnswerRequest struct {
	Query []string `json:"query"`
}

func (s *Server) sessionAnswer(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("httpapi: unknown or expired session"))
		return
	}
	var req sessionAnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !s.opts.DisableStreaming && wantsStream(r) {
		s.sessionAnswerStream(w, r, ls, req.Query)
		return
	}
	var (
		res  *cocktail.Result
		err  error
		cost float64
	)
	//cocktail:allow clockinject latency measurement feeding the cost-model calibration, not expiry state
	start := time.Now()
	// Serialize on the session BEFORE taking a pool slot: requests racing
	// on one session id queue here holding no worker, so a hot session
	// can occupy at most one worker and cannot starve other endpoints.
	// submitWait semantics in both modes — the lock is never released
	// while the batcher or pool may still touch the single-owner Session.
	perr := func() error {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		// Session answers are warm by construction — the prefill is
		// pinned by the session — so they are priced decode-only. The
		// context size is read under the lock (Append can grow it).
		cost = s.sched.estimateAnswer(ls.sess.ContextTokens(), true)
		release, aerr := s.sched.admit(cost)
		if aerr != nil {
			return aerr
		}
		if s.batch != nil {
			// Session answers ride the warm lane: their prefill is
			// pinned by the session, so batching them never inserts a
			// prefill stall into a running batch.
			it := &batchItem{ctx: r.Context(), sess: ls.sess, query: req.Query, warm: true,
				tenant: s.sched.tenant(r), costMs: cost, release: release}
			if berr := s.batch.push(it); berr != nil {
				release()
				return berr
			}
			<-it.done
			res, err = it.res, it.err
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				res, err = nil, nil
			}
			return r.Context().Err()
		}
		defer release()
		return s.submitWait(r.Context(), func() {
			res, err = ls.sess.Answer(req.Query)
		})
	}()
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	//cocktail:allow clockinject latency measurement feeding the cost-model calibration, pairs with the time.Now above
	s.sched.pricer.Observe(cost, float64(time.Since(start))/float64(time.Millisecond))
	writeJSON(w, http.StatusOK, res)
}

// sessionAppend is POST /v1/session/{id}/append: grow the session's
// context in place by delta-prefilling the posted words as a suffix (see
// cocktail.Session.Append — byte-identical to a cold prefill of the
// concatenation). On success the registry's byte accounting is updated to
// the grown prefill footprint. On failure (unknown vocabulary, MaxSeq
// overflow → 422) the session is untouched and still answerable.
func (s *Server) sessionAppend(w http.ResponseWriter, r *http.Request) {
	ls, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("httpapi: unknown or expired session"))
		return
	}
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		err  error
		info SessionInfo
	)
	// Serialize on the session before taking a pool slot, and keep the
	// lock through the registry resize and the response snapshot: the
	// byte accounting must read the grown session's footprint before any
	// concurrent append changes it again. submitWait semantics — the lock
	// is never released while the pool may still touch the single-owner
	// Session.
	perr := func() error {
		ls.mu.Lock()
		defer ls.mu.Unlock()
		if werr := s.submitWait(r.Context(), func() {
			err = ls.sess.Append(req.Context)
		}); werr != nil {
			return werr
		}
		if err == nil {
			s.sessions.resize(ls)
			info = SessionInfo{
				SessionID:     ls.id,
				ContextTokens: ls.sess.ContextTokens(),
				CachedPrefill: ls.sess.CachedPrefill(),
			}
		}
		return nil
	}()
	if perr != nil {
		s.poolErr(w, perr)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.delete(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, errors.New("httpapi: unknown or expired session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) sample(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	if dataset == "" {
		dataset = "Qasper"
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		seed = 1
	}
	// Sample generation is cheap and the pipeline is concurrency-safe, so
	// this endpoint bypasses the inference pool.
	sample, serr := s.p.NewSample(dataset, seed)
	if serr != nil {
		writeErr(w, http.StatusNotFound, serr)
		return
	}
	writeJSON(w, http.StatusOK, sample)
}
