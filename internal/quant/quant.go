// Package quant implements the low-bit quantization kernels of the
// reproduction: asymmetric uniform group quantization to INT2/INT4/INT8
// with bit-packed storage, per-token and per-channel grouping axes, a
// non-uniform (codebook) variant modelled on KVQuant's nuqX data type, and
// fused dequantize-multiply kernels (the paper's "fqm").
//
// Storage layout. Codes are packed little-endian within a byte in row-major
// order (INT4: two codes per byte, INT2: four). Group scale and zero-point
// parameters are stored as IEEE binary16 exactly as GPU kernels do, so the
// byte accounting used by the hardware model is honest:
//
//	bytes = ceil(rows*cols*bits/8) + 4*numGroups (+ 4*2^bits codebook)
package quant

import (
	"fmt"
	"math"

	"repro/internal/f16"
	"repro/internal/mathx"
)

// Bits is a supported integer bitwidth.
type Bits int

// Supported bitwidths.
const (
	INT2 Bits = 2
	INT4 Bits = 4
	INT8 Bits = 8
)

// Levels returns the number of representable codes.
func (b Bits) Levels() int { return 1 << b }

func (b Bits) valid() bool { return b == INT2 || b == INT4 || b == INT8 }

// Axis selects the grouping direction.
type Axis int

const (
	// PerToken groups run along a row (one token's channels share scales),
	// the conventional KV quantization axis (Atom, KIVI's V cache).
	PerToken Axis = iota
	// PerChannel groups run down a column (one channel across G tokens
	// shares scales), KIVI's K-cache axis.
	PerChannel
)

// String returns the axis label ("per-token" or "per-channel").
func (a Axis) String() string {
	if a == PerChannel {
		return "per-channel"
	}
	return "per-token"
}

// Tensor is a quantized rows×cols matrix. A Tensor is immutable after
// Quantize and safe for any number of concurrent readers — sealed KV
// caches rely on this to share quantized segments across request forks.
type Tensor struct {
	Bits       Bits
	Rows, Cols int
	Axis       Axis
	GroupSize  int

	codes []byte
	// scales/zeros are indexed by group id (see groupIndex); stored FP16.
	scales []f16.F16
	zeros  []f16.F16
	// codebook, when non-nil, holds 2^bits normalized levels in [0,1] used
	// instead of the uniform grid (non-uniform quantization, KVQuant nuqX).
	codebook []float32
}

// Config controls quantization.
type Config struct {
	Bits      Bits
	Axis      Axis
	GroupSize int       // values per scale group; <=0 defaults to 32
	Codebook  []float32 // optional normalized non-uniform levels in [0,1]
}

// DefaultGroupSize is the group size used when Config.GroupSize <= 0.
const DefaultGroupSize = 32

// Quantize quantizes a rows×cols row-major matrix.
func Quantize(data []float32, rows, cols int, cfg Config) *Tensor {
	if len(data) != rows*cols {
		panic("quant: data length mismatch")
	}
	if !cfg.Bits.valid() {
		panic(fmt.Sprintf("quant: unsupported bitwidth %d", cfg.Bits))
	}
	g := cfg.GroupSize
	if g <= 0 {
		g = DefaultGroupSize
	}
	if cfg.Codebook != nil && len(cfg.Codebook) != cfg.Bits.Levels() {
		panic("quant: codebook size must be 2^bits")
	}
	t := &Tensor{
		Bits: cfg.Bits, Rows: rows, Cols: cols,
		Axis: cfg.Axis, GroupSize: g,
		codes:    make([]byte, (rows*cols*int(cfg.Bits)+7)/8),
		codebook: cfg.Codebook,
	}
	ng := t.numGroups()
	t.scales = make([]f16.F16, ng)
	t.zeros = make([]f16.F16, ng)

	// First pass: per-group min/max.
	mins := make([]float32, ng)
	maxs := make([]float32, ng)
	for i := range mins {
		mins[i] = float32(math.Inf(1))
		maxs[i] = float32(math.Inf(-1))
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			gi := t.groupIndex(i, j)
			v := data[i*cols+j]
			if v < mins[gi] {
				mins[gi] = v
			}
			if v > maxs[gi] {
				maxs[gi] = v
			}
		}
	}
	maxCode := float32(cfg.Bits.Levels() - 1)
	for gi := range mins {
		if math.IsInf(float64(mins[gi]), 1) { // empty group (rows==0)
			mins[gi], maxs[gi] = 0, 0
		}
		scale := (maxs[gi] - mins[gi]) / maxCode
		t.scales[gi] = f16.From32(scale)
		t.zeros[gi] = f16.From32(mins[gi])
	}

	// Second pass: encode. Scale/zero are used at FP16 precision, matching
	// what a GPU kernel would load at dequantization time.
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			gi := t.groupIndex(i, j)
			scale := f16.To32(t.scales[gi])
			zero := f16.To32(t.zeros[gi])
			v := data[i*cols+j]
			var code int
			if scale == 0 {
				code = 0
			} else if t.codebook != nil {
				code = nearestLevel(t.codebook, (v-zero)/(scale*maxCode))
			} else {
				code = int(mathx.Clamp((v-zero)/scale+0.5, 0, maxCode))
			}
			t.setCode(i*cols+j, code)
		}
	}
	return t
}

// numGroups returns the number of scale groups.
func (t *Tensor) numGroups() int {
	g := t.GroupSize
	switch t.Axis {
	case PerChannel:
		return ((t.Rows + g - 1) / g) * t.Cols
	default:
		return t.Rows * ((t.Cols + g - 1) / g)
	}
}

// groupIndex maps element (i, j) to its scale group.
func (t *Tensor) groupIndex(i, j int) int {
	g := t.GroupSize
	if t.Axis == PerChannel {
		return (i/g)*t.Cols + j
	}
	return i*((t.Cols+g-1)/g) + j/g
}

func (t *Tensor) setCode(idx, code int) {
	switch t.Bits {
	case INT8:
		t.codes[idx] = byte(code)
	case INT4:
		shift := uint((idx & 1) * 4)
		t.codes[idx>>1] |= byte(code) << shift
	case INT2:
		shift := uint((idx & 3) * 2)
		t.codes[idx>>2] |= byte(code) << shift
	}
}

// Code returns the raw integer code of element index idx (row-major).
func (t *Tensor) Code(idx int) int {
	switch t.Bits {
	case INT8:
		return int(t.codes[idx])
	case INT4:
		return int(t.codes[idx>>1]>>uint((idx&1)*4)) & 0xf
	default: // INT2
		return int(t.codes[idx>>2]>>uint((idx&3)*2)) & 0x3
	}
}

// nearestLevel returns the index of the codebook level closest to x.
// Codebook levels must be sorted ascending.
func nearestLevel(cb []float32, x float32) int {
	lo, hi := 0, len(cb)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if cb[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	if x-cb[lo] <= cb[hi]-x {
		return lo
	}
	return hi
}

// level converts a code to its normalized position in [0,1].
func (t *Tensor) level(code int) float32 {
	if t.codebook != nil {
		return t.codebook[code]
	}
	return float32(code) / float32(t.Bits.Levels()-1)
}

// At dequantizes element (i, j).
func (t *Tensor) At(i, j int) float32 {
	gi := t.groupIndex(i, j)
	scale := f16.To32(t.scales[gi])
	zero := f16.To32(t.zeros[gi])
	maxCode := float32(t.Bits.Levels() - 1)
	return zero + t.level(t.Code(i*t.Cols+j))*scale*maxCode
}

// DequantRowInto writes the dequantized row i into dst (len == Cols).
func (t *Tensor) DequantRowInto(dst []float32, i int) {
	if len(dst) != t.Cols {
		panic("quant: DequantRowInto length mismatch")
	}
	maxCode := float32(t.Bits.Levels() - 1)
	base := i * t.Cols
	for j := 0; j < t.Cols; j++ {
		gi := t.groupIndex(i, j)
		dst[j] = f16.To32(t.zeros[gi]) + t.level(t.Code(base+j))*f16.To32(t.scales[gi])*maxCode
	}
}

// Dequantize materializes the full matrix.
func (t *Tensor) Dequantize() []float32 {
	out := make([]float32, t.Rows*t.Cols)
	for i := 0; i < t.Rows; i++ {
		t.DequantRowInto(out[i*t.Cols:(i+1)*t.Cols], i)
	}
	return out
}

// DotRow computes dot(q, dequant(row i)) without materializing the row —
// the inner kernel of the paper's fqm (FP16 × quantized matrix multiply).
func (t *Tensor) DotRow(q []float32, i int) float32 {
	if len(q) != t.Cols {
		panic("quant: DotRow length mismatch")
	}
	maxCode := float32(t.Bits.Levels() - 1)
	base := i * t.Cols
	var s float64
	if t.Axis == PerToken && t.codebook == nil {
		// Fast path: scales constant within a row group; accumulate code
		// dot-products per group and apply affine transform once.
		g := t.GroupSize
		for j0 := 0; j0 < t.Cols; j0 += g {
			j1 := j0 + g
			if j1 > t.Cols {
				j1 = t.Cols
			}
			gi := t.groupIndex(i, j0)
			sc := f16.To32(t.scales[gi])
			zr := f16.To32(t.zeros[gi])
			var codeDot, qSum float64
			for j := j0; j < j1; j++ {
				qv := float64(q[j])
				codeDot += qv * float64(t.Code(base+j))
				qSum += qv
			}
			s += codeDot*float64(sc) + qSum*float64(zr)
		}
		return float32(s)
	}
	for j := 0; j < t.Cols; j++ {
		gi := t.groupIndex(i, j)
		v := f16.To32(t.zeros[gi]) + t.level(t.Code(base+j))*f16.To32(t.scales[gi])*maxCode
		s += float64(q[j]) * float64(v)
	}
	return float32(s)
}

// ScoresInto computes dst[i] = dot(q, row_i) for every row (fqm against a
// transposed K block). dst must have length Rows.
func (t *Tensor) ScoresInto(dst []float32, q []float32) {
	if len(dst) != t.Rows {
		panic("quant: ScoresInto length mismatch")
	}
	for i := 0; i < t.Rows; i++ {
		dst[i] = t.DotRow(q, i)
	}
}

// AxpyRow accumulates dst += alpha * dequant(row i) — the V-side fqm kernel.
func (t *Tensor) AxpyRow(dst []float32, alpha float32, i int) {
	if len(dst) != t.Cols {
		panic("quant: AxpyRow length mismatch")
	}
	maxCode := float32(t.Bits.Levels() - 1)
	base := i * t.Cols
	for j := 0; j < t.Cols; j++ {
		gi := t.groupIndex(i, j)
		v := f16.To32(t.zeros[gi]) + t.level(t.Code(base+j))*f16.To32(t.scales[gi])*maxCode
		dst[j] += alpha * v
	}
}

// Bytes returns the storage footprint in bytes: packed codes, FP16 scales
// and zeros, and the codebook if present. This is the honest accounting
// the hardware model and the session store's byte budget both consume.
func (t *Tensor) Bytes() int {
	b := len(t.codes) + 2*len(t.scales) + 2*len(t.zeros)
	if t.codebook != nil {
		b += 4 * len(t.codebook)
	}
	return b
}

// MaxGroupError returns the worst-case absolute reconstruction error bound
// implied by the stored scales (scale/2 per element for uniform grids).
func (t *Tensor) MaxGroupError() float32 {
	if t.codebook != nil {
		panic("quant: MaxGroupError undefined for codebook tensors")
	}
	var worst float32
	for _, s := range t.scales {
		if e := f16.To32(s) / 2; e > worst {
			worst = e
		}
	}
	return worst
}

// GaussianCodebook returns a 2^bits non-uniform codebook with levels placed
// at Gaussian quantiles, normalized to [0,1]. This approximates KVQuant's
// sensitivity-weighted nuqX levels for near-Gaussian KV distributions and
// beats the uniform grid on them.
func GaussianCodebook(bits Bits) []float32 {
	n := bits.Levels()
	cb := make([]float32, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		cb[i] = float32(gaussQuantile(p))
	}
	// Normalize to [0,1].
	lo, hi := cb[0], cb[n-1]
	for i := range cb {
		cb[i] = (cb[i] - lo) / (hi - lo)
	}
	return cb
}

// gaussQuantile is the standard normal quantile (Acklam's approximation,
// accurate to ~1e-9 — far below quantization error).
func gaussQuantile(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
