package quant

import (
	"testing"

	"repro/internal/f16"
)

// FuzzSymmetricQuantize fuzzes matrix geometry (rows, cols, bitwidth,
// axis, group size) and contents and asserts the symmetric grid's
// contract: codes stay in range and every reconstructed value is within
// the grid's half-step of the input (plus the FP16 scale/zero rounding
// the format pays by design).
//
// Values are decoded from raw bytes onto odd multiples of 1/32 in
// (-8, 8), so every group has max|x| >= 1/32 and the FP16 scale can
// never collapse to zero — the bound below is then exact, not vacuous.
func FuzzSymmetricQuantize(f *testing.F) {
	f.Add([]byte{0, 255, 128, 7, 19, 200, 90, 31}, byte(3), byte(4), byte(0))
	f.Add([]byte{1, 2, 3, 4}, byte(1), byte(1), byte(1))
	f.Add([]byte{250, 250, 250, 0, 0, 0}, byte(2), byte(3), byte(5))
	f.Add([]byte{42}, byte(12), byte(16), byte(17))
	f.Fuzz(func(t *testing.T, raw []byte, rows8, cols8, pick byte) {
		rows := int(rows8 % 13)   // 0..12 (rows == 0 is a legal empty matrix)
		cols := int(cols8%16) + 1 // 1..16
		bits := []Bits{INT2, INT4, INT8}[int(pick)%3]
		axis := Axis(int(pick/3) % 2)
		group := int(pick/8) % 40 // 0 selects DefaultGroupSize
		if len(raw) == 0 {
			raw = []byte{0}
		}
		data := make([]float32, rows*cols)
		for i := range data {
			data[i] = (float32(raw[i%len(raw)]) - 127.5) / 16
		}

		q := SymmetricQuantize(data, rows, cols, Config{Bits: bits, Axis: axis, GroupSize: group})
		if q.Rows != rows || q.Cols != cols {
			t.Fatalf("geometry mangled: %dx%d != %dx%d", q.Rows, q.Cols, rows, cols)
		}
		if got := q.Bytes(); got < (rows*cols*int(bits)+7)/8 {
			t.Fatalf("Bytes() = %d below packed-code floor", got)
		}

		maxCode := bits.Levels() - 1
		for idx := range data {
			if c := q.Code(idx); c < 0 || c > maxCode {
				t.Fatalf("code %d at %d outside [0, %d]", c, idx, maxCode)
			}
		}

		deq := q.Dequantize()
		if len(deq) != rows*cols {
			t.Fatalf("Dequantize length %d != %d", len(deq), rows*cols)
		}
		// Per-group max|x|, mirroring the quantizer's range choice.
		m := make([]float32, q.numGroups())
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				v := data[i*cols+j]
				if v < 0 {
					v = -v
				}
				if gi := q.groupIndex(i, j); v > m[gi] {
					m[gi] = v
				}
			}
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				gi := q.groupIndex(i, j)
				scale := f16.To32(q.scales[gi])
				// Half a grid step, plus the clamp shortfall FP16
				// rounding of scale/zero can introduce at the range
				// edges (|zero| <= m, relative error 2^-11 each).
				bound := scale/2 + m[gi]/512 + 1e-5
				got, want := deq[i*cols+j], data[i*cols+j]
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				if diff > bound {
					t.Fatalf("(%d,%d): |%g - %g| = %g exceeds bound %g (scale %g, group max %g, bits %d, axis %v, group %d)",
						i, j, got, want, diff, bound, scale, m[gi], bits, axis, q.GroupSize)
				}
				if a := q.At(i, j); a != got {
					t.Fatalf("At(%d,%d) = %g disagrees with Dequantize %g", i, j, a, got)
				}
			}
		}
	})
}
