package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rngx"
)

func gaussData(seed uint64, rows, cols int) []float32 {
	return rngx.New(seed).GaussianVec(rows*cols, 1)
}

func TestRoundTripErrorBoundUniform(t *testing.T) {
	for _, bits := range []Bits{INT2, INT4, INT8} {
		for _, axis := range []Axis{PerToken, PerChannel} {
			rows, cols := 37, 48 // non-divisible by group on the token axis
			data := gaussData(uint64(bits), rows, cols)
			q := Quantize(data, rows, cols, Config{Bits: bits, Axis: axis, GroupSize: 16})
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					got := q.At(i, j)
					want := data[i*cols+j]
					// Bound: uniform step/2 plus FP16 rounding of scale/zero.
					bound := float64(q.MaxGroupError())*1.01 + 1e-3
					if math.Abs(float64(got-want)) > bound {
						t.Fatalf("bits=%d axis=%v (%d,%d): |%v-%v| > %v",
							bits, axis, i, j, got, want, bound)
					}
				}
			}
		}
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	data := gaussData(7, 64, 64)
	var prev float64 = math.Inf(1)
	for _, bits := range []Bits{INT2, INT4, INT8} {
		q := Quantize(data, 64, 64, Config{Bits: bits})
		err := mathx.MeanAbsDiff(q.Dequantize(), data)
		if err >= prev {
			t.Fatalf("bits=%d error %v not below previous %v", bits, err, prev)
		}
		prev = err
	}
}

func TestDequantRowMatchesAt(t *testing.T) {
	data := gaussData(3, 10, 20)
	q := Quantize(data, 10, 20, Config{Bits: INT4, GroupSize: 8})
	row := make([]float32, 20)
	for i := 0; i < 10; i++ {
		q.DequantRowInto(row, i)
		for j := 0; j < 20; j++ {
			if row[j] != q.At(i, j) {
				t.Fatalf("row dequant disagrees at (%d,%d)", i, j)
			}
		}
	}
}

// TestDotRowMatchesDequantDot: the fused kernel must agree with
// dequantize-then-dot for all bitwidths, axes and codebooks.
func TestDotRowMatchesDequantDot(t *testing.T) {
	r := rngx.New(11)
	for _, bits := range []Bits{INT2, INT4, INT8} {
		for _, axis := range []Axis{PerToken, PerChannel} {
			for _, cb := range [][]float32{nil, GaussianCodebook(bits)} {
				rows, cols := 9, 33
				data := gaussData(uint64(bits)+100, rows, cols)
				q := Quantize(data, rows, cols, Config{Bits: bits, Axis: axis, GroupSize: 16, Codebook: cb})
				qv := r.GaussianVec(cols, 1)
				row := make([]float32, cols)
				for i := 0; i < rows; i++ {
					q.DequantRowInto(row, i)
					want := mathx.Dot(qv, row)
					got := q.DotRow(qv, i)
					if math.Abs(float64(got-want)) > 1e-3 {
						t.Fatalf("bits=%d axis=%v cb=%v row=%d: %v != %v", bits, axis, cb != nil, i, got, want)
					}
				}
			}
		}
	}
}

func TestScoresIntoMatchesDotRow(t *testing.T) {
	r := rngx.New(13)
	data := gaussData(5, 12, 16)
	q := Quantize(data, 12, 16, Config{Bits: INT4})
	qv := r.GaussianVec(16, 1)
	dst := make([]float32, 12)
	q.ScoresInto(dst, qv)
	for i := range dst {
		if dst[i] != q.DotRow(qv, i) {
			t.Fatalf("ScoresInto disagrees at %d", i)
		}
	}
}

func TestAxpyRowMatchesDequant(t *testing.T) {
	data := gaussData(17, 6, 24)
	q := Quantize(data, 6, 24, Config{Bits: INT2, GroupSize: 8})
	dst := make([]float32, 24)
	q.AxpyRow(dst, 0.5, 3)
	row := make([]float32, 24)
	q.DequantRowInto(row, 3)
	for j := range dst {
		if math.Abs(float64(dst[j]-0.5*row[j])) > 1e-6 {
			t.Fatalf("AxpyRow wrong at %d", j)
		}
	}
}

func TestPerChannelBeatsPerTokenOnChannelStructure(t *testing.T) {
	// Build data whose channels have very different scales: per-channel
	// grouping should then quantize with lower error than per-token
	// grouping — the KIVI observation for K caches.
	r := rngx.New(23)
	rows, cols := 64, 32
	data := make([]float32, rows*cols)
	for j := 0; j < cols; j++ {
		chScale := float32(math.Pow(10, float64(j%4)-2)) // 0.01 .. 10
		for i := 0; i < rows; i++ {
			data[i*cols+j] = r.NormFloat32() * chScale
		}
	}
	qc := Quantize(data, rows, cols, Config{Bits: INT4, Axis: PerChannel, GroupSize: 32})
	qt := Quantize(data, rows, cols, Config{Bits: INT4, Axis: PerToken, GroupSize: 32})
	errC := mathx.MeanAbsDiff(qc.Dequantize(), data)
	errT := mathx.MeanAbsDiff(qt.Dequantize(), data)
	if errC >= errT {
		t.Fatalf("per-channel error %v not below per-token %v", errC, errT)
	}
}

func TestCodebookBeatsUniformOnGaussian(t *testing.T) {
	data := gaussData(29, 128, 32)
	nu := Quantize(data, 128, 32, Config{Bits: INT4, Codebook: GaussianCodebook(INT4), GroupSize: 128})
	un := Quantize(data, 128, 32, Config{Bits: INT4, GroupSize: 128})
	errN := mathx.MeanAbsDiff(nu.Dequantize(), data)
	errU := mathx.MeanAbsDiff(un.Dequantize(), data)
	if errN >= errU {
		t.Fatalf("nuq error %v not below uniform %v on Gaussian data", errN, errU)
	}
}

func TestBytesAccounting(t *testing.T) {
	rows, cols, g := 64, 64, 32
	for _, tc := range []struct {
		bits Bits
		want int
	}{
		{INT2, 64*64/4 + 4*(64*2)*2/2*2}, // codes + scales/zeros fp16
		{INT4, 64 * 64 / 2},
		{INT8, 64 * 64},
	} {
		q := Quantize(make([]float32, rows*cols), rows, cols, Config{Bits: tc.bits, GroupSize: g})
		ng := rows * (cols / g)
		wantBytes := rows*cols*int(tc.bits)/8 + 4*ng
		if q.Bytes() != wantBytes {
			t.Fatalf("bits=%d Bytes() = %d, want %d", tc.bits, q.Bytes(), wantBytes)
		}
	}
}

func TestConstantGroupIsExact(t *testing.T) {
	data := make([]float32, 32)
	for i := range data {
		data[i] = 3.25 // exactly representable in FP16
	}
	q := Quantize(data, 1, 32, Config{Bits: INT2})
	for j := 0; j < 32; j++ {
		if q.At(0, j) != 3.25 {
			t.Fatalf("constant group not exact: %v", q.At(0, j))
		}
	}
}

func TestEmptyTensor(t *testing.T) {
	q := Quantize(nil, 0, 16, Config{Bits: INT4})
	if q.Bytes() != 0 || len(q.Dequantize()) != 0 {
		t.Fatal("empty tensor should have zero footprint")
	}
}

func TestGaussianCodebookShape(t *testing.T) {
	for _, bits := range []Bits{INT2, INT4, INT8} {
		cb := GaussianCodebook(bits)
		if len(cb) != bits.Levels() {
			t.Fatalf("codebook size %d", len(cb))
		}
		if cb[0] != 0 || cb[len(cb)-1] != 1 {
			t.Fatalf("codebook not normalized: %v..%v", cb[0], cb[len(cb)-1])
		}
		for i := 1; i < len(cb); i++ {
			if cb[i] <= cb[i-1] {
				t.Fatal("codebook not strictly increasing")
			}
		}
		// Non-uniform: center gaps smaller than edge gaps.
		n := len(cb)
		if n >= 8 && cb[n/2]-cb[n/2-1] >= cb[1]-cb[0] {
			t.Fatal("Gaussian codebook should be denser near the center")
		}
	}
}

// Property: quantization never produces values outside the group's
// [min - eps, max + eps] envelope.
func TestQuantStaysInEnvelope(t *testing.T) {
	check := func(seed uint64) bool {
		data := gaussData(seed, 8, 16)
		q := Quantize(data, 8, 16, Config{Bits: INT2, GroupSize: 8})
		mn, mx := mathx.MinMax(data)
		for i := 0; i < 8; i++ {
			for j := 0; j < 16; j++ {
				v := q.At(i, j)
				if v < mn-0.02 || v > mx+0.02 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantize(make([]float32, 4), 2, 3, Config{Bits: INT4}) },                            // bad len
		func() { Quantize(make([]float32, 4), 2, 2, Config{Bits: 3}) },                               // bad bits
		func() { Quantize(make([]float32, 4), 2, 2, Config{Bits: INT4, Codebook: []float32{0, 1}}) }, // bad cb size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNearestLevel(t *testing.T) {
	cb := []float32{0, 0.4, 0.6, 1}
	cases := []struct {
		x    float32
		want int
	}{{-1, 0}, {0.19, 0}, {0.21, 1}, {0.5, 1}, {0.51, 2}, {0.9, 3}, {2, 3}}
	for _, c := range cases {
		if got := nearestLevel(cb, c.x); got != c.want {
			t.Fatalf("nearestLevel(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}
