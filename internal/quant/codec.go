package quant

// codec.go is the binary serialization of a Tensor, used by the sealed
// KV-cache spill tier (internal/sessioncache persistence) to round-trip
// quantized segments through disk bit-exactly. The format is
// little-endian and self-describing enough to validate: every array
// length is checked against the tensor geometry before use, so corrupt
// input yields an error, never a panic or a silent mis-shape.
//
// Layout (all integers little-endian):
//
//	u8    bits (2, 4 or 8)
//	u8    axis (0 per-token, 1 per-channel)
//	u32   rows
//	u32   cols
//	u32   group size
//	u8    codebook flag (0 or 1)
//	bytes packed codes, ceil(rows*cols*bits/8)
//	u16×n scales (FP16 bit patterns), n = numGroups
//	u16×n zeros
//	f32×L codebook (IEEE-754 bit patterns), L = 2^bits, when flagged

import (
	"encoding/binary"
	"errors"
	"math"

	"repro/internal/f16"
)

// errCodec is returned for any malformed Tensor serialization.
var errCodec = errors.New("quant: malformed tensor encoding")

// codecMaxDim bounds decoded dimensions so a corrupt length cannot drive
// a giant allocation before the size cross-checks run.
const codecMaxDim = 1 << 24

// AppendBinary appends t's binary serialization to buf and returns the
// extended slice. Tensors are immutable, so concurrent AppendBinary calls
// on one tensor are safe.
func (t *Tensor) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(t.Bits), byte(t.Axis))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Cols))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.GroupSize))
	if t.codebook != nil {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = append(buf, t.codes...)
	for _, s := range t.scales {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
	}
	for _, z := range t.zeros {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(z))
	}
	for _, c := range t.codebook {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(c))
	}
	return buf
}

// DecodeTensor decodes one Tensor from the front of data, returning the
// tensor and the remaining bytes. The decoded tensor is geometry-checked
// field by field; any inconsistency returns errCodec.
func DecodeTensor(data []byte) (*Tensor, []byte, error) {
	if len(data) < 15 {
		return nil, nil, errCodec
	}
	t := &Tensor{
		Bits:      Bits(data[0]),
		Axis:      Axis(data[1]),
		Rows:      int(binary.LittleEndian.Uint32(data[2:6])),
		Cols:      int(binary.LittleEndian.Uint32(data[6:10])),
		GroupSize: int(binary.LittleEndian.Uint32(data[10:14])),
	}
	hasCB := data[14]
	rest := data[15:]
	if !t.Bits.valid() || (t.Axis != PerToken && t.Axis != PerChannel) || hasCB > 1 {
		return nil, nil, errCodec
	}
	if t.Rows < 0 || t.Cols < 0 || t.Rows > codecMaxDim || t.Cols > codecMaxDim || t.GroupSize <= 0 {
		return nil, nil, errCodec
	}
	nCodes := (t.Rows*t.Cols*int(t.Bits) + 7) / 8
	ng := t.numGroups()
	nCB := 0
	if hasCB == 1 {
		nCB = t.Bits.Levels()
	}
	if len(rest) < nCodes+2*2*ng+4*nCB {
		return nil, nil, errCodec
	}
	t.codes = append([]byte(nil), rest[:nCodes]...)
	rest = rest[nCodes:]
	readF16s := func(n int) []f16.F16 {
		out := make([]f16.F16, n)
		for i := range out {
			out[i] = f16.F16(binary.LittleEndian.Uint16(rest[2*i:]))
		}
		rest = rest[2*n:]
		return out
	}
	t.scales = readF16s(ng)
	t.zeros = readF16s(ng)
	if nCB > 0 {
		t.codebook = make([]float32, nCB)
		for i := range t.codebook {
			t.codebook[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		rest = rest[4*nCB:]
	}
	return t, rest, nil
}
