package quant

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rngx"
)

func TestFitCodebookShape(t *testing.T) {
	r := rngx.New(1)
	samples := r.GaussianVec(4096, 1)
	cb := FitCodebook(INT4, samples, 8)
	if len(cb) != 16 || cb[0] != 0 || cb[15] != 1 {
		t.Fatalf("codebook malformed: %v", cb)
	}
	for i := 1; i < len(cb); i++ {
		if cb[i] <= cb[i-1] {
			t.Fatal("codebook not strictly increasing")
		}
	}
}

// TestFittedBeatsGaussianOnSkewedData: on a bimodal/skewed distribution
// the fitted codebook must beat the fixed Gaussian-quantile one.
func TestFittedBeatsGaussianOnSkewedData(t *testing.T) {
	r := rngx.New(2)
	n, d := 256, 32
	data := make([]float32, n*d)
	for i := range data {
		// Bimodal: a narrow spike at 0 and a cluster near 3.
		if r.Float64() < 0.7 {
			data[i] = r.NormFloat32() * 0.05
		} else {
			data[i] = 3 + r.NormFloat32()*0.1
		}
	}
	fitted := FitCodebook(INT2, data, 8)
	qf := Quantize(data, n, d, Config{Bits: INT2, Codebook: fitted, GroupSize: 32})
	qg := Quantize(data, n, d, Config{Bits: INT2, Codebook: GaussianCodebook(INT2), GroupSize: 32})
	ef := mathx.MeanAbsDiff(qf.Dequantize(), data)
	eg := mathx.MeanAbsDiff(qg.Dequantize(), data)
	if ef >= eg {
		t.Fatalf("fitted error %v not below Gaussian %v on bimodal data", ef, eg)
	}
}

func TestFitCodebookDegenerate(t *testing.T) {
	if cb := FitCodebook(INT2, []float32{1}, 4); len(cb) != 4 {
		t.Fatal("short input should fall back to uniform grid")
	}
	same := []float32{2, 2, 2, 2, 2, 2}
	cb := FitCodebook(INT2, same, 4)
	if cb[0] != 0 || cb[3] != 1 {
		t.Fatalf("constant input should fall back to uniform: %v", cb)
	}
}

func TestSymmetricQuantizeCentered(t *testing.T) {
	r := rngx.New(3)
	n, d := 64, 32
	data := r.GaussianVec(n*d, 1)
	q := SymmetricQuantize(data, n, d, Config{Bits: INT4, GroupSize: 32})
	// Round trip error bounded by one step (2*max/(levels-1)).
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			got, want := q.At(i, j), data[i*d+j]
			if math.Abs(float64(got-want)) > 0.5 {
				t.Fatalf("symmetric reconstruction too lossy at (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
	// Zero inputs reconstruct near zero (grid is centered).
	zero := make([]float32, 32)
	zero[0] = 1 // non-degenerate range
	qz := SymmetricQuantize(zero, 1, 32, Config{Bits: INT8, GroupSize: 32})
	if math.Abs(float64(qz.At(0, 5))) > 0.01 {
		t.Fatalf("zero not representable on symmetric INT8 grid: %v", qz.At(0, 5))
	}
}

// TestAsymmetricBeatsSymmetricOnSkewedData: the design choice the main
// implementation makes (asymmetric min/max grids) must pay off on skewed
// groups.
func TestAsymmetricBeatsSymmetricOnSkewedData(t *testing.T) {
	r := rngx.New(4)
	n, d := 128, 32
	data := make([]float32, n*d)
	for i := range data {
		data[i] = 2 + r.NormFloat32()*0.3 // all-positive, far from zero
	}
	qa := Quantize(data, n, d, Config{Bits: INT4, GroupSize: 32})
	qs := SymmetricQuantize(data, n, d, Config{Bits: INT4, GroupSize: 32})
	ea := mathx.MeanAbsDiff(qa.Dequantize(), data)
	es := mathx.MeanAbsDiff(qs.Dequantize(), data)
	if ea >= es {
		t.Fatalf("asymmetric error %v not below symmetric %v on skewed data", ea, es)
	}
}

func TestSymmetricDotRowConsistent(t *testing.T) {
	r := rngx.New(5)
	n, d := 16, 32
	data := r.GaussianVec(n*d, 1)
	q := SymmetricQuantize(data, n, d, Config{Bits: INT4, GroupSize: 16})
	qv := r.GaussianVec(d, 1)
	row := make([]float32, d)
	for i := 0; i < n; i++ {
		q.DequantRowInto(row, i)
		want := mathx.Dot(qv, row)
		if got := q.DotRow(qv, i); math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("DotRow mismatch on symmetric tensor: %v vs %v", got, want)
		}
	}
}
