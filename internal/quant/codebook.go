package quant

import (
	"sort"

	"repro/internal/f16"
)

// FitCodebook learns a non-uniform codebook from sample data with
// Lloyd-Max (k-means in 1-D): levels are placed to minimize mean squared
// error on the empirical distribution, then normalized to [0,1] for use
// with Config.Codebook. This is the data-dependent alternative to the
// fixed Gaussian-quantile codebook (KVQuant fits its nuqX levels offline
// on calibration data in the same way).
//
// The returned codebook is strictly increasing. iters Lloyd iterations are
// run (8 is plenty for 1-D); samples must contain at least 2^bits distinct
// values or the uniform grid is returned.
func FitCodebook(bits Bits, samples []float32, iters int) []float32 {
	n := bits.Levels()
	if len(samples) < n {
		return uniformGrid(n)
	}
	sorted := make([]float64, len(samples))
	for i, v := range samples {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		return uniformGrid(n)
	}

	// Initialize at quantiles of the empirical distribution.
	levels := make([]float64, n)
	for i := range levels {
		q := (float64(i) + 0.5) / float64(n)
		levels[i] = sorted[int(q*float64(len(sorted)-1))]
	}

	assignSum := make([]float64, n)
	assignCnt := make([]int, n)
	for it := 0; it < iters; it++ {
		for i := range assignSum {
			assignSum[i], assignCnt[i] = 0, 0
		}
		// Assign each sample to its nearest level (two-pointer sweep over
		// the sorted samples and sorted levels).
		li := 0
		for _, v := range sorted {
			for li+1 < n && levels[li+1]-v < v-levels[li] {
				li++
			}
			assignSum[li] += v
			assignCnt[li]++
		}
		for i := range levels {
			if assignCnt[i] > 0 {
				levels[i] = assignSum[i] / float64(assignCnt[i])
			}
		}
		sort.Float64s(levels) // guard against collapsed levels reordering
	}

	// Normalize to [0,1] and enforce strict monotonicity.
	cb := make([]float32, n)
	span := levels[n-1] - levels[0]
	if span == 0 {
		return uniformGrid(n)
	}
	for i := range cb {
		cb[i] = float32((levels[i] - levels[0]) / span)
	}
	for i := 1; i < n; i++ {
		if cb[i] <= cb[i-1] {
			cb[i] = cb[i-1] + 1e-6
		}
	}
	cb[n-1] = 1
	cb[0] = 0
	return cb
}

func uniformGrid(n int) []float32 {
	cb := make([]float32, n)
	for i := range cb {
		cb[i] = float32(i) / float32(n-1)
	}
	return cb
}

// SymmetricQuantize quantizes a rows×cols row-major matrix with a
// symmetric grid: per group, the zero-point is fixed at -m and the range
// at [-m, +m] with m = max|x| over the group, so the grid is centered on
// zero. Symmetric grids waste range on skewed data (the design-choice
// ablation in bench_test.go measures the cost) but real kernels like them
// because the zero-point multiply disappears. The returned Tensor obeys
// the same immutability contract as Quantize's.
func SymmetricQuantize(data []float32, rows, cols int, cfg Config) *Tensor {
	if len(data) != rows*cols {
		panic("quant: data length mismatch")
	}
	g := cfg.GroupSize
	if g <= 0 {
		g = DefaultGroupSize
	}
	// Compute per-group max|x| using a scratch tensor for group geometry.
	probe := &Tensor{Bits: cfg.Bits, Rows: rows, Cols: cols, Axis: cfg.Axis, GroupSize: g}
	ng := probe.numGroups()
	m := make([]float32, ng)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			gi := probe.groupIndex(i, j)
			v := data[i*cols+j]
			if v < 0 {
				v = -v
			}
			if v > m[gi] {
				m[gi] = v
			}
		}
	}
	if !cfg.Bits.valid() {
		panic("quant: unsupported bitwidth")
	}
	t := &Tensor{
		Bits: cfg.Bits, Rows: rows, Cols: cols,
		Axis: cfg.Axis, GroupSize: g,
		codes:    make([]byte, (rows*cols*int(cfg.Bits)+7)/8),
		codebook: cfg.Codebook,
	}
	t.scales = make([]f16.F16, ng)
	t.zeros = make([]f16.F16, ng)
	maxCode := float32(cfg.Bits.Levels() - 1)
	for gi := 0; gi < ng; gi++ {
		t.scales[gi] = f16.From32(2 * m[gi] / maxCode)
		t.zeros[gi] = f16.From32(-m[gi])
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			gi := t.groupIndex(i, j)
			scale := f16.To32(t.scales[gi])
			zero := f16.To32(t.zeros[gi])
			v := data[i*cols+j]
			var code int
			if scale == 0 {
				code = 0
			} else if t.codebook != nil {
				code = nearestLevel(t.codebook, (v-zero)/(scale*maxCode))
			} else {
				c := (v-zero)/scale + 0.5
				if c < 0 {
					c = 0
				}
				if c > maxCode {
					c = maxCode
				}
				code = int(c)
			}
			t.setCode(i*cols+j, code)
		}
	}
	return t
}
