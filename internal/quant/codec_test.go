package quant

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rngx"
)

// TestCodecRoundTrip: every bitwidth × axis × codebook combination, with
// ragged geometry (odd rows, partial groups, partial pack bytes), must
// decode back field-identical — codes, FP16 scale/zero bit patterns and
// codebook included — with SizeBytes preserved.
func TestCodecRoundTrip(t *testing.T) {
	r := rngx.New(7)
	for _, bits := range []Bits{INT2, INT4, INT8} {
		for _, axis := range []Axis{PerToken, PerChannel} {
			for _, withCB := range []bool{false, true} {
				for _, dims := range [][2]int{{1, 1}, {3, 5}, {17, 16}, {31, 33}} {
					rows, cols := dims[0], dims[1]
					data := r.GaussianVec(rows*cols, 1.5)
					cfg := Config{Bits: bits, Axis: axis, GroupSize: 16}
					if withCB {
						cfg.Codebook = FitCodebook(bits, data, 4)
					}
					orig := Quantize(data, rows, cols, cfg)
					got, rest, err := DecodeTensor(orig.AppendBinary(nil))
					if err != nil {
						t.Fatalf("%db %v rows=%d cols=%d cb=%v: %v", bits, axis, rows, cols, withCB, err)
					}
					if len(rest) != 0 {
						t.Fatalf("%d bytes left over after decode", len(rest))
					}
					if !reflect.DeepEqual(orig, got) {
						t.Fatalf("%db %v rows=%d cols=%d cb=%v: round trip diverged\norig %+v\ngot  %+v",
							bits, axis, rows, cols, withCB, orig, got)
					}
					if orig.Bytes() != got.Bytes() {
						t.Fatalf("Bytes %d -> %d", orig.Bytes(), got.Bytes())
					}
				}
			}
		}
	}
}

// TestCodecSequentialDecode: DecodeTensor consumes exactly one tensor
// from the front and hands back the remainder — the contract the sealed
// cache codec relies on when decoding K then V then further fields.
func TestCodecSequentialDecode(t *testing.T) {
	r := rngx.New(11)
	a := Quantize(r.GaussianVec(8*16, 1), 8, 16, Config{Bits: INT4, GroupSize: 16})
	b := Quantize(r.GaussianVec(4*16, 1), 4, 16, Config{Bits: INT2, GroupSize: 16})
	buf := b.AppendBinary(a.AppendBinary(nil))
	buf = append(buf, 0xAB, 0xCD) // trailing non-tensor bytes

	gotA, rest, err := DecodeTensor(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeTensor(rest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, gotA) || !reflect.DeepEqual(b, gotB) {
		t.Fatal("sequential decode diverged")
	}
	if len(rest) != 2 || rest[0] != 0xAB || rest[1] != 0xCD {
		t.Fatalf("remainder mangled: %x", rest)
	}
}

// TestCodecRejectsMalformed: every malformation errors cleanly — no
// panic, no giant allocation, no silently mis-shaped tensor.
func TestCodecRejectsMalformed(t *testing.T) {
	valid := Quantize(make([]float32, 8*8), 8, 8, Config{Bits: INT4, GroupSize: 8}).AppendBinary(nil)
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":         nil,
		"short-header":  valid[:10],
		"truncated":     valid[:len(valid)-1],
		"bad-bits":      mutate(func(b []byte) { b[0] = 3 }),
		"bad-axis":      mutate(func(b []byte) { b[1] = 7 }),
		"bad-cb-flag":   mutate(func(b []byte) { b[14] = 2 }),
		"zero-group":    mutate(func(b []byte) { b[10], b[11], b[12], b[13] = 0, 0, 0, 0 }),
		"huge-rows":     mutate(func(b []byte) { b[2], b[3], b[4], b[5] = 0xff, 0xff, 0xff, 0xff }),
		"oversize-rows": mutate(func(b []byte) { b[5] = 0x02 }), // > codecMaxDim, plausible size
	}
	for name, data := range cases {
		if _, _, err := DecodeTensor(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestCodecDequantIdentical: beyond field equality, the decoded tensor
// must dequantize to bit-identical float rows (what Attend actually
// consumes).
func TestCodecDequantIdentical(t *testing.T) {
	r := rngx.New(13)
	orig := Quantize(r.GaussianVec(12*32, 2), 12, 32, Config{Bits: INT4, Axis: PerChannel, GroupSize: 16})
	got, _, err := DecodeTensor(orig.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	a, b := make([]float32, 32), make([]float32, 32)
	for row := 0; row < 12; row++ {
		orig.DequantRowInto(a, row)
		got.DequantRowInto(b, row)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("row %d col %d: %v != %v", row, i, a[i], b[i])
			}
		}
	}
}
