package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rngx"
)

func TestRowSetAt(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Set/At broken")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row is not a view")
	}
}

func TestFromRowsAndClone(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(2, 1) != 6 || tt.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tt)
	}
}

func TestMulVecVecMul(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	y := m.MulVec([]float32{1, 1})
	if y[0] != 3 || y[1] != 7 || y[2] != 11 {
		t.Fatalf("MulVec wrong: %v", y)
	}
	z := m.VecMul([]float32{1, 0, 1})
	if z[0] != 6 || z[1] != 8 {
		t.Fatalf("VecMul wrong: %v", z)
	}
}

func TestMulMatchesManual(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float32{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

// TestMulTConsistency: MulT(a, b) must equal Mul(a, b.T()).
func TestMulTConsistency(t *testing.T) {
	check := func(seed uint64) bool {
		r := rngx.New(seed)
		a := Gaussian(r, 4, 6, 1)
		b := Gaussian(r, 5, 6, 1)
		x := MulT(a, b)
		y := Mul(a, b.T())
		for i := range x.Data {
			if math.Abs(float64(x.Data[i]-y.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMulAssociativityWithVec: (a·b)·x == a·(b·x) within float tolerance.
func TestMulAssociativityWithVec(t *testing.T) {
	r := rngx.New(3)
	a := Gaussian(r, 3, 4, 1)
	b := Gaussian(r, 4, 5, 1)
	x := r.GaussianVec(5, 1)
	left := Mul(a, b).MulVec(x)
	right := a.MulVec(b.MulVec(x))
	for i := range left {
		if math.Abs(float64(left[i]-right[i])) > 1e-4 {
			t.Fatalf("associativity violated at %d: %v vs %v", i, left[i], right[i])
		}
	}
}

func TestAdd(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{3, 4}})
	c := Add(a, b)
	if c.At(0, 0) != 4 || c.At(0, 1) != 6 {
		t.Fatalf("Add wrong: %v", c.Data)
	}
	if a.At(0, 0) != 1 {
		t.Fatal("Add mutated input")
	}
}

func TestAppendRow(t *testing.T) {
	m := New(0, 2)
	m.AppendRow([]float32{1, 2})
	m.AppendRow([]float32{3, 4})
	if m.Rows != 2 || m.At(1, 1) != 4 {
		t.Fatalf("AppendRow wrong: %+v", m)
	}
}

func TestSliceRows(t *testing.T) {
	m := FromRows([][]float32{{1}, {2}, {3}, {4}})
	s := m.SliceRows(1, 3)
	if s.Rows != 2 || s.At(0, 0) != 2 || s.At(1, 0) != 3 {
		t.Fatalf("SliceRows wrong: %+v", s)
	}
	s.Set(0, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("SliceRows is not a view")
	}
}

func TestDimensionPanics(t *testing.T) {
	m := New(2, 2)
	for _, f := range []func(){
		func() { m.MulVec([]float32{1}) },
		func() { m.VecMul([]float32{1}) },
		func() { Mul(m, New(3, 2)) },
		func() { MulT(m, New(2, 3)) },
		func() { Add(m, New(1, 2)) },
		func() { m.AppendRow([]float32{1}) },
		func() { m.SliceRows(1, 3) },
		func() { m.Row(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
