// Package tensor provides the dense row-major matrix type used by the
// transformer substrate. It is intentionally minimal: the reproduction only
// needs 2-D float32 matrices with matmul, transposed matmul and row views.
package tensor

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rngx"
)

// Mat is a dense row-major matrix of float32.
type Mat struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("tensor: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix by copying the given equal-length rows.
func FromRows(rows [][]float32) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Gaussian returns a matrix with i.i.d. N(0, sigma^2) entries.
func Gaussian(r *rngx.RNG, rows, cols int, sigma float64) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(r.Norm() * sigma)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Mat) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of range [0,%d)", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 {
	if j < 0 || j >= m.Cols {
		panic("tensor: col out of range")
	}
	return m.Row(i)[j]
}

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) {
	if j < 0 || j >= m.Cols {
		panic("tensor: col out of range")
	}
	m.Row(i)[j] = v
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Mat) T() *Mat {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes m · x for a vector x of length m.Cols.
func (m *Mat) MulVec(x []float32) []float32 {
	if len(x) != m.Cols {
		panic("tensor: MulVec dimension mismatch")
	}
	y := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = mathx.Dot(m.Row(i), x)
	}
	return y
}

// VecMul computes xᵀ · m for a vector x of length m.Rows (i.e. mᵀ·x).
func (m *Mat) VecMul(x []float32) []float32 {
	if len(x) != m.Rows {
		panic("tensor: VecMul dimension mismatch")
	}
	y := make([]float32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		mathx.Axpy(x[i], m.Row(i), y)
	}
	return y
}

// Mul computes a · b.
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic("tensor: Mul dimension mismatch")
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			mathx.Axpy(av, b.Row(k), crow)
		}
	}
	return c
}

// MulT computes a · bᵀ, the attention-score shape (rows of b are keys).
func MulT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic("tensor: MulT dimension mismatch")
	}
	c := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			crow[j] = mathx.Dot(arow, b.Row(j))
		}
	}
	return c
}

// Add computes a + b element-wise into a new matrix.
func Add(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: Add shape mismatch")
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] += v
	}
	return c
}

// AppendRow grows the matrix by one row (copying the data).
func (m *Mat) AppendRow(row []float32) {
	if len(row) != m.Cols {
		panic("tensor: AppendRow width mismatch")
	}
	m.Data = append(m.Data, row...)
	m.Rows++
}

// SliceRows returns a view matrix of rows [lo, hi) sharing storage with m.
func (m *Mat) SliceRows(lo, hi int) *Mat {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic("tensor: SliceRows out of range")
	}
	return &Mat{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}
