package encoder

import (
	"math"

	"repro/internal/corpus"
)

// BM25 is the lexical retrieval baseline (Okapi BM25 with the standard
// k1/b parametrization). It sees surface forms only: a query that
// paraphrases the needle scores zero on the exact terms, which is why it
// loses Table IV.
type BM25 struct {
	k1, b float64
	vocab int
}

// NewBM25 returns a BM25 scorer with the conventional k1=1.2, b=0.75.
func NewBM25(lex *corpus.Lexicon) *BM25 {
	return &BM25{k1: 1.2, b: 0.75, vocab: len(lex.Words)}
}

// Name returns "BM25".
func (s *BM25) Name() string { return "BM25" }

// Similarities scores each chunk against the query with document
// frequencies computed over the chunk collection itself.
func (s *BM25) Similarities(query []int, chunks [][]int) []float64 {
	n := len(chunks)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	// Document frequencies and average length.
	df := map[int]int{}
	var totalLen int
	for _, c := range chunks {
		totalLen += len(c)
		seen := map[int]bool{}
		for _, id := range c {
			if !seen[id] {
				seen[id] = true
				df[id]++
			}
		}
	}
	avgLen := float64(totalLen) / float64(n)
	if avgLen == 0 {
		return out
	}

	// Query term frequencies (deduplicated with counts).
	qtf := map[int]int{}
	for _, id := range query {
		if id >= 0 {
			qtf[id]++
		}
	}

	for i, c := range chunks {
		tf := map[int]int{}
		for _, id := range c {
			tf[id]++
		}
		var score float64
		for term := range qtf {
			f := float64(tf[term])
			if f == 0 {
				continue
			}
			idf := math.Log(1 + (float64(n)-float64(df[term])+0.5)/(float64(df[term])+0.5))
			denom := f + s.k1*(1-s.b+s.b*float64(len(c))/avgLen)
			score += idf * f * (s.k1 + 1) / denom
		}
		out[i] = score
	}
	return out
}
