package encoder

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/rngx"
)

func lex() *corpus.Lexicon { return corpus.NewLexicon(corpus.Defaults(1)) }

// needleScenario builds chunks with one needle chunk sharing concepts with
// the query. If paraphrase is true, the query uses alternate surface forms.
func needleScenario(r *rngx.RNG, l *corpus.Lexicon, nChunks int, paraphrase bool) (chunks [][]int, query []int, needleIdx int) {
	chunks, _ = l.PassageChunks(r, nChunks, 32, nil)
	needleIdx = r.Intn(nChunks)
	// The needle chunk embeds 4 multi-form concepts; the query mentions
	// the same concepts (other forms when paraphrasing).
	prose := l.ProseTopics()
	tp := prose[r.Intn(len(prose))]
	var concepts []int
	for _, c := range l.TopicConcepts(tp) {
		if len(l.FormsOf(c)) >= 2 {
			concepts = append(concepts, c)
		}
		if len(concepts) == 4 {
			break
		}
	}
	fw := l.FunctionWordIDs()
	for k, c := range concepts {
		inCtx := l.FormsOf(c)[0]
		// A relevant chunk mentions its entities more than once.
		chunks[needleIdx][k*3] = inCtx
		chunks[needleIdx][k*3+16] = inCtx
		qForm := inCtx
		if paraphrase {
			qForm = l.AlternateForm(r, c, inCtx)
		}
		query = append(query, qForm)
	}
	query = append(query, fw[0], fw[1])
	return chunks, query, needleIdx
}

func argmaxF(xs []float64) int {
	bi := 0
	for i, x := range xs {
		if x > xs[bi] {
			bi = i
		}
	}
	return bi
}

// retrievalAccuracy counts how often an encoder ranks the needle chunk first.
func retrievalAccuracy(t *testing.T, enc Encoder, paraphrase bool, trials int) float64 {
	t.Helper()
	l := lex()
	r := rngx.New(42)
	ok := 0
	for i := 0; i < trials; i++ {
		chunks, query, needle := needleScenario(r, l, 16, paraphrase)
		scores := enc.Similarities(query, chunks)
		if len(scores) != len(chunks) {
			t.Fatal("score length mismatch")
		}
		if argmaxF(scores) == needle {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

func TestContrieverFindsNeedleExact(t *testing.T) {
	if acc := retrievalAccuracy(t, NewContriever(lex()), false, 30); acc < 0.9 {
		t.Fatalf("Contriever exact accuracy %v, want >= 0.9", acc)
	}
}

func TestContrieverFindsNeedleParaphrased(t *testing.T) {
	if acc := retrievalAccuracy(t, NewContriever(lex()), true, 30); acc < 0.8 {
		t.Fatalf("Contriever paraphrase accuracy %v, want >= 0.8", acc)
	}
}

func TestBM25ExactGoodParaphraseBad(t *testing.T) {
	bm := NewBM25(lex())
	exact := retrievalAccuracy(t, bm, false, 30)
	para := retrievalAccuracy(t, bm, true, 30)
	if exact < 0.8 {
		t.Fatalf("BM25 exact accuracy %v, want >= 0.8", exact)
	}
	if para > exact-0.3 {
		t.Fatalf("BM25 paraphrase accuracy %v should collapse vs exact %v", para, exact)
	}
}

// TestEncoderOrdering reproduces the Table IV quality ordering on
// paraphrased retrieval: Contriever >= LLM-Embedder >= ADA-002 > BM25.
func TestEncoderOrdering(t *testing.T) {
	l := lex()
	accC := retrievalAccuracy(t, NewContriever(l), true, 40)
	accL := retrievalAccuracy(t, NewLLMEmbedder(l), true, 40)
	accA := retrievalAccuracy(t, NewADA002(l), true, 40)
	accB := retrievalAccuracy(t, NewBM25(l), true, 40)
	if !(accC >= accL && accL >= accA && accA > accB) {
		t.Fatalf("ordering violated: contriever=%v llmembedder=%v ada=%v bm25=%v",
			accC, accL, accA, accB)
	}
}

func TestDenseEmbedDeterministicAndNormalized(t *testing.T) {
	l := lex()
	d1 := NewContriever(l)
	d2 := NewContriever(l)
	toks := []int{1, 5, 9, 200}
	e1 := d1.Embed(toks)
	e2 := d2.Embed(toks)
	var norm float64
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("embedding not deterministic")
		}
		norm += float64(e1[i]) * float64(e1[i])
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("embedding norm^2 = %v, want 1", norm)
	}
}

func TestEmbedHandlesEmptyAndOOV(t *testing.T) {
	d := NewContriever(lex())
	e := d.Embed(nil)
	for _, v := range e {
		if v != 0 {
			t.Fatal("empty embedding should be zero vector")
		}
	}
	_ = d.Embed([]int{-1, 1 << 30}) // must not panic
}

func TestSynonymsCloseInDenseSpace(t *testing.T) {
	l := lex()
	d := NewContriever(l)
	for c := 0; c < l.NumConcepts(); c++ {
		forms := l.FormsOf(c)
		if len(forms) < 2 {
			continue
		}
		a, b := d.Embed([]int{forms[0]}), d.Embed([]int{forms[1]})
		var dot float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
		}
		if dot < 0.75 {
			t.Fatalf("synonym cos %v too low in Contriever space", dot)
		}
		return
	}
}

func TestIDFDownweightsFunctionWords(t *testing.T) {
	l := lex()
	idf := DocumentFrequencyIDF(l)
	fw := l.FunctionWordIDs()[0]
	// Compare against the median content word IDF.
	var contentIDF float64
	var n int
	for id, w := range l.Words {
		if w.Topic >= 0 {
			contentIDF += idf[id]
			n++
		}
	}
	contentIDF /= float64(n)
	if idf[fw] >= contentIDF {
		t.Fatalf("function word idf %v not below mean content idf %v", idf[fw], contentIDF)
	}
}

func TestBM25EdgeCases(t *testing.T) {
	bm := NewBM25(lex())
	if got := bm.Similarities([]int{1}, nil); len(got) != 0 {
		t.Fatal("nil chunks should give empty scores")
	}
	got := bm.Similarities(nil, [][]int{{1, 2}, {3}})
	for _, s := range got {
		if s != 0 {
			t.Fatal("empty query should give zero scores")
		}
	}
	got = bm.Similarities([]int{1}, [][]int{{}, {}})
	for _, s := range got {
		if s != 0 {
			t.Fatal("empty chunks should give zero scores")
		}
	}
}

func TestNames(t *testing.T) {
	l := lex()
	for _, tc := range []struct {
		enc  Encoder
		want string
	}{
		{NewContriever(l), "Facebook-Contriever"},
		{NewLLMEmbedder(l), "LLM Embedder"},
		{NewADA002(l), "ADA-002"},
		{NewBM25(l), "BM25"},
	} {
		if tc.enc.Name() != tc.want {
			t.Fatalf("Name() = %q, want %q", tc.enc.Name(), tc.want)
		}
	}
}
