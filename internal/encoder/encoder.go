// Package encoder implements the retrieval encoders behind the paper's
// chunk-level quantization search (Module I) and its Table IV comparison:
// Facebook-Contriever, LLM-Embedder and ADA-002 as dense encoders, and
// BM25 as the lexical baseline.
//
// Substitution note. The real systems are pretrained; offline we construct
// their essential property instead: a dense encoder maps words to vectors
// built from the word's *concept* (so synonyms land close — that is what
// "pretrained semantic knowledge" buys), perturbed by encoder-specific
// surface noise. Encoder quality is then a knob: Contriever-sim has the
// least noise, LLM-Embedder-sim a bit more, ADA-002-sim the most and a
// smaller dimension. BM25 sees only surface forms, so paraphrased queries
// miss — reproducing the paper's ordering (Contriever > LLM-Embedder >
// ADA-002 > BM25).
package encoder

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/mathx"
	"repro/internal/rngx"
)

// Encoder scores context chunks against a query. Scores are comparable
// within one call; Module I only consumes their relative order via the
// min/max-based thresholds of Eq. 2–3.
type Encoder interface {
	Name() string
	// Similarities returns one score per chunk, higher = more relevant.
	Similarities(query []int, chunks [][]int) []float64
}

// denseConfig sizes one simulated dense encoder.
type denseConfig struct {
	name         string
	dim          int
	surfaceNoise float64 // weight of the surface-form component
	topicWeight  float64 // weight of the topic component
	seed         uint64
}

// Dense is a simulated dense bi-encoder over the lexicon's concept space.
type Dense struct {
	cfg denseConfig
	lex *corpus.Lexicon
	vec [][]float32 // per word id, unit normalized
	idf []float64   // per word id
}

// NewContriever returns the Facebook-Contriever stand-in (best fidelity).
func NewContriever(lex *corpus.Lexicon) *Dense {
	return newDense(lex, denseConfig{name: "Facebook-Contriever", dim: 256, surfaceNoise: 0.12, topicWeight: 0.05, seed: 0xc047})
}

// NewLLMEmbedder returns the LLM-Embedder stand-in.
func NewLLMEmbedder(lex *corpus.Lexicon) *Dense {
	return newDense(lex, denseConfig{name: "LLM Embedder", dim: 192, surfaceNoise: 0.22, topicWeight: 0.07, seed: 0x11ed})
}

// NewADA002 returns the ADA-002 stand-in (smallest dimension, most noise).
func NewADA002(lex *corpus.Lexicon) *Dense {
	return newDense(lex, denseConfig{name: "ADA-002", dim: 96, surfaceNoise: 0.34, topicWeight: 0.10, seed: 0xada2})
}

func newDense(lex *corpus.Lexicon, cfg denseConfig) *Dense {
	d := &Dense{cfg: cfg, lex: lex, idf: DocumentFrequencyIDF(lex)}
	root := rngx.New(cfg.seed)
	sigma := 1 / math.Sqrt(float64(cfg.dim))
	topicVec := map[int][]float32{}
	conceptVec := map[int][]float32{}
	get := func(cache map[int][]float32, label uint64, id int) []float32 {
		if v, ok := cache[id]; ok {
			return v
		}
		v := root.Split(label).Split(uint64(id)+1).GaussianVec(cfg.dim, sigma)
		cache[id] = v
		return v
	}
	tw := math.Sqrt(cfg.topicWeight)
	cw := math.Sqrt(1 - cfg.topicWeight - cfg.surfaceNoise*cfg.surfaceNoise)
	d.vec = make([][]float32, len(lex.Words))
	for id, w := range lex.Words {
		tv := get(topicVec, 0x70, w.Topic+2)
		cv := get(conceptVec, 0xc0, w.Concept)
		sv := root.Split(0x5f).Split(uint64(id)+1).GaussianVec(cfg.dim, sigma)
		v := make([]float32, cfg.dim)
		for i := range v {
			v[i] = float32(tw)*tv[i] + float32(cw)*cv[i] + float32(cfg.surfaceNoise)*sv[i]
		}
		mathx.Normalize(v)
		d.vec[id] = v
	}
	return d
}

// Name returns the encoder's display name.
func (d *Dense) Name() string { return d.cfg.name }

// Embed returns the IDF-weighted mean word vector of a token sequence,
// unit normalized (zero vector for empty input).
func (d *Dense) Embed(tokens []int) []float32 {
	out := make([]float32, d.cfg.dim)
	for _, id := range tokens {
		if id < 0 || id >= len(d.vec) {
			continue
		}
		mathx.Axpy(float32(d.idf[id]), d.vec[id], out)
	}
	mathx.Normalize(out)
	return out
}

// Similarities implements Encoder via cosine similarity of embeddings
// (Eq. 1 in the paper).
func (d *Dense) Similarities(query []int, chunks [][]int) []float64 {
	q := d.Embed(query)
	out := make([]float64, len(chunks))
	for i, c := range chunks {
		out[i] = mathx.Cosine(q, d.Embed(c))
	}
	return out
}

// DocumentFrequencyIDF computes a smooth IDF per word id from a
// deterministic background corpus drawn from the lexicon, so frequent glue
// words are down-weighted exactly as a pretrained encoder's token weighting
// would. All encoders share it.
func DocumentFrequencyIDF(lex *corpus.Lexicon) []float64 {
	const docs = 256
	const docLen = 48
	r := rngx.New(0x1df)
	df := make([]int, len(lex.Words))
	topics := lex.ProseTopics()
	topics = append(topics, lex.CodeTopics()...)
	for d := 0; d < docs; d++ {
		tp := topics[r.Intn(len(topics))]
		seen := map[int]bool{}
		for _, id := range lex.Sentence(r, tp, docLen) {
			if !seen[id] {
				seen[id] = true
				df[id]++
			}
		}
	}
	idf := make([]float64, len(df))
	for i, n := range df {
		idf[i] = math.Log(1 + float64(docs)/(1+float64(n)))
	}
	return idf
}
