// Package parallel provides the deterministic fan-out primitive shared by
// the evaluation drivers (internal/experiments, cmd/cocktail-sweep):
// indices are executed on a bounded worker pool while callers write
// results into per-index slots and reduce them in index order, so the
// outcome is independent of goroutine scheduling.
package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 selects runtime.NumCPU(); the count is capped at n and
// 1 degrades to a plain serial loop). It always completes all n calls
// and returns the first error in index order — deterministic regardless
// of which worker hit it first.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
