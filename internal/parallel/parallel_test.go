package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 100} {
		var calls atomic.Int64
		got := make([]int, 37)
		err := ForEach(workers, len(got), func(i int) error {
			calls.Add(1)
			got[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls.Load() != int64(len(got)) {
			t.Fatalf("workers=%d: %d calls, want %d", workers, calls.Load(), len(got))
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not executed", workers, i)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachFirstErrorInIndexOrder: the returned error is the lowest
// failing index's, independent of scheduling, and all calls still run.
func TestForEachFirstErrorInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var calls atomic.Int64
		err := ForEach(workers, 20, func(i int) error {
			calls.Add(1)
			if i%2 == 1 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 1" {
			t.Fatalf("workers=%d: err %v, want fail 1", workers, err)
		}
		if calls.Load() != 20 {
			t.Fatalf("workers=%d: %d calls, want 20", workers, calls.Load())
		}
	}
}
