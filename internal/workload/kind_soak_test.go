package workload

import (
	"strings"
	"testing"
	"time"

	cocktail "repro"
)

// sealHeavyStream is the mixed-kind acceptance workload: a few warm
// contexts, each cycling through several distinct queries (PlanChurn —
// every distinct query seals its own plan, so sealed entries outnumber
// builders several-fold), plus a scan side-channel whose one-shot
// builders apply probation pressure. At MaxSeq 384 a prefill builder is
// ~144 KiB and a sealed cache ~31 KiB (~4.6x smaller), which is the
// size asymmetry the per-kind budget split exists for.
func sealHeavyStream(t testing.TB, p *cocktail.Pipeline) []Request {
	t.Helper()
	reqs, err := Generate(p, Options{
		Seed: 11, Requests: 140, Sessions: 4, ZipfS: 1.3,
		ScanFraction: 0.3, PlanChurn: 6})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// kindSoakBudget is the shared total both configurations get: enough
// for the builders plus a slice of the sealed working set, so what the
// sealed hit-rate becomes is purely the budget split's doing.
const kindSoakBudget = 1 << 20

// kindSoakCache builds the A1 cache under test; sealedPct 0 is the
// shared-budget baseline, > 0 dedicates that share (with its own
// probation pool) to sealed entries.
func kindSoakCache(p *cocktail.Pipeline, sealedPct float64) *cocktail.SessionCache {
	return cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes:           kindSoakBudget,
		TTL:                time.Minute,
		Policy:             cocktail.CachePolicyA1,
		GhostEntries:       256,
		ProbationPct:       20,
		AdaptWindow:        16,
		SealedPct:          sealedPct,
		SealedProbationPct: 30,
	})
}

// TestSoakPerKindSplit is the PR's acceptance proof: on the seal-heavy
// mixed-kind stream, splitting the byte budget per kind (sealed caches
// get their own sub-budget and probation pool) must hold strictly more
// seal trials per byte than the shared split — a strictly higher sealed
// warm hit-rate at the exact same total budget — while every output
// stays byte-identical to the uncached path and both stores honor their
// budgets.
func TestSoakPerKindSplit(t *testing.T) {
	p := phasePipeline(t)
	reqs := sealHeavyStream(t, p)

	shared := kindSoakCache(p, 0)
	sharedRep, err := Replay(shared, reqs)
	if err != nil {
		t.Fatal(err)
	}
	split := kindSoakCache(p, 45)
	splitRep, err := Replay(split, reqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sealed warm hit-rate: shared=%.3f (%d/%d) split=%.3f (%d/%d)",
		sharedRep.WarmSealHitRate(), sharedRep.WarmSealHits, sharedRep.Warm,
		splitRep.WarmSealHitRate(), splitRep.WarmSealHits, splitRep.Warm)
	t.Logf("prefill warm hit-rate: shared=%.3f split=%.3f",
		sharedRep.WarmHitRate(), splitRep.WarmHitRate())
	t.Logf("shared kinds: %+v", shared.Stats().Kinds)
	t.Logf("split kinds: %+v", split.Stats().Kinds)

	// The stream must actually be seal-heavy: distinct warm
	// (context, query) pairs — each sealing its own plan — outnumber
	// the distinct warm contexts several-fold. (Residency counts can't
	// prove this: under the shared budget builders squeeze the seals
	// out, which is the very failure mode under test.)
	warmCtxs, warmPlans := map[string]bool{}, map[string]bool{}
	for _, r := range reqs {
		if r.IsScan() {
			continue
		}
		ctx := strings.Join(r.Context, "\x00")
		warmCtxs[ctx] = true
		warmPlans[ctx+"\x01"+strings.Join(r.Query, "\x00")] = true
	}
	if len(warmPlans) < 3*len(warmCtxs) {
		t.Errorf("stream not seal-heavy: %d warm (context, query) pairs over %d contexts",
			len(warmPlans), len(warmCtxs))
	}
	// The acceptance inequality: strictly more sealed reuse per byte
	// under the per-kind split, at equal total budget.
	if lo, hi := sharedRep.WarmSealHitRate(), splitRep.WarmSealHitRate(); hi <= lo {
		t.Errorf("per-kind split sealed warm hit-rate %.3f not strictly above shared %.3f", hi, lo)
	}

	// Byte accounting: equal totals, both within budget, and the split
	// store must honor each sub-budget too.
	for name, sc := range map[string]*cocktail.SessionCache{"shared": shared, "split": split} {
		st := sc.Stats()
		if st.MaxBytes != kindSoakBudget || st.Bytes < 0 || st.Bytes > st.MaxBytes {
			t.Errorf("%s: resident bytes %d outside [0, %d]", name, st.Bytes, st.MaxBytes)
		}
	}
	st := split.Stats()
	for kind, ks := range st.Kinds {
		if !ks.Dedicated {
			t.Errorf("split cache: kind %s has no dedicated sub-budget: %+v", kind, ks)
		}
		if ks.Bytes > ks.MaxBytes {
			t.Errorf("split cache: kind %s bytes %d over its %d sub-budget", kind, ks.Bytes, ks.MaxBytes)
		}
		if ks.Admission == nil {
			t.Errorf("split cache: kind %s missing per-kind admission block", kind)
		}
	}

	// Byte-identical outputs: every request — cold, probation or cached,
	// under either budget split — must match the uncached path.
	cold := map[string]string{}
	for i, r := range reqs {
		if sharedRep.Outputs[i] != splitRep.Outputs[i] {
			t.Fatalf("request %d: shared output %q != split output %q",
				i, sharedRep.Outputs[i], splitRep.Outputs[i])
		}
		key := strings.Join(r.Context, "\x00") + "\x01" + strings.Join(r.Query, "\x00")
		if _, done := cold[key]; done {
			continue
		}
		res, err := p.Answer(r.Context, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		cold[key] = strings.Join(res.Answer, " ")
		if sharedRep.Outputs[i] != cold[key] {
			t.Fatalf("request %d: cached output %q != uncached %q", i, sharedRep.Outputs[i], cold[key])
		}
	}
}

// TestPerKindDifferentialByteIdentical extends the differential
// admission property to per-kind budgets: one seeded mixed-kind stream
// through every policy, each with and without the budget split, must
// produce answers byte-identical to the uncached path — a budget split
// may only ever change *when* work is recomputed, never its result.
func TestPerKindDifferentialByteIdentical(t *testing.T) {
	p := phasePipeline(t)
	reqs, err := Generate(p, Options{
		Seed: 23, Requests: 40, Sessions: 3, ZipfS: 1.3,
		ScanFraction: 0.4, PlanChurn: 3})
	if err != nil {
		t.Fatal(err)
	}
	coldRep, err := Replay(p, reqs) // uncached ground truth
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range allPolicies {
		for _, sealedPct := range []float64{0, 40} {
			sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
				MaxBytes: 1 << 19, TTL: time.Minute, Policy: pol,
				GhostEntries: 64, ProbationPct: 25, AdaptWindow: 8,
				SealedPct: sealedPct, SealedProbationPct: 30})
			rep, err := Replay(sc, reqs)
			if err != nil {
				t.Fatalf("%v/sealed-pct=%v replay: %v", pol, sealedPct, err)
			}
			for i := range reqs {
				if rep.Outputs[i] != coldRep.Outputs[i] {
					t.Fatalf("policy %v sealed-pct %v request %d: output %q != uncached %q",
						pol, sealedPct, i, rep.Outputs[i], coldRep.Outputs[i])
				}
			}
			if st := sc.Stats(); st.Bytes < 0 || st.Bytes > st.MaxBytes {
				t.Fatalf("policy %v sealed-pct %v: resident bytes %d outside [0, %d]",
					pol, sealedPct, st.Bytes, st.MaxBytes)
			}
		}
	}
}
