package workload

// Scheduling soaks for cost-model-driven admission, per-tenant DRR
// fairness and the self-tuning cache budgets:
//
//   - The differential soak replays a heterogeneous-cost stream (mixed
//     short/long contexts, two tenants) against a server with every
//     scheduling knob armed and one with everything off, and demands
//     byte-identical outputs to the uncached truth from both — pricing,
//     fairness queuing and auto-tuning may reorder and re-budget, never
//     rewrite an answer.
//   - The shed-preference test pins that, at a fixed budget, the cost
//     gate sheds an expensive cold-long request while admitting a cheap
//     short one — shedding prefers cheap-to-keep work by construction.
//   - The fairness soak offers one cheap and one expensive tenant
//     concurrently and asserts the DRR bound live: whenever both
//     tenants are backlogged, the expensive tenant's share of served
//     predicted cost stays bounded — and metered dispatch costs no more
//     than 10% of FIFO throughput.

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	cocktail "repro"
	"repro/internal/costsched"
	"repro/internal/httpapi"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
)

// TestCostSchedulingDifferentialSoak: every scheduling knob on (cost
// admission with a generous budget, tenant DRR, auto-tune, batching)
// versus every knob off — both must reproduce the uncached truth
// byte-for-byte over a mixed short/long two-tenant stream, and the
// armed server's metrics must show the machinery actually engaged.
func TestCostSchedulingDifferentialSoak(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{
		Seed: 23, Requests: 60, Sessions: 4, ZipfS: 1.3, ScanFraction: 0.3,
		LongFraction: 0.5, Tenants: []string{"acme", "globex"}})
	if err != nil {
		t.Fatal(err)
	}
	longs := 0
	for _, r := range reqs {
		if r.Long {
			longs++
		}
	}
	if longs == 0 || longs == len(reqs) {
		t.Fatalf("stream is not cost-heterogeneous: %d/%d long", longs, len(reqs))
	}
	truth := coldTruth(t, p, reqs)

	base := httpapi.Options{
		Workers: 2, QueueDepth: 64,
		SessionCacheMB: 4, SessionTTL: time.Minute, GhostEntries: 256,
		CachePolicy: cocktail.CachePolicyA1, SealedCachePct: 40,
		BatchMax: 4, BatchWindow: 2 * time.Millisecond,
		CacheShards: -1,
	}
	armed := base
	// The budget is generous on purpose: the soak offers a load the
	// server can carry, so a shed would mean the gate mispriced, not
	// that the test overloaded it.
	armed.CostBudgetMs = 10_000_000
	armed.TenantHeader = "X-Tenant"
	armed.AutoTune = true

	for _, mode := range []struct {
		name string
		opts httpapi.Options
	}{{"armed", armed}, {"off", base}} {
		srv, ts := liveServer(t, p, mode.opts)
		live, err := ReplayHTTPTenants(ts.Client(), ts.URL, mode.opts.TenantHeader, reqs, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if live.Outputs[i] != truth[i] {
				t.Fatalf("%s request %d: output %q != uncached %q", mode.name, i, live.Outputs[i], truth[i])
			}
		}
		m := srv.Snapshot()
		sched := m.Scheduling
		if mode.name == "off" {
			if sched.CostAdmission || sched.TenantHeader != "" {
				t.Fatalf("off server reports scheduling armed: %+v", sched)
			}
			if m.SessionCache.CacheStats.Tune != nil {
				t.Fatal("off server reports a tune block")
			}
			continue
		}
		if !sched.CostAdmission {
			t.Fatal("armed server reports cost admission off")
		}
		if sched.Admission.Shed != 0 {
			t.Fatalf("generous budget shed %d requests", sched.Admission.Shed)
		}
		if sched.Admission.Admitted < int64(len(reqs)) {
			t.Fatalf("admitted %d < %d requests", sched.Admission.Admitted, len(reqs))
		}
		if sched.CalibrationMeasuredMs <= 0 || sched.CalibrationScale <= 0 {
			t.Fatalf("calibration never observed a sample: %+v", sched)
		}
		served := map[string]int64{}
		for _, ten := range sched.Tenants {
			served[ten.Tenant] = ten.Served
			if ten.Queued != 0 || ten.QueuedMs != 0 {
				t.Fatalf("tenant %q still queued after drain: %+v", ten.Tenant, ten)
			}
		}
		if served["acme"] == 0 || served["globex"] == 0 {
			t.Fatalf("tenant accounting missing a tenant: %v", served)
		}
		if st := m.SessionCache.CacheStats; st.Tune == nil {
			t.Fatal("auto-tune armed but no tune block in cache stats")
		}
		t.Logf("armed: admission %+v, tenants %v, tune %+v",
			sched.Admission, served, m.SessionCache.CacheStats.Tune)
	}
}

// TestShedPrefersCheapWork pins the cost gate's ordering before any
// calibration sample lands (scale exactly 1, in-flight zero): with the
// budget set between the two analytic prices, the expensive long-context
// request is shed — with a drain-derived Retry-After — while the cheap
// short one is admitted and served.
func TestShedPrefersCheapWork(t *testing.T) {
	p := soakPipeline(t)
	short, err := p.NewSample("Qasper", 3)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := p.NewSample("Qasper", 4)
	if err != nil {
		t.Fatal(err)
	}
	long := extendContext(short.Context, ext.Context, p.Config().MaxSeq)
	if len(long) <= len(short.Context) {
		t.Fatal("long context did not extend")
	}

	// Price both shapes exactly the way the server's gate will (scale 1,
	// cold): the budget must separate them.
	pricer := hwmodel.NewPricer(hwmodel.A800(), hwmodel.Llama2_7B())
	estShort, err := pricer.Estimate(len(short.Context), p.Config().Method, kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	estLong, err := pricer.Estimate(len(long), p.Config().Method, kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	cheap := estShort.TotalMs(hwmodel.DefaultDecodeBudget)
	dear := estLong.TotalMs(hwmodel.DefaultDecodeBudget)
	if dear <= cheap {
		t.Fatalf("analytic model prices long (%v ms) <= short (%v ms)", dear, cheap)
	}
	t.Logf("analytic: short %d words %.2f ms, long %d words %.2f ms", len(short.Context), cheap, len(long), dear)
	_, ts := liveServer(t, p, httpapi.Options{
		Workers: 1, QueueDepth: 8,
		CostBudgetMs: int((cheap + dear) / 2),
	})

	post := func(ctx []string) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"context":[%s],"query":[%s]}`, quoteJoin(ctx), quoteJoin(short.Query))
		resp, err := ts.Client().Post(ts.URL+"/v1/answer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Expensive cold-long first: shed, before any calibration moves the
	// scale, and the 503 prices its own retry hint.
	resp := post(long)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold long request: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 503 missing Retry-After")
	}
	// Cheap cold-short second: admitted under the same budget.
	resp = post(short.Context)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold short request: status %d, want 200", resp.StatusCode)
	}
}

// quoteJoin renders words as a JSON string list body fragment.
func quoteJoin(words []string) string {
	qs := make([]string, len(words))
	for i, w := range words {
		qs[i] = fmt.Sprintf("%q", w)
	}
	return strings.Join(qs, ",")
}

// TestTenantFairnessSoak: one cheap tenant (short contexts) and one
// expensive tenant (long contexts) burst interleaved load at the server
// open-loop, so the DRR lanes hold a deep two-tenant backlog for the
// whole drain. The dispatcher must (a) keep the served-predicted-cost
// gap between the two backlogged tenants inside the DRR granularity
// bound (one quantum plus a few worst-case items — the live analog of
// costsched's deterministic TestFairnessBound), (b) account every
// request to its tenant with nothing left queued, and (c) cost no more
// than 10% of FIFO throughput on the identical stream.
func TestTenantFairnessSoak(t *testing.T) {
	p := soakPipeline(t)
	short, err := p.NewSample("Qasper", 5)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := p.NewSample("Qasper", 6)
	if err != nil {
		t.Fatal(err)
	}
	long := extendContext(short.Context, ext.Context, p.Config().MaxSeq)
	if len(long) <= len(short.Context) {
		t.Fatal("long context did not extend")
	}

	// Alternating cheap/dear stream: same query, two contexts, tenant
	// fixed per context so per-tenant predicted cost is asymmetric.
	const n = 48
	reqs := make([]Request, 0, n)
	for i := 0; i < n/2; i++ {
		reqs = append(reqs,
			Request{Session: 0, Context: short.Context, Query: short.Query, Tenant: "cheap"},
			Request{Session: 1, Context: long, Query: short.Query, Tenant: "dear", Long: true})
	}
	truth := coldTruth(t, p, reqs)

	mkOpts := func(tenantHeader string) httpapi.Options {
		return httpapi.Options{
			Workers: 1, QueueDepth: 2 * n,
			SessionCacheMB: 8, SessionTTL: time.Minute,
			BatchMax: 2, BatchWindow: 2 * time.Millisecond,
			CacheShards:  -1,
			TenantHeader: tenantHeader,
		}
	}
	srv, ts := liveServer(t, p, mkOpts("X-Tenant"))

	// No request is ever priced above the scale-1 analytic estimate for
	// the long shape (calibration against this pipeline's fast measured
	// latencies only shrinks the scale), so the DRR granularity bound —
	// one quantum of credit plus a burst of worst-case items around the
	// ramp — is expressible in absolute predicted ms.
	pricer := hwmodel.NewPricer(hwmodel.A800(), hwmodel.Llama2_7B())
	estLong, err := pricer.Estimate(len(long), p.Config().Method, kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	maxItemMs := estLong.TotalMs(hwmodel.DefaultDecodeBudget)
	gapBound := costsched.DefaultQuantumMs + 3*maxItemMs

	// Poll the scheduling block while the burst drains: the fairness
	// bound is a statement about moments when both tenants are
	// backlogged, which only a live snapshot can see.
	type obs struct {
		bothQueued      bool
		cheapMs, dearMs float64
	}
	var (
		mu      sync.Mutex
		samples []obs
		stop    = make(chan struct{})
		wgPoll  sync.WaitGroup
	)
	wgPoll.Add(1)
	go func() {
		defer wgPoll.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := srv.Snapshot()
			o := obs{bothQueued: len(m.Scheduling.Tenants) == 2}
			for _, ten := range m.Scheduling.Tenants {
				if ten.Queued == 0 {
					o.bothQueued = false
				}
				switch ten.Tenant {
				case "cheap":
					o.cheapMs = ten.ServedMs
				case "dear":
					o.dearMs = ten.ServedMs
				}
			}
			mu.Lock()
			samples = append(samples, o)
			mu.Unlock()
			time.Sleep(time.Millisecond)
		}
	}()

	// Open-loop burst: every request in flight at once, so the two-lane
	// backlog is deep from the first batch to nearly the last.
	outs := make([]string, n)
	errs := make([]error, n)
	var wgReq sync.WaitGroup
	for i := range reqs {
		wgReq.Add(1)
		go func(i int) {
			defer wgReq.Done()
			outs[i], errs[i] = postAnswer(ts.Client(), ts.URL, "X-Tenant", reqs[i])
		}(i)
	}
	wgReq.Wait()
	close(stop)
	wgPoll.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
		if outs[i] != truth[i] {
			t.Fatalf("burst request %d: output %q != uncached %q", i, outs[i], truth[i])
		}
	}

	// (b) Every request accounted to its tenant, nothing left queued.
	m := srv.Snapshot()
	served := map[string]int64{}
	for _, ten := range m.Scheduling.Tenants {
		served[ten.Tenant] = ten.Served
		if ten.Queued != 0 {
			t.Fatalf("tenant %q still queued after drain: %+v", ten.Tenant, ten)
		}
	}
	if served["cheap"] != n/2 || served["dear"] != n/2 {
		t.Fatalf("per-tenant served counts %v, want %d each", served, n/2)
	}

	// (a) The granularity bound at every dual-backlog moment. The burst
	// guarantees such moments exist; demand the poller caught some.
	checked := 0
	for _, o := range samples {
		if !o.bothQueued {
			continue
		}
		checked++
		gap := o.dearMs - o.cheapMs
		if gap < 0 {
			gap = -gap
		}
		if gap > gapBound {
			t.Fatalf("served-cost gap %.1fms breaches the DRR bound %.1fms (cheap %.1f, dear %.1f)",
				gap, gapBound, o.cheapMs, o.dearMs)
		}
	}
	if checked == 0 {
		t.Fatalf("no dual-backlog snapshot over %d polls — the burst never backed up", len(samples))
	}
	t.Logf("fairness bound %.0fms held over %d dual-backlog snapshots (%d polls)",
		gapBound, checked, len(samples))

	// (c) Fairness metering is not a throughput tax: identical closed-
	// loop replays through a fresh DRR server and a fresh FIFO server
	// (second pass timed on each, first warms the caches) must land
	// within 10%.
	throughput := func(tenantHeader string) float64 {
		t.Helper()
		_, ts := liveServer(t, p, mkOpts(tenantHeader))
		if _, err := ReplayHTTPTenants(ts.Client(), ts.URL, tenantHeader, reqs, 16); err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayHTTPTenants(ts.Client(), ts.URL, tenantHeader, reqs, 16)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ThroughputRPS
	}
	drr, fifo := throughput("X-Tenant"), throughput("")
	if drr < 0.9*fifo {
		t.Fatalf("DRR throughput %.1f rps < 90%% of FIFO %.1f rps", drr, fifo)
	}
	t.Logf("throughput: DRR %.1f rps, FIFO %.1f rps", drr, fifo)
}
