// Package workload generates deterministic serving request streams and
// replays them against the public cocktail surface. It exists to make
// cache-policy claims testable: the generator produces a seeded mix of
// Zipf-reused session traffic (a few contexts queried again and again)
// interleaved with one-shot scans (crawler/sweep-style contexts never
// seen twice), and the replay harness reports per-class prefix-cache
// hit-rates plus every request's output so tests can assert hit-rate
// floors, byte accounting and byte-identical-output invariants.
//
// Streams can be phase-shifting (GeneratePhases): a sequence of epochs
// with different scan pressure, Zipf skew and active-session counts —
// scan-flood, then reuse-heavy, then mixed — over one shared warm
// session pool. Each request carries its epoch index and the replay
// report aggregates hit-rates per epoch, which is what lets a test
// assert that an adaptive admission policy tracks the best static
// policy through every phase, not just on average.
//
// Streams can also be mixed-kind (Options/Phase.PlanChurn): each warm
// session cycles through several distinct queries, and since Module I
// is query-adaptive every distinct query seals its own quantization
// plan — so sealed-cache pressure scales with PlanChurn independently
// of context reuse. The replay report splits seal reuse (WarmSealHits)
// from prefill reuse, which is what lets a test weigh per-kind cache
// budgets against the shared budget on a seal-heavy stream.
//
// Everything is deterministic for a fixed Options value: contexts and
// queries come from Pipeline.NewSample seeds derived from Options.Seed,
// and the scan/reuse interleaving comes from a math/rand stream seeded
// the same way — so a soak test failure always reproduces.
package workload

import (
	"fmt"
	//cocktail:allow determinism seeded rand.NewSource(Seed+1) reproduces the historical byte-identical draw stream that the soak suite's exact hit-rate pins depend on; migrating to rngx.Split would silently rewrite every golden number (TestStreamDrawsPinned guards the stream)
	"math/rand"
	"strings"

	cocktail "repro"
	"repro/internal/parallel"
)

// ScanSession is the Request.Session value of one-shot scan requests.
const ScanSession = -1

// Request is one serving request of a generated stream.
type Request struct {
	// Session is the warm session index in [0, sessions) for reuse
	// traffic, or ScanSession for a one-shot scan.
	Session int
	// Epoch is the index of the phase this request belongs to (always 0
	// for single-phase streams).
	Epoch int
	// Context and Query are surface words from the pipeline vocabulary.
	// Context is always the session's FULL context at this point in the
	// stream — for growing conversations (AppendFraction) that is the
	// base context plus every chunk appended so far — so replaying a
	// request stateless (fresh prefill of Context) is always valid and
	// byte-comparable to the incremental path.
	Context []string
	Query   []string
	// Append, when non-nil, is the chunk of new words grown onto this
	// warm session's context immediately before this request (already
	// included at the end of Context). Incremental replays
	// (ReplayGrowing, the append HTTP endpoint) feed only this suffix to
	// Session.Append; stateless replays ignore it.
	Append []string
	// Tenant is the request's tenant label, drawn from Options.Tenants'
	// dedicated RNG lane; empty for untenanted streams. Live replays
	// (ReplayHTTPTenants) send it as the server's tenant header so the
	// per-tenant DRR dispatcher can meter the request.
	Tenant string
	// Long marks a long-tier context (Options.LongFraction): the base
	// sample context extended toward twice its length from a dedicated
	// sample lane, bounded by the sequence limit. Always false when the
	// knob is zero.
	Long bool
}

// IsScan reports whether the request is one-shot scan traffic.
func (r Request) IsScan() bool { return r.Session == ScanSession }

// Options parameterizes a generated stream. The zero value is usable.
// For phased streams the fields double as the per-phase defaults that a
// Phase inherits when it leaves them unset.
type Options struct {
	// Seed selects the stream; equal seeds give byte-identical streams.
	Seed uint64
	// Requests is the stream length (<= 0 selects 64). Ignored by
	// GeneratePhases, where each phase sets its own length.
	Requests int
	// Sessions is the number of distinct warm contexts the reuse
	// traffic draws from (<= 0 selects 3).
	Sessions int
	// ZipfS is the Zipf skew over warm sessions (must be > 1; <= 0
	// selects 1.2). Higher values concentrate reuse on fewer sessions.
	ZipfS float64
	// ScanFraction is the probability a request is a one-shot scan
	// (< 0 selects 0.5; 0 is honored — an all-warm stream).
	ScanFraction float64
	// PlanChurn is the number of distinct queries each warm session
	// cycles through (<= 0 selects 1 — the historical fixed
	// context/query pair; at most MaxPlanChurn). Module I is
	// query-adaptive, so distinct queries seal distinct quantization
	// plans: raising PlanChurn multiplies the sealed-cache entries per
	// warm context without adding contexts, which is how a stream
	// applies sealed-kind cache pressure independently of context
	// reuse. With PlanChurn 1 the stream is byte-identical to the
	// pre-knob generator.
	PlanChurn int
	// AppendFraction is the probability a warm request first grows its
	// session's context by an append chunk (growing-conversation
	// traffic; < 0 and 0 both mean no growth — the historical streams).
	// Growth is cumulative and permanent: once session i's context has
	// grown, every later request to it carries the grown context. Chunks
	// come from a dedicated seed lane, and a session close enough to the
	// sequence bound that another chunk could overflow MaxSeq stops
	// growing (the request degrades to a plain warm replay), so generated
	// streams never overflow by construction. With AppendFraction 0 the
	// RNG draw stream — and thus the whole request interleaving — is
	// byte-identical to the pre-knob generator.
	AppendFraction float64
	// Tenants assigns each request a tenant label drawn uniformly from
	// this list, from a dedicated RNG lane (Seed+2) so the main draw
	// stream — and thus the request interleaving, contexts and queries —
	// is byte-identical to the untenanted stream of the same seed.
	// Empty (the default) leaves every request untenanted. Labels must
	// be non-empty. Stream-level: phases share one tenant lane.
	Tenants []string
	// LongFraction is the probability a warm session (decided once, at
	// pool build) or a scan request carries a long-tier context: the
	// base sample context extended toward twice its length with words
	// from a dedicated sample lane, capped under the sequence bound.
	// Tier coins come from their own RNG lane (Seed+3), so streams with
	// the knob zero (the default, and any < 0) are byte-identical to
	// the historical generator. Long and short requests of one stream
	// differ in predicted serve cost by construction — the
	// heterogeneous-cost mix the scheduling soaks need. Stream-level:
	// phases share one tier lane.
	LongFraction float64
	// Dataset names the Table I generator backing the contexts
	// ("" selects Qasper).
	Dataset string
}

// MaxPlanChurn bounds Options/Phase.PlanChurn so per-variant sample
// seeds stay in their own lane of the seed space.
const MaxPlanChurn = 4096

// appendChunkWords is the growth granularity of growing-conversation
// streams: each append event grows the session's context by (up to) this
// many words drawn from the append seed lane.
const appendChunkWords = 24

// appendHeadroom is the sequence-bound margin a session must keep to
// accept another chunk: an allowance for the longest query the stream
// might pair with the grown context plus the pipeline's decode budget
// (2×64 tokens, see cocktail's checkSeqBound). A session within the
// margin stops growing rather than generate a request that would be
// rejected.
const appendHeadroom = 192

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Sessions <= 0 {
		o.Sessions = 3
	}
	if o.ZipfS <= 0 {
		o.ZipfS = 1.2
	}
	if o.ScanFraction < 0 {
		o.ScanFraction = 0.5
	}
	if o.PlanChurn <= 0 {
		o.PlanChurn = 1
	}
	if o.AppendFraction < 0 {
		o.AppendFraction = 0
	}
	if o.LongFraction < 0 {
		o.LongFraction = 0
	}
	if o.Dataset == "" {
		o.Dataset = "Qasper"
	}
	return o
}

// Phase is one epoch of a phase-shifting stream. Unset fields inherit
// the stream's Options: Sessions and ZipfS when <= 0, ScanFraction when
// < 0 (0 is honored — an all-warm epoch).
type Phase struct {
	// Name labels the epoch in test output ("scan-flood", ...).
	Name string
	// Requests is the epoch length; must be > 0.
	Requests int
	// ScanFraction is the epoch's one-shot scan probability.
	ScanFraction float64
	// Sessions bounds the warm pool the epoch draws from: session
	// indices [0, Sessions). A later phase with a larger value
	// introduces fresh contexts mid-stream; a smaller one narrows
	// reuse onto the hottest sessions.
	Sessions int
	// ZipfS is the epoch's Zipf skew over its session pool.
	ZipfS float64
	// PlanChurn is the epoch's per-session query-variant count (<= 0
	// inherits Options.PlanChurn). Session i's variant j is the same
	// query in every epoch, so cross-epoch sealed reuse is observable.
	PlanChurn int
	// AppendFraction is the epoch's growing-conversation probability
	// (< 0 inherits Options.AppendFraction; 0 is honored — no growth).
	AppendFraction float64
}

// Generate builds a deterministic single-phase request stream over p's
// vocabulary. Warm session i always replays the same (context, query)
// pair; every scan request gets a context of its own.
func Generate(p *cocktail.Pipeline, opts Options) ([]Request, error) {
	opts = opts.withDefaults()
	return GeneratePhases(p, opts, []Phase{{
		Requests:       opts.Requests,
		ScanFraction:   opts.ScanFraction,
		Sessions:       opts.Sessions,
		ZipfS:          opts.ZipfS,
		PlanChurn:      opts.PlanChurn,
		AppendFraction: opts.AppendFraction,
	}})
}

// GeneratePhases builds a deterministic phase-shifting stream: the
// concatenation of the given epochs, drawn from one RNG stream and one
// shared warm session pool, so a fixed (Options.Seed, phases) pair
// always yields a byte-identical stream. Warm session i keeps the same
// (context, query) pair across every epoch that can draw it, which is
// what makes cross-epoch reuse (and the cache-policy response to it)
// observable.
func GeneratePhases(p *cocktail.Pipeline, opts Options, phases []Phase) ([]Request, error) {
	opts = opts.withDefaults()
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: at least one phase required")
	}
	// Resolve per-phase defaults on a copy: the caller's slice must not
	// be mutated (it may be reused with different Options).
	phases = append([]Phase(nil), phases...)
	total, maxSessions := 0, 0
	for i := range phases {
		ph := &phases[i]
		if ph.Requests <= 0 {
			return nil, fmt.Errorf("workload: phase %d: Requests must be > 0, have %d", i, ph.Requests)
		}
		if ph.Sessions <= 0 {
			ph.Sessions = opts.Sessions
		}
		if ph.ZipfS <= 0 {
			ph.ZipfS = opts.ZipfS
		}
		if ph.ZipfS <= 1 {
			return nil, fmt.Errorf("workload: phase %d: ZipfS must be > 1, have %v", i, ph.ZipfS)
		}
		if ph.ScanFraction < 0 {
			ph.ScanFraction = opts.ScanFraction
		}
		if ph.ScanFraction > 1 {
			return nil, fmt.Errorf("workload: phase %d: ScanFraction must be <= 1, have %v", i, ph.ScanFraction)
		}
		if ph.PlanChurn <= 0 {
			ph.PlanChurn = opts.PlanChurn
		}
		if ph.PlanChurn > MaxPlanChurn {
			return nil, fmt.Errorf("workload: phase %d: PlanChurn must be <= %d, have %d", i, MaxPlanChurn, ph.PlanChurn)
		}
		if ph.AppendFraction < 0 {
			ph.AppendFraction = opts.AppendFraction
		}
		if ph.AppendFraction > 1 {
			return nil, fmt.Errorf("workload: phase %d: AppendFraction must be <= 1, have %v", i, ph.AppendFraction)
		}
		total += ph.Requests
		if ph.Sessions > maxSessions {
			maxSessions = ph.Sessions
		}
	}
	if opts.LongFraction > 1 {
		return nil, fmt.Errorf("workload: LongFraction must be <= 1, have %v", opts.LongFraction)
	}
	for i, name := range opts.Tenants {
		if name == "" {
			return nil, fmt.Errorf("workload: Tenants[%d] must be a non-empty label", i)
		}
	}
	// Sample seeds live in disjoint lanes off the stream seed so warm
	// contexts, scan contexts and warm query variants can never alias
	// for a fixed Options.Seed (the scan lane is bounded at 1e6
	// samples — enforced below — so it cannot run into the variant
	// lane).
	base := opts.Seed * 0x9e3779b97f4a7c15
	warm := make([]*cocktail.Sample, maxSessions)
	for i := range warm {
		s, err := p.NewSample(opts.Dataset, base+1+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("workload: warm sample %d: %w", i, err)
		}
		warm[i] = s
	}
	// queryFor returns warm session i's variant-j query: variant 0 is
	// the session's own query (PlanChurn 1 reproduces the historical
	// stream byte-for-byte), higher variants are drawn lazily from a
	// dedicated seed lane — same-dataset queries against a same-length
	// context, so the sequence bound holds by construction. Memoized so
	// every epoch replays identical variants.
	variants := make(map[[2]int][]string)
	queryFor := func(i, j int) ([]string, error) {
		if j == 0 {
			return warm[i].Query, nil
		}
		if q, ok := variants[[2]int{i, j}]; ok {
			return q, nil
		}
		s, err := p.NewSample(opts.Dataset, base+2_000_000+uint64(i)*MaxPlanChurn+uint64(j))
		if err != nil {
			return nil, fmt.Errorf("workload: query variant %d/%d: %w", i, j, err)
		}
		variants[[2]int{i, j}] = s.Query
		return s.Query, nil
	}
	// Tenant and tier assignments come from dedicated RNG lanes (Seed+2
	// and Seed+3): streams with the knobs unset never draw from them, and
	// a tenanted or tiered stream's request interleaving is byte-identical
	// to its plain twin — only the labels and the long-tier contexts
	// differ.
	maxSeq := p.Config().MaxSeq
	var tenantRNG, tierRNG *rand.Rand
	if len(opts.Tenants) > 0 {
		tenantRNG = rand.New(rand.NewSource(int64(opts.Seed) + 2))
	}
	longSession := make([]bool, maxSessions)
	longCtx := make([][]string, maxSessions)
	if opts.LongFraction > 0 {
		tierRNG = rand.New(rand.NewSource(int64(opts.Seed) + 3))
		// Warm tiers are decided once, at pool build, in session order
		// (a session's context length is a property of the session, not
		// of any one request); extension words come from the warm-long
		// sample lane [4e6, 4e6+maxSessions).
		for i := range warm {
			if tierRNG.Float64() >= opts.LongFraction {
				continue
			}
			s, err := p.NewSample(opts.Dataset, base+4_000_000+uint64(i))
			if err != nil {
				return nil, fmt.Errorf("workload: long-tier extension %d: %w", i, err)
			}
			longSession[i] = true
			longCtx[i] = extendContext(warm[i].Context, s.Context, maxSeq)
		}
	}
	drawTenant := func() string {
		if tenantRNG == nil {
			return ""
		}
		return opts.Tenants[tenantRNG.Intn(len(opts.Tenants))]
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed) + 1))
	reqs := make([]Request, 0, total)
	scans := uint64(0)
	// Growing-conversation state: ctxs[i] is warm session i's current
	// (possibly grown) context; appends counts chunks drawn from the
	// append seed lane [3e6, 4e6).
	ctxs := make([][]string, maxSessions)
	appends := uint64(0)
	for e, ph := range phases {
		zipf := rand.NewZipf(rng, ph.ZipfS, 1, uint64(ph.Sessions-1))
		for n := 0; n < ph.Requests; {
			if rng.Float64() < ph.ScanFraction {
				if scans >= 1_000_000 {
					// The scan lane [1e6, 2e6) would run into the
					// variant lane; enforce the lane bound instead of
					// silently aliasing samples.
					return nil, fmt.Errorf("workload: stream exceeds 1e6 scan samples")
				}
				s, err := p.NewSample(opts.Dataset, base+1_000_000+scans)
				if err != nil {
					return nil, fmt.Errorf("workload: scan sample %d: %w", scans, err)
				}
				ctx, long := s.Context, false
				if tierRNG != nil && tierRNG.Float64() < opts.LongFraction {
					// Scan tiers draw per request; extension words come
					// from the scan-long lane [5e6, 6e6) (same bound as
					// the scan lane, enforced above).
					es, err := p.NewSample(opts.Dataset, base+5_000_000+scans)
					if err != nil {
						return nil, fmt.Errorf("workload: long-tier scan %d: %w", scans, err)
					}
					ctx, long = extendContext(ctx, es.Context, maxSeq), true
				}
				scans++
				reqs = append(reqs, Request{Session: ScanSession, Epoch: e, Context: ctx, Query: s.Query,
					Tenant: drawTenant(), Long: long})
				n++
				continue
			}
			i := int(zipf.Uint64())
			j := 0
			if ph.PlanChurn > 1 {
				// Only churning phases draw a variant, so PlanChurn 1
				// leaves the RNG stream — and thus the whole request
				// interleaving — untouched.
				j = rng.Intn(ph.PlanChurn)
			}
			q, err := queryFor(i, j)
			if err != nil {
				return nil, err
			}
			if ctxs[i] == nil {
				if longSession[i] {
					ctxs[i] = longCtx[i]
				} else {
					ctxs[i] = warm[i].Context
				}
			}
			var chunk []string
			// Only growing phases draw the append coin, so streams with
			// AppendFraction 0 keep the historical RNG draw sequence —
			// and thus the whole request interleaving — byte-identical.
			if ph.AppendFraction > 0 && rng.Float64() < ph.AppendFraction &&
				len(ctxs[i])+appendChunkWords+appendHeadroom <= maxSeq {
				if appends >= 1_000_000 {
					return nil, fmt.Errorf("workload: stream exceeds 1e6 append chunks")
				}
				s, err := p.NewSample(opts.Dataset, base+3_000_000+appends)
				if err != nil {
					return nil, fmt.Errorf("workload: append chunk %d: %w", appends, err)
				}
				appends++
				chunk = s.Context
				if len(chunk) > appendChunkWords {
					chunk = chunk[:appendChunkWords]
				}
				grown := make([]string, 0, len(ctxs[i])+len(chunk))
				ctxs[i] = append(append(grown, ctxs[i]...), chunk...)
			}
			reqs = append(reqs, Request{Session: i, Epoch: e, Context: ctxs[i], Query: q, Append: chunk,
				Tenant: drawTenant(), Long: longSession[i]})
			n++
		}
	}
	return reqs, nil
}

// extendContext grows ctx toward the long-tier target length — twice
// the base length, capped at the sequence bound less appendHeadroom so
// every query the stream can pair with the grown context (plus the
// decode budget) still fits — using words from extra. Never mutates
// either input.
func extendContext(ctx, extra []string, maxSeq int) []string {
	target := 2 * len(ctx)
	if bound := maxSeq - appendHeadroom; target > bound {
		target = bound
	}
	need := target - len(ctx)
	if need <= 0 {
		return ctx
	}
	if need > len(extra) {
		need = len(extra)
	}
	out := make([]string, 0, len(ctx)+need)
	return append(append(out, ctx...), extra[:need]...)
}

// Prefiller is the serving surface a replay drives. *cocktail.Pipeline
// (always-cold) and *cocktail.SessionCache (prefix-cached) both
// implement it, so the same stream measures any policy against the
// uncached baseline.
type Prefiller interface {
	Prefill(context []string) (*cocktail.Session, error)
}

// EpochReport aggregates one epoch of a replay; for single-phase streams
// there is exactly one (epoch 0).
type EpochReport struct {
	Epoch                            int
	Requests, Warm, Scans            int
	WarmPrefillHits, ScanPrefillHits int
	WarmSealHits, ScanSealHits       int
}

// WarmHitRate is the epoch's fraction of warm requests served from
// cached prefill state.
func (e *EpochReport) WarmHitRate() float64 {
	if e.Warm == 0 {
		return 0
	}
	return float64(e.WarmPrefillHits) / float64(e.Warm)
}

// WarmSealHitRate is the epoch's fraction of warm requests whose Answer
// reused a sealed cache instead of re-quantizing.
func (e *EpochReport) WarmSealHitRate() float64 {
	if e.Warm == 0 {
		return 0
	}
	return float64(e.WarmSealHits) / float64(e.Warm)
}

// Report aggregates one replay. Outputs is index-aligned with the
// request stream regardless of replay concurrency; the hit counters
// split by traffic class, over the whole stream and per epoch.
type Report struct {
	Requests, Warm, Scans int
	// WarmPrefillHits counts warm requests whose prefill state came
	// from the cache; ScanPrefillHits the same for scans (non-zero only
	// when distinct scan contexts collide, which the generator avoids,
	// or when a scan repeats while trialled in a probation segment).
	WarmPrefillHits, ScanPrefillHits int
	// WarmSealHits counts warm requests whose Answer reused a sealed
	// cache (plan memo or shared store) instead of re-quantizing —
	// sealed-kind reuse, which PlanChurn pressures independently of
	// context reuse; ScanSealHits the same for scans.
	WarmSealHits, ScanSealHits int
	// Appends counts warm requests that grew their live session's
	// context via Session.Append (ReplayGrowing only; stateless replays
	// re-prefill the full context instead and leave this zero).
	Appends int
	// Epochs[e] aggregates the requests of epoch e.
	Epochs []EpochReport
	// Outputs[i] is request i's space-joined answer.
	Outputs []string
}

// WarmHitRate is the fraction of warm requests served from cached
// prefill state — the quantity scan-resistant admission protects.
func (r *Report) WarmHitRate() float64 {
	if r.Warm == 0 {
		return 0
	}
	return float64(r.WarmPrefillHits) / float64(r.Warm)
}

// WarmSealHitRate is the fraction of warm requests whose Answer reused
// a sealed cache — the quantity a dedicated sealed sub-budget protects.
func (r *Report) WarmSealHitRate() float64 {
	if r.Warm == 0 {
		return 0
	}
	return float64(r.WarmSealHits) / float64(r.Warm)
}

// Replay drives every request through c in stream order and reports
// hit-rates and outputs. Serial replay makes the hit counters
// deterministic: request i sees exactly the cache state requests 0..i-1
// left behind.
func Replay(c Prefiller, reqs []Request) (*Report, error) {
	return replay(c, reqs, 1)
}

// ReplayParallel replays the stream on up to workers goroutines
// (workers <= 0 selects NumCPU). Outputs stay index-aligned and each
// individual answer is still byte-identical to its cold run, but hit
// counters depend on request interleaving — racing misses on one
// context may each count a miss where serial replay counts hits.
func ReplayParallel(c Prefiller, reqs []Request, workers int) (*Report, error) {
	return replay(c, reqs, workers)
}

func replay(c Prefiller, reqs []Request, workers int) (*Report, error) {
	outputs := make([]string, len(reqs))
	hits := make([]bool, len(reqs))
	seals := make([]bool, len(reqs))
	err := parallel.ForEach(workers, len(reqs), func(i int) error {
		s, err := c.Prefill(reqs[i].Context)
		if err != nil {
			return fmt.Errorf("workload: request %d prefill: %w", i, err)
		}
		hits[i] = s.CachedPrefill()
		res, err := s.Answer(reqs[i].Query)
		if err != nil {
			return fmt.Errorf("workload: request %d answer: %w", i, err)
		}
		seals[i] = s.CachedSeal()
		outputs[i] = strings.Join(res.Answer, " ")
		return nil
	})
	if err != nil {
		return nil, err
	}
	return buildReport(reqs, outputs, hits, seals), nil
}

// ReplayGrowing drives a growing-conversation stream the way a live
// multi-turn service would: warm session i is prefilled once — on its
// full context at first sighting — and then kept open, a request
// carrying an Append chunk grows the live session in place via
// Session.Append (delta prefill of just the suffix) instead of
// re-prefilling the concatenation, and scans prefill fresh as always.
// Replay is serial: the live sessions are single-owner and serial order
// makes the hit counters deterministic. By the Append byte-identity
// contract the Outputs equal those of Replay over the same stream, which
// re-prefills every request's full Context — the differential the
// growing-conversation soak asserts.
//
// Counter semantics: a first sighting and an append record the
// store-facing CachedPrefill of the operation they ran; a plain repeat
// on an open session counts as a warm prefill hit (the retained context
// KV is exactly what the session machinery exists to reuse).
func ReplayGrowing(c Prefiller, reqs []Request) (*Report, error) {
	outputs := make([]string, len(reqs))
	hits := make([]bool, len(reqs))
	seals := make([]bool, len(reqs))
	live := make(map[int]*cocktail.Session)
	appends := 0
	for i, r := range reqs {
		var s *cocktail.Session
		if r.IsScan() {
			var err error
			if s, err = c.Prefill(r.Context); err != nil {
				return nil, fmt.Errorf("workload: request %d prefill: %w", i, err)
			}
			hits[i] = s.CachedPrefill()
		} else if held, ok := live[r.Session]; !ok {
			var err error
			if s, err = c.Prefill(r.Context); err != nil {
				return nil, fmt.Errorf("workload: request %d prefill: %w", i, err)
			}
			live[r.Session] = s
			hits[i] = s.CachedPrefill()
		} else {
			s = held
			if len(r.Append) > 0 {
				if err := s.Append(r.Append); err != nil {
					return nil, fmt.Errorf("workload: request %d append: %w", i, err)
				}
				appends++
				hits[i] = s.CachedPrefill()
			} else {
				hits[i] = true
			}
		}
		res, err := s.Answer(r.Query)
		if err != nil {
			return nil, fmt.Errorf("workload: request %d answer: %w", i, err)
		}
		seals[i] = s.CachedSeal()
		outputs[i] = strings.Join(res.Answer, " ")
	}
	rep := buildReport(reqs, outputs, hits, seals)
	rep.Appends = appends
	return rep, nil
}

// buildReport aggregates per-request outcomes into the replay report.
func buildReport(reqs []Request, outputs []string, hits, seals []bool) *Report {
	rep := &Report{Requests: len(reqs), Outputs: outputs}
	epochs := 0
	for _, r := range reqs {
		if r.Epoch >= epochs {
			epochs = r.Epoch + 1
		}
	}
	rep.Epochs = make([]EpochReport, epochs)
	for e := range rep.Epochs {
		rep.Epochs[e].Epoch = e
	}
	for i, r := range reqs {
		ep := &rep.Epochs[r.Epoch]
		ep.Requests++
		if r.IsScan() {
			rep.Scans++
			ep.Scans++
			if hits[i] {
				rep.ScanPrefillHits++
				ep.ScanPrefillHits++
			}
			if seals[i] {
				rep.ScanSealHits++
				ep.ScanSealHits++
			}
		} else {
			rep.Warm++
			ep.Warm++
			if hits[i] {
				rep.WarmPrefillHits++
				ep.WarmPrefillHits++
			}
			if seals[i] {
				rep.WarmSealHits++
				ep.WarmSealHits++
			}
		}
	}
	return rep
}
