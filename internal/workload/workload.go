// Package workload generates deterministic serving request streams and
// replays them against the public cocktail surface. It exists to make
// cache-policy claims testable: the generator produces a seeded mix of
// Zipf-reused session traffic (a few contexts queried again and again)
// interleaved with one-shot scans (crawler/sweep-style contexts never
// seen twice), and the replay harness reports per-class prefix-cache
// hit-rates plus every request's output so tests can assert hit-rate
// floors, byte accounting and byte-identical-output invariants.
//
// Everything is deterministic for a fixed Options value: contexts and
// queries come from Pipeline.NewSample seeds derived from Options.Seed,
// and the scan/reuse interleaving comes from a math/rand stream seeded
// the same way — so a soak test failure always reproduces.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	cocktail "repro"
	"repro/internal/parallel"
)

// ScanSession is the Request.Session value of one-shot scan requests.
const ScanSession = -1

// Request is one serving request of a generated stream.
type Request struct {
	// Session is the warm session index in [0, Options.Sessions) for
	// reuse traffic, or ScanSession for a one-shot scan.
	Session int
	// Context and Query are surface words from the pipeline vocabulary.
	Context []string
	Query   []string
}

// IsScan reports whether the request is one-shot scan traffic.
func (r Request) IsScan() bool { return r.Session == ScanSession }

// Options parameterizes a generated stream. The zero value is usable.
type Options struct {
	// Seed selects the stream; equal seeds give byte-identical streams.
	Seed uint64
	// Requests is the stream length (<= 0 selects 64).
	Requests int
	// Sessions is the number of distinct warm contexts the reuse
	// traffic draws from (<= 0 selects 3).
	Sessions int
	// ZipfS is the Zipf skew over warm sessions (must be > 1; <= 0
	// selects 1.2). Higher values concentrate reuse on fewer sessions.
	ZipfS float64
	// ScanFraction is the probability a request is a one-shot scan
	// (< 0 selects 0.5; 0 is honored — an all-warm stream).
	ScanFraction float64
	// Dataset names the Table I generator backing the contexts
	// ("" selects Qasper).
	Dataset string
}

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Sessions <= 0 {
		o.Sessions = 3
	}
	if o.ZipfS <= 0 {
		o.ZipfS = 1.2
	}
	if o.ScanFraction < 0 {
		o.ScanFraction = 0.5
	}
	if o.Dataset == "" {
		o.Dataset = "Qasper"
	}
	return o
}

// Generate builds a deterministic request stream over p's vocabulary.
// Warm session i always replays the same (context, query) pair; every
// scan request gets a context of its own.
func Generate(p *cocktail.Pipeline, opts Options) ([]Request, error) {
	opts = opts.withDefaults()
	if opts.ZipfS <= 1 {
		return nil, fmt.Errorf("workload: ZipfS must be > 1, have %v", opts.ZipfS)
	}
	if opts.ScanFraction > 1 {
		return nil, fmt.Errorf("workload: ScanFraction must be <= 1, have %v", opts.ScanFraction)
	}
	// Sample seeds live in disjoint lanes off the stream seed so warm
	// and scan contexts can never alias for a fixed Options.Seed.
	base := opts.Seed * 0x9e3779b97f4a7c15
	warm := make([]*cocktail.Sample, opts.Sessions)
	for i := range warm {
		s, err := p.NewSample(opts.Dataset, base+1+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("workload: warm sample %d: %w", i, err)
		}
		warm[i] = s
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed) + 1))
	zipf := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.Sessions-1))
	reqs := make([]Request, 0, opts.Requests)
	scans := uint64(0)
	for len(reqs) < opts.Requests {
		if rng.Float64() < opts.ScanFraction {
			s, err := p.NewSample(opts.Dataset, base+1_000_000+scans)
			if err != nil {
				return nil, fmt.Errorf("workload: scan sample %d: %w", scans, err)
			}
			scans++
			reqs = append(reqs, Request{Session: ScanSession, Context: s.Context, Query: s.Query})
			continue
		}
		i := int(zipf.Uint64())
		reqs = append(reqs, Request{Session: i, Context: warm[i].Context, Query: warm[i].Query})
	}
	return reqs, nil
}

// Prefiller is the serving surface a replay drives. *cocktail.Pipeline
// (always-cold) and *cocktail.SessionCache (prefix-cached) both
// implement it, so the same stream measures any policy against the
// uncached baseline.
type Prefiller interface {
	Prefill(context []string) (*cocktail.Session, error)
}

// Report aggregates one replay. Outputs is index-aligned with the
// request stream regardless of replay concurrency; the hit counters
// split by traffic class.
type Report struct {
	Requests, Warm, Scans int
	// WarmPrefillHits counts warm requests whose prefill state came
	// from the cache; ScanPrefillHits the same for scans (non-zero only
	// when distinct scan contexts collide, which the generator avoids).
	WarmPrefillHits, ScanPrefillHits int
	// Outputs[i] is request i's space-joined answer.
	Outputs []string
}

// WarmHitRate is the fraction of warm requests served from cached
// prefill state — the quantity scan-resistant admission protects.
func (r *Report) WarmHitRate() float64 {
	if r.Warm == 0 {
		return 0
	}
	return float64(r.WarmPrefillHits) / float64(r.Warm)
}

// Replay drives every request through c in stream order and reports
// hit-rates and outputs. Serial replay makes the hit counters
// deterministic: request i sees exactly the cache state requests 0..i-1
// left behind.
func Replay(c Prefiller, reqs []Request) (*Report, error) {
	return replay(c, reqs, 1)
}

// ReplayParallel replays the stream on up to workers goroutines
// (workers <= 0 selects NumCPU). Outputs stay index-aligned and each
// individual answer is still byte-identical to its cold run, but hit
// counters depend on request interleaving — racing misses on one
// context may each count a miss where serial replay counts hits.
func ReplayParallel(c Prefiller, reqs []Request, workers int) (*Report, error) {
	return replay(c, reqs, workers)
}

func replay(c Prefiller, reqs []Request, workers int) (*Report, error) {
	outputs := make([]string, len(reqs))
	hits := make([]bool, len(reqs))
	err := parallel.ForEach(workers, len(reqs), func(i int) error {
		s, err := c.Prefill(reqs[i].Context)
		if err != nil {
			return fmt.Errorf("workload: request %d prefill: %w", i, err)
		}
		hits[i] = s.CachedPrefill()
		res, err := s.Answer(reqs[i].Query)
		if err != nil {
			return fmt.Errorf("workload: request %d answer: %w", i, err)
		}
		outputs[i] = strings.Join(res.Answer, " ")
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Requests: len(reqs), Outputs: outputs}
	for i, r := range reqs {
		if r.IsScan() {
			rep.Scans++
			if hits[i] {
				rep.ScanPrefillHits++
			}
		} else {
			rep.Warm++
			if hits[i] {
				rep.WarmPrefillHits++
			}
		}
	}
	return rep, nil
}
