package workload

import (
	"strings"
	"testing"
	"time"

	cocktail "repro"
)

// soakStream is the shared scan-heavy workload of the soak tests: a few
// Zipf-reused sessions drowned in one-shot scan traffic.
func soakStream(t testing.TB, p *cocktail.Pipeline) []Request {
	t.Helper()
	reqs, err := Generate(p, Options{
		Seed: 7, Requests: 120, Sessions: 4, ZipfS: 1.3, ScanFraction: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// soakBudget just holds the warm working set (4 builders + sealed
// caches, ~0.93 MiB at 256-token contexts), so whether warm entries
// survive the scan flood is purely the admission policy's doing.
const soakBudget = 1 << 20

func soakCache(p *cocktail.Pipeline, policy cocktail.CachePolicy) *cocktail.SessionCache {
	return cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes: soakBudget, TTL: time.Minute, Policy: policy, GhostEntries: 256})
}

// TestSoakScanResistance is the PR's acceptance proof: under the seeded
// scan-heavy stream, 2Q admission keeps the warm-session hit-rate at
// least twice the LRU baseline (whose flush it demonstrates), every
// output — cold or cached — is byte-identical to the uncached path, and
// the byte accounting honors the budget throughout.
func TestSoakScanResistance(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)

	lru := soakCache(p, cocktail.CachePolicyLRU)
	lruRep, err := Replay(lru, reqs)
	if err != nil {
		t.Fatal(err)
	}
	twoQ := soakCache(p, cocktail.CachePolicy2Q)
	twoQRep, err := Replay(twoQ, reqs)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("warm hit-rate: lru=%.3f (%d/%d) 2q=%.3f (%d/%d)",
		lruRep.WarmHitRate(), lruRep.WarmPrefillHits, lruRep.Warm,
		twoQRep.WarmHitRate(), twoQRep.WarmPrefillHits, twoQRep.Warm)
	t.Logf("lru stats: %+v", lru.Stats())
	t.Logf("2q stats: %+v", twoQ.Stats())

	// The flush 2Q fixes: under LRU the scan flood displaces warm
	// entries, so reuse traffic misses most of the time…
	if r := lruRep.WarmHitRate(); r > 0.5 {
		t.Errorf("LRU warm hit-rate %.3f — scan pressure too weak to demonstrate the flush", r)
	}
	// …while 2Q never admits the scans, so warm sessions keep hitting.
	if r := twoQRep.WarmHitRate(); r < 0.6 {
		t.Errorf("2Q warm hit-rate %.3f below the 0.6 floor", r)
	}
	if lo, hi := lruRep.WarmHitRate(), twoQRep.WarmHitRate(); hi < 2*lo {
		t.Errorf("2Q warm hit-rate %.3f is not >= 2x the LRU baseline %.3f", hi, lo)
	}

	// Byte accounting: both stores stayed within budget, and under 2Q
	// the scan flood produced rejections instead of evictions.
	for name, st := range map[string]cocktail.CacheStats{"lru": lru.Stats(), "2q": twoQ.Stats()} {
		if st.Bytes < 0 || st.Bytes > st.MaxBytes {
			t.Errorf("%s: resident bytes %d outside [0, %d]", name, st.Bytes, st.MaxBytes)
		}
		if st.Entries == 0 || st.Insertions == 0 {
			t.Errorf("%s: store never populated: %+v", name, st)
		}
	}
	if st := twoQ.Stats(); st.Admission.ScanRejections == 0 || st.Admission.GhostPromotions == 0 {
		t.Errorf("2q admission counters never moved: %+v", st.Admission)
	}
	if st := lru.Stats(); st.Evictions == 0 {
		t.Errorf("lru store never evicted — budget not under pressure: %+v", st)
	}

	// Byte-identical outputs: every distinct (context, query) pair of
	// the stream — cached, probation or cold — must match the uncached
	// path, and the two policies must agree with each other.
	cold := map[string]string{}
	for i, r := range reqs {
		if lruRep.Outputs[i] != twoQRep.Outputs[i] {
			t.Fatalf("request %d: lru output %q != 2q output %q", i, lruRep.Outputs[i], twoQRep.Outputs[i])
		}
		key := strings.Join(r.Context, "\x00") + "\x01" + strings.Join(r.Query, "\x00")
		if _, done := cold[key]; done {
			continue
		}
		res, err := p.Answer(r.Context, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		cold[key] = strings.Join(res.Answer, " ")
		if lruRep.Outputs[i] != cold[key] {
			t.Fatalf("request %d: cached output %q != uncached %q", i, lruRep.Outputs[i], cold[key])
		}
	}
}

// TestSoakConcurrentReplay replays the stream from many goroutines
// against one shared 2Q cache; run under -race this proves the admission
// path is safe on the serving hot path and outputs stay byte-identical
// no matter the interleaving.
func TestSoakConcurrentReplay(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)
	serial, err := Replay(p, reqs) // uncached ground truth
	if err != nil {
		t.Fatal(err)
	}
	sc := soakCache(p, cocktail.CachePolicy2Q)
	conc, err := ReplayParallel(sc, reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if conc.Outputs[i] != serial.Outputs[i] {
			t.Fatalf("request %d: concurrent output %q != cold %q", i, conc.Outputs[i], serial.Outputs[i])
		}
	}
	if st := sc.Stats(); st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("budget violated under concurrency: %+v", st)
	}
}
