package workload

import (
	"math/rand"
	"testing"
)

// TestStreamDrawsPinned pins the first draws of the generator's seeded
// math/rand stream — the exact derivation Stream uses
// (rand.NewSource(Seed+1), Zipf over it, Intn for plan churn) — against
// golden values. This is the guard the //cocktail:allow determinism
// annotation on the math/rand import points at: the soak suite's exact
// hit-rate expectations assume this byte-identical request
// interleaving, so any change to the seed derivation, the RNG lineage
// (e.g. a migration to rngx) or the draw order must show up here first,
// as a conscious golden-number rewrite rather than a silent shift.
func TestStreamDrawsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(int64(42) + 1))

	// Scan-lane coin flips: the rng.Float64() < ScanFraction draws.
	wantFloats := []float64{
		0.027269176931475046, 0.51593310807379955, 0.48296253793606053,
		0.35804216725177984, 0.36213390116326899, 0.62372359564789703,
		0.17307379049513888, 0.68584160890575208,
	}
	for i, want := range wantFloats {
		if got := rng.Float64(); got != want {
			t.Fatalf("Float64 draw %d = %v, want %v", i, got, want)
		}
	}

	// Session picks: a Zipf(s=1.1) over 64 sessions, as a reuse phase
	// builds it from the shared stream.
	zipf := rand.NewZipf(rng, 1.1, 1, 63)
	wantZipf := []uint64{0, 8, 4, 25, 7, 31, 42, 6, 1, 5, 0, 2}
	for i, want := range wantZipf {
		if got := zipf.Uint64(); got != want {
			t.Fatalf("Zipf draw %d = %d, want %d", i, got, want)
		}
	}

	// Plan-churn variant picks (PlanChurn 5).
	wantIntn := []int{1, 4, 2, 4, 1, 4, 2, 0}
	for i, want := range wantIntn {
		if got := rng.Intn(5); got != want {
			t.Fatalf("Intn draw %d = %d, want %d", i, got, want)
		}
	}
}
