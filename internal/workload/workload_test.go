package workload

import (
	"strings"
	"testing"

	cocktail "repro"
)

// soakPipeline uses a small MaxSeq so generated contexts are ~256 tokens
// and a replayed request costs ~10ms — soaks stay fast under -race.
func soakPipeline(t testing.TB) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{MaxSeq: 512})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := soakPipeline(t)
	opts := Options{Seed: 42, Requests: 32, Sessions: 3, ScanFraction: 0.5}
	a, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("stream lengths %d/%d, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i].Session != b[i].Session ||
			strings.Join(a[i].Context, " ") != strings.Join(b[i].Context, " ") ||
			strings.Join(a[i].Query, " ") != strings.Join(b[i].Query, " ") {
			t.Fatalf("request %d differs between equal-seed streams", i)
		}
	}
	c, err := Generate(p, Options{Seed: 43, Requests: 32, Sessions: 3, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Session == c[i].Session {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical interleaving")
	}
}

func TestGenerateShape(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{Seed: 7, Requests: 48, Sessions: 3, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	warmCtx := map[int]string{}
	scanCtx := map[string]bool{}
	warm, scans := 0, 0
	for i, r := range reqs {
		if r.IsScan() {
			scans++
			key := strings.Join(r.Context, " ")
			if scanCtx[key] {
				t.Fatalf("request %d: scan context repeated", i)
			}
			scanCtx[key] = true
			continue
		}
		warm++
		if r.Session < 0 || r.Session >= 3 {
			t.Fatalf("request %d: session %d out of range", i, r.Session)
		}
		key := strings.Join(r.Context, " ")
		if prev, ok := warmCtx[r.Session]; ok && prev != key {
			t.Fatalf("session %d context changed mid-stream", r.Session)
		}
		warmCtx[r.Session] = key
	}
	if warm == 0 || scans == 0 {
		t.Fatalf("degenerate mix: warm=%d scans=%d", warm, scans)
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	p := soakPipeline(t)
	if _, err := Generate(p, Options{ZipfS: 1.0}); err == nil {
		t.Fatal("ZipfS <= 1 must be rejected")
	}
	if _, err := Generate(p, Options{ScanFraction: 1.5}); err == nil {
		t.Fatal("ScanFraction > 1 must be rejected")
	}
	if _, err := Generate(p, Options{PlanChurn: MaxPlanChurn + 1}); err == nil {
		t.Fatal("PlanChurn beyond MaxPlanChurn must be rejected")
	}
}

// TestGeneratePlanChurn: the plan-churn knob varies warm *queries* (and
// so sealed plans) without touching warm contexts — per-session query
// variants are drawn from a bounded pool, stable across the stream, and
// by default (PlanChurn 1) each session keeps its single historical
// query.
func TestGeneratePlanChurn(t *testing.T) {
	p := soakPipeline(t)
	base := Options{Seed: 42, Requests: 96, Sessions: 3, ScanFraction: 0.25}

	single, err := Generate(p, base)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := Generate(p, Options{
		Seed: base.Seed, Requests: base.Requests, Sessions: base.Sessions,
		ScanFraction: base.ScanFraction, PlanChurn: 4})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(p, Options{
		Seed: base.Seed, Requests: base.Requests, Sessions: base.Sessions,
		ScanFraction: base.ScanFraction, PlanChurn: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := func(reqs []Request) map[int]map[string]bool {
		per := map[int]map[string]bool{}
		for i, r := range reqs {
			if r.IsScan() {
				continue
			}
			if per[r.Session] == nil {
				per[r.Session] = map[string]bool{}
			}
			per[r.Session][strings.Join(r.Query, " ")] = true
			// Context stays pinned to the session regardless of churn.
			if i > 0 && !r.IsScan() {
				for _, o := range reqs[:i] {
					if o.Session == r.Session && strings.Join(o.Context, " ") != strings.Join(r.Context, " ") {
						t.Fatalf("session %d context changed under churn", r.Session)
					}
				}
			}
		}
		return per
	}
	for s, qs := range queries(single) {
		if len(qs) != 1 {
			t.Fatalf("PlanChurn 1: session %d has %d distinct queries, want 1", s, len(qs))
		}
	}
	churnedQs := queries(churned)
	multi := 0
	for s, qs := range churnedQs {
		if len(qs) > 4 {
			t.Fatalf("session %d has %d distinct queries, want <= PlanChurn", s, len(qs))
		}
		if len(qs) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("PlanChurn 4 produced no session with multiple queries")
	}
	// Equal seeds give byte-identical churned streams.
	for i := range churned {
		if strings.Join(churned[i].Query, " ") != strings.Join(again[i].Query, " ") ||
			strings.Join(churned[i].Context, " ") != strings.Join(again[i].Context, " ") {
			t.Fatalf("request %d differs between equal-seed churned streams", i)
		}
	}
	// Variant pools are shared across epochs: a two-phase stream with
	// the same churn draws session queries from the same pool, so
	// cross-epoch sealed reuse stays observable.
	phased, err := GeneratePhases(p, Options{Seed: base.Seed, Sessions: 3, PlanChurn: 4},
		[]Phase{{Requests: 48, ScanFraction: 0}, {Requests: 48, ScanFraction: 0}})
	if err != nil {
		t.Fatal(err)
	}
	pool := map[int]map[string]bool{}
	for _, r := range phased[:48] {
		if pool[r.Session] == nil {
			pool[r.Session] = map[string]bool{}
		}
		pool[r.Session][strings.Join(r.Query, " ")] = true
	}
	for _, r := range phased[48:] {
		// Epoch 1 may only replay epoch-0 variants or unseen pool
		// variants — never a query outside the 4-variant pool; checked
		// via the pool bound above plus determinism. Here: variants per
		// session across both epochs still bounded by PlanChurn.
		pool[r.Session][strings.Join(r.Query, " ")] = true
	}
	for s, qs := range pool {
		if len(qs) > 4 {
			t.Fatalf("session %d drew %d variants across epochs, want <= 4", s, len(qs))
		}
	}
}

// TestReplayColdBaseline: replaying against the bare pipeline hits
// nothing and every output is byte-identical to a direct Answer call.
func TestReplayColdBaseline(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{Seed: 3, Requests: 6, Sessions: 2, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmPrefillHits != 0 || rep.ScanPrefillHits != 0 {
		t.Fatalf("bare pipeline reported cache hits: %+v", rep)
	}
	if rep.Warm+rep.Scans != rep.Requests || rep.Requests != 6 {
		t.Fatalf("request classification: %+v", rep)
	}
	for i, r := range reqs {
		res, err := p.Answer(r.Context, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rep.Outputs[i], strings.Join(res.Answer, " "); got != want {
			t.Fatalf("request %d: replay output %q != cold answer %q", i, got, want)
		}
	}
}
