package workload

import (
	"strings"
	"testing"

	cocktail "repro"
)

// soakPipeline uses a small MaxSeq so generated contexts are ~256 tokens
// and a replayed request costs ~10ms — soaks stay fast under -race.
func soakPipeline(t testing.TB) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{MaxSeq: 512})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := soakPipeline(t)
	opts := Options{Seed: 42, Requests: 32, Sessions: 3, ScanFraction: 0.5}
	a, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("stream lengths %d/%d, want 32", len(a), len(b))
	}
	for i := range a {
		if a[i].Session != b[i].Session ||
			strings.Join(a[i].Context, " ") != strings.Join(b[i].Context, " ") ||
			strings.Join(a[i].Query, " ") != strings.Join(b[i].Query, " ") {
			t.Fatalf("request %d differs between equal-seed streams", i)
		}
	}
	c, err := Generate(p, Options{Seed: 43, Requests: 32, Sessions: 3, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Session == c[i].Session {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical interleaving")
	}
}

func TestGenerateShape(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{Seed: 7, Requests: 48, Sessions: 3, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	warmCtx := map[int]string{}
	scanCtx := map[string]bool{}
	warm, scans := 0, 0
	for i, r := range reqs {
		if r.IsScan() {
			scans++
			key := strings.Join(r.Context, " ")
			if scanCtx[key] {
				t.Fatalf("request %d: scan context repeated", i)
			}
			scanCtx[key] = true
			continue
		}
		warm++
		if r.Session < 0 || r.Session >= 3 {
			t.Fatalf("request %d: session %d out of range", i, r.Session)
		}
		key := strings.Join(r.Context, " ")
		if prev, ok := warmCtx[r.Session]; ok && prev != key {
			t.Fatalf("session %d context changed mid-stream", r.Session)
		}
		warmCtx[r.Session] = key
	}
	if warm == 0 || scans == 0 {
		t.Fatalf("degenerate mix: warm=%d scans=%d", warm, scans)
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	p := soakPipeline(t)
	if _, err := Generate(p, Options{ZipfS: 1.0}); err == nil {
		t.Fatal("ZipfS <= 1 must be rejected")
	}
	if _, err := Generate(p, Options{ScanFraction: 1.5}); err == nil {
		t.Fatal("ScanFraction > 1 must be rejected")
	}
}

// TestReplayColdBaseline: replaying against the bare pipeline hits
// nothing and every output is byte-identical to a direct Answer call.
func TestReplayColdBaseline(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{Seed: 3, Requests: 6, Sessions: 2, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WarmPrefillHits != 0 || rep.ScanPrefillHits != 0 {
		t.Fatalf("bare pipeline reported cache hits: %+v", rep)
	}
	if rep.Warm+rep.Scans != rep.Requests || rep.Requests != 6 {
		t.Fatalf("request classification: %+v", rep)
	}
	for i, r := range reqs {
		res, err := p.Answer(r.Context, r.Query)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rep.Outputs[i], strings.Join(res.Answer, " "); got != want {
			t.Fatalf("request %d: replay output %q != cold answer %q", i, got, want)
		}
	}
}
