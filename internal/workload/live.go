package workload

// Live replay: driving a generated stream through the real HTTP server
// (internal/httpapi) instead of the in-process Prefiller surface. This is
// what the batched-vs-serial differential soaks, the sim-vs-live
// cross-validation tests and BenchmarkBatchedServeThroughput run on.
//
// Two drive modes mirror the two ways a serving system is loaded:
//
//   - ReplayHTTP is closed-loop: a fixed worker count, the next request
//     fires when a worker frees up. workers=1 preserves stream order, so
//     cache-behavior comparisons against the in-process Replay are exact.
//   - ReplayTrace is open-loop: request i fires at its trace arrival
//     time regardless of completions — the arrival process the serving
//     simulator models, which is what makes live and simulated runs of
//     one serving.PoissonTrace comparable.
//
// FromTrace maps a serving trace's (ID, ArrivalTime) stream onto warm
// workload requests drawn from the same seed lanes as Generate, so the
// simulator's trace vocabulary and the live server share one request
// stream.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	cocktail "repro"
	"repro/internal/parallel"
	"repro/internal/serving"
)

// LiveReport aggregates one HTTP replay. Outputs is index-aligned with
// the request stream regardless of drive mode or concurrency.
type LiveReport struct {
	Requests int
	// Outputs[i] is request i's space-joined answer.
	Outputs []string
	// Latencies[i] covers request i's send -> response, in seconds. For
	// open-loop replay that includes any server-side queueing the arrival
	// process caused.
	Latencies []float64
	// MeanLatency / P95Latency summarize Latencies (serving.LatencySummary).
	MeanLatency, P95Latency float64
	// Elapsed is the span from replay start (the trace's t=0 for
	// ReplayTrace) to the last completion, in seconds; ThroughputRPS is
	// Requests / Elapsed — the live analog of the simulator's
	// completions-over-SimTime figure.
	Elapsed       float64
	ThroughputRPS float64
	// TTFTs[i] is request i's send -> first token event, in seconds
	// (streamed replays only; nil for buffered replays). Requests whose
	// answer is empty record their total latency — there was no first
	// token to wait for.
	TTFTs []float64
}

func (r *LiveReport) finalize(elapsed time.Duration) {
	r.MeanLatency, r.P95Latency = serving.LatencySummary(r.Latencies)
	r.Elapsed = elapsed.Seconds()
	if r.Elapsed > 0 {
		r.ThroughputRPS = float64(r.Requests) / r.Elapsed
	}
}

// postAnswer sends one /v1/answer call and returns the space-joined
// answer; a request carrying a Tenant label sends it in tenantHeader
// (when the caller named one) so the server's DRR dispatcher can meter
// it. Any non-200 is an error: the replay harness sizes queue depth
// for the load it offers, so shedding means the test asked wrong.
func postAnswer(client *http.Client, baseURL, tenantHeader string, req Request) (string, error) {
	body, err := json.Marshal(map[string]any{"context": req.Context, "query": req.Query})
	if err != nil {
		return "", err
	}
	hr, err := http.NewRequest(http.MethodPost, baseURL+"/v1/answer", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenantHeader != "" && req.Tenant != "" {
		hr.Header.Set(tenantHeader, req.Tenant)
	}
	resp, err := client.Do(hr)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", fmt.Errorf("workload: /v1/answer status %d: %s", resp.StatusCode, msg)
	}
	var res struct {
		Answer []string `json:"answer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return "", err
	}
	return strings.Join(res.Answer, " "), nil
}

// postAnswerStream sends one streaming answer call (POST url?stream=1)
// and consumes the SSE response, frame by frame so TTFT reflects the
// first token's actual arrival. It returns the concatenation of every
// token event, the final result event's answer, and the time to the
// first token event (total latency when the answer is empty). The parser
// accepts exactly the framing the server emits (`event:` + `data:`
// lines, blank-line terminated) and errors on anything else — including
// a terminal error event, a missing result event, or a token
// concatenation disagreeing with the stream's own result event — so
// protocol drift fails the soaks instead of passing vacuously.
func postAnswerStream(client *http.Client, url string, payload map[string]any) (streamed, final string, ttft float64, err error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return "", "", 0, err
	}
	sent := time.Now()
	resp, err := client.Post(url+"?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", "", 0, fmt.Errorf("workload: stream status %d: %s", resp.StatusCode, msg)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return "", "", 0, fmt.Errorf("workload: stream content-type %q, want text/event-stream", ct)
	}
	var (
		toks      []string
		gotResult bool
	)
	handle := func(event string, data []byte) error {
		switch event {
		case "token":
			var t struct {
				Tokens []string `json:"tokens"`
			}
			if err := json.Unmarshal(data, &t); err != nil {
				return err
			}
			if len(toks) == 0 && len(t.Tokens) > 0 {
				ttft = time.Since(sent).Seconds()
			}
			toks = append(toks, t.Tokens...)
		case "result":
			var res struct {
				Answer []string `json:"answer"`
			}
			if err := json.Unmarshal(data, &res); err != nil {
				return err
			}
			final = strings.Join(res.Answer, " ")
			gotResult = true
		case "error":
			var msg struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(data, &msg)
			return fmt.Errorf("workload: stream error event: %s", msg.Error)
		default:
			return fmt.Errorf("workload: unknown SSE event %q", event)
		}
		return nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var (
		event string
		data  []byte
		open  bool
	)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if open {
				if err := handle(event, data); err != nil {
					return "", "", 0, err
				}
				event, data, open = "", nil, false
			}
		case strings.HasPrefix(line, "event: "):
			event, open = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "data: "):
			data, open = []byte(strings.TrimPrefix(line, "data: ")), true
		default:
			return "", "", 0, fmt.Errorf("workload: unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", 0, err
	}
	if open {
		if err := handle(event, data); err != nil {
			return "", "", 0, err
		}
	}
	if !gotResult {
		return "", "", 0, fmt.Errorf("workload: stream ended without a result event")
	}
	streamed = strings.Join(toks, " ")
	if streamed != final {
		return "", "", 0, fmt.Errorf("workload: streamed tokens %q disagree with result %q", streamed, final)
	}
	if len(toks) == 0 {
		ttft = time.Since(sent).Seconds()
	}
	return streamed, final, ttft, nil
}

// ReplayHTTPStream drives every request through the SSE path of POST
// /v1/answer closed-loop on up to workers goroutines. Outputs are the
// token-event concatenations (already checked against each stream's own
// result event), so diffing them against a buffered ReplayHTTP — or the
// in-process cold truth — is the full streamed-vs-buffered differential.
// TTFTs records each request's first-token latency.
func ReplayHTTPStream(client *http.Client, baseURL string, reqs []Request, workers int) (*LiveReport, error) {
	rep := &LiveReport{
		Requests:  len(reqs),
		Outputs:   make([]string, len(reqs)),
		Latencies: make([]float64, len(reqs)),
		TTFTs:     make([]float64, len(reqs)),
	}
	start := time.Now()
	err := parallel.ForEach(workers, len(reqs), func(i int) error {
		sent := time.Now()
		streamed, _, ttft, err := postAnswerStream(client, baseURL+"/v1/answer",
			map[string]any{"context": reqs[i].Context, "query": reqs[i].Query})
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		rep.Outputs[i] = streamed
		rep.Latencies[i] = time.Since(sent).Seconds()
		rep.TTFTs[i] = ttft
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.finalize(time.Since(start))
	return rep, nil
}

// ReplayHTTP drives every request through POST /v1/answer closed-loop on
// up to workers goroutines (<= 1 means serial, in stream order — the
// mode whose cache-state sequence matches the in-process Replay exactly).
func ReplayHTTP(client *http.Client, baseURL string, reqs []Request, workers int) (*LiveReport, error) {
	return ReplayHTTPTenants(client, baseURL, "", reqs, workers)
}

// ReplayHTTPTenants is ReplayHTTP with tenant attribution: a request
// carrying a Tenant label sends it in tenantHeader — the name the
// server was given as its -tenant-header — which is what keys the
// per-tenant DRR dispatcher the fairness soaks measure. An empty header
// name (or an untenanted request) sends no header.
func ReplayHTTPTenants(client *http.Client, baseURL, tenantHeader string, reqs []Request, workers int) (*LiveReport, error) {
	rep := &LiveReport{
		Requests:  len(reqs),
		Outputs:   make([]string, len(reqs)),
		Latencies: make([]float64, len(reqs)),
	}
	start := time.Now()
	err := parallel.ForEach(workers, len(reqs), func(i int) error {
		sent := time.Now()
		out, err := postAnswer(client, baseURL, tenantHeader, reqs[i])
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		rep.Outputs[i] = out
		rep.Latencies[i] = time.Since(sent).Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.finalize(time.Since(start))
	return rep, nil
}

// ReplayTrace drives the requests open-loop: request i is sent at
// arrivals[i] seconds after replay start (one goroutine per request, as
// a Poisson arrival process demands), and the report's Elapsed spans the
// trace's t=0 through the last completion — the same span the simulator
// calls SimTime. len(arrivals) must equal len(reqs).
func ReplayTrace(client *http.Client, baseURL string, reqs []Request, arrivals []float64) (*LiveReport, error) {
	if len(arrivals) != len(reqs) {
		return nil, fmt.Errorf("workload: %d arrivals for %d requests", len(arrivals), len(reqs))
	}
	rep := &LiveReport{
		Requests:  len(reqs),
		Outputs:   make([]string, len(reqs)),
		Latencies: make([]float64, len(reqs)),
	}
	start := time.Now()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			offset := time.Duration(arrivals[i] * float64(time.Second))
			if d := time.Until(start.Add(offset)); d > 0 {
				time.Sleep(d)
			}
			sent := time.Now()
			out, err := postAnswer(client, baseURL, "", reqs[i])
			if err != nil {
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("request %d: %w", i, err)
				}
				mu.Unlock()
				return
			}
			rep.Outputs[i] = out
			rep.Latencies[i] = time.Since(sent).Seconds()
		}(i)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	rep.finalize(time.Since(start))
	return rep, nil
}

// FromTrace maps a serving trace onto live workload requests: request i
// reuses warm context trace[i].ID mod sessions (sessions <= 0 selects
// Options.Sessions' default), drawn from the same warm seed lanes as
// Generate for the given Options.Seed, and arrivals[i] is the trace's
// arrival time. The simulator and the live server then run one shared
// (ID, ArrivalTime) stream; only the request *shapes* differ, since the
// live pipeline's context/query lengths come from its own samples.
func FromTrace(p *cocktail.Pipeline, opts Options, trace []serving.Request) ([]Request, []float64, error) {
	opts = opts.withDefaults()
	base := opts.Seed * 0x9e3779b97f4a7c15
	warm := make([]*cocktail.Sample, opts.Sessions)
	for i := range warm {
		s, err := p.NewSample(opts.Dataset, base+1+uint64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("workload: warm sample %d: %w", i, err)
		}
		warm[i] = s
	}
	reqs := make([]Request, len(trace))
	arrivals := make([]float64, len(trace))
	for i, tr := range trace {
		id := tr.ID % opts.Sessions
		if id < 0 {
			id += opts.Sessions
		}
		reqs[i] = Request{Session: id, Context: warm[id].Context, Query: warm[id].Query}
		arrivals[i] = tr.ArrivalTime
	}
	return reqs, arrivals, nil
}
