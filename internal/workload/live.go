package workload

// Live replay: driving a generated stream through the real HTTP server
// (internal/httpapi) instead of the in-process Prefiller surface. This is
// what the batched-vs-serial differential soaks, the sim-vs-live
// cross-validation tests and BenchmarkBatchedServeThroughput run on.
//
// Two drive modes mirror the two ways a serving system is loaded:
//
//   - ReplayHTTP is closed-loop: a fixed worker count, the next request
//     fires when a worker frees up. workers=1 preserves stream order, so
//     cache-behavior comparisons against the in-process Replay are exact.
//   - ReplayTrace is open-loop: request i fires at its trace arrival
//     time regardless of completions — the arrival process the serving
//     simulator models, which is what makes live and simulated runs of
//     one serving.PoissonTrace comparable.
//
// FromTrace maps a serving trace's (ID, ArrivalTime) stream onto warm
// workload requests drawn from the same seed lanes as Generate, so the
// simulator's trace vocabulary and the live server share one request
// stream.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	cocktail "repro"
	"repro/internal/parallel"
	"repro/internal/serving"
)

// LiveReport aggregates one HTTP replay. Outputs is index-aligned with
// the request stream regardless of drive mode or concurrency.
type LiveReport struct {
	Requests int
	// Outputs[i] is request i's space-joined answer.
	Outputs []string
	// Latencies[i] covers request i's send -> response, in seconds. For
	// open-loop replay that includes any server-side queueing the arrival
	// process caused.
	Latencies []float64
	// MeanLatency / P95Latency summarize Latencies (serving.LatencySummary).
	MeanLatency, P95Latency float64
	// Elapsed is the span from replay start (the trace's t=0 for
	// ReplayTrace) to the last completion, in seconds; ThroughputRPS is
	// Requests / Elapsed — the live analog of the simulator's
	// completions-over-SimTime figure.
	Elapsed       float64
	ThroughputRPS float64
}

func (r *LiveReport) finalize(elapsed time.Duration) {
	r.MeanLatency, r.P95Latency = serving.LatencySummary(r.Latencies)
	r.Elapsed = elapsed.Seconds()
	if r.Elapsed > 0 {
		r.ThroughputRPS = float64(r.Requests) / r.Elapsed
	}
}

// postAnswer sends one /v1/answer call and returns the space-joined
// answer. Any non-200 is an error: the replay harness sizes queue depth
// for the load it offers, so shedding means the test asked wrong.
func postAnswer(client *http.Client, baseURL string, req Request) (string, error) {
	body, err := json.Marshal(map[string]any{"context": req.Context, "query": req.Query})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(baseURL+"/v1/answer", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", fmt.Errorf("workload: /v1/answer status %d: %s", resp.StatusCode, msg)
	}
	var res struct {
		Answer []string `json:"answer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return "", err
	}
	return strings.Join(res.Answer, " "), nil
}

// ReplayHTTP drives every request through POST /v1/answer closed-loop on
// up to workers goroutines (<= 1 means serial, in stream order — the
// mode whose cache-state sequence matches the in-process Replay exactly).
func ReplayHTTP(client *http.Client, baseURL string, reqs []Request, workers int) (*LiveReport, error) {
	rep := &LiveReport{
		Requests:  len(reqs),
		Outputs:   make([]string, len(reqs)),
		Latencies: make([]float64, len(reqs)),
	}
	start := time.Now()
	err := parallel.ForEach(workers, len(reqs), func(i int) error {
		sent := time.Now()
		out, err := postAnswer(client, baseURL, reqs[i])
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		rep.Outputs[i] = out
		rep.Latencies[i] = time.Since(sent).Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.finalize(time.Since(start))
	return rep, nil
}

// ReplayTrace drives the requests open-loop: request i is sent at
// arrivals[i] seconds after replay start (one goroutine per request, as
// a Poisson arrival process demands), and the report's Elapsed spans the
// trace's t=0 through the last completion — the same span the simulator
// calls SimTime. len(arrivals) must equal len(reqs).
func ReplayTrace(client *http.Client, baseURL string, reqs []Request, arrivals []float64) (*LiveReport, error) {
	if len(arrivals) != len(reqs) {
		return nil, fmt.Errorf("workload: %d arrivals for %d requests", len(arrivals), len(reqs))
	}
	rep := &LiveReport{
		Requests:  len(reqs),
		Outputs:   make([]string, len(reqs)),
		Latencies: make([]float64, len(reqs)),
	}
	start := time.Now()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			offset := time.Duration(arrivals[i] * float64(time.Second))
			if d := time.Until(start.Add(offset)); d > 0 {
				time.Sleep(d)
			}
			sent := time.Now()
			out, err := postAnswer(client, baseURL, reqs[i])
			if err != nil {
				mu.Lock()
				if first == nil {
					first = fmt.Errorf("request %d: %w", i, err)
				}
				mu.Unlock()
				return
			}
			rep.Outputs[i] = out
			rep.Latencies[i] = time.Since(sent).Seconds()
		}(i)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	rep.finalize(time.Since(start))
	return rep, nil
}

// FromTrace maps a serving trace onto live workload requests: request i
// reuses warm context trace[i].ID mod sessions (sessions <= 0 selects
// Options.Sessions' default), drawn from the same warm seed lanes as
// Generate for the given Options.Seed, and arrivals[i] is the trace's
// arrival time. The simulator and the live server then run one shared
// (ID, ArrivalTime) stream; only the request *shapes* differ, since the
// live pipeline's context/query lengths come from its own samples.
func FromTrace(p *cocktail.Pipeline, opts Options, trace []serving.Request) ([]Request, []float64, error) {
	opts = opts.withDefaults()
	base := opts.Seed * 0x9e3779b97f4a7c15
	warm := make([]*cocktail.Sample, opts.Sessions)
	for i := range warm {
		s, err := p.NewSample(opts.Dataset, base+1+uint64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("workload: warm sample %d: %w", i, err)
		}
		warm[i] = s
	}
	reqs := make([]Request, len(trace))
	arrivals := make([]float64, len(trace))
	for i, tr := range trace {
		id := tr.ID % opts.Sessions
		if id < 0 {
			id += opts.Sessions
		}
		reqs[i] = Request{Session: id, Context: warm[id].Context, Query: warm[id].Query}
		arrivals[i] = tr.ArrivalTime
	}
	return reqs, arrivals, nil
}
