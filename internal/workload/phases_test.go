package workload

import (
	"reflect"
	"strings"
	"testing"

	cocktail "repro"
)

// phasePipeline is a cheaper pipeline than soakPipeline (~128-token
// contexts), so multi-epoch soaks replaying several policies stay fast
// under -race.
func phasePipeline(t testing.TB) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{MaxSeq: 384})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// testPhases is the shared three-epoch shape: scan-flood, then
// reuse-heavy with a wave of fresh sessions, then mixed.
func testPhases() []Phase {
	return []Phase{
		{Name: "scan-flood", Requests: 40, ScanFraction: 0.85, Sessions: 4},
		{Name: "reuse-heavy", Requests: 30, ScanFraction: 0.05, Sessions: 8},
		{Name: "mixed", Requests: 30, ScanFraction: 0.5, Sessions: 8},
	}
}

// TestGeneratePhasesDeterministic: a fixed (seed, phases) pair replays
// byte-identically; a different seed does not.
func TestGeneratePhasesDeterministic(t *testing.T) {
	p := phasePipeline(t)
	opts := Options{Seed: 21, ZipfS: 1.3}
	a, err := GeneratePhases(p, opts, testPhases())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePhases(p, opts, testPhases())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal-seed phased streams differ")
	}
	c, err := GeneratePhases(p, Options{Seed: 22, ZipfS: 1.3}, testPhases())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Session == c[i].Session {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical interleaving")
	}
}

// TestGeneratePhasesEpochBoundaries: request i carries the epoch of the
// phase whose [offset, offset+Requests) window contains i, with exact
// per-epoch request counts and total length.
func TestGeneratePhasesEpochBoundaries(t *testing.T) {
	p := phasePipeline(t)
	phases := testPhases()
	reqs, err := GeneratePhases(p, Options{Seed: 5}, phases)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ph := range phases {
		want += ph.Requests
	}
	if len(reqs) != want {
		t.Fatalf("stream length %d, want %d", len(reqs), want)
	}
	off := 0
	for e, ph := range phases {
		for i := off; i < off+ph.Requests; i++ {
			if reqs[i].Epoch != e {
				t.Fatalf("request %d: epoch %d, want %d", i, reqs[i].Epoch, e)
			}
		}
		off += ph.Requests
	}
}

// TestGeneratePhasesSessionPools: each epoch draws warm sessions only
// from its own pool, a session index shared by two epochs replays the
// identical (context, query) pair in both, and the phase-2 pool
// enlargement really introduces fresh contexts.
func TestGeneratePhasesSessionPools(t *testing.T) {
	p := phasePipeline(t)
	phases := testPhases()
	reqs, err := GeneratePhases(p, Options{Seed: 9, ZipfS: 1.2}, phases)
	if err != nil {
		t.Fatal(err)
	}
	ctxOf := map[int]string{}
	seenHigh := false
	for i, r := range reqs {
		if r.IsScan() {
			continue
		}
		if max := phases[r.Epoch].Sessions; r.Session < 0 || r.Session >= max {
			t.Fatalf("request %d: session %d outside epoch pool [0, %d)", i, r.Session, max)
		}
		if r.Session >= 4 {
			seenHigh = true
		}
		key := strings.Join(r.Context, " ")
		if prev, ok := ctxOf[r.Session]; ok && prev != key {
			t.Fatalf("session %d context changed across epochs", r.Session)
		}
		ctxOf[r.Session] = key
	}
	if !seenHigh {
		t.Fatal("enlarged pool never drew a fresh session — tune the stream")
	}
}

// TestGeneratePhasesZipfShare: the warm-session distribution keeps its
// Zipf shape — session 0 is the strict plurality and, at a strong skew,
// the head holds at least its asymptotic share.
func TestGeneratePhasesZipfShare(t *testing.T) {
	p := phasePipeline(t)
	reqs, err := GeneratePhases(p, Options{Seed: 13, ZipfS: 1.5},
		[]Phase{{Name: "warm", Requests: 300, ScanFraction: 0, Sessions: 6}})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 6)
	for _, r := range reqs {
		if r.IsScan() {
			t.Fatal("all-warm epoch generated a scan")
		}
		counts[r.Session]++
	}
	for k := 1; k < len(counts); k++ {
		if counts[0] <= counts[k] {
			t.Fatalf("session 0 not the plurality: counts %v", counts)
		}
	}
	// Zipf with s=1.5 over 6 ranks gives rank 1 a ~57% share; even with
	// sampling noise the head must dominate.
	if counts[0] < 300*2/5 {
		t.Fatalf("head share collapsed: counts %v", counts)
	}
}

// TestGeneratePhasesInheritsOptions: unset phase fields fall back to the
// stream Options (ScanFraction < 0, Sessions/ZipfS <= 0), while 0 is an
// honored all-warm ScanFraction.
func TestGeneratePhasesInheritsOptions(t *testing.T) {
	p := phasePipeline(t)
	reqs, err := GeneratePhases(p, Options{Seed: 2, Sessions: 2, ZipfS: 1.4, ScanFraction: 1},
		[]Phase{
			{Name: "inherit-all-scan", Requests: 10, ScanFraction: -1},
			{Name: "all-warm", Requests: 10, ScanFraction: 0},
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if r.Epoch == 0 && !r.IsScan() {
			t.Fatalf("request %d: inherited ScanFraction=1 epoch produced warm traffic", i)
		}
		if r.Epoch == 1 {
			if r.IsScan() {
				t.Fatalf("request %d: explicit ScanFraction=0 epoch produced a scan", i)
			}
			if r.Session < 0 || r.Session >= 2 {
				t.Fatalf("request %d: inherited Sessions=2 violated (session %d)", i, r.Session)
			}
		}
	}
}

// TestGeneratePhasesRejectsBadPhases: structural errors are rejected
// up front, per phase.
func TestGeneratePhasesRejectsBadPhases(t *testing.T) {
	p := phasePipeline(t)
	cases := []struct {
		name   string
		opts   Options
		phases []Phase
	}{
		{"no-phases", Options{}, nil},
		{"zero-requests", Options{}, []Phase{{Requests: 0}}},
		{"bad-zipf", Options{}, []Phase{{Requests: 4, ZipfS: 1.0}}},
		{"bad-scan-fraction", Options{}, []Phase{{Requests: 4, ScanFraction: 1.5}}},
		{"bad-dataset", Options{Dataset: "nope"}, []Phase{{Requests: 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GeneratePhases(p, tc.opts, tc.phases); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

// TestReplayEpochAggregation: the per-epoch report blocks partition the
// stream-level counters exactly.
func TestReplayEpochAggregation(t *testing.T) {
	p := phasePipeline(t)
	reqs, err := GeneratePhases(p, Options{Seed: 3, ZipfS: 1.3}, []Phase{
		{Name: "a", Requests: 6, ScanFraction: 0.5, Sessions: 2},
		{Name: "b", Requests: 6, ScanFraction: 0, Sessions: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(p, reqs) // uncached: no hits anywhere
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 2 {
		t.Fatalf("epoch blocks: %+v", rep.Epochs)
	}
	var warm, scans, n int
	for e, ep := range rep.Epochs {
		if ep.Epoch != e || ep.Requests != 6 {
			t.Fatalf("epoch block %d: %+v", e, ep)
		}
		if ep.WarmPrefillHits != 0 || ep.ScanPrefillHits != 0 || ep.WarmHitRate() != 0 {
			t.Fatalf("uncached replay reported hits: %+v", ep)
		}
		warm += ep.Warm
		scans += ep.Scans
		n += ep.Requests
	}
	if warm != rep.Warm || scans != rep.Scans || n != rep.Requests {
		t.Fatalf("epoch blocks do not partition the totals: %+v vs %+v", rep.Epochs, rep)
	}
	if rep.Epochs[1].Scans != 0 {
		t.Fatalf("all-warm epoch b saw scans: %+v", rep.Epochs[1])
	}
}

// TestGeneratePhasesDoesNotMutateInput: per-phase default resolution
// happens on a copy, so a caller can reuse one phases slice with
// different Options values.
func TestGeneratePhasesDoesNotMutateInput(t *testing.T) {
	p := phasePipeline(t)
	phases := []Phase{{Name: "p", Requests: 4, ScanFraction: -1}}
	if _, err := GeneratePhases(p, Options{Seed: 1, Sessions: 2, ZipfS: 1.4}, phases); err != nil {
		t.Fatal(err)
	}
	if phases[0].Sessions != 0 || phases[0].ZipfS != 0 || phases[0].ScanFraction != -1 {
		t.Fatalf("caller's phases slice was mutated: %+v", phases[0])
	}
}
