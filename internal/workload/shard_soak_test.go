package workload

// shard_soak_test.go is the sharded-vs-single-mutex differential soak:
// the same seeded workload replayed through a lock-sharded cache and the
// historical 1-shard store must produce byte-identical outputs, and —
// with a budget ample enough that neither store evicts — identical
// aggregate CacheStats. (Under byte pressure the two legitimately
// diverge in *which* entries survive: LRU order is global in one store
// and per-lock-shard in the other. Output bytes still must not differ —
// a miss re-prefills to the same bytes — which the pressure run below
// pins.) live_test.go's TestLiveDifferentialSoak leans on this file for
// the sharded side of its equivalence story.

import (
	"reflect"
	"testing"
	"time"

	cocktail "repro"
)

func shardSoakCache(p *cocktail.Pipeline, shards int, maxBytes int64) *cocktail.SessionCache {
	return cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes: maxBytes, TTL: time.Minute, Shards: shards})
}

// TestShardSoakStatsIdentical: ample budget, no evictions — the 8-shard
// cache must agree with the 1-shard cache on every aggregate CacheStats
// field (the per-shard breakdown is the only legitimate difference) and
// on every output byte.
func TestShardSoakStatsIdentical(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)
	const ample = 64 << 20

	single := shardSoakCache(p, 1, ample)
	singleRep, err := Replay(single, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardSoakCache(p, 8, ample)
	shardedRep, err := Replay(sharded, reqs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range singleRep.Outputs {
		if singleRep.Outputs[i] != shardedRep.Outputs[i] {
			t.Fatalf("request %d: 1-shard output %q != 8-shard output %q",
				i, singleRep.Outputs[i], shardedRep.Outputs[i])
		}
	}

	st1, st8 := single.Stats(), sharded.Stats()
	if st1.Evictions != 0 || st8.Evictions != 0 {
		t.Fatalf("ample budget still evicted (1-shard %d, 8-shard %d) — raise it",
			st1.Evictions, st8.Evictions)
	}
	if len(st1.Shards) != 1 || len(st8.Shards) != 8 {
		t.Fatalf("shard blocks: %d and %d, want 1 and 8", len(st1.Shards), len(st8.Shards))
	}
	// Aggregate equality: strip the per-shard breakdown (the one block
	// that genuinely differs) and require everything else — counters,
	// occupancy, admission block, per-kind blocks — field-identical.
	st1.Shards, st8.Shards = nil, nil
	if !reflect.DeepEqual(st1, st8) {
		t.Fatalf("aggregate CacheStats diverged without evictions:\n1-shard %+v\n8-shard %+v", st1, st8)
	}
}

// TestShardSoakOutputsUnderPressure: with the soak budget tight enough
// to force evictions, hit patterns may differ between shard counts but
// output bytes must not — every answer stays byte-identical to the
// 1-shard replay and to the uncached pipeline.
func TestShardSoakOutputsUnderPressure(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)

	single := shardSoakCache(p, 1, soakBudget)
	singleRep, err := Replay(single, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardSoakCache(p, 8, soakBudget)
	shardedRep, err := Replay(sharded, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st := sharded.Stats(); st.Evictions == 0 {
		t.Fatalf("pressure run never evicted — budget not tight: %+v", st)
	}
	uncached, err := Replay(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if shardedRep.Outputs[i] != singleRep.Outputs[i] || shardedRep.Outputs[i] != uncached.Outputs[i] {
			t.Fatalf("request %d outputs diverged under pressure:\n1-shard  %q\n8-shard  %q\nuncached %q",
				i, singleRep.Outputs[i], shardedRep.Outputs[i], uncached.Outputs[i])
		}
	}
	// Byte accounting holds per lock-shard even under churn.
	for i, sh := range sharded.Stats().Shards {
		if sh.Bytes < 0 || sh.Bytes > sh.MaxBytes {
			t.Errorf("shard %d bytes %d outside [0, %d]", i, sh.Bytes, sh.MaxBytes)
		}
	}
}

// TestShardSoakConcurrentReplay is the contention soak: the stream
// replayed from many goroutines against one sharded cache (run under
// -race this exercises cross-lock-shard concurrency on the serving hot
// path, which the single-mutex TestSoakConcurrentReplay never could)
// must keep every output byte-identical to the serial uncached replay.
func TestShardSoakConcurrentReplay(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)
	serial, err := Replay(p, reqs) // uncached ground truth
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardSoakCache(p, 8, soakBudget)
	rep, err := ReplayParallel(sharded, reqs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if rep.Outputs[i] != serial.Outputs[i] {
			t.Fatalf("request %d: concurrent sharded output %q != serial uncached %q",
				i, rep.Outputs[i], serial.Outputs[i])
		}
	}
	st := sharded.Stats()
	if st.Bytes < 0 || st.Bytes > st.MaxBytes {
		t.Fatalf("resident bytes %d outside [0, %d]", st.Bytes, st.MaxBytes)
	}
	var sum int64
	for i, sh := range st.Shards {
		sum += sh.Bytes
		if sh.Bytes < 0 || sh.Bytes > sh.MaxBytes {
			t.Errorf("shard %d bytes %d outside [0, %d]", i, sh.Bytes, sh.MaxBytes)
		}
	}
	if sum != st.Bytes {
		t.Fatalf("per-shard bytes sum %d != aggregate %d", sum, st.Bytes)
	}
}

// TestShardSoakKillAndRestart replays the workload, throws the cache
// away (the "kill"), and rebuilds it over the same persist directory:
// the restarted cache's first epoch must reuse sealed caches at a
// strictly higher rate than a cold restart (which re-quantizes every
// answer), with outputs byte-identical throughout.
func TestShardSoakKillAndRestart(t *testing.T) {
	p := soakPipeline(t)
	reqs := soakStream(t, p)
	dir := t.TempDir()
	mk := func(dir string) *cocktail.SessionCache {
		return cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
			MaxBytes: 64 << 20, TTL: time.Minute, Shards: 4, PersistDir: dir})
	}

	first := mk(dir)
	firstRep, err := Replay(first, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if w := first.Stats().Persist.Writes; w == 0 {
		t.Fatalf("first life wrote no sealed artifacts: %+v", first.Stats().Persist)
	}

	warm := mk(dir) // second life, same directory
	if pl := warm.Stats().Persist.Preloaded; pl == 0 {
		t.Fatalf("warm restart preloaded nothing: %+v", warm.Stats().Persist)
	}
	warmRep, err := Replay(warm, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cold := mk(t.TempDir()) // control: fresh directory, same config
	coldRep, err := Replay(cold, reqs)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("first-epoch warm seal hit-rate: warm restart %.3f, cold restart %.3f",
		warmRep.Epochs[0].WarmSealHitRate(), coldRep.Epochs[0].WarmSealHitRate())
	if w, c := warmRep.Epochs[0].WarmSealHitRate(), coldRep.Epochs[0].WarmSealHitRate(); w <= c {
		t.Fatalf("warm restart's first-epoch seal hit-rate %.3f not strictly above cold %.3f", w, c)
	}
	for i := range reqs {
		if warmRep.Outputs[i] != firstRep.Outputs[i] || coldRep.Outputs[i] != firstRep.Outputs[i] {
			t.Fatalf("request %d outputs diverged across restarts", i)
		}
	}
}
