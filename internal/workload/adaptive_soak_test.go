package workload

import (
	"testing"
	"time"

	cocktail "repro"
)

// allPolicies is every admission policy the cache supports; differential
// tests iterate it so a future policy cannot dodge the invariants by
// not being listed.
var allPolicies = []cocktail.CachePolicy{
	cocktail.CachePolicyLRU,
	cocktail.CachePolicy2Q,
	cocktail.CachePolicyA1,
	cocktail.CachePolicyAdaptive,
}

// phaseCache builds the cache under test for the phase soaks: a budget
// that holds the full warm working set (so the reuse epochs are
// cacheable) but drowns under the scan flood, with every policy knob
// pinned so the soak is reproducible.
func phaseCache(p *cocktail.Pipeline, policy cocktail.CachePolicy) *cocktail.SessionCache {
	return cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes:     2 << 19, // 1 MiB
		TTL:          time.Minute,
		Policy:       policy,
		GhostEntries: 512,
		ProbationPct: 20,
		AdaptWindow:  16,
	})
}

// TestDifferentialPoliciesByteIdentical is the admission-is-correctness-
// neutral property test: one seeded workload replayed through every
// policy must produce answers byte-identical to the uncached path and to
// each other — an admission decision may only ever change *when* work is
// recomputed, never its result.
func TestDifferentialPoliciesByteIdentical(t *testing.T) {
	p := phasePipeline(t)
	reqs, err := Generate(p, Options{
		Seed: 17, Requests: 48, Sessions: 3, ZipfS: 1.3, ScanFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Replay(p, reqs) // uncached ground truth
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range allPolicies {
		// A budget tight enough that every policy evicts, readmits and
		// (where it has one) churns its probation segment mid-stream.
		sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
			MaxBytes: 1 << 19, TTL: time.Minute, Policy: pol,
			GhostEntries: 64, ProbationPct: 25, AdaptWindow: 8})
		rep, err := Replay(sc, reqs)
		if err != nil {
			t.Fatalf("%v replay: %v", pol, err)
		}
		for i := range reqs {
			if rep.Outputs[i] != cold.Outputs[i] {
				t.Fatalf("policy %v request %d: output %q != uncached %q",
					pol, i, rep.Outputs[i], cold.Outputs[i])
			}
		}
		if st := sc.Stats(); st.Bytes < 0 || st.Bytes > st.MaxBytes {
			t.Fatalf("policy %v: resident bytes %d outside [0, %d]", pol, st.Bytes, st.MaxBytes)
		}
	}
}

// soakPhases is the acceptance stream: a scan flood over a small warm
// pool, then a reuse-heavy epoch that doubles the pool (a wave of fresh
// sessions), then an even scan/reuse mix.
func soakPhases() []Phase {
	return []Phase{
		{Name: "scan-flood", Requests: 120, ScanFraction: 0.85, Sessions: 4},
		{Name: "reuse-heavy", Requests: 80, ScanFraction: 0.05, Sessions: 8},
		{Name: "mixed", Requests: 120, ScanFraction: 0.5, Sessions: 8},
	}
}

// TestSoakPhaseShiftAdaptivity is the PR's acceptance proof: on a
// phase-shifting stream the adaptive policy must track the best static
// policy — per-epoch warm hit-rate within 10% (relative) of the best of
// lru/2q/a1 on *every* epoch — while every output stays byte-identical
// to the uncached path, the byte budget holds for every policy, and the
// controller demonstrably flips.
func TestSoakPhaseShiftAdaptivity(t *testing.T) {
	p := phasePipeline(t)
	phases := soakPhases()
	reqs, err := GeneratePhases(p, Options{Seed: 29, ZipfS: 1.3}, phases)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Replay(p, reqs) // uncached ground truth
	if err != nil {
		t.Fatal(err)
	}

	reports := map[cocktail.CachePolicy]*Report{}
	caches := map[cocktail.CachePolicy]*cocktail.SessionCache{}
	for _, pol := range allPolicies {
		sc := phaseCache(p, pol)
		rep, err := Replay(sc, reqs)
		if err != nil {
			t.Fatalf("%v replay: %v", pol, err)
		}
		reports[pol], caches[pol] = rep, sc
		for i := range reqs {
			if rep.Outputs[i] != cold.Outputs[i] {
				t.Fatalf("policy %v request %d: output diverged from uncached path", pol, i)
			}
		}
		if st := sc.Stats(); st.Bytes < 0 || st.Bytes > st.MaxBytes {
			t.Fatalf("policy %v: resident bytes %d outside [0, %d]", pol, st.Bytes, st.MaxBytes)
		}
	}

	statics := []cocktail.CachePolicy{
		cocktail.CachePolicyLRU, cocktail.CachePolicy2Q, cocktail.CachePolicyA1}
	adaptive := reports[cocktail.CachePolicyAdaptive]
	for e, ph := range phases {
		best, bestPol := 0.0, cocktail.CachePolicyLRU
		for _, pol := range statics {
			if r := reports[pol].Epochs[e].WarmHitRate(); r > best {
				best, bestPol = r, pol
			}
		}
		got := adaptive.Epochs[e].WarmHitRate()
		t.Logf("epoch %d %-11s lru=%.3f 2q=%.3f a1=%.3f adaptive=%.3f (best static %v=%.3f)",
			e, ph.Name,
			reports[cocktail.CachePolicyLRU].Epochs[e].WarmHitRate(),
			reports[cocktail.CachePolicy2Q].Epochs[e].WarmHitRate(),
			reports[cocktail.CachePolicyA1].Epochs[e].WarmHitRate(),
			got, bestPol, best)
		if got < 0.9*best {
			t.Errorf("epoch %d (%s): adaptive warm hit-rate %.3f below 90%% of best static %.3f (%v)",
				e, ph.Name, got, best, bestPol)
		}
	}

	// The stream must actually stress the policies: LRU has to lose the
	// scan-flood epoch badly enough that a static choice matters…
	if lru, twoQ := reports[cocktail.CachePolicyLRU].Epochs[0].WarmHitRate(),
		reports[cocktail.CachePolicy2Q].Epochs[0].WarmHitRate(); twoQ < 1.5*lru {
		t.Errorf("scan epoch does not separate 2q (%.3f) from lru (%.3f) — stream too easy", twoQ, lru)
	}
	// …and the controller must have moved rather than ridden one mode.
	adm := caches[cocktail.CachePolicyAdaptive].Stats().Admission
	t.Logf("adaptive admission: %+v", adm)
	if adm.PolicyFlips == 0 {
		t.Error("adaptive controller never flipped on a phase-shifting stream")
	}
	// The A1 probation segment must have been exercised: first sightings
	// trialled (occupancy or promotions) rather than ghost-rejected.
	a1adm := caches[cocktail.CachePolicyA1].Stats().Admission
	t.Logf("a1 admission: %+v", a1adm)
	if a1adm.SegmentPromotions == 0 {
		t.Error("a1 probation segment never promoted a re-referenced entry")
	}
}
