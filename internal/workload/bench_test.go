package workload

import (
	"testing"
	"time"

	cocktail "repro"
)

// BenchmarkPrefixCacheUnderScan replays the soak workload against each
// admission policy and reports the warm hit-rate and mean per-request
// latency — the observable cost of LRU's scan flush and 2Q's fix. Run
// with:
//
//	go test -bench PrefixCacheUnderScan ./internal/workload -benchtime 1x
func BenchmarkPrefixCacheUnderScan(b *testing.B) {
	p := soakPipeline(b)
	reqs := soakStream(b, p)
	for _, pol := range allPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
					MaxBytes: soakBudget, TTL: time.Minute, Policy: pol, GhostEntries: 256,
					ProbationPct: 20, AdaptWindow: 16})
				rep, err := Replay(sc, reqs)
				if err != nil {
					b.Fatal(err)
				}
				hitRate = rep.WarmHitRate()
			}
			b.ReportMetric(hitRate, "warm-hit-rate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
		})
	}
}

// BenchmarkMixedKindWorkload replays the seal-heavy mixed-kind stream
// (high PlanChurn: many sealed plans per context) against the A1 cache
// with the shared budget versus the per-kind split, reporting prefill
// and sealed warm hit-rates — the observable value of dedicating a
// sub-budget to cheap seal trials. Run with:
//
//	go test -bench MixedKindWorkload ./internal/workload -benchtime 1x
func BenchmarkMixedKindWorkload(b *testing.B) {
	p := phasePipeline(b)
	reqs := sealHeavyStream(b, p)
	for _, cfg := range []struct {
		name      string
		sealedPct float64
	}{{"shared", 0}, {"split-45", 45}} {
		b.Run(cfg.name, func(b *testing.B) {
			var warm, seal float64
			for i := 0; i < b.N; i++ {
				rep, err := Replay(kindSoakCache(p, cfg.sealedPct), reqs)
				if err != nil {
					b.Fatal(err)
				}
				warm, seal = rep.WarmHitRate(), rep.WarmSealHitRate()
			}
			b.ReportMetric(warm, "warm-hit-rate")
			b.ReportMetric(seal, "sealed-warm-hit-rate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
		})
	}
}
