package workload

import (
	"testing"
	"time"

	cocktail "repro"
	"repro/internal/httpapi"
	"repro/internal/serving"
)

// BenchmarkPrefixCacheUnderScan replays the soak workload against each
// admission policy and reports the warm hit-rate and mean per-request
// latency — the observable cost of LRU's scan flush and 2Q's fix. Run
// with:
//
//	go test -bench PrefixCacheUnderScan ./internal/workload -benchtime 1x
func BenchmarkPrefixCacheUnderScan(b *testing.B) {
	p := soakPipeline(b)
	reqs := soakStream(b, p)
	for _, pol := range allPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
					MaxBytes: soakBudget, TTL: time.Minute, Policy: pol, GhostEntries: 256,
					ProbationPct: 20, AdaptWindow: 16})
				rep, err := Replay(sc, reqs)
				if err != nil {
					b.Fatal(err)
				}
				hitRate = rep.WarmHitRate()
			}
			b.ReportMetric(hitRate, "warm-hit-rate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
		})
	}
}

// BenchmarkStreamTTFT measures streamed time-to-first-token through the
// live server, next to the full request latency. ttft-ms is the number
// the SSE path exists to minimize — the first token leaves at the first
// decode-step boundary instead of after the whole answer — and the
// regression gate tracks it across PR snapshots. (On this simulated
// substrate prefill dominates decode, so the two figures sit close;
// the split keeps them separately observable as that ratio moves.) The
// cache is disabled so every iteration pays the identical cold path.
// Run with:
//
//	go test -bench StreamTTFT ./internal/workload -benchtime 1x
func BenchmarkStreamTTFT(b *testing.B) {
	p := soakPipeline(b)
	reqs, err := Generate(p, Options{Seed: 7, Requests: 4, Sessions: 2, ZipfS: 1.3})
	if err != nil {
		b.Fatal(err)
	}
	_, ts := liveServer(b, p, httpapi.Options{Workers: 1, QueueDepth: 16, SessionCacheMB: -1})
	client := ts.Client()
	var ttft, lat float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ReplayHTTPStream(client, ts.URL, reqs, 1)
		if err != nil {
			b.Fatal(err)
		}
		ttft, _ = serving.LatencySummary(rep.TTFTs)
		lat = rep.MeanLatency
	}
	b.ReportMetric(ttft*1e3, "ttft-ms")
	b.ReportMetric(lat*1e3, "latency-ms")
}

// BenchmarkCostAdmission replays the heterogeneous-cost two-tenant
// stream through the live server with the cost gate off versus armed
// (generous budget: every request admitted, every request priced), so
// the per-request cost of pricing + drain accounting is the measured
// difference. admit-rate is deterministic — the generous budget must
// admit everything — and gates even at smoke benchtime. Run with:
//
//	go test -bench CostAdmission ./internal/workload -benchtime 1x
func BenchmarkCostAdmission(b *testing.B) {
	p := soakPipeline(b)
	reqs, err := Generate(p, Options{
		Seed: 23, Requests: 32, Sessions: 4, ZipfS: 1.3, ScanFraction: 0.3,
		LongFraction: 0.5, Tenants: []string{"acme", "globex"}})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		budgetMs int
	}{{"off", 0}, {"armed", 10_000_000}} {
		b.Run(mode.name, func(b *testing.B) {
			srv, ts := liveServer(b, p, httpapi.Options{
				Workers: 2, QueueDepth: 64, SessionCacheMB: -1,
				CostBudgetMs: mode.budgetMs,
			})
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReplayHTTPTenants(client, ts.URL, "", reqs, 4); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
			if mode.budgetMs > 0 {
				adm := srv.Snapshot().Scheduling.Admission
				b.ReportMetric(float64(adm.Admitted)/float64(adm.Admitted+adm.Shed), "admit-rate")
			}
		})
	}
}

// BenchmarkTenantFairness replays an alternating cheap/dear two-tenant
// stream through a FIFO server and a per-tenant DRR server, reporting
// req/s — the throughput cost of metered dispatch, which the regression
// gate holds near parity. served-balance-rate (min/max per-tenant served
// count, deterministic 1.0 on the alternating stream) gates the DRR
// accounting even at smoke benchtime. Run with:
//
//	go test -bench TenantFairness ./internal/workload -benchtime 1x
func BenchmarkTenantFairness(b *testing.B) {
	p := soakPipeline(b)
	short, err := p.NewSample("Qasper", 5)
	if err != nil {
		b.Fatal(err)
	}
	ext, err := p.NewSample("Qasper", 6)
	if err != nil {
		b.Fatal(err)
	}
	long := extendContext(short.Context, ext.Context, p.Config().MaxSeq)
	const n = 24
	reqs := make([]Request, 0, n)
	for i := 0; i < n/2; i++ {
		reqs = append(reqs,
			Request{Session: 0, Context: short.Context, Query: short.Query, Tenant: "cheap"},
			Request{Session: 1, Context: long, Query: short.Query, Tenant: "dear", Long: true})
	}
	for _, mode := range []struct {
		name, header string
	}{{"fifo", ""}, {"drr", "X-Tenant"}} {
		b.Run(mode.name, func(b *testing.B) {
			srv, ts := liveServer(b, p, httpapi.Options{
				Workers: 1, QueueDepth: 2 * n,
				SessionCacheMB: 8, SessionTTL: time.Minute,
				BatchMax: 2, BatchWindow: 2 * time.Millisecond,
				TenantHeader: mode.header,
			})
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReplayHTTPTenants(client, ts.URL, mode.header, reqs, 8); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*n)/secs, "req/s")
			}
			if mode.header != "" {
				var lo, hi int64
				for _, ten := range srv.Snapshot().Scheduling.Tenants {
					if lo == 0 || ten.Served < lo {
						lo = ten.Served
					}
					if ten.Served > hi {
						hi = ten.Served
					}
				}
				if hi > 0 {
					b.ReportMetric(float64(lo)/float64(hi), "served-balance-rate")
				}
			}
		})
	}
}

// BenchmarkMixedKindWorkload replays the seal-heavy mixed-kind stream
// (high PlanChurn: many sealed plans per context) against the A1 cache
// with the shared budget versus the per-kind split, reporting prefill
// and sealed warm hit-rates — the observable value of dedicating a
// sub-budget to cheap seal trials. Run with:
//
//	go test -bench MixedKindWorkload ./internal/workload -benchtime 1x
func BenchmarkMixedKindWorkload(b *testing.B) {
	p := phasePipeline(b)
	reqs := sealHeavyStream(b, p)
	for _, cfg := range []struct {
		name      string
		sealedPct float64
	}{{"shared", 0}, {"split-45", 45}} {
		b.Run(cfg.name, func(b *testing.B) {
			var warm, seal float64
			for i := 0; i < b.N; i++ {
				rep, err := Replay(kindSoakCache(p, cfg.sealedPct), reqs)
				if err != nil {
					b.Fatal(err)
				}
				warm, seal = rep.WarmHitRate(), rep.WarmSealHitRate()
			}
			b.ReportMetric(warm, "warm-hit-rate")
			b.ReportMetric(seal, "sealed-warm-hit-rate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
		})
	}
}
