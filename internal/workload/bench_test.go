package workload

import (
	"testing"
	"time"

	cocktail "repro"
)

// BenchmarkPrefixCacheUnderScan replays the soak workload against each
// admission policy and reports the warm hit-rate and mean per-request
// latency — the observable cost of LRU's scan flush and 2Q's fix. Run
// with:
//
//	go test -bench PrefixCacheUnderScan ./internal/workload -benchtime 1x
func BenchmarkPrefixCacheUnderScan(b *testing.B) {
	p := soakPipeline(b)
	reqs := soakStream(b, p)
	for _, pol := range allPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
					MaxBytes: soakBudget, TTL: time.Minute, Policy: pol, GhostEntries: 256,
					ProbationPct: 20, AdaptWindow: 16})
				rep, err := Replay(sc, reqs)
				if err != nil {
					b.Fatal(err)
				}
				hitRate = rep.WarmHitRate()
			}
			b.ReportMetric(hitRate, "warm-hit-rate")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(reqs))/1e6, "ms/req")
		})
	}
}
