package workload

// Generator proofs for the tenant and context-length-tier lanes: the
// knobs live on dedicated RNG streams, so switching them on relabels
// (or lengthens) requests without perturbing the interleaving the
// pinned-seed soaks depend on — and switching them off reproduces the
// historical stream byte-for-byte.

import (
	"reflect"
	"testing"
)

// stripLanes erases the tenant/tier lane outputs so a labeled stream can
// be compared structurally against its plain twin.
func stripLanes(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	for i := range out {
		out[i].Tenant, out[i].Long = "", false
	}
	return out
}

// TestTenantLaneIsolated: the tenant lane labels requests without
// touching anything else — same seed with and without Tenants yields
// streams identical except the Tenant field.
func TestTenantLaneIsolated(t *testing.T) {
	p := soakPipeline(t)
	opts := Options{Seed: 11, Requests: 48, Sessions: 4, ScanFraction: 0.4}
	plain, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Tenants = []string{"acme", "globex"}
	labeled, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, stripLanes(labeled)) {
		t.Fatal("tenant lane perturbed the request stream")
	}
	seen := map[string]int{}
	for i, r := range labeled {
		if r.Tenant != "acme" && r.Tenant != "globex" {
			t.Fatalf("request %d: tenant %q not drawn from Options.Tenants", i, r.Tenant)
		}
		seen[r.Tenant]++
	}
	if seen["acme"] == 0 || seen["globex"] == 0 {
		t.Fatalf("uniform draw over 48 requests missed a tenant: %v", seen)
	}
	// Determinism: same options, byte-identical labels.
	again, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(labeled, again) {
		t.Fatal("tenant assignment not deterministic for a fixed seed")
	}
	// Zero-value knobs leave every request unlabeled.
	for i, r := range plain {
		if r.Tenant != "" || r.Long {
			t.Fatalf("request %d of a plain stream carries lane output: %+v", i, r)
		}
	}
}

// TestLongTierLane: LongFraction marks a deterministic subset of
// requests long and extends exactly their contexts — toward twice the
// base length, under the sequence bound — while the stream's session
// interleaving, queries and every short context stay untouched.
func TestLongTierLane(t *testing.T) {
	p := soakPipeline(t)
	opts := Options{Seed: 11, Requests: 48, Sessions: 4, ScanFraction: 0.4}
	plain, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.LongFraction = 0.5
	tiered, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	maxSeq := p.Config().MaxSeq
	longs := 0
	for i, r := range tiered {
		pr := plain[i]
		if r.Session != pr.Session || r.Epoch != pr.Epoch || !reflect.DeepEqual(r.Query, pr.Query) {
			t.Fatalf("request %d: tier lane perturbed the interleaving", i)
		}
		if !r.Long {
			if !reflect.DeepEqual(r.Context, pr.Context) {
				t.Fatalf("request %d: short-tier context changed", i)
			}
			continue
		}
		longs++
		if len(r.Context) <= len(pr.Context) {
			t.Fatalf("request %d: long-tier context not extended (%d <= %d)",
				i, len(r.Context), len(pr.Context))
		}
		if len(r.Context) > maxSeq-appendHeadroom {
			t.Fatalf("request %d: long context %d words breaches the bound %d",
				i, len(r.Context), maxSeq-appendHeadroom)
		}
		if !reflect.DeepEqual(r.Context[:len(pr.Context)], pr.Context) {
			t.Fatalf("request %d: extension rewrote the base context", i)
		}
	}
	if longs == 0 {
		t.Fatal("LongFraction 0.5 produced no long requests over 48 draws")
	}
	// A long warm session is long on every sighting (the tier is a
	// session property, not a per-request coin).
	tier := map[int]bool{}
	for i, r := range tiered {
		if r.IsScan() {
			continue
		}
		if prev, ok := tier[r.Session]; ok && prev != r.Long {
			t.Fatalf("request %d: session %d changed tier mid-stream", i, r.Session)
		}
		tier[r.Session] = r.Long
	}
	// Determinism of the tier lane.
	again, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tiered, again) {
		t.Fatal("tier assignment not deterministic for a fixed seed")
	}
}

// TestLaneKnobValidation: malformed lane knobs are rejected, not
// clamped.
func TestLaneKnobValidation(t *testing.T) {
	p := soakPipeline(t)
	if _, err := Generate(p, Options{Seed: 1, Requests: 4, Tenants: []string{"acme", ""}}); err == nil {
		t.Fatal("empty tenant label must be rejected")
	}
	if _, err := Generate(p, Options{Seed: 1, Requests: 4, LongFraction: 1.5}); err == nil {
		t.Fatal("LongFraction > 1 must be rejected")
	}
}
