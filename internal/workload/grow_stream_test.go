package workload

// Streaming and growing-conversation proofs: the SSE differential soak
// (streamed replay vs buffered replay vs uncached cold truth, across
// every cache policy and batch mode), the growing-conversation soak
// (incremental Session.Append replay vs stateless full-context replay),
// and the generator-level contracts of the append lane.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	cocktail "repro"
	"repro/internal/httpapi"
)

// TestStreamingDifferentialSoak is the streaming PR's byte-identity
// proof: one seeded scan-heavy stream consumed over SSE — every cache
// policy × batch-max ∈ {1, 8} — must concatenate to the same bytes as
// the buffered replay and the uncached cold path, leave the server's
// cache counters exactly where the in-process serial replay leaves them
// (streaming must not perturb a single store operation), and record a
// plausible TTFT for every request.
func TestStreamingDifferentialSoak(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{
		Seed: 7, Requests: 40, Sessions: 4, ZipfS: 1.3, ScanFraction: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	truth := coldTruth(t, p, reqs)

	policies := []cocktail.CachePolicy{
		cocktail.CachePolicyLRU, cocktail.CachePolicy2Q,
		cocktail.CachePolicyA1, cocktail.CachePolicyAdaptive,
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			// The in-process serial replay fixes the expected store
			// counters for this policy.
			sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
				MaxBytes: 1 << 20, TTL: time.Minute, Policy: pol, GhostEntries: 256})
			if _, err := Replay(sc, reqs); err != nil {
				t.Fatal(err)
			}
			want := sc.Stats()

			for _, mode := range []struct {
				name     string
				batchMax int
			}{{"batch-1", 1}, {"batch-8", 8}} {
				_, ts := liveServer(t, p, httpapi.Options{
					Workers: 1, QueueDepth: 64,
					SessionCacheMB: 1, SessionTTL: time.Minute, GhostEntries: 256,
					CachePolicy: pol,
					BatchMax:    mode.batchMax, BatchWindow: -1,
					CacheShards: -1, // single-mutex store: counters are deep-equaled below
				})
				srv := ts.Client()
				stream, err := ReplayHTTPStream(srv, ts.URL, reqs, 1)
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				buffered, err := ReplayHTTP(srv, ts.URL, reqs, 1)
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				for i := range reqs {
					if stream.Outputs[i] != truth[i] {
						t.Fatalf("%s request %d: streamed %q != uncached %q",
							mode.name, i, stream.Outputs[i], truth[i])
					}
					if stream.Outputs[i] != buffered.Outputs[i] {
						t.Fatalf("%s request %d: streamed %q != buffered %q",
							mode.name, i, stream.Outputs[i], buffered.Outputs[i])
					}
				}
				if len(stream.TTFTs) != len(reqs) {
					t.Fatalf("%s: %d TTFT samples for %d requests", mode.name, len(stream.TTFTs), len(reqs))
				}
				for i, ttft := range stream.TTFTs {
					if ttft <= 0 || ttft > stream.Latencies[i] {
						t.Fatalf("%s request %d: TTFT %v outside (0, latency %v]",
							mode.name, i, ttft, stream.Latencies[i])
					}
				}
			}

			// A second streamed pass against a fresh server reproduces the
			// in-process counters exactly: the streamed replay issues the
			// same store-operation sequence as the serial one.
			srvHandle, ts := liveServer(t, p, httpapi.Options{
				Workers: 1, QueueDepth: 64,
				SessionCacheMB: 1, SessionTTL: time.Minute, GhostEntries: 256,
				CachePolicy: pol, BatchMax: 8, BatchWindow: -1, CacheShards: -1,
			})
			if _, err := ReplayHTTPStream(ts.Client(), ts.URL, reqs, 1); err != nil {
				t.Fatal(err)
			}
			if got := srvHandle.Snapshot().SessionCache.CacheStats; !reflect.DeepEqual(got, want) {
				t.Errorf("streamed replay perturbed the cache counters:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// growStream is the shared growing-conversation workload: a calm
// warm-up epoch (no growth) followed by an append-heavy epoch, over one
// warm pool — the phase-level AppendFraction override in action.
func growStream(t testing.TB, p *cocktail.Pipeline) []Request {
	t.Helper()
	reqs, err := GeneratePhases(p, Options{
		Seed: 11, Sessions: 3, ZipfS: 1.3, AppendFraction: 0.4}, []Phase{
		{Name: "warmup", Requests: 12, ScanFraction: 0.25, AppendFraction: 0},
		{Name: "growing", Requests: 48, ScanFraction: 0.25, AppendFraction: -1}, // inherit 0.4
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestGrowingConversationSoak is the append PR's differential proof: a
// phase-shifting growing-conversation stream replayed (a) stateless —
// every request re-prefills its full grown context — and (b)
// incrementally via ReplayGrowing, where live sessions grow in place
// through Session.Append, must produce byte-identical outputs to each
// other and to the uncached cold path. The incremental replay must have
// actually appended (else the test proves nothing), and a hot-context
// stream must keep its warm hit-rate at 1 — growth does not cost the
// session its retained KV.
func TestGrowingConversationSoak(t *testing.T) {
	p := gainPipeline(t) // MaxSeq 1024: room for several chunks of growth
	reqs := growStream(t, p)
	grown := 0
	for _, r := range reqs {
		if len(r.Append) > 0 {
			grown++
		}
	}
	if grown < 5 {
		t.Fatalf("stream carries only %d append events — not a growing workload", grown)
	}
	truth := coldTruth(t, p, reqs)

	stateless := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes: 64 << 20, TTL: time.Minute})
	flat, err := Replay(stateless, reqs)
	if err != nil {
		t.Fatal(err)
	}
	incremental := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
		MaxBytes: 64 << 20, TTL: time.Minute})
	growing, err := ReplayGrowing(incremental, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if growing.Outputs[i] != truth[i] {
			t.Fatalf("request %d: growing output %q != uncached %q", i, growing.Outputs[i], truth[i])
		}
		if growing.Outputs[i] != flat.Outputs[i] {
			t.Fatalf("request %d: growing output %q != stateless %q", i, growing.Outputs[i], flat.Outputs[i])
		}
	}
	if growing.Appends != grown {
		t.Fatalf("replay performed %d appends, stream carries %d", growing.Appends, grown)
	}
	if flat.Appends != 0 {
		t.Fatalf("stateless replay reported %d appends", flat.Appends)
	}
	// Counter semantics are exact on a serial replay: every warm request
	// is a hit except the first sighting of each session and the append
	// events, which record the store-facing CachedPrefill of the
	// operation they ran — a miss here, since every grown context is new
	// to this store.
	sessions := map[int]bool{}
	for _, r := range reqs {
		if !r.IsScan() {
			sessions[r.Session] = true
		}
	}
	if want := growing.Warm - growing.Appends - len(sessions); growing.WarmPrefillHits != want {
		t.Fatalf("warm prefill hits %d, want %d (%d warm - %d appends - %d first sightings)",
			growing.WarmPrefillHits, want, growing.Warm, growing.Appends, len(sessions))
	}
	// The per-epoch split must carry the phase structure: no appends can
	// land in the no-growth warm-up epoch.
	for _, r := range reqs {
		if r.Epoch == 0 && len(r.Append) > 0 {
			t.Fatal("append event in the AppendFraction=0 warm-up epoch")
		}
	}
	t.Logf("growing soak: %d requests, %d appends, warm hit-rate %.3f (stateless %.3f)",
		growing.Requests, growing.Appends, growing.WarmHitRate(), flat.WarmHitRate())

	// The storeless spelling works too: ReplayGrowing over the bare
	// pipeline (no cache) still matches truth.
	bare, err := ReplayGrowing(p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if bare.Outputs[i] != truth[i] {
			t.Fatalf("request %d: storeless growing output diverged", i)
		}
	}
}

// TestGenerateAppendLane pins the generator-level append contracts:
// growth is cumulative (each Append chunk is exactly the new suffix of
// the session's Context), deterministic for a fixed seed, never present
// on scans, bounded before the sequence limit, and entirely absent when
// AppendFraction is 0.
func TestGenerateAppendLane(t *testing.T) {
	p := soakPipeline(t) // MaxSeq 512: growth must stop after ~2 chunks
	opts := Options{
		Seed: 9, Requests: 64, Sessions: 2, ZipfS: 1.5,
		ScanFraction: 0.2, AppendFraction: 1}
	a, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("growing stream not deterministic for a fixed seed")
	}

	maxSeq := p.Config().MaxSeq
	prev := map[int][]string{}
	appends := 0
	for i, r := range a {
		if r.IsScan() {
			if r.Append != nil {
				t.Fatalf("request %d: scan carries an append chunk", i)
			}
			continue
		}
		if len(r.Append) > 0 {
			appends++
			if len(r.Append) > appendChunkWords {
				t.Fatalf("request %d: chunk of %d words exceeds %d", i, len(r.Append), appendChunkWords)
			}
			if old, ok := prev[r.Session]; ok {
				want := append(append([]string{}, old...), r.Append...)
				if !reflect.DeepEqual(r.Context, want) {
					t.Fatalf("request %d: Context is not previous context + chunk", i)
				}
			}
		} else if old, ok := prev[r.Session]; ok && !reflect.DeepEqual(r.Context, old) {
			t.Fatalf("request %d: context changed without an append chunk", i)
		}
		// Every generated request stays answerable: context + query +
		// decode budget within the sequence bound.
		if len(r.Context)+len(r.Query)+128 > maxSeq {
			t.Fatalf("request %d: %d-token request overflows MaxSeq %d",
				i, len(r.Context)+len(r.Query)+128, maxSeq)
		}
		prev[r.Session] = r.Context
	}
	// AppendFraction 1 on a tight MaxSeq: sessions must grow, then stop
	// at the headroom margin rather than overflow.
	if appends == 0 {
		t.Fatal("AppendFraction=1 stream never grew")
	}
	for s, ctx := range prev {
		if len(ctx)+appendChunkWords+appendHeadroom <= maxSeq {
			t.Fatalf("session %d stopped growing at %d tokens with margin to spare", s, len(ctx))
		}
	}

	// AppendFraction 0 leaves the stream append-free with pristine
	// contexts (the RNG-stream pin has its own test).
	opts.AppendFraction = 0
	flat, err := Generate(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range flat {
		if r.Append != nil {
			t.Fatalf("request %d: append chunk in an AppendFraction=0 stream", i)
		}
	}
}

// TestReplayHTTPStreamErrorPaths: the SSE consumer must fail loudly on
// protocol violations, not vacuously pass — here, a server that streams
// an error event.
func TestReplayHTTPStreamErrorPaths(t *testing.T) {
	p := soakPipeline(t)
	_, ts := liveServer(t, p, httpapi.Options{Workers: 1, QueueDepth: 8})
	bad := []Request{{Session: ScanSession, Context: []string{"zzz-not-in-vocabulary"}, Query: []string{"zzz"}}}
	if _, err := ReplayHTTPStream(ts.Client(), ts.URL, bad, 1); err == nil ||
		!strings.Contains(err.Error(), "error event") {
		t.Fatalf("streamed replay of a failing request: err = %v, want error-event failure", err)
	}
}
