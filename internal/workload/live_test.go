package workload

// Live-surface proofs for continuous batching: the differential soak
// (batched vs serial vs uncached across every cache policy), the
// sim-vs-live trace replay cross-validation, and the throughput-gain
// acceptance test plus its benchmark. These drive the real HTTP server
// (internal/httpapi) through the ReplayHTTP/ReplayTrace harness in
// live.go.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	cocktail "repro"
	"repro/internal/httpapi"
	"repro/internal/hwmodel"
	"repro/internal/serving"
)

// liveServer spins up the HTTP API over p, torn down via t.Cleanup. The
// *httpapi.Server handle is returned alongside so tests can snapshot
// metrics without going through the JSON endpoint.
func liveServer(t testing.TB, p *cocktail.Pipeline, opts httpapi.Options) (*httpapi.Server, *httptest.Server) {
	t.Helper()
	srv := httpapi.NewServer(p, opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

// coldTruth answers every distinct (context, query) pair of the stream
// on the bare pipeline and returns outputs index-aligned with reqs — the
// uncached ground truth every replay mode must reproduce byte-for-byte.
func coldTruth(t testing.TB, p *cocktail.Pipeline, reqs []Request) []string {
	t.Helper()
	byPair := map[string]string{}
	outs := make([]string, len(reqs))
	for i, r := range reqs {
		key := strings.Join(r.Context, "\x00") + "\x01" + strings.Join(r.Query, "\x00")
		out, ok := byPair[key]
		if !ok {
			res, err := p.Answer(r.Context, r.Query)
			if err != nil {
				t.Fatalf("cold answer %d: %v", i, err)
			}
			out = strings.Join(res.Answer, " ")
			byPair[key] = out
		}
		outs[i] = out
	}
	return outs
}

// TestLiveDifferentialSoak is the batching PR's byte-identity proof: one
// seeded scan-heavy stream replayed (a) serially in process against each
// cache policy, (b) through the HTTP server with batching disabled, and
// (c) through the HTTP server with batching enabled — for all four
// policies — must produce byte-identical outputs everywhere, identical
// store counters between the in-process and both server modes (so warm
// hit-rates are provably unchanged by batching), and byte budgets
// honored throughout. A final concurrent replay against the batched
// server proves the identity holds when coalescing actually happens.
func TestLiveDifferentialSoak(t *testing.T) {
	p := soakPipeline(t)
	reqs, err := Generate(p, Options{
		Seed: 7, Requests: 80, Sessions: 4, ZipfS: 1.3, ScanFraction: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	truth := coldTruth(t, p, reqs)

	// One MiB mirrors soakBudget: the warm working set fits, the scan
	// flood does not, so admission policy decisions are load-bearing.
	cacheOpts := func(pol cocktail.CachePolicy, batchMax int) httpapi.Options {
		return httpapi.Options{
			Workers: 1, QueueDepth: 64,
			SessionCacheMB: 1, SessionTTL: time.Minute, GhostEntries: 256,
			CachePolicy: pol,
			BatchMax:    batchMax, BatchWindow: -1,
			// Pin the single-mutex store: this test deep-equals the live
			// server's CacheStats against an in-process 1-shard cache, and
			// the server's shard default follows NumCPU. Sharded-vs-single
			// equivalence has its own differential soak (shard_soak_test).
			CacheShards: -1,
		}
	}

	policies := []cocktail.CachePolicy{
		cocktail.CachePolicyLRU, cocktail.CachePolicy2Q,
		cocktail.CachePolicyA1, cocktail.CachePolicyAdaptive,
	}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			sc := cocktail.NewSessionCache(p, cocktail.SessionCacheOptions{
				MaxBytes: 1 << 20, TTL: time.Minute, Policy: pol, GhostEntries: 256})
			serial, err := Replay(sc, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range reqs {
				if serial.Outputs[i] != truth[i] {
					t.Fatalf("request %d: serial cached output %q != uncached %q", i, serial.Outputs[i], truth[i])
				}
			}
			want := sc.Stats()
			t.Logf("serial: warm hit-rate %.3f, stats %+v", serial.WarmHitRate(), want)

			for _, mode := range []struct {
				name     string
				batchMax int
			}{{"unbatched", -1}, {"batched", 8}} {
				srv, ts := liveServer(t, p, cacheOpts(pol, mode.batchMax))
				live, err := ReplayHTTP(ts.Client(), ts.URL, reqs, 1)
				if err != nil {
					t.Fatal(err)
				}
				for i := range reqs {
					if live.Outputs[i] != truth[i] {
						t.Fatalf("%s request %d: output %q != uncached %q", mode.name, i, live.Outputs[i], truth[i])
					}
				}
				m := srv.Snapshot()
				// Serial-order replay issues the exact store-operation
				// sequence of the in-process run — batch-of-1 included —
				// so every counter (hits, misses, admission decisions,
				// bytes) must match, not merely approximate. This is the
				// "warm hit-rates unchanged by batching" proof: equal
				// counters imply equal rates.
				if got := m.SessionCache.CacheStats; !reflect.DeepEqual(got, want) {
					t.Errorf("%s: server cache stats diverge from in-process replay:\n got %+v\nwant %+v", mode.name, got, want)
				}
				if st := m.SessionCache.CacheStats; st.Bytes < 0 || st.Bytes > st.MaxBytes {
					t.Errorf("%s: resident bytes %d outside [0, %d]", mode.name, st.Bytes, st.MaxBytes)
				}
				if wantEnabled := mode.batchMax > 1; m.Batching.Enabled != wantEnabled {
					t.Errorf("%s: batching enabled=%v, want %v", mode.name, m.Batching.Enabled, wantEnabled)
				}
				if mode.batchMax > 1 && m.Batching.BatchedRequests != int64(len(reqs)) {
					t.Errorf("%s: %d batched requests, want %d", mode.name, m.Batching.BatchedRequests, len(reqs))
				}
			}
		})
	}

	// Concurrent replay against the batched 2Q server: interleaving may
	// shuffle which request pays each miss, but every answer must still
	// be byte-identical to the cold run, the budget must hold, and the
	// batcher must have actually coalesced (otherwise this proves nothing).
	t.Run("2q/concurrent-batched", func(t *testing.T) {
		opts := cacheOpts(cocktail.CachePolicy2Q, 8)
		opts.BatchWindow = 2 * time.Millisecond
		srv, ts := liveServer(t, p, opts)
		live, err := ReplayHTTP(ts.Client(), ts.URL, reqs, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if live.Outputs[i] != truth[i] {
				t.Fatalf("request %d: concurrent batched output %q != uncached %q", i, live.Outputs[i], truth[i])
			}
		}
		m := srv.Snapshot()
		if st := m.SessionCache.CacheStats; st.Bytes < 0 || st.Bytes > st.MaxBytes {
			t.Errorf("budget violated under concurrent batching: %+v", st)
		}
		if m.Batching.BatchedRequests != int64(len(reqs)) {
			t.Errorf("%d batched requests, want %d", m.Batching.BatchedRequests, len(reqs))
		}
		if m.Batching.MaxBatch < 2 {
			t.Errorf("max batch %d — the concurrent replay never coalesced", m.Batching.MaxBatch)
		}
		t.Logf("concurrent batched: %+v", m.Batching)
	})
}

// simVsLiveCfg is the simulated server the live trend is checked
// against; MaxBatch matches the live server's BatchMax.
func simVsLiveCfg() serving.Config {
	return serving.Config{
		GPU: hwmodel.A800(), Model: hwmodel.Llama2_7B(),
		Profile: hwmodel.ProfileCocktail(32, nil), MaxBatch: 16,
	}
}

// liveServiceTime measures one request's solo latency against the
// server: the live analog of serving.ServiceTime, used to express
// arrival rates as multiples of single-stream capacity in both domains.
// Minimum of three runs, so a scheduler hiccup cannot inflate the unit.
func liveServiceTime(t *testing.T, client *http.Client, baseURL string, req Request) float64 {
	t.Helper()
	best := 0.0
	for i := 0; i < 3; i++ {
		rep, err := ReplayHTTP(client, baseURL, []Request{req}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if best == 0 || rep.MeanLatency < best {
			best = rep.MeanLatency
		}
	}
	return best
}

// TestSimVsLiveReplayTrend replays one serving.PoissonTrace shape
// through both the discrete-event simulator and the live batched server
// at three arrival rates — 0.5×, 4× and 16× each domain's own
// single-stream capacity (rates normalized per domain via
// serving.ServiceTime and a measured live solo latency, since absolute
// speeds differ by orders of magnitude) — and checks that the live
// trend matches the simulator's prediction: mean batch size and
// throughput both grow with pressure.
//
// Tolerance (documented deliberately): the simulator is deterministic,
// so its ordering is asserted strictly. The live side runs on a shared,
// possibly single-CPU host where two saturated rates are
// indistinguishable — once arrivals outpace service, the measured batch
// shape is set by scheduler interleaving of the replay goroutines
// against the worker, not by the arrival rate — so each rated run (k≥4)
// is compared against the near-idle baseline (k=0.5) instead of its
// neighbour: mean batch must exceed idle and throughput must beat idle
// by >10%. The live sweep is retried up to three times to reject
// scheduler-noise outliers; byte identity against the cold truth is
// asserted unconditionally on every attempt.
func TestSimVsLiveReplayTrend(t *testing.T) {
	p := soakPipeline(t)
	cfg := simVsLiveCfg()
	const ctxTok, outTok, n = 2000, 128, 16
	simUnit := serving.ServiceTime(cfg, ctxTok, outTok)
	if simUnit <= 0 {
		t.Fatalf("non-positive simulated service time %v", simUnit)
	}
	wopts := Options{Seed: 11, Sessions: 3}

	// Live unit: solo latency against a server of the same configuration
	// the rated runs use, minus the collect hold (window 0), so the unit
	// is pure service time.
	mkOpts := func(window time.Duration) httpapi.Options {
		return httpapi.Options{
			Workers: 1, QueueDepth: 64, SessionCacheMB: -1,
			BatchMax: 16, BatchWindow: window,
		}
	}
	probeTrace := serving.PoissonTrace(99, 1, 1, ctxTok, outTok)
	probeReqs, _, err := FromTrace(p, wopts, probeTrace)
	if err != nil {
		t.Fatal(err)
	}
	_, probeTS := liveServer(t, p, mkOpts(0))
	liveUnit := liveServiceTime(t, probeTS.Client(), probeTS.URL, probeReqs[0])
	// The collect window matters twice — it is the coalescing hold, and
	// it sizes the deadline budget (8×window ≈ several cold admissions)
	// under which this all-cold stream is allowed to batch at all (with
	// no window the budget is zero and every cold request runs solo by
	// design) — so it must scale with the measured service time: arrival
	// rates are normalized per domain, and a wall-clock-fixed window
	// would shrink the coalescing opportunity whenever instrumentation
	// (-race, ~10× slower) or machine load inflates the unit.
	window := time.Duration(liveUnit * float64(time.Second) / 2)
	if window < 5*time.Millisecond {
		window = 5 * time.Millisecond
	}
	t.Logf("service time: sim %.4fs, live %.4fs (window %v)", simUnit, liveUnit, window)

	multipliers := []float64{0.5, 4, 16}
	simMB := make([]float64, len(multipliers))
	simTput := make([]float64, len(multipliers))
	liveReqs := make([][]Request, len(multipliers))
	liveArrivals := make([][]float64, len(multipliers))
	truths := make([][]string, len(multipliers))
	for i, k := range multipliers {
		trace := serving.PoissonTrace(uint64(300+i), n, k/simUnit, ctxTok, outTok)
		st, err := serving.Simulate(cfg, trace)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed != n {
			t.Fatalf("k=%v: simulator completed %d of %d", k, st.Completed, n)
		}
		simMB[i], simTput[i] = st.MeanBatch, st.ThroughputTokS

		reqs, arrivals, err := FromTrace(p, wopts, trace)
		if err != nil {
			t.Fatal(err)
		}
		// The trace's arrival times are sim-seconds at k× sim capacity;
		// rescaling by liveUnit/simUnit plays the identical normalized
		// stream (same exponential draws) at k× live capacity.
		for j := range arrivals {
			arrivals[j] *= liveUnit / simUnit
		}
		liveReqs[i], liveArrivals[i] = reqs, arrivals
		truths[i] = coldTruth(t, p, reqs)
	}

	// Simulator prediction, asserted strictly (it is deterministic):
	// pressure grows batches and throughput.
	for i := 1; i < len(multipliers); i++ {
		if simMB[i] < simMB[i-1] {
			t.Errorf("sim mean batch not monotone: %v", simMB)
		}
		if simTput[i] < simTput[i-1] {
			t.Errorf("sim throughput not monotone: %v", simTput)
		}
	}
	if simMB[len(simMB)-1] <= simMB[0] {
		t.Errorf("sim predicts no batching growth (%v) — rates too gentle to test anything", simMB)
	}

	// Live trend agreement, within the documented tolerance: rated runs
	// must separate from the idle baseline, retried against scheduler
	// noise. Correctness (byte identity to the cold truth) is never
	// retried — it must hold on every replay.
	const attempts = 3
	var violations []string
	for attempt := 1; attempt <= attempts; attempt++ {
		liveMB := make([]float64, len(multipliers))
		liveTput := make([]float64, len(multipliers))
		for i, k := range multipliers {
			srv, ts := liveServer(t, p, mkOpts(window))
			rep, err := ReplayTrace(ts.Client(), ts.URL, liveReqs[i], liveArrivals[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range liveReqs[i] {
				if rep.Outputs[j] != truths[i][j] {
					t.Fatalf("k=%v request %d: output %q != cold %q", k, j, rep.Outputs[j], truths[i][j])
				}
			}
			m := srv.Snapshot()
			liveMB[i] = m.Batching.MeanBatch
			liveTput[i] = rep.ThroughputRPS
			t.Logf("k=%-4v sim: meanBatch %.2f tput %.1f tok/s | live: meanBatch %.2f tput %.2f req/s (batches %d, stepJoins %d)",
				k, simMB[i], simTput[i], liveMB[i], liveTput[i], m.Batching.Batches, m.Batching.StepJoins)
		}
		violations = violations[:0]
		for i := 1; i < len(multipliers); i++ {
			if liveMB[i] <= liveMB[0] {
				violations = append(violations, fmt.Sprintf(
					"k=%v mean batch %.2f did not exceed idle %.2f", multipliers[i], liveMB[i], liveMB[0]))
			}
			if liveTput[i] <= 1.1*liveTput[0] {
				violations = append(violations, fmt.Sprintf(
					"k=%v throughput %.2f not >1.1× idle %.2f", multipliers[i], liveTput[i], liveTput[0]))
			}
		}
		if len(violations) == 0 {
			return
		}
		t.Logf("attempt %d/%d: live trend off sim prediction: %v", attempt, attempts, violations)
	}
	t.Errorf("live trend never matched sim prediction (sim batches %v): %v", simMB, violations)
}

// saturatingWave builds a wave of n requests over the warm pool that all
// arrive at t=0 — the saturating open-loop load both the acceptance test
// and the benchmark replay.
func saturatingWave(t testing.TB, p *cocktail.Pipeline, n, sessions int) ([]Request, []float64) {
	t.Helper()
	trace := make([]serving.Request, n)
	for i := range trace {
		trace[i] = serving.Request{ID: i}
	}
	reqs, arrivals, err := FromTrace(p, Options{Seed: 13, Sessions: sessions}, trace)
	if err != nil {
		t.Fatal(err)
	}
	return reqs, arrivals
}

// gainPipeline uses full-length contexts (~512 tokens at MaxSeq 1024):
// prefill and quantization dominate decode there, which is exactly the
// regime continuous batching pays off in — the shared-prefill saving
// caps the batched speedup near 2.9× at this shape (measured), versus
// 2.0× at the soak pipeline's shorter contexts.
func gainPipeline(t testing.TB) *cocktail.Pipeline {
	t.Helper()
	p, err := cocktail.New(cocktail.Config{MaxSeq: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBatchedThroughputGain is the PR's throughput acceptance gate: at a
// saturating arrival rate (a whole wave at t=0) on the uncached server,
// batched /v1/answer must clear at least 1.5× the serial (batching
// disabled) throughput. The gain comes from within-batch work sharing:
// the wave spans two unique contexts, so a batch pays two prefills
// instead of sixteen. Both modes run Workers=1 on the same pipeline, so
// the ratio isolates the scheduler.
func TestBatchedThroughputGain(t *testing.T) {
	p := gainPipeline(t)
	const n, sessions = 24, 2
	reqs, arrivals := saturatingWave(t, p, n, sessions)
	truth := coldTruth(t, p, reqs)

	// The collect window scales with the measured solo service time so
	// the 8×window cold-join budget covers a handful of admissions
	// regardless of machine speed or instrumentation (-race inflates the
	// service time ~10×; a wall-clock-fixed window would expire the
	// budget before the all-cold wave could coalesce at all).
	_, probeTS := liveServer(t, p, httpapi.Options{
		Workers: 1, QueueDepth: n + 8, SessionCacheMB: -1, BatchMax: 1,
	})
	solo := liveServiceTime(t, probeTS.Client(), probeTS.URL, reqs[0])
	window := time.Duration(solo * float64(time.Second) / 2)
	if window < 15*time.Millisecond {
		window = 15 * time.Millisecond
	}
	t.Logf("solo service time %.4fs (window %v)", solo, window)

	run := func(batchMax int) (*LiveReport, httpapi.Metrics) {
		srv, ts := liveServer(t, p, httpapi.Options{
			Workers: 1, QueueDepth: n + 8, SessionCacheMB: -1,
			BatchMax: batchMax, BatchWindow: window,
		})
		rep, err := ReplayTrace(ts.Client(), ts.URL, reqs, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Outputs[i] != truth[i] {
				t.Fatalf("batchMax=%d request %d: output %q != cold %q", batchMax, i, rep.Outputs[i], truth[i])
			}
		}
		return rep, srv.Snapshot()
	}

	serial, _ := run(-1)
	batched, m := run(16)
	ratio := batched.ThroughputRPS / serial.ThroughputRPS
	t.Logf("serial %.2f req/s (p95 %.3fs) vs batched %.2f req/s (p95 %.3fs): %.2fx; %+v",
		serial.ThroughputRPS, serial.P95Latency, batched.ThroughputRPS, batched.P95Latency, ratio, m.Batching)
	if m.Batching.SharedPrefills == 0 {
		t.Error("batched run shared no prefills — the wave never coalesced")
	}
	if ratio < 1.5 {
		t.Errorf("batched throughput %.2f req/s is %.2fx serial %.2f req/s, below the 1.5x acceptance floor",
			batched.ThroughputRPS, ratio, serial.ThroughputRPS)
	}
}

// BenchmarkBatchedServeThroughput replays the saturating wave through
// the live server with batching off and on, reporting req/s — the
// figure the CI regression gate tracks across PR snapshots.
func BenchmarkBatchedServeThroughput(b *testing.B) {
	p := gainPipeline(b)
	const n, sessions = 24, 2
	reqs, arrivals := saturatingWave(b, p, n, sessions)
	for _, mode := range []struct {
		name     string
		batchMax int
	}{{"serial", -1}, {"batched", 16}} {
		b.Run(mode.name, func(b *testing.B) {
			srv := httpapi.NewServer(p, httpapi.Options{
				Workers: 1, QueueDepth: n + 8, SessionCacheMB: -1,
				BatchMax: mode.batchMax, BatchWindow: 15 * time.Millisecond,
			})
			defer srv.Close()
			ts := httptest.NewServer(srv)
			defer ts.Close()
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ReplayTrace(client, ts.URL, reqs, arrivals); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*n)/secs, "req/s")
			}
		})
	}
}

// TestLiveHarnessErrorPaths pins the harness's failure contract: replay
// surfaces transport/protocol failures as errors — never as silently
// empty outputs that a byte-identity assertion would then "pass" —
// and the trace mapper rejects malformed inputs.
func TestLiveHarnessErrorPaths(t *testing.T) {
	t.Parallel()
	reqs := []Request{{Context: []string{"alpha"}, Query: []string{"beta"}}}

	// A shedding (non-200) server fails both drive modes with the status
	// in the error: the harness sizes queue depth for the load it offers,
	// so a 503 means the test asked wrong and must not be swallowed.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer shed.Close()
	if _, err := ReplayHTTP(shed.Client(), shed.URL, reqs, 1); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Errorf("ReplayHTTP against shedding server: err=%v, want status 503", err)
	}
	if _, err := ReplayTrace(shed.Client(), shed.URL, reqs, []float64{0}); err == nil || !strings.Contains(err.Error(), "status 503") {
		t.Errorf("ReplayTrace against shedding server: err=%v, want status 503", err)
	}

	// A 200 with a non-JSON body is a decode error, not an empty answer.
	garbled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not json"))
	}))
	defer garbled.Close()
	if _, err := ReplayHTTP(garbled.Client(), garbled.URL, reqs, 1); err == nil {
		t.Error("ReplayHTTP accepted a non-JSON 200 body")
	}

	// Open-loop replay requires one arrival per request.
	if _, err := ReplayTrace(shed.Client(), shed.URL, reqs, []float64{0, 1}); err == nil || !strings.Contains(err.Error(), "arrivals") {
		t.Errorf("ReplayTrace arrivals/requests mismatch: err=%v", err)
	}

	// FromTrace propagates sample-generation failures (unknown dataset).
	p := soakPipeline(t)
	if _, _, err := FromTrace(p, Options{Dataset: "no-such-dataset"}, []serving.Request{{ID: 0}}); err == nil {
		t.Error("FromTrace accepted an unknown dataset")
	}
}

// TestReportHitRateZeroWarm pins the zero-warm branches of the hit-rate
// helpers: a stream with no warm requests reports rate 0, not NaN.
func TestReportHitRateZeroWarm(t *testing.T) {
	t.Parallel()
	r := &Report{Requests: 3, Scans: 3}
	if r.WarmHitRate() != 0 || r.WarmSealHitRate() != 0 {
		t.Errorf("zero-warm Report rates: %v / %v, want 0 / 0", r.WarmHitRate(), r.WarmSealHitRate())
	}
	e := &EpochReport{Requests: 3, Scans: 3}
	if e.WarmHitRate() != 0 || e.WarmSealHitRate() != 0 {
		t.Errorf("zero-warm EpochReport rates: %v / %v, want 0 / 0", e.WarmHitRate(), e.WarmSealHitRate())
	}
	e = &EpochReport{Requests: 4, Warm: 4, WarmPrefillHits: 3, WarmSealHits: 2}
	if e.WarmHitRate() != 0.75 || e.WarmSealHitRate() != 0.5 {
		t.Errorf("EpochReport rates: %v / %v, want 0.75 / 0.5", e.WarmHitRate(), e.WarmSealHitRate())
	}
}
