package baselines

import (
	"testing"

	"repro/internal/kvcache"
	"repro/internal/quant"
	"repro/internal/rngx"
)

func builder(seed uint64, n int) *kvcache.Builder {
	cfg := kvcache.Config{Layers: 2, Heads: 1, HeadDim: 16, GroupSize: 16}
	r := rngx.New(seed)
	b := kvcache.NewBuilder(cfg)
	for t := 0; t < n; t++ {
		b.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			b.Append(l, 0, r.GaussianVec(16, 1), r.GaussianVec(16, 1))
		}
	}
	return b
}

func TestFP16Plan(t *testing.T) {
	p := FP16Plan(128, 32)
	if c := p.Counts(); c[kvcache.FP16] != 128 {
		t.Fatalf("counts = %v", c)
	}
}

func TestAtomPlanUniformINT4(t *testing.T) {
	p := AtomPlan(128, 32)
	if c := p.Counts(); c[kvcache.INT4] != 128 {
		t.Fatalf("counts = %v", c)
	}
	if runs := p.SegmentRuns(); len(runs) != 1 {
		t.Fatalf("Atom should produce one contiguous run, got %v", runs)
	}
}

func TestConfigures(t *testing.T) {
	var cfg kvcache.Config
	AtomConfigure(&cfg)
	if cfg.KAxis != quant.PerToken || cfg.UseCodebook {
		t.Fatal("Atom config wrong")
	}
	KIVIConfigure(&cfg)
	if cfg.KAxis != quant.PerChannel || cfg.VAxis != quant.PerToken || cfg.UseCodebook {
		t.Fatal("KIVI config wrong")
	}
	KVQuantConfigure(&cfg)
	if !cfg.UseCodebook || cfg.KAxis != quant.PerChannel {
		t.Fatal("KVQuant config wrong")
	}
}

func TestKVQuantPlanOutliers(t *testing.T) {
	n := 200
	b := builder(3, n)
	p := KVQuantPlan(b, 32, 0.05)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := p.Counts()
	// 5% of 200 = 10 outliers plus the 8 FP16 tail tokens (200 - 6*32).
	if counts[kvcache.FP16] < 10 || counts[kvcache.FP16] > 20 {
		t.Fatalf("FP16 tokens = %d, want ~10-20", counts[kvcache.FP16])
	}
	if counts[kvcache.INT4] != n-counts[kvcache.FP16] {
		t.Fatalf("INT4 tokens = %d", counts[kvcache.INT4])
	}
}

func TestKVQuantKeepsHighestNormTokens(t *testing.T) {
	cfg := kvcache.Config{Layers: 1, Heads: 1, HeadDim: 8, GroupSize: 8}
	b := kvcache.NewBuilder(cfg)
	r := rngx.New(9)
	const big = 17
	for t2 := 0; t2 < 64; t2++ {
		b.BeginToken()
		k := r.GaussianVec(8, 0.1)
		if t2 == big {
			for i := range k {
				k[i] *= 100
			}
		}
		b.Append(0, 0, k, r.GaussianVec(8, 1))
	}
	p := KVQuantPlan(b, 32, 0.01)
	if p.TokenPrec[big] != kvcache.FP16 {
		t.Fatalf("outlier token %d not kept FP16", big)
	}
}

func TestKVQuantProducesFragmentedLayout(t *testing.T) {
	b := builder(11, 320)
	p := KVQuantPlan(b, 32, 0.02)
	runs := p.SegmentRuns()
	if len(runs) < 5 {
		t.Fatalf("expected scattered outliers to fragment the layout, got %d runs", len(runs))
	}
}

func TestKVQuantSealsAndAttends(t *testing.T) {
	b := builder(13, 96)
	p := KVQuantPlan(b, 32, 0.02)
	cfg := b.Config()
	KVQuantConfigure(&cfg)
	b2 := kvcache.NewBuilder(cfg)
	r := rngx.New(13) // rebuild with codebook config
	for t2 := 0; t2 < 96; t2++ {
		b2.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			b2.Append(l, 0, r.GaussianVec(16, 1), r.GaussianVec(16, 1))
		}
	}
	cache, err := b2.Seal(p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 16)
	cache.Attend(0, 0, rngx.New(5).GaussianVec(16, 1), 0.25, out)
}

func TestKVQuantEmptyBuilder(t *testing.T) {
	cfg := kvcache.Config{Layers: 1, Heads: 1, HeadDim: 4, GroupSize: 4}
	b := kvcache.NewBuilder(cfg)
	p := KVQuantPlan(b, 32, 0.01)
	if p.NumTokens != 0 {
		t.Fatal("empty plan should cover zero tokens")
	}
}
