// Package baselines implements the three published KV-cache quantization
// methods the paper compares against (Section IV-A):
//
//   - Atom (Zhao et al., MLSys'24): uniform INT4 group quantization of the
//     whole context KV, per-token groups.
//   - KIVI (Liu et al., 2024): uniform INT4, but per-channel groups for the
//     K cache and per-token groups for the V cache.
//   - KVQuant (Hooper et al., 2024): token-level mixed precision — a small
//     outlier fraction (1% in the paper's setup) of tokens kept in FP16,
//     the rest quantized to INT4 with a non-uniform (nuqX-style) codebook.
//
// Each baseline is expressed as a kvcache plan policy plus cache kernel
// options, so all methods share the exact same cache, kernels and
// attention path as Cocktail — only the policy differs.
package baselines

import (
	"sort"

	"repro/internal/kvcache"
	"repro/internal/mathx"
	"repro/internal/quant"
)

// FP16Plan keeps the whole context unquantized (the paper's FP16 row).
func FP16Plan(numTokens, chunkSize int) *kvcache.Plan {
	return kvcache.UniformPlan(numTokens, chunkSize, kvcache.FP16, false)
}

// AtomPlan quantizes every chunk uniformly to INT4. Uniform precision means
// reordering is a no-op, matching Atom's plain contiguous layout.
func AtomPlan(numTokens, chunkSize int) *kvcache.Plan {
	return kvcache.UniformPlan(numTokens, chunkSize, kvcache.INT4, false)
}

// AtomConfigure sets Atom's kernel options: per-token group quantization
// for both K and V.
func AtomConfigure(cfg *kvcache.Config) {
	cfg.KAxis = quant.PerToken
	cfg.VAxis = quant.PerToken
	cfg.UseCodebook = false
}

// KIVIPlan quantizes every chunk uniformly to INT4 (KIVI's bitwidth in the
// paper's comparison).
func KIVIPlan(numTokens, chunkSize int) *kvcache.Plan {
	return kvcache.UniformPlan(numTokens, chunkSize, kvcache.INT4, false)
}

// KIVIConfigure sets KIVI's defining kernel options: per-channel K
// quantization, per-token V quantization.
func KIVIConfigure(cfg *kvcache.Config) {
	cfg.KAxis = quant.PerChannel
	cfg.VAxis = quant.PerToken
	cfg.UseCodebook = false
}

// DefaultOutlierFraction is the FP16 token fraction used by the paper's
// KVQuant configuration.
const DefaultOutlierFraction = 0.01

// KVQuantPlan performs KVQuant's token-level quantization search: it ranks
// every context token by its aggregate K magnitude across layers and heads
// (the tokens whose keys dominate attention are the ones FP16 must
// preserve) and keeps the top outlierFrac in FP16; everything else is INT4.
// The scattered FP16 tokens produce the fragmented physical layout whose
// cost Figure 5/6 charges to KVQuant.
func KVQuantPlan(b *kvcache.Builder, chunkSize int, outlierFrac float64) *kvcache.Plan {
	n := b.NumTokens()
	plan := kvcache.UniformPlan(n, chunkSize, kvcache.INT4, false)
	plan.TokenPrec = make([]kvcache.Precision, n)
	for i := range plan.TokenPrec {
		plan.TokenPrec[i] = kvcache.INT4
	}
	type scored struct {
		tok  int
		norm float64
	}
	cfg := b.Config()
	scores := make([]scored, n)
	for t := 0; t < n; t++ {
		var s float64
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				s += float64(mathx.Norm2(b.KRow(l, h, t)))
			}
		}
		scores[t] = scored{tok: t, norm: s}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].norm > scores[j].norm })
	keep := int(float64(n) * outlierFrac)
	if keep < 1 && n > 0 {
		keep = 1
	}
	for i := 0; i < keep && i < n; i++ {
		plan.TokenPrec[scores[i].tok] = kvcache.FP16
	}
	// Tail tokens beyond the last full chunk stay FP16 (plan convention).
	for t := plan.NumChunks() * chunkSize; t < n; t++ {
		plan.TokenPrec[t] = kvcache.FP16
	}
	return plan
}

// KVQuantConfigure sets KVQuant's kernel options: per-channel K
// quantization (as published), per-token V, with the non-uniform
// Gaussian-quantile codebook (the nuqX analog).
func KVQuantConfigure(cfg *kvcache.Config) {
	cfg.KAxis = quant.PerChannel
	cfg.VAxis = quant.PerToken
	cfg.UseCodebook = true
}
