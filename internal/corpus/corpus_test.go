package corpus

import (
	"testing"

	"repro/internal/rngx"
)

func lex(t *testing.T) *Lexicon {
	t.Helper()
	return NewLexicon(Defaults(1))
}

func TestDeterministic(t *testing.T) {
	a := NewLexicon(Defaults(7))
	b := NewLexicon(Defaults(7))
	if len(a.Words) != len(b.Words) {
		t.Fatal("sizes differ")
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d differs: %+v vs %+v", i, a.Words[i], b.Words[i])
		}
	}
}

func TestSurfacesUnique(t *testing.T) {
	l := lex(t)
	seen := map[string]bool{}
	for _, w := range l.Words {
		if seen[w.Surface] {
			t.Fatalf("duplicate surface %q", w.Surface)
		}
		seen[w.Surface] = true
	}
	if l.Vocab.Size() != len(l.Words) {
		t.Fatalf("vocab size %d != words %d", l.Vocab.Size(), len(l.Words))
	}
}

func TestConceptFormsConsistent(t *testing.T) {
	l := lex(t)
	for c := 0; c < l.NumConcepts(); c++ {
		forms := l.FormsOf(c)
		if len(forms) == 0 {
			t.Fatalf("concept %d has no forms", c)
		}
		for _, id := range forms {
			if l.ConceptOf(id) != c {
				t.Fatalf("word %d concept mismatch", id)
			}
		}
	}
}

func TestSynonymsExist(t *testing.T) {
	l := lex(t)
	multi := 0
	for c := 0; c < l.NumConcepts(); c++ {
		if len(l.FormsOf(c)) > 1 {
			multi++
		}
	}
	if multi < 100 {
		t.Fatalf("too few multi-form concepts: %d", multi)
	}
}

func TestAlternateForm(t *testing.T) {
	l := lex(t)
	r := rngx.New(3)
	for c := 0; c < l.NumConcepts(); c++ {
		forms := l.FormsOf(c)
		if len(forms) < 2 {
			continue
		}
		alt := l.AlternateForm(r, c, forms[0])
		if alt == forms[0] {
			t.Fatalf("AlternateForm returned the avoided form for concept %d", c)
		}
		return // one multi-form concept is enough
	}
	t.Skip("no multi-form concept found")
}

func TestTopicsAndStyles(t *testing.T) {
	l := lex(t)
	if len(l.CodeTopics()) != 4 || len(l.ProseTopics()) != 28 {
		t.Fatalf("topic counts wrong: %d code, %d prose", len(l.CodeTopics()), len(l.ProseTopics()))
	}
	for _, tp := range l.CodeTopics() {
		if l.TopicStyle(tp) != Code {
			t.Fatal("code topic style mismatch")
		}
		cs := l.TopicConcepts(tp)
		if len(cs) != Defaults(1).ConceptsPerTopic {
			t.Fatalf("topic %d has %d concepts", tp, len(cs))
		}
	}
}

func TestLabelsAndEOS(t *testing.T) {
	l := lex(t)
	if len(l.LabelConcepts()) != 10 {
		t.Fatalf("labels = %d", len(l.LabelConcepts()))
	}
	for i, c := range l.LabelConcepts() {
		forms := l.FormsOf(c)
		if len(forms) != 1 {
			t.Fatalf("label concept %d has %d forms", c, len(forms))
		}
		want := "label" + string(rune('0'+i))
		if l.SurfaceOf(forms[0]) != want {
			t.Fatalf("label surface = %q, want %q", l.SurfaceOf(forms[0]), want)
		}
	}
	if l.SurfaceOf(l.EOSID()) != "<eos>" {
		t.Fatal("EOS surface wrong")
	}
}

func TestSentence(t *testing.T) {
	l := lex(t)
	r := rngx.New(5)
	tp := l.ProseTopics()[0]
	s := l.Sentence(r, tp, 20)
	if len(s) != 20 {
		t.Fatalf("sentence length %d", len(s))
	}
	content := 0
	for _, id := range s {
		switch l.TopicOf(id) {
		case tp:
			content++
		case FunctionTopic:
		default:
			t.Fatalf("word %q from unrelated topic %d", l.SurfaceOf(id), l.TopicOf(id))
		}
	}
	if content < 10 {
		t.Fatalf("too few topical words: %d", content)
	}
}

func TestPassageChunks(t *testing.T) {
	l := lex(t)
	r := rngx.New(9)
	chunks, topics := l.PassageChunks(r, 12, 32, nil)
	if len(chunks) != 12 || len(topics) != 12 {
		t.Fatal("wrong chunk count")
	}
	for i, c := range chunks {
		if len(c) != 32 {
			t.Fatalf("chunk %d has %d tokens", i, len(c))
		}
	}
}

func TestSurfacesOfRoundTrip(t *testing.T) {
	l := lex(t)
	ids := []int{0, 1, 2}
	surfs := l.SurfacesOf(ids)
	for i, s := range surfs {
		if l.Vocab.ID(s) != ids[i] {
			t.Fatal("surface/id mismatch")
		}
	}
}

func TestZeroConfigUsesDefaults(t *testing.T) {
	l := NewLexicon(Config{Seed: 2})
	if l.NumTopics() != 32 {
		t.Fatalf("zero config should default, topics = %d", l.NumTopics())
	}
}
