// Package corpus generates the deterministic synthetic language used by
// every experiment: a closed lexicon of pseudo-words organized into topics
// and concepts, plus sentence/passage generators.
//
// Structure mirrors what the paper's components need from natural text:
//
//   - A concept is a unit of meaning. A concept may have several surface
//     forms (synonyms). Dense retrieval encoders and the constructed LLM
//     "know" the concept behind a surface form — that stands in for
//     pretrained semantic knowledge — while the BM25 baseline only ever
//     sees surface strings. This is what separates encoders in Table IV.
//   - A topic groups related concepts. Distractor text is topically
//     coherent, so chunk/query similarities show the graded structure of
//     the paper's Figure 1 (few highly relevant chunks, a band of mildly
//     related ones, mostly irrelevant ones).
//   - Code-style topics render surfaces as camelCase identifiers for the
//     LCC / RepoBench-P analog tasks.
package corpus

import (
	"fmt"

	"repro/internal/rngx"
	"repro/internal/tokenizer"
)

// Style selects the surface style of a topic's words.
type Style int

const (
	// Prose topics render lowercase syllabic pseudo-words.
	Prose Style = iota
	// Code topics render camelCase identifier-like pseudo-words.
	Code
)

// WordInfo describes one vocabulary entry.
type WordInfo struct {
	Surface string
	Concept int // synonyms share a concept id
	Topic   int // topic id, or FunctionTopic for glue words
}

// FunctionTopic is the pseudo-topic of function (glue) words.
const FunctionTopic = -1

// Config sizes a lexicon. The zero value is replaced by Defaults.
type Config struct {
	Seed             uint64
	ProseTopics      int // number of prose topics
	CodeTopics       int // number of code topics
	ConceptsPerTopic int
	SynonymFraction  float64 // fraction of concepts with a second surface form
	FunctionWords    int
	Labels           int // classification label concepts (single-form)
}

// Defaults returns the lexicon configuration used by the experiments.
func Defaults(seed uint64) Config {
	return Config{
		Seed:             seed,
		ProseTopics:      28,
		CodeTopics:       4,
		ConceptsPerTopic: 40,
		SynonymFraction:  0.45,
		FunctionWords:    24,
		Labels:           10,
	}
}

// Lexicon is a deterministic closed vocabulary. It is read-only after
// NewLexicon; pipelines share one instance across goroutines without
// locking.
//
//cocktail:immutable
type Lexicon struct {
	cfg       Config
	Words     []WordInfo
	Vocab     *tokenizer.Vocab
	byConcept [][]int // concept id -> word ids
	topics    []Style // topic id -> style
	labels    []int   // concept ids reserved as classification labels
	funcIDs   []int   // word ids of function words
	eosID     int     // word id of the end-of-sequence word
	nConcepts int
}

// NewLexicon builds the lexicon for cfg. Identical configs yield identical
// lexica (surfaces, ids, everything).
func NewLexicon(cfg Config) *Lexicon {
	if cfg.ProseTopics == 0 && cfg.CodeTopics == 0 {
		cfg = Defaults(cfg.Seed)
	}
	r := rngx.New(cfg.Seed).Split(0x1e81c0)
	l := &Lexicon{cfg: cfg}
	seen := map[string]bool{}

	fresh := func(gen func(*rngx.RNG) string) string {
		for {
			s := gen(r)
			if !seen[s] {
				seen[s] = true
				return s
			}
		}
	}
	addWord := func(surface string, concept, topic int) int {
		id := len(l.Words)
		l.Words = append(l.Words, WordInfo{Surface: surface, Concept: concept, Topic: topic})
		for concept >= len(l.byConcept) {
			l.byConcept = append(l.byConcept, nil)
		}
		l.byConcept[concept] = append(l.byConcept[concept], id)
		return id
	}
	newConcept := func() int {
		c := l.nConcepts
		l.nConcepts++
		return c
	}

	// Topic styles: prose topics first, then code topics.
	for i := 0; i < cfg.ProseTopics; i++ {
		l.topics = append(l.topics, Prose)
	}
	for i := 0; i < cfg.CodeTopics; i++ {
		l.topics = append(l.topics, Code)
	}

	// Topic concept words.
	for topic, style := range l.topics {
		gen := proseWord
		if style == Code {
			gen = codeWord
		}
		for k := 0; k < cfg.ConceptsPerTopic; k++ {
			c := newConcept()
			addWord(fresh(gen), c, topic)
			if r.Float64() < cfg.SynonymFraction {
				addWord(fresh(gen), c, topic) // a synonym surface form
			}
		}
	}

	// Function words: one form each, FunctionTopic.
	for i := 0; i < cfg.FunctionWords; i++ {
		c := newConcept()
		l.funcIDs = append(l.funcIDs, addWord(fresh(shortWord), c, FunctionTopic))
	}

	// Label words for classification tasks: fixed recognizable surfaces.
	for i := 0; i < cfg.Labels; i++ {
		c := newConcept()
		l.labels = append(l.labels, c)
		addWord(fmt.Sprintf("label%d", i), c, FunctionTopic)
	}

	// End-of-sequence marker.
	l.eosID = addWord("<eos>", newConcept(), FunctionTopic)

	words := make([]string, len(l.Words))
	for i, w := range l.Words {
		words[i] = w.Surface
	}
	l.Vocab = tokenizer.NewVocab(words)
	return l
}

func proseWord(r *rngx.RNG) string {
	const cons = "bcdfgklmnprstvz"
	const vow = "aeiou"
	n := 2 + r.Intn(2) // 2-3 syllables
	b := make([]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		b = append(b, cons[r.Intn(len(cons))], vow[r.Intn(len(vow))])
	}
	return string(b)
}

func shortWord(r *rngx.RNG) string {
	const cons = "dfhlmnrstw"
	const vow = "aeiou"
	return string([]byte{cons[r.Intn(len(cons))], vow[r.Intn(len(vow))], cons[r.Intn(len(cons))]})
}

func codeWord(r *rngx.RNG) string {
	verbs := []string{"get", "set", "load", "push", "emit", "scan", "map", "bind"}
	nouns := []string{"Buf", "Ctx", "Node", "Page", "Idx", "Key", "Val", "Row", "Ptr", "Arg"}
	s := rngx.Choice(r, verbs) + rngx.Choice(r, nouns)
	if r.Float64() < 0.5 {
		s += rngx.Choice(r, nouns)
	}
	return s
}

// NumTopics returns the number of content topics (excluding FunctionTopic).
func (l *Lexicon) NumTopics() int { return len(l.topics) }

// NumConcepts returns the number of concepts (including function/label/eos).
func (l *Lexicon) NumConcepts() int { return l.nConcepts }

// TopicStyle returns the style of a topic.
func (l *Lexicon) TopicStyle(topic int) Style { return l.topics[topic] }

// CodeTopics returns the topic ids styled as code.
func (l *Lexicon) CodeTopics() []int {
	var out []int
	for i, s := range l.topics {
		if s == Code {
			out = append(out, i)
		}
	}
	return out
}

// ProseTopics returns the topic ids styled as prose.
func (l *Lexicon) ProseTopics() []int {
	var out []int
	for i, s := range l.topics {
		if s == Prose {
			out = append(out, i)
		}
	}
	return out
}

// ConceptOf returns the concept id of a word id.
func (l *Lexicon) ConceptOf(wordID int) int { return l.Words[wordID].Concept }

// TopicOf returns the topic id of a word id (FunctionTopic for glue words).
func (l *Lexicon) TopicOf(wordID int) int { return l.Words[wordID].Topic }

// FormsOf returns all word ids sharing a concept.
func (l *Lexicon) FormsOf(concept int) []int { return l.byConcept[concept] }

// RandomForm picks one surface form of concept uniformly.
func (l *Lexicon) RandomForm(r *rngx.RNG, concept int) int {
	return rngx.Choice(r, l.byConcept[concept])
}

// AlternateForm returns a form of the concept different from avoid when one
// exists, otherwise avoid itself. It is how queries paraphrase needles.
func (l *Lexicon) AlternateForm(r *rngx.RNG, concept, avoid int) int {
	forms := l.byConcept[concept]
	if len(forms) == 1 {
		return forms[0]
	}
	for {
		id := rngx.Choice(r, forms)
		if id != avoid {
			return id
		}
	}
}

// TopicConcepts returns the concept ids belonging to a topic.
func (l *Lexicon) TopicConcepts(topic int) []int {
	var out []int
	seen := map[int]bool{}
	for _, w := range l.Words {
		if w.Topic == topic && !seen[w.Concept] {
			seen[w.Concept] = true
			out = append(out, w.Concept)
		}
	}
	return out
}

// LabelConcepts returns the classification label concept ids.
func (l *Lexicon) LabelConcepts() []int { return l.labels }

// FunctionWordIDs returns the glue-word ids.
func (l *Lexicon) FunctionWordIDs() []int { return l.funcIDs }

// EOSID returns the end-of-sequence word id.
func (l *Lexicon) EOSID() int { return l.eosID }

// Sentence emits n word-ids of topically coherent text: topic concept words
// interleaved with function words.
func (l *Lexicon) Sentence(r *rngx.RNG, topic, n int) []int {
	concepts := l.TopicConcepts(topic)
	out := make([]int, 0, n)
	for len(out) < n {
		if len(out)%4 == 3 {
			out = append(out, rngx.Choice(r, l.funcIDs))
			continue
		}
		c := rngx.Choice(r, concepts)
		out = append(out, l.RandomForm(r, c))
	}
	return out
}

// PassageChunks generates nChunks chunks of chunkSize tokens each. Every
// chunk is written in a topic drawn from topics (round-robin over a random
// assignment), and the per-chunk topic list is returned alongside.
func (l *Lexicon) PassageChunks(r *rngx.RNG, nChunks, chunkSize int, topics []int) (chunks [][]int, chunkTopics []int) {
	if len(topics) == 0 {
		topics = l.ProseTopics()
	}
	chunks = make([][]int, nChunks)
	chunkTopics = make([]int, nChunks)
	for i := range chunks {
		tp := topics[r.Intn(len(topics))]
		chunkTopics[i] = tp
		chunks[i] = l.Sentence(r, tp, chunkSize)
	}
	return chunks, chunkTopics
}

// SurfaceOf returns the surface string of a word id.
func (l *Lexicon) SurfaceOf(wordID int) string { return l.Words[wordID].Surface }

// SurfacesOf maps word ids to surfaces.
func (l *Lexicon) SurfacesOf(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = l.Words[id].Surface
	}
	return out
}
