package datasets

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rngx"
)

func lex() *corpus.Lexicon { return corpus.NewLexicon(corpus.Defaults(1)) }

func TestAllDatasetsListed(t *testing.T) {
	ds := All()
	if len(ds) != 8 {
		t.Fatalf("got %d datasets, want 8", len(ds))
	}
	wantNames := []string{"Qasper", "QMSum", "MultiNews", "TREC", "TriviaQA", "SAMSum", "LCC", "RepoBench-P"}
	for i, d := range ds {
		if d.Name != wantNames[i] {
			t.Fatalf("dataset %d = %q, want %q", i, d.Name, wantNames[i])
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("QMSum")
	if err != nil || d.Metric != metrics.Rouge {
		t.Fatalf("ByName(QMSum) = %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestSampleStructure(t *testing.T) {
	l := lex()
	for _, d := range All() {
		r := rngx.New(7)
		s := d.Gen(r, l, GenConfig{ContextTokens: 512, ChunkSize: 32})
		if len(s.Context) != 512 {
			t.Fatalf("%s: context len %d", d.Name, len(s.Context))
		}
		if len(s.Query) == 0 || len(s.Answer) == 0 {
			t.Fatalf("%s: empty query or answer", d.Name)
		}
		if len(s.RelevantChunks) == 0 {
			t.Fatalf("%s: no relevant chunks", d.Name)
		}
		for _, c := range s.RelevantChunks {
			if c < 0 || c >= 512/32 {
				t.Fatalf("%s: relevant chunk %d out of range", d.Name, c)
			}
		}
		for _, id := range append(append([]int{}, s.Context...), s.Query...) {
			if id < 0 || id >= l.Vocab.Size() {
				t.Fatalf("%s: token id %d out of vocab", d.Name, id)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	l := lex()
	for _, d := range All() {
		a := d.Gen(rngx.New(3), l, GenConfig{})
		b := d.Gen(rngx.New(3), l, GenConfig{})
		if len(a.Context) != len(b.Context) {
			t.Fatalf("%s: nondeterministic context", d.Name)
		}
		for i := range a.Context {
			if a.Context[i] != b.Context[i] {
				t.Fatalf("%s: context differs at %d", d.Name, i)
			}
		}
	}
}

// TestAnswerFollowsTriggerUniquely: the trigger (last query token) must
// occur exactly once in the context, immediately followed by the answer.
func TestAnswerFollowsTriggerUniquely(t *testing.T) {
	l := lex()
	for _, d := range All() {
		r := rngx.New(11)
		for trial := 0; trial < 5; trial++ {
			s := d.Gen(r, l, GenConfig{})
			trigger := s.Query[len(s.Query)-1]
			occurrences := 0
			for i, id := range s.Context {
				if id != trigger {
					continue
				}
				occurrences++
				for j, a := range s.Answer {
					if s.Context[i+1+j] != a {
						t.Fatalf("%s: answer not contiguous after trigger", d.Name)
					}
				}
				if s.Context[i+1+len(s.Answer)] != l.EOSID() {
					t.Fatalf("%s: span not EOS-terminated", d.Name)
				}
			}
			// TREC plants two examples of the target class; all other
			// datasets plant a single needle. Every occurrence was already
			// verified to carry the same continuation above.
			want := 1
			if d.Name == "TREC" {
				want = 2
			}
			if occurrences != want {
				t.Fatalf("%s: trigger occurs %d times, want %d", d.Name, occurrences, want)
			}
		}
	}
}

// TestNeedleInsideRelevantChunk: the trigger must be inside a chunk listed
// as relevant.
func TestNeedleInsideRelevantChunk(t *testing.T) {
	l := lex()
	for _, d := range All() {
		r := rngx.New(13)
		s := d.Gen(r, l, GenConfig{ChunkSize: 32})
		trigger := s.Query[len(s.Query)-1]
		for i, id := range s.Context {
			if id == trigger {
				chunk := i / 32
				found := false
				for _, c := range s.RelevantChunks {
					if c == chunk {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: trigger chunk %d not in relevant set %v", d.Name, chunk, s.RelevantChunks)
				}
			}
		}
	}
}

// TestCodeDatasetsUseCodeVocab: LCC/RepoBench contexts should be drawn
// from code-style topics.
func TestCodeDatasetsUseCodeVocab(t *testing.T) {
	l := lex()
	codeTopic := map[int]bool{}
	for _, tp := range l.CodeTopics() {
		codeTopic[tp] = true
	}
	for _, name := range []string{"LCC", "RepoBench-P"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := d.Gen(rngx.New(5), l, GenConfig{})
		codeWords := 0
		content := 0
		for _, id := range s.Context {
			switch tp := l.TopicOf(id); {
			case tp == corpus.FunctionTopic:
			case codeTopic[tp]:
				codeWords++
				content++
			default:
				content++
			}
		}
		if codeWords*10 < content*9 {
			t.Fatalf("%s: only %d/%d content words are code-style", name, codeWords, content)
		}
	}
}

// TestFP16EndToEnd: on every dataset, the FP16 model must recover most of
// the reference answers — the baseline row of Table II.
func TestFP16EndToEnd(t *testing.T) {
	l := lex()
	cfg := model.Registry(2048)[0]
	m, err := model.New(cfg, l)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range All() {
		r := rngx.New(17)
		var total float64
		const trials = 8
		for i := 0; i < trials; i++ {
			s := d.Gen(r, l, GenConfig{ContextTokens: 512})
			b, err := m.Prefill(s.Context)
			if err != nil {
				t.Fatal(err)
			}
			cache, err := b.Seal(kvcache.UniformPlan(len(s.Context), 32, kvcache.FP16, false))
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Generate(cache, s.Query, 24)
			total += metrics.Score(d.Metric, Surfaces(l, pred), Surfaces(l, s.Answer))
		}
		avg := total / trials
		if avg < 0.7 {
			t.Errorf("%s: FP16 average %v, want >= 0.7", d.Name, avg)
		}
	}
}

func TestGenConfigDefaults(t *testing.T) {
	c := GenConfig{}.withDefaults()
	if c.ContextTokens != 768 || c.ChunkSize != 32 {
		t.Fatalf("defaults = %+v", c)
	}
}
