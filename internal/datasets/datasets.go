// Package datasets generates the eight LongBench-analog tasks of the
// paper's Table I. Every task plants "needle" spans — the information the
// answer must be copied from — inside long, topically coherent distractor
// text, with decoy spans (paraphrased triggers with wrong continuations)
// that quantization noise can confuse the model onto.
//
// The shared anatomy of a sample:
//
//   - The needle chunk embeds the trigger span "trigger a₁ … a_k <eos>" and
//     a few anchor concepts, each mentioned twice (relevant text discusses
//     its entities repeatedly) — the anchors are what the retrieval
//     encoder can see.
//   - The query paraphrases the anchors (alternate surface forms) and ends
//     with the exact trigger word, which drives the model's induction
//     retrieval.
//   - Decoy spans "trigger′ w₁ … w_k <eos>" use a synonym surface of the
//     trigger, so their attention score sits a tuned margin below the
//     needle's — FP16/INT4 retrieval survives, INT2 often flips onto them.
//
// Task differences (answer length, decoy count, prose vs code vocabulary,
// few-shot structure, metric) follow the corresponding LongBench datasets.
package datasets

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/rngx"
)

// Sample is one evaluation instance.
type Sample struct {
	Context []int // context token ids (quantization-managed)
	Query   []int // query token ids (stays FP16)
	Answer  []int // reference answer token ids
	// RelevantChunks lists chunk indices that contain needle content
	// (ground truth for retrieval diagnostics, not visible to methods).
	RelevantChunks []int
}

// GenConfig sizes generated samples.
type GenConfig struct {
	// ContextTokens is the total context length (default 768).
	ContextTokens int
	// ChunkSize aligns needle placement to the search granularity
	// (default 32). Samples remain valid for other chunk sizes.
	ChunkSize int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.ContextTokens == 0 {
		c.ContextTokens = 768
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 32
	}
	return c
}

// Dataset is one Table I task.
type Dataset struct {
	Name   string
	Task   string
	Metric metrics.Kind
	Gen    func(r *rngx.RNG, lex *corpus.Lexicon, cfg GenConfig) Sample
}

// spec parametrizes the shared generator.
type spec struct {
	code    bool // use code-style topics (LCC, RepoBench-P)
	ansLen  int
	decoys  int
	anchors int
	fewShot int // extra unrelated example spans (TriviaQA-style prompts)
}

// All returns the eight datasets in Table I order.
func All() []Dataset {
	return []Dataset{
		{Name: "Qasper", Task: "Single-Document QA", Metric: metrics.F1,
			Gen: genSpec(spec{ansLen: 4, decoys: 3, anchors: 3})},
		{Name: "QMSum", Task: "Summarization", Metric: metrics.Rouge,
			Gen: genSpec(spec{ansLen: 10, decoys: 2, anchors: 3})},
		{Name: "MultiNews", Task: "Summarization", Metric: metrics.Rouge,
			Gen: genSpec(spec{ansLen: 12, decoys: 1, anchors: 3})},
		{Name: "TREC", Task: "Few-shot Learning", Metric: metrics.Classification,
			Gen: genTREC},
		{Name: "TriviaQA", Task: "Few-shot Learning", Metric: metrics.F1,
			Gen: genSpec(spec{ansLen: 3, decoys: 2, anchors: 3, fewShot: 2})},
		{Name: "SAMSum", Task: "Few-shot Learning", Metric: metrics.Rouge,
			Gen: genSpec(spec{ansLen: 8, decoys: 2, anchors: 3, fewShot: 1})},
		{Name: "LCC", Task: "Code Completion", Metric: metrics.EditSim,
			Gen: genSpec(spec{code: true, ansLen: 8, decoys: 1, anchors: 2})},
		{Name: "RepoBench-P", Task: "Code Completion", Metric: metrics.EditSim,
			Gen: genSpec(spec{code: true, ansLen: 8, decoys: 3, anchors: 2})},
	}
}

// ByName returns the dataset with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

func genSpec(s spec) func(*rngx.RNG, *corpus.Lexicon, GenConfig) Sample {
	return func(r *rngx.RNG, lex *corpus.Lexicon, cfg GenConfig) Sample {
		return build(r, lex, cfg.withDefaults(), s)
	}
}

// multiFormConcept draws a concept with >= 2 surface forms from topic.
func multiFormConcept(r *rngx.RNG, lex *corpus.Lexicon, topic int, used map[int]bool) int {
	concepts := lex.TopicConcepts(topic)
	for tries := 0; tries < 10*len(concepts); tries++ {
		c := concepts[r.Intn(len(concepts))]
		if !used[c] && len(lex.FormsOf(c)) >= 2 {
			used[c] = true
			return c
		}
	}
	panic("datasets: topic has too few multi-form concepts")
}

// uniqueWord draws a word (form 0 of an unused concept) from topic.
func uniqueWord(r *rngx.RNG, lex *corpus.Lexicon, topic int, used map[int]bool) int {
	concepts := lex.TopicConcepts(topic)
	for tries := 0; tries < 10*len(concepts); tries++ {
		c := concepts[r.Intn(len(concepts))]
		if !used[c] {
			used[c] = true
			return lex.FormsOf(c)[0]
		}
	}
	panic("datasets: topic exhausted for unique words")
}

// build implements the shared needle/decoy/anchor construction.
func build(r *rngx.RNG, lex *corpus.Lexicon, cfg GenConfig, s spec) Sample {
	topics := lex.ProseTopics()
	if s.code {
		topics = lex.CodeTopics()
	}
	cs := cfg.ChunkSize
	nChunks := cfg.ContextTokens / cs
	if nChunks < 4 {
		panic("datasets: context too short for the chunk size")
	}
	chunks, _ := lex.PassageChunks(r, nChunks, cs, topics)
	tail := lex.Sentence(r, topics[r.Intn(len(topics))], cfg.ContextTokens%cs)

	usedConcepts := map[int]bool{}
	needleTopic := topics[r.Intn(len(topics))]
	ansTopic := topics[r.Intn(len(topics))]

	trigConcept := multiFormConcept(r, lex, needleTopic, usedConcepts)
	trigForm := lex.FormsOf(trigConcept)[0]
	anchors := make([]int, s.anchors)
	for i := range anchors {
		anchors[i] = multiFormConcept(r, lex, needleTopic, usedConcepts)
	}
	answer := make([]int, s.ansLen)
	for i := range answer {
		answer[i] = uniqueWord(r, lex, ansTopic, usedConcepts)
	}

	// Scrub every form of every reserved concept from the distractor text
	// so planted spans are the unique occurrences.
	blocked := map[int]bool{}
	note := func(c int) {
		for _, id := range lex.FormsOf(c) {
			blocked[id] = true
		}
	}
	note(trigConcept)
	for _, a := range anchors {
		note(a)
	}
	// Block every form of the answer concepts: a synonym of an answer word
	// left in distractor text would be a mid-chain decoy.
	for _, id := range answer {
		note(lex.ConceptOf(id))
	}
	scrub := func(tokens []int) {
		fw := lex.FunctionWordIDs()
		for i, id := range tokens {
			if blocked[id] {
				tokens[i] = fw[(i+len(tokens))%len(fw)]
			}
		}
	}

	// Needle chunk layout: [a1 a1 a2 a2 … | trigger answer… <eos> | filler].
	span := make([]int, 0, s.ansLen+2)
	span = append(span, trigForm)
	span = append(span, answer...)
	span = append(span, lex.EOSID())
	if 2*len(anchors)+len(span) > cs {
		panic("datasets: needle does not fit in a chunk")
	}
	needleChunk := r.Intn(nChunks)

	// Decoys: alternate trigger surface + wrong continuations, placed in
	// distinct non-needle chunks.
	type planted struct {
		chunk int
		span  []int
	}
	var plants []planted
	decoyForm := lex.AlternateForm(r, trigConcept, trigForm)
	takenChunks := map[int]bool{needleChunk: true}
	for k := 0; k < s.decoys; k++ {
		wrong := make([]int, 0, s.ansLen+2)
		wrong = append(wrong, decoyForm)
		for i := 0; i < s.ansLen; i++ {
			w := uniqueWord(r, lex, ansTopic, usedConcepts)
			note(lex.ConceptOf(w))
			wrong = append(wrong, w)
		}
		wrong = append(wrong, lex.EOSID())
		c := r.Intn(nChunks)
		for takenChunks[c] {
			c = r.Intn(nChunks)
		}
		takenChunks[c] = true
		plants = append(plants, planted{chunk: c, span: wrong})
	}
	// Few-shot example spans: independent trigger/answer pairs that make
	// the prompt look like in-context examples (TriviaQA/SAMSum style).
	for k := 0; k < s.fewShot; k++ {
		exTrig := multiFormConcept(r, lex, needleTopic, usedConcepts)
		note(exTrig)
		ex := []int{lex.FormsOf(exTrig)[0]}
		for i := 0; i < 2; i++ {
			w := uniqueWord(r, lex, ansTopic, usedConcepts)
			note(lex.ConceptOf(w))
			ex = append(ex, w)
		}
		ex = append(ex, lex.EOSID())
		c := r.Intn(nChunks)
		for takenChunks[c] {
			c = r.Intn(nChunks)
		}
		takenChunks[c] = true
		plants = append(plants, planted{chunk: c, span: ex})
	}

	for _, ch := range chunks {
		scrub(ch)
	}
	scrub(tail)

	// Plant needle. A fraction of samples mention the anchors only once —
	// retrieval visibility varies in real corpora, which is what makes the
	// α threshold consequential (Figure 7): weakly visible needles sit in
	// the mid score band and fall to INT2 when α grows.
	visibility := r.Float64()
	for i, a := range anchors {
		// Each anchor is mentioned twice in well-covered samples; weakly
		// covered samples (40%) mention anchors once, leaving the needle
		// in the mid similarity band — protected at the paper's operating
		// point, but lost once α pushes T_low into the mid band (Fig. 7).
		chunks[needleChunk][2*i] = lex.FormsOf(a)[0]
		if visibility >= 0.4 {
			chunks[needleChunk][2*i+1] = lex.FormsOf(a)[0]
		}
	}
	copy(chunks[needleChunk][2*len(anchors):], span)
	// Plant decoys and few-shot examples at chunk starts. Decoy chunks are
	// hard negatives: they also mention the query's anchor entities (in
	// alternate surface forms), so a concept-aware encoder scores them as
	// relevant and Module I keeps them at mid/high precision — anchors'
	// followers never hijack the induction chain because anchor words are
	// never generated.
	for _, p := range plants {
		copy(chunks[p.chunk], p.span)
		for i, a := range anchors {
			if i >= 2 {
				break
			}
			alt := lex.AlternateForm(r, a, lex.FormsOf(a)[0])
			for rep := 0; rep < 2; rep++ {
				slot := len(p.span) + 2*i + rep*5
				if slot < cs {
					chunks[p.chunk][slot] = alt
				}
			}
		}
	}

	var ctx []int
	for _, ch := range chunks {
		ctx = append(ctx, ch...)
	}
	ctx = append(ctx, tail...)

	// Query: paraphrased anchors, a glue word, then the exact trigger.
	var query []int
	for _, a := range anchors {
		query = append(query, lex.AlternateForm(r, a, lex.FormsOf(a)[0]))
	}
	query = append(query, lex.FunctionWordIDs()[0], trigForm)

	return Sample{
		Context:        ctx,
		Query:          query,
		Answer:         answer,
		RelevantChunks: []int{needleChunk},
	}
}

// genTREC builds the few-shot classification task: each class has a
// signature concept; the context holds "sig label <eos>" examples; the
// query names a signature and the answer is its class label.
func genTREC(r *rngx.RNG, lex *corpus.Lexicon, cfg GenConfig) Sample {
	cfg = cfg.withDefaults()
	cs := cfg.ChunkSize
	nChunks := cfg.ContextTokens / cs
	topics := lex.ProseTopics()
	chunks, _ := lex.PassageChunks(r, nChunks, cs, topics)
	tail := lex.Sentence(r, topics[r.Intn(len(topics))], cfg.ContextTokens%cs)

	labels := lex.LabelConcepts()
	nClasses := 6
	if nClasses > len(labels) {
		nClasses = len(labels)
	}
	sigTopic := topics[r.Intn(len(topics))]
	usedConcepts := map[int]bool{}
	sigs := make([]int, nClasses)
	blocked := map[int]bool{}
	for i := range sigs {
		sigs[i] = multiFormConcept(r, lex, sigTopic, usedConcepts)
		for _, id := range lex.FormsOf(sigs[i]) {
			blocked[id] = true
		}
	}
	for _, c := range labels {
		blocked[lex.FormsOf(c)[0]] = true
	}
	fw := lex.FunctionWordIDs()
	for _, ch := range chunks {
		for i, id := range ch {
			if blocked[id] {
				ch[i] = fw[(i+1)%len(fw)]
			}
		}
	}
	for i, id := range tail {
		if blocked[id] {
			tail[i] = fw[(i+1)%len(fw)]
		}
	}

	// Two examples per class, each at the start of its own chunk. The
	// signature concept is mentioned twice per chunk — once with the exact
	// form (the example the induction head copies from) and once with the
	// synonym form (extra encoder signal that cannot hijack the induction
	// match, since its follower only scores at the synonym margin).
	target := r.Intn(nClasses)
	taken := map[int]bool{}
	var relevant []int
	for class := 0; class < nClasses; class++ {
		sigForm := lex.FormsOf(sigs[class])[0]
		altForm := lex.AlternateForm(r, sigs[class], sigForm)
		labelWord := lex.FormsOf(labels[class])[0]
		for e := 0; e < 2; e++ {
			c := r.Intn(nChunks)
			for taken[c] {
				c = r.Intn(nChunks)
			}
			taken[c] = true
			copy(chunks[c], []int{sigForm, labelWord, lex.EOSID()})
			chunks[c][4] = altForm
			if class == target {
				relevant = append(relevant, c)
			}
		}
	}

	var ctx []int
	for _, ch := range chunks {
		ctx = append(ctx, ch...)
	}
	ctx = append(ctx, tail...)

	sigForm := lex.FormsOf(sigs[target])[0]
	query := []int{lex.AlternateForm(r, sigs[target], sigForm), fw[0], sigForm}
	return Sample{
		Context:        ctx,
		Query:          query,
		Answer:         []int{lex.FormsOf(labels[target])[0]},
		RelevantChunks: relevant,
	}
}

// Surfaces maps token ids to surface strings for metric scoring.
func Surfaces(lex *corpus.Lexicon, ids []int) []string {
	return lex.SurfacesOf(ids)
}
