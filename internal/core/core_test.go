package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/datasets"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/rngx"
)

func fixture(t *testing.T) (*corpus.Lexicon, *model.Model, datasets.Sample, *kvcache.Builder) {
	t.Helper()
	lex := corpus.NewLexicon(corpus.Defaults(1))
	m, err := model.New(model.Registry(2048)[0], lex)
	if err != nil {
		t.Fatal(err)
	}
	d, err := datasets.ByName("Qasper")
	if err != nil {
		t.Fatal(err)
	}
	s := d.Gen(rngx.New(5), lex, datasets.GenConfig{ContextTokens: 512})
	b, err := m.Prefill(s.Context)
	if err != nil {
		t.Fatal(err)
	}
	return lex, m, s, b
}

func TestMethodsRoster(t *testing.T) {
	lex := corpus.NewLexicon(corpus.Defaults(1))
	ms := Methods(lex)
	want := []string{"FP16", "Atom", "KIVI", "KVQuant", "Cocktail"}
	if len(ms) != len(want) {
		t.Fatalf("got %d methods", len(ms))
	}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d = %q, want %q", i, m.Name(), want[i])
		}
	}
	if _, err := MethodByName(lex, "Cocktail"); err != nil {
		t.Fatal(err)
	}
	if _, err := MethodByName(lex, "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestAllMethodsPrepareAndGenerate(t *testing.T) {
	lex, m, s, b := fixture(t)
	for _, meth := range append(Methods(lex), AblationMethods(lex)[1:]...) {
		cache, plan, err := Prepare(meth, b, s.Context, s.Query)
		if err != nil {
			t.Fatalf("%s: %v", meth.Name(), err)
		}
		if plan.NumTokens != len(s.Context) {
			t.Fatalf("%s: plan covers %d tokens", meth.Name(), plan.NumTokens)
		}
		out := m.Generate(cache, s.Query, 16)
		if len(out) == 0 {
			t.Fatalf("%s: empty generation", meth.Name())
		}
		prof := meth.CostProfile()
		if prof.Name == "" || prof.SearchSeconds == nil || prof.RunsPerHead == nil {
			t.Fatalf("%s: incomplete cost profile", meth.Name())
		}
	}
}

// TestCocktailProtectsNeedleChunks: the plan must keep the ground-truth
// relevant chunks at a higher precision than the context average.
func TestCocktailProtectsNeedleChunks(t *testing.T) {
	lex, _, s, b := fixture(t)
	ct := NewCocktail(lex)
	_, plan, err := Prepare(ct, b, s.Context, s.Query)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.RelevantChunks {
		if plan.ChunkPrec[c] == kvcache.INT2 {
			t.Fatalf("relevant chunk %d assigned INT2", c)
		}
	}
	if plan.Counts()[kvcache.INT2] == 0 {
		t.Fatal("no chunk was assigned INT2 — search is not selective")
	}
	if !plan.Reorder {
		t.Fatal("Cocktail plan should reorder")
	}
}

// TestCocktailBeatsUniformLowBit: end-to-end, Cocktail accuracy must be
// close to FP16 and clearly above the similarity-blind ablation.
func TestCocktailBeatsUniformLowBit(t *testing.T) {
	lex := corpus.NewLexicon(corpus.Defaults(1))
	m, err := model.New(model.Registry(2048)[0], lex)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := datasets.ByName("Qasper")
	ct := NewCocktail(lex)
	abl := AblationMethods(lex)[1] // w/o Module I
	fp, _ := MethodByName(lex, "FP16")

	score := func(meth Method) float64 {
		r := rngx.New(99)
		var total float64
		const trials = 15
		for i := 0; i < trials; i++ {
			s := d.Gen(r, lex, datasets.GenConfig{ContextTokens: 512})
			b, err := m.Prefill(s.Context)
			if err != nil {
				t.Fatal(err)
			}
			cache, _, err := Prepare(meth, b, s.Context, s.Query)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Generate(cache, s.Query, 16)
			total += metrics.Score(d.Metric, datasets.Surfaces(lex, pred), datasets.Surfaces(lex, s.Answer))
		}
		return total / trials
	}

	sFP, sCT, sAbl := score(fp), score(ct), score(abl)
	if sCT < sFP-0.15 {
		t.Fatalf("Cocktail %v too far below FP16 %v", sCT, sFP)
	}
	if sCT <= sAbl {
		t.Fatalf("Cocktail %v should beat w/o-Module-I %v", sCT, sAbl)
	}
}

func TestEncoderRoster(t *testing.T) {
	lex := corpus.NewLexicon(corpus.Defaults(1))
	encs := Encoders(lex)
	if len(encs) != 4 {
		t.Fatalf("got %d encoders", len(encs))
	}
	for _, name := range []string{"contriever", "bm25", "ada-002", "llm-embedder"} {
		if _, err := EncoderByName(lex, name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := EncoderByName(lex, "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPrepareRejectsMismatchedContext(t *testing.T) {
	lex, _, s, b := fixture(t)
	ct := NewCocktail(lex)
	if _, _, err := Prepare(ct, b, s.Context[:100], s.Query); err == nil {
		t.Fatal("expected context mismatch error")
	}
}
