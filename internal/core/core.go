// Package core assembles the paper's system: it defines the Method
// abstraction every KV-cache quantization policy implements (the FP16
// baseline, Atom, KIVI, KVQuant and Cocktail itself, plus the Table V
// ablations) and the Cocktail pipeline that wires Module I (chunk-level
// quantization search over a retrieval encoder) to Module II (chunk
// reordering + segment attention in the kvcache).
package core

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/kvcache"
	"repro/internal/quant"
	"repro/internal/rngx"
	"repro/internal/search"
)

// Method is one KV-cache quantization policy. Plan decides the precision
// assignment (and kernel options) for one request without touching the
// cache; Prepare seals a builder under that plan. Splitting the two lets
// session stores reuse a sealed cache whenever a new query produces the
// same plan, re-quantizing only when the plan actually changes.
// CostProfile exposes the method's cost behaviour to the hardware model.
//
// Methods are immutable after construction and safe for concurrent use;
// the Builder passed to Plan/Prepare is only read.
type Method interface {
	Name() string
	// Plan chooses the per-chunk precisions and quantization kernel
	// options for one (context, query) request. The builder is read-only
	// (some baselines inspect raw KV statistics, e.g. KVQuant outliers).
	Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error)
	// CostProfile returns the hwmodel profile used by Figures 4-6.
	CostProfile() hwmodel.Profile
}

// Prepare plans and seals the context KV cache for one request: the
// historical one-shot path (cold requests, experiment drivers). Session
// stores call Plan and SealWith separately to insert a cache-reuse lookup
// between the two.
func Prepare(m Method, b *kvcache.Builder, ctx, query []int) (*kvcache.Cache, *kvcache.Plan, error) {
	plan, opts, err := m.Plan(b, ctx, query)
	if err != nil {
		return nil, nil, err
	}
	c, err := b.SealWith(plan, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, plan, nil
}

// ChunkSize is the paper's default chunk granularity.
const ChunkSize = 32

// fp16 is the unquantized baseline.
type fp16 struct{}

func (fp16) Name() string { return "FP16" }
func (fp16) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	return baselines.FP16Plan(b.NumTokens(), ChunkSize), kvcache.SealOptions{}, nil
}
func (fp16) CostProfile() hwmodel.Profile { return hwmodel.ProfileFP16() }

// atom is uniform INT4 per-token group quantization.
type atom struct{}

func (atom) Name() string { return "Atom" }
func (atom) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	plan := baselines.AtomPlan(b.NumTokens(), ChunkSize)
	var cfg kvcache.Config
	baselines.AtomConfigure(&cfg)
	return plan, kvcache.SealOptions{KAxis: cfg.KAxis, VAxis: cfg.VAxis}, nil
}
func (atom) CostProfile() hwmodel.Profile { return hwmodel.ProfileAtom() }

// kivi is uniform INT4 with per-channel keys.
type kivi struct{}

func (kivi) Name() string { return "KIVI" }
func (kivi) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	plan := baselines.KIVIPlan(b.NumTokens(), ChunkSize)
	var cfg kvcache.Config
	baselines.KIVIConfigure(&cfg)
	return plan, kvcache.SealOptions{KAxis: cfg.KAxis, VAxis: cfg.VAxis}, nil
}
func (kivi) CostProfile() hwmodel.Profile { return hwmodel.ProfileKIVI() }

// kvquant is token-level mixed precision with nuq codebooks.
type kvquant struct{ outlierFrac float64 }

func (kvquant) Name() string { return "KVQuant" }
func (k kvquant) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	plan := baselines.KVQuantPlan(b, ChunkSize, k.outlierFrac)
	var cfg kvcache.Config
	baselines.KVQuantConfigure(&cfg)
	return plan, kvcache.SealOptions{
		KAxis: cfg.KAxis, VAxis: cfg.VAxis, UseCodebook: cfg.UseCodebook}, nil
}
func (k kvquant) CostProfile() hwmodel.Profile { return hwmodel.ProfileKVQuant(k.outlierFrac) }

// Cocktail is the paper's method: Module I search + Module II computation.
type Cocktail struct {
	Encoder encoder.Encoder
	Search  search.Config
}

// NewCocktail builds the default pipeline: Facebook-Contriever encoder,
// α=0.6, β=0.1, chunk size 32, reordering on.
func NewCocktail(lex *corpus.Lexicon) *Cocktail {
	return &Cocktail{Encoder: encoder.NewContriever(lex), Search: search.Default()}
}

// Name identifies the method.
func (c *Cocktail) Name() string { return "Cocktail" }

// Plan runs chunk-level quantization search (Module I) and returns the
// query-adaptive plan with Cocktail's kernel options.
func (c *Cocktail) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	if len(ctx) != b.NumTokens() {
		return nil, kvcache.SealOptions{}, fmt.Errorf("core: context length %d does not match builder %d", len(ctx), b.NumTokens())
	}
	res, err := search.Run(c.Encoder, ctx, query, c.Search)
	if err != nil {
		return nil, kvcache.SealOptions{}, err
	}
	return res.Plan, cocktailSealOptions(), nil
}

// cocktailSealOptions selects Cocktail's quantization kernels: per-channel
// keys and per-token values (the KIVI axis choice, state of the art for KV
// caches and strictly better on K matching error).
func cocktailSealOptions() kvcache.SealOptions {
	return kvcache.SealOptions{KAxis: quant.PerChannel, VAxis: quant.PerToken}
}

// CostProfile uses the default measured precision mix; experiment drivers
// that have real plans use hwmodel.ProfileFromPlan instead.
func (c *Cocktail) CostProfile() hwmodel.Profile {
	return hwmodel.ProfileCocktail(c.Search.ChunkSize, nil)
}

// cocktailNoSearch is the Table V "w/o Module I" ablation: the same
// precision proportions as Cocktail's operating point, assigned to chunks
// at random (similarity-blind), still reordered. Accuracy collapses while
// memory and latency stay at Cocktail levels.
type cocktailNoSearch struct{ frac map[kvcache.Precision]float64 }

func (cocktailNoSearch) Name() string { return "Cocktail w/o Module I" }
func (a cocktailNoSearch) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	n := b.NumTokens()
	plan := kvcache.UniformPlan(n, ChunkSize, kvcache.INT4, true)
	// Deterministic similarity-blind assignment with Cocktail proportions.
	r := rngx.New(uint64(n)*0x9e37 + 0xab1e)
	for i := range plan.ChunkPrec {
		x := r.Float64()
		switch {
		case x < a.frac[kvcache.INT2]:
			plan.ChunkPrec[i] = kvcache.INT2
		case x < a.frac[kvcache.INT2]+a.frac[kvcache.INT4]:
			plan.ChunkPrec[i] = kvcache.INT4
		default:
			plan.ChunkPrec[i] = kvcache.FP16
		}
	}
	return plan, cocktailSealOptions(), nil
}
func (a cocktailNoSearch) CostProfile() hwmodel.Profile {
	return hwmodel.ProfileCocktail(ChunkSize, a.frac)
}

// cocktailNoReorder is the Table V "w/o Module II" ablation: real search,
// but chunks stay in logical order, so the runtime falls back to a full
// FP16 dequantization workspace.
type cocktailNoReorder struct{ inner *Cocktail }

func (cocktailNoReorder) Name() string { return "Cocktail w/o Module II" }
func (a cocktailNoReorder) Plan(b *kvcache.Builder, ctx, query []int) (*kvcache.Plan, kvcache.SealOptions, error) {
	cfg := a.inner.Search
	cfg.Reorder = false
	res, err := search.Run(a.inner.Encoder, ctx, query, cfg)
	if err != nil {
		return nil, kvcache.SealOptions{}, err
	}
	return res.Plan, cocktailSealOptions(), nil
}
func (a cocktailNoReorder) CostProfile() hwmodel.Profile {
	return hwmodel.ProfileCocktailNoReorder(a.inner.Search.ChunkSize, nil)
}

// Methods returns the Table II comparison set in paper order:
// FP16, Atom, KIVI, KVQuant, Cocktail.
func Methods(lex *corpus.Lexicon) []Method {
	return []Method{
		fp16{},
		atom{},
		kivi{},
		kvquant{outlierFrac: baselines.DefaultOutlierFraction},
		NewCocktail(lex),
	}
}

// MethodByName returns one of the Table II methods by name.
func MethodByName(lex *corpus.Lexicon, name string) (Method, error) {
	for _, m := range Methods(lex) {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("core: unknown method %q", name)
}

// AblationMethods returns the Table V rows: baseline FP16, w/o Module I,
// w/o Module II, and full Cocktail.
func AblationMethods(lex *corpus.Lexicon) []Method {
	return []Method{
		fp16{},
		cocktailNoSearch{frac: hwmodel.CocktailFractions()},
		cocktailNoReorder{inner: NewCocktail(lex)},
		NewCocktail(lex),
	}
}

// EncoderByName builds one of the Table IV encoders.
func EncoderByName(lex *corpus.Lexicon, name string) (encoder.Encoder, error) {
	switch name {
	case "contriever", "Facebook-Contriever":
		return encoder.NewContriever(lex), nil
	case "llm-embedder", "LLM Embedder":
		return encoder.NewLLMEmbedder(lex), nil
	case "ada-002", "ADA-002":
		return encoder.NewADA002(lex), nil
	case "bm25", "BM25":
		return encoder.NewBM25(lex), nil
	}
	return nil, fmt.Errorf("core: unknown encoder %q", name)
}

// Encoders returns the Table IV encoder set in paper row order.
func Encoders(lex *corpus.Lexicon) []encoder.Encoder {
	return []encoder.Encoder{
		encoder.NewADA002(lex),
		encoder.NewBM25(lex),
		encoder.NewLLMEmbedder(lex),
		encoder.NewContriever(lex),
	}
}
