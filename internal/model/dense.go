package model

// Dense-weights execution path.
//
// The main implementation specializes the constructed circuit: projection
// matrices that are block-sparse selectors are applied as slice operations.
// This file materializes the same circuit as explicit dense weight
// matrices (Wq, Wk, Wv per layer over a residual stream) and runs
// attention through tensor matmuls, so the specialization can be verified:
// TestDenseMatchesFast asserts both paths produce identical KV rows and
// identical generations.
//
// The residual stream is laid out as three stacked subspaces:
//
//	[ content (Dim) | prev-content (Dim) | position (Dim) ]
//
// Layer 0 reads queries from the position block (shifted by one), keys
// from the position block, values from the content block, and writes its
// output to the prev-content block. Layer 1 reads queries from content,
// keys from prev-content, values from content.

import (
	"fmt"

	"repro/internal/kvcache"
	"repro/internal/mathx"
	"repro/internal/tensor"
)

// DenseModel executes the induction circuit through explicit weight
// matrices. It is built from (and shares embeddings with) a Model.
type DenseModel struct {
	m *Model
	// Per layer: projections from the 3*Dim residual stream to Dim-sized
	// heads. Wq also folds the attention gain and inverse channel gains;
	// Wk folds the channel gains.
	wq, wk, wv [Layers]*tensor.Mat
}

// NewDense materializes the dense weights of m's circuit.
func NewDense(m *Model) *DenseModel {
	d := m.cfg.Dim
	dm := &DenseModel{m: m}

	// Block offsets within the residual stream.
	const (
		blkContent = 0
		blkPrev    = 1
		blkPos     = 2
	)
	sel := func(block int, scale []float32, gamma float32) *tensor.Mat {
		w := tensor.New(d, 3*d)
		for i := 0; i < d; i++ {
			s := float32(1)
			if scale != nil {
				s = scale[i]
			}
			w.Set(i, block*d+i, s*gamma)
		}
		return w
	}

	// Layer 0: q from position block with inverse gains and gamma1
	// (the position shift is applied to the input, as in the fast path),
	// k from position block with channel gains, v from content.
	dm.wq[0] = sel(blkPos, m.invGain, m.cfg.Gamma1)
	dm.wk[0] = sel(blkPos, m.chGain, 1)
	dm.wv[0] = sel(blkContent, nil, 1)
	// Layer 1: q from content with inverse gains and gamma2, k from
	// prev-content with channel gains, v from content.
	dm.wq[1] = sel(blkContent, m.invGain, m.cfg.Gamma2)
	dm.wk[1] = sel(blkPrev, m.chGain, 1)
	dm.wv[1] = sel(blkContent, nil, 1)
	return dm
}

// residual builds the pre-layer-0 residual stream for a token at a
// position: content embedding, empty prev-content, and the *previous*
// position's vector in the position-key slot paired with the own position
// vector used for keys. To keep the stream a single vector (as in a real
// transformer with relative-position keys), the query-side shift is
// handled by writing pos(j-1) into the position block of the query input
// and pos(j) into the key input.
func (dm *DenseModel) residual(tok, pos int, posVec []float32) []float32 {
	d := dm.m.cfg.Dim
	r := make([]float32, 3*d)
	copy(r[0:d], dm.m.emb[tok])
	copy(r[2*d:3*d], posVec)
	return r
}

// Prefill runs the dense path over the context and returns the KV builder.
// The produced rows must match Model.Prefill exactly (up to float32
// associativity, which is preserved because the same dot orders are used).
func (dm *DenseModel) Prefill(context []int) (*kvcache.Builder, error) {
	m := dm.m
	if len(context) > m.cfg.MaxSeq {
		return nil, fmt.Errorf("model: context length %d exceeds MaxSeq %d", len(context), m.cfg.MaxSeq)
	}
	cfg := m.CacheConfig()
	b := kvcache.NewBuilder(cfg)
	d := m.cfg.Dim
	scores := make([]float32, 0, len(context))
	for j, tok := range context {
		if tok < 0 || tok >= len(m.emb) {
			return nil, fmt.Errorf("model: token id %d out of vocabulary", tok)
		}
		b.BeginToken()

		// Key/value input: residual with own position vector.
		rin := dm.residual(tok, j, m.positionVec(j))
		k0 := dm.wk[0].MulVec(rin)
		if isSink(j) {
			for i := 0; i < d; i += outlierChannelStride {
				k0[i] += sinkSpike
			}
		}
		v0 := dm.wv[0].MulVec(rin)
		b.Append(0, 0, k0, v0)

		// Query input: residual with the previous position's vector.
		rq := dm.residual(tok, j, m.positionVec(j-1))
		q0 := dm.wq[0].MulVec(rq)

		scores = scores[:0]
		for t := 0; t <= j; t++ {
			scores = append(scores, mathx.Dot(q0, b.KRow(0, 0, t)))
		}
		mathx.Softmax(scores)
		bvec := make([]float32, d)
		for t := 0; t <= j; t++ {
			mathx.Axpy(scores[t], b.VRow(0, 0, t), bvec)
		}

		// Layer-1 K/V from the post-layer-0 residual (prev block filled).
		r1 := dm.residual(tok, j, m.positionVec(j))
		copy(r1[d:2*d], bvec)
		k1 := dm.wk[1].MulVec(r1)
		if isSink(j) {
			for i := 0; i < d; i += outlierChannelStride {
				k1[i] += sinkSpike
			}
		}
		b.Append(1, 0, k1, dm.wv[1].MulVec(r1))
	}
	return b, nil
}

// Generate mirrors Model.Generate on the dense path.
func (dm *DenseModel) Generate(cache *kvcache.Cache, query []int, maxNew int) []int {
	m := dm.m
	d := m.cfg.Dim
	pos := cache.ContextTokens()
	bvec := make([]float32, d)
	ovec := make([]float32, d)

	step := func(tok int) int {
		rq := dm.residual(tok, pos, m.positionVec(pos-1))
		q0 := dm.wq[0].MulVec(rq)
		cache.Attend(0, 0, q0, 1, bvec)

		r1 := dm.residual(tok, pos, m.positionVec(pos))
		copy(r1[d:2*d], bvec)
		q1 := dm.wq[1].MulVec(r1)
		cache.Attend(1, 0, q1, 1, ovec)

		cache.BeginToken()
		k0 := dm.wk[0].MulVec(r1)
		cache.AppendTail(0, 0, k0, dm.wv[0].MulVec(r1))
		k1 := dm.wk[1].MulVec(r1)
		cache.AppendTail(1, 0, k1, dm.wv[1].MulVec(r1))
		pos++
		return m.Unembed(ovec)
	}

	next := -1
	for _, tok := range query {
		next = step(tok)
	}
	var out []int
	eos := m.lex.EOSID()
	for len(out) < maxNew && next != eos && next >= 0 {
		out = append(out, next)
		next = step(next)
	}
	return out
}
