package model

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/kvcache"
	"repro/internal/rngx"
)

func testLex() *corpus.Lexicon {
	return corpus.NewLexicon(corpus.Defaults(1))
}

func testModel(t *testing.T) *Model {
	t.Helper()
	cfg := Registry(2048)[0]
	m, err := New(cfg, testLex())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// buildSample plants a needle "trigger a1 a2 a3 <eos>" into distractor text
// and returns context, query and expected answer ids. If decoys > 0, spans
// "synonym w1 w2 w3 <eos>" with wrong continuations are planted too.
func buildSample(r *rngx.RNG, lex *corpus.Lexicon, nTokens, ansLen, decoys int) (ctx, query, answer []int) {
	prose := lex.ProseTopics()
	chunks, _ := lex.PassageChunks(r, nTokens/32, 32, prose)
	for _, c := range chunks {
		ctx = append(ctx, c...)
	}
	// Pick a trigger concept with at least two forms so decoys can
	// paraphrase, and unique answer words from one topic.
	var trigConcept int
	for {
		tp := prose[r.Intn(len(prose))]
		cs := lex.TopicConcepts(tp)
		trigConcept = cs[r.Intn(len(cs))]
		if len(lex.FormsOf(trigConcept)) >= 2 {
			break
		}
	}
	trigForm := lex.FormsOf(trigConcept)[0]
	ansTopic := prose[r.Intn(len(prose))]
	used := map[int]bool{}
	pick := func() int {
		for {
			c := lex.TopicConcepts(ansTopic)[r.Intn(len(lex.TopicConcepts(ansTopic)))]
			id := lex.FormsOf(c)[0]
			if !used[id] {
				used[id] = true
				return id
			}
		}
	}
	for i := 0; i < ansLen; i++ {
		answer = append(answer, pick())
	}
	// Remove accidental occurrences of needle words from distractor text.
	blocked := map[int]bool{}
	for _, id := range lex.FormsOf(trigConcept) {
		blocked[id] = true
	}
	for _, id := range answer {
		blocked[id] = true
	}
	filler := lex.FunctionWordIDs()[0]
	for i, id := range ctx {
		if blocked[id] {
			ctx[i] = filler
		}
	}
	// Plant the needle at a random chunk-interior offset.
	span := append([]int{trigForm}, answer...)
	span = append(span, lex.EOSID())
	pos := r.Intn(len(ctx) - len(span) - 64)
	copy(ctx[pos:], span)
	// Plant decoys using the alternate surface form and wrong answers
	// (wrong words were reserved via used, so they are unique in context).
	alt := lex.AlternateForm(r, trigConcept, trigForm)
	for k := 0; k < decoys; k++ {
		wrong := make([]int, 0, ansLen+2)
		wrong = append(wrong, alt)
		for i := 0; i < ansLen; i++ {
			w := pick()
			for j, id := range ctx {
				if id == w {
					ctx[j] = filler
				}
			}
			wrong = append(wrong, w)
		}
		wrong = append(wrong, lex.EOSID())
		dpos := r.Intn(len(ctx) - len(wrong))
		if dpos < pos+len(span) && dpos+len(wrong) > pos { // avoid overlap
			continue
		}
		copy(ctx[dpos:], wrong)
	}
	// Query: a few function words then the trigger (same surface form here;
	// datasets exercise paraphrase via the encoder side).
	query = []int{filler, lex.FunctionWordIDs()[1], trigForm}
	return ctx, query, answer
}

func runSample(t *testing.T, m *Model, ctx, query []int, prec kvcache.Precision) []int {
	t.Helper()
	b, err := m.Prefill(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cc := m.CacheConfig()
	cc.GroupSize = 32
	cache, err := b.Seal(kvcache.UniformPlan(len(ctx), 32, prec, true))
	if err != nil {
		t.Fatal(err)
	}
	_ = cc
	return m.Generate(cache, query, 16)
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConfigValidate(t *testing.T) {
	cfg := Registry(128)[0]
	cfg.TopicWeight = 0.9
	if cfg.Validate() == nil {
		t.Fatal("expected weight-sum error")
	}
	cfg = Registry(128)[0]
	cfg.Dim = 0
	if cfg.Validate() == nil {
		t.Fatal("expected dim error")
	}
}

func TestEmbeddingStructure(t *testing.T) {
	m := testModel(t)
	lex := m.Lexicon()
	// Find a two-form concept: synonyms should be much closer than
	// random same-topic words.
	for c := 0; c < lex.NumConcepts(); c++ {
		forms := lex.FormsOf(c)
		if len(forms) < 2 {
			continue
		}
		synCos := cos(m.Embedding(forms[0]), m.Embedding(forms[1]))
		if synCos < 0.6 || synCos > 0.98 {
			t.Fatalf("synonym cos = %v, want within (0.6, 0.98)", synCos)
		}
		return
	}
	t.Fatal("no synonym found")
}

func cos(a, b []float32) float64 {
	var num, na, nb float64
	for i := range a {
		num += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return num / math.Sqrt(na*nb)
}

func TestExactRecallFP16(t *testing.T) {
	m := testModel(t)
	r := rngx.New(100)
	ok := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		ctx, query, answer := buildSample(r, m.Lexicon(), 512, 4, 0)
		got := runSample(t, m, ctx, query, kvcache.FP16)
		if equalIDs(got, answer) {
			ok++
		}
	}
	if ok < trials*9/10 {
		t.Fatalf("FP16 recall %d/%d, want >= 90%%", ok, trials)
	}
}

func TestINT4RecallNearFP16(t *testing.T) {
	m := testModel(t)
	r := rngx.New(200)
	ok := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		ctx, query, answer := buildSample(r, m.Lexicon(), 512, 4, 3)
		got := runSample(t, m, ctx, query, kvcache.INT4)
		if equalIDs(got, answer) {
			ok++
		}
	}
	if ok < trials*6/10 {
		t.Fatalf("INT4 recall %d/%d, want >= 60%%", ok, trials)
	}
}

func TestINT2BreaksRecallWithDecoys(t *testing.T) {
	m := testModel(t)
	r := rngx.New(300)
	okINT2, okFP16 := 0, 0
	// Longer answers compound per-step INT2 failures (chained induction),
	// mirroring the summarization datasets.
	const trials = 30
	for i := 0; i < trials; i++ {
		ctx, query, answer := buildSample(r, m.Lexicon(), 512, 6, 4)
		if equalIDs(runSample(t, m, ctx, query, kvcache.INT2), answer) {
			okINT2++
		}
		if equalIDs(runSample(t, m, ctx, query, kvcache.FP16), answer) {
			okFP16++
		}
	}
	if okINT2 >= okFP16 {
		t.Fatalf("INT2 (%d/%d) should be below FP16 (%d/%d)", okINT2, trials, okFP16, trials)
	}
	if okFP16-okINT2 < trials/5 {
		t.Fatalf("INT2 degradation too small: FP16 %d vs INT2 %d", okFP16, okINT2)
	}
}

// TestMixedPlanProtectsNeedle: keeping only the needle chunk FP16 and
// everything else INT2 must restore most of the accuracy — the core
// Cocktail claim at model level.
func TestMixedPlanProtectsNeedle(t *testing.T) {
	m := testModel(t)
	r := rngx.New(400)
	okMixed, okINT2 := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		ctx, query, answer := buildSample(r, m.Lexicon(), 512, 4, 3)
		b, err := m.Prefill(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle plan mirroring what Module I produces: chunks containing
		// any form of the trigger concept (the needle and the synonym
		// decoys, which a concept-aware encoder necessarily scores as
		// relevant) stay FP16; everything else drops to INT2.
		plan := kvcache.UniformPlan(len(ctx), 32, kvcache.INT2, true)
		pos := findSubseq(ctx, answer)
		if pos < 0 {
			t.Fatal("answer span not found in context")
		}
		trigConcept := m.Lexicon().ConceptOf(query[len(query)-1])
		for t2, id := range ctx {
			inSpan := t2 >= pos-1 && t2 <= pos+len(answer)
			if inSpan || m.Lexicon().ConceptOf(id) == trigConcept {
				if c := t2 / 32; c < len(plan.ChunkPrec) {
					plan.ChunkPrec[c] = kvcache.FP16
				}
			}
		}
		cache, err := b.Seal(plan)
		if err != nil {
			t.Fatal(err)
		}
		if equalIDs(m.Generate(cache, query, 16), answer) {
			okMixed++
		}
		if equalIDs(runSample(t, m, ctx, query, kvcache.INT2), answer) {
			okINT2++
		}
	}
	if okMixed <= okINT2 {
		t.Fatalf("oracle mixed plan (%d) should beat uniform INT2 (%d)", okMixed, okINT2)
	}
}

// findSubseq returns the first index where needle appears in haystack.
func findSubseq(haystack, needle []int) int {
outer:
	for i := 0; i+len(needle) <= len(haystack); i++ {
		for j, v := range needle {
			if haystack[i+j] != v {
				continue outer
			}
		}
		return i
	}
	return -1
}

func TestGenerateStopsAtEOS(t *testing.T) {
	m := testModel(t)
	r := rngx.New(500)
	ctx, query, answer := buildSample(r, m.Lexicon(), 512, 3, 0)
	got := runSample(t, m, ctx, query, kvcache.FP16)
	if len(got) > len(answer)+2 {
		t.Fatalf("generation did not stop near EOS: %d tokens", len(got))
	}
	for _, id := range got {
		if id == m.Lexicon().EOSID() {
			t.Fatal("EOS id leaked into output")
		}
	}
}

func TestPrefillRejectsTooLong(t *testing.T) {
	cfg := Registry(64)[0]
	m, err := New(cfg, testLex())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Prefill(make([]int, 65)); err == nil {
		t.Fatal("expected MaxSeq error")
	}
}

func TestPrefillRejectsBadToken(t *testing.T) {
	m := testModel(t)
	if _, err := m.Prefill([]int{0, 1, 1 << 30}); err == nil {
		t.Fatal("expected OOV error")
	}
}

func TestRegistryModelsDistinct(t *testing.T) {
	regs := Registry(1024)
	if len(regs) != 4 {
		t.Fatalf("Registry has %d entries", len(regs))
	}
	seen := map[string]bool{}
	for _, cfg := range regs {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", cfg.Name, err)
		}
		if seen[cfg.Name] {
			t.Fatal("duplicate model name")
		}
		seen[cfg.Name] = true
	}
}
