// Package model implements the pure-Go decoder-only transformer substrate
// the experiments run on.
//
// Why constructed weights. The paper's accuracy results hinge on one
// mechanism: the model retrieves answer content from the context *through
// attention over the KV cache*, so corrupting the KV of query-relevant
// context destroys answers while corrupting irrelevant context is nearly
// free. A randomly initialized transformer has no such mechanism and
// pretrained weights are unavailable offline, so we build the canonical
// minimal circuit that has it: a two-layer attention-only transformer with
// analytically constructed induction heads (Elhage et al., 2021):
//
//	layer 0 — previous-token head: position-keyed attention writes the
//	          previous token's content into the residual stream;
//	layer 1 — induction head: content-keyed attention matches the current
//	          token against stored previous-token content and copies the
//	          *following* token's content to the output.
//
// Greedy decoding chains the circuit: emitting token t makes the model look
// up "what followed t in the context", which replays planted spans —
// QA answers, summaries, code completions.
//
// Everything quantization touches is real: per-layer K/V rows live in
// internal/kvcache, decode attention runs the paper's Algorithm 1 over
// mixed-precision segments, and the circuit's error tolerance is set by
// the geometry (embedding dimension, attention gain, synonym structure),
// so INT4 barely perturbs retrieval while INT2 flips matches to decoy
// continuations — the graded degradation the paper measures.
//
// Embeddings are concept-structured Gaussians shared with the dense
// retrieval encoders' notion of meaning: e(word) = √a·topic + √b·concept +
// √c·surface. Synonyms are close (cos ≈ a+b) but distinct, which both makes
// paraphrased queries work and gives quantization noise realistic decoys to
// fail onto.
package model

import (
	"fmt"
	"math"

	"repro/internal/corpus"
	"repro/internal/kvcache"
	"repro/internal/mathx"
	"repro/internal/rngx"
)

// Config describes one simulated model. The four paper models map to four
// configurations differing in width, gains and seed (see Registry).
type Config struct {
	Name string
	// Dim is the head/embedding dimension of the circuit.
	Dim int
	// Gamma1 is the previous-token head attention gain.
	Gamma1 float32
	// Gamma2 is the induction head attention gain.
	Gamma2 float32
	// TopicWeight/ConceptWeight/SurfaceWeight are the squared embedding
	// mixture weights (must sum to ~1): cos(synonyms) ≈ Topic+Concept.
	TopicWeight, ConceptWeight, SurfaceWeight float64
	// MaxSeq is the maximum sequence length (position table size).
	MaxSeq int
	// Seed derives all model weights.
	Seed uint64
}

// Layers is the number of transformer layers (previous-token + induction).
const Layers = 2

// Heads is the number of attention heads per layer in the circuit.
const Heads = 1

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.MaxSeq <= 0 {
		return fmt.Errorf("model: non-positive Dim/MaxSeq in %+v", c)
	}
	sum := c.TopicWeight + c.ConceptWeight + c.SurfaceWeight
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("model: embedding weights sum to %v, want 1", sum)
	}
	return nil
}

// Model is a constructed two-layer induction transformer over a lexicon.
// Weights are frozen at New; every request reads them lock-free.
//
//cocktail:immutable
type Model struct {
	cfg Config
	lex *corpus.Lexicon
	emb [][]float32 // content embedding per word id
	pos [][]float32 // position vectors, pos[0] is the "before start" vector
	// chGain holds per-channel K magnitudes and invGain its reciprocal.
	// Real LLM K caches have a few large-magnitude channels; queries are
	// scaled inversely so FP32 attention is unchanged, but quantization
	// kernels must cope with the channel structure (this is what makes
	// per-token K grouping — Atom — lose to per-channel — KIVI).
	chGain, invGain []float32
}

// Channel/token outlier structure constants. These mirror measured LLM KV
// statistics: a small set of K channels carries ~2.5x magnitude, and ~1%
// of tokens ("attention sinks") have high-norm keys. KVQuant's top-1%
// FP16 token selection exists precisely to pull the sinks out of the
// quantization groups they would otherwise inflate.
const (
	outlierChannelStride = 24  // one boosted channel per 24 dims
	outlierChannelGain   = 2.5 // magnitude of boosted channels
	sinkStride           = 97  // one sink token per ~97 positions
	sinkPhase            = 13
	// sinkSpike is added to a sink token's outlier channels. Queries carry
	// little weight there (inverse gain), so FP32 attention barely moves,
	// but any quantization group containing a sink has its range — and so
	// its neighbours' error — inflated.
	sinkSpike = 2.0
)

// isSink reports whether context position j is an attention-sink token.
func isSink(j int) bool { return j%sinkStride == sinkPhase }

// New constructs the model deterministically from cfg.Seed.
func New(cfg Config, lex *corpus.Lexicon) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, lex: lex}
	root := rngx.New(cfg.Seed)
	d := cfg.Dim
	sigma := 1 / math.Sqrt(float64(d))

	topicVec := map[int][]float32{}
	conceptVec := map[int][]float32{}
	vec := func(cache map[int][]float32, label uint64, id int) []float32 {
		if v, ok := cache[id]; ok {
			return v
		}
		v := root.Split(label).Split(uint64(id)+1).GaussianVec(d, sigma)
		cache[id] = v
		return v
	}

	ta := float32(math.Sqrt(cfg.TopicWeight))
	ca := float32(math.Sqrt(cfg.ConceptWeight))
	sa := float32(math.Sqrt(cfg.SurfaceWeight))
	m.emb = make([][]float32, len(lex.Words))
	for id, w := range lex.Words {
		e := make([]float32, d)
		// Topic ids can be FunctionTopic (-1): offset so labels stay unique.
		tv := vec(topicVec, 0x70, w.Topic+2)
		cv := vec(conceptVec, 0xc0, w.Concept)
		sv := root.Split(0x5f).Split(uint64(id)+1).GaussianVec(d, sigma)
		for i := 0; i < d; i++ {
			e[i] = ta*tv[i] + ca*cv[i] + sa*sv[i]
		}
		// Unit-normalize: greedy decoding compares dot products against the
		// retrieved content, so embedding norm variance would bias argmax
		// toward large-norm words regardless of attention.
		mathx.Normalize(e)
		m.emb[id] = e
	}

	// Position vectors: pos[i+1] is the vector of sequence position i;
	// pos[0] is the synthetic "position -1" used by the first token.
	m.pos = make([][]float32, cfg.MaxSeq+1)
	pr := root.Split(0xb05)
	for i := range m.pos {
		m.pos[i] = pr.GaussianVec(d, sigma)
	}

	m.chGain = make([]float32, d)
	m.invGain = make([]float32, d)
	for i := 0; i < d; i++ {
		m.chGain[i] = 1
		if i%outlierChannelStride == 0 {
			m.chGain[i] = outlierChannelGain
		}
		m.invGain[i] = 1 / m.chGain[i]
	}
	return m, nil
}

// kRow builds the stored K row for position j from the logical key vector:
// channel gains always apply; sink positions get an extra magnitude boost.
func (m *Model) kRow(j int, key []float32) []float32 {
	out := make([]float32, len(key))
	for i, v := range key {
		out[i] = v * m.chGain[i]
	}
	if j >= 0 && isSink(j) {
		for i := 0; i < len(out); i += outlierChannelStride {
			out[i] += sinkSpike
		}
	}
	return out
}

// scaleQuery folds the inverse channel gains and the attention gain into a
// fresh query vector, so FP32 scores equal gamma*(q·k) for normal tokens.
// The gain product is rounded first, matching the dense path's folded
// weight matrices bit-for-bit (see dense.go).
func (m *Model) scaleQuery(q []float32, gamma float32) []float32 {
	out := make([]float32, len(q))
	for i, v := range q {
		g := m.invGain[i] * gamma
		out[i] = g * v
	}
	return out
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Lexicon returns the lexicon the model was built over.
func (m *Model) Lexicon() *corpus.Lexicon { return m.lex }

// Embedding returns the content embedding of a word id (read-only).
func (m *Model) Embedding(id int) []float32 { return m.emb[id] }

// CacheConfig returns the kvcache geometry for this model, with the
// quantization kernel options supplied by the caller's method policy.
func (m *Model) CacheConfig() kvcache.Config {
	return kvcache.Config{Layers: Layers, Heads: Heads, HeadDim: m.cfg.Dim}
}

// positionVec returns the position vector for sequence position i
// (i = -1 is valid and returns the before-start vector).
func (m *Model) positionVec(i int) []float32 {
	if i+1 < 0 || i+1 >= len(m.pos) {
		panic(fmt.Sprintf("model: position %d out of range (MaxSeq=%d)", i, m.cfg.MaxSeq))
	}
	return m.pos[i+1]
}

// Prefill runs the context through the circuit and returns a KV builder
// holding the raw FP32 context KV, ready to be sealed with a quantization
// plan. Layer-0 attention during prefill runs on the raw (FP16-equivalent)
// cache exactly as the paper's prefill does — quantization happens after.
func (m *Model) Prefill(context []int) (*kvcache.Builder, error) {
	b := kvcache.NewBuilder(m.CacheConfig())
	if err := m.prefillInto(b, 0, context); err != nil {
		return nil, err
	}
	return b, nil
}

// PrefillExtend continues prefill on a builder that already holds `start`
// context tokens, feeding the suffix through the circuit at positions
// start..start+len(suffix)-1. Because prefill is an incremental per-token
// loop — token j's rows and layer-0 attention depend only on rows [0, j]
// — extending a builder replays exactly the operation sequence a cold
// Prefill of the concatenation would run, so the resulting builder is
// bit-identical to Prefill(prefix ++ suffix). The builder is typically a
// Clone of a shared stored builder: extending a clone leaves the stored
// original (and any concurrent readers of it) untouched.
func (m *Model) PrefillExtend(b *kvcache.Builder, suffix []int) error {
	return m.prefillInto(b, b.NumTokens(), suffix)
}

// prefillInto runs the prefill token loop for context at sequence
// positions start..start+len(context)-1, appending to b. It requires b to
// hold exactly `start` tokens already.
func (m *Model) prefillInto(b *kvcache.Builder, start int, context []int) error {
	if b.NumTokens() != start {
		return fmt.Errorf("model: builder holds %d tokens, prefill resumes at %d", b.NumTokens(), start)
	}
	if start+len(context) > m.cfg.MaxSeq {
		return fmt.Errorf("model: context length %d exceeds MaxSeq %d", start+len(context), m.cfg.MaxSeq)
	}
	d := m.cfg.Dim
	scores := make([]float32, 0, start+len(context))
	bvec := make([]float32, d)
	for jj, tok := range context {
		j := start + jj
		if tok < 0 || tok >= len(m.emb) {
			return fmt.Errorf("model: token id %d out of vocabulary", tok)
		}
		content := m.emb[tok]
		b.BeginToken()
		// Layer 0 rows: K = position vector (with channel gains and sink
		// boosts), V = content.
		b.Append(0, 0, m.kRow(j, m.positionVec(j)), content)

		// Layer-0 attention for position j: query is the previous
		// position's vector, causally over positions [0, j].
		scores = scores[:0]
		q := m.scaleQuery(m.positionVec(j-1), m.cfg.Gamma1)
		for t := 0; t <= j; t++ {
			scores = append(scores, mathx.Dot(q, b.KRow(0, 0, t)))
		}
		mathx.Softmax(scores)
		for i := range bvec {
			bvec[i] = 0
		}
		for t := 0; t <= j; t++ {
			mathx.Axpy(scores[t], b.VRow(0, 0, t), bvec)
		}

		// Layer 1 rows: K = previous-token content (the layer-0 output),
		// V = own content. Induction matching happens against these.
		b.Append(1, 0, m.kRow(j, bvec), content)
	}
	return nil
}

// Decoder runs query processing and autoregressive decoding over a sealed
// (mixed-precision) cache, appending FP16 KV for each new token as the
// paper prescribes for decode-phase tokens.
type Decoder struct {
	m     *Model
	cache *kvcache.Cache
	pos   int // next sequence position
	b     []float32
	o     []float32
}

// NewDecoder positions a decoder after the sealed context.
func (m *Model) NewDecoder(cache *kvcache.Cache) *Decoder {
	return &Decoder{
		m:     m,
		cache: cache,
		pos:   cache.ContextTokens(),
		b:     make([]float32, m.cfg.Dim),
		o:     make([]float32, m.cfg.Dim),
	}
}

// Step feeds one token through the circuit: it attends over the cache
// (Algorithm 1 segment attention), appends the token's FP16 KV rows, and
// returns the greedy next-token prediction.
func (d *Decoder) Step(tok int) int {
	m := d.m
	if d.pos >= m.cfg.MaxSeq {
		panic("model: sequence exceeded MaxSeq")
	}
	content := m.emb[tok]
	dcfg := m.cfg

	// Layer 0: previous-token head.
	q1 := m.scaleQuery(m.positionVec(d.pos-1), dcfg.Gamma1)
	d.cache.Attend(0, 0, q1, 1, d.b)

	// Layer 1: induction head keyed by current content.
	q2 := m.scaleQuery(content, dcfg.Gamma2)
	d.cache.Attend(1, 0, q2, 1, d.o)

	// Append this token's KV (always FP16 — decode/query phase; decode
	// positions are never sinks but carry the channel gains).
	d.cache.BeginToken()
	d.cache.AppendTail(0, 0, m.kRow(-1, m.positionVec(d.pos)), content)
	d.cache.AppendTail(1, 0, m.kRow(-1, d.b), content)
	d.pos++

	return m.Unembed(d.o)
}

// Output returns the last induction-head output vector (for diagnostics).
func (d *Decoder) Output() []float32 { return d.o }

// Unembed returns the vocabulary id whose embedding best matches o.
func (m *Model) Unembed(o []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for id, e := range m.emb {
		if s := mathx.Dot(e, o); s > best {
			best, bi = s, id
		}
	}
	return bi
}

// Generate processes the query tokens and then decodes greedily until EOS
// or maxNew tokens, returning the generated ids (without the EOS).
func (m *Model) Generate(cache *kvcache.Cache, query []int, maxNew int) []int {
	d := m.NewDecoder(cache)
	next := -1
	for _, tok := range query {
		next = d.Step(tok)
	}
	var out []int
	eos := m.lex.EOSID()
	for len(out) < maxNew && next != eos && next >= 0 {
		out = append(out, next)
		next = d.Step(next)
	}
	return out
}

// Registry returns the four simulated models standing in for the paper's
// Llama2-7B, Llama2-13B, Mistral-7B and Longchat-7B. Widths and gains
// differ so absolute scores vary by model, as in Table II.
func Registry(maxSeq int) []Config {
	return []Config{
		{Name: "Llama2-7B-sim", Dim: 48, Gamma1: 24, Gamma2: 16,
			TopicWeight: 0.12, ConceptWeight: 0.81, SurfaceWeight: 0.07,
			MaxSeq: maxSeq, Seed: 0x77a1},
		{Name: "Llama2-13B-sim", Dim: 56, Gamma1: 26, Gamma2: 17,
			TopicWeight: 0.12, ConceptWeight: 0.81, SurfaceWeight: 0.07,
			MaxSeq: maxSeq, Seed: 0x77b2},
		{Name: "Mistral-7B-sim", Dim: 48, Gamma1: 24, Gamma2: 16,
			TopicWeight: 0.12, ConceptWeight: 0.80, SurfaceWeight: 0.08,
			MaxSeq: maxSeq, Seed: 0x3157},
		{Name: "Longchat-7B-sim", Dim: 44, Gamma1: 23, Gamma2: 15.5,
			TopicWeight: 0.12, ConceptWeight: 0.80, SurfaceWeight: 0.08,
			MaxSeq: maxSeq, Seed: 0x10c6},
	}
}
