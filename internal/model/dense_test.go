package model

import (
	"testing"

	"repro/internal/kvcache"
	"repro/internal/rngx"
)

// TestDenseMatchesFastKV: the dense-weights path must produce exactly the
// same KV rows as the specialized fast path.
func TestDenseMatchesFastKV(t *testing.T) {
	m := testModel(t)
	dm := NewDense(m)
	r := rngx.New(901)
	ctx, _, _ := buildSample(r, m.Lexicon(), 256, 4, 2)

	bf, err := m.Prefill(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := dm.Prefill(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bf.NumTokens() != bd.NumTokens() {
		t.Fatalf("token counts differ: %d vs %d", bf.NumTokens(), bd.NumTokens())
	}
	for l := 0; l < Layers; l++ {
		for tok := 0; tok < bf.NumTokens(); tok++ {
			kf, kd := bf.KRow(l, 0, tok), bd.KRow(l, 0, tok)
			vf, vd := bf.VRow(l, 0, tok), bd.VRow(l, 0, tok)
			for i := range kf {
				if kf[i] != kd[i] {
					t.Fatalf("K row mismatch at layer %d token %d dim %d: %v vs %v", l, tok, i, kf[i], kd[i])
				}
				if vf[i] != vd[i] {
					t.Fatalf("V row mismatch at layer %d token %d dim %d: %v vs %v", l, tok, i, vf[i], vd[i])
				}
			}
		}
	}
}

// TestDenseMatchesFastGeneration: identical generations across both paths
// under FP16 and under a mixed-precision plan.
func TestDenseMatchesFastGeneration(t *testing.T) {
	m := testModel(t)
	dm := NewDense(m)
	r := rngx.New(902)
	for trial := 0; trial < 5; trial++ {
		ctx, query, _ := buildSample(r, m.Lexicon(), 256, 4, 2)
		for _, prec := range []kvcache.Precision{kvcache.FP16, kvcache.INT4} {
			bf, err := m.Prefill(ctx)
			if err != nil {
				t.Fatal(err)
			}
			bd, err := dm.Prefill(ctx)
			if err != nil {
				t.Fatal(err)
			}
			plan := kvcache.UniformPlan(len(ctx), 32, prec, true)
			cf, err := bf.Seal(plan)
			if err != nil {
				t.Fatal(err)
			}
			cd, err := bd.Seal(plan)
			if err != nil {
				t.Fatal(err)
			}
			gf := m.Generate(cf, query, 16)
			gd := dm.Generate(cd, query, 16)
			if !equalIDs(gf, gd) {
				t.Fatalf("trial %d prec %v: generations differ: %v vs %v", trial, prec, gf, gd)
			}
		}
	}
}

func TestDensePrefillValidation(t *testing.T) {
	m := testModel(t)
	dm := NewDense(m)
	if _, err := dm.Prefill(make([]int, m.Config().MaxSeq+1)); err == nil {
		t.Fatal("expected MaxSeq error")
	}
	if _, err := dm.Prefill([]int{1 << 30}); err == nil {
		t.Fatal("expected OOV error")
	}
}
