// Package rngx provides a small, deterministic pseudo-random number
// generator used by every stochastic component of the reproduction.
//
// All experiments in this repository must be bit-reproducible across runs
// and platforms, so we avoid math/rand's global state and use an explicit
// SplitMix64 generator. SplitMix64 is statistically strong enough for
// synthetic-data generation and has a trivial, portable implementation.
package rngx

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent child generator from the current state and a
// label. The parent's stream is not advanced, so components can derive
// stable sub-streams regardless of call order.
func (r *RNG) Split(label uint64) *RNG {
	return New(mix(r.state ^ mix(label)))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rngx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Norm returns a standard normal variate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.Norm()) }

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen element of xs. It panics on empty input.
func Choice[T any](r *RNG, xs []T) T {
	if len(xs) == 0 {
		panic("rngx: Choice of empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// GaussianVec fills a fresh vector of length n with N(0, sigma^2) entries.
func (r *RNG) GaussianVec(n int, sigma float64) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(r.Norm() * sigma)
	}
	return v
}

// HashString maps a string deterministically to 64 bits (FNV-1a variant
// finished with SplitMix64's avalanche). It is used to derive stable
// per-word embedding seeds without any global table.
func HashString(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix(h)
}
