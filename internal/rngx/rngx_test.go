package rngx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	c1again := r.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split is not stable for the same label")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("Split children with different labels coincide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("variance too far from 1: %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestChoice(t *testing.T) {
	r := New(13)
	xs := []string{"a", "b", "c"}
	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		counts[Choice(r, xs)]++
	}
	for _, s := range xs {
		if counts[s] < 500 {
			t.Fatalf("choice badly skewed: %v", counts)
		}
	}
}

func TestGaussianVec(t *testing.T) {
	v := New(17).GaussianVec(10000, 2.0)
	var sumsq float64
	for _, x := range v {
		sumsq += float64(x) * float64(x)
	}
	sd := math.Sqrt(sumsq / float64(len(v)))
	if math.Abs(sd-2.0) > 0.1 {
		t.Fatalf("sd = %v, want ~2.0", sd)
	}
}

func TestHashStringStableAndSpread(t *testing.T) {
	if HashString("hello") != HashString("hello") {
		t.Fatal("HashString not deterministic")
	}
	seen := map[uint64]bool{}
	words := []string{"a", "b", "ab", "ba", "hello", "world", "", "x", "xx", "xxx"}
	for _, w := range words {
		h := HashString(w)
		if seen[h] {
			t.Fatalf("collision for %q", w)
		}
		seen[h] = true
	}
}
