// Package mathx provides the small numerical kernels shared by the
// transformer, the quantizers, and the encoders: dot products, stable
// softmax, norms and cosine similarity over float32 slices.
package mathx

import "math"

// Dot returns the inner product of a and b. Accumulation is in float64 for
// stability; inputs must have equal length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return float32(s)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch")
	}
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Cosine returns the cosine similarity of a and b. If either vector is
// zero, it returns 0.
func Cosine(a, b []float32) float64 {
	na, nb := float64(Norm2(a)), float64(Norm2(b))
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(Dot(a, b)) / (na * nb)
}

// Softmax replaces x with softmax(x) using the max-subtraction trick.
// An empty slice is a no-op.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxv))
		x[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range x {
		x[i] *= inv
	}
}

// Argmax returns the index of the largest element (first on ties).
// It panics on an empty slice.
func Argmax(x []float32) int {
	if len(x) == 0 {
		panic("mathx: Argmax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// MinMax returns the smallest and largest values in x.
// It panics on an empty slice.
func MinMax(x []float32) (mn, mx float32) {
	if len(x) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	mn, mx = x[0], x[0]
	for _, v := range x[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return mn, mx
}

// MeanAbsDiff returns mean |a_i - b_i|; inputs must have equal length.
func MeanAbsDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("mathx: MeanAbsDiff length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s / float64(len(a))
}

// Normalize scales x to unit L2 norm in place; a zero vector is unchanged.
func Normalize(x []float32) {
	n := Norm2(x)
	if n == 0 {
		return
	}
	Scale(1/n, x)
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
