package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rngx"
)

func TestDot(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if got := Dot(a, b); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestAxpyScale(t *testing.T) {
	y := []float32{1, 1}
	Axpy(2, []float32{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy wrong: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale wrong: %v", y)
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float32{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-6 {
		t.Fatalf("Cosine(a,a) = %v", got)
	}
	if got := Cosine(a, b); math.Abs(got) > 1e-6 {
		t.Fatalf("Cosine(orthogonal) = %v", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 0 {
		t.Fatalf("Cosine with zero vector = %v", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%32 + 1
		r := rngx.New(seed)
		x := r.GaussianVec(n, 5)
		Softmax(x)
		var sum float64
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-5
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{101, 102, 103}
	Softmax(x)
	Softmax(y)
	for i := range x {
		if math.Abs(float64(x[i]-y[i])) > 1e-6 {
			t.Fatalf("softmax not shift invariant: %v vs %v", x, y)
		}
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	x := []float32{1e30, 1e30}
	Softmax(x)
	if math.IsNaN(float64(x[0])) || math.Abs(float64(x[0]-0.5)) > 1e-6 {
		t.Fatalf("softmax unstable: %v", x)
	}
	Softmax(nil) // must not panic
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float32{1, 5, 3, 5}); got != 1 {
		t.Fatalf("Argmax = %d, want 1 (first max)", got)
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := MinMax([]float32{3, -1, 7, 0})
	if mn != -1 || mx != 7 {
		t.Fatalf("MinMax = %v, %v", mn, mx)
	}
}

func TestMeanAbsDiff(t *testing.T) {
	if got := MeanAbsDiff([]float32{1, 2}, []float32{2, 4}); got != 1.5 {
		t.Fatalf("MeanAbsDiff = %v", got)
	}
	if got := MeanAbsDiff(nil, nil); got != 0 {
		t.Fatalf("MeanAbsDiff(nil) = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	x := []float32{3, 4}
	Normalize(x)
	if math.Abs(float64(Norm2(x)-1)) > 1e-6 {
		t.Fatalf("Normalize norm = %v", Norm2(x))
	}
	z := []float32{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("Normalize mutated zero vector")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}
