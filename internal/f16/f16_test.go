package f16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h F16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{5.9604645e-08, 0x0001},         // smallest subnormal
		{6.097555160522461e-05, 0x03ff}, // largest subnormal
		{6.103515625e-05, 0x0400},       // smallest normal
		{0.333251953125, 0x3555},        // 1/3 rounded to half
	}
	for _, c := range cases {
		if got := From32(c.f); got != c.h {
			t.Errorf("From32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := To32(c.h); got != c.f {
			t.Errorf("To32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestInfNaN(t *testing.T) {
	if From32(float32(math.Inf(1))) != PosInf {
		t.Error("+Inf not converted")
	}
	if From32(float32(math.Inf(-1))) != NegInf {
		t.Error("-Inf not converted")
	}
	if !math.IsNaN(float64(To32(From32(float32(math.NaN()))))) {
		t.Error("NaN not preserved through round trip")
	}
	if !math.IsInf(float64(To32(PosInf)), 1) {
		t.Error("To32(PosInf) not +Inf")
	}
}

func TestOverflowToInf(t *testing.T) {
	if From32(70000) != PosInf {
		t.Errorf("70000 should overflow to +Inf, got %#04x", From32(70000))
	}
	if From32(-70000) != NegInf {
		t.Errorf("-70000 should overflow to -Inf")
	}
	// 65519.99 rounds up past max finite -> inf; 65519 rounds down to 65504.
	if From32(65519) != MaxValue {
		t.Errorf("65519 should round to max finite, got %#04x", From32(65519))
	}
	if From32(65520) != PosInf {
		t.Errorf("65520 should round to +Inf, got %#04x", From32(65520))
	}
}

func TestUnderflowToZero(t *testing.T) {
	if From32(1e-10) != 0 {
		t.Errorf("1e-10 should underflow to +0, got %#04x", From32(1e-10))
	}
	if From32(-1e-10) != 0x8000 {
		t.Errorf("-1e-10 should underflow to -0, got %#04x", From32(-1e-10))
	}
}

// TestRoundTripExactForHalfValues: every finite half value must survive
// To32 -> From32 unchanged.
func TestRoundTripExactForHalfValues(t *testing.T) {
	for i := 0; i <= 0xffff; i++ {
		h := F16(i)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			continue // NaN payloads need not be preserved bit-exactly
		}
		f := To32(h)
		back := From32(f)
		if back != h {
			t.Fatalf("round trip failed: %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

// TestRoundErrorBound: FP16 rounding of a float32 in the normal half range
// must be within half a ULP (relative error <= 2^-11).
func TestRoundErrorBound(t *testing.T) {
	check := func(seed int64) bool {
		f := float32(math.Abs(float64(seed%1000000))/1000.0 + 0.001) // 0.001..1000
		r := Round(f)
		rel := math.Abs(float64(r-f)) / math.Abs(float64(f))
		return rel <= 1.0/2048.0+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMonotone: conversion preserves ordering of representable magnitudes.
func TestMonotone(t *testing.T) {
	prev := To32(0)
	for i := 1; i < 0x7c00; i++ {
		cur := To32(F16(i))
		if cur <= prev {
			t.Fatalf("To32 not monotone at %#04x: %v <= %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestSliceHelpers(t *testing.T) {
	xs := []float32{0, 1, -2.5, 0.1, 1000}
	hs := FromSlice(xs)
	ys := ToSlice(hs)
	if len(ys) != len(xs) {
		t.Fatal("length mismatch")
	}
	for i := range xs {
		if math.Abs(float64(ys[i]-xs[i])) > math.Abs(float64(xs[i]))/1024+1e-7 {
			t.Errorf("slice round trip too lossy at %d: %v -> %v", i, xs[i], ys[i])
		}
	}
	dst := make([]float32, len(hs))
	ToSliceInto(dst, hs)
	for i := range dst {
		if dst[i] != ys[i] {
			t.Fatal("ToSliceInto disagrees with ToSlice")
		}
	}
}

func TestToSliceIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ToSliceInto(make([]float32, 2), make([]F16, 3))
}

func TestBytes(t *testing.T) {
	if Bytes(10) != 20 {
		t.Fatalf("Bytes(10) = %d", Bytes(10))
	}
}
