// Package f16 implements IEEE 754 binary16 ("half precision") conversion.
//
// The paper stores the unquantized portion of the KV cache in FP16. Go has
// no native float16, so we represent FP16 storage as uint16 payloads with
// exact IEEE 754 binary16 semantics (round-to-nearest-even, subnormals,
// infinities, NaN). Compute always happens in float32 after widening — the
// same discipline CUDA kernels use — so FP16 here costs 2 bytes per value
// and carries genuine FP16 rounding error.
package f16

import "math"

// F16 is an IEEE 754 binary16 value stored in a uint16.
type F16 uint16

const (
	// PosInf is the binary16 positive infinity.
	PosInf F16 = 0x7c00
	// NegInf is the binary16 negative infinity.
	NegInf F16 = 0xfc00
	// MaxValue is the largest finite binary16 value (65504).
	MaxValue F16 = 0x7bff
)

// From32 converts a float32 to binary16 with round-to-nearest-even.
func From32(f float32) F16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			// Preserve a quiet NaN; keep top mantissa bits.
			return F16(sign | 0x7c00 | uint16(man>>13) | 1)
		}
		return F16(sign | 0x7c00)
	case exp == 0 && man == 0: // signed zero
		return F16(sign)
	}

	// Re-bias exponent from float32 (127) to float16 (15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1f: // overflow -> infinity
		return F16(sign | 0x7c00)
	case e <= 0:
		// Subnormal half (or underflow to zero).
		if e < -10 {
			return F16(sign)
		}
		// Add the implicit leading 1 and shift into the 10-bit subnormal
		// mantissa with round-to-nearest-even. A carry out of the mantissa
		// lands exactly on the smallest normal half, which is the correct
		// bit pattern with no special casing.
		man |= 0x800000
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		q := man >> shift
		rem := man & ((uint32(1) << shift) - 1)
		if rem > half || (rem == half && q&1 == 1) {
			q++
		}
		return F16(sign | uint16(q))
	default:
		// Normal number: round mantissa from 23 to 10 bits, nearest-even.
		q := man >> 13
		rem := man & 0x1fff
		switch {
		case rem > 0x1000, rem == 0x1000 && q&1 == 1:
			q++
		}
		h := (uint32(e) << 10) + q // mantissa carry may bump exponent; that is correct
		if h >= 0x7c00 {
			return F16(sign | 0x7c00)
		}
		return F16(sign | uint16(h))
	}
}

// To32 converts a binary16 to float32 exactly (the conversion is lossless).
func To32(h F16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h) & 0x3ff

	switch {
	case exp == 0x1f: // Inf/NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | man<<13)
	}
}

// Round applies FP16 rounding to a float32 (a From32/To32 round trip).
func Round(f float32) float32 { return To32(From32(f)) }

// FromSlice converts a float32 slice into a fresh F16 slice.
func FromSlice(xs []float32) []F16 {
	hs := make([]F16, len(xs))
	for i, x := range xs {
		hs[i] = From32(x)
	}
	return hs
}

// ToSlice widens an F16 slice into a fresh float32 slice.
func ToSlice(hs []F16) []float32 {
	xs := make([]float32, len(hs))
	for i, h := range hs {
		xs[i] = To32(h)
	}
	return xs
}

// ToSliceInto widens hs into dst, which must have the same length.
func ToSliceInto(dst []float32, hs []F16) {
	if len(dst) != len(hs) {
		panic("f16: ToSliceInto length mismatch")
	}
	for i, h := range hs {
		dst[i] = To32(h)
	}
}

// Bytes reports the storage size in bytes of n FP16 values.
func Bytes(n int) int { return 2 * n }
