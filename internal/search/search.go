// Package search implements the paper's Module I: chunk-level quantization
// search. The context is split into fixed-size chunks, every chunk is
// scored against the query by a retrieval encoder (Eq. 1), two thresholds
// derived from hyperparameters α and β (Eq. 2–3) split the score range into
// three bands, and each band maps to a precision:
//
//	score > T_high          → FP16
//	T_low <= score <= T_high → INT4
//	score < T_low           → INT2
//
// The output is a kvcache.Plan, optionally with Module II reordering.
package search

import (
	"fmt"

	"repro/internal/encoder"
	"repro/internal/kvcache"
)

// Config holds the Module I hyperparameters. It is a plain value — copy
// freely; a validated Config shared read-only across goroutines is safe.
type Config struct {
	// Alpha positions T_low within the score range (Eq. 2); larger α sends
	// more chunks to the Low precision.
	Alpha float64
	// Beta positions T_high within the score range (Eq. 3); larger β keeps
	// more chunks at the High precision.
	Beta float64
	// ChunkSize is the tokens-per-chunk granularity.
	ChunkSize int
	// Low/Mid/High are the precisions of the three bands. Zero values mean
	// the paper's INT2/INT4/FP16.
	Low, Mid, High kvcache.Precision
	// Reorder enables Module II chunk reordering in the produced plan.
	Reorder bool
}

// Default returns the paper's operating point: α=0.6, β=0.1, chunk size 32,
// INT2/INT4/FP16 bands, reordering on.
func Default() Config {
	return Config{
		Alpha: 0.6, Beta: 0.1, ChunkSize: 32,
		Low: kvcache.INT2, Mid: kvcache.INT4, High: kvcache.FP16,
		Reorder: true,
	}
}

// Validate checks hyperparameter sanity.
func (c Config) Validate() error {
	if c.Alpha < 0 || c.Alpha > 1 || c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("search: alpha/beta must be in [0,1], got %v/%v", c.Alpha, c.Beta)
	}
	if c.ChunkSize <= 0 {
		return fmt.Errorf("search: ChunkSize must be positive")
	}
	return nil
}

// Result is the outcome of one quantization search: per-request state
// owned by the caller.
type Result struct {
	// Scores holds the per-chunk similarity scores (dimensionless, higher
	// = more query-relevant; the scale depends on the encoder).
	Scores []float64
	// TLow and THigh are the thresholds computed by Eq. 2–3.
	TLow, THigh float64
	// Plan is the resulting per-chunk precision assignment.
	Plan *kvcache.Plan
}

// Chunks splits ctx into full ChunkSize-sized chunks (the indivisible tail,
// which the plan keeps FP16, is not scored, as in the paper).
func Chunks(ctx []int, chunkSize int) [][]int {
	n := len(ctx) / chunkSize
	out := make([][]int, n)
	for i := range out {
		out[i] = ctx[i*chunkSize : (i+1)*chunkSize]
	}
	return out
}

// Run performs the chunk-level quantization search for one (context, query)
// pair and returns the scores, thresholds and plan. Run keeps no state of
// its own — with an encoder that is safe for concurrent use (all shipped
// encoders are read-only after construction), concurrent Runs are safe.
func Run(enc encoder.Encoder, ctx, query []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	chunks := Chunks(ctx, cfg.ChunkSize)
	scores := enc.Similarities(query, chunks)
	tlow, thigh := Thresholds(scores, cfg.Alpha, cfg.Beta)

	plan := &kvcache.Plan{
		NumTokens: len(ctx),
		ChunkSize: cfg.ChunkSize,
		ChunkPrec: make([]kvcache.Precision, len(chunks)),
		Reorder:   cfg.Reorder,
	}
	for i, s := range scores {
		switch {
		case s > thigh:
			plan.ChunkPrec[i] = cfg.High
		case s < tlow:
			plan.ChunkPrec[i] = cfg.Low
		default:
			plan.ChunkPrec[i] = cfg.Mid
		}
	}
	return &Result{Scores: scores, TLow: tlow, THigh: thigh, Plan: plan}, nil
}

// Thresholds computes T_low and T_high per the paper's Eq. 2–3:
//
//	T_low  = s_min + (s_max − s_min)·α
//	T_high = s_max − (s_max − s_min)·β
//
// With an empty score list both thresholds are zero.
func Thresholds(scores []float64, alpha, beta float64) (tlow, thigh float64) {
	if len(scores) == 0 {
		return 0, 0
	}
	smin, smax := scores[0], scores[0]
	for _, s := range scores[1:] {
		if s < smin {
			smin = s
		}
		if s > smax {
			smax = s
		}
	}
	return smin + (smax-smin)*alpha, smax - (smax-smin)*beta
}
