package search

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/kvcache"
	"repro/internal/rngx"
)

// fakeEncoder returns preset scores regardless of input.
type fakeEncoder struct{ scores []float64 }

func (f fakeEncoder) Name() string { return "fake" }
func (f fakeEncoder) Similarities(query []int, chunks [][]int) []float64 {
	out := make([]float64, len(chunks))
	copy(out, f.scores)
	return out
}

func TestThresholdsEquations(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.9}
	tlow, thigh := Thresholds(scores, 0.25, 0.125)
	if math.Abs(tlow-0.3) > 1e-12 || math.Abs(thigh-0.8) > 1e-12 {
		t.Fatalf("thresholds = %v, %v; want 0.3, 0.8", tlow, thigh)
	}
}

func TestThresholdsDegenerate(t *testing.T) {
	tlow, thigh := Thresholds(nil, 0.5, 0.5)
	if tlow != 0 || thigh != 0 {
		t.Fatal("empty scores should give zero thresholds")
	}
	tlow, thigh = Thresholds([]float64{0.4, 0.4}, 0.6, 0.1)
	if tlow != 0.4 || thigh != 0.4 {
		t.Fatalf("constant scores: %v, %v", tlow, thigh)
	}
}

// Property: T_low <= T_high whenever alpha + beta <= 1.
func TestThresholdOrderProperty(t *testing.T) {
	check := func(seed uint64, aRaw, bRaw uint8) bool {
		alpha := float64(aRaw) / 255
		beta := (1 - alpha) * float64(bRaw) / 255
		r := rngx.New(seed)
		scores := make([]float64, 1+r.Intn(30))
		for i := range scores {
			scores[i] = r.Float64()
		}
		tlow, thigh := Thresholds(scores, alpha, beta)
		return tlow <= thigh+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBandAssignment(t *testing.T) {
	// Scores 0..0.9: alpha=0.5 -> tlow=0.45, beta=0.2 -> thigh=0.72.
	scores := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	cfg := Default()
	cfg.Alpha, cfg.Beta = 0.5, 0.2
	ctx := make([]int, 10*cfg.ChunkSize)
	res, err := Run(fakeEncoder{scores}, ctx, []int{1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []kvcache.Precision{
		kvcache.INT2, kvcache.INT2, kvcache.INT2, kvcache.INT2, kvcache.INT2,
		kvcache.INT4, kvcache.INT4, kvcache.INT4,
		kvcache.FP16, kvcache.FP16,
	}
	for i, p := range res.Plan.ChunkPrec {
		if p != want[i] {
			t.Fatalf("chunk %d = %v, want %v (tlow=%v thigh=%v)", i, p, want[i], res.TLow, res.THigh)
		}
	}
	if !res.Plan.Reorder {
		t.Fatal("Default config should enable reordering")
	}
}

func TestRunAlphaMonotonicity(t *testing.T) {
	// More alpha -> at least as many INT2 chunks.
	scores := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75}
	ctx := make([]int, 8*32)
	prev := -1
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := Default()
		cfg.Alpha = alpha
		res, err := Run(fakeEncoder{scores}, ctx, []int{1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := res.Plan.Counts()[kvcache.INT2]
		if n < prev {
			t.Fatalf("INT2 count decreased from %d to %d at alpha=%v", prev, n, alpha)
		}
		prev = n
	}
}

func TestRunBetaMonotonicity(t *testing.T) {
	scores := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75}
	ctx := make([]int, 8*32)
	prev := -1
	for _, beta := range []float64{0.05, 0.15, 0.3, 0.5} {
		cfg := Default()
		cfg.Beta = beta
		res, err := Run(fakeEncoder{scores}, ctx, []int{1}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := res.Plan.Counts()[kvcache.FP16]
		if n < prev {
			t.Fatalf("FP16 count decreased to %d at beta=%v", n, beta)
		}
		prev = n
	}
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := Default()
	cfg.Alpha = 2
	if _, err := Run(fakeEncoder{}, make([]int, 64), nil, cfg); err == nil {
		t.Fatal("expected alpha validation error")
	}
	cfg = Default()
	cfg.ChunkSize = 0
	if _, err := Run(fakeEncoder{}, make([]int, 64), nil, cfg); err == nil {
		t.Fatal("expected chunk size validation error")
	}
}

func TestChunksTailDropped(t *testing.T) {
	ctx := make([]int, 70)
	chunks := Chunks(ctx, 32)
	if len(chunks) != 2 {
		t.Fatalf("got %d chunks", len(chunks))
	}
}

// TestEndToEndFindsNeedle: with a real encoder and a planted needle chunk,
// the needle must be assigned FP16 and the bulk INT2 at the paper's
// operating point.
func TestEndToEndFindsNeedle(t *testing.T) {
	l := corpus.NewLexicon(corpus.Defaults(1))
	r := rngx.New(77)
	chunks, _ := l.PassageChunks(r, 16, 32, nil)
	// Needle chunk 5 shares three multi-form concepts with the query.
	var query []int
	planted := 0
	for _, c := range l.TopicConcepts(l.ProseTopics()[3]) {
		if len(l.FormsOf(c)) < 2 {
			continue
		}
		chunks[5][planted*4] = l.FormsOf(c)[0]
		query = append(query, l.FormsOf(c)[1])
		planted++
		if planted == 3 {
			break
		}
	}
	var ctx []int
	for _, c := range chunks {
		ctx = append(ctx, c...)
	}
	res, err := Run(encoder.NewContriever(l), ctx, query, Default())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.ChunkPrec[5] != kvcache.FP16 {
		t.Fatalf("needle chunk got %v (scores=%v tlow=%v thigh=%v)",
			res.Plan.ChunkPrec[5], res.Scores, res.TLow, res.THigh)
	}
	if res.Plan.Counts()[kvcache.INT2] < 32*8 {
		t.Fatalf("expected most chunks INT2, counts=%v", res.Plan.Counts())
	}
}
