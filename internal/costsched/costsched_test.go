package costsched

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestSingleTenantIsFIFO: with one tenant the DRR queue must be
// indistinguishable from the plain FIFO lane it replaced — order
// preserved exactly, regardless of costs.
func TestSingleTenantIsFIFO(t *testing.T) {
	q := NewQueue[int](DefaultQuantumMs)
	costs := []float64{900, 5, 0, 10000, 3, 3, 42}
	for i, c := range costs {
		q.Push("", c, i)
	}
	for i := range costs {
		if v, tenant, ok := q.Head(); !ok || v != i || tenant != "" {
			t.Fatalf("Head = (%d, %q, %v), want (%d, \"\", true)", v, tenant, ok, i)
		}
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue must report !ok")
	}
	if _, _, ok := q.Head(); ok {
		t.Fatal("Head on empty queue must report !ok")
	}
}

// TestTenantFIFOWithinTenant: DRR may interleave tenants, but each
// tenant's own items must dispatch in arrival order.
func TestTenantFIFOWithinTenant(t *testing.T) {
	q := NewQueue[[2]int](100)
	rng := rand.New(rand.NewSource(7))
	tenants := []string{"a", "b", "c"}
	for i := 0; i < 60; i++ {
		k := i % len(tenants)
		q.Push(tenants[k], 50+900*rng.Float64(), [2]int{k, i / len(tenants)})
	}
	next := map[int]int{}
	for q.Len() > 0 {
		v, ok := q.Pop()
		if !ok {
			t.Fatal("Pop failed with items queued")
		}
		if v[1] != next[v[0]] {
			t.Fatalf("tenant %d dispatched item %d, want %d (FIFO violated)", v[0], v[1], next[v[0]])
		}
		next[v[0]]++
	}
}

// TestHeadMatchesPop: Head must predict exactly what Pop dispatches, at
// every step of a heterogeneous multi-tenant drain.
func TestHeadMatchesPop(t *testing.T) {
	q := NewQueue[int](75)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		q.Push([]string{"x", "y", "z", "w"}[rng.Intn(4)], 1000*rng.Float64(), i)
	}
	for q.Len() > 0 {
		hv, _, hok := q.Head()
		pv, pok := q.Pop()
		if !hok || !pok || hv != pv {
			t.Fatalf("Head predicted %d (ok=%v), Pop dispatched %d (ok=%v)", hv, hok, pv, pok)
		}
	}
}

// TestFairnessBound is the DRR guarantee the serve path advertises: over
// any interval where every tenant stays backlogged, dispatched predicted
// milliseconds per tenant stay within (quantum + max item cost) of the
// equal share — even when one tenant's items are 20x more expensive and
// another floods the queue with cheap work.
func TestFairnessBound(t *testing.T) {
	const quantum = 250.0
	q := NewQueue[string](quantum)
	costs := map[string]float64{"cheap": 50, "mid": 400, "expensive": 1000}
	maxCost := 1000.0
	// Keep every tenant deeply backlogged; the flood tenant pushes 4x
	// the items (it must NOT get 4x the service).
	for i := 0; i < 400; i++ {
		q.Push("cheap", costs["cheap"], "cheap")
	}
	for i := 0; i < 100; i++ {
		q.Push("mid", costs["mid"], "mid")
		q.Push("expensive", costs["expensive"], "expensive")
	}

	served := map[string]float64{}
	var total float64
	pops := 0
	for q.Len() > 0 {
		v, _ := q.Pop()
		served[v] += costs[v]
		total += costs[v]
		pops++
		// While all three tenants remain backlogged, check the bound.
		stats := q.Stats()
		backlogged := 0
		for _, s := range stats {
			if s.Queued > 0 {
				backlogged++
			}
		}
		if backlogged < 3 {
			break
		}
		share := total / 3
		for tenant, ms := range served {
			if diff := math.Abs(ms - share); diff > quantum+maxCost {
				t.Fatalf("after %d pops tenant %q served %.0fms vs equal share %.0fms (diff %.0f > bound %.0f)",
					pops, tenant, ms, share, diff, quantum+maxCost)
			}
		}
	}
	if pops < 100 {
		t.Fatalf("backlog collapsed after only %d pops; test did not exercise the bound", pops)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue[int](0) // 0 selects the default quantum
	q.Push("b", 100, 1)
	q.Push("a", 200, 2)
	q.Push("a", -50, 3) // negative cost clamps to free
	st := q.Stats()
	if len(st) != 2 || st[0].Tenant != "a" || st[1].Tenant != "b" {
		t.Fatalf("Stats not sorted by tenant: %+v", st)
	}
	if st[0].Queued != 2 || st[0].QueuedMs != 200 {
		t.Fatalf("tenant a stats = %+v", st[0])
	}
	for q.Len() > 0 {
		q.Pop()
	}
	st = q.Stats()
	for _, s := range st {
		if s.Queued != 0 || s.QueuedMs != 0 {
			t.Fatalf("drained tenant still shows backlog: %+v", s)
		}
	}
	if st[0].Served != 2 || st[0].ServedMs != 200 || st[1].Served != 1 || st[1].ServedMs != 100 {
		t.Fatalf("cumulative served accounting wrong: %+v", st)
	}
}

// TestRetryAfterSeconds pins the clamp contract: never below 1s (even
// for an empty queue), ceiling seconds in between, capped at 600s.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		drainMs float64
		want    int
	}{
		{-100, 1},
		{0, 1},
		{1, 1},
		{999, 1},
		{1000, 1},
		{1001, 2},
		{2500, 3},
		{12345, 13},
		{599_001, 600},
		{600_000, 600},
		{10_000_000, 600},
		{math.NaN(), 1},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.drainMs); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.drainMs, got, c.want)
		}
	}
}

func TestAdmissionShedsOverBudget(t *testing.T) {
	// Budget 1000ms across 2 workers: 2000ms of predicted work fits.
	a := NewAdmission(1000, 2)
	if ok, _ := a.Admit(1500); !ok {
		t.Fatal("first request within budget was shed")
	}
	if ok, _ := a.Admit(500); !ok {
		t.Fatal("second request within budget was shed")
	}
	ok, drain := a.Admit(1)
	if ok {
		t.Fatal("over-budget request was admitted")
	}
	if drain != 1000 {
		t.Fatalf("drain at shed = %v, want 1000 (2000ms inflight / 2 workers)", drain)
	}
	st := a.Stats()
	if st.Admitted != 2 || st.Shed != 1 || st.Inflight != 2 || st.InflightMs != 2000 || st.DrainMs != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	// Releasing work reopens the gate.
	a.Done(1500)
	if ok, _ := a.Admit(1); !ok {
		t.Fatal("request shed after capacity was released")
	}
	if got := a.DrainMs(); got != 501.0/2 {
		t.Fatalf("DrainMs = %v, want %v", got, 501.0/2)
	}
}

func TestAdmissionDisabledTracksOnly(t *testing.T) {
	a := NewAdmission(0, 4)
	for i := 0; i < 100; i++ {
		if ok, _ := a.Admit(1e6); !ok {
			t.Fatal("budget 0 must never shed")
		}
	}
	if a.BudgetMs() != 0 {
		t.Fatalf("BudgetMs = %v, want 0", a.BudgetMs())
	}
	if got := a.DrainMs(); got != 100*1e6/4 {
		t.Fatalf("DrainMs = %v", got)
	}
	// Negative budget normalizes to disabled, workers < 1 to 1.
	b := NewAdmission(-5, 0)
	if ok, _ := b.Admit(math.NaN()); !ok {
		t.Fatal("NaN cost must clamp to free and admit")
	}
	if b.DrainMs() != 0 {
		t.Fatalf("NaN cost leaked into inflight: %v", b.DrainMs())
	}
}

// TestAdmissionDriftFloor: mismatched Done rounding can never leave a
// phantom negative backlog behind.
func TestAdmissionDriftFloor(t *testing.T) {
	a := NewAdmission(0, 1)
	a.Admit(100)
	a.Done(100.0000001)
	if st := a.Stats(); st.Inflight != 0 || st.InflightMs != 0 {
		t.Fatalf("drift left inflight state: %+v", st)
	}
	a.Done(50) // spurious Done: floors at zero, no panic
	if st := a.Stats(); st.Inflight != 0 || st.InflightMs != 0 {
		t.Fatalf("spurious Done corrupted state: %+v", st)
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(0, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if ok, _ := a.Admit(7); ok {
					a.Done(7)
				}
			}
		}()
	}
	wg.Wait()
	if st := a.Stats(); st.Inflight != 0 || st.InflightMs != 0 || st.Admitted != 8000 {
		t.Fatalf("concurrent accounting drifted: %+v", st)
	}
}
