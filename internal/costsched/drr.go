// Package costsched is the cost-model-driven scheduling layer: a
// deficit-round-robin (DRR) multi-tenant queue that bounds every tenant's
// share of *predicted* serving cost, and an admission tracker that sheds
// load when the predicted drain time of admitted work exceeds a deadline
// budget. Costs are predicted milliseconds from hwmodel's per-request
// Estimate — the scheduler is deliberately unit-agnostic and clock-free:
// it never reads time, only the costs it is handed, so its decisions are
// exactly reproducible in tests.
//
// The queue is not synchronized; callers (the httpapi batcher) hold their
// own mutex across calls, exactly as they did for the plain FIFO lanes
// this replaces.
package costsched

import "sort"

// DefaultQuantumMs is the per-round deficit refill when the caller does
// not choose one. DRR's fairness bound is (quantum + max item cost) per
// round, so the quantum trades scheduling granularity against pop cost;
// 250ms is a fraction of one predicted prefill at the paper's shapes.
const DefaultQuantumMs = 250

type entry[T any] struct {
	v    T
	cost float64
}

// tenantQ is one tenant's FIFO backlog plus its DRR credit and
// cumulative accounting (kept after the backlog drains, so metrics
// survive idle periods).
type tenantQ[T any] struct {
	name    string
	entries []entry[T]
	deficit float64

	queuedMs float64 // predicted ms currently queued
	servedMs float64 // cumulative predicted ms dispatched
	served   int64   // cumulative items dispatched
}

// Queue is a deficit-round-robin multi-tenant queue over predicted cost.
// Tenants with queued work sit in a round-robin ring; each visit grants a
// quantum of credit, and a tenant dispatches its FIFO head only when its
// credit covers the head's predicted cost. Over any backlogged interval
// every tenant therefore receives within (quantum + max item cost) of an
// equal share of dispatched predicted milliseconds — the fairness bound
// the serve path advertises.
//
// With a single tenant the ring degenerates to the exact FIFO the
// batcher's lanes used before: credit bookkeeping is bypassed entirely,
// so the default (no -tenant-header) configuration reproduces the
// untenanted scheduler decision-for-decision.
type Queue[T any] struct {
	quantum float64
	tenants map[string]*tenantQ[T]
	ring    []*tenantQ[T]
	cur     int
	size    int
}

// NewQueue builds an empty queue; quantumMs <= 0 selects
// DefaultQuantumMs.
func NewQueue[T any](quantumMs float64) *Queue[T] {
	if quantumMs <= 0 {
		quantumMs = DefaultQuantumMs
	}
	return &Queue[T]{quantum: quantumMs, tenants: map[string]*tenantQ[T]{}}
}

// Len reports the queued item count across all tenants.
func (q *Queue[T]) Len() int { return q.size }

// Push appends v to tenant's FIFO backlog at the given predicted cost
// (negative costs are treated as free). A tenant whose backlog was empty
// joins the ring at the tail.
func (q *Queue[T]) Push(tenant string, costMs float64, v T) {
	if costMs < 0 {
		costMs = 0
	}
	t := q.tenants[tenant]
	if t == nil {
		t = &tenantQ[T]{name: tenant}
		q.tenants[tenant] = t
	}
	if len(t.entries) == 0 {
		q.ring = append(q.ring, t)
	}
	t.entries = append(t.entries, entry[T]{v: v, cost: costMs})
	t.queuedMs += costMs
	q.size++
}

// Head returns the item the next Pop would dispatch, without dispatching
// it or moving any credit — the batcher peeks to apply its cold-lane
// deferral rules before committing.
func (q *Queue[T]) Head() (v T, tenant string, ok bool) {
	var zero T
	if q.size == 0 {
		return zero, "", false
	}
	if len(q.ring) == 1 {
		t := q.ring[0]
		return t.entries[0].v, t.name, true
	}
	// Simulate the Pop scan on copied credit.
	def := make([]float64, len(q.ring))
	for i, t := range q.ring {
		def[i] = t.deficit
	}
	cur := q.cur
	for {
		t := q.ring[cur]
		if def[cur] >= t.entries[0].cost {
			return t.entries[0].v, t.name, true
		}
		def[cur] += q.quantum
		cur = (cur + 1) % len(q.ring)
	}
}

// Pop dispatches and returns the next item by deficit round robin, or
// ok=false on an empty queue.
func (q *Queue[T]) Pop() (v T, ok bool) {
	var zero T
	if q.size == 0 {
		return zero, false
	}
	if len(q.ring) == 1 {
		// Single tenant: plain FIFO, no credit bookkeeping.
		return q.serveCur(), true
	}
	for {
		t := q.ring[q.cur]
		if t.deficit >= t.entries[0].cost {
			return q.serveCur(), true
		}
		t.deficit += q.quantum
		q.cur = (q.cur + 1) % len(q.ring)
	}
}

// serveCur dispatches the FIFO head of the ring's current tenant,
// retiring the tenant from the ring (credit forfeited, per classic DRR)
// when its backlog drains.
func (q *Queue[T]) serveCur() T {
	t := q.ring[q.cur]
	head := t.entries[0]
	t.entries = t.entries[1:]
	if t.deficit -= head.cost; t.deficit < 0 {
		t.deficit = 0
	}
	t.queuedMs -= head.cost
	if t.queuedMs < 0 {
		t.queuedMs = 0
	}
	t.servedMs += head.cost
	t.served++
	q.size--
	if len(t.entries) == 0 {
		t.deficit = 0
		q.ring = append(q.ring[:q.cur], q.ring[q.cur+1:]...)
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
	}
	return head.v
}

// TenantStats is one tenant's scheduling accounting.
type TenantStats struct {
	Tenant   string  `json:"tenant"`
	Queued   int     `json:"queued"`
	QueuedMs float64 `json:"queued_predicted_ms"`
	Served   int64   `json:"served"`
	ServedMs float64 `json:"served_predicted_ms"`
}

// Stats returns per-tenant accounting for every tenant ever seen, sorted
// by tenant name for deterministic metrics output.
func (q *Queue[T]) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(q.tenants))
	for _, t := range q.tenants {
		out = append(out, TenantStats{
			Tenant:   t.name,
			Queued:   len(t.entries),
			QueuedMs: t.queuedMs,
			Served:   t.served,
			ServedMs: t.servedMs,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
