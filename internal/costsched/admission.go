package costsched

import (
	"math"
	"sync"
)

// Retry-After clamps: a drained queue still tells the client to back off
// a full second (sub-second retries thrash the admission gate), and a
// pathological backlog never advertises more than ten minutes (by then
// the prediction is stale anyway).
const (
	retryAfterMinSec = 1
	retryAfterMaxSec = 600
)

// RetryAfterSeconds converts a predicted drain time to the Retry-After
// header value: ceiling seconds, clamped to [1s, 600s].
func RetryAfterSeconds(drainMs float64) int {
	if math.IsNaN(drainMs) || drainMs <= 0 {
		return retryAfterMinSec
	}
	sec := int(math.Ceil(drainMs / 1000))
	if sec < retryAfterMinSec {
		return retryAfterMinSec
	}
	if sec > retryAfterMaxSec {
		return retryAfterMaxSec
	}
	return sec
}

// Admission tracks the predicted milliseconds of admitted work still in
// flight and sheds new work once the predicted drain time — inflight
// predicted ms divided by the worker count — would exceed the deadline
// budget. With budget 0 it never sheds and only tracks, which is what
// prices the Retry-After header on depth-full 503s. Safe for concurrent
// use.
type Admission struct {
	budgetMs float64
	workers  int

	mu         sync.Mutex
	inflight   int
	inflightMs float64
	admitted   int64
	shed       int64
}

// NewAdmission builds a tracker for the given deadline budget (<= 0
// disables shedding) spread across workers (< 1 treated as 1).
func NewAdmission(budgetMs float64, workers int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if budgetMs < 0 {
		budgetMs = 0
	}
	return &Admission{budgetMs: budgetMs, workers: workers}
}

// BudgetMs reports the configured deadline budget (0 = shedding off).
func (a *Admission) BudgetMs() float64 { return a.budgetMs }

// Admit accounts one request of predicted costMs. ok=false means the
// request must be shed: admitting it would push the predicted drain time
// past the budget. drainMs is the predicted drain of work already in
// flight (excluding the refused request) — what Retry-After is computed
// from. On ok the cost is added to the in-flight total and the caller
// must pair the call with Done.
func (a *Admission) Admit(costMs float64) (ok bool, drainMs float64) {
	if costMs < 0 || math.IsNaN(costMs) {
		costMs = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	drain := a.inflightMs / float64(a.workers)
	if a.budgetMs > 0 && (a.inflightMs+costMs)/float64(a.workers) > a.budgetMs {
		a.shed++
		return false, drain
	}
	a.inflight++
	a.inflightMs += costMs
	a.admitted++
	return true, drain
}

// Done releases an admitted request's cost; costMs must be the value
// passed to the matching Admit.
func (a *Admission) Done(costMs float64) {
	if costMs < 0 || math.IsNaN(costMs) {
		costMs = 0
	}
	a.mu.Lock()
	a.inflight--
	a.inflightMs -= costMs
	// Float drift on long-running servers must never fabricate phantom
	// backlog (or a negative one).
	if a.inflight < 0 {
		a.inflight = 0
	}
	if a.inflightMs < 0 || a.inflight == 0 {
		a.inflightMs = 0
	}
	a.mu.Unlock()
}

// DrainMs returns the predicted drain time of the work now in flight.
func (a *Admission) DrainMs() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflightMs / float64(a.workers)
}

// AdmissionStats is a point-in-time snapshot of the tracker.
type AdmissionStats struct {
	BudgetMs   float64 `json:"budget_ms"`
	Inflight   int     `json:"inflight"`
	InflightMs float64 `json:"inflight_predicted_ms"`
	DrainMs    float64 `json:"predicted_drain_ms"`
	Admitted   int64   `json:"admitted"`
	Shed       int64   `json:"shed_over_budget"`
}

// Stats returns the current snapshot.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		BudgetMs:   a.budgetMs,
		Inflight:   a.inflight,
		InflightMs: a.inflightMs,
		DrainMs:    a.inflightMs / float64(a.workers),
		Admitted:   a.admitted,
		Shed:       a.shed,
	}
}
