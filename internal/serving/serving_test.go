package serving

import (
	"math"
	"testing"

	"repro/internal/hwmodel"
)

func testCfg(p hwmodel.Profile) Config {
	return Config{GPU: hwmodel.A800(), Model: hwmodel.Llama2_7B(), Profile: p}
}

func TestPoissonTrace(t *testing.T) {
	reqs := PoissonTrace(1, 500, 2.0, 2000, 128)
	if len(reqs) != 500 {
		t.Fatalf("got %d requests", len(reqs))
	}
	prev := 0.0
	for _, r := range reqs {
		if r.ArrivalTime < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.ArrivalTime
	}
	// Mean inter-arrival should approximate 1/rate.
	mean := reqs[len(reqs)-1].ArrivalTime / float64(len(reqs))
	if math.Abs(mean-0.5) > 0.1 {
		t.Fatalf("mean inter-arrival %v, want ~0.5", mean)
	}
}

func TestSimulateEmpty(t *testing.T) {
	st, err := Simulate(testCfg(hwmodel.ProfileAtom()), nil)
	if err != nil || st.Completed != 0 {
		t.Fatalf("empty trace: %+v, %v", st, err)
	}
}

func TestSimulateCompletesAll(t *testing.T) {
	reqs := PoissonTrace(2, 200, 5, 2000, 128)
	st, err := Simulate(testCfg(hwmodel.ProfileCocktail(32, nil)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed+st.Rejected != 200 {
		t.Fatalf("lost requests: %+v", st)
	}
	if st.Rejected != 0 {
		t.Fatalf("unexpected rejections: %d", st.Rejected)
	}
	if st.MeanLatency <= 0 || st.P95Latency < st.MeanLatency/2 {
		t.Fatalf("suspicious latencies: %+v", st)
	}
}

// TestBackPressureBatches: under heavy load the scheduler should batch.
func TestBackPressureBatches(t *testing.T) {
	// All requests arrive at t~0 -> one big batch limited by memory.
	reqs := make([]Request, 300)
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalTime: 0, ContextTokens: 2000, OutputTokens: 128}
	}
	st, err := Simulate(testCfg(hwmodel.ProfileAtom()), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanBatch < 10 {
		t.Fatalf("expected large batches under pressure, got mean %v", st.MeanBatch)
	}
}

// TestCocktailServesMoreUnderLoad: at saturating load, Cocktail's smaller
// cache admits larger batches and yields higher throughput than FP16 —
// the serving-level restatement of Figure 6.
func TestCocktailServesMoreUnderLoad(t *testing.T) {
	reqs := make([]Request, 400)
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalTime: 0, ContextTokens: 2000, OutputTokens: 128}
	}
	stFP, err := Simulate(testCfg(hwmodel.ProfileFP16()), reqs)
	if err != nil {
		t.Fatal(err)
	}
	stCT, err := Simulate(testCfg(hwmodel.ProfileCocktail(32, nil)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stCT.ThroughputTokS <= stFP.ThroughputTokS {
		t.Fatalf("Cocktail %v tok/s not above FP16 %v tok/s",
			stCT.ThroughputTokS, stFP.ThroughputTokS)
	}
	if stCT.MeanBatch <= stFP.MeanBatch {
		t.Fatalf("Cocktail mean batch %v not above FP16 %v", stCT.MeanBatch, stFP.MeanBatch)
	}
}

// TestLightLoadFavorsNoSearch: at batch-1 load (sparse arrivals), the
// uniform methods' zero search latency wins on mean latency.
func TestLightLoadFavorsNoSearch(t *testing.T) {
	reqs := PoissonTrace(3, 40, 0.05, 2000, 128) // one request every ~20s
	stAtom, err := Simulate(testCfg(hwmodel.ProfileAtom()), reqs)
	if err != nil {
		t.Fatal(err)
	}
	stCT, err := Simulate(testCfg(hwmodel.ProfileCocktail(32, nil)), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if stCT.MeanLatency <= stAtom.MeanLatency {
		t.Fatalf("Cocktail latency %v should exceed Atom %v at light load",
			stCT.MeanLatency, stAtom.MeanLatency)
	}
}

func TestRejectImpossibleRequests(t *testing.T) {
	cfg := testCfg(hwmodel.ProfileFP16())
	reqs := []Request{{ID: 0, ArrivalTime: 0, ContextTokens: 1 << 20, OutputTokens: 128}}
	st, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.Completed != 0 {
		t.Fatalf("expected rejection: %+v", st)
	}
}

func TestMaxBatchCap(t *testing.T) {
	cfg := testCfg(hwmodel.ProfileAtom())
	cfg.MaxBatch = 4
	reqs := make([]Request, 40)
	for i := range reqs {
		reqs[i] = Request{ID: i, ArrivalTime: 0, ContextTokens: 2000, OutputTokens: 128}
	}
	st, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanBatch > 4 {
		t.Fatalf("batch cap violated: %v", st.MeanBatch)
	}
	if st.Batches != 10 {
		t.Fatalf("expected 10 batches, got %d", st.Batches)
	}
}

func TestCompareMethods(t *testing.T) {
	reqs := PoissonTrace(5, 60, 2, 2000, 128)
	stats, err := CompareMethods(hwmodel.A800(), hwmodel.Llama2_7B(),
		[]hwmodel.Profile{hwmodel.ProfileFP16(), hwmodel.ProfileCocktail(32, nil)}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	for name, st := range stats {
		if st.Completed == 0 {
			t.Fatalf("%s completed nothing", name)
		}
	}
}

// TestLatencySummarySmallN pins the clamped nearest-rank P95 at small
// sample sizes — the regression test for the `% len(latencies)` indexing
// this replaced, which would wrap a boundary index back to the sample
// *minimum* instead of clamping to the maximum.
func TestLatencySummarySmallN(t *testing.T) {
	for n := 1; n <= 25; n++ {
		sample := make([]float64, n)
		// Descending input also proves the summary sorts a copy.
		for i := range sample {
			sample[i] = float64(n - i)
		}
		mean, p95 := LatencySummary(sample)
		wantIdx := int(float64(n) * 0.95)
		if wantIdx >= n {
			wantIdx = n - 1
		}
		if want := float64(wantIdx + 1); p95 != want {
			t.Fatalf("n=%d: p95 = %v, want sorted[%d] = %v", n, p95, wantIdx, want)
		}
		if n <= 20 && p95 != float64(n) {
			t.Fatalf("n=%d: p95 = %v, want the sample max %d for n<=20", n, p95, n)
		}
		if want := float64(n+1) / 2; mean != want {
			t.Fatalf("n=%d: mean = %v, want %v", n, mean, want)
		}
		if sample[0] != float64(n) {
			t.Fatalf("n=%d: LatencySummary mutated its input", n)
		}
	}
	if mean, p95 := LatencySummary(nil); mean != 0 || p95 != 0 {
		t.Fatalf("empty sample: got (%v, %v), want zeros", mean, p95)
	}
}

// TestServiceTimeMatchesSolo: ServiceTime must equal what Simulate
// charges a lone request, so rate normalization built on it agrees with
// the simulator it is normalizing for.
func TestServiceTimeMatchesSolo(t *testing.T) {
	cfg := testCfg(hwmodel.ProfileCocktail(32, nil))
	reqs := []Request{{ID: 0, ArrivalTime: 1.5, ContextTokens: 2000, OutputTokens: 128}}
	st, err := Simulate(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	svc := ServiceTime(cfg, 2000, 128)
	if svc <= 0 {
		t.Fatalf("non-positive service time %v", svc)
	}
	if got, want := st.SimTime, 1.5+svc; math.Abs(got-want) > 1e-9 {
		t.Fatalf("solo SimTime %v, want arrival + ServiceTime = %v", got, want)
	}
	if st.MeanLatency != st.P95Latency {
		t.Fatalf("single sample: mean %v != p95 %v", st.MeanLatency, st.P95Latency)
	}
}
