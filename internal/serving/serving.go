// Package serving is a discrete-event simulator of a batched LLM serving
// system built on the hardware cost model. Figure 6's throughput curves
// come from a closed-form formula at a fixed batch size; this simulator
// generalizes them to arrival processes, admission control against GPU
// memory, and static batch scheduling — the regime the paper's serving
// comparison (vLLM-style) actually runs in.
package serving

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hwmodel"
	"repro/internal/rngx"
)

// Request is one inference job. Requests are plain values owned by the
// caller; Simulate never mutates its input slice.
type Request struct {
	ID            int
	ArrivalTime   float64 // seconds since trace start
	ContextTokens int     // prompt length in tokens
	OutputTokens  int     // generation length in tokens
}

// PoissonTrace generates n requests with exponential inter-arrival times
// at the given rate (requests/second) and fixed shape.
func PoissonTrace(seed uint64, n int, rate float64, ctxTokens, outTokens int) []Request {
	r := rngx.New(seed)
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += -math.Log(1-r.Float64()) / rate
		reqs[i] = Request{ID: i, ArrivalTime: t, ContextTokens: ctxTokens, OutputTokens: outTokens}
	}
	return reqs
}

// Config describes the simulated server. It is a plain value; sharing
// one Config across concurrent Simulate calls is safe (Simulate only
// reads it).
type Config struct {
	GPU     hwmodel.GPUSpec
	Model   hwmodel.ModelDims
	Profile hwmodel.Profile
	// MaxBatch caps the scheduler's batch size (0 = memory-limited only).
	MaxBatch int
}

// Stats summarizes one simulation run. Time fields are in simulated
// seconds; token counts are generated output tokens.
type Stats struct {
	Completed       int
	Rejected        int     // requests that can never fit (even alone)
	SimTime         float64 // total simulated span in seconds
	TokensGenerated int64
	// ThroughputTokS is generated tokens per second of simulated time.
	ThroughputTokS float64
	// MeanLatency and P95Latency cover arrival -> completion, in seconds.
	MeanLatency, P95Latency float64
	// MeanBatch is the average scheduled batch size (requests per batch).
	MeanBatch float64
	Batches   int
}

// maxFit returns the largest batch of identical requests that fits in GPU
// memory under the profile, capped at limit.
func maxFit(cfg Config, ctx, out, limit int) int {
	lo, hi := 0, limit
	for lo < hi {
		mid := (lo + hi + 1) / 2
		wl := hwmodel.Workload{ContextTokens: ctx, OutputTokens: out, Batch: mid}
		if hwmodel.Memory(cfg.Model, wl, cfg.Profile) <= cfg.GPU.MemoryBytes {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Simulate runs static-batch scheduling over the request trace: when the
// GPU is free, all waiting requests (up to the memory-fitting batch size)
// are launched together; the batch occupies the GPU for search + prefill +
// output·TPOT seconds. Simulate is pure (its only state is local), so
// concurrent simulations over shared configs and traces are safe.
func Simulate(cfg Config, reqs []Request) (Stats, error) {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 20
	}
	if len(reqs) == 0 {
		return Stats{}, nil
	}
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })

	var st Stats
	var latencies []float64
	now := 0.0
	i := 0
	for i < len(sorted) {
		if sorted[i].ArrivalTime > now {
			now = sorted[i].ArrivalTime
		}
		// Collect the waiting window (identical-shape batching).
		j := i
		for j < len(sorted) && sorted[j].ArrivalTime <= now {
			j++
		}
		ctx, out := sorted[i].ContextTokens, sorted[i].OutputTokens
		fit := maxFit(cfg, ctx, out, cfg.MaxBatch)
		if fit == 0 {
			// This request can never run on this GPU under this profile.
			st.Rejected++
			i++
			continue
		}
		batch := j - i
		if batch > fit {
			batch = fit
		}
		wl := hwmodel.Workload{ContextTokens: ctx, OutputTokens: out, Batch: batch}
		dur := hwmodel.PrefillLatency(cfg.GPU, cfg.Model, wl) +
			cfg.Profile.SearchSeconds(ctx, batch) +
			float64(out)*hwmodel.TPOT(cfg.GPU, cfg.Model, wl, cfg.Profile)
		if dur <= 0 {
			return st, fmt.Errorf("serving: non-positive batch duration")
		}
		now += dur
		for k := i; k < i+batch; k++ {
			latencies = append(latencies, now-sorted[k].ArrivalTime)
			st.TokensGenerated += int64(out)
		}
		st.Completed += batch
		st.Batches++
		st.MeanBatch += float64(batch)
		i += batch
	}
	st.SimTime = now
	if st.Batches > 0 {
		st.MeanBatch /= float64(st.Batches)
	}
	if now > 0 {
		st.ThroughputTokS = float64(st.TokensGenerated) / now
	}
	st.MeanLatency, st.P95Latency = LatencySummary(latencies)
	return st, nil
}

// LatencySummary reduces a latency sample to (mean, p95). The p95 is the
// nearest-rank element at index ⌊0.95·n⌋ of the sorted sample, clamped to
// the last element — the previous `% len` spelling would wrap an index at
// the boundary back to the *minimum*, silently reporting P0 as P95. For
// n ≤ 20 the clamped rank is the sample maximum. A zero-length sample
// yields zeros. The input slice is not mutated.
func LatencySummary(latencies []float64) (mean, p95 float64) {
	if len(latencies) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(latencies))
	copy(sorted, latencies)
	sort.Float64s(sorted)
	var sum float64
	for _, l := range sorted {
		sum += l
	}
	idx := int(float64(len(sorted)) * 0.95)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sum / float64(len(sorted)), sorted[idx]
}

// ServiceTime returns the simulated duration of a single request of the
// given shape run alone (batch 1): prefill + quantization search +
// out·TPOT. It is the natural unit for normalizing arrival rates — a rate
// of k/ServiceTime(...) loads the simulated server at k× its single-
// stream capacity — which is how the sim-vs-live replay tests express
// "the same pressure" in two systems whose absolute speeds differ by
// orders of magnitude.
func ServiceTime(cfg Config, ctxTokens, outTokens int) float64 {
	wl := hwmodel.Workload{ContextTokens: ctxTokens, OutputTokens: outTokens, Batch: 1}
	return hwmodel.PrefillLatency(cfg.GPU, cfg.Model, wl) +
		cfg.Profile.SearchSeconds(ctxTokens, 1) +
		float64(outTokens)*hwmodel.TPOT(cfg.GPU, cfg.Model, wl, cfg.Profile)
}

// CompareMethods runs the same trace under several profiles and returns
// per-profile stats — the serving-level analog of Figure 6.
func CompareMethods(gpu hwmodel.GPUSpec, dims hwmodel.ModelDims, profiles []hwmodel.Profile, reqs []Request) (map[string]Stats, error) {
	out := make(map[string]Stats, len(profiles))
	for _, p := range profiles {
		st, err := Simulate(Config{GPU: gpu, Model: dims, Profile: p}, reqs)
		if err != nil {
			return nil, fmt.Errorf("serving: %s: %w", p.Name, err)
		}
		out[p.Name] = st
	}
	return out, nil
}
