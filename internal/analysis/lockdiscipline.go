package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerLockDiscipline enforces the sessioncache Sweep contract: a
// Policy callback executed while the store mutex is held stalls every
// concurrent Get/Put for the duration of arbitrary policy code, so each
// such call must be a conscious, annotated decision (the store's own
// callbacks are bounded — Sweep releases the mutex every batch — and
// each site carries a //cocktail:allow lockdiscipline with that reason).
//
// Detection is a linear lock-span walk over each function body: a
// sync.Mutex/RWMutex Lock() opens a span, Unlock() closes it, a deferred
// Unlock holds it to the end of the function, and a function whose name
// ends in "Locked" (the package's callers-hold-mu convention) starts
// with the span open. Any call whose receiver's static type is the
// package's Policy interface inside an open span is flagged.
var AnalyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "flag Policy interface callbacks made while the store mutex is " +
		"held (the Sweep contract: batched release, callbacks outside " +
		"the critical section)",
	Applies: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/sessioncache")
	},
	Run: runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	policy := policyInterface(p.Pkg)
	if policy == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			w := &lockWalker{pass: p, policy: policy}
			// The package convention: a function named *Locked runs with
			// the caller's lock held.
			w.held = strings.HasSuffix(fn.Name.Name, "Locked")
			w.stmts(fn.Body.List)
		}
	}
}

// policyInterface resolves the package-scope interface type named
// "Policy", or nil when the package declares none.
func policyInterface(pkg *types.Package) *types.TypeName {
	obj, ok := pkg.Scope().Lookup("Policy").(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isIface := obj.Type().Underlying().(*types.Interface); !isIface {
		return nil
	}
	return obj
}

// lockWalker tracks whether a mutex is held while walking one function
// body in source order.
type lockWalker struct {
	pass   *Pass
	policy *types.TypeName
	held   bool
}

// stmts processes a statement list in order, updating the lock state at
// Lock/Unlock/defer-Unlock statements and checking every other
// statement's expressions for Policy calls under the open span.
func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if name, ok := w.mutexCall(s.X); ok {
			switch name {
			case "Lock", "RLock":
				w.held = true
			case "Unlock", "RUnlock":
				w.held = false
			}
			return
		}
		w.check(s.X)
	case *ast.DeferStmt:
		if name, ok := w.mutexCall(s.Call); ok && (name == "Unlock" || name == "RUnlock") {
			// defer mu.Unlock(): the span stays open for the rest of the
			// function body.
			w.held = true
			return
		}
		w.check(s.Call)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.check(s.Cond)
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.check(s.Cond)
		}
		w.stmt(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.check(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.check(s.Tag)
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.check(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	default:
		// Assignments, returns, go statements, sends, ...: no lock-state
		// change, but their expressions may call the policy.
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.checkShallow(e)
			}
			return true
		})
	}
}

// check inspects one expression tree for Policy method calls under the
// open span.
func (w *lockWalker) check(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			w.policyCall(call)
		}
		return true
	})
}

// checkShallow checks a single node (used by the generic statement
// fallback, where ast.Inspect already provides the traversal).
func (w *lockWalker) checkShallow(e ast.Expr) {
	if call, ok := e.(*ast.CallExpr); ok {
		w.policyCall(call)
	}
}

// policyCall reports call if its receiver's static type is the package's
// Policy interface and the mutex span is open.
func (w *lockWalker) policyCall(call *ast.CallExpr) {
	if !w.held {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	t := w.pass.Info.TypeOf(sel.X)
	if t == nil {
		return
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() != w.policy.Type().(*types.Named).Obj() {
		return
	}
	w.pass.Reportf(call.Pos(), "Policy.%s called while the store mutex is held: policy callbacks "+
		"stall every concurrent Get/Put — run them outside the critical section or in bounded "+
		"batches, and annotate the deliberate sites //cocktail:allow lockdiscipline <reason>",
		sel.Sel.Name)
}

// mutexCall reports whether e is a method call on a sync.Mutex or
// sync.RWMutex (by the receiver's static type), returning the method
// name.
func (w *lockWalker) mutexCall(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := w.pass.Info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", false
	}
	if name := obj.Name(); name != "Mutex" && name != "RWMutex" {
		return "", false
	}
	return sel.Sel.Name, true
}
