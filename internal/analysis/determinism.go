package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// deterministicPkgs are the import-path suffixes of the packages whose
// outputs feed the paper's tables and the byte-identical cache
// guarantees; every draw of randomness there must come from an explicit
// seeded stream (internal/rngx) so runs reproduce bit-for-bit.
var deterministicPkgs = map[string]bool{
	"core": true, "search": true, "kvcache": true, "quant": true,
	"encoder": true, "model": true, "datasets": true, "corpus": true,
	"workload": true, "experiments": true,
}

// AnalyzerDeterminism forbids the randomness and ordering hazards that
// would break bit-reproducibility in the experiment-bearing packages:
// the math/rand import itself (global funcs draw from shared process
// state, and even a seeded source is a second RNG lineage — prefer
// rngx.RNG.Split-derived streams), time-seeded sources, and ranging over
// a map while writing ordered output (slices, writers), since map
// iteration order changes run to run.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: "forbid math/rand and map-range iteration feeding ordered output " +
		"in the packages whose results must be bit-reproducible",
	Applies: func(pkgPath string) bool {
		i := strings.LastIndex(pkgPath, "/")
		return i >= 0 && strings.HasSuffix(pkgPath[:i], "internal") && deterministicPkgs[pkgPath[i+1:]]
	},
	Run: runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s in a bit-reproducible package: prefer repro/internal/rngx "+
					"(derive per-component streams with rngx.RNG.Split)", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkRandCall(n)
			case *ast.FuncDecl:
				if n.Body != nil {
					p.checkMapRangeOutput(n)
				}
			}
			return true
		})
	}
}

// checkRandCall flags calls to math/rand's package-level functions. The
// seeded constructors (New, NewSource, NewZipf, NewPCG, ...) are exempt —
// a deliberately retained seeded stream is annotatable at the import —
// except that a source seeded from the clock is flagged outright: it is
// unreproducible by construction.
func (p *Pass) checkRandCall(call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on *rand.Rand etc. draw from an explicit source
	}
	if strings.HasPrefix(fn.Name(), "New") {
		if arg := clockSeededArg(p.Info, call); arg != nil {
			p.Reportf(call.Pos(), "rand.%s seeded from the clock: the stream differs every run — "+
				"seed from configuration (or use repro/internal/rngx)", fn.Name())
		}
		return
	}
	p.Reportf(call.Pos(), "global math/rand.%s draws from shared process-wide state: "+
		"use an explicit seeded stream (repro/internal/rngx, rngx.RNG.Split)", fn.Name())
}

// clockSeededArg returns the first argument expression that reads the
// clock (any call into package time), or nil.
func clockSeededArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		var found bool
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, inner); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				found = true
				return false
			}
			return true
		})
		if found {
			return arg
		}
	}
	return nil
}

// checkMapRangeOutput flags range-over-map loops whose body feeds
// ordered output: appending to a slice that outlives the loop, or
// writing through an io.Writer / strings.Builder style method. A loop
// whose collected slice is sorted later in the same function is clean —
// collect-then-sort is exactly the sanctioned pattern.
func (p *Pass) checkMapRangeOutput(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		p.checkMapRangeBody(fn, rng)
		return true
	})
}

// orderedWriteMethods are method names that emit output in call order.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func (p *Pass) checkMapRangeBody(fn *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(p.Info, call) || i >= len(n.Lhs) {
					continue
				}
				dst, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.ObjectOf(dst)
				if obj == nil || within(rng.Pos(), rng.End(), obj.Pos()) {
					continue // loop-local accumulator: invisible outside
				}
				if sortedLater(p.Info, fn, rng, obj) {
					continue
				}
				p.Reportf(n.Pos(), "append to %q inside range over a map: iteration order is "+
					"nondeterministic — collect keys, sort, then iterate (or sort %q before use)",
					dst.Name, dst.Name)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !orderedWriteMethods[sel.Sel.Name] {
				return true
			}
			fnObj := calleeFunc(p.Info, n)
			if fnObj == nil {
				return true
			}
			p.Reportf(n.Pos(), "%s inside range over a map emits output in map order, which is "+
				"nondeterministic — collect keys, sort, then iterate", sel.Sel.Name)
			return false
		}
		return true
	})
}

// sortedLater reports whether obj is passed to a sort.* / slices.Sort*
// call after the range loop, anywhere in the function.
func sortedLater(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if pkg := callee.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// within reports whether pos lies in [start, end].
func within(start, end, pos token.Pos) bool { return pos >= start && pos <= end }

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// calleeFunc resolves a call's static callee to its *types.Func, nil for
// builtins, type conversions, and calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}
