package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadModuleFixture drives Load + Run end to end over the
// self-contained module at testdata/module: pattern expansion walks the
// tree, import paths resolve against the fixture go.mod, test files are
// skipped (the fixture's _test.go would not even type-check), and the
// one planted violation surfaces.
func TestLoadModuleFixture(t *testing.T) {
	root := filepath.Join("testdata", "module")
	pkgs, err := Load(root, nil) // nil patterns default to ./...
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	want := []string{"fixturemod", "fixturemod/internal/search"}
	if strings.Join(paths, " ") != strings.Join(want, " ") {
		t.Fatalf("loaded %v, want %v", paths, want)
	}

	diags := Run(pkgs, All())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "import of math/rand") {
		t.Errorf("diags[0] = %q, want the math/rand import finding", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "math/rand.Intn") {
		t.Errorf("diags[1] = %q, want the global draw finding", diags[1].Message)
	}
}

// TestLoadSinglePackagePattern names one package without the /...
// suffix.
func TestLoadSinglePackagePattern(t *testing.T) {
	root := filepath.Join("testdata", "module")
	pkgs, err := Load(root, []string{"./internal/search"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "fixturemod/internal/search" {
		t.Fatalf("loaded %v, want just fixturemod/internal/search", pkgs)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir(), nil); err == nil {
		t.Error("Load without go.mod: want error")
	}

	noModule := t.TempDir()
	if err := os.WriteFile(filepath.Join(noModule, "go.mod"), []byte("// no module line\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(noModule, nil); err == nil {
		t.Error("Load with module-less go.mod: want error")
	}

	if _, err := Load(filepath.Join("testdata", "module"), []string{"./nosuchdir"}); err == nil {
		t.Error("Load with missing pattern dir: want error")
	}

	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "go.mod"), []byte("module badmod\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "broken.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad, nil); err == nil {
		t.Error("Load with unparsable source: want error")
	}
}
