package analysis

import (
	"go/ast"
	"strings"
)

// clockPkgs are the import-path suffixes of the packages that own
// TTL/expiry or scheduling state. A direct wall-clock read there makes
// the behaviour untestable without real sleeps and lets two code paths
// disagree about "now" mid-operation; sessioncache and httpapi carry an
// injectable now func() time.Time (Options.Now) that every expiry and
// queue-age decision must flow through, and costsched is clock-free by
// contract — its admission and fairness decisions depend only on the
// predicted costs it is handed, never on wall time.
var clockPkgs = map[string]bool{
	"sessioncache": true,
	"httpapi":      true,
	"costsched":    true,
}

// AnalyzerClockInject forbids direct time.Now / time.Since calls in the
// TTL-owning packages. Referencing time.Now as a value (the injection
// default, `o.Now = time.Now`) is fine — only reading the clock inline
// is a violation. Latency-metric call sites, which genuinely want the
// real clock and never feed expiry state, carry a reasoned
// //cocktail:allow clockinject annotation.
var AnalyzerClockInject = &Analyzer{
	Name: "clockinject",
	Doc: "forbid direct time.Now/time.Since in packages owning TTL/expiry " +
		"state; use the injected now func() time.Time",
	Applies: func(pkgPath string) bool {
		i := strings.LastIndex(pkgPath, "/")
		return i >= 0 && strings.HasSuffix(pkgPath[:i], "internal") && clockPkgs[pkgPath[i+1:]]
	},
	Run: runClockInject,
}

func runClockInject(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if name := fn.Name(); name == "Now" || name == "Since" || name == "Until" {
				p.Reportf(call.Pos(), "direct time.%s in a TTL-owning package: expiry state must read "+
					"the injected clock (Options.Now / now func() time.Time) so tests control time — "+
					"latency-metric sites annotate //cocktail:allow clockinject <reason>", name)
			}
			return true
		})
	}
}
