package analysis

// Fixture harness: each analyzer is proven against a synthetic package
// under testdata/src/<name>/ whose sources carry analysistest-style
//
//	// want `regex`
//
// comments on the lines expected to fire. The harness type-checks the
// fixture with the same source importer the real loader uses, runs the
// full runPackage path (so //cocktail:allow filtering is exercised
// in-fixture too), and then demands an exact bijection: every
// diagnostic must match a want on its line, every want must be
// consumed.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one fixture directory as a
// package with the given import path — chosen per test so the analyzer
// under test's Applies predicate matches, which keeps the predicate
// itself under test.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixtureWant is one expectation: a message regex pinned to a line.
type fixtureWant struct {
	re      *regexp.Regexp
	matched bool
}

// fixtureWants collects the want-comments per file:line.
func fixtureWants(t *testing.T, pkg *Package) map[string][]*fixtureWant {
	t.Helper()
	wants := make(map[string][]*fixtureWant)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regex %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], &fixtureWant{re: re})
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over the fixture through the full
// Run path and verifies the diagnostics against the want-comments.
func checkFixture(t *testing.T, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	wants := fixtureWants(t, pkg)
	for _, d := range Run([]*Package{pkg}, analyzers) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		var hit bool
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, hit = true, true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: want %q: no diagnostic fired", key, w.re)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "determinism"), "fixture/internal/search")
	checkFixture(t, pkg, AnalyzerDeterminism)
}

func TestClockInjectFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "clockinject"), "fixture/internal/httpapi")
	checkFixture(t, pkg, AnalyzerClockInject)
}

// TestClockInjectCoversCostsched: the cost-scheduling package is in the
// clock-owning set, so the same fixture violations fire when the package
// path ends in internal/costsched (the package is clock-free by
// contract; the analyzer is what enforces it).
func TestClockInjectCoversCostsched(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "clockinject"), "fixture/internal/costsched")
	checkFixture(t, pkg, AnalyzerClockInject)
}

func TestLockDisciplineFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "lockdiscipline"), "fixture/internal/sessioncache")
	checkFixture(t, pkg, AnalyzerLockDiscipline)
}

func TestImmutabilityFixture(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "immutability"), "fixture/immutability")
	checkFixture(t, pkg, AnalyzerImmutability)
}

// TestLockDisciplineWithoutPolicy: a sessioncache-pathed package that
// declares no Policy interface produces no findings (the analyzer has
// nothing to guard).
func TestLockDisciplineWithoutPolicy(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "immutability"), "fixture2/internal/sessioncache")
	if diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerLockDiscipline}); len(diags) != 0 {
		t.Errorf("got %v, want none", diags)
	}
}

// TestLockDisciplineNonInterfacePolicy: a package-scope Policy that is
// not an interface type is ignored.
func TestLockDisciplineNonInterfacePolicy(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\n// Policy is a value type here, not the callback interface.\ntype Policy int\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := loadFixture(t, dir, "fixture3/internal/sessioncache")
	if diags := Run([]*Package{pkg}, []*Analyzer{AnalyzerLockDiscipline}); len(diags) != 0 {
		t.Errorf("got %v, want none", diags)
	}
}

// TestAllowHygiene pins the annotation-hygiene diagnostics (bare allow,
// unknown analyzer, stale allow) and proves a consumed allow is not
// reported stale. Expectations are positional because the findings
// land on comment lines, where want-comments cannot ride along.
func TestAllowHygiene(t *testing.T) {
	pkg := loadFixture(t, filepath.Join("testdata", "src", "allowhygiene"), "fixture/internal/httpapi")
	diags := Run([]*Package{pkg}, All())
	expect := []string{
		"bare //cocktail:allow",
		"unknown analyzer \"nosuchanalyzer\"",
		"stale //cocktail:allow immutability",
	}
	if len(diags) != len(expect) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(expect), diags)
	}
	for i, substr := range expect {
		if diags[i].Analyzer != "allow" {
			t.Errorf("diags[%d].Analyzer = %q, want \"allow\"", i, diags[i].Analyzer)
		}
		if !strings.Contains(diags[i].Message, substr) {
			t.Errorf("diags[%d] = %q, want substring %q", i, diags[i].Message, substr)
		}
	}
}

// TestAppliesRosters pins each analyzer's package roster, the exact
// surface CI relies on when deciding what a clean run proved.
func TestAppliesRosters(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{AnalyzerDeterminism, "repro/internal/search", true},
		{AnalyzerDeterminism, "repro/internal/workload", true},
		{AnalyzerDeterminism, "repro/internal/httpapi", false},
		{AnalyzerDeterminism, "repro/internal/analysis", false},
		{AnalyzerDeterminism, "repro", false},
		{AnalyzerClockInject, "repro/internal/sessioncache", true},
		{AnalyzerClockInject, "repro/internal/httpapi", true},
		{AnalyzerClockInject, "repro/internal/core", false},
		{AnalyzerLockDiscipline, "repro/internal/sessioncache", true},
		{AnalyzerLockDiscipline, "repro/internal/httpapi", false},
	}
	for _, c := range cases {
		if got := c.a.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if AnalyzerImmutability.Applies != nil {
		t.Error("immutability must apply to every package (nil Applies)")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "determinism",
		Message:  "boom",
	}
	if got, want := d.String(), "x.go:3:7: determinism: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestAllRoster(t *testing.T) {
	names := make([]string, 0, 4)
	for _, a := range All() {
		names = append(names, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
	want := []string{"clockinject", "determinism", "immutability", "lockdiscipline"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("All() = %v, want %v", names, want)
	}
}
