package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// immutableDirective marks a type declaration whose fields are read-only
// after construction; the analyzer enforces it within the declaring
// package (where the unexported fields live).
const immutableDirective = "cocktail:immutable"

// immutableTypes is the cross-package roster of shared read-only types
// from DESIGN.md's concurrency contract. Their declarations also carry
// the //cocktail:immutable marker; this list keeps the contract
// enforced for their exported fields even from other packages, where the
// marker (which lives on the declaration's AST) is out of view.
var immutableTypes = map[[2]string]bool{
	{"repro", "Pipeline"}:                true,
	{"repro/internal/model", "Model"}:    true,
	{"repro/internal/corpus", "Lexicon"}: true,
}

// AnalyzerImmutability flags assignments to fields of immutable-after-New
// types outside their constructors. The whole concurrency model rests on
// these types being frozen once built — every request reads them without
// a lock — so a stray field write is a data race by design, not just a
// style problem. Constructors are the declaring package's New*/new*
// functions (and init); everything else, methods included, is read-only
// territory.
var AnalyzerImmutability = &Analyzer{
	Name: "immutability",
	Doc: "flag assignments to fields of //cocktail:immutable types " +
		"(Pipeline and DESIGN.md's read-only equivalents) outside their " +
		"constructors",
	Run: runImmutability,
}

func runImmutability(p *Pass) {
	marked := markedTypes(p)
	isProtected := func(obj *types.TypeName) bool {
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		if marked[obj] {
			return true
		}
		return immutableTypes[[2]string{obj.Pkg().Path(), obj.Name()}]
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inConstructor := isConstructorName(fn.Name.Name)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						p.checkImmutableWrite(lhs, inConstructor, isProtected)
					}
				case *ast.IncDecStmt:
					p.checkImmutableWrite(n.X, inConstructor, isProtected)
				}
				return true
			})
		}
	}
}

// markedTypes collects the package's //cocktail:immutable-marked type
// objects from the declarations' doc comments.
func markedTypes(p *Pass) map[*types.TypeName]bool {
	marked := make(map[*types.TypeName]bool)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasDirective(gd.Doc, immutableDirective) && !hasDirective(ts.Doc, immutableDirective) {
					continue
				}
				if obj, ok := p.Info.Defs[ts.Name].(*types.TypeName); ok {
					marked[obj] = true
				}
			}
		}
	}
	return marked
}

// hasDirective reports whether the comment group contains the given
// //-directive on a line of its own.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// isConstructorName reports whether a function name is a sanctioned
// construction context for immutable types: the New*/new* builders and
// package init.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// checkImmutableWrite flags lhs when it writes a field of a protected
// type outside a constructor. The constructor exception only covers the
// declaring package's own New* functions: another package assigning an
// exported field is never construction.
func (p *Pass) checkImmutableWrite(lhs ast.Expr, inConstructor bool, isProtected func(*types.TypeName) bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := p.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	t := selection.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if !isProtected(obj) {
		return
	}
	if inConstructor && obj.Pkg() == p.Pkg {
		return
	}
	p.Reportf(lhs.Pos(), "assignment to %s.%s outside its constructor: %s is read-only after New "+
		"(//cocktail:immutable — the concurrency model lets every request read it lock-free)",
		obj.Name(), sel.Sel.Name, obj.Name())
}
