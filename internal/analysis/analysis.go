// Package analysis implements cocktail-vet, the repo-contract analyzer
// suite. It turns the prose invariants this reproduction's results stand
// on — deterministic randomness, injectable clocks around TTL state, the
// Sweep lock discipline, Pipeline immutability — into machine-checked
// build failures, using nothing but the standard library (go/parser,
// go/ast, go/types with the source importer; go.mod stays dependency
// free).
//
// The suite (see DESIGN.md "Enforced invariants" for the contracts):
//
//   - determinism: forbids math/rand (global funcs, time-seeded sources,
//     even the import — prefer internal/rngx) and map-range iteration
//     feeding ordered output in the experiment-bearing packages.
//   - clockinject: forbids direct time.Now/time.Since in the packages
//     that own TTL/expiry state; they must use the injected
//     now func() time.Time their Options already carry.
//   - lockdiscipline: flags calls to the sessioncache Policy interface
//     made while Store.mu is held, so every callback-under-mutex is a
//     conscious, annotated decision (the PR 5 Sweep contract).
//   - immutability: flags assignments to fields of types documented
//     read-only after construction (cocktail.Pipeline and the
//     //cocktail:immutable-marked internal equivalents) outside their
//     constructors.
//
// Suppression: a finding that is intentional is silenced with a
//
//	//cocktail:allow <analyzer> <reason>
//
// comment on the offending line or the line directly above it. The
// reason is mandatory — a bare allow is itself a diagnostic — and so is
// honesty: an allow that suppresses nothing (stale after a refactor) is
// reported too, so annotations cannot rot in place.
//
// The cmd/cocktail-vet binary wires Load + Run + All into a go-vet-style
// driver; CI runs it between `go vet` and the test step.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: an invariant violation (or a malformed /
// stale allow annotation) at a source position.
type Diagnostic struct {
	// Pos locates the finding (file:line:column).
	Pos token.Position
	// Analyzer names the rule that fired ("determinism", ...; allow
	// hygiene findings use "allow").
	Analyzer string
	// Message states the violation and the sanctioned alternative.
	Message string
}

// String formats the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer's view of one type-checked package. Analyzers
// read the AST and type information and call Reportf; they must not
// retain the Pass past Run.
type Pass struct {
	// Fset maps token positions to file positions for every file of the
	// package (and its imports).
	Fset *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's resolutions (Uses, Defs, Types,
	// Selections) for Files.
	Info *types.Info

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one rule of the suite.
type Analyzer struct {
	// Name is the rule's identifier, used in diagnostics and in
	// //cocktail:allow annotations.
	Name string
	// Doc is the one-paragraph contract the rule enforces.
	Doc string
	// Applies reports whether the rule covers the package with the given
	// import path; nil means every package. The driver consults it —
	// fixture tests bypass it to exercise a rule on synthetic packages.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings on the Pass.
	Run func(*Pass)
}

// All returns the full analyzer suite in diagnostic-label order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerClockInject,
		AnalyzerDeterminism,
		AnalyzerImmutability,
		AnalyzerLockDiscipline,
	}
}

// Run applies analyzers to pkgs, honoring each analyzer's Applies
// predicate and the //cocktail:allow annotations in the sources, and
// returns the surviving diagnostics in file/line order. Allow-annotation
// hygiene findings (bare allow, unknown analyzer, stale allow) are
// appended under the "allow" label.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, runPackage(pkg, analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// runPackage runs the applicable analyzers over one package and filters
// the findings through the package's allow annotations.
func runPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allows, hygiene := collectAllows(pkg, analyzers)
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		diags = append(diags, runAnalyzer(pkg, a)...)
	}
	kept := filterAllowed(diags, allows)
	for _, al := range allows {
		if !al.used && al.wellFormed {
			hygiene = append(hygiene, Diagnostic{
				Pos:      pkg.Fset.Position(al.pos),
				Analyzer: "allow",
				Message: fmt.Sprintf("stale //cocktail:allow %s: it suppresses nothing — delete it (reason was: %s)",
					al.analyzer, al.reason),
			})
		}
	}
	return append(kept, hygiene...)
}

// runAnalyzer runs one analyzer over one package.
func runAnalyzer(pkg *Package, a *Analyzer) []Diagnostic {
	pass := &Pass{
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		analyzer: a,
	}
	a.Run(pass)
	return pass.diags
}
