package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// allowDirective is the comment prefix that suppresses a finding:
//
//	//cocktail:allow <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; a bare allow (or one naming an unknown analyzer) is
// itself a diagnostic, and an allow that suppresses nothing is reported
// as stale.
const allowDirective = "cocktail:allow"

// allowAnnotation is one parsed //cocktail:allow comment.
type allowAnnotation struct {
	analyzer   string
	reason     string
	pos        token.Pos
	file       string
	line       int
	wellFormed bool // has both analyzer and reason
	used       bool // suppressed at least one diagnostic
}

// collectAllows parses every //cocktail:allow annotation in the
// package's files, returning the well-formed annotations plus the
// hygiene diagnostics for malformed ones (missing reason, unknown
// analyzer name).
func collectAllows(pkg *Package, analyzers []*Analyzer) ([]*allowAnnotation, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var allows []*allowAnnotation
	var hygiene []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					hygiene = append(hygiene, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message: fmt.Sprintf("bare //%s: the form is //%s <analyzer> <reason> — every allow must say why",
							allowDirective, allowDirective),
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					hygiene = append(hygiene, Diagnostic{
						Pos:      pos,
						Analyzer: "allow",
						Message:  fmt.Sprintf("//%s names unknown analyzer %q", allowDirective, name),
					})
					continue
				}
				allows = append(allows, &allowAnnotation{
					analyzer:   name,
					reason:     strings.Join(fields[1:], " "),
					pos:        c.Pos(),
					file:       pos.Filename,
					line:       pos.Line,
					wellFormed: true,
				})
			}
		}
	}
	return allows, hygiene
}

// filterAllowed drops diagnostics covered by an allow annotation of the
// same analyzer on the same line or the line directly above, marking the
// annotations it consumed.
func filterAllowed(diags []Diagnostic, allows []*allowAnnotation) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, al := range allows {
			if al.analyzer != d.Analyzer || al.file != d.Pos.Filename {
				continue
			}
			if al.line == d.Pos.Line || al.line == d.Pos.Line-1 {
				al.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
