// Package search sits at a path the determinism analyzer applies to
// and imports math/rand, so an end-to-end Load + Run over this module
// yields exactly one finding.
package search

import "math/rand"

// Draw violates the determinism contract twice over (import + global
// draw); the import finding is what the loader test pins.
func Draw() int { return rand.Intn(3) }
