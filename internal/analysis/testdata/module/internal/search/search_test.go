// This file exists so the loader test can prove test files are NOT
// loaded: it would not type-check against the fixture module (package
// testing is fine, the undefined identifier below is not).
package search

var _ = thisIdentifierDoesNotExist
