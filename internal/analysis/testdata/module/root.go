// Package fixturemod is the root package of the loader fixture module:
// Load must resolve its import path to the bare module path.
package fixturemod

// Version is read by nothing; the package exists to be loaded.
const Version = "fixture"
