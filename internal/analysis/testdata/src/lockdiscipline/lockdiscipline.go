// Package lockdiscipline exercises the lock-span walker: explicit
// Lock/Unlock spans, deferred unlocks, RWMutex read spans, the *Locked
// naming convention, loop bodies, and the annotated escape hatch.
package lockdiscipline

import (
	"sync"
	"time"
)

// Policy mirrors the store's callback interface; the analyzer resolves
// it by its package-scope name.
type Policy interface {
	OnHit(k string, now time.Time)
	OnMiss(k string, now time.Time)
	Stats() int
}

type Store struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	policy Policy
}

// span: a callback inside an explicit Lock/Unlock span fires; after the
// Unlock the span is closed.
func (s *Store) span(now time.Time) {
	s.mu.Lock()
	s.policy.OnHit("k", now) // want `Policy\.OnHit called while the store mutex is held`
	s.mu.Unlock()
	s.policy.OnMiss("k", now)
}

// deferred: a deferred Unlock holds the span to the end of the
// function, through branches and assignments.
func (s *Store) deferred(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now.IsZero() {
		s.policy.OnMiss("k", now) // want `Policy\.OnMiss called while the store mutex is held`
	}
	n := s.policy.Stats() // want `Policy\.Stats called while the store mutex is held`
	return n
}

// reader: an RLock opens a span too — policy work stalls writers.
func (s *Store) reader(now time.Time) {
	s.rw.RLock()
	s.policy.OnHit("k", now) // want `Policy\.OnHit called while the store mutex is held`
	s.rw.RUnlock()
}

// sweepLocked follows the callers-hold-mu naming convention: the span
// is open on entry, including inside loops.
func (s *Store) sweepLocked(keys []string, now time.Time) {
	for _, k := range keys {
		s.policy.OnMiss(k, now) // want `Policy\.OnMiss called while the store mutex is held`
	}
}

// unlocked holds no span: callbacks run outside the critical section.
func (s *Store) unlocked(now time.Time) {
	s.policy.OnHit("k", now)
}

// allowed is the deliberate, annotated site.
func (s *Store) allowed(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//cocktail:allow lockdiscipline fixture: bounded O(1) callback by contract
	s.policy.OnHit("k", now)
}

// branches drives the walker through the remaining statement shapes:
// switch, type switch, select, labeled loops.
func (s *Store) branches(mode int, ch chan string, now time.Time) {
	s.mu.Lock()
	switch mode {
	case 0:
		s.policy.OnHit("k", now) // want `Policy\.OnHit called while the store mutex is held`
	default:
		s.policy.OnMiss("k", now) // want `Policy\.OnMiss called while the store mutex is held`
	}
	switch v := any(mode).(type) {
	case int:
		_ = v
		s.policy.OnHit("ts", now) // want `Policy\.OnHit called while the store mutex is held`
	}
	select {
	case k := <-ch:
		s.policy.OnMiss(k, now) // want `Policy\.OnMiss called while the store mutex is held`
	default:
	}
loop:
	for i := 0; i < 1; i++ {
		s.policy.OnHit("f", now) // want `Policy\.OnHit called while the store mutex is held`
		break loop
	}
	s.mu.Unlock()
}

// fakeLocker has Lock/Unlock methods but is not a sync mutex: its span
// must not count, and calls on non-Policy receivers must not fire.
type fakeLocker struct{}

func (fakeLocker) Lock()   {}
func (fakeLocker) Unlock() {}

func (s *Store) notAMutex(fl fakeLocker, now time.Time) {
	fl.Lock()
	s.policy.OnHit("k", now)
	fl.Unlock()
	s.mu.Lock()
	fl.Lock() // a non-mutex call under the real span: not a Policy call
	s.mu.Unlock()
}
