// Package allowhygiene holds malformed, unknown-name, stale and
// consumed //cocktail:allow annotations. The expectations live in
// TestAllowHygiene rather than want-comments: the findings point at the
// annotation lines themselves, where a second comment cannot ride
// along.
package allowhygiene

import "time"

//cocktail:allow
var bare = 1

//cocktail:allow nosuchanalyzer a reason does not save an unknown name
var unknown = 2

// stale: well-formed, but immutability never fires on this line.
//
//cocktail:allow immutability this suppresses nothing
var stale = 3

// consumed suppresses the clockinject finding below (the fixture's
// package path is chosen so clockinject applies) and must not be
// reported stale.
func consumed() time.Time {
	//cocktail:allow clockinject fixture: consumed allow
	return time.Now()
}
