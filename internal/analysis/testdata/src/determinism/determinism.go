// Package determinism exercises the determinism analyzer: the
// math/rand import, global draws, clock-seeded sources, and map-range
// loops feeding ordered output (plus the sanctioned collect-then-sort
// and loop-local shapes, which must stay clean).
package determinism

import (
	"fmt"
	"math/rand" // want `import of math/rand in a bit-reproducible package`
	"sort"
	"strings"
	"time"
)

// globals draws from shared process-wide state.
func globals() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from shared process-wide state`
}

// seeded retains an explicit seeded stream: the constructors are
// exempt (the import-level finding is the annotation point).
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// clockSeeded is unreproducible by construction.
func clockSeeded() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `rand\.NewSource seeded from the clock`
}

// mapOrder feeds ordered output straight out of map iteration.
func mapOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over a map`
	}
	return out
}

// mapCollectSort is the sanctioned pattern: collect, sort, use.
func mapCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapLocal accumulates into a loop-local slice: invisible outside the
// iteration, so order cannot leak.
func mapLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// mapWrite emits through a writer in map order.
func mapWrite(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want `Fprintf inside range over a map emits output in map order`
	}
}

// sliceRange is not a map: ordered output from a slice range is fine.
func sliceRange(xs []string, b *strings.Builder) {
	for _, x := range xs {
		b.WriteString(x)
	}
}
