// Package clockinject exercises the clockinject analyzer: direct clock
// reads fire, the injected-now pattern and value references stay clean,
// and //cocktail:allow works on the same line and the line above.
package clockinject

import "time"

type registry struct {
	now func() time.Time
	ttl time.Duration
}

// newRegistry shows the injection default: referencing time.Now as a
// value is legal — only calling it inline reads the wall clock.
func newRegistry(ttl time.Duration) *registry {
	return &registry{now: time.Now, ttl: ttl}
}

// expired flows the expiry decision through the injected clock.
func (r *registry) expired(last time.Time) bool {
	return r.now().Sub(last) > r.ttl
}

func direct() time.Time {
	return time.Now() // want `direct time\.Now in a TTL-owning package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `direct time\.Since in a TTL-owning package`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `direct time\.Until in a TTL-owning package`
}

// allowedSameLine is a latency-metric style site annotated in place.
func allowedSameLine() time.Time {
	return time.Now() //cocktail:allow clockinject fixture: same-line placement
}

// allowedLineAbove is annotated on the line directly above.
func allowedLineAbove() time.Time {
	//cocktail:allow clockinject fixture: line-above placement
	return time.Now()
}
