// Package immutability exercises the //cocktail:immutable contract:
// writes inside the declaring package's constructors (and init) are
// sanctioned construction, every other field write fires, and unmarked
// types stay writable.
package immutability

// Frozen is read-only after NewFrozen.
//
//cocktail:immutable
type Frozen struct {
	N    int
	name string
}

// Mutable carries no marker: writes anywhere are fine.
type Mutable struct{ N int }

var def = &Frozen{}

// init is a sanctioned construction context.
func init() {
	def.N = 1
}

// NewFrozen is the sanctioned constructor.
func NewFrozen(n int, name string) *Frozen {
	f := &Frozen{}
	f.N = n
	f.name = name
	return f
}

// Rename writes a frozen field from a method: under the lock-free
// concurrency model this is a data race by design.
func (f *Frozen) Rename(name string) {
	f.name = name // want `assignment to Frozen\.name outside its constructor`
}

func bump(f *Frozen) {
	f.N++ // want `assignment to Frozen\.N outside its constructor`
}

func mutate(m *Mutable) {
	m.N = 7
}
