package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the package's directory on disk.
	Dir string
	// Fset positions the package's files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolutions for Files.
	Info *types.Info
}

// Load parses and type-checks the packages selected by patterns,
// resolved relative to root (the module directory, which must hold a
// go.mod). Patterns follow the go tool's shape: "./..." walks the whole
// module, "./internal/foo" names one package. Test files are not loaded:
// the contracts the suite enforces are production invariants, and tests
// legitimately use real clocks and ad-hoc randomness.
//
// Type-checking uses go/types with the stdlib source importer, so the
// analyzers see fully resolved types without any external dependency.
func Load(root string, patterns []string) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expand(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// One importer for every package: it caches its from-source
	// type-checks, so shared dependencies (the module root package, the
	// stdlib) are resolved once per process, not once per package.
	imp := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{Importer: imp}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, &conf, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// modulePath reads the module path out of root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// expand resolves go-tool-style package patterns to package directories
// under root, deduplicated and sorted.
func expand(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		fi, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata trees are analyzer fixtures, not module packages;
			// hidden dirs (.git, .github) are never Go packages.
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks one directory's non-test files,
// returning nil (no error) when the directory holds no Go package.
func loadDir(fset *token.FileSet, conf *types.Config, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
