// Package hwmodel is the analytic GPU cost model standing in for the
// paper's NVIDIA A800 testbed. It reproduces the quantities behind
// Figures 4–6 and Table V's cost columns from first principles:
//
//	GPU memory  = weights + per-request KV bytes at the plan's precision
//	              mix (including quantization scale/zero metadata and any
//	              dequantization workspace) + activation scratch.
//	TPOT        = decode-step memory traffic / effective HBM bandwidth,
//	              where traffic = weights + KV reads + cache-line
//	              over-fetch at every segment boundary of fragmented
//	              mixed-precision layouts.
//	Throughput  = generated tokens / (prefill + quantization search +
//	              output·TPOT), zero once memory exceeds capacity (OOM).
//
// The model dimensions are the real Llama2-7B/13B, Mistral-7B and
// Longchat-7B geometries; only the cost constants (bandwidth efficiency,
// search latencies) are calibrated, and each is a named constant below.
package hwmodel

import (
	"repro/internal/kvcache"
)

// GPUSpec describes the accelerator.
type GPUSpec struct {
	Name string
	// MemoryBytes is the device memory capacity.
	MemoryBytes int64
	// HBMBandwidth is peak memory bandwidth in bytes/second.
	HBMBandwidth float64
	// BandwidthEfficiency derates peak bandwidth to achieved decode
	// bandwidth (kernel overheads, partial-line reads).
	BandwidthEfficiency float64
	// CacheLineBytes is the memory transaction granularity: every
	// physically contiguous run of KV data wastes at most one line at
	// each end.
	CacheLineBytes int
	// FP16FLOPS is peak FP16 tensor throughput in FLOP/s.
	FP16FLOPS float64
	// ComputeEfficiency derates peak FLOPs for prefill GEMMs.
	ComputeEfficiency float64
}

// A800 returns the paper's testbed GPU (80 GB, ~2 TB/s HBM2e).
func A800() GPUSpec {
	return GPUSpec{
		Name:                "NVIDIA A800 80GB",
		MemoryBytes:         80 << 30,
		HBMBandwidth:        2.0e12,
		BandwidthEfficiency: 0.70,
		CacheLineBytes:      128,
		FP16FLOPS:           312e12,
		ComputeEfficiency:   0.45,
	}
}

// ModelDims is the geometry of a real served model.
type ModelDims struct {
	Name    string
	Layers  int
	Heads   int
	KVHeads int // < Heads under grouped-query attention
	HeadDim int
	Hidden  int
	Inter   int
	Vocab   int
	// MaxContext is the model's context window (tokens).
	MaxContext int
}

// The four models of the paper's evaluation.
func Llama2_7B() ModelDims {
	return ModelDims{Name: "Llama2-7B", Layers: 32, Heads: 32, KVHeads: 32,
		HeadDim: 128, Hidden: 4096, Inter: 11008, Vocab: 32000, MaxContext: 4096}
}

// Llama2_13B returns the Llama2-13B geometry.
func Llama2_13B() ModelDims {
	return ModelDims{Name: "Llama2-13B", Layers: 40, Heads: 40, KVHeads: 40,
		HeadDim: 128, Hidden: 5120, Inter: 13824, Vocab: 32000, MaxContext: 4096}
}

// Mistral7B returns the Mistral-7B geometry (GQA: 8 KV heads).
func Mistral7B() ModelDims {
	return ModelDims{Name: "Mistral-7B", Layers: 32, Heads: 32, KVHeads: 8,
		HeadDim: 128, Hidden: 4096, Inter: 14336, Vocab: 32000, MaxContext: 32768}
}

// Longchat7B returns the Longchat-7B geometry (Llama-7B with 32K RoPE).
func Longchat7B() ModelDims {
	return ModelDims{Name: "Longchat-7B", Layers: 32, Heads: 32, KVHeads: 32,
		HeadDim: 128, Hidden: 4096, Inter: 11008, Vocab: 32000, MaxContext: 32768}
}

// AllModels returns the evaluation models in paper order.
func AllModels() []ModelDims {
	return []ModelDims{Llama2_7B(), Llama2_13B(), Mistral7B(), Longchat7B()}
}

// Params returns the parameter count implied by the geometry.
func (d ModelDims) Params() int64 {
	perLayer := int64(d.Hidden)*int64(d.Hidden)*2 + // Q, O projections
		int64(d.Hidden)*int64(d.KVHeads*d.HeadDim)*2 + // K, V projections
		int64(d.Hidden)*int64(d.Inter)*3 // gate/up/down MLP
	return int64(d.Layers)*perLayer + 2*int64(d.Vocab)*int64(d.Hidden)
}

// WeightBytes returns FP16 weight storage.
func (d ModelDims) WeightBytes() int64 { return 2 * d.Params() }

// kvValuesPerToken is the number of KV scalars stored per token
// (K and V across layers and KV heads).
func (d ModelDims) kvValuesPerToken() int64 {
	return int64(d.Layers) * int64(d.KVHeads) * int64(d.HeadDim) * 2
}

// KVBytesPerTokenFP16 is the FP16 KV footprint of one token.
func (d ModelDims) KVBytesPerTokenFP16() int64 { return 2 * d.kvValuesPerToken() }

// quantGroupSize is the scale-group size assumed for metadata accounting,
// matching the functional cache's default.
const quantGroupSize = 32

// bytesPerValue returns storage bytes per KV scalar at a precision,
// including FP16 scale+zero metadata per group for integer precisions.
func bytesPerValue(p kvcache.Precision) float64 {
	if p == kvcache.FP16 {
		return 2
	}
	return float64(p.Bits())/8 + 4.0/quantGroupSize
}

// Profile captures the cost-relevant behaviour of one quantization method.
type Profile struct {
	Name string
	// Frac is the fraction of context tokens stored at each precision.
	Frac map[kvcache.Precision]float64
	// RunsPerHead returns the number of contiguous same-precision runs in
	// the physical layout of one (layer, head) K or V cache.
	RunsPerHead func(contextTokens int) int
	// DequantWorkspace marks methods that cannot run fused mixed-precision
	// kernels (no reordering): the cache is dequantized into a full FP16
	// workspace that must be both stored and re-read every decode step.
	DequantWorkspace bool
	// SearchSeconds is the total quantization-search latency added to a
	// batch of requests. Search runs batched on the GPU, so it has a fixed
	// latency-bound component plus a throughput-bound per-item component —
	// which is exactly why the paper's Figure 6 shows Cocktail's search
	// becoming negligible at large batch sizes.
	SearchSeconds func(contextTokens, batch int) float64
}

// Calibrated search-latency constants.
const (
	// cocktailSearchFixed is the latency-bound encoder invocation cost
	// (dominates at batch 1).
	cocktailSearchFixed = 0.220
	// cocktailSearchPerChunk is the throughput-bound batched per-chunk
	// embedding cost.
	cocktailSearchPerChunk = 10e-6
	// kvquantSearchFixed is KVQuant's per-batch search setup cost.
	kvquantSearchFixed = 0.250
	// kvquantSearchPerToken is KVQuant's throughput-bound token-level
	// search cost; the paper attributes its throughput loss to this term
	// (token granularity means ~chunkSize× more work than Cocktail).
	kvquantSearchPerToken = 30e-6
)

func noSearch(int, int) float64 { return 0 }

// ProfileFP16 is the unquantized baseline.
func ProfileFP16() Profile {
	return Profile{
		Name:          "FP16",
		Frac:          map[kvcache.Precision]float64{kvcache.FP16: 1},
		RunsPerHead:   func(int) int { return 1 },
		SearchSeconds: noSearch,
	}
}

// ProfileAtom is uniform INT4 (one contiguous run, no search).
func ProfileAtom() Profile {
	return Profile{
		Name:          "Atom",
		Frac:          map[kvcache.Precision]float64{kvcache.INT4: 1},
		RunsPerHead:   func(int) int { return 1 },
		SearchSeconds: noSearch,
	}
}

// ProfileKIVI is uniform INT4 with KIVI's per-channel K grouping; the
// byte/traffic accounting is the same as Atom's.
func ProfileKIVI() Profile {
	p := ProfileAtom()
	p.Name = "KIVI"
	return p
}

// ProfileKVQuant has outlierFrac of tokens FP16 scattered through the
// layout (two extra runs per outlier) and a token-level search pass.
func ProfileKVQuant(outlierFrac float64) Profile {
	return Profile{
		Name: "KVQuant",
		Frac: map[kvcache.Precision]float64{
			kvcache.INT4: 1 - outlierFrac,
			kvcache.FP16: outlierFrac,
		},
		RunsPerHead: func(ctx int) int {
			return 1 + 2*int(float64(ctx)*outlierFrac)
		},
		SearchSeconds: func(ctx, batch int) float64 {
			return kvquantSearchFixed + kvquantSearchPerToken*float64(ctx)*float64(batch)
		},
	}
}

// CocktailFractions is the default precision mix measured on the
// LongBench-analog workloads at the paper's operating point
// (α=0.6, β=0.1): most chunks are irrelevant (INT2), a band is INT4 and
// the few query-relevant chunks stay FP16.
func CocktailFractions() map[kvcache.Precision]float64 {
	return map[kvcache.Precision]float64{
		kvcache.INT2: 0.72,
		kvcache.INT4: 0.20,
		kvcache.FP16: 0.08,
	}
}

// ProfileCocktail is chunk-adaptive mixed precision with Module II
// reordering: at most one run per precision, chunk-level search.
func ProfileCocktail(chunkSize int, frac map[kvcache.Precision]float64) Profile {
	if frac == nil {
		frac = CocktailFractions()
	}
	return Profile{
		Name:        "Cocktail",
		Frac:        frac,
		RunsPerHead: func(int) int { return len(frac) },
		SearchSeconds: func(ctx, batch int) float64 {
			chunks := ctx / chunkSize
			return cocktailSearchFixed + cocktailSearchPerChunk*float64(chunks)*float64(batch)
		},
	}
}

// ProfileCocktailNoReorder is the Table V "w/o Module II" ablation:
// the same precision mix, but chunks stay in logical order, so runs are
// per-chunk and the fused kernels are replaced by a full FP16
// dequantization workspace.
func ProfileCocktailNoReorder(chunkSize int, frac map[kvcache.Precision]float64) Profile {
	p := ProfileCocktail(chunkSize, frac)
	p.Name = "Cocktail w/o reorder"
	p.RunsPerHead = func(ctx int) int {
		n := ctx / chunkSize
		if n < 1 {
			n = 1
		}
		return n
	}
	p.DequantWorkspace = true
	return p
}

// ProfileFromPlan derives a profile from an actual kvcache plan (used to
// feed measured Cocktail precision mixes into the cost model).
func ProfileFromPlan(name string, plan *kvcache.Plan, search func(ctx, batch int) float64) Profile {
	counts := plan.Counts()
	frac := map[kvcache.Precision]float64{}
	total := 0
	for _, n := range counts {
		total += n
	}
	for p, n := range counts {
		if n > 0 {
			frac[p] = float64(n) / float64(total)
		}
	}
	runs := len(plan.SegmentRuns())
	if search == nil {
		search = noSearch
	}
	return Profile{
		Name:          name,
		Frac:          frac,
		RunsPerHead:   func(int) int { return runs },
		SearchSeconds: search,
	}
}

// Workload describes one serving scenario.
type Workload struct {
	ContextTokens int
	OutputTokens  int
	Batch         int
}

// QMSumWorkload is the Figure 4/5 scenario: QMSum-length contexts
// truncated to the model's window (3.5K for the 4K models, 10K for the
// 32K models — QMSum meetings average ~10K tokens), batch 4, 128 output
// tokens as in the paper's setup.
func QMSumWorkload(d ModelDims) Workload {
	ctx := 10000
	if d.MaxContext <= 4096 {
		ctx = 3500
	}
	return Workload{ContextTokens: ctx, OutputTokens: 128, Batch: 4}
}

// contextKVBytes is the per-request context KV footprint under a profile.
func contextKVBytes(d ModelDims, ctx int, prof Profile) float64 {
	vals := float64(d.kvValuesPerToken())
	var perToken float64
	for p, f := range prof.Frac {
		perToken += f * bytesPerValue(p) * vals
	}
	return perToken * float64(ctx)
}

// activationBytes is the decode activation scratch per request.
func activationBytes(d ModelDims) float64 {
	return float64(8 * d.Hidden * 4) // a few hidden-sized FP32 buffers
}

// Memory returns the GPU memory footprint in bytes for the workload.
func Memory(d ModelDims, wl Workload, prof Profile) int64 {
	perReq := contextKVBytes(d, wl.ContextTokens, prof) +
		float64(wl.OutputTokens)*float64(d.KVBytesPerTokenFP16()) + // decode KV stays FP16
		activationBytes(d)
	if prof.DequantWorkspace {
		// The whole context is also materialized in FP16 for computation.
		perReq += float64(wl.ContextTokens) * float64(d.KVBytesPerTokenFP16())
	}
	return d.WeightBytes() + int64(perReq*float64(wl.Batch))
}

// TPOT returns the decode time-per-output-token in seconds.
func TPOT(g GPUSpec, d ModelDims, wl Workload, prof Profile) float64 {
	bw := g.HBMBandwidth * g.BandwidthEfficiency

	// Weights are streamed once per decode step (shared across the batch).
	traffic := float64(d.WeightBytes())

	// KV reads: quantized/FP16 context plus on average half the decode
	// tail, per request.
	kv := contextKVBytes(d, wl.ContextTokens, prof) +
		0.5*float64(wl.OutputTokens)*float64(d.KVBytesPerTokenFP16())
	if prof.DequantWorkspace {
		// Fused kernels unavailable: the FP16 workspace is what decode
		// actually reads, and the quantized copy is re-expanded into it.
		kv += float64(wl.ContextTokens) * float64(d.KVBytesPerTokenFP16())
	}

	// Cache-line over-fetch: each contiguous run wastes up to one line at
	// each boundary, per layer, per KV head, for K and for V.
	runs := prof.RunsPerHead(wl.ContextTokens)
	overfetch := float64(runs*d.Layers*d.KVHeads*2) * float64(g.CacheLineBytes)

	traffic += float64(wl.Batch) * (kv + overfetch)
	return traffic / bw
}

// PrefillLatency returns the prefill time in seconds (compute-bound GEMMs
// plus quadratic attention).
func PrefillLatency(g GPUSpec, d ModelDims, wl Workload) float64 {
	flops := 2 * float64(d.Params()) * float64(wl.ContextTokens) * float64(wl.Batch)
	attn := 4 * float64(d.Layers*d.Heads*d.HeadDim) *
		float64(wl.ContextTokens) * float64(wl.ContextTokens) * float64(wl.Batch)
	return (flops + attn) / (g.FP16FLOPS * g.ComputeEfficiency)
}

// Throughput returns end-to-end generation throughput in output tokens per
// second for a full batch, or 0 when the workload does not fit in memory
// (the OOM line breaks of Figure 6).
func Throughput(g GPUSpec, d ModelDims, wl Workload, prof Profile) float64 {
	if Memory(d, wl, prof) > g.MemoryBytes {
		return 0
	}
	lat := PrefillLatency(g, d, wl) +
		prof.SearchSeconds(wl.ContextTokens, wl.Batch) +
		float64(wl.OutputTokens)*TPOT(g, d, wl, prof)
	return float64(wl.Batch*wl.OutputTokens) / lat
}
