// Per-request pricing: the serving-side view of the analytic cost model.
//
// The figures machinery in hwmodel.go prices whole batched workloads
// (Throughput, Memory) for the paper's plots; the serve path instead needs
// a per-request answer to "how many milliseconds and KV bytes will this
// request cost if admitted right now?". Estimate derives exactly that from
// the same PrefillLatency/TPOT/Memory formulas at batch 1, and Pricer adds
// a calibration loop that folds measured serve latencies back into a
// bounded scale factor — the analytic model supplies the *shape*
// (monotone in context length and precision width), measurement supplies
// the absolute level.
package hwmodel

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/kvcache"
)

// DefaultDecodeBudget is the per-request decode budget assumed when
// pricing a request, matching the pipeline's fixed 64-token answer budget.
const DefaultDecodeBudget = 64

// Calibration scale clamps: measurement can move the analytic level by at
// most this factor in either direction, so a corrupted latency sample can
// never invert the model's ordering or zero out admission costs.
const (
	scaleMin = 0.05
	scaleMax = 20.0
)

// Estimate is the predicted cost of serving one request: prefill latency
// (including quantization search), steady-state decode latency per output
// token, and the KV-cache bytes the request pins while it runs.
type Estimate struct {
	PrefillMs  float64
	PerTokenMs float64
	KVBytes    int64
}

// TotalMs is the predicted wall-clock milliseconds to serve the request
// with the given decode budget.
func (e Estimate) TotalMs(outputTokens int) float64 {
	if outputTokens < 0 {
		outputTokens = 0
	}
	return e.PrefillMs + e.PerTokenMs*float64(outputTokens)
}

// ProfileByMethod maps a pipeline method name (the core.Methods roster:
// FP16, Atom, KIVI, KVQuant, Cocktail) to its cost profile. precision is
// the uniform storage precision for the uniform-quantization methods
// (Atom, KIVI); FP16 and the mixed-precision methods fix their own mix
// and ignore it. KVQuant uses the paper's 1% outlier fraction and
// Cocktail the default LongBench mix and chunk size 32.
func ProfileByMethod(method string, precision kvcache.Precision) (Profile, error) {
	switch method {
	case "FP16":
		return ProfileFP16(), nil
	case "Atom":
		p := ProfileAtom()
		p.Frac = map[kvcache.Precision]float64{precision: 1}
		return p, nil
	case "KIVI":
		p := ProfileKIVI()
		p.Frac = map[kvcache.Precision]float64{precision: 1}
		return p, nil
	case "KVQuant":
		return ProfileKVQuant(0.01), nil
	case "Cocktail":
		return ProfileCocktail(32, nil), nil
	}
	return Profile{}, fmt.Errorf("hwmodel: unknown method %q", method)
}

// DimsByModel maps a model name — real geometry ("Llama2-7B") or the
// pipeline's simulated roster spelling ("Llama2-7B-sim") — to its
// hardware dimensions. ok is false for unknown names, letting callers
// fall back to a default geometry instead of failing the request path.
func DimsByModel(name string) (d ModelDims, ok bool) {
	lookup := map[string]ModelDims{
		"Llama2-7B":   Llama2_7B(),
		"Llama2-13B":  Llama2_13B(),
		"Mistral-7B":  Mistral7B(),
		"Longchat-7B": Longchat7B(),
	}
	if d, ok := lookup[name]; ok {
		return d, true
	}
	// Simulated roster names are the real names with a "-sim" suffix.
	const simSuffix = "-sim"
	if n := len(name) - len(simSuffix); n > 0 && name[n:] == simSuffix {
		if d, ok := lookup[name[:n]]; ok {
			return d, true
		}
	}
	return ModelDims{}, false
}

// estimateAt prices one request at batch 1 under a profile, at
// calibration scale. Decode KV grows FP16 (as in Memory), and methods
// without fused kernels additionally pin a dequantization workspace.
func estimateAt(g GPUSpec, d ModelDims, prof Profile, contextTokens, outputTokens int, scale float64) Estimate {
	if contextTokens < 0 {
		contextTokens = 0
	}
	if outputTokens <= 0 {
		outputTokens = DefaultDecodeBudget
	}
	wl := Workload{ContextTokens: contextTokens, OutputTokens: outputTokens, Batch: 1}
	prefill := PrefillLatency(g, d, wl) + prof.SearchSeconds(contextTokens, 1)
	tpot := TPOT(g, d, wl, prof)
	kv := contextKVBytes(d, contextTokens, prof) +
		float64(outputTokens)*float64(d.KVBytesPerTokenFP16())
	if prof.DequantWorkspace {
		kv += float64(contextTokens) * float64(d.KVBytesPerTokenFP16())
	}
	return Estimate{
		PrefillMs:  prefill * 1000 * scale,
		PerTokenMs: tpot * 1000 * scale,
		KVBytes:    int64(math.Ceil(kv)),
	}
}

// Pricer prices requests against one (GPU, model) pair and keeps a
// calibration scale learned from measured serve latencies. Safe for
// concurrent use.
type Pricer struct {
	gpu  GPUSpec
	dims ModelDims

	mu sync.Mutex
	// Ratio-of-sums calibration: scale = Σ measured / Σ predicted over
	// every Observe call, clamped to [scaleMin, scaleMax]. Ratio of sums
	// (not mean of ratios) weights long requests proportionally to the
	// milliseconds they actually cost, and a single outlier sample moves
	// the estimate by its share of total time rather than 1/n.
	predMs float64
	measMs float64
	scale  float64

	profMu   sync.Mutex
	profiles map[profileKey]Profile
}

type profileKey struct {
	method    string
	precision kvcache.Precision
}

// NewPricer builds a pricer for the GPU/model pair with calibration
// scale 1 (the uncalibrated analytic model).
func NewPricer(g GPUSpec, d ModelDims) *Pricer {
	return &Pricer{gpu: g, dims: d, scale: 1, profiles: map[profileKey]Profile{}}
}

// Estimate prices one request of contextTokens under the named method at
// the given uniform precision (see ProfileByMethod), at the pricer's
// current calibration scale and the default decode budget.
func (p *Pricer) Estimate(contextTokens int, method string, precision kvcache.Precision) (Estimate, error) {
	prof, err := p.profile(method, precision)
	if err != nil {
		return Estimate{}, err
	}
	return estimateAt(p.gpu, p.dims, prof, contextTokens, DefaultDecodeBudget, p.Scale()), nil
}

// EstimateOutput is Estimate with an explicit decode budget
// (outputTokens <= 0 selects the default budget).
func (p *Pricer) EstimateOutput(contextTokens int, method string, precision kvcache.Precision, outputTokens int) (Estimate, error) {
	prof, err := p.profile(method, precision)
	if err != nil {
		return Estimate{}, err
	}
	return estimateAt(p.gpu, p.dims, prof, contextTokens, outputTokens, p.Scale()), nil
}

func (p *Pricer) profile(method string, precision kvcache.Precision) (Profile, error) {
	key := profileKey{method, precision}
	p.profMu.Lock()
	prof, ok := p.profiles[key]
	p.profMu.Unlock()
	if ok {
		return prof, nil
	}
	prof, err := ProfileByMethod(method, precision)
	if err != nil {
		return Profile{}, err
	}
	p.profMu.Lock()
	p.profiles[key] = prof
	p.profMu.Unlock()
	return prof, nil
}

// Observe folds one measured request latency back into the calibration
// scale. predictedMs is the estimate the request was admitted under
// (before this observation); measuredMs is its measured serve time.
// Non-positive samples are ignored.
func (p *Pricer) Observe(predictedMs, measuredMs float64) {
	if predictedMs <= 0 || measuredMs <= 0 ||
		math.IsNaN(predictedMs) || math.IsNaN(measuredMs) ||
		math.IsInf(predictedMs, 0) || math.IsInf(measuredMs, 0) {
		return
	}
	p.mu.Lock()
	p.predMs += predictedMs
	p.measMs += measuredMs
	s := p.measMs / p.predMs
	if s < scaleMin {
		s = scaleMin
	}
	if s > scaleMax {
		s = scaleMax
	}
	p.scale = s
	p.mu.Unlock()
}

// Scale returns the current calibration multiplier applied to latency
// estimates (1 until the first Observe).
func (p *Pricer) Scale() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scale
}

// Observations returns the cumulative predicted and measured milliseconds
// behind the current scale (both 0 until the first Observe).
func (p *Pricer) Observations() (predictedMs, measuredMs float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.predMs, p.measMs
}
