package hwmodel

import (
	"math"
	"testing"

	"repro/internal/kvcache"
)

func near(got, want, relTol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= relTol*math.Abs(want)
}

// TestEstimateGolden pins the per-request estimates for the paper-default
// shape (Llama2-7B at the 3.5K QMSum-truncated context, A800) across the
// full method roster, plus the long-context GQA shape (Mistral-7B at 10K).
// These are derived values of the calibrated figure constants: a change
// here means the cost model's absolute level moved, which reprices every
// admission decision — bump deliberately, with the constants.
func TestEstimateGolden(t *testing.T) {
	cases := []struct {
		model      ModelDims
		ctx        int
		method     string
		prefillMs  float64
		perTokenMs float64
		kvBytes    int64
	}{
		{Llama2_7B(), 3500, "FP16", 381.692120, 10.948819, 1868562432},
		{Llama2_7B(), 3500, "Atom", 381.692120, 10.047699, 606994432},
		{Llama2_7B(), 3500, "KIVI", 381.692120, 10.047699, 606994432},
		{Llama2_7B(), 3500, "KVQuant", 736.692120, 10.069817, 619610112},
		{Llama2_7B(), 3500, "Cocktail", 602.782120, 10.002198, 542769152},
		{Mistral7B(), 10000, "Cocktail", 1628.092344, 10.607891, 372113409},
	}
	for _, c := range cases {
		p := NewPricer(A800(), c.model)
		e, err := p.Estimate(c.ctx, c.method, kvcache.INT4)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.model.Name, c.method, err)
		}
		if !near(e.PrefillMs, c.prefillMs, 1e-6) {
			t.Errorf("%s/%s PrefillMs = %.6f, want %.6f", c.model.Name, c.method, e.PrefillMs, c.prefillMs)
		}
		if !near(e.PerTokenMs, c.perTokenMs, 1e-6) {
			t.Errorf("%s/%s PerTokenMs = %.6f, want %.6f", c.model.Name, c.method, e.PerTokenMs, c.perTokenMs)
		}
		if e.KVBytes != c.kvBytes {
			t.Errorf("%s/%s KVBytes = %d, want %d", c.model.Name, c.method, e.KVBytes, c.kvBytes)
		}
		want := c.prefillMs + 64*c.perTokenMs
		if !near(e.TotalMs(64), want, 1e-6) {
			t.Errorf("%s/%s TotalMs(64) = %.6f, want %.6f", c.model.Name, c.method, e.TotalMs(64), want)
		}
	}
}

// TestEstimateMonotoneInContext asserts that every cost component grows
// strictly with context length, for every method: a longer context can
// never be priced cheaper. This is the property admission ordering
// depends on, independent of the calibrated absolute level.
func TestEstimateMonotoneInContext(t *testing.T) {
	for _, method := range []string{"FP16", "Atom", "KIVI", "KVQuant", "Cocktail"} {
		p := NewPricer(A800(), Llama2_7B())
		prev, err := p.Estimate(256, method, kvcache.INT4)
		if err != nil {
			t.Fatal(err)
		}
		for _, ctx := range []int{512, 1024, 2048, 3500} {
			e, err := p.Estimate(ctx, method, kvcache.INT4)
			if err != nil {
				t.Fatal(err)
			}
			if e.PrefillMs <= prev.PrefillMs {
				t.Errorf("%s: PrefillMs not increasing at ctx %d: %v <= %v", method, ctx, e.PrefillMs, prev.PrefillMs)
			}
			if e.PerTokenMs <= prev.PerTokenMs {
				t.Errorf("%s: PerTokenMs not increasing at ctx %d: %v <= %v", method, ctx, e.PerTokenMs, prev.PerTokenMs)
			}
			if e.KVBytes <= prev.KVBytes {
				t.Errorf("%s: KVBytes not increasing at ctx %d: %v <= %v", method, ctx, e.KVBytes, prev.KVBytes)
			}
			prev = e
		}
	}
}

// TestEstimateMonotoneInPrecision asserts that widening the uniform
// storage precision never makes decode cheaper or the cache smaller:
// INT2 <= INT4 <= INT8 <= FP16 in both PerTokenMs and KVBytes.
func TestEstimateMonotoneInPrecision(t *testing.T) {
	p := NewPricer(A800(), Llama2_7B())
	precisions := []kvcache.Precision{kvcache.INT2, kvcache.INT4, kvcache.INT8, kvcache.FP16}
	var prev Estimate
	for i, prec := range precisions {
		e, err := p.Estimate(3500, "Atom", prec)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if e.PerTokenMs <= prev.PerTokenMs {
				t.Errorf("PerTokenMs not increasing at %v: %v <= %v", prec, e.PerTokenMs, prev.PerTokenMs)
			}
			if e.KVBytes <= prev.KVBytes {
				t.Errorf("KVBytes not increasing at %v: %v <= %v", prec, e.KVBytes, prev.KVBytes)
			}
		}
		prev = e
	}
}

func TestEstimateDefaults(t *testing.T) {
	p := NewPricer(A800(), Llama2_7B())
	// Negative context clamps to zero, not a panic or negative bytes.
	e, err := p.Estimate(-5, "FP16", kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	if e.KVBytes <= 0 || e.PrefillMs < 0 {
		t.Fatalf("negative context produced nonsense estimate: %+v", e)
	}
	// EstimateOutput with a non-positive budget falls back to the default.
	def, err := p.EstimateOutput(1024, "Cocktail", kvcache.INT4, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Estimate(1024, "Cocktail", kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	if def != base {
		t.Fatalf("EstimateOutput(0) = %+v, want default-budget estimate %+v", def, base)
	}
	// A bigger decode budget costs more total time and more KV bytes.
	big, err := p.EstimateOutput(1024, "Cocktail", kvcache.INT4, 4*DefaultDecodeBudget)
	if err != nil {
		t.Fatal(err)
	}
	if big.KVBytes <= base.KVBytes {
		t.Fatalf("larger decode budget shrank KVBytes: %d <= %d", big.KVBytes, base.KVBytes)
	}
	if e.TotalMs(-3) != e.PrefillMs {
		t.Fatalf("TotalMs with negative budget should be prefill only")
	}
	if _, err := p.Estimate(100, "NoSuchMethod", kvcache.INT4); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestProfileByMethodRoster(t *testing.T) {
	for _, m := range []string{"FP16", "Atom", "KIVI", "KVQuant", "Cocktail"} {
		if _, err := ProfileByMethod(m, kvcache.INT4); err != nil {
			t.Errorf("ProfileByMethod(%q): %v", m, err)
		}
	}
	if _, err := ProfileByMethod("H2O", kvcache.INT4); err == nil {
		t.Error("unknown method must error")
	}
	// KIVI shares Atom's accounting but carries its own name, and the
	// uniform methods store at exactly the requested precision.
	kivi, _ := ProfileByMethod("KIVI", kvcache.INT2)
	if kivi.Name != "KIVI" || kivi.Frac[kvcache.INT2] != 1 {
		t.Errorf("KIVI profile = %q %v", kivi.Name, kivi.Frac)
	}
}

func TestDimsByModel(t *testing.T) {
	for _, c := range []struct {
		name string
		want string
		ok   bool
	}{
		{"Llama2-7B", "Llama2-7B", true},
		{"Llama2-7B-sim", "Llama2-7B", true},
		{"Llama2-13B-sim", "Llama2-13B", true},
		{"Mistral-7B-sim", "Mistral-7B", true},
		{"Longchat-7B-sim", "Longchat-7B", true},
		{"-sim", "", false},
		{"GPT-5", "", false},
	} {
		d, ok := DimsByModel(c.name)
		if ok != c.ok || (ok && d.Name != c.want) {
			t.Errorf("DimsByModel(%q) = (%q, %v), want (%q, %v)", c.name, d.Name, ok, c.want, c.ok)
		}
	}
}

// TestPricerCalibration exercises the ratio-of-sums calibration loop:
// the scale converges to measured/predicted, weights samples by their
// milliseconds, clamps at the hard bounds, and ignores junk samples.
func TestPricerCalibration(t *testing.T) {
	p := NewPricer(A800(), Llama2_7B())
	if p.Scale() != 1 {
		t.Fatalf("fresh pricer scale = %v, want 1", p.Scale())
	}
	base, err := p.Estimate(2048, "Cocktail", kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}

	// Hardware runs 2x slower than the analytic level: scale follows.
	p.Observe(100, 200)
	p.Observe(300, 600)
	if !near(p.Scale(), 2.0, 1e-12) {
		t.Fatalf("scale = %v, want 2", p.Scale())
	}
	pred, meas := p.Observations()
	if pred != 400 || meas != 800 {
		t.Fatalf("Observations() = (%v, %v), want (400, 800)", pred, meas)
	}

	// Calibration rescales latencies but never KV bytes, and preserves
	// the model's relative ordering.
	cal, err := p.Estimate(2048, "Cocktail", kvcache.INT4)
	if err != nil {
		t.Fatal(err)
	}
	if !near(cal.PrefillMs, 2*base.PrefillMs, 1e-12) || !near(cal.PerTokenMs, 2*base.PerTokenMs, 1e-12) {
		t.Fatalf("calibrated estimate %+v is not 2x base %+v", cal, base)
	}
	if cal.KVBytes != base.KVBytes {
		t.Fatalf("calibration changed KVBytes: %d != %d", cal.KVBytes, base.KVBytes)
	}

	// Ratio of sums: a long request dominates proportionally to its time.
	p2 := NewPricer(A800(), Llama2_7B())
	p2.Observe(10, 40)   // short request, 4x
	p2.Observe(990, 990) // long request, 1x
	if want := 1030.0 / 1000.0; !near(p2.Scale(), want, 1e-12) {
		t.Fatalf("scale = %v, want %v (ratio of sums, not mean of ratios)", p2.Scale(), want)
	}

	// Hard clamps in both directions.
	lo := NewPricer(A800(), Llama2_7B())
	lo.Observe(1e6, 1)
	if lo.Scale() != scaleMin {
		t.Fatalf("scale = %v, want clamp %v", lo.Scale(), scaleMin)
	}
	hi := NewPricer(A800(), Llama2_7B())
	hi.Observe(1, 1e6)
	if hi.Scale() != scaleMax {
		t.Fatalf("scale = %v, want clamp %v", hi.Scale(), scaleMax)
	}

	// Junk samples are dropped without disturbing the state.
	p.Observe(-1, 50)
	p.Observe(50, -1)
	p.Observe(0, 0)
	p.Observe(math.NaN(), 50)
	p.Observe(50, math.Inf(1))
	if pred2, meas2 := p.Observations(); pred2 != pred || meas2 != meas {
		t.Fatalf("junk samples moved the calibration state: (%v, %v)", pred2, meas2)
	}
}
