package hwmodel

import (
	"testing"

	"repro/internal/kvcache"
)

func profiles() []Profile {
	return []Profile{
		ProfileFP16(), ProfileAtom(), ProfileKIVI(),
		ProfileKVQuant(0.01), ProfileCocktail(32, nil),
	}
}

func TestParamCountsPlausible(t *testing.T) {
	cases := []struct {
		d      ModelDims
		lo, hi float64 // billions
	}{
		{Llama2_7B(), 6.0, 7.5},
		{Llama2_13B(), 12.0, 14.0},
		{Mistral7B(), 6.5, 8.0},
		{Longchat7B(), 6.0, 7.5},
	}
	for _, c := range cases {
		b := float64(c.d.Params()) / 1e9
		if b < c.lo || b > c.hi {
			t.Fatalf("%s params = %.2fB, want in [%v, %v]", c.d.Name, b, c.lo, c.hi)
		}
	}
}

func TestKVBytesPerToken(t *testing.T) {
	// Llama2-7B: 32 layers * 32 heads * 128 dim * 2 (K,V) * 2 bytes = 512 KiB.
	if got := Llama2_7B().KVBytesPerTokenFP16(); got != 512*1024 {
		t.Fatalf("KV bytes/token = %d, want %d", got, 512*1024)
	}
	// Mistral GQA: 8 KV heads -> 4x smaller.
	if got := Mistral7B().KVBytesPerTokenFP16(); got != 128*1024 {
		t.Fatalf("Mistral KV bytes/token = %d", got)
	}
}

func TestBytesPerValue(t *testing.T) {
	if bytesPerValue(kvcache.FP16) != 2 {
		t.Fatal("FP16 bytes wrong")
	}
	// INT4: 0.5 + 4/32 = 0.625.
	if got := bytesPerValue(kvcache.INT4); got != 0.625 {
		t.Fatalf("INT4 bytes/value = %v", got)
	}
	if got := bytesPerValue(kvcache.INT2); got != 0.375 {
		t.Fatalf("INT2 bytes/value = %v", got)
	}
}

// TestFig4MemoryShape: per model, Cocktail uses the least memory, FP16 the
// most, and the Cocktail saving vs FP16 is in the paper's 12-42% band.
func TestFig4MemoryShape(t *testing.T) {
	for _, d := range AllModels() {
		wl := QMSumWorkload(d)
		memFP := Memory(d, wl, ProfileFP16())
		memAtom := Memory(d, wl, ProfileAtom())
		memKVQ := Memory(d, wl, ProfileKVQuant(0.01))
		memCT := Memory(d, wl, ProfileCocktail(32, nil))
		if !(memCT < memAtom && memAtom <= memKVQ && memKVQ < memFP) {
			t.Fatalf("%s: memory ordering violated: CT=%d Atom=%d KVQ=%d FP=%d",
				d.Name, memCT, memAtom, memKVQ, memFP)
		}
		saving := 1 - float64(memCT)/float64(memFP)
		if saving < 0.10 || saving > 0.45 {
			t.Errorf("%s: Cocktail memory saving %.1f%%, paper band is 12-42%%", d.Name, 100*saving)
		}
	}
}

// TestFig5TPOTShape: Cocktail has the lowest TPOT, 32-52% below FP16;
// KVQuant is worse than the uniform methods (fragmentation).
func TestFig5TPOTShape(t *testing.T) {
	g := A800()
	for _, d := range AllModels() {
		wl := QMSumWorkload(d)
		tFP := TPOT(g, d, wl, ProfileFP16())
		tAtom := TPOT(g, d, wl, ProfileAtom())
		tKVQ := TPOT(g, d, wl, ProfileKVQuant(0.01))
		tCT := TPOT(g, d, wl, ProfileCocktail(32, nil))
		if !(tCT < tAtom && tAtom < tKVQ && tKVQ < tFP) {
			t.Fatalf("%s: TPOT ordering violated: CT=%v Atom=%v KVQ=%v FP=%v",
				d.Name, tCT, tAtom, tKVQ, tFP)
		}
		saving := 1 - tCT/tFP
		if saving < 0.15 || saving > 0.60 {
			t.Errorf("%s: Cocktail TPOT saving %.1f%%, paper band is 32-52%%", d.Name, 100*saving)
		}
	}
}

// TestTableVAblationShape: w/o Module II must cost MORE memory than even
// FP16 (quantized copy + FP16 workspace) and have FP16-like TPOT, while
// full Cocktail is cheap — Table V's cost columns.
func TestTableVAblationShape(t *testing.T) {
	g := A800()
	d := Llama2_7B()
	wl := QMSumWorkload(d)
	frac := CocktailFractions()
	memFP := Memory(d, wl, ProfileFP16())
	memCT := Memory(d, wl, ProfileCocktail(32, frac))
	memNoRe := Memory(d, wl, ProfileCocktailNoReorder(32, frac))
	if !(memCT < memFP && memFP < memNoRe) {
		t.Fatalf("memory ablation violated: CT=%d FP=%d NoReorder=%d", memCT, memFP, memNoRe)
	}
	tFP := TPOT(g, d, wl, ProfileFP16())
	tCT := TPOT(g, d, wl, ProfileCocktail(32, frac))
	tNoRe := TPOT(g, d, wl, ProfileCocktailNoReorder(32, frac))
	if !(tCT < tFP && tFP < tNoRe && tNoRe < 1.25*tFP) {
		t.Fatalf("TPOT ablation violated: CT=%v FP=%v NoReorder=%v", tCT, tFP, tNoRe)
	}
}

// TestFig6ThroughputShape reproduces Figure 6's qualitative behaviour on
// Llama2-7B: (a) at batch 1 Cocktail is below the uniform methods (search
// latency); (b) at large batch Cocktail overtakes them (lower TPOT);
// (c) Cocktail always beats KVQuant; (d) FP16 hits OOM first.
func TestFig6ThroughputShape(t *testing.T) {
	g := A800()
	d := Llama2_7B()
	wl := func(b int) Workload { return Workload{ContextTokens: 2000, OutputTokens: 128, Batch: b} }

	small := wl(1)
	if !(Throughput(g, d, small, ProfileCocktail(32, nil)) < Throughput(g, d, small, ProfileAtom())) {
		t.Fatal("at batch 1 Cocktail should trail uniform INT4 (search latency)")
	}

	// Find a batch where both still fit; Cocktail should win there.
	big := wl(150)
	ct := Throughput(g, d, big, ProfileCocktail(32, nil))
	atom := Throughput(g, d, big, ProfileAtom())
	if atom == 0 || ct == 0 {
		t.Fatalf("batch 150 unexpectedly OOM: ct=%v atom=%v", ct, atom)
	}
	if ct <= atom {
		t.Fatalf("at batch 150 Cocktail (%v) should beat Atom (%v)", ct, atom)
	}

	for _, b := range []int{1, 4, 16, 40} {
		w := wl(b)
		ct := Throughput(g, d, w, ProfileCocktail(32, nil))
		kvq := Throughput(g, d, w, ProfileKVQuant(0.01))
		if kvq != 0 && ct <= kvq {
			t.Fatalf("batch %d: Cocktail (%v) should always beat KVQuant (%v)", b, ct, kvq)
		}
	}

	oomBatch := func(p Profile) int {
		for b := 1; b <= 4096; b++ {
			if Throughput(g, d, wl(b), p) == 0 {
				return b
			}
		}
		return 4097
	}
	oFP := oomBatch(ProfileFP16())
	oAtom := oomBatch(ProfileAtom())
	oCT := oomBatch(ProfileCocktail(32, nil))
	if !(oFP < oAtom && oAtom <= oCT) {
		t.Fatalf("OOM ordering violated: FP16=%d Atom=%d Cocktail=%d", oFP, oAtom, oCT)
	}
}

func TestThroughputZeroOnOOM(t *testing.T) {
	g := A800()
	d := Llama2_13B()
	w := Workload{ContextTokens: 4000, OutputTokens: 128, Batch: 100000}
	if Throughput(g, d, w, ProfileFP16()) != 0 {
		t.Fatal("expected OOM")
	}
}

func TestProfileFromPlan(t *testing.T) {
	p := kvcache.UniformPlan(128, 32, kvcache.INT2, true)
	p.ChunkPrec[0] = kvcache.FP16
	prof := ProfileFromPlan("test", p, nil)
	if prof.Frac[kvcache.FP16] != 0.25 || prof.Frac[kvcache.INT2] != 0.75 {
		t.Fatalf("fractions = %v", prof.Frac)
	}
	if prof.RunsPerHead(128) != 2 {
		t.Fatalf("runs = %d, want 2", prof.RunsPerHead(128))
	}
	if prof.SearchSeconds(128, 1) != 0 {
		t.Fatal("nil search should mean zero latency")
	}
}

func TestCocktailFractionsSumToOne(t *testing.T) {
	var sum float64
	for _, f := range CocktailFractions() {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestSearchLatencies(t *testing.T) {
	ct := ProfileCocktail(32, nil)
	kvq := ProfileKVQuant(0.01)
	// Chunk-level search must be cheaper than token-level search for long
	// contexts — the paper's core throughput claim against KVQuant.
	if ct.SearchSeconds(4000, 8) >= kvq.SearchSeconds(4000, 8) {
		t.Fatalf("Cocktail search %v not below KVQuant %v",
			ct.SearchSeconds(4000, 8), kvq.SearchSeconds(4000, 8))
	}
}

func TestMemoryMonotonicInBatch(t *testing.T) {
	d := Llama2_7B()
	prev := int64(0)
	for b := 1; b <= 8; b *= 2 {
		m := Memory(d, Workload{ContextTokens: 2000, OutputTokens: 128, Batch: b}, ProfileAtom())
		if m <= prev {
			t.Fatal("memory not monotonic in batch")
		}
		prev = m
	}
}
