package kvcache

import (
	"math"
	"testing"

	"repro/internal/rngx"
)

// attendEqual asserts two caches produce bit-identical Attend output for
// the same queries — the property the spill tier's byte-identical-answers
// guarantee rests on.
func attendEqual(t *testing.T, want, got *Cache, cfg Config, seed uint64) {
	t.Helper()
	r := rngx.New(seed)
	scale := float32(1.0 / math.Sqrt(float64(cfg.HeadDim)))
	a, b := make([]float32, cfg.HeadDim), make([]float32, cfg.HeadDim)
	for l := 0; l < cfg.Layers; l++ {
		for h := 0; h < cfg.Heads; h++ {
			q := r.GaussianVec(cfg.HeadDim, 1)
			want.Attend(l, h, q, scale, a)
			got.Attend(l, h, q, scale, b)
			for i := range a {
				if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
					t.Fatalf("layer %d head %d dim %d: %v != %v", l, h, i, a[i], b[i])
				}
			}
		}
	}
}

// TestCacheCodecRoundTrip: mixed-precision sealed caches (reordered and
// not) survive MarshalBinary/UnmarshalCache with identical geometry,
// byte accounting and Attend results.
func TestCacheCodecRoundTrip(t *testing.T) {
	cfg := testConfig()
	for _, reorder := range []bool{false, true} {
		b := fillBuilder(3, cfg, 70) // 2 full chunks + tail
		plan := mixedPlan(70, 32, reorder)
		c, err := b.Seal(plan)
		if err != nil {
			t.Fatal(err)
		}
		data, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalCache(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Config() != c.Config() || got.Len() != c.Len() ||
			got.ContextTokens() != c.ContextTokens() || got.TailTokens() != c.TailTokens() {
			t.Fatalf("geometry diverged: %+v vs %+v", got.Config(), c.Config())
		}
		if got.SizeBytes() != c.SizeBytes() {
			t.Fatalf("SizeBytes %d -> %d", c.SizeBytes(), got.SizeBytes())
		}
		attendEqual(t, c, got, cfg, 99)
	}
}

// TestCacheCodecRoundTripWithTail: a cache that has decoded past its
// context (non-empty FP16 tail) round-trips too, tail included.
func TestCacheCodecRoundTripWithTail(t *testing.T) {
	cfg := testConfig()
	b := fillBuilder(5, cfg, 64)
	c, err := b.Seal(UniformPlan(64, 32, INT4, false))
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(21)
	for n := 0; n < 3; n++ {
		c.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				c.AppendTail(l, h, r.GaussianVec(cfg.HeadDim, 1), r.GaussianVec(cfg.HeadDim, 1))
			}
		}
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCache(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TailTokens() != 3 || got.Len() != 67 || got.SizeBytes() != c.SizeBytes() {
		t.Fatalf("tail geometry: len=%d tail=%d", got.Len(), got.TailTokens())
	}
	attendEqual(t, c, got, cfg, 101)
	// The decoded cache is fully functional: it can keep decoding.
	f := got.Fork()
	f.BeginToken()
	for l := 0; l < cfg.Layers; l++ {
		for h := 0; h < cfg.Heads; h++ {
			f.AppendTail(l, h, r.GaussianVec(cfg.HeadDim, 1), r.GaussianVec(cfg.HeadDim, 1))
		}
	}
	if f.Len() != 68 || got.Len() != 67 {
		t.Fatalf("fork isolation after decode: fork=%d orig=%d", f.Len(), got.Len())
	}
}

// TestCacheCodecRejectsMalformed: corrupt serializations error cleanly —
// truncations at every prefix length, bit flips at every offset, and a
// handful of targeted geometry lies.
func TestCacheCodecRejectsMalformed(t *testing.T) {
	cfg := testConfig()
	b := fillBuilder(9, cfg, 70)
	c, err := b.Seal(mixedPlan(70, 32, true))
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCache(nil); err == nil {
		t.Error("nil input decoded")
	}
	// Truncation at any point must error (never panic, never succeed —
	// the format has no optional suffix).
	for cut := 0; cut < len(data); cut += 97 {
		if _, err := UnmarshalCache(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Trailing garbage is not tolerated either.
	if _, err := UnmarshalCache(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte tolerated")
	}
	// Wrong version.
	bad := append([]byte(nil), data...)
	bad[0] = codecVersion + 1
	if _, err := UnmarshalCache(bad); err == nil {
		t.Error("wrong version decoded")
	}
	// Bit flips across the payload: decode must never panic, and the
	// geometry cross-checks catch most lies (a flip inside code bytes is
	// legitimately still a valid cache — we only require no panic).
	for off := 0; off < len(data); off += 13 {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		UnmarshalCache(bad) // must not panic
	}
}
