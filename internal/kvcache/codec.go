package kvcache

// codec.go is the binary serialization of a sealed Cache, the payload
// format of the sealed-cache spill tier (internal/sessioncache
// persistence). A round trip reproduces the cache bit-exactly: the same
// Config and Plan, the same packed quantized codes and FP16 scale/zero
// metadata per segment, the same FP16 tail — so SizeBytes and every
// Attend result are identical to the original, which is what lets a
// warm-restarted server keep its byte-identical-answers guarantee.
//
// The format is little-endian with a leading version byte; every length
// is validated against the declared geometry before allocation, so
// corrupt input yields an error, never a panic. The spill layer above
// adds its own magic/CRC framing — this codec only defines the payload.

import (
	"encoding/binary"
	"errors"

	"repro/internal/f16"
	"repro/internal/quant"
)

// codecVersion is the payload format version; bumped on any layout
// change so old artifacts fail cleanly (the spill layer treats a decode
// error as a cache miss).
const codecVersion = 1

// errCodec is returned for any malformed Cache serialization.
var errCodec = errors.New("kvcache: malformed cache encoding")

// codecMaxLen bounds decoded counts so a corrupt length cannot drive a
// giant allocation before the cross-checks run.
const codecMaxLen = 1 << 24

func appendU32(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

func appendF16s(buf []byte, vals []f16.F16) []byte {
	buf = appendU32(buf, len(vals))
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(v))
	}
	return buf
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// MarshalBinary serializes the sealed cache, tail included. The sealed
// segments are immutable, so concurrent marshals of one pristine cache
// are safe; marshalling a cache another goroutine is decoding on is not
// (same rule as every other Cache method).
func (c *Cache) MarshalBinary() ([]byte, error) {
	buf := []byte{codecVersion}
	// Config.
	buf = appendU32(buf, c.cfg.Layers)
	buf = appendU32(buf, c.cfg.Heads)
	buf = appendU32(buf, c.cfg.HeadDim)
	buf = appendU32(buf, c.cfg.GroupSize)
	buf = append(buf, byte(c.cfg.KAxis), byte(c.cfg.VAxis))
	buf = appendBool(buf, c.cfg.UseCodebook)
	// Plan.
	buf = appendU32(buf, c.plan.NumTokens)
	buf = appendU32(buf, c.plan.ChunkSize)
	buf = appendU32(buf, len(c.plan.ChunkPrec))
	for _, p := range c.plan.ChunkPrec {
		buf = append(buf, byte(p))
	}
	buf = appendBool(buf, c.plan.TokenPrec != nil)
	for _, p := range c.plan.TokenPrec {
		buf = append(buf, byte(p))
	}
	buf = appendBool(buf, c.plan.Reorder)
	// Segments, [layer*heads+head] in index order.
	for _, segs := range c.segs {
		buf = appendU32(buf, len(segs))
		for _, seg := range segs {
			buf = append(buf, byte(seg.prec))
			buf = appendU32(buf, seg.tokens)
			if seg.prec == FP16 {
				buf = appendF16s(buf, seg.fk)
				buf = appendF16s(buf, seg.fv)
			} else {
				buf = seg.qk.AppendBinary(buf)
				buf = seg.qv.AppendBinary(buf)
			}
		}
	}
	// FP16 decode tail (empty for the pristine caches session stores
	// persist, but the format carries it so the codec round-trips any
	// cache).
	buf = appendU32(buf, c.tailTokens)
	for idx := range c.tailK {
		buf = appendF16s(buf, c.tailK[idx])
		buf = appendF16s(buf, c.tailV[idx])
	}
	return buf, nil
}

// decoder walks a serialized cache, tracking a sticky error: after any
// short read every subsequent call returns zero values, and the caller
// checks err once at the end of each geometry stage.
type decoder struct {
	rest []byte
	err  error
}

func (d *decoder) u8() byte {
	if d.err != nil || len(d.rest) < 1 {
		d.err = errCodec
		return 0
	}
	b := d.rest[0]
	d.rest = d.rest[1:]
	return b
}

func (d *decoder) bool() bool { return d.u8() == 1 }

func (d *decoder) u32() int {
	if d.err != nil || len(d.rest) < 4 {
		d.err = errCodec
		return 0
	}
	v := binary.LittleEndian.Uint32(d.rest)
	d.rest = d.rest[4:]
	if v > codecMaxLen {
		d.err = errCodec
		return 0
	}
	return int(v)
}

func (d *decoder) f16s() []f16.F16 {
	n := d.u32()
	if d.err != nil || len(d.rest) < 2*n {
		d.err = errCodec
		return nil
	}
	out := make([]f16.F16, n)
	for i := range out {
		out[i] = f16.F16(binary.LittleEndian.Uint16(d.rest[2*i:]))
	}
	d.rest = d.rest[2*n:]
	return out
}

func (d *decoder) tensor() *quant.Tensor {
	if d.err != nil {
		return nil
	}
	t, rest, err := quant.DecodeTensor(d.rest)
	if err != nil {
		d.err = errCodec
		return nil
	}
	d.rest = rest
	return t
}

// UnmarshalCache decodes a MarshalBinary payload, validating geometry at
// every stage (config sanity, plan consistency, per-segment token and row
// counts). The result is a fully functional sealed cache with its own
// scratch state, ready to Fork and Attend.
func UnmarshalCache(data []byte) (*Cache, error) {
	d := &decoder{rest: data}
	if d.u8() != codecVersion {
		return nil, errCodec
	}
	cfg := Config{
		Layers:    d.u32(),
		Heads:     d.u32(),
		HeadDim:   d.u32(),
		GroupSize: d.u32(),
		KAxis:     quant.Axis(d.u8()),
		VAxis:     quant.Axis(d.u8()),
	}
	cfg.UseCodebook = d.bool()
	if d.err != nil || cfg.validate() != nil {
		return nil, errCodec
	}
	if a := cfg.KAxis; a != quant.PerToken && a != quant.PerChannel {
		return nil, errCodec
	}
	if a := cfg.VAxis; a != quant.PerToken && a != quant.PerChannel {
		return nil, errCodec
	}
	plan := &Plan{NumTokens: d.u32(), ChunkSize: d.u32()}
	nChunks := d.u32()
	for i := 0; i < nChunks && d.err == nil; i++ {
		plan.ChunkPrec = append(plan.ChunkPrec, Precision(d.u8()))
	}
	if d.bool() {
		for i := 0; i < plan.NumTokens && d.err == nil; i++ {
			plan.TokenPrec = append(plan.TokenPrec, Precision(d.u8()))
		}
	}
	plan.Reorder = d.bool()
	if d.err != nil || plan.Validate() != nil || !validPrecs(plan.ChunkPrec) || !validPrecs(plan.TokenPrec) {
		return nil, errCodec
	}
	n := cfg.Layers * cfg.Heads
	c := &Cache{
		cfg:   cfg,
		plan:  plan,
		segs:  make([][]segment, n),
		tailK: make([][]f16.F16, n),
		tailV: make([][]f16.F16, n),
		row:   make([]float32, cfg.HeadDim),
	}
	for idx := 0; idx < n; idx++ {
		nSegs := d.u32()
		total := 0
		for si := 0; si < nSegs && d.err == nil; si++ {
			seg := segment{prec: Precision(d.u8()), tokens: d.u32()}
			if d.err != nil {
				break
			}
			total += seg.tokens
			switch seg.prec {
			case FP16:
				seg.fk = d.f16s()
				seg.fv = d.f16s()
				if d.err == nil && (len(seg.fk) != seg.tokens*cfg.HeadDim || len(seg.fv) != seg.tokens*cfg.HeadDim) {
					return nil, errCodec
				}
			case INT2, INT4, INT8:
				seg.qk = d.tensor()
				seg.qv = d.tensor()
				if d.err == nil {
					for _, t := range []*quant.Tensor{seg.qk, seg.qv} {
						if t.Rows != seg.tokens || t.Cols != cfg.HeadDim || int(t.Bits) != seg.prec.Bits() {
							return nil, errCodec
						}
					}
				}
			default:
				return nil, errCodec
			}
			c.segs[idx] = append(c.segs[idx], seg)
		}
		if d.err != nil {
			return nil, errCodec
		}
		if total != plan.NumTokens {
			return nil, errCodec
		}
	}
	c.tailTokens = d.u32()
	for idx := 0; idx < n; idx++ {
		c.tailK[idx] = d.f16s()
		c.tailV[idx] = d.f16s()
		if d.err == nil && (len(c.tailK[idx]) != c.tailTokens*cfg.HeadDim || len(c.tailV[idx]) != c.tailTokens*cfg.HeadDim) {
			return nil, errCodec
		}
	}
	if d.err != nil || len(d.rest) != 0 {
		return nil, errCodec
	}
	return c, nil
}

// validPrecs reports whether every precision label is a known one.
func validPrecs(ps []Precision) bool {
	for _, p := range ps {
		if p > FP16 {
			return false
		}
	}
	return true
}
