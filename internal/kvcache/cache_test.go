package kvcache

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/quant"
	"repro/internal/rngx"
)

func testConfig() Config {
	return Config{Layers: 2, Heads: 2, HeadDim: 16, GroupSize: 16}
}

// fillBuilder creates a builder with n random context tokens.
func fillBuilder(seed uint64, cfg Config, n int) *Builder {
	r := rngx.New(seed)
	b := NewBuilder(cfg)
	for t := 0; t < n; t++ {
		b.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				b.Append(l, h, r.GaussianVec(cfg.HeadDim, 1), r.GaussianVec(cfg.HeadDim, 1))
			}
		}
	}
	return b
}

func mixedPlan(n, cs int, reorder bool) *Plan {
	p := UniformPlan(n, cs, INT4, reorder)
	for i := range p.ChunkPrec {
		switch i % 3 {
		case 0:
			p.ChunkPrec[i] = INT2
		case 1:
			p.ChunkPrec[i] = INT4
		default:
			p.ChunkPrec[i] = FP16
		}
	}
	return p
}

// referenceAttend computes attention over the raw FP32 rows.
func referenceAttend(b *Builder, l, h int, q []float32, scale float32) []float32 {
	n := b.NumTokens()
	scores := make([]float32, n)
	for t := 0; t < n; t++ {
		scores[t] = scale * mathx.Dot(q, b.KRow(l, h, t))
	}
	mathx.Softmax(scores)
	out := make([]float32, len(q))
	for t := 0; t < n; t++ {
		mathx.Axpy(scores[t], b.VRow(l, h, t), out)
	}
	return out
}

func TestPlanValidate(t *testing.T) {
	p := UniformPlan(64, 32, INT4, true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.ChunkPrec = p.ChunkPrec[:1]
	if p.Validate() == nil {
		t.Fatal("expected validation error")
	}
}

func TestPlanTailIsFP16(t *testing.T) {
	p := UniformPlan(70, 32, INT2, false) // 2 chunks + 6 tail tokens
	precs, order := p.TokenPrecisions()
	if len(precs) != 70 || len(order) != 70 {
		t.Fatalf("expanded to %d tokens", len(precs))
	}
	for i := 64; i < 70; i++ {
		if precs[i] != FP16 {
			t.Fatalf("tail token %d is %v, want FP16", i, precs[i])
		}
	}
	counts := p.Counts()
	if counts[INT2] != 64 || counts[FP16] != 6 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestChunkOrderGroupsByPrecision(t *testing.T) {
	p := mixedPlan(6*32, 32, true)
	order := p.ChunkOrder()
	// Expected: INT2 chunks (0,3), INT4 (1,4), FP16 (2,5).
	want := []int{0, 3, 1, 4, 2, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestChunkOrderIsPermutation(t *testing.T) {
	check := func(seed uint64, reorder bool) bool {
		r := rngx.New(seed)
		n := 4 + r.Intn(20)
		p := UniformPlan(n*16, 16, INT4, reorder)
		for i := range p.ChunkPrec {
			p.ChunkPrec[i] = []Precision{INT2, INT4, INT8, FP16}[r.Intn(4)]
		}
		order := p.ChunkOrder()
		seen := make([]bool, n)
		for _, c := range order {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		return len(order) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentRunsReorderedAtMostOnePerPrecision(t *testing.T) {
	p := mixedPlan(12*32, 32, true)
	runs := p.SegmentRuns()
	if len(runs) > 3 {
		t.Fatalf("reordered plan has %d runs, want <= 3: %v", len(runs), runs)
	}
	p2 := mixedPlan(12*32, 32, false)
	runs2 := p2.SegmentRuns()
	if len(runs2) != 12 {
		t.Fatalf("interleaved plan has %d runs, want 12", len(runs2))
	}
}

func TestSealRejectsMismatchedPlan(t *testing.T) {
	cfg := testConfig()
	b := fillBuilder(1, cfg, 10)
	if _, err := b.Seal(UniformPlan(20, 4, INT4, false)); err == nil {
		t.Fatal("expected error for token count mismatch")
	}
}

// TestFP16PlanMatchesReference: an all-FP16 cache must reproduce raw FP32
// attention within FP16 rounding.
func TestFP16PlanMatchesReference(t *testing.T) {
	cfg := testConfig()
	b := fillBuilder(2, cfg, 64)
	cache, err := b.Seal(UniformPlan(64, 32, FP16, false))
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(99)
	q := r.GaussianVec(cfg.HeadDim, 1)
	out := make([]float32, cfg.HeadDim)
	for l := 0; l < cfg.Layers; l++ {
		for h := 0; h < cfg.Heads; h++ {
			cache.Attend(l, h, q, 0.25, out)
			want := referenceAttend(b, l, h, q, 0.25)
			for i := range out {
				if math.Abs(float64(out[i]-want[i])) > 2e-3 {
					t.Fatalf("l=%d h=%d out[%d]=%v want %v", l, h, i, out[i], want[i])
				}
			}
		}
	}
}

// TestReorderInvariance is the paper's Eq. 4 = Eq. 5 claim: reordering
// chunks must not change the attention output at all (same quantized
// values, same softmax, commutative sum).
func TestReorderInvariance(t *testing.T) {
	cfg := testConfig()
	check := func(seed uint64) bool {
		n := 6 * 16
		b1 := fillBuilder(seed, cfg, n)
		b2 := fillBuilder(seed, cfg, n)
		p1 := mixedPlan(n, 16, false)
		p2 := mixedPlan(n, 16, true)
		c1, err1 := b1.Seal(p1)
		c2, err2 := b2.Seal(p2)
		if err1 != nil || err2 != nil {
			return false
		}
		r := rngx.New(seed ^ 0xabc)
		q := r.GaussianVec(cfg.HeadDim, 1)
		o1 := make([]float32, cfg.HeadDim)
		o2 := make([]float32, cfg.HeadDim)
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				c1.Attend(l, h, q, 0.3, o1)
				c2.Attend(l, h, q, 0.3, o2)
				for i := range o1 {
					if math.Abs(float64(o1[i]-o2[i])) > 1e-5 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuantizedCloseToReference: INT4 attention should track the FP32
// reference closely; INT2 should be worse but bounded.
func TestQuantizedCloseToReference(t *testing.T) {
	cfg := testConfig()
	n := 4 * 32
	errAt := func(prec Precision) float64 {
		b := fillBuilder(5, cfg, n)
		cache, err := b.Seal(UniformPlan(n, 32, prec, true))
		if err != nil {
			t.Fatal(err)
		}
		q := rngx.New(7).GaussianVec(cfg.HeadDim, 1)
		out := make([]float32, cfg.HeadDim)
		cache.Attend(0, 0, q, 0.25, out)
		want := referenceAttend(b, 0, 0, q, 0.25)
		return mathx.MeanAbsDiff(out, want)
	}
	e16, e4, e2 := errAt(FP16), errAt(INT4), errAt(INT2)
	if !(e16 < e4 && e4 < e2) {
		t.Fatalf("error ordering violated: fp16=%v int4=%v int2=%v", e16, e4, e2)
	}
	if e4 > 0.05 {
		t.Fatalf("INT4 attention error too large: %v", e4)
	}
}

func TestTailAppendAndAttend(t *testing.T) {
	cfg := testConfig()
	n := 32
	b := fillBuilder(8, cfg, n)
	cache, err := b.Seal(UniformPlan(n, 32, FP16, false))
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(31)
	// Append one decode token with a K identical to the query: it should
	// dominate attention and out should be ~ its V.
	q := r.GaussianVec(cfg.HeadDim, 2)
	v := r.GaussianVec(cfg.HeadDim, 1)
	cache.BeginToken()
	for l := 0; l < cfg.Layers; l++ {
		for h := 0; h < cfg.Heads; h++ {
			cache.AppendTail(l, h, q, v)
		}
	}
	if cache.Len() != n+1 || cache.TailTokens() != 1 {
		t.Fatalf("Len=%d TailTokens=%d", cache.Len(), cache.TailTokens())
	}
	out := make([]float32, cfg.HeadDim)
	cache.Attend(0, 0, q, 4, out) // high scale -> near-argmax attention
	if cos := mathx.Cosine(out, v); cos < 0.98 {
		t.Fatalf("tail token not dominating attention, cos=%v", cos)
	}
}

func TestTokenLevelOverrides(t *testing.T) {
	cfg := testConfig()
	n := 64
	b := fillBuilder(9, cfg, n)
	p := UniformPlan(n, 32, INT4, false)
	p.TokenPrec = make([]Precision, n)
	for i := range p.TokenPrec {
		p.TokenPrec[i] = INT4
	}
	p.TokenPrec[5] = FP16 // scattered outlier tokens, KVQuant-style
	p.TokenPrec[40] = FP16
	cache, err := b.Seal(p)
	if err != nil {
		t.Fatal(err)
	}
	runs := p.SegmentRuns()
	if len(runs) != 5 {
		t.Fatalf("expected 5 runs for two scattered outliers, got %v", runs)
	}
	st := cache.Stats()
	if st.TokensByPrec[FP16] != 2 || st.TokensByPrec[INT4] != 62 {
		t.Fatalf("token counts wrong: %v", st.TokensByPrec)
	}
}

func TestStatsBytesOrdering(t *testing.T) {
	cfg := testConfig()
	n := 128
	bytesAt := func(prec Precision) int {
		b := fillBuilder(10, cfg, n)
		cache, err := b.Seal(UniformPlan(n, 32, prec, true))
		if err != nil {
			t.Fatal(err)
		}
		return cache.Stats().ContextBytes
	}
	b16, b8, b4, b2 := bytesAt(FP16), bytesAt(INT8), bytesAt(INT4), bytesAt(INT2)
	if !(b2 < b4 && b4 < b8 && b8 < b16) {
		t.Fatalf("byte ordering violated: %d %d %d %d", b2, b4, b8, b16)
	}
	// FP16 context bytes are exact: layers*heads*tokens*dim*2bytes*2(K+V).
	want := cfg.Layers * cfg.Heads * n * cfg.HeadDim * 2 * 2
	if b16 != want {
		t.Fatalf("FP16 bytes = %d, want %d", b16, want)
	}
}

func TestPrecisionBitsAndString(t *testing.T) {
	if INT2.Bits() != 2 || INT4.Bits() != 4 || INT8.Bits() != 8 || FP16.Bits() != 16 {
		t.Fatal("Bits wrong")
	}
	if FP16.String() != "FP16" || INT2.String() != "INT2" {
		t.Fatal("String wrong")
	}
}

func TestKIVIAxesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.KAxis = quant.PerChannel
	cfg.VAxis = quant.PerToken
	b := fillBuilder(12, cfg, 64)
	cache, err := b.Seal(UniformPlan(64, 32, INT4, true))
	if err != nil {
		t.Fatal(err)
	}
	q := rngx.New(14).GaussianVec(cfg.HeadDim, 1)
	out := make([]float32, cfg.HeadDim)
	cache.Attend(0, 0, q, 0.25, out) // must not panic and stay finite
	for _, v := range out {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN in per-channel attention output")
		}
	}
}

// TestForkIsolation: forks share the sealed context but own their decode
// tails — decoding on one fork must not disturb its siblings or the
// pristine parent, and pre-fork tail tokens are copied, not shared.
func TestForkIsolation(t *testing.T) {
	cfg := testConfig()
	b := fillBuilder(31, cfg, 64)
	parent, err := b.Seal(UniformPlan(64, 32, INT4, true))
	if err != nil {
		t.Fatal(err)
	}
	r := rngx.New(32)
	q := r.GaussianVec(cfg.HeadDim, 1)
	ref := make([]float32, cfg.HeadDim)
	parentBytes := parent.SizeBytes()
	parent.Attend(0, 0, q, 0.25, ref)

	f1, f2 := parent.Fork(), parent.Fork()
	// Decode three tokens on f1 only.
	for i := 0; i < 3; i++ {
		f1.BeginToken()
		for l := 0; l < cfg.Layers; l++ {
			for h := 0; h < cfg.Heads; h++ {
				f1.AppendTail(l, h, r.GaussianVec(cfg.HeadDim, 1), r.GaussianVec(cfg.HeadDim, 1))
			}
		}
	}
	if parent.Len() != 64 || f2.Len() != 64 || f1.Len() != 67 {
		t.Fatalf("tail leaked across forks: parent=%d f1=%d f2=%d", parent.Len(), f1.Len(), f2.Len())
	}
	if parent.SizeBytes() != parentBytes {
		t.Fatal("decoding on a fork changed the parent's footprint")
	}
	got := make([]float32, cfg.HeadDim)
	f2.Attend(0, 0, q, 0.25, got)
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("untouched fork attention diverged at %d: %v != %v", i, got[i], ref[i])
		}
	}

	// Forking mid-decode copies the existing tail.
	f3 := f1.Fork()
	if f3.Len() != 67 || f3.TailTokens() != 3 {
		t.Fatalf("mid-decode fork lost the tail: len=%d tail=%d", f3.Len(), f3.TailTokens())
	}
	f3.BeginToken()
	for l := 0; l < cfg.Layers; l++ {
		for h := 0; h < cfg.Heads; h++ {
			f3.AppendTail(l, h, r.GaussianVec(cfg.HeadDim, 1), r.GaussianVec(cfg.HeadDim, 1))
		}
	}
	if f1.Len() != 67 {
		t.Fatal("appending on a mid-decode fork mutated its source")
	}
}

// TestBuilderSizeBytes: the FP32 accounting must match geometry exactly.
func TestBuilderSizeBytes(t *testing.T) {
	cfg := testConfig()
	n := 48
	b := fillBuilder(33, cfg, n)
	want := int64(4 * 2 * n * cfg.Layers * cfg.Heads * cfg.HeadDim) // K+V FP32
	if got := b.SizeBytes(); got != want {
		t.Fatalf("Builder.SizeBytes = %d, want %d", got, want)
	}
}
