package kvcache

import (
	"fmt"

	"repro/internal/f16"
	"repro/internal/mathx"
	"repro/internal/quant"
)

// Config describes the cache geometry and quantization kernel options.
// A Config is a plain value: copy freely, share read-only.
type Config struct {
	// Layers and Heads give the attention geometry; the cache stores one
	// K and one V row per (layer, head, token).
	Layers int
	Heads  int
	// HeadDim is the per-head row width in values (not bytes).
	HeadDim int

	// GroupSize is the quantization group size (values per scale).
	GroupSize int
	// KAxis and VAxis select the quantization grouping direction for the
	// K and V caches (KIVI: per-channel K, per-token V).
	KAxis, VAxis quant.Axis
	// UseCodebook enables the non-uniform Gaussian codebook for integer
	// segments (the KVQuant nuqX analog).
	UseCodebook bool
}

// FP16Bytes returns the footprint of n cached tokens stored unquantized:
// one K and one V row per layer/head, two bytes per FP16 value. It is the
// reference numerator for compression ratios, derived from the cache
// geometry so callers never restate layer/head/dim constants.
func (c Config) FP16Bytes(tokens int) int {
	return tokens * c.Layers * c.Heads * c.HeadDim * 2 * 2
}

func (c Config) validate() error {
	if c.Layers <= 0 || c.Heads <= 0 || c.HeadDim <= 0 {
		return fmt.Errorf("kvcache: non-positive geometry %+v", c)
	}
	return nil
}

// Builder accumulates FP32 context KV rows during prefill, before the
// quantization plan is known. A Builder is per-request state and is not
// safe for concurrent use; sharing one across goroutines requires
// external synchronization (concurrent servers allocate one per request).
type Builder struct {
	cfg    Config
	tokens int
	// k[l*heads+h] and v[...] are row-major [tokens][headDim].
	k, v [][]float32
}

// NewBuilder returns an empty prefill KV builder.
func NewBuilder(cfg Config) *Builder {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := cfg.Layers * cfg.Heads
	return &Builder{cfg: cfg, k: make([][]float32, n), v: make([][]float32, n)}
}

// Config returns the builder's cache geometry.
func (b *Builder) Config() Config { return b.cfg }

// BeginToken starts the next context token; Append calls then fill its
// per-layer/head K and V rows.
func (b *Builder) BeginToken() { b.tokens++ }

// NumTokens returns how many context tokens have been started.
func (b *Builder) NumTokens() int { return b.tokens }

// Append records the K and V rows of the current token for (layer, head).
// Rows are copied.
func (b *Builder) Append(layer, head int, k, v []float32) {
	if len(k) != b.cfg.HeadDim || len(v) != b.cfg.HeadDim {
		panic("kvcache: Append row width mismatch")
	}
	idx := layer*b.cfg.Heads + head
	b.k[idx] = append(b.k[idx], k...)
	b.v[idx] = append(b.v[idx], v...)
}

// Clone returns an independent builder holding the same accumulated
// context KV. The clone's row storage is capacity-clamped to its current
// length (three-index slices), so the first Append on either builder
// reallocates instead of writing into the shared backing arrays: the
// common prefix is shared immutably, which makes Clone O(layers*heads)
// regardless of context length and safe even while other goroutines read
// the original through KRow/VRow. Clone is the seam incremental session
// growth builds on — extend the clone, leave the stored original pristine.
func (b *Builder) Clone() *Builder {
	c := &Builder{cfg: b.cfg, tokens: b.tokens,
		k: make([][]float32, len(b.k)), v: make([][]float32, len(b.v))}
	for idx := range b.k {
		c.k[idx] = b.k[idx][:len(b.k[idx]):len(b.k[idx])]
		c.v[idx] = b.v[idx][:len(b.v[idx]):len(b.v[idx])]
	}
	return c
}

// SizeBytes returns the resident FP32 footprint of the accumulated
// context KV in bytes (4 bytes per value, K and V across all layers and
// heads). It is the accounting unit session stores charge for retaining a
// prefilled builder across requests.
func (b *Builder) SizeBytes() int64 {
	var n int64
	for idx := range b.k {
		n += int64(len(b.k[idx]) + len(b.v[idx]))
	}
	return 4 * n
}

// KRow returns the raw FP32 K row of token t for (layer, head) — used by
// prefill attention, which runs before quantization, and by baselines that
// need statistics (e.g. KVQuant outlier selection).
func (b *Builder) KRow(layer, head, t int) []float32 {
	idx := layer*b.cfg.Heads + head
	d := b.cfg.HeadDim
	return b.k[idx][t*d : (t+1)*d]
}

// VRow returns the raw FP32 V row of token t for (layer, head).
func (b *Builder) VRow(layer, head, t int) []float32 {
	idx := layer*b.cfg.Heads + head
	d := b.cfg.HeadDim
	return b.v[idx][t*d : (t+1)*d]
}

// segment is one contiguous same-precision block of the sealed cache for a
// single (layer, head) pair.
type segment struct {
	prec   Precision
	tokens int
	// Quantized storage (prec != FP16):
	qk, qv *quant.Tensor
	// FP16 storage (prec == FP16), row-major [tokens][headDim]:
	fk, fv []f16.F16
}

// Cache is the sealed mixed-precision context KV cache plus the FP16 tail
// that decode appends to. Attention over it follows Algorithm 1. Like a
// real per-request KV cache, a Cache is owned by one request and is not
// safe for concurrent use (Attend reuses scratch buffers, AppendTail
// mutates the tail). The sealed context segments themselves are immutable
// after SealWith, which is what makes Fork cheap: forks share segments
// and own everything mutable, so cross-request reuse stores one pristine
// Cache and decodes on forks.
type Cache struct {
	cfg  Config
	plan *Plan
	segs [][]segment // [layer*heads+head][]
	// Decode/query tail, always FP16: [layer*heads+head] row-major.
	tailK, tailV [][]f16.F16
	tailTokens   int

	// scratch buffers reused across Attend calls (the cache is not
	// safe for concurrent use, like a real per-request KV cache).
	scores []float32
	row    []float32
}

// SealOptions selects the quantization kernel variant used at Seal time,
// so one prefilled Builder can be sealed repeatedly under different
// methods (Atom, KIVI, KVQuant, Cocktail) without re-running prefill.
type SealOptions struct {
	GroupSize    int
	KAxis, VAxis quant.Axis
	UseCodebook  bool
}

// Seal quantizes with the builder's configured kernel options.
func (b *Builder) Seal(plan *Plan) (*Cache, error) {
	return b.SealWith(plan, SealOptions{
		GroupSize:   b.cfg.GroupSize,
		KAxis:       b.cfg.KAxis,
		VAxis:       b.cfg.VAxis,
		UseCodebook: b.cfg.UseCodebook,
	})
}

// SealWith quantizes the builder's context KV according to plan and opts,
// returning the immutable mixed-precision cache. The builder remains valid
// and can be sealed again.
func (b *Builder) SealWith(plan *Plan, opts SealOptions) (*Cache, error) {
	if plan.NumTokens != b.tokens {
		return nil, fmt.Errorf("kvcache: plan covers %d tokens, builder has %d", plan.NumTokens, b.tokens)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	precs, order := plan.TokenPrecisions()
	c := &Cache{
		cfg:   b.cfg,
		plan:  plan,
		segs:  make([][]segment, b.cfg.Layers*b.cfg.Heads),
		tailK: make([][]f16.F16, b.cfg.Layers*b.cfg.Heads),
		tailV: make([][]f16.F16, b.cfg.Layers*b.cfg.Heads),
		row:   make([]float32, b.cfg.HeadDim),
	}
	d := b.cfg.HeadDim
	var cb []float32
	if opts.UseCodebook {
		cb = quant.GaussianCodebook(quant.INT4)
	}
	for idx := range b.k {
		// Split the physical order into equal-precision runs and build one
		// segment per run.
		for i := 0; i < len(precs); {
			j := i
			for j < len(precs) && precs[j] == precs[i] {
				j++
			}
			n := j - i
			seg := segment{prec: precs[i], tokens: n}
			kbuf := make([]float32, 0, n*d)
			vbuf := make([]float32, 0, n*d)
			for _, t := range order[i:j] {
				kbuf = append(kbuf, b.k[idx][t*d:(t+1)*d]...)
				vbuf = append(vbuf, b.v[idx][t*d:(t+1)*d]...)
			}
			if seg.prec == FP16 {
				seg.fk = f16.FromSlice(kbuf)
				seg.fv = f16.FromSlice(vbuf)
			} else {
				bits := quant.Bits(seg.prec.Bits())
				var segCB []float32
				if cb != nil && bits == quant.INT4 {
					segCB = cb
				}
				seg.qk = quant.Quantize(kbuf, n, d, quant.Config{
					Bits: bits, Axis: opts.KAxis, GroupSize: opts.GroupSize, Codebook: segCB})
				seg.qv = quant.Quantize(vbuf, n, d, quant.Config{
					Bits: bits, Axis: opts.VAxis, GroupSize: opts.GroupSize, Codebook: segCB})
			}
			c.segs[idx] = append(c.segs[idx], seg)
			i = j
		}
	}
	return c, nil
}

// Fork returns a new cache sharing this cache's immutable sealed context
// segments (and plan) but with its own decode tail and scratch buffers.
// The sealed segments are written only at SealWith time, so any number of
// forks may decode concurrently — each fork is single-owner per-request
// state exactly like a freshly sealed Cache, while the underlying
// quantized context bytes exist once. Tail tokens already appended to the
// receiver are copied, not shared, so forking mid-decode is safe too.
//
// Fork is the mechanism behind cross-request KV reuse: a session store
// keeps one pristine sealed Cache per (context, plan) and every request
// decodes on a fork.
func (c *Cache) Fork() *Cache {
	f := &Cache{
		cfg:        c.cfg,
		plan:       c.plan,
		segs:       c.segs,
		tailK:      make([][]f16.F16, len(c.tailK)),
		tailV:      make([][]f16.F16, len(c.tailV)),
		tailTokens: c.tailTokens,
		row:        make([]float32, c.cfg.HeadDim),
	}
	for idx := range c.tailK {
		f.tailK[idx] = append([]f16.F16(nil), c.tailK[idx]...)
		f.tailV[idx] = append([]f16.F16(nil), c.tailV[idx]...)
	}
	return f
}

// SizeBytes returns the resident footprint of the sealed cache in bytes:
// quantized and FP16 context storage plus the FP16 decode tail. It is the
// accounting unit session stores charge for retaining a sealed cache, and
// it uses the same honest byte formulas as the hardware model (packed
// codes + FP16 scale/zero metadata, 2 bytes per FP16 value).
func (c *Cache) SizeBytes() int64 {
	s := c.Stats()
	return int64(s.ContextBytes + s.TailBytes)
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Plan returns the plan the cache was sealed with.
func (c *Cache) Plan() *Plan { return c.plan }

// ContextTokens returns the number of quantization-managed context tokens.
func (c *Cache) ContextTokens() int { return c.plan.NumTokens }

// TailTokens returns the number of FP16 decode/query tokens appended.
func (c *Cache) TailTokens() int { return c.tailTokens }

// Len returns the total number of cached tokens.
func (c *Cache) Len() int { return c.plan.NumTokens + c.tailTokens }

// BeginToken starts the next decode/query token; AppendTail calls fill it.
func (c *Cache) BeginToken() { c.tailTokens++ }

// AppendTail appends an FP16 K/V row for the current decode token.
func (c *Cache) AppendTail(layer, head int, k, v []float32) {
	if len(k) != c.cfg.HeadDim || len(v) != c.cfg.HeadDim {
		panic("kvcache: AppendTail row width mismatch")
	}
	idx := layer*c.cfg.Heads + head
	c.tailK[idx] = append(c.tailK[idx], f16.FromSlice(k)...)
	c.tailV[idx] = append(c.tailV[idx], f16.FromSlice(v)...)
}

// Attend computes softmax(scale · q·Kᵀ) · V over the whole cache for
// (layer, head), accumulating into out (len HeadDim, zeroed by the caller
// if desired — Attend overwrites it).
//
// This is the paper's Algorithm 1: scores are computed per segment with
// the fused quantized kernel (fqm) or the FP16 kernel (mm), concatenated,
// softmaxed once, and the attention-weighted V sum is accumulated per
// segment. The result is independent of segment order (Eq. 4 = Eq. 5).
func (c *Cache) Attend(layer, head int, q []float32, scale float32, out []float32) {
	if len(q) != c.cfg.HeadDim || len(out) != c.cfg.HeadDim {
		panic("kvcache: Attend dimension mismatch")
	}
	idx := layer*c.cfg.Heads + head
	total := c.Len()
	if cap(c.scores) < total {
		c.scores = make([]float32, total)
	}
	scores := c.scores[:total]

	// Score pass, segment by segment.
	pos := 0
	for _, seg := range c.segs[idx] {
		if seg.prec == FP16 {
			d := c.cfg.HeadDim
			for t := 0; t < seg.tokens; t++ {
				f16.ToSliceInto(c.row, seg.fk[t*d:(t+1)*d])
				scores[pos+t] = mathx.Dot(q, c.row)
			}
		} else {
			seg.qk.ScoresInto(scores[pos:pos+seg.tokens], q)
		}
		pos += seg.tokens
	}
	d := c.cfg.HeadDim
	for t := 0; t < c.tailTokens; t++ {
		f16.ToSliceInto(c.row, c.tailK[idx][t*d:(t+1)*d])
		scores[pos+t] = mathx.Dot(q, c.row)
	}

	mathx.Scale(scale, scores)
	mathx.Softmax(scores)

	// Value pass.
	for i := range out {
		out[i] = 0
	}
	pos = 0
	for _, seg := range c.segs[idx] {
		if seg.prec == FP16 {
			for t := 0; t < seg.tokens; t++ {
				f16.ToSliceInto(c.row, seg.fv[t*d:(t+1)*d])
				mathx.Axpy(scores[pos+t], c.row, out)
			}
		} else {
			for t := 0; t < seg.tokens; t++ {
				seg.qv.AxpyRow(out, scores[pos+t], t)
			}
		}
		pos += seg.tokens
	}
	for t := 0; t < c.tailTokens; t++ {
		f16.ToSliceInto(c.row, c.tailV[idx][t*d:(t+1)*d])
		mathx.Axpy(scores[pos+t], c.row, out)
	}
}

// Stats describes the sealed cache footprint. Byte fields are storage
// bytes (packed codes + FP16 scale/zero metadata for quantized segments,
// 2 bytes per FP16 value); token counts are context tokens.
type Stats struct {
	ContextBytes int // quantized + FP16 context storage across layers/heads, in bytes
	TailBytes    int // FP16 decode/query tail, in bytes
	Segments     int // contiguous segments per (layer, head)
	TokensByPrec map[Precision]int
}

// Stats computes the cache's storage footprint and layout shape.
func (c *Cache) Stats() Stats {
	s := Stats{TokensByPrec: c.plan.Counts()}
	for _, segs := range c.segs {
		for _, seg := range segs {
			if seg.prec == FP16 {
				s.ContextBytes += 2 * (len(seg.fk) + len(seg.fv))
			} else {
				s.ContextBytes += seg.qk.Bytes() + seg.qv.Bytes()
			}
		}
	}
	if len(c.segs) > 0 {
		s.Segments = len(c.segs[0])
	}
	for idx := range c.tailK {
		s.TailBytes += 2 * (len(c.tailK[idx]) + len(c.tailV[idx]))
	}
	return s
}
