// Package kvcache implements the chunked, mixed-precision KV cache at the
// center of the paper: context KV is split into fixed-size chunks, each
// chunk is assigned a precision by Module I (or a baseline policy), chunks
// are optionally reordered so equal-precision chunks become physically
// contiguous (Module II), and decode attention runs per contiguous segment
// exactly as the paper's Algorithm 1 (fqm per quantized block, mm for the
// FP16 block, concatenated before softmax, summed after the V products).
package kvcache

import "fmt"

// Precision is the storage precision of a KV chunk or token.
type Precision uint8

// Supported precisions, ordered from lowest to highest fidelity.
const (
	INT2 Precision = iota
	INT4
	INT8
	FP16
)

// Bits returns the storage bits per value.
func (p Precision) Bits() int {
	switch p {
	case INT2:
		return 2
	case INT4:
		return 4
	case INT8:
		return 8
	case FP16:
		return 16
	}
	panic(fmt.Sprintf("kvcache: invalid precision %d", p))
}

// String returns the precision's table label ("INT2", "FP16", …).
func (p Precision) String() string {
	switch p {
	case INT2:
		return "INT2"
	case INT4:
		return "INT4"
	case INT8:
		return "INT8"
	case FP16:
		return "FP16"
	}
	return fmt.Sprintf("Precision(%d)", uint8(p))
}

// Plan assigns a precision to every context token, at chunk granularity
// with an optional token-level override (used by the KVQuant baseline,
// whose outlier tokens are scattered).
//
// The trailing partial chunk (when NumTokens is not divisible by ChunkSize)
// is always kept FP16, as in the paper.
//
// A Plan is built once (by Module I search or a baseline policy) and
// read-only afterwards: sealed caches keep a reference to it, and plans
// are hashed as cache keys, so mutating a plan after sealing is invalid.
type Plan struct {
	// NumTokens is the number of context tokens the plan covers.
	NumTokens int
	// ChunkSize is the chunk granularity in tokens.
	ChunkSize int
	// ChunkPrec assigns a precision to each full chunk
	// (len == NumTokens/ChunkSize).
	ChunkPrec []Precision
	// TokenPrec, when non-nil, overrides chunk precisions per token
	// (len == NumTokens).
	TokenPrec []Precision
	// Reorder enables Module II chunk reordering: chunks are laid out
	// grouped by precision (INT2, INT4, INT8, FP16) instead of logically.
	Reorder bool
}

// NumChunks returns the number of full chunks.
func (p *Plan) NumChunks() int {
	if p.ChunkSize <= 0 {
		return 0
	}
	return p.NumTokens / p.ChunkSize
}

// Validate checks internal consistency.
func (p *Plan) Validate() error {
	if p.NumTokens < 0 {
		return fmt.Errorf("kvcache: negative NumTokens")
	}
	if p.ChunkSize <= 0 {
		return fmt.Errorf("kvcache: ChunkSize must be positive")
	}
	if len(p.ChunkPrec) != p.NumChunks() {
		return fmt.Errorf("kvcache: ChunkPrec has %d entries, want %d", len(p.ChunkPrec), p.NumChunks())
	}
	if p.TokenPrec != nil && len(p.TokenPrec) != p.NumTokens {
		return fmt.Errorf("kvcache: TokenPrec has %d entries, want %d", len(p.TokenPrec), p.NumTokens)
	}
	return nil
}

// UniformPlan builds a plan quantizing every full chunk to prec.
func UniformPlan(numTokens, chunkSize int, prec Precision, reorder bool) *Plan {
	n := numTokens / chunkSize
	cp := make([]Precision, n)
	for i := range cp {
		cp[i] = prec
	}
	return &Plan{NumTokens: numTokens, ChunkSize: chunkSize, ChunkPrec: cp, Reorder: reorder}
}

// ChunkOrder returns the order in which chunks are laid out physically.
// Without reordering it is the logical order. With reordering, chunks are
// grouped by ascending precision (INT2 block, then INT4, INT8, FP16), and
// within a group logical order is preserved (the layout in the paper's
// Figure 3).
func (p *Plan) ChunkOrder() []int {
	n := p.NumChunks()
	order := make([]int, 0, n)
	if !p.Reorder {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	for _, prec := range []Precision{INT2, INT4, INT8, FP16} {
		for i := 0; i < n; i++ {
			if p.ChunkPrec[i] == prec {
				order = append(order, i)
			}
		}
	}
	return order
}

// TokenPrecisions expands the plan to one precision per token in *physical*
// layout order, returning also the physical token order (a permutation of
// [0, NumTokens)). Tail tokens beyond the last full chunk are FP16 and
// always placed last.
func (p *Plan) TokenPrecisions() (precs []Precision, tokenOrder []int) {
	precs = make([]Precision, 0, p.NumTokens)
	tokenOrder = make([]int, 0, p.NumTokens)
	cs := p.ChunkSize
	for _, c := range p.ChunkOrder() {
		for t := c * cs; t < (c+1)*cs; t++ {
			prec := p.ChunkPrec[c]
			if p.TokenPrec != nil {
				prec = p.TokenPrec[t]
			}
			precs = append(precs, prec)
			tokenOrder = append(tokenOrder, t)
		}
	}
	for t := p.NumChunks() * cs; t < p.NumTokens; t++ {
		prec := FP16
		if p.TokenPrec != nil {
			prec = p.TokenPrec[t]
		}
		precs = append(precs, prec)
		tokenOrder = append(tokenOrder, t)
	}
	return precs, tokenOrder
}

// Counts returns how many tokens land at each precision.
func (p *Plan) Counts() map[Precision]int {
	precs, _ := p.TokenPrecisions()
	m := make(map[Precision]int, 4)
	for _, pr := range precs {
		m[pr]++
	}
	return m
}

// SegmentRuns returns the physical layout as runs of equal precision:
// the number of contiguous segments the cache will hold. Reordering
// minimizes this (at most one run per precision); interleaved mixed
// precision without reordering produces many runs — the fragmentation the
// paper's Module II removes.
func (p *Plan) SegmentRuns() []Run {
	precs, _ := p.TokenPrecisions()
	var runs []Run
	for i := 0; i < len(precs); {
		j := i
		for j < len(precs) && precs[j] == precs[i] {
			j++
		}
		runs = append(runs, Run{Prec: precs[i], Tokens: j - i})
		i = j
	}
	return runs
}

// Run is a contiguous same-precision stretch in physical layout; Tokens
// is its length in context tokens.
type Run struct {
	Prec   Precision
	Tokens int
}
