// Package tokenizer provides a deterministic word-level tokenizer.
//
// The reproduction works on a closed synthetic vocabulary (see
// internal/corpus), so a word-level tokenizer is faithful: LongBench tasks
// are evaluated on word-level metrics anyway, and the paper's mechanism
// (chunk-granular KV quantization) is independent of subword choices.
// Token ids are dense indices into the Vocab word list.
package tokenizer

import "strings"

// Vocab maps between word surface forms and dense integer ids.
type Vocab struct {
	words []string
	ids   map[string]int
}

// UnknownID is returned by ID for out-of-vocabulary words.
const UnknownID = -1

// NewVocab builds a vocabulary from words, dropping duplicates while
// keeping first-seen order (ids are therefore stable for a fixed corpus).
func NewVocab(words []string) *Vocab {
	v := &Vocab{ids: make(map[string]int, len(words))}
	for _, w := range words {
		if _, ok := v.ids[w]; ok {
			continue
		}
		v.ids[w] = len(v.words)
		v.words = append(v.words, w)
	}
	return v
}

// Size returns the number of distinct words.
func (v *Vocab) Size() int { return len(v.words) }

// ID returns the id for a word, or UnknownID if absent.
func (v *Vocab) ID(w string) int {
	id, ok := v.ids[w]
	if !ok {
		return UnknownID
	}
	return id
}

// Word returns the surface form of id. It panics on out-of-range ids.
func (v *Vocab) Word(id int) string {
	return v.words[id]
}

// Words returns the backing word list (callers must not mutate it).
func (v *Vocab) Words() []string { return v.words }

// Encode tokenizes text on whitespace and maps to ids (UnknownID for OOV).
func (v *Vocab) Encode(text string) []int {
	fields := strings.Fields(text)
	ids := make([]int, len(fields))
	for i, f := range fields {
		ids[i] = v.ID(f)
	}
	return ids
}

// EncodeWords maps a word slice to ids (UnknownID for OOV).
func (v *Vocab) EncodeWords(words []string) []int {
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = v.ID(w)
	}
	return ids
}

// Decode maps ids back to a space-joined string, skipping UnknownID.
func (v *Vocab) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id == UnknownID || id < 0 || id >= len(v.words) {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.words[id])
	}
	return b.String()
}

// DecodeWords maps ids to a word slice, skipping UnknownID.
func (v *Vocab) DecodeWords(ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == UnknownID || id < 0 || id >= len(v.words) {
			continue
		}
		out = append(out, v.words[id])
	}
	return out
}

// Tokenize splits text into word tokens (whitespace separated).
func Tokenize(text string) []string { return strings.Fields(text) }
