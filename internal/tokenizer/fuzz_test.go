package tokenizer

import (
	"strings"
	"testing"
)

// FuzzTokenize drives the tokenize → vocab → encode → decode loop with
// arbitrary text and asserts the round-trip contract the pipeline relies
// on: any word a text tokenizes to is in a vocab built from that text,
// ids are dense and stable, and decoding reproduces the whitespace-
// normalized input exactly.
func FuzzTokenize(f *testing.F) {
	f.Add("the quick brown fox")
	f.Add("")
	f.Add("  padded \t with \n mixed   whitespace ")
	f.Add("dup dup dup distinct dup")
	f.Add("π ∞ unicode-∂ words £µ")
	f.Add("a")
	f.Fuzz(func(t *testing.T, text string) {
		words := Tokenize(text)
		v := NewVocab(words)
		if v.Size() > len(words) {
			t.Fatalf("vocab size %d exceeds word count %d", v.Size(), len(words))
		}

		ids := v.Encode(text)
		if len(ids) != len(words) {
			t.Fatalf("Encode returned %d ids for %d words", len(ids), len(words))
		}
		for i, id := range ids {
			if id == UnknownID {
				t.Fatalf("word %d %q unknown in a vocab built from its own text", i, words[i])
			}
			if id < 0 || id >= v.Size() {
				t.Fatalf("id %d out of dense range [0, %d)", id, v.Size())
			}
			if got := v.Word(id); got != words[i] {
				t.Fatalf("Word(ID(%q)) = %q", words[i], got)
			}
		}

		norm := strings.Join(words, " ")
		if got := v.Decode(ids); got != norm {
			t.Fatalf("Decode round-trip: %q != %q", got, norm)
		}
		back := v.DecodeWords(v.EncodeWords(words))
		if len(back) != len(words) {
			t.Fatalf("DecodeWords dropped words: %d != %d", len(back), len(words))
		}
		for i := range back {
			if back[i] != words[i] {
				t.Fatalf("word %d round-tripped to %q, want %q", i, back[i], words[i])
			}
		}

		// Unknown ids must be skipped, never panic or leak placeholder text.
		if got := v.Decode([]int{UnknownID, -7, v.Size()}); got != "" {
			t.Fatalf("Decode of invalid ids produced %q", got)
		}
	})
}
