package tokenizer

import (
	"testing"
	"testing/quick"
)

func TestVocabBasics(t *testing.T) {
	v := NewVocab([]string{"a", "b", "a", "c"})
	if v.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (dup dropped)", v.Size())
	}
	if v.ID("a") != 0 || v.ID("b") != 1 || v.ID("c") != 2 {
		t.Fatal("ids not first-seen ordered")
	}
	if v.ID("zzz") != UnknownID {
		t.Fatal("OOV should be UnknownID")
	}
	if v.Word(1) != "b" {
		t.Fatal("Word(1) wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := NewVocab([]string{"the", "cat", "sat"})
	ids := v.Encode("the cat sat the")
	if len(ids) != 4 || ids[3] != 0 {
		t.Fatalf("Encode wrong: %v", ids)
	}
	if got := v.Decode(ids); got != "the cat sat the" {
		t.Fatalf("Decode = %q", got)
	}
}

func TestDecodeSkipsUnknown(t *testing.T) {
	v := NewVocab([]string{"x"})
	if got := v.Decode([]int{UnknownID, 0, 99, 0}); got != "x x" {
		t.Fatalf("Decode = %q", got)
	}
}

func TestEncodeWordsDecodeWords(t *testing.T) {
	v := NewVocab([]string{"p", "q"})
	ids := v.EncodeWords([]string{"q", "p", "nope"})
	if ids[0] != 1 || ids[1] != 0 || ids[2] != UnknownID {
		t.Fatalf("EncodeWords = %v", ids)
	}
	ws := v.DecodeWords(ids)
	if len(ws) != 2 || ws[0] != "q" || ws[1] != "p" {
		t.Fatalf("DecodeWords = %v", ws)
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("  a  b\tc\n")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Tokenize = %v", got)
	}
}

// Property: Word(ID(w)) == w for every in-vocab word.
func TestIDWordInverse(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	v := NewVocab(words)
	check := func(iRaw uint8) bool {
		i := int(iRaw) % v.Size()
		return v.ID(v.Word(i)) == i
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
