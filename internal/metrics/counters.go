package metrics

import "sync/atomic"

// Counter is a lock-free event counter for serving-side instrumentation
// (cache hits/misses/evictions, request tallies, byte gauges). It
// complements the offline scoring metrics in this package: scoring
// functions grade answers, Counters observe the system producing them.
//
// The zero value is ready to use. A Counter is shared state by design:
// Add and Load may be called from any number of goroutines without
// external locking. Counts are dimensionless event totals; callers that
// track bytes or durations document the unit at the field site.
type Counter struct{ v atomic.Int64 }

// Inc adds one event.
func (c *Counter) Inc() { c.v.Add(1) }

// Add records n further events (n may be negative for gauge-style use,
// e.g. net bytes resident).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current total.
func (c *Counter) Load() int64 { return c.v.Load() }
